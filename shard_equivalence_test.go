package xseq

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xseq/internal/datagen"
)

// genCorpus converts a datagen corpus into public-API documents.
func genCorpus(t *testing.T, name string, n int) []*Document {
	t.Helper()
	var docs []*Document
	switch name {
	case "xmark":
		_, gen, err := datagen.XMark(datagen.XMarkOptions{Seed: 11}, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range gen {
			docs = append(docs, &Document{id: d.ID, root: d.Root})
		}
	default:
		p, err := datagen.ParseSynthName(name)
		if err != nil {
			t.Fatal(err)
		}
		p.Seed = 11
		_, gen, err := datagen.Synth(p, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range gen {
			docs = append(docs, &Document{id: d.ID, root: d.Root})
		}
	}
	return docs
}

func equalIDSlices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedEquivalence is the acceptance suite for the sharded engine:
// over xseqgen-style synthetic data and the XMark-like corpus, a sharded
// index must return exactly the sorted document ids the monolithic index
// returns, for plain, verified, explained, and limit queries.
func TestShardedEquivalence(t *testing.T) {
	cases := []struct {
		corpus  string
		queries []string
	}{
		{"xmark", []string{
			datagen.XMarkQ1,
			datagen.XMarkQ2,
			datagen.XMarkQ3,
			"/site//person/name",
			"//item/location",
			"//date",
			"/site/*",
		}},
		{"L3F5A25I0P40", []string{
			"/e1",
			"/e1/e2",
			"//e3",
			"/e1/*",
			"//e2//*",
		}},
	}
	for _, c := range cases {
		docs := genCorpus(t, c.corpus, 250)
		mono, err := Build(docs, Config{KeepDocuments: true})
		if err != nil {
			t.Fatalf("%s: monolithic build: %v", c.corpus, err)
		}
		for _, shards := range []int{2, 5} {
			sh, err := Build(docs, Config{KeepDocuments: true, Shards: shards})
			if err != nil {
				t.Fatalf("%s/%d: sharded build: %v", c.corpus, shards, err)
			}
			if st := sh.Stats(); st.Shards != shards || st.Documents != len(docs) {
				t.Fatalf("%s/%d: stats %+v", c.corpus, shards, st)
			}
			for _, q := range c.queries {
				want, err := mono.Query(q)
				if err != nil {
					t.Fatalf("%s: mono %s: %v", c.corpus, q, err)
				}
				got, err := sh.Query(q)
				if err != nil {
					t.Fatalf("%s/%d: %s: %v", c.corpus, shards, q, err)
				}
				if !equalIDSlices(got, want) {
					t.Fatalf("%s/%d: %s: sharded %v, monolithic %v", c.corpus, shards, q, got, want)
				}

				wantV, err := mono.QueryVerified(q)
				if err != nil {
					t.Fatalf("%s: mono verified %s: %v", c.corpus, q, err)
				}
				gotV, err := sh.QueryVerified(q)
				if err != nil {
					t.Fatalf("%s/%d: verified %s: %v", c.corpus, shards, q, err)
				}
				if !equalIDSlices(gotV, wantV) {
					t.Fatalf("%s/%d: verified %s: sharded %v, monolithic %v", c.corpus, shards, q, gotV, wantV)
				}

				gotE, _, err := sh.QueryExplain(q)
				if err != nil {
					t.Fatalf("%s/%d: explain %s: %v", c.corpus, shards, q, err)
				}
				if !equalIDSlices(gotE, want) {
					t.Fatalf("%s/%d: explain %s: %v, want %v", c.corpus, shards, q, gotE, want)
				}

				// A limit covering the whole result must reproduce it; a
				// smaller limit returns that many ids, all members of it.
				full, err := sh.QueryLimit(q, len(want)+1)
				if err != nil {
					t.Fatalf("%s/%d: limit %s: %v", c.corpus, shards, q, err)
				}
				if !equalIDSlices(full, want) {
					t.Fatalf("%s/%d: limit(all) %s: %v, want %v", c.corpus, shards, q, full, want)
				}
				if len(want) > 1 {
					part, err := sh.QueryLimit(q, len(want)-1)
					if err != nil {
						t.Fatalf("%s/%d: limit %s: %v", c.corpus, shards, q, err)
					}
					if len(part) != len(want)-1 {
						t.Fatalf("%s/%d: limit(%d) %s returned %d ids", c.corpus, shards, len(want)-1, q, len(part))
					}
					members := make(map[int32]bool, len(want))
					for _, id := range want {
						members[id] = true
					}
					for _, id := range part {
						if !members[id] {
							t.Fatalf("%s/%d: limit %s: id %d not in full result", c.corpus, shards, q, id)
						}
					}
				}
			}
		}
	}
}

// TestShardedSnapshotRoundtrip drives the sharded format through the
// public persistence API: SaveFile writes the sharded container, LoadFile
// sniffs the magic and restores it, and queries still match monolithic.
func TestShardedSnapshotRoundtrip(t *testing.T) {
	docs := genCorpus(t, "xmark", 120)
	sh, err := Build(docs, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sharded.idx")
	if err := sh.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := back.Stats(); st.Shards != 4 {
		t.Fatalf("reloaded Stats().Shards = %d, want 4", st.Shards)
	}
	// Stream round-trip through Load's magic sniffing too.
	var buf bytes.Buffer
	if err := sh.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{datagen.XMarkQ1, "//date", "/site/*"} {
		want, _ := mono.Query(q)
		for i, ix := range []*Index{back, back2} {
			got, err := ix.Query(q)
			if err != nil {
				t.Fatalf("copy %d: %s: %v", i, q, err)
			}
			if !equalIDSlices(got, want) {
				t.Fatalf("copy %d: %s: %v, want %v", i, q, got, want)
			}
		}
	}
}

// TestShardedCorruptSnapshot: a damaged sharded snapshot fails LoadFile
// with *CorruptError (never a panic), and a Swapper keeps serving the
// previous snapshot when a hot reload hits the damage.
func TestShardedCorruptSnapshot(t *testing.T) {
	docs := genCorpus(t, "xmark", 60)
	sh, err := Build(docs, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sharded.idx")
	if err := sh.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x20
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(path)
	var corrupt *CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("LoadFile error = %v, want *CorruptError", err)
	}
	sw := NewSwapper(good)
	cur, err := sw.SwapFromFile(path)
	if err == nil {
		t.Fatal("SwapFromFile accepted a corrupt sharded snapshot")
	}
	if cur != good || sw.Current() != good {
		t.Fatal("corrupt reload displaced the serving snapshot")
	}
	if _, err := sw.Current().QueryContext(context.Background(), "//date"); err != nil {
		t.Fatalf("surviving snapshot cannot answer: %v", err)
	}
}

// TestBuildShardConfigValidation: negative sharding config is rejected up
// front.
func TestBuildShardConfigValidation(t *testing.T) {
	docs := genCorpus(t, "xmark", 5)
	if _, err := Build(docs, Config{Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if _, err := Build(docs, Config{BuildWorkers: -1}); err == nil {
		t.Fatal("negative BuildWorkers accepted")
	}
}
