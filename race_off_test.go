//go:build !race

package xseq

// See race_on_test.go.
const raceEnabled = false
