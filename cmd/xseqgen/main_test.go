package main

import (
	"testing"
)

func TestGenerateDatasets(t *testing.T) {
	cases := []struct {
		dataset string
		params  string
		wantErr bool
	}{
		{"synth", "L3F5A25I0P40", false},
		{"synth", "bogus", true},
		{"xmark", "", false},
		{"dblp", "", false},
		{"unknown", "", true},
	}
	for _, c := range cases {
		docs, err := generate(c.dataset, c.params, 20, 1, true)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s/%s: expected error", c.dataset, c.params)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.dataset, err)
			continue
		}
		if len(docs) != 20 {
			t.Errorf("%s: generated %d docs", c.dataset, len(docs))
		}
		for _, d := range docs {
			if d.Root == nil || d.Root.Size() < 1 {
				t.Errorf("%s: empty record", c.dataset)
				break
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := generate("dblp", "", 10, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generate("dblp", "", 10, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Root.String() != b[i].Root.String() {
			t.Fatalf("doc %d differs across runs", i)
		}
	}
}
