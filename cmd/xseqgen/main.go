// Command xseqgen emits the benchmark corpora as XML: the synthetic tree
// structures (named by their generation parameters, e.g. L3F5A25I0P40),
// the XMark-like auction records, and the DBLP-like bibliography records
// (Section 6.1). Records are wrapped in a single <corpus> element, one
// child per record, the format cmd/xseqquery reads back.
//
// Usage:
//
//	xseqgen -dataset synth -params L3F5A25I0P40 -n 1000 > corpus.xml
//	xseqgen -dataset xmark -identical -n 1000 -out xmark.xml
//	xseqgen -dataset dblp -n 1000 -out dblp.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"xseq/internal/datagen"
	"xseq/internal/xmltree"
)

func main() {
	var (
		dataset   = flag.String("dataset", "synth", "synth | xmark | dblp")
		params    = flag.String("params", "L3F5A25I0P40", "synthetic dataset name (L?F?A?I?P?)")
		n         = flag.Int("n", 1000, "number of records")
		seed      = flag.Int64("seed", 42, "random seed")
		identical = flag.Bool("identical", false, "xmark: enable identical sibling nodes")
		out       = flag.String("out", "", "output file (default stdout)")
		stats     = flag.Bool("stats", false, "print corpus statistics to stderr")
	)
	flag.Parse()

	docs, err := generate(*dataset, *params, *n, *seed, *identical)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xseqgen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprint(os.Stderr, xmltree.CollectStats(docs).String())
	}

	if err := emit(docs, *out); err != nil {
		fmt.Fprintf(os.Stderr, "xseqgen: %v\n", err)
		os.Exit(1)
	}
}

// emit writes the corpus to stdout, or crash-safely to path: the XML goes
// to a temporary file in the target directory, is fsynced, and is
// atomically renamed into place — an interrupted run never leaves a torn
// corpus file behind.
func emit(docs []*xmltree.Document, path string) (err error) {
	var w io.Writer = os.Stdout
	if path != "" {
		tmp, terr := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
		if terr != nil {
			return terr
		}
		defer func() {
			if err != nil {
				tmp.Close()
				os.Remove(tmp.Name())
			}
		}()
		w = tmp
		defer func() {
			if err != nil {
				return
			}
			if err = tmp.Sync(); err != nil {
				return
			}
			if err = tmp.Close(); err != nil {
				return
			}
			err = os.Rename(tmp.Name(), path)
		}()
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "<corpus>")
	for _, d := range docs {
		if err := xmltree.WriteXML(bw, d.Root); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, "</corpus>")
	return bw.Flush()
}

func generate(dataset, params string, n int, seed int64, identical bool) ([]*xmltree.Document, error) {
	switch dataset {
	case "synth":
		p, err := datagen.ParseSynthName(params)
		if err != nil {
			return nil, err
		}
		p.Seed = seed
		_, docs, err := datagen.Synth(p, n)
		return docs, err
	case "xmark":
		_, docs, err := datagen.XMark(datagen.XMarkOptions{IdenticalSiblings: identical, Seed: seed}, n)
		return docs, err
	case "dblp":
		_, docs, err := datagen.DBLP(datagen.DBLPOptions{Seed: seed}, n)
		return docs, err
	default:
		return nil, fmt.Errorf("unknown dataset %q (synth|xmark|dblp)", dataset)
	}
}
