// Command xseqquery builds a constraint-sequence index over a corpus file
// (the <corpus>-wrapped record format cmd/xseqgen emits, where each child
// of the root is one record) and answers XPath-subset queries against it.
//
// Usage:
//
//	xseqquery -data corpus.xml "/site//person/*/age[text='32']" ...
//	xseqquery -data corpus.xml -stats            # index statistics only
//	xseqquery -data corpus.xml -io "/a/b"        # with simulated I/O costs
//	xseqquery -data corpus.xml -verify "/a[b='x']"
//	xseqquery -data corpus.xml -shards 8 "/a/b"  # partitioned parallel build + fan-out query
//
// Exit codes distinguish failure classes so scripts can react: 0 success,
// 1 data error (parse, limit, I/O, bad query), 2 usage, 3 timeout
// (-timeout elapsed — retryable with a larger budget), 4 corrupt index
// snapshot (rebuild or restore, retrying won't help).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"xseq"
)

// Exit codes; see the command doc.
const (
	exitOK      = 0
	exitData    = 1
	exitUsage   = 2
	exitTimeout = 3
	exitCorrupt = 4
)

// exitCode classifies err into the command's exit codes: timeouts
// (retryable) and snapshot corruption (permanent) get distinct codes from
// generic data errors.
func exitCode(err error) int {
	var corrupt *xseq.CorruptError
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitTimeout
	case errors.As(err, &corrupt):
		return exitCorrupt
	default:
		return exitData
	}
}

// fail prints a one-line error and exits with err's class code — no
// partial output follows a parse, limit, corruption, or timeout failure.
func fail(err error, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "xseqquery: "+format+"\n", args...)
	os.Exit(exitCode(err))
}

func main() {
	var (
		data    = flag.String("data", "", "corpus XML file (or use -loadindex)")
		stats   = flag.Bool("stats", false, "print index statistics")
		verify  = flag.Bool("verify", false, "verify candidates against stored documents (exact values)")
		ioSim   = flag.Bool("io", false, "report simulated disk accesses per query")
		pool    = flag.Int("pool", 0, "buffer pool pages for -io (0 = default 256)")
		maxIDs  = flag.Int("show", 20, "maximum result ids to print per query")
		text    = flag.Bool("text", false, "index values as character sequences (enables [text='p*'] prefix queries)")
		explain = flag.Bool("explain", false, "print the work profile of each query")
		schema  = flag.Bool("schema", false, "print the inferred schema outline")
		saveIdx = flag.String("saveindex", "", "write the built index to this file (crash-safe: temp + fsync + rename)")
		loadIdx = flag.String("loadindex", "", "load a previously saved index instead of building")
		timeout = flag.Duration("timeout", 0, "abort build and each query after this duration (0 = no limit)")
		shards  = flag.Int("shards", 0, "partition the index into this many shards built and queried in parallel (0/1 = monolithic)")
		workers = flag.Int("workers", 0, "concurrent shard builds for -shards (0 = GOMAXPROCS)")
		qcache  = flag.Int("query-cache", 0, "cache up to this many query results keyed by canonical pattern (0 = no cache)")
		strat   = flag.String("strategy", "", "sequencing strategy: gbest (default), weighted, depth-first, breadth-first; positional baselines build -stats-only indexes")
	)
	flag.Parse()

	if *shards < 0 || *workers < 0 || *qcache < 0 {
		fmt.Fprintln(os.Stderr, "xseqquery: -shards, -workers, and -query-cache must be >= 0")
		os.Exit(exitUsage)
	}
	if *ioSim && *shards > 1 {
		fmt.Fprintln(os.Stderr, "xseqquery: -io is monolithic-only (sharded indexes have no paged layout)")
		os.Exit(exitUsage)
	}
	strategy, err := xseq.CanonicalStrategy(*strat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xseqquery: %v\n", err)
		os.Exit(exitUsage)
	}
	if positional := strategy == xseq.StrategyDepthFirst || strategy == xseq.StrategyBreadthFirst; positional {
		// Positional baselines exist for sequencing comparisons (-stats,
		// -schema): without g_best priorities they can neither answer
		// queries nor round-trip through a snapshot.
		if *saveIdx != "" || flag.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "xseqquery: -strategy %s builds a baseline ordering that cannot be queried or saved (use -stats)\n", strategy)
			os.Exit(exitUsage)
		}
	}
	if *strat != "" && *loadIdx != "" {
		fmt.Fprintln(os.Stderr, "xseqquery: -strategy applies to builds; a loaded snapshot keeps the strategy it was built with")
		os.Exit(exitUsage)
	}

	// withTimeout derives the deadline context each cancellable phase
	// (build, every query) runs under.
	withTimeout := func() (context.Context, context.CancelFunc) {
		if *timeout > 0 {
			return context.WithTimeout(context.Background(), *timeout)
		}
		return context.Background(), func() {}
	}

	var ix *xseq.Index
	buildStart := time.Now()
	switch {
	case *loadIdx != "":
		var err error
		ix, err = xseq.LoadFile(*loadIdx)
		if err != nil {
			fail(err, "%v", err)
		}
		if *qcache > 0 {
			ix.EnableQueryCache(*qcache)
		}
	case *data != "":
		docs, err := xseq.LoadCorpusFile(*data)
		if err != nil {
			fail(err, "%v", err)
		}
		ctx, cancel := withTimeout()
		ix, err = xseq.BuildContext(ctx, docs, xseq.Config{
			Strategy:          strategy,
			KeepDocuments:     *verify || *saveIdx != "",
			TextValues:        *text,
			Shards:            *shards,
			BuildWorkers:      *workers,
			QueryCacheEntries: *qcache,
		})
		cancel()
		if err != nil {
			fail(err, "build: %v", err)
		}
	default:
		fmt.Fprintln(os.Stderr, "xseqquery: one of -data or -loadindex is required")
		os.Exit(exitUsage)
	}
	if *saveIdx != "" {
		if err := ix.SaveFile(*saveIdx); err != nil {
			fail(err, "save: %v", err)
		}
		fmt.Printf("index saved to %s\n", *saveIdx)
	}
	s := ix.Stats()
	fmt.Printf("indexed %d records: %d trie nodes, %d path links, ~%d bytes (ready in %v)\n",
		s.Documents, s.IndexNodes, s.Links, s.EstimatedDiskBytes,
		time.Since(buildStart).Round(time.Millisecond))
	if s.Shards > 0 {
		fmt.Printf("sharded %d ways:", s.Shards)
		for _, ps := range s.PerShard {
			fmt.Printf(" %d", ps.Documents)
		}
		fmt.Println(" docs/shard")
	}
	if *schema {
		if outline, err := ix.SchemaOutline(); err == nil {
			fmt.Print(outline)
		} else {
			fmt.Printf("(no schema outline: %v)\n", err)
		}
	}
	if *stats && flag.NArg() == 0 {
		return
	}
	if *ioSim {
		pages, err := ix.EnablePagedIO(*pool)
		if err != nil {
			fail(err, "%v", err)
		}
		fmt.Printf("paged layout: %d pages of 4KiB\n", pages)
	}

	for _, q := range flag.Args() {
		if *ioSim {
			ix.DropIOCache()
		}
		start := time.Now()
		var ids []int32
		var ex xseq.Explain
		var err error
		ctx, cancel := withTimeout()
		switch {
		case *verify:
			ids, err = ix.QueryVerifiedContext(ctx, q)
		case *explain:
			ids, ex, err = ix.QueryExplainContext(ctx, q)
		default:
			ids, err = ix.QueryContext(ctx, q)
		}
		cancel()
		elapsed := time.Since(start)
		if err != nil {
			fail(err, "%q: %v", q, err)
		}
		fmt.Printf("\nquery  %s\n", q)
		fmt.Printf("hits   %d in %v\n", len(ids), elapsed.Round(time.Microsecond))
		if *ioSim {
			fmt.Printf("io     %d disk accesses (%d reads)\n", ix.IO().DiskAccesses, ix.IO().Reads)
		}
		if *explain {
			fmt.Printf("work   %d instances, %d orders, %d probes, %d scanned, %d cover checks (%d rejections)\n",
				ex.Instances, ex.Orders, ex.LinkProbes, ex.EntriesScanned, ex.CoverChecks, ex.CoverRejections)
		}
		shown := ids
		if len(shown) > *maxIDs {
			shown = shown[:*maxIDs]
		}
		fmt.Printf("ids    %v", shown)
		if len(ids) > len(shown) {
			fmt.Printf(" ... (%d more)", len(ids)-len(shown))
		}
		fmt.Println()
	}
	if qc := ix.Stats().QueryCache; qc != nil && flag.NArg() > 0 {
		fmt.Printf("\ncache  %d/%d entries, %d hits, %d misses, %d evictions\n",
			qc.Entries, qc.Capacity, qc.Hits, qc.Misses, qc.Evictions)
	}
}
