package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xseq"
)

func writeCorpus(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.xml")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCorpus(t *testing.T) {
	path := writeCorpus(t, `<corpus>
	  <rec><title>alpha</title></rec>
	  <rec><title>beta</title></rec>
	</corpus>`)
	docs, err := xseq.LoadCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("loaded %d records", len(docs))
	}
	if docs[0].ID() != 0 || docs[1].ID() != 1 {
		t.Fatalf("ids = %d %d", docs[0].ID(), docs[1].ID())
	}
	if docs[0].NumNodes() != 3 {
		t.Fatalf("record nodes = %d", docs[0].NumNodes())
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	if _, err := xseq.LoadCorpusFile(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("missing file should fail")
	}
	empty := writeCorpus(t, `<corpus></corpus>`)
	if _, err := xseq.LoadCorpusFile(empty); err == nil {
		t.Fatal("empty corpus should fail")
	}
	bad := writeCorpus(t, `not xml at all`)
	if _, err := xseq.LoadCorpusFile(bad); err == nil {
		t.Fatal("malformed corpus should fail")
	}
}

func TestLoadCorpusSkipsTextBetweenRecords(t *testing.T) {
	path := writeCorpus(t, `<corpus>
	  stray text
	  <rec><a>1</a></rec>
	</corpus>`)
	docs, err := xseq.LoadCorpusFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("loaded %d records", len(docs))
	}
}

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, exitOK},
		{"generic", errors.New("boom"), exitData},
		{"parse", fmt.Errorf("corpus x: %w", errors.New("malformed XML")), exitData},
		{"limit", fmt.Errorf("parse: %w", &xseq.LimitError{Kind: "depth", Limit: 4}), exitData},
		{"deadline", context.DeadlineExceeded, exitTimeout},
		{"wrapped deadline", fmt.Errorf("build: %w", context.DeadlineExceeded), exitTimeout},
		{"cancelled", fmt.Errorf("query: %w", context.Canceled), exitTimeout},
		{"corrupt", &xseq.CorruptError{Reason: "checksum mismatch"}, exitCorrupt},
		{"wrapped corrupt", fmt.Errorf("load: %w", &xseq.CorruptError{Reason: "truncated"}), exitCorrupt},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestExitCodesDistinct pins the contract that scripts rely on: every
// failure class maps to its own code.
func TestExitCodesDistinct(t *testing.T) {
	codes := map[int]string{exitOK: "ok", exitData: "data", exitUsage: "usage", exitTimeout: "timeout", exitCorrupt: "corrupt"}
	if len(codes) != 5 {
		t.Fatalf("exit codes collide: %v", codes)
	}
}
