package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCorpus(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "corpus.xml")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCorpus(t *testing.T) {
	path := writeCorpus(t, `<corpus>
	  <rec><title>alpha</title></rec>
	  <rec><title>beta</title></rec>
	</corpus>`)
	docs, err := loadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("loaded %d records", len(docs))
	}
	if docs[0].ID() != 0 || docs[1].ID() != 1 {
		t.Fatalf("ids = %d %d", docs[0].ID(), docs[1].ID())
	}
	if docs[0].NumNodes() != 3 {
		t.Fatalf("record nodes = %d", docs[0].NumNodes())
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	if _, err := loadCorpus(filepath.Join(t.TempDir(), "missing.xml")); err == nil {
		t.Fatal("missing file should fail")
	}
	empty := writeCorpus(t, `<corpus></corpus>`)
	if _, err := loadCorpus(empty); err == nil {
		t.Fatal("empty corpus should fail")
	}
	bad := writeCorpus(t, `not xml at all`)
	if _, err := loadCorpus(bad); err == nil {
		t.Fatal("malformed corpus should fail")
	}
}

func TestLoadCorpusSkipsTextBetweenRecords(t *testing.T) {
	path := writeCorpus(t, `<corpus>
	  stray text
	  <rec><a>1</a></rec>
	</corpus>`)
	docs, err := loadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("loaded %d records", len(docs))
	}
}

func TestRecBuffer(t *testing.T) {
	var b recBuffer
	n, err := b.Write([]byte("hello "))
	if err != nil || n != 6 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if _, err := b.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if b.String() != "hello world" {
		t.Fatalf("buffer = %q", b.String())
	}
}
