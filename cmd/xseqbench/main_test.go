package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"xseq"
	"xseq/internal/bench"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, exitOK},
		{"experiment", errors.New("fig14a: bad shape"), exitData},
		{"deadline", context.DeadlineExceeded, exitTimeout},
		{"wrapped deadline", fmt.Errorf("table7: %w", context.DeadlineExceeded), exitTimeout},
		{"cancelled", context.Canceled, exitTimeout},
		{"corrupt", fmt.Errorf("load: %w", &xseq.CorruptError{Reason: "bit flip"}), exitCorrupt},
		{"bad replay log", fmt.Errorf("replay: %w", bench.ErrBadLog), exitUsage},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExitCodesDistinct(t *testing.T) {
	codes := map[int]string{exitOK: "ok", exitData: "data", exitUsage: "usage", exitTimeout: "timeout", exitCorrupt: "corrupt"}
	if len(codes) != 5 {
		t.Fatalf("exit codes collide: %v", codes)
	}
}

// TestReplayExitPaths exercises the exit-code contract of -replay end to
// end through the bench entry points the CLI calls: an unreadable or
// malformed log is a usage error (2), an unreachable server is a data
// error (1), and a blown deadline is a timeout (3).
func TestReplayExitPaths(t *testing.T) {
	t.Run("missing log", func(t *testing.T) {
		_, err := bench.Replay(bench.ReplayConfig{URL: "http://127.0.0.1:1", LogPath: filepath.Join(t.TempDir(), "nope.log")})
		if got := exitCode(err); got != exitUsage {
			t.Fatalf("missing log: exitCode = %d (err %v), want %d", got, err, exitUsage)
		}
	})
	t.Run("malformed log", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.log")
		if err := os.WriteFile(path, []byte("{not json\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := bench.Replay(bench.ReplayConfig{URL: "http://127.0.0.1:1", LogPath: path})
		if got := exitCode(err); got != exitUsage {
			t.Fatalf("malformed log: exitCode = %d (err %v), want %d", got, err, exitUsage)
		}
	})
	t.Run("unreachable server", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ok.log")
		if err := os.WriteFile(path, []byte("/a/b\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		// Port 1 is reserved; nothing listens there.
		_, err := bench.Replay(bench.ReplayConfig{URL: "http://127.0.0.1:1", LogPath: path})
		if err == nil {
			t.Fatal("expected unreachable-server error")
		}
		if got := exitCode(err); got != exitData {
			t.Fatalf("unreachable: exitCode = %d (err %v), want %d", got, err, exitData)
		}
	})
	t.Run("deadline", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := bench.Replay(bench.ReplayConfig{
			URL:     "http://127.0.0.1:1",
			Queries: []string{"/a/b"},
			Context: ctx,
		})
		if got := exitCode(err); got != exitTimeout {
			t.Fatalf("deadline: exitCode = %d (err %v), want %d", got, err, exitTimeout)
		}
	})
}
