package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"xseq"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, exitOK},
		{"experiment", errors.New("fig14a: bad shape"), exitData},
		{"deadline", context.DeadlineExceeded, exitTimeout},
		{"wrapped deadline", fmt.Errorf("table7: %w", context.DeadlineExceeded), exitTimeout},
		{"cancelled", context.Canceled, exitTimeout},
		{"corrupt", fmt.Errorf("load: %w", &xseq.CorruptError{Reason: "bit flip"}), exitCorrupt},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestExitCodesDistinct(t *testing.T) {
	codes := map[int]string{exitOK: "ok", exitData: "data", exitUsage: "usage", exitTimeout: "timeout", exitCorrupt: "corrupt"}
	if len(codes) != 5 {
		t.Fatalf("exit codes collide: %v", codes)
	}
}
