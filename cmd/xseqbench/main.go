// Command xseqbench regenerates the paper's evaluation tables and figures
// (Section 6). Every experiment prints a paper-style table; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	xseqbench [-exp all|fig14a,table7,...] [-scale 0.02] [-seed 42]
//	          [-queries 50] [-pool 256] [-list]
//	xseqbench -json - [-dataset xmark] [-records 1000] [-shards 4] [-workers 4]
//	xseqbench -replay query.log -url http://127.0.0.1:8080 [-rate 200] [-json -]
//	xseqbench -genlog query.log [-genlog-queries 500] [-skew 1.2]
//
// Scale 1.0 reproduces paper-sized datasets (millions of records; takes a
// long time and a lot of memory); the default keeps each experiment in
// seconds while preserving the reported shapes.
//
// -json switches to the sharded-scaling benchmark: one corpus is built
// monolithically and sharded (-shards partitions on -workers build
// workers, both defaulting to GOMAXPROCS), random queries are timed on the
// sharded index and equivalence-checked against the monolithic one, and a
// single JSON object is written to the named file ("-" = stdout).
//
// -replay drives a recorded query log (plain pattern lines or xseqd
// -trace-log JSON lines) against a live xseqd at -rate queries/sec
// (0 = unpaced) on -replay-concurrency workers, looping the log -loops
// times, and writes a JSON summary — achieved throughput, latency
// percentiles, succeeded/failed/shed counts — to -json ("-" or empty =
// stdout). -genlog writes a synthetic query log instead: patterns
// extracted from a -dataset/-records corpus, sampled with Zipf skew
// -skew (hot queries repeat, like production traffic).
//
// Exit codes: 0 success, 1 data/experiment error or unreachable replay
// server, 2 usage (including an unreadable or malformed -replay log),
// 3 timeout (-timeout elapsed before the run finished), 4 corrupt index
// snapshot.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xseq"
	"xseq/internal/bench"
)

// Exit codes; see the command doc.
const (
	exitOK      = 0
	exitData    = 1
	exitUsage   = 2
	exitTimeout = 3
	exitCorrupt = 4
)

// exitCode classifies err the same way cmd/xseqquery does: retryable
// timeouts and permanent snapshot corruption get codes of their own.
func exitCode(err error) int {
	var corrupt *xseq.CorruptError
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitTimeout
	case errors.Is(err, bench.ErrBadLog):
		return exitUsage
	case errors.As(err, &corrupt):
		return exitCorrupt
	default:
		return exitData
	}
}

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 0.02, "dataset scale relative to the paper (1.0 = paper size)")
		seed    = flag.Int64("seed", 42, "random seed for data generation")
		queries = flag.Int("queries", 50, "random queries per measurement point")
		pool    = flag.Int("pool", 0, "buffer pool pages for I/O experiments (0 = default 256)")
		list    = flag.Bool("list", false, "list experiments and exit")
		chart   = flag.Bool("chart", false, "render figure experiments as ASCII charts too")
		out     = flag.String("out", "", "also write the output to this file")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")

		jsonOut = flag.String("json", "", "run the sharded-scaling benchmark and write its JSON result to this file ('-' = stdout)")
		dataset = flag.String("dataset", "xmark", "corpus for -json: xmark, dblp, or a synth name like L3F5A25I0P40")
		records = flag.Int("records", 1000, "corpus size for -json")
		shards  = flag.Int("shards", 0, "shard count for -json (0 = GOMAXPROCS)")
		workers = flag.Int("workers", 0, "concurrent shard builds for -json (0 = GOMAXPROCS)")
		qcache  = flag.Int("query-cache", 0, "result-cache entries for the -json cached-vs-uncached pass (0 = default 1024)")

		replay     = flag.String("replay", "", "replay this query log against a live xseqd (see -url, -rate, -loops)")
		replayURL  = flag.String("url", "http://127.0.0.1:8080", "base URL of the xseqd to replay against")
		rate       = flag.Float64("rate", 0, "target replay rate in queries/sec (0 = unpaced)")
		replayConc = flag.Int("replay-concurrency", 8, "concurrent replay workers")
		loops      = flag.Int("loops", 1, "times to replay the whole log")
		genlog     = flag.String("genlog", "", "write a synthetic query log to this file ('-' = stdout) and exit")
		genQueries = flag.Int("genlog-queries", 100, "query lines to write with -genlog")
		skew       = flag.Float64("skew", 1.2, "zipf exponent for -genlog pattern sampling (<= 1 = uniform)")
	)
	flag.Parse()

	if *shards < 0 || *workers < 0 || *qcache < 0 {
		fmt.Fprintln(os.Stderr, "xseqbench: -shards, -workers, and -query-cache must be >= 0")
		os.Exit(exitUsage)
	}
	if *rate < 0 || *replayConc < 0 || *loops < 0 || *genQueries < 0 {
		fmt.Fprintln(os.Stderr, "xseqbench: -rate, -replay-concurrency, -loops, and -genlog-queries must be >= 0")
		os.Exit(exitUsage)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Short)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *genlog != "" {
		var sink io.Writer = os.Stdout
		if *genlog != "-" {
			f, err := os.Create(*genlog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
				os.Exit(exitData)
			}
			defer f.Close()
			sink = f
		}
		n, err := bench.GenerateQueryLog(sink, bench.LogGenConfig{
			Dataset: *dataset,
			Records: *records,
			Queries: *genQueries,
			Skew:    *skew,
			Seed:    *seed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitCode(err))
		}
		fmt.Fprintf(os.Stderr, "xseqbench: wrote %d queries to %s\n", n, *genlog)
		return
	}

	if *replay != "" {
		res, err := bench.Replay(bench.ReplayConfig{
			URL:         *replayURL,
			LogPath:     *replay,
			Rate:        *rate,
			Concurrency: *replayConc,
			Loops:       *loops,
			Context:     ctx,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitCode(err))
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitData)
		}
		blob = append(blob, '\n')
		if *jsonOut == "" || *jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitData)
		}
		return
	}

	if *jsonOut != "" {
		res, err := bench.ShardScale(bench.ScaleConfig{
			Dataset:      *dataset,
			Records:      *records,
			Shards:       *shards,
			Workers:      *workers,
			Queries:      *queries,
			CacheEntries: *qcache,
			Seed:         *seed,
			Context:      ctx,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitCode(err))
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitData)
		}
		blob = append(blob, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitData)
		}
		if !res.Equivalent {
			fmt.Fprintln(os.Stderr, "xseqbench: sharded results diverged from monolithic")
			os.Exit(exitData)
		}
		if !res.CacheEquivalent {
			fmt.Fprintln(os.Stderr, "xseqbench: cached results diverged from uncached")
			os.Exit(exitData)
		}
		if !res.FlatEquivalent {
			fmt.Fprintln(os.Stderr, "xseqbench: flat results diverged from monolithic")
			os.Exit(exitData)
		}
		if !res.TunedEquivalent {
			fmt.Fprintln(os.Stderr, "xseqbench: tuned (weighted) results diverged from untuned")
			os.Exit(exitData)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Queries: *queries, PoolPages: *pool, Context: ctx}
	var selected []bench.Experiment
	if *exps == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "xseqbench: unknown experiment %q (use -list)\n", id)
				os.Exit(exitUsage)
			}
			selected = append(selected, e)
		}
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitData)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "xseqbench: close: %v\n", err)
			}
		}()
		sink = io.MultiWriter(os.Stdout, f)
	}

	for _, e := range selected {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitCode(err))
		}
		start := time.Now()
		tabs, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %s: %v\n", e.ID, err)
			os.Exit(exitCode(err))
		}
		for _, t := range tabs {
			fmt.Fprintln(sink, t.Format())
			if *chart && strings.HasPrefix(e.ID, "fig") {
				if c := t.Chart(nil); c != "" {
					fmt.Fprintln(sink, c)
				}
			}
		}
		fmt.Fprintf(sink, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
