// Command xseqbench regenerates the paper's evaluation tables and figures
// (Section 6). Every experiment prints a paper-style table; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	xseqbench [-exp all|fig14a,table7,...] [-scale 0.02] [-seed 42]
//	          [-queries 50] [-pool 256] [-list]
//
// Scale 1.0 reproduces paper-sized datasets (millions of records; takes a
// long time and a lot of memory); the default keeps each experiment in
// seconds while preserving the reported shapes.
//
// Exit codes: 0 success, 1 data/experiment error, 2 usage, 3 timeout
// (-timeout elapsed before the run finished), 4 corrupt index snapshot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"xseq"
	"xseq/internal/bench"
)

// Exit codes; see the command doc.
const (
	exitOK      = 0
	exitData    = 1
	exitUsage   = 2
	exitTimeout = 3
	exitCorrupt = 4
)

// exitCode classifies err the same way cmd/xseqquery does: retryable
// timeouts and permanent snapshot corruption get codes of their own.
func exitCode(err error) int {
	var corrupt *xseq.CorruptError
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitTimeout
	case errors.As(err, &corrupt):
		return exitCorrupt
	default:
		return exitData
	}
}

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Float64("scale", 0.02, "dataset scale relative to the paper (1.0 = paper size)")
		seed    = flag.Int64("seed", 42, "random seed for data generation")
		queries = flag.Int("queries", 50, "random queries per measurement point")
		pool    = flag.Int("pool", 0, "buffer pool pages for I/O experiments (0 = default 256)")
		list    = flag.Bool("list", false, "list experiments and exit")
		chart   = flag.Bool("chart", false, "render figure experiments as ASCII charts too")
		out     = flag.String("out", "", "also write the output to this file")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Short)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Queries: *queries, PoolPages: *pool, Context: ctx}
	var selected []bench.Experiment
	if *exps == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exps, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "xseqbench: unknown experiment %q (use -list)\n", id)
				os.Exit(exitUsage)
			}
			selected = append(selected, e)
		}
	}

	var sink io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitData)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "xseqbench: close: %v\n", err)
			}
		}()
		sink = io.MultiWriter(os.Stdout, f)
	}

	for _, e := range selected {
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %v\n", err)
			os.Exit(exitCode(err))
		}
		start := time.Now()
		tabs, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xseqbench: %s: %v\n", e.ID, err)
			os.Exit(exitCode(err))
		}
		for _, t := range tabs {
			fmt.Fprintln(sink, t.Format())
			if *chart && strings.HasPrefix(e.ID, "fig") {
				if c := t.Chart(nil); c != "" {
					fmt.Fprintln(sink, c)
				}
			}
		}
		fmt.Fprintf(sink, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
