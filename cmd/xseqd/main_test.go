package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"xseq"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, exitOK},
		{"generic", errors.New("bind: address already in use"), exitFailure},
		{"deadline", context.DeadlineExceeded, exitTimeout},
		{"wrapped cancel", fmt.Errorf("startup: %w", context.Canceled), exitTimeout},
		{"snapshot corrupt", fmt.Errorf("server: initial snapshot: %w",
			&xseq.CorruptError{Reason: "checksum mismatch"}), exitCorrupt},
		{"wal corrupt", fmt.Errorf("server: open wal: %w",
			&xseq.WALCorruptError{Path: "ingest.wal", Offset: 20, Reason: "torn entry"}), exitCorrupt},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestExitCodesDistinct pins the contract supervisors rely on: a corrupt
// log under -wal-strict must be distinguishable from a transient failure,
// or a restart loop would grind on a file that needs operator attention.
func TestExitCodesDistinct(t *testing.T) {
	codes := map[int]string{exitOK: "ok", exitFailure: "failure", exitUsage: "usage", exitTimeout: "timeout", exitCorrupt: "corrupt"}
	if len(codes) != 5 {
		t.Fatalf("exit codes collide: %v", codes)
	}
}

func TestParseCheckpointEvery(t *testing.T) {
	cases := []struct {
		in          string
		wantEntries int
		wantBytes   int64
		ok          bool
	}{
		{"", 0, 0, true},
		{"10000", 10000, 0, true},
		{"1", 1, 0, true},
		{"64MB", 0, 64 << 20, true},
		{"64mb", 0, 64 << 20, true},
		{" 2 GB ", 0, 2 << 30, true},
		{"512KB", 0, 512 << 10, true},
		{"128B", 0, 128, true},
		{"0", 0, 0, false},
		{"-5", 0, 0, false},
		{"0MB", 0, 0, false},
		{"MB", 0, 0, false},
		{"ten", 0, 0, false},
		{"10XB", 0, 0, false},
		{"9999999999GB", 0, 0, false}, // overflows int64 bytes
	}
	for _, c := range cases {
		entries, bytes, err := parseCheckpointEvery(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseCheckpointEvery(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if entries != c.wantEntries || bytes != c.wantBytes {
			t.Errorf("parseCheckpointEvery(%q) = (%d, %d), want (%d, %d)",
				c.in, entries, bytes, c.wantEntries, c.wantBytes)
		}
	}
}

func TestValidateMode(t *testing.T) {
	cases := []struct {
		index, wal, follow string
		ok                 bool
	}{
		{"", "", "", false},
		{"snap.idx", "", "", true},
		{"", "ingest.wal", "", true},
		{"", "", "http://primary:8080", true},
		{"", "ingest.wal", "http://primary:8080", true}, // durable follower
		{"snap.idx", "ingest.wal", "", false},
		{"snap.idx", "", "http://primary:8080", false},
	}
	for _, c := range cases {
		err := validateMode(c.index, c.wal, c.follow)
		if (err == nil) != c.ok {
			t.Errorf("validateMode(%q, %q, %q) = %v, want ok=%v", c.index, c.wal, c.follow, err, c.ok)
		}
	}
}
