// Command xseqd serves XPath-subset queries, hardened for production
// traffic: admission control sheds overload with 429 + Retry-After instead
// of queueing without bound, every query runs under a deadline wired into
// the index's cancellable match loops, and SIGINT/SIGTERM drains
// gracefully: stop admitting, finish in-flight queries, cancel stragglers
// after the -drain budget.
//
// It runs in one of three modes:
//
//   - Static (-index): serve a saved snapshot. SIGHUP (or -watch mtime
//     polling) hot-reloads it with an atomic swap — a corrupt replacement
//     leaves the old snapshot serving and flips /healthz to "degraded".
//   - Primary (-wal): a dynamic index over a crash-safe write-ahead log.
//     POST /insert acknowledges only after the entry is fsynced; on
//     restart the log replays, so kill -9 loses nothing acknowledged.
//     A torn tail is truncated by default; -wal-strict refuses it with
//     exit code 4 instead. -wal-sync > 0 batches fsyncs (group commit).
//     -checkpoint-every N (entries) or SIZE (e.g. 64MB) arms automatic
//     checkpoints: the log is compacted into a snapshot (-checkpoint,
//     default <wal>.ckpt), rotated, and served on GET /snapshot; restarts
//     seed from the snapshot and replay only the short log tail.
//   - Follower (-follow): tail a primary's log over HTTP and serve
//     read-only replicas of its data. Reconnects with jittered
//     exponential backoff (honouring the primary's Retry-After) and
//     resumes from its own position; add -wal to persist the stream
//     locally and rejoin without a full re-fetch. When the primary has
//     rotated its log past the follower's position, the follower
//     self-heals: it downloads the primary's checkpoint from /snapshot,
//     verifies length and CRC, swaps it in without dropping a single
//     query, and resumes tailing from the snapshot's position.
//
// Endpoints:
//
//	GET  /query?q=/site//person/age[text='32']&limit=10&timeout=2s&verify=1
//	POST /insert?id=7   (primary) body = one XML document; 200 once durable
//	GET  /wal?from=1    (primary) stream framed log entries; long-polls
//	GET  /snapshot      (primary) stream the latest checkpoint; X-Snapshot-Seq/-Crc32
//	GET  /stats         index shape, admission/ingest/durability/replication
//	GET  /healthz       liveness + degradation detail (always 200 while serving)
//	GET  /readyz        503 while draining, 200 otherwise
//
// Usage:
//
//	xseqquery -data corpus.xml -saveindex /var/lib/xseq/corpus.idx
//	xseqd -index /var/lib/xseq/corpus.idx -addr :8080
//	xseqd -wal /var/lib/xseq/ingest.wal -addr :8080          # primary
//	xseqd -follow http://primary:8080 -addr :8081            # follower
//	curl 'localhost:8080/query?q=/rec/title'
//	kill -HUP $(pidof xseqd)    # static mode: pick up a rewritten snapshot
//
// Exit codes: 0 ok, 1 startup/listener failure, 2 usage, 3 startup
// timeout, 4 unrecoverable log or snapshot corruption (notably a torn or
// corrupt WAL under -wal-strict) — scripts can distinguish "retry me"
// from "restore from backup".
//
// The -chaos-* flags arm per-route fault injection on /query (latency,
// errors, panics) for resilience drills; all default to off. -pprof serves
// net/http/pprof and the Prometheus /metrics export on a separate private
// listener (off by default) so profiles and metric scrapes are reachable
// without exposing them on the query port. -trace-log appends one
// structured JSON line per query — trace id, per-shard latency spans,
// fan-out/merge split, kernel counters, cache hit/miss — which
// xseqbench -replay can drive back against a live server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xseq"
	"xseq/internal/faultio"
	"xseq/internal/server"
)

// Exit codes, part of the command's contract (mirrors xseqquery).
const (
	exitOK      = 0
	exitFailure = 1
	exitUsage   = 2
	exitTimeout = 3
	exitCorrupt = 4
)

// exitCode classifies a startup error: corruption (a bad snapshot, or a
// torn/corrupt WAL under -wal-strict) is permanent and gets its own code so
// supervisors don't restart-loop over a log that needs operator attention.
func exitCode(err error) int {
	var walCorrupt *xseq.WALCorruptError
	var snapCorrupt *xseq.CorruptError
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitTimeout
	case errors.As(err, &walCorrupt), errors.As(err, &snapCorrupt):
		return exitCorrupt
	default:
		return exitFailure
	}
}

func main() {
	var (
		index    = flag.String("index", "", "index snapshot file to serve (static mode; written by xseqquery -saveindex)")
		addr     = flag.String("addr", ":8080", "listen address")
		maxConc  = flag.Int("max-concurrent", 32, "queries executing at once")
		maxQueue = flag.Int("max-queue", 0, "queries waiting for a slot (0 = 2*max-concurrent); beyond this, 429")
		timeout  = flag.Duration("timeout", 5*time.Second, "default per-query deadline")
		maxTO    = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested ?timeout")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget before in-flight queries are cancelled")
		watch    = flag.Duration("watch", 0, "poll the snapshot file at this interval and hot-reload on change (0 = SIGHUP only)")
		shards   = flag.Int("shards", 0, "require the snapshot (and every reload) to have exactly this many shards (0 = accept any layout)")
		layout   = flag.String("layout", "", "require the snapshot (and every reload) to have this layout: monolithic, sharded, or flat (\"\" = accept any)")
		workers  = flag.Int("workers", 0, "cap OS threads executing Go code, the parallelism of sharded query fan-out (0 = GOMAXPROCS default)")
		qcache   = flag.Int("query-cache", 0, "cache up to this many query results per snapshot, invalidated on reload (0 = no cache); hit rates in /stats")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060); keep it private — off by default")
		traceLog = flag.String("trace-log", "", "append one structured JSON line per query (trace id, per-shard latency, fan-out/merge split, cache hit/miss) to this file; '-' = stderr")
		topK     = flag.Int("pattern-topk", 0, "track this many hot query patterns in /stats (0 = default 64)")

		adaptive     = flag.Bool("adaptive", false, "let the index tune itself: derive weights from the live query mix and hot-swap a re-sequenced rebuild when drift crosses the threshold; static mode needs a snapshot with retained documents (xseqquery -saveindex keeps them)")
		adaptPoll    = flag.Duration("adaptive-poll", 0, "how often the adaptive loop samples the query mix (0 = default 2s)")
		adaptDrift   = flag.Float64("adaptive-drift", 0, "weight-vector drift in (0,1] that triggers a re-sequenced rebuild (0 = default 0.25)")
		adaptMinIval = flag.Duration("adaptive-min-interval", 0, "rate limit between successful adaptive rebuilds (0 = default 30s)")

		walPath   = flag.String("wal", "", "primary mode: write-ahead log path; inserts are durable and replayed on restart")
		walStrict = flag.Bool("wal-strict", false, "refuse a torn or corrupt WAL tail at startup (exit 4) instead of truncating it")
		walSync   = flag.Duration("wal-sync", 0, "group-commit window: batch WAL fsyncs up to this long (0 = fsync per insert)")
		follow    = flag.String("follow", "", "follower mode: tail this primary's /wal and serve read-only replicas")
		ckptEvery = flag.String("checkpoint-every", "", "checkpoint the WAL once it holds this many entries (e.g. 10000) or bytes (e.g. 64MB); requires -wal")
		ckptPath  = flag.String("checkpoint", "", "checkpoint snapshot path (default <wal>.ckpt); served on GET /snapshot and used to seed restarts")

		chaosLatency      = flag.Duration("chaos-latency", 0, "chaos: latency injected into /query when -chaos-latency-every fires")
		chaosLatencyEvery = flag.Int("chaos-latency-every", 0, "chaos: inject latency into every nth /query (0 = off)")
		chaosErrorEvery   = flag.Int("chaos-error-every", 0, "chaos: fail every nth /query with 500 (0 = off)")
		chaosPanicEvery   = flag.Int("chaos-panic-every", 0, "chaos: panic on every nth /query, contained to a 500 (0 = off)")
	)
	flag.Parse()
	if err := validateMode(*index, *walPath, *follow); err != nil {
		fmt.Fprintf(os.Stderr, "xseqd: %v\n", err)
		os.Exit(exitUsage)
	}
	ckptEntries, ckptBytes, err := parseCheckpointEvery(*ckptEvery)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xseqd: %v\n", err)
		os.Exit(exitUsage)
	}
	if *ckptEvery != "" && *walPath == "" {
		fmt.Fprintln(os.Stderr, "xseqd: -checkpoint-every requires -wal (the policy rotates the log it checkpoints)")
		os.Exit(exitUsage)
	}
	if *ckptPath != "" && *walPath == "" && *follow == "" {
		fmt.Fprintln(os.Stderr, "xseqd: -checkpoint requires -wal or -follow")
		os.Exit(exitUsage)
	}
	if *shards < 0 || *workers < 0 || *qcache < 0 {
		fmt.Fprintln(os.Stderr, "xseqd: -shards, -workers, and -query-cache must be >= 0")
		os.Exit(exitUsage)
	}
	if *adaptive && *follow != "" {
		fmt.Fprintln(os.Stderr, "xseqd: -adaptive is incompatible with -follow (a follower serves the primary's sequencing)")
		os.Exit(exitUsage)
	}
	if !*adaptive && (*adaptPoll != 0 || *adaptDrift != 0 || *adaptMinIval != 0) {
		fmt.Fprintln(os.Stderr, "xseqd: -adaptive-poll, -adaptive-drift, and -adaptive-min-interval require -adaptive")
		os.Exit(exitUsage)
	}
	if *adaptDrift < 0 || *adaptDrift > 1 {
		fmt.Fprintln(os.Stderr, "xseqd: -adaptive-drift must be in (0, 1]")
		os.Exit(exitUsage)
	}
	switch *layout {
	case "", "monolithic", "sharded", "flat":
	default:
		fmt.Fprintf(os.Stderr, "xseqd: -layout %q (want monolithic, sharded, or flat)\n", *layout)
		os.Exit(exitUsage)
	}
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	cfg := server.Config{
		IndexPath:              *index,
		WALPath:                *walPath,
		WALStrict:              *walStrict,
		WALSyncWindow:          *walSync,
		FollowURL:              *follow,
		CheckpointEveryEntries: ckptEntries,
		CheckpointEveryBytes:   ckptBytes,
		CheckpointPath:         *ckptPath,
		MaxConcurrent:          *maxConc,
		MaxQueue:               *maxQueue,
		DefaultTimeout:         *timeout,
		MaxTimeout:             *maxTO,
		ExpectShards:           *shards,
		ExpectLayout:           *layout,
		QueryCacheEntries:      *qcache,
		PatternTopK:            *topK,
		Adaptive:               *adaptive,
		AdaptivePoll:           *adaptPoll,
		AdaptiveDrift:          *adaptDrift,
		AdaptiveMinInterval:    *adaptMinIval,
	}
	if *traceLog != "" {
		if *traceLog == "-" {
			cfg.TraceLog = os.Stderr
		} else {
			f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xseqd: -trace-log: %v\n", err)
				os.Exit(exitFailure)
			}
			defer f.Close()
			cfg.TraceLog = f
		}
	}
	if *chaosLatencyEvery > 0 || *chaosErrorEvery > 0 || *chaosPanicEvery > 0 {
		faults := server.ChaosFaults{}
		if *chaosLatencyEvery > 0 {
			faults.Latency = *chaosLatency
			faults.LatencyOn = faultio.Every(*chaosLatencyEvery)
		}
		if *chaosErrorEvery > 0 {
			faults.ErrorOn = faultio.Every(*chaosErrorEvery)
		}
		if *chaosPanicEvery > 0 {
			faults.PanicOn = faultio.Every(*chaosPanicEvery)
		}
		cfg.Chaos = server.Chaos{"/query": faults}
		log.Printf("xseqd: chaos armed on /query (latency %v every %d, error every %d, panic every %d)",
			*chaosLatency, *chaosLatencyEvery, *chaosErrorEvery, *chaosPanicEvery)
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Printf("xseqd: %v", err)
		os.Exit(exitCode(err))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// -pprof serves the profiling endpoints on their own listener with an
	// explicit mux: nothing is registered on http.DefaultServeMux and the
	// query listener never exposes /debug/pprof. The address should stay
	// private (localhost or an internal interface); a profiler failure is
	// fatal so a typo'd address is caught at startup, not at incident time.
	if *pprofOn != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// Prometheus export rides the same private listener: scrapers reach
		// it on the operations port, never the query port.
		mux.Handle("/metrics", srv.MetricsHandler())
		go func() {
			log.Printf("xseqd: pprof on http://%s/debug/pprof/, metrics on http://%s/metrics", *pprofOn, *pprofOn)
			if err := http.ListenAndServe(*pprofOn, mux); err != nil {
				log.Printf("xseqd: pprof listener failed: %v", err)
				os.Exit(1)
			}
		}()
	}

	// SIGHUP hot-reload and -watch polling are snapshot-swap machinery;
	// dynamic modes recover state from the log instead.
	if *index != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				_ = srv.Reload() // failure keeps old snapshot; visible in /healthz
			}
		}()
		watchCtx, stopWatch := context.WithCancel(context.Background())
		defer stopWatch()
		if *watch > 0 {
			go srv.WatchFile(watchCtx, *watch)
		}
	}

	source := *index
	switch {
	case *follow != "":
		source = "follower of " + *follow
		if *walPath != "" {
			source += " (durable: " + *walPath + ")"
		}
	case *walPath != "":
		source = "primary over " + *walPath
		if *ckptEvery != "" {
			source += " (checkpoint every " + *ckptEvery + ")"
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("xseqd: serving %s on %s (admit %d, queue %d, drain budget %v)",
		source, *addr, *maxConc, cfg.MaxQueue, *drain)

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Printf("xseqd: listener failed: %v", err)
		os.Exit(exitFailure)
	case sig := <-term:
		log.Printf("xseqd: %v: draining (budget %v)", sig, *drain)
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener while queries drain; Shutdown also waits for
	// handlers, but srv.Drain is the authority on in-flight queries (it
	// cancels stragglers at the budget).
	go func() { _ = httpSrv.Shutdown(dctx) }()
	if err := srv.Drain(dctx); err != nil {
		log.Printf("xseqd: drain budget spent, stragglers cancelled: %v", err)
	} else {
		log.Printf("xseqd: drained cleanly")
	}
	_ = httpSrv.Close()
	// Stop the replication loop (follower) and close the WAL (dynamic
	// modes) only after the drain: acknowledged inserts are already
	// durable, this just releases the file handle cleanly.
	_ = srv.Close()
}

// parseCheckpointEvery parses the -checkpoint-every threshold: a bare
// positive integer counts WAL entries; a KB/MB/GB/B suffix
// (case-insensitive) makes it a byte bound. "" means the policy is off.
func parseCheckpointEvery(s string) (entries int, bytes int64, err error) {
	if s == "" {
		return 0, 0, nil
	}
	upper := strings.ToUpper(strings.TrimSpace(s))
	// Longest suffix first so "64KB" is not parsed as "64K" + "B".
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"GB", 1 << 30}, {"MB", 1 << 20}, {"KB", 1 << 10}, {"B", 1}} {
		if num, ok := strings.CutSuffix(upper, u.suffix); ok {
			n, perr := strconv.ParseInt(strings.TrimSpace(num), 10, 64)
			if perr != nil || n <= 0 || n > (1<<62)/u.mult {
				return 0, 0, fmt.Errorf("bad -checkpoint-every %q: want a positive size like 64MB", s)
			}
			return 0, n * u.mult, nil
		}
	}
	n, perr := strconv.Atoi(upper)
	if perr != nil || n <= 0 {
		return 0, 0, fmt.Errorf("bad -checkpoint-every %q: want a positive entry count or a size like 64MB", s)
	}
	return n, 0, nil
}

// validateMode enforces that exactly one serving mode is selected: -index
// (static), -wal (primary), or -follow (follower, optionally with -wal for
// a durable local copy of the replicated stream).
func validateMode(index, walPath, follow string) error {
	switch {
	case index == "" && walPath == "" && follow == "":
		return errors.New("one of -index (static), -wal (primary), or -follow (follower) is required")
	case index != "" && (walPath != "" || follow != ""):
		return errors.New("-index serves an immutable snapshot; it cannot be combined with -wal or -follow")
	}
	return nil
}
