// Command xseqflat converts a saved index snapshot (any heap layout
// written by xseqquery -saveindex) to the flat single-file format, builds
// flat snapshots straight from a corpus, and verifies existing flat
// snapshots.
//
// Usage:
//
//	xseqflat -in corpus.idx -out corpus.flat     # convert heap → flat
//	xseqflat -data corpus.xml -out corpus.flat   # build corpus → flat
//	xseqflat -check corpus.flat                  # full checksum sweep
//	xseqflat -in corpus.idx -out c.flat -verify  # convert, reopen, sweep
//
// The flat file opens in O(dictionary) time regardless of corpus size and
// is queried in place through mmap — serve it with `xseqd -index corpus.flat
// -layout flat`. Converting a sharded snapshot requires it to have been
// built with KeepDocuments (the corpus is re-indexed as one partition).
// -strategy selects the sequencing order for -data builds: gbest (the
// default) or weighted; the positional baselines (depth-first,
// breadth-first) cannot back a queryable flat snapshot and are refused.
//
// Exit codes: 0 success, 1 data error (unreadable input, unsupported
// conversion, write failure), 2 usage, 4 corrupt snapshot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"xseq"
)

// Exit codes; see the command doc.
const (
	exitOK      = 0
	exitData    = 1
	exitUsage   = 2
	exitCorrupt = 4
)

// exitCode classifies err: snapshot corruption (permanent — rebuild or
// restore) gets a distinct code from generic data errors.
func exitCode(err error) int {
	var corrupt *xseq.CorruptError
	switch {
	case err == nil:
		return exitOK
	case errors.As(err, &corrupt):
		return exitCorrupt
	default:
		return exitData
	}
}

func main() {
	var (
		in     = flag.String("in", "", "input snapshot (monolithic, sharded, or already flat)")
		data   = flag.String("data", "", "corpus XML file to index straight into a flat snapshot (alternative to -in)")
		out    = flag.String("out", "", "output flat snapshot path (crash-safe: temp + fsync + rename)")
		check  = flag.String("check", "", "verify this flat snapshot's checksums instead of converting")
		verify = flag.Bool("verify", false, "after converting, reopen -out and run the full checksum sweep")
		strat  = flag.String("strategy", "", "sequencing strategy for -data builds: gbest (default) or weighted; positional baselines are not flat-queryable")
		quiet  = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	strategy, err := xseq.CanonicalStrategy(*strat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xseqflat: %v\n", err)
		os.Exit(exitUsage)
	}
	if strategy == xseq.StrategyDepthFirst || strategy == xseq.StrategyBreadthFirst {
		fmt.Fprintf(os.Stderr, "xseqflat: -strategy %s cannot back a queryable flat snapshot\n", strategy)
		os.Exit(exitUsage)
	}
	if *strat != "" && *data == "" {
		fmt.Fprintln(os.Stderr, "xseqflat: -strategy applies to -data builds; -in snapshots keep the strategy they were built with")
		os.Exit(exitUsage)
	}
	var summary string
	switch {
	case *check != "":
		if *in != "" || *out != "" || *data != "" {
			fmt.Fprintln(os.Stderr, "xseqflat: -check stands alone (no -in/-data/-out)")
			os.Exit(exitUsage)
		}
		summary, err = checkFlat(*check)
	case *in != "" && *data != "":
		fmt.Fprintln(os.Stderr, "xseqflat: -in and -data are mutually exclusive")
		os.Exit(exitUsage)
	case *in != "" && *out != "":
		summary, err = convert(*in, *out, *verify)
	case *data != "" && *out != "":
		summary, err = buildFlat(*data, *out, strategy, *verify)
	default:
		fmt.Fprintln(os.Stderr, "xseqflat: need -in/-data and -out (convert/build) or -check (verify); see -h")
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xseqflat: %v\n", err)
		os.Exit(exitCode(err))
	}
	if !*quiet {
		fmt.Println(summary)
	}
}

// checkFlat opens a flat snapshot and runs the full checksum sweep.
func checkFlat(path string) (string, error) {
	ix, err := xseq.LoadFile(path)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	defer ix.Close()
	if ix.Layout() != xseq.LayoutFlat {
		return "", fmt.Errorf("%s: layout is %s, not flat (nothing to check — heap snapshots verify at load)", path, ix.Layout())
	}
	if err := ix.VerifyIntegrity(); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	st := ix.Stats()
	return fmt.Sprintf("%s: ok — %d documents, %d index nodes, %d bytes",
		path, st.Documents, st.IndexNodes, st.Flat.MappedBytes), nil
}

// buildFlat indexes a corpus file directly into a flat snapshot under the
// named sequencing strategy.
func buildFlat(data, out, strategy string, verify bool) (string, error) {
	docs, err := xseq.LoadCorpusFile(data)
	if err != nil {
		return "", err
	}
	ix, err := xseq.Build(docs, xseq.Config{
		Strategy:      strategy,
		KeepDocuments: true,
	})
	if err != nil {
		return "", fmt.Errorf("build %s: %w", data, err)
	}
	defer ix.Close()
	if err := ix.SaveFlatFile(out); err != nil {
		return "", fmt.Errorf("save %s: %w", out, err)
	}
	flat, err := xseq.LoadFile(out)
	if err != nil {
		return "", fmt.Errorf("reopen %s: %w", out, err)
	}
	defer flat.Close()
	if verify {
		if err := flat.VerifyIntegrity(); err != nil {
			return "", fmt.Errorf("verify %s: %w", out, err)
		}
	}
	st := flat.Stats()
	return fmt.Sprintf("%s → %s: %d documents, %d index nodes, %d bytes (%s strategy)",
		data, out, st.Documents, st.IndexNodes, st.Flat.MappedBytes, strategy), nil
}

// convert loads any snapshot and writes it out flat; with verify it reopens
// the result and runs the full checksum sweep before reporting success.
func convert(in, out string, verify bool) (string, error) {
	ix, err := xseq.LoadFile(in)
	if err != nil {
		return "", fmt.Errorf("%s: %w", in, err)
	}
	defer ix.Close()
	if err := ix.SaveFlatFile(out); err != nil {
		return "", fmt.Errorf("convert %s: %w", in, err)
	}
	flat, err := xseq.LoadFile(out)
	if err != nil {
		return "", fmt.Errorf("reopen %s: %w", out, err)
	}
	defer flat.Close()
	if verify {
		if err := flat.VerifyIntegrity(); err != nil {
			return "", fmt.Errorf("verify %s: %w", out, err)
		}
	}
	st := flat.Stats()
	return fmt.Sprintf("%s → %s: %d documents, %d index nodes, %d bytes (%s layout in)",
		in, out, st.Documents, st.IndexNodes, st.Flat.MappedBytes, ix.Layout()), nil
}
