// Command xseqflat converts a saved index snapshot (any heap layout
// written by xseqquery -saveindex) to the flat single-file format, and
// verifies existing flat snapshots.
//
// Usage:
//
//	xseqflat -in corpus.idx -out corpus.flat     # convert heap → flat
//	xseqflat -check corpus.flat                  # full checksum sweep
//	xseqflat -in corpus.idx -out c.flat -verify  # convert, reopen, sweep
//
// The flat file opens in O(dictionary) time regardless of corpus size and
// is queried in place through mmap — serve it with `xseqd -index corpus.flat
// -layout flat`. Converting a sharded snapshot requires it to have been
// built with KeepDocuments (the corpus is re-indexed as one partition).
//
// Exit codes: 0 success, 1 data error (unreadable input, unsupported
// conversion, write failure), 2 usage, 4 corrupt snapshot.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"xseq"
)

// Exit codes; see the command doc.
const (
	exitOK      = 0
	exitData    = 1
	exitUsage   = 2
	exitCorrupt = 4
)

// exitCode classifies err: snapshot corruption (permanent — rebuild or
// restore) gets a distinct code from generic data errors.
func exitCode(err error) int {
	var corrupt *xseq.CorruptError
	switch {
	case err == nil:
		return exitOK
	case errors.As(err, &corrupt):
		return exitCorrupt
	default:
		return exitData
	}
}

func main() {
	var (
		in     = flag.String("in", "", "input snapshot (monolithic, sharded, or already flat)")
		out    = flag.String("out", "", "output flat snapshot path (crash-safe: temp + fsync + rename)")
		check  = flag.String("check", "", "verify this flat snapshot's checksums instead of converting")
		verify = flag.Bool("verify", false, "after converting, reopen -out and run the full checksum sweep")
		quiet  = flag.Bool("q", false, "suppress the summary line")
	)
	flag.Parse()
	var summary string
	var err error
	switch {
	case *check != "":
		if *in != "" || *out != "" {
			fmt.Fprintln(os.Stderr, "xseqflat: -check stands alone (no -in/-out)")
			os.Exit(exitUsage)
		}
		summary, err = checkFlat(*check)
	case *in != "" && *out != "":
		summary, err = convert(*in, *out, *verify)
	default:
		fmt.Fprintln(os.Stderr, "xseqflat: need -in and -out (convert) or -check (verify); see -h")
		os.Exit(exitUsage)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xseqflat: %v\n", err)
		os.Exit(exitCode(err))
	}
	if !*quiet {
		fmt.Println(summary)
	}
}

// checkFlat opens a flat snapshot and runs the full checksum sweep.
func checkFlat(path string) (string, error) {
	ix, err := xseq.LoadFile(path)
	if err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	defer ix.Close()
	if ix.Layout() != xseq.LayoutFlat {
		return "", fmt.Errorf("%s: layout is %s, not flat (nothing to check — heap snapshots verify at load)", path, ix.Layout())
	}
	if err := ix.VerifyIntegrity(); err != nil {
		return "", fmt.Errorf("%s: %w", path, err)
	}
	st := ix.Stats()
	return fmt.Sprintf("%s: ok — %d documents, %d index nodes, %d bytes",
		path, st.Documents, st.IndexNodes, st.Flat.MappedBytes), nil
}

// convert loads any snapshot and writes it out flat; with verify it reopens
// the result and runs the full checksum sweep before reporting success.
func convert(in, out string, verify bool) (string, error) {
	ix, err := xseq.LoadFile(in)
	if err != nil {
		return "", fmt.Errorf("%s: %w", in, err)
	}
	defer ix.Close()
	if err := ix.SaveFlatFile(out); err != nil {
		return "", fmt.Errorf("convert %s: %w", in, err)
	}
	flat, err := xseq.LoadFile(out)
	if err != nil {
		return "", fmt.Errorf("reopen %s: %w", out, err)
	}
	defer flat.Close()
	if verify {
		if err := flat.VerifyIntegrity(); err != nil {
			return "", fmt.Errorf("verify %s: %w", out, err)
		}
	}
	st := flat.Stats()
	return fmt.Sprintf("%s → %s: %d documents, %d index nodes, %d bytes (%s layout in)",
		in, out, st.Documents, st.IndexNodes, st.Flat.MappedBytes, ix.Layout()), nil
}
