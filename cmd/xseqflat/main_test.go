package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xseq"
)

// saveSnapshot builds an n-document index (optionally sharded) and saves it
// in the heap format.
func saveSnapshot(t *testing.T, path string, n, shards int) {
	t.Helper()
	docs := make([]*xseq.Document, n)
	for i := range docs {
		d, err := xseq.ParseDocumentString(int32(i),
			fmt.Sprintf("<rec><title>t%d</title><city>boston</city></rec>", i))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	ix, err := xseq.Build(docs, xseq.Config{Shards: shards, KeepDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestConvertAndCheck(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"monolithic", 0},
		{"sharded", 3},
	} {
		in := filepath.Join(dir, tc.name+".idx")
		out := filepath.Join(dir, tc.name+".flat")
		saveSnapshot(t, in, 5, tc.shards)
		summary, err := convert(in, out, true)
		if err != nil {
			t.Fatalf("%s: convert: %v", tc.name, err)
		}
		if !strings.Contains(summary, "5 documents") {
			t.Fatalf("%s: summary %q", tc.name, summary)
		}
		if summary, err = checkFlat(out); err != nil {
			t.Fatalf("%s: check: %v", tc.name, err)
		}
		if !strings.Contains(summary, "ok") {
			t.Fatalf("%s: check summary %q", tc.name, summary)
		}
		// The converted snapshot answers like the original.
		ix, err := xseq.LoadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := ix.Query("/rec/city[text='boston']")
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 5 {
			t.Fatalf("%s: converted snapshot returned %d ids", tc.name, len(ids))
		}
		ix.Close()
	}
}

func TestCheckRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "x.idx")
	out := filepath.Join(dir, "x.flat")
	saveSnapshot(t, in, 3, 0)
	if _, err := convert(in, out, false); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-8] ^= 0x04
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = checkFlat(out)
	if err == nil {
		t.Fatal("check accepted a damaged flat snapshot")
	}
	if exitCode(err) != exitCorrupt {
		t.Fatalf("exit code %d for %v, want %d", exitCode(err), err, exitCorrupt)
	}
}

func TestCheckRejectsHeapSnapshot(t *testing.T) {
	in := filepath.Join(t.TempDir(), "x.idx")
	saveSnapshot(t, in, 2, 0)
	if _, err := checkFlat(in); err == nil {
		t.Fatal("check accepted a heap snapshot")
	}
}

func TestExitCodeClasses(t *testing.T) {
	if got := exitCode(nil); got != exitOK {
		t.Fatalf("nil → %d", got)
	}
	if got := exitCode(&xseq.CorruptError{Reason: "x"}); got != exitCorrupt {
		t.Fatalf("corrupt → %d", got)
	}
	if got := exitCode(os.ErrNotExist); got != exitData {
		t.Fatalf("data → %d", got)
	}
}

// TestBuildFlatFromCorpus covers the -data path: a corpus indexed straight
// into a flat snapshot, under both queryable strategies.
func TestBuildFlatFromCorpus(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.xml")
	var sb strings.Builder
	sb.WriteString("<corpus>")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "<rec><title>t%d</title><city>boston</city></rec>", i)
	}
	sb.WriteString("</corpus>")
	if err := os.WriteFile(corpus, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []string{xseq.StrategyGBest, xseq.StrategyWeighted} {
		out := filepath.Join(dir, strategy+".flat")
		summary, err := buildFlat(corpus, out, strategy, true)
		if err != nil {
			t.Fatalf("%s: buildFlat: %v", strategy, err)
		}
		if !strings.Contains(summary, "4 documents") || !strings.Contains(summary, strategy) {
			t.Fatalf("%s: summary %q", strategy, summary)
		}
		ix, err := xseq.LoadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Layout() != xseq.LayoutFlat {
			t.Fatalf("%s: layout = %s", strategy, ix.Layout())
		}
		ids, err := ix.Query("/rec/city[text='boston']")
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 4 {
			t.Fatalf("%s: built snapshot returned %d ids", strategy, len(ids))
		}
		ix.Close()
	}
}

// TestStrategyFlagParsing pins the -strategy contract both CLIs share:
// every canonical name and alias resolves, unknown names error (main maps
// that to exit 2), and the positional baselines are identified for the
// flat-incompatibility guard.
func TestStrategyFlagParsing(t *testing.T) {
	for in, want := range map[string]string{
		"":              xseq.StrategyGBest,
		"gbest":         xseq.StrategyGBest,
		"g_best":        xseq.StrategyGBest,
		"weighted":      xseq.StrategyWeighted,
		"depth-first":   xseq.StrategyDepthFirst,
		"dfs":           xseq.StrategyDepthFirst,
		"breadth-first": xseq.StrategyBreadthFirst,
		"BFS":           xseq.StrategyBreadthFirst,
	} {
		got, err := xseq.CanonicalStrategy(in)
		if err != nil || got != want {
			t.Errorf("CanonicalStrategy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := xseq.CanonicalStrategy("zigzag"); err == nil ||
		!strings.Contains(err.Error(), "gbest") {
		t.Errorf("unknown strategy: err = %v (should list valid names for the usage message)", err)
	}
	if got := xseq.Strategies(); len(got) != 4 {
		t.Errorf("Strategies() = %v", got)
	}
}
