package xseq

// Allocation-regression tests over the public API: the steady-state Query
// path on a warm index must perform a small fixed number of allocations per
// operation on every engine layout — monolithic, sharded, and dynamic. The
// kernel-level counterpart (pre-parsed patterns, tighter bounds) lives in
// internal/index/alloc_test.go; here the per-op cost includes query-string
// parsing, so the bounds are layout-shaped constants, and the point is that
// none of them scale with corpus size or shard contents.

import (
	"context"
	"sync"
	"testing"

	"xseq/internal/datagen"
	"xseq/internal/query"
	"xseq/internal/telemetry"
)

// allocDocs generates a deterministic synthetic corpus as public Documents.
func allocDocs(t testing.TB, n int) []*Document {
	t.Helper()
	_, inner, err := datagen.Synth(datagen.SynthParams{L: 3, F: 5, A: 25, I: 10, P: 40, Seed: 1}, n)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]*Document, len(inner))
	for i, d := range inner {
		docs[i] = &Document{id: d.ID, root: d.Root}
	}
	return docs
}

// queryFn adapts the two index types to one measurement loop.
type queryFn func(q string) ([]int32, error)

func TestQueryAllocsAllLayouts(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool reuse; allocation counts are asserted in non-race runs")
	}
	docs := allocDocs(t, 200)

	mono, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(docs, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := BuildDynamic(docs, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(docs, Config{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"/n0", "/n0/n1", "//n2", "/n0/*"}

	// Bounds are per-layout constants: the sharded fan-out spawns one
	// goroutine per shard and merges per-shard results, so its fixed cost
	// is O(shards) allocations on top of the monolithic kernel's; the
	// dynamic engine with an empty delta adds only its dispatch; the flat
	// engine reads the mapped bytes through the same pooled scratch as the
	// monolithic kernel, so it shares its bound. Parsing the query string
	// is included (a handful of pattern nodes).
	layouts := []struct {
		name  string
		query queryFn
		max   float64
	}{
		{"monolithic", mono.Query, 60},
		{"sharded", sharded.Query, 160},
		{"dynamic", dyn.Query, 60},
		{"flat", flat.Query, 60},
	}
	for _, l := range layouts {
		for _, q := range queries {
			if _, err := l.query(q); err != nil { // warm pools across all shards
				t.Fatal(err)
			}
			got := testing.AllocsPerRun(50, func() {
				if _, err := l.query(q); err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s %s: %.1f allocs/op", l.name, q, got)
			if got > l.max {
				t.Errorf("%s %s: %.1f allocs/op, want <= %.0f", l.name, q, got, l.max)
			}
		}
	}
}

// TestQueryAllocsTraced re-measures every layout with a context-borne
// telemetry trace, the way the server runs each request. The per-op cost
// adds a pooled trace fetch, one context value, and the kernel-counter
// recording — all of which must fit inside the same per-layout bounds as
// the untraced path, so enabling observability can never regress the
// zero-alloc guarantee.
func TestQueryAllocsTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool reuse; allocation counts are asserted in non-race runs")
	}
	docs := allocDocs(t, 200)

	mono, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(docs, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := BuildDynamic(docs, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(docs, Config{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"/n0", "/n0/n1", "//n2", "/n0/*"}
	layouts := []struct {
		name  string
		query func(ctx context.Context, q string) ([]int32, error)
		max   float64
	}{
		{"monolithic", mono.QueryContext, 60},
		{"sharded", sharded.QueryContext, 160},
		{"dynamic", dyn.QueryContext, 60},
		{"flat", flat.QueryContext, 60},
	}
	for _, l := range layouts {
		for _, q := range queries {
			run := func() {
				tr := telemetry.GetTrace()
				ctx := telemetry.WithTrace(context.Background(), tr)
				if _, err := l.query(ctx, q); err != nil {
					t.Fatal(err)
				}
				telemetry.PutTrace(tr)
			}
			run() // warm pools (scratch across all shards + trace pool)
			got := testing.AllocsPerRun(50, run)
			t.Logf("%s %s traced: %.1f allocs/op", l.name, q, got)
			if got > l.max {
				t.Errorf("%s %s traced: %.1f allocs/op, want <= %.0f", l.name, q, got, l.max)
			}
		}
	}
}

// TestQueryAllocsAdaptiveServing measures the full adaptive-serving query
// path: a traced query plus the pattern-frequency recording that feeds the
// resequencer's weight derivation. The adaptive loop itself runs in the
// background off the serving path, so its only per-query cost is that one
// bounded top-K update — which must fit inside the same per-layout bounds
// as plain traced serving. A regression here means enabling -adaptive
// taxes every query, not just rebuilds.
func TestQueryAllocsAdaptiveServing(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool reuse; allocation counts are asserted in non-race runs")
	}
	docs := allocDocs(t, 200)

	mono, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(docs, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := BuildDynamic(docs, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(docs, Config{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"/n0", "/n0/n1", "//n2", "/n0/*"}
	// The server canonicalizes each request's pattern once at admission;
	// the steady-state table key is therefore a ready string.
	canon := make(map[string]string, len(queries))
	for _, q := range queries {
		pat, err := query.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		canon[q] = pat.String()
	}
	patterns := telemetry.NewTopK(64)

	layouts := []struct {
		name  string
		query func(ctx context.Context, q string) ([]int32, error)
		max   float64
	}{
		{"monolithic", mono.QueryContext, 60},
		{"sharded", sharded.QueryContext, 160},
		{"dynamic", dyn.QueryContext, 60},
		{"flat", flat.QueryContext, 60},
	}
	for _, l := range layouts {
		for _, q := range queries {
			run := func() {
				tr := telemetry.GetTrace()
				ctx := telemetry.WithTrace(context.Background(), tr)
				if _, err := l.query(ctx, q); err != nil {
					t.Fatal(err)
				}
				patterns.Record(canon[q])
				telemetry.PutTrace(tr)
			}
			run() // warm pools and seat the pattern in the table
			got := testing.AllocsPerRun(50, run)
			t.Logf("%s %s adaptive: %.1f allocs/op", l.name, q, got)
			if got > l.max {
				t.Errorf("%s %s adaptive: %.1f allocs/op, want <= %.0f", l.name, q, got, l.max)
			}
		}
	}
}

// TestQueryAllocsNoCorpusScaling pins the core guarantee: per-op allocation
// count is independent of corpus size. An accidental per-candidate map or
// per-sequence O(corpus) stamp array fails this immediately.
func TestQueryAllocsNoCorpusScaling(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool reuse; allocation counts are asserted in non-race runs")
	}
	measure := func(n int) float64 {
		ix, err := Build(allocDocs(t, n), Config{})
		if err != nil {
			t.Fatal(err)
		}
		const q = "//n2"
		if _, err := ix.Query(q); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(50, func() {
			if _, err := ix.Query(q); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := measure(100), measure(800)
	t.Logf("100 docs: %.1f allocs/op; 800 docs: %.1f allocs/op", small, big)
	if big > small*1.5+8 {
		t.Errorf("allocs scale with corpus: %.1f (100 docs) -> %.1f (800 docs)", small, big)
	}
}

// TestScratchPoolHammerLayouts races concurrent queries through all three
// layouts at once — they share the process-wide kernel scratch pool — and
// checks every answer against the sequential one. Run with -race.
func TestScratchPoolHammerLayouts(t *testing.T) {
	docs := allocDocs(t, 150)
	mono, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(docs, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := BuildDynamic(docs, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Build(docs, Config{Layout: LayoutFlat})
	if err != nil {
		t.Fatal(err)
	}
	queryFns := []queryFn{mono.Query, sharded.Query, dyn.Query, flat.Query}
	queries := []string{"/n0", "/n0/n1", "//n2", "/n0/*"}

	want := make([][]int32, len(queries))
	for i, q := range queries {
		ids, err := mono.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 40; k++ {
				qi := (g + k) % len(queries)
				fn := queryFns[(g+k)%len(queryFns)]
				got, err := fn(queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want[qi]) {
					t.Errorf("goroutine %d: query %q diverged", g, queries[qi])
					return
				}
				for i := range got {
					if got[i] != want[qi][i] {
						t.Errorf("goroutine %d: query %q diverged", g, queries[qi])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
