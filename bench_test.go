package xseq

// Benchmarks: one per table and figure of the paper's evaluation (driving
// the internal/bench experiment runners at a reduced scale), plus
// micro-benchmarks of the core operations (sequencing, insertion, matching).
// Full-size, paper-shaped runs come from cmd/xseqbench; EXPERIMENTS.md
// records them.

import (
	"fmt"
	"testing"

	"xseq/internal/bench"
	"xseq/internal/datagen"
	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/trie"
	"xseq/internal/xmltree"
)

func benchConfig() bench.Config {
	return bench.Config{Scale: 0.005, Seed: 42, Queries: 10}
}

func runExperiment(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tabs, err := e.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkFigure14a(b *testing.B)   { runExperiment(b, "fig14a") }
func BenchmarkFigure14b(b *testing.B)   { runExperiment(b, "fig14b") }
func BenchmarkFigure15(b *testing.B)    { runExperiment(b, "fig15") }
func BenchmarkTable5(b *testing.B)      { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)      { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)      { runExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)      { runExperiment(b, "table8") }
func BenchmarkFigure16a(b *testing.B)   { runExperiment(b, "fig16a") }
func BenchmarkFigure16b(b *testing.B)   { runExperiment(b, "fig16b") }
func BenchmarkFigure16c(b *testing.B)   { runExperiment(b, "fig16c") }
func BenchmarkFigure16d(b *testing.B)   { runExperiment(b, "fig16d") }
func BenchmarkCompression(b *testing.B) { runExperiment(b, "compression") }

func BenchmarkAblationPool(b *testing.B)       { runExperiment(b, "ablation-pool") }
func BenchmarkAblationValueSpace(b *testing.B) { runExperiment(b, "ablation-valuespace") }
func BenchmarkAblationEnum(b *testing.B)       { runExperiment(b, "ablation-enum") }
func BenchmarkAblationBuild(b *testing.B)      { runExperiment(b, "ablation-build") }
func BenchmarkAblationBlocking(b *testing.B)   { runExperiment(b, "ablation-blocking") }

// --- micro-benchmarks ------------------------------------------------------

func synthCorpus(b *testing.B, n int) (*schema.Schema, []*xmltree.Document) {
	b.Helper()
	sch, docs, err := datagen.Synth(datagen.SynthParams{L: 3, F: 5, A: 25, I: 10, P: 40, Seed: 1}, n)
	if err != nil {
		b.Fatal(err)
	}
	return sch, docs
}

func BenchmarkSequenceDepthFirst(b *testing.B) {
	_, docs := synthCorpus(b, 1000)
	enc := pathenc.NewEncoder(0)
	st := sequence.DepthFirst{Enc: enc}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sequence(docs[i%len(docs)].Root)
	}
}

func BenchmarkSequenceGBest(b *testing.B) {
	sch, docs := synthCorpus(b, 1000)
	enc := pathenc.NewEncoder(0)
	st := sequence.NewProbability(sch, enc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sequence(docs[i%len(docs)].Root)
	}
}

func BenchmarkTrieInsert(b *testing.B) {
	sch, docs := synthCorpus(b, 1000)
	enc := pathenc.NewEncoder(0)
	st := sequence.NewProbability(sch, enc)
	seqs := make([]sequence.Sequence, len(docs))
	for i, d := range docs {
		seqs[i] = st.Sequence(d.Root)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr := trie.New()
	for i := 0; i < b.N; i++ {
		tr.Insert(seqs[i%len(seqs)], int32(i))
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	sch, docs := synthCorpus(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := pathenc.NewEncoder(0)
		st := sequence.NewProbability(sch, enc)
		if _, err := index.Build(docs, index.Options{Encoder: enc, Strategy: st}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstraintQuery(b *testing.B) {
	sch, docs := synthCorpus(b, 5000)
	enc := pathenc.NewEncoder(0)
	st := sequence.NewProbability(sch, enc)
	ix, err := index.Build(docs, index.Options{Encoder: enc, Strategy: st})
	if err != nil {
		b.Fatal(err)
	}
	// A fixed mid-size branching pattern extracted from the corpus shape.
	var pat *query.Pattern
	for _, d := range docs {
		if d.Root.Size() >= 6 {
			pat = patternOfSize(d.Root, 6)
			if pat != nil {
				break
			}
		}
	}
	if pat == nil {
		b.Fatal("no pattern source found")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query(pat); err != nil {
			b.Fatal(err)
		}
	}
}

// patternOfSize takes the first k nodes of a pre-order walk as a pattern.
func patternOfSize(root *xmltree.Node, k int) *query.Pattern {
	count := 0
	var build func(n *xmltree.Node) *xmltree.Node
	build = func(n *xmltree.Node) *xmltree.Node {
		if count >= k {
			return nil
		}
		count++
		cp := &xmltree.Node{Name: n.Name, Value: n.Value, IsValue: n.IsValue}
		for _, c := range n.Children {
			if sub := build(c); sub != nil {
				cp.Children = append(cp.Children, sub)
			}
		}
		return cp
	}
	tree := build(root)
	if tree == nil || count < k {
		return nil
	}
	return query.FromTree(tree)
}

func BenchmarkTextValueQuery(b *testing.B) {
	var docs []*Document
	cities := []string{"boston", "bologna", "berlin", "newyork", "nairobi", "napoli"}
	for i := 0; i < 600; i++ {
		d, err := ParseDocumentString(int32(i), fmt.Sprintf(
			"<rec><city>%s</city><n>%d</n></rec>", cities[i%len(cities)], i))
		if err != nil {
			b.Fatal(err)
		}
		docs = append(docs, d)
	}
	ix, err := Build(docs, Config{TextValues: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query("/rec/city[text='bo*']"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeEndToEnd(b *testing.B) {
	var docs []*Document
	for i := 0; i < 200; i++ {
		d, err := ParseDocumentString(int32(i), fmt.Sprintf(
			"<rec><title>t%d</title><author>a%d</author><year>%d</year></rec>",
			i, i%17, 1990+i%30))
		if err != nil {
			b.Fatal(err)
		}
		docs = append(docs, d)
	}
	ix, err := Build(docs, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Query("/rec/author[text='a3']"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- allocation benchmarks -------------------------------------------------
//
// One benchmark per engine layout over the same corpus and query, with
// ReportAllocs, so `go test -bench BenchmarkQueryAllocs -benchmem` shows the
// steady-state allocation profile side by side; CI runs them as a smoke
// step. The regression *assertions* live in alloc_test.go (AllocsPerRun).

func benchQueryAllocs(b *testing.B, q string, query func(string) ([]int32, error)) {
	b.Helper()
	if _, err := query(q); err != nil { // warm the scratch pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryAllocsMono(b *testing.B) {
	ix, err := Build(allocDocs(b, 200), Config{})
	if err != nil {
		b.Fatal(err)
	}
	benchQueryAllocs(b, "//n2", ix.Query)
}

func BenchmarkQueryAllocsSharded(b *testing.B) {
	ix, err := Build(allocDocs(b, 200), Config{Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	benchQueryAllocs(b, "//n2", ix.Query)
}

func BenchmarkQueryAllocsDynamic(b *testing.B) {
	ix, err := BuildDynamic(allocDocs(b, 200), Config{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	benchQueryAllocs(b, "//n2", ix.Query)
}

func BenchmarkQueryAllocsFlat(b *testing.B) {
	ix, err := Build(allocDocs(b, 200), Config{Layout: LayoutFlat})
	if err != nil {
		b.Fatal(err)
	}
	benchQueryAllocs(b, "//n2", ix.Query)
}
