package xseq_test

import (
	"bytes"
	"fmt"
	"log"

	"xseq"
)

// The basic flow: parse records, build, query.
func Example() {
	doc, err := xseq.ParseDocumentString(1, `
		<Project>
		  <Research><Location>newyork</Location></Research>
		  <Development><Location>boston</Location></Development>
		</Project>`)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := xseq.Build([]*xseq.Document{doc}, xseq.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ids, err := ix.Query("/Project[Research/Location='newyork']/Development[Location='boston']")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ids)
	// Output: [1]
}

// Tree patterns are first-class: branching predicates require distinct
// witnesses per branch, so the classic false alarm never appears.
func ExampleIndex_Query() {
	// Two Location siblings: one holds Staff, the other Budget.
	doc, _ := xseq.ParseDocumentString(7, `
		<Project>
		  <Location><Staff>5</Staff></Location>
		  <Location><Budget>9000</Budget></Location>
		</Project>`)
	ix, _ := xseq.Build([]*xseq.Document{doc}, xseq.Config{})

	oneLocation, _ := ix.Query("/Project/Location[Staff][Budget]")
	twoLocations, _ := ix.Query("/Project[Location/Staff][Location/Budget]")
	fmt.Println(len(oneLocation), len(twoLocations))
	// Output: 0 1
}

// QueryVerified restores exact value semantics under hash collisions.
func ExampleIndex_QueryVerified() {
	doc, _ := xseq.ParseDocumentString(1, `<rec><city>boston</city></rec>`)
	ix, _ := xseq.Build([]*xseq.Document{doc}, xseq.Config{
		ValueSpace:    4, // absurdly small: collisions guaranteed
		KeepDocuments: true,
	})
	ids, _ := ix.QueryVerified("/rec/city[text='boston']")
	fmt.Println(ids)
	// Output: [1]
}

// Text-sequence values enable prefix queries.
func ExampleConfig_textValues() {
	var docs []*xseq.Document
	for i, city := range []string{"boston", "bologna", "berlin"} {
		d, _ := xseq.ParseDocumentString(int32(i), "<rec><city>"+city+"</city></rec>")
		docs = append(docs, d)
	}
	ix, _ := xseq.Build(docs, xseq.Config{TextValues: true})
	ids, _ := ix.Query("/rec/city[text='bo*']")
	fmt.Println(ids)
	// Output: [0 1]
}

// Indexes serialize to a single stream and reload query-ready.
func ExampleLoad() {
	doc, _ := xseq.ParseDocumentString(3, `<rec><year>1999</year></rec>`)
	ix, _ := xseq.Build([]*xseq.Document{doc}, xseq.Config{})

	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		log.Fatal(err)
	}
	back, err := xseq.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	ids, _ := back.Query("/rec/year[text='1999']")
	fmt.Println(ids)
	// Output: [3]
}

// Dynamic indexes accept inserts after construction.
func ExampleBuildDynamic() {
	first, _ := xseq.ParseDocumentString(0, `<rec><tag>alpha</tag></rec>`)
	dyn, err := xseq.BuildDynamic([]*xseq.Document{first}, xseq.Config{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	second, _ := xseq.ParseDocumentString(1, `<rec><tag>alpha</tag></rec>`)
	if err := dyn.Insert(second); err != nil {
		log.Fatal(err)
	}
	ids, _ := dyn.Query("/rec/tag[text='alpha']")
	fmt.Println(ids)
	// Output: [0 1]
}
