package xseq

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"xseq/internal/query"
)

// genDocs builds n small record documents with ids 0..n-1, shaped so the
// cacheQueries below have non-trivial, corpus-dependent answers.
func genDocs(t *testing.T, n int) []*Document {
	t.Helper()
	cities := []string{"boston", "newyork", "chicago"}
	docs := make([]*Document, 0, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(
			`<P><D><M>name%d</M><L>%s</L><U><N>part%d</N></U></D><R><L>%s</L></R></P>`,
			i, cities[i%len(cities)], i%4, cities[(i+1)%len(cities)])
		d, err := ParseDocumentString(int32(i), src)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	return docs
}

var cacheQueries = []string{
	"/P/D/L[text='boston']",
	"//L[text='newyork']",
	"/P[R][D]",
	"/P/*/L",
	"//U/N[text='part2']",
	"//nothing",
}

// TestQueryCacheEquivalence is the headline acceptance check: with the
// cache on, every engine shape — monolithic, sharded, dynamic — returns
// id lists byte-identical to its cache-off twin, on cold and warm lookups.
func TestQueryCacheEquivalence(t *testing.T) {
	docs := genDocs(t, 12)
	shapes := []struct {
		name string
		cfg  Config
	}{
		{"monolithic", Config{KeepDocuments: true}},
		{"sharded", Config{KeepDocuments: true, Shards: 3}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			plain, err := Build(docs, sh.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sh.cfg
			cfg.QueryCacheEntries = 32
			cached, err := Build(docs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range cacheQueries {
				want, err := plain.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 0; pass < 2; pass++ { // cold then warm
					got, err := cached.Query(q)
					if err != nil {
						t.Fatal(err)
					}
					if !sameIDSlices(want, got) {
						t.Fatalf("%s pass %d: cached %v, uncached %v", q, pass, got, want)
					}
				}
				wantV, err := plain.QueryVerified(q)
				if err != nil {
					t.Fatal(err)
				}
				gotV, err := cached.QueryVerified(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDSlices(wantV, gotV) {
					t.Fatalf("%s verified: cached %v, uncached %v", q, gotV, wantV)
				}
			}
			qc := cached.Stats().QueryCache
			if qc == nil {
				t.Fatal("Stats().QueryCache is nil with the cache enabled")
			}
			if qc.Hits == 0 || qc.Misses == 0 {
				t.Fatalf("warm passes recorded no hits: %+v", qc)
			}
			if plain.Stats().QueryCache != nil {
				t.Fatal("Stats().QueryCache should be nil with the cache off")
			}
		})
	}

	t.Run("dynamic", func(t *testing.T) {
		plain, err := BuildDynamic(docs[:6], Config{}, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		cached, err := BuildDynamic(docs[:6], Config{QueryCacheEntries: 32}, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range docs[6:] { // answers span main + delta
			if err := plain.Insert(d); err != nil {
				t.Fatal(err)
			}
			if err := cached.Insert(d); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range cacheQueries {
			want, err := plain.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ {
				got, err := cached.Query(q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameIDSlices(want, got) {
					t.Fatalf("%s pass %d: cached %v, uncached %v", q, pass, got, want)
				}
			}
		}
		if cs := cached.CacheStats(); cs == nil || cs.Hits == 0 {
			t.Fatalf("dynamic cache stats = %+v, want hits > 0", cs)
		}
		if plain.CacheStats() != nil {
			t.Fatal("CacheStats should be nil with the cache off")
		}
	})
}

// TestErrUnsupportedSharded pins the typed capability-gap sentinel: the
// operations a sharded layout cannot do fail with errors wrapping
// ErrUnsupported, detectable via errors.Is.
func TestErrUnsupportedSharded(t *testing.T) {
	ix, err := Build(genDocs(t, 8), Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.EnablePagedIO(0); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("EnablePagedIO on sharded = %v, want ErrUnsupported", err)
	}
	if _, err := ix.SchemaOutline(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("SchemaOutline on sharded = %v, want ErrUnsupported", err)
	}
	// The dynamic engine has no single snapshot layout either.
	d, err := BuildDynamic(genDocs(t, 4), Config{}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.d.SaveFile(t.TempDir() + "/x"); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("dynamic SaveFile = %v, want ErrUnsupported", err)
	}
}

// TestQueryCacheSwapHammer races queries through per-snapshot caches
// against Swapper.Swap flips between two indexes with different corpora.
// Each snapshot is immutable, so whichever snapshot a reader grabbed must
// answer exactly that snapshot's precomputed result — a stale cross-snapshot
// cache entry would surface as the other corpus's ids. Run with -race.
func TestQueryCacheSwapHammer(t *testing.T) {
	const q = "//L[text='boston']"
	build := func(docs []*Document) *Index {
		ix, err := Build(docs, Config{QueryCacheEntries: 16})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	ixA := build(genDocs(t, 9))
	ixB := build(genDocs(t, 5))
	expect := map[*Index][]int32{}
	for _, ix := range []*Index{ixA, ixB} {
		ids, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		expect[ix] = ids
	}
	if sameIDSlices(expect[ixA], expect[ixB]) {
		t.Fatal("test needs corpora with different answers")
	}

	sw := NewSwapper(ixA)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 400; k++ {
			if k%2 == 0 {
				sw.Swap(ixB)
			} else {
				sw.Swap(ixA)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				cur := sw.Current()
				ids, err := cur.Query(q)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if !sameIDSlices(ids, expect[cur]) {
					t.Errorf("stale result: snapshot expects %v, cache served %v", expect[cur], ids)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestQueryCacheDynamicHammer races cached queries against concurrent
// inserts and compactions on one DynamicIndex. Inserts only ever add
// matches, so every cached answer must be sandwiched between uncached
// answers taken immediately before and after it: before ⊆ cached ⊆ after.
// A stale entry served after an insert's generation bump would miss a
// document the "before" read already saw. Run with -race.
func TestQueryCacheDynamicHammer(t *testing.T) {
	docs := genDocs(t, 30)
	d, err := BuildDynamic(docs[:3], Config{QueryCacheEntries: 16}, 5)
	if err != nil {
		t.Fatal(err)
	}
	pat := query.MustParse("//L[text='boston']")
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, doc := range docs[3:] {
			if err := d.Insert(doc); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 80; k++ {
				before, err := d.d.QueryContext(ctx, pat) // uncached
				if err != nil {
					t.Errorf("uncached query: %v", err)
					return
				}
				cached, err := d.Query("//L[text='boston']")
				if err != nil {
					t.Errorf("cached query: %v", err)
					return
				}
				after, err := d.d.QueryContext(ctx, pat) // uncached
				if err != nil {
					t.Errorf("uncached query: %v", err)
					return
				}
				if !subsetIDs(before, cached) || !subsetIDs(cached, after) {
					t.Errorf("stale cache: before %v, cached %v, after %v", before, cached, after)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Settled state: compact, then cached must equal uncached exactly.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	want, err := d.d.QueryContext(ctx, pat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Query("//L[text='boston']")
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSlices(want, got) {
		t.Fatalf("post-settle: cached %v, uncached %v", got, want)
	}
	if cs := d.CacheStats(); cs == nil {
		t.Fatal("CacheStats is nil with the cache enabled")
	}
}

// TestBuildDynamicSharded pins the tentpole rebuild-routing requirement:
// with Config.Shards > 1, the dynamic index's compactions run through the
// sharded build path (the main engine is sharded afterwards) and answers
// stay identical to the monolithic dynamic index over the same corpus.
func TestBuildDynamicSharded(t *testing.T) {
	docs := genDocs(t, 16)
	sharded, err := BuildDynamic(docs[:8], Config{Shards: 3}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := BuildDynamic(docs[:8], Config{}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs[8:] {
		if err := sharded.Insert(doc); err != nil {
			t.Fatal(err)
		}
		if err := mono.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	check := func() {
		t.Helper()
		for _, q := range cacheQueries {
			want, err := mono.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if !sameIDSlices(want, got) {
				t.Fatalf("%s: sharded dynamic %v, monolithic dynamic %v", q, got, want)
			}
		}
	}
	check() // main + delta, pre-compaction
	if err := sharded.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := mono.Compact(); err != nil {
		t.Fatal(err)
	}
	if sharded.PendingDocuments() != 0 {
		t.Fatalf("pending after compact = %d", sharded.PendingDocuments())
	}
	// The compacted main engine really is sharded — the rebuild went
	// through the partitioned path, not the monolithic one.
	if got := sharded.d.Main().Shards(); len(got) != 3 {
		t.Fatalf("compacted main has %d shards, want 3", len(got))
	}
	if got := mono.d.Main().Shards(); got != nil {
		t.Fatalf("monolithic dynamic main reports shards: %v", got)
	}
	check() // post-compaction
}

// sameIDSlices reports a == b elementwise (nil and empty are equal).
func sameIDSlices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetIDs reports whether every id in a appears in b; both ascending.
func subsetIDs(a, b []int32) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}
