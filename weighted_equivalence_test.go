package xseq

import (
	"context"
	"path/filepath"
	"testing"

	"xseq/internal/datagen"
)

// xmarkWeights is a plausible hot-path vector for the XMark-like corpus —
// the shape the adaptive loop derives when person lookups dominate.
var xmarkWeights = map[string]float64{
	"site":                   2,
	"site/people":            4,
	"site/people/person":     5,
	"site/regions":           1.5,
	"site/no/such/path":      3, // unknown paths are skipped, never fatal
	"site/people/person/age": 4.2,
}

var xmarkQueries = []string{
	datagen.XMarkQ1,
	datagen.XMarkQ2,
	datagen.XMarkQ3,
	"/site//person/name",
	"//item/location",
	"//date",
	"/site/*",
}

// TestWeightedEquivalenceAcrossLayouts is satellite coverage for the
// weighted strategy: re-sequencing the data around a weight vector reorders
// storage, never answers. Every layout — monolithic, sharded, dynamic,
// flat — must return identical ids with and without weights, for plain and
// verified queries.
func TestWeightedEquivalenceAcrossLayouts(t *testing.T) {
	docs := genCorpus(t, "xmark", 200)
	base, err := Build(docs, Config{KeepDocuments: true})
	if err != nil {
		t.Fatal(err)
	}

	builds := []struct {
		name  string
		build func() (interface {
			Query(q string) ([]int32, error)
			QueryVerified(q string) ([]int32, error)
		}, func())
	}{
		{"monolithic", func() (interface {
			Query(q string) ([]int32, error)
			QueryVerified(q string) ([]int32, error)
		}, func()) {
			ix, err := Build(docs, Config{Strategy: StrategyWeighted, Weights: xmarkWeights, KeepDocuments: true})
			if err != nil {
				t.Fatal(err)
			}
			return ix, func() { ix.Close() }
		}},
		{"sharded", func() (interface {
			Query(q string) ([]int32, error)
			QueryVerified(q string) ([]int32, error)
		}, func()) {
			ix, err := Build(docs, Config{Strategy: StrategyWeighted, Weights: xmarkWeights, Shards: 3, KeepDocuments: true})
			if err != nil {
				t.Fatal(err)
			}
			return ix, func() { ix.Close() }
		}},
		{"flat", func() (interface {
			Query(q string) ([]int32, error)
			QueryVerified(q string) ([]int32, error)
		}, func()) {
			ix, err := Build(docs, Config{Strategy: StrategyWeighted, Weights: xmarkWeights, Layout: LayoutFlat, KeepDocuments: true})
			if err != nil {
				t.Fatal(err)
			}
			return ix, func() { ix.Close() }
		}},
		{"dynamic", func() (interface {
			Query(q string) ([]int32, error)
			QueryVerified(q string) ([]int32, error)
		}, func()) {
			di, err := BuildDynamic(docs, Config{Strategy: StrategyWeighted, Weights: xmarkWeights, KeepDocuments: true}, 0)
			if err != nil {
				t.Fatal(err)
			}
			return di, func() { di.Close() }
		}},
	}
	for _, b := range builds {
		weighted, done := b.build()
		for _, q := range xmarkQueries {
			want, err := base.Query(q)
			if err != nil {
				t.Fatalf("base %s: %v", q, err)
			}
			got, err := weighted.Query(q)
			if err != nil {
				t.Fatalf("%s: weighted %s: %v", b.name, q, err)
			}
			if !equalIDSlices(got, want) {
				t.Fatalf("%s: %s: weighted %v, unweighted %v", b.name, q, got, want)
			}
			wantV, err := base.QueryVerified(q)
			if err != nil {
				t.Fatalf("base verified %s: %v", q, err)
			}
			gotV, err := weighted.QueryVerified(q)
			if err != nil {
				t.Fatalf("%s: weighted verified %s: %v", b.name, q, err)
			}
			if !equalIDSlices(gotV, wantV) {
				t.Fatalf("%s: verified %s: weighted %v, unweighted %v", b.name, q, gotV, wantV)
			}
		}
		done()
	}
}

// TestWeightedSnapshotRoundtrip pins the persistence contract the adaptive
// loop depends on: the weights live in the schema, so a weighted snapshot
// saved and reloaded computes the same weighted priorities — and still
// answers exactly like an unweighted index.
func TestWeightedSnapshotRoundtrip(t *testing.T) {
	docs := genCorpus(t, "xmark", 120)
	base, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Build(docs, Config{Strategy: StrategyWeighted, Weights: xmarkWeights, KeepDocuments: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	heap := filepath.Join(dir, "weighted.idx")
	if err := weighted.SaveFile(heap); err != nil {
		t.Fatal(err)
	}
	flat := filepath.Join(dir, "weighted.flat")
	if err := weighted.SaveFlatFile(flat); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{heap, flat} {
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, q := range xmarkQueries {
			want, _ := base.Query(q)
			got, err := back.Query(q)
			if err != nil {
				t.Fatalf("%s: %s: %v", path, q, err)
			}
			if !equalIDSlices(got, want) {
				t.Fatalf("%s: %s: reloaded %v, want %v", path, q, got, want)
			}
		}
		back.Close()
	}
}

// TestRebuildWithWeightsEquivalence exercises the tentpole's rebuild
// primitive on every static layout: re-sequencing a serving index around a
// weight vector must preserve every answer and the layout itself.
func TestRebuildWithWeightsEquivalence(t *testing.T) {
	docs := genCorpus(t, "xmark", 150)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"monolithic", Config{KeepDocuments: true}},
		{"sharded", Config{Shards: 3, KeepDocuments: true}},
		{"flat", Config{Layout: LayoutFlat, KeepDocuments: true}},
	} {
		ix, err := Build(docs, tc.cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := make(map[string][]int32, len(xmarkQueries))
		for _, q := range xmarkQueries {
			if want[q], err = ix.Query(q); err != nil {
				t.Fatalf("%s: %s: %v", tc.name, q, err)
			}
		}
		rebuilt, err := ix.RebuildWithWeights(context.Background(), xmarkWeights)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", tc.name, err)
		}
		if rebuilt.Layout() != ix.Layout() {
			t.Fatalf("%s: rebuild changed layout %s → %s", tc.name, ix.Layout(), rebuilt.Layout())
		}
		if st, rst := ix.Stats(), rebuilt.Stats(); rst.Documents != st.Documents || rst.Shards != st.Shards {
			t.Fatalf("%s: rebuild changed shape %+v → %+v", tc.name, st, rst)
		}
		for _, q := range xmarkQueries {
			got, err := rebuilt.Query(q)
			if err != nil {
				t.Fatalf("%s: rebuilt %s: %v", tc.name, q, err)
			}
			if !equalIDSlices(got, want[q]) {
				t.Fatalf("%s: %s: rebuilt %v, want %v", tc.name, q, got, want[q])
			}
		}
		rebuilt.Close()
		ix.Close()
	}

	// Without the corpus there is nothing to rebuild from.
	bare, err := Build(docs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.RebuildWithWeights(context.Background(), xmarkWeights); err == nil {
		t.Fatal("RebuildWithWeights should fail without KeepDocuments")
	}
}

// TestDynamicResequenceEquivalence drives the dynamic engine's in-place
// forced rebuild: answers survive the re-sequencing, later inserts land in
// the weighted index, and the weight vector sticks across compactions.
func TestDynamicResequenceEquivalence(t *testing.T) {
	docs := genCorpus(t, "xmark", 100)
	di, err := BuildDynamic(docs, Config{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer di.Close()
	want := make(map[string][]int32, len(xmarkQueries))
	for _, q := range xmarkQueries {
		if want[q], err = di.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	if err := di.Resequence(context.Background(), xmarkWeights); err != nil {
		t.Fatalf("resequence: %v", err)
	}
	for _, q := range xmarkQueries {
		got, err := di.Query(q)
		if err != nil {
			t.Fatalf("after resequence %s: %v", q, err)
		}
		if !equalIDSlices(got, want[q]) {
			t.Fatalf("resequence changed %s: %v, want %v", q, got, want[q])
		}
	}
	// Inserts keep flowing into the re-sequenced index.
	extra := genCorpus(t, "xmark", 110)[100:]
	for _, d := range extra {
		if err := di.Insert(d); err != nil {
			t.Fatalf("insert after resequence: %v", err)
		}
	}
	ids, err := di.Query("//date")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < len(want["//date"]) {
		t.Fatalf("post-resequence inserts lost results: %d < %d", len(ids), len(want["//date"]))
	}
}
