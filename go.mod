module xseq

go 1.22
