package xseq

import (
	"context"
	"path/filepath"
	"testing"

	"xseq/internal/wal"
	"xseq/internal/xmltree"
)

// innerDoc converts a facade Document to the internal tree the WAL codec
// speaks, mirroring what the serving path encodes.
func innerDoc(d *Document) *xmltree.Document {
	return &xmltree.Document{ID: d.id, Root: d.root}
}

func TestCheckpointAtReturnsRotationSeq(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{WALPath: filepath.Join(dir, "ingest.wal"), KeepDocuments: true}
	dyn, err := BuildDynamic(nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dyn.Close()
	for i := int32(0); i < 5; i++ {
		if err := dyn.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(dir, "index.snap")
	seq, err := dyn.CheckpointAt(context.Background(), snapPath)
	if err != nil {
		t.Fatalf("CheckpointAt: %v", err)
	}
	if seq != 5 {
		t.Fatalf("checkpoint seq = %d, want 5", seq)
	}
	st := dyn.WALStats()
	if st.BaseSeq != 5 || st.Entries != 0 {
		t.Fatalf("wal after checkpoint: base %d entries %d", st.BaseSeq, st.Entries)
	}
	snap, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if docs, err := snap.StoredDocuments(); err != nil || len(docs) != 5 {
		t.Fatalf("snapshot docs = %d (%v), want 5", len(docs), err)
	}
}

// TestReseedFromSnapshot walks the follower's self-healing swap at the
// facade level: an out-of-date index over its own WAL is replaced
// wholesale by a primary's checkpoint, resumes replication right above
// the snapshot's seq, and skips entries the snapshot already covers.
func TestReseedFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Primary: 8 documents, checkpointed.
	primary, err := BuildDynamic(nil, Config{
		WALPath: filepath.Join(dir, "primary.wal"), KeepDocuments: true,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	for i := int32(0); i < 8; i++ {
		if err := primary.Insert(walDoc(t, i, "boston")); err != nil {
			t.Fatal(err)
		}
	}
	snapPath := filepath.Join(dir, "seed.snap")
	seq, err := primary.CheckpointAt(ctx, snapPath)
	if err != nil || seq != 8 {
		t.Fatalf("CheckpointAt = (%d, %v)", seq, err)
	}

	// Follower: stuck at a stale, divergent position it can never tail
	// out of.
	followerWAL := filepath.Join(dir, "follower.wal")
	follower, err := BuildDynamic(nil, Config{WALPath: followerWAL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	for i := int32(100); i < 103; i++ {
		if err := follower.Insert(walDoc(t, i, "stale")); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ReseedFromSnapshot(snap, seq); err != nil {
		t.Fatalf("ReseedFromSnapshot: %v", err)
	}
	if follower.NumDocuments() != 8 || follower.AppliedSeq() != 8 {
		t.Fatalf("after reseed docs=%d seq=%d, want 8/8", follower.NumDocuments(), follower.AppliedSeq())
	}
	if ids, err := follower.Query("//L[text='boston']"); err != nil || len(ids) != 8 {
		t.Fatalf("reseeded query = %v (%v), want 8 hits", ids, err)
	}
	if ids, _ := follower.Query("//L[text='stale']"); len(ids) != 0 {
		t.Fatalf("stale documents survived the reseed: %v", ids)
	}
	if st := follower.WALStats(); st.BaseSeq != 8 || st.Entries != 0 {
		t.Fatalf("follower wal after reseed: base %d entries %d, want 8/0", st.BaseSeq, st.Entries)
	}

	// Replication resumes above the snapshot. An entry whose document the
	// snapshot already carries (the checkpoint covered more than the
	// advertised seq) is skipped, not a duplicate failure.
	overlap := walDoc(t, 7, "boston") // id 7 is in the snapshot
	payload, err := wal.EncodeDocument(innerDoc(overlap))
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicated(ctx, 9, payload); err != nil {
		t.Fatalf("apply overlapping seq 9: %v", err)
	}
	if follower.AppliedSeq() != 9 || follower.NumDocuments() != 8 {
		t.Fatalf("overlap skip: docs=%d seq=%d, want 8/9", follower.NumDocuments(), follower.AppliedSeq())
	}
	fresh := walDoc(t, 8, "chicago")
	payload, err = wal.EncodeDocument(innerDoc(fresh))
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplicated(ctx, 10, payload); err != nil {
		t.Fatalf("apply fresh seq 10: %v", err)
	}
	if follower.NumDocuments() != 9 || follower.AppliedSeq() != 10 {
		t.Fatalf("resume: docs=%d seq=%d, want 9/10", follower.NumDocuments(), follower.AppliedSeq())
	}

	// A follower restart over the reset log resumes from the reseeded
	// position (the reseed state itself lives in the snapshot on the
	// serving path; here the log alone carries seqs 9-10 over base 8).
	follower.Close()
	back, err := BuildDynamic(nil, Config{WALPath: followerWAL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.AppliedSeq() != 10 {
		t.Fatalf("restart applied seq = %d, want 10", back.AppliedSeq())
	}
}

func TestReseedFromSnapshotWithoutCorpusFails(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	primary, err := BuildDynamic(nil, Config{
		WALPath: filepath.Join(dir, "primary.wal"), // no KeepDocuments
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if err := primary.Insert(walDoc(t, 1, "boston")); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "bare.snap")
	seq, err := primary.CheckpointAt(ctx, snapPath)
	if err != nil {
		t.Fatal(err)
	}

	follower, err := BuildDynamic(nil, Config{WALPath: filepath.Join(dir, "follower.wal")}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if err := follower.Insert(walDoc(t, 50, "keepme")); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ReseedFromSnapshot(snap, seq); err == nil {
		t.Fatal("reseed from a corpus-less snapshot succeeded")
	}
	// The old serving state survives a refused reseed.
	if ids, err := follower.Query("//L[text='keepme']"); err != nil || len(ids) != 1 {
		t.Fatalf("old state after refused reseed = %v (%v)", ids, err)
	}
}
