package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xseq/internal/index"
	"xseq/internal/query"
)

// savedSharded builds a sharded index over an xmark corpus and returns it
// together with its Save stream.
func savedSharded(t testing.TB, nDocs, shards int) (*Index, []byte) {
	t.Helper()
	s := buildSharded(t, xmarkDocs(t, nDocs), shards, 0, false)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes()
}

func checkEqualAnswers(t *testing.T, want, got *Index) {
	t.Helper()
	if got.NumShards() != want.NumShards() || got.Seed() != want.Seed() ||
		got.NumDocuments() != want.NumDocuments() || got.MaxDocID() != want.MaxDocID() {
		t.Fatalf("reloaded geometry diverges: %d/%x/%d/%d vs %d/%x/%d/%d",
			got.NumShards(), got.Seed(), got.NumDocuments(), got.MaxDocID(),
			want.NumShards(), want.Seed(), want.NumDocuments(), want.MaxDocID())
	}
	for _, q := range xmarkQueries {
		pat := query.MustParse(q)
		a, err := want.Query(pat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Query(pat)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if !sameIDs(a, b) {
			t.Fatalf("%s: reloaded %v, original %v", q, b, a)
		}
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s, stream := savedSharded(t, 120, 5)
	back, err := Load(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	checkEqualAnswers(t, s, back)
}

func TestSaveFileLoadFileRoundtrip(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 120), 5, 0, false)
	path := filepath.Join(t.TempDir(), "sharded.xseq")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if fis, _ := os.ReadDir(filepath.Dir(path)); len(fis) != 1 {
		t.Fatalf("temp files left behind: %v", fis)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkEqualAnswers(t, s, back)
}

// TestRoundtripWithEmptyShards: zero-length shard slots survive persistence.
func TestRoundtripWithEmptyShards(t *testing.T) {
	s, stream := savedSharded(t, 3, 16)
	back, err := Load(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	checkEqualAnswers(t, s, back)
}

// mustCorrupt asserts Load rejects the stream with a *index.CorruptError
// whose reason contains want.
func mustCorrupt(t *testing.T, stream []byte, want string) {
	t.Helper()
	_, err := Load(bytes.NewReader(stream))
	var ce *index.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *index.CorruptError", err)
	}
	if want != "" && !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %q", err, want)
	}
}

func TestLoadCorruptShardStream(t *testing.T) {
	_, stream := savedSharded(t, 80, 4)
	// Find where the shard streams start: 16-byte header + manifest + CRC.
	mlen := binary.BigEndian.Uint64(stream[8:16])
	start := 16 + int(mlen) + 4
	// Flip one byte in the middle of the shard payload region.
	bad := append([]byte(nil), stream...)
	bad[start+(len(bad)-start)/2] ^= 0x40
	mustCorrupt(t, bad, "shard")
}

func TestLoadCorruptManifest(t *testing.T) {
	_, stream := savedSharded(t, 40, 3)
	bad := append([]byte(nil), stream...)
	bad[20] ^= 0x01 // inside the manifest gob payload
	mustCorrupt(t, bad, "manifest")
}

func TestLoadBadMagic(t *testing.T) {
	_, stream := savedSharded(t, 10, 2)
	bad := append([]byte(nil), stream...)
	bad[0] = 'Y'
	mustCorrupt(t, bad, "not a sharded index")
	if IsShardedHeader(bad) {
		t.Fatal("IsShardedHeader accepted a wrong magic")
	}
	if !IsShardedHeader(stream) {
		t.Fatal("IsShardedHeader rejected a valid stream")
	}
}

func TestLoadTruncations(t *testing.T) {
	_, stream := savedSharded(t, 40, 3)
	for _, cut := range []int{0, 4, 8, 15, 16, 18, len(stream) / 2, len(stream) - 1} {
		if cut >= len(stream) {
			continue
		}
		mustCorrupt(t, stream[:cut], "")
	}
}

// TestLoadWrongShardStream forges a snapshot whose manifest and streams are
// internally consistent (lengths and CRCs match) but where two shard
// streams trade places. The CRC check passes by construction; only the
// partitioning-invariant re-check can catch it.
func TestLoadWrongShardStream(t *testing.T) {
	_, stream := savedSharded(t, 80, 4)
	mlen := binary.BigEndian.Uint64(stream[8:16])
	payload := stream[16 : 16+int(mlen)]
	var m manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		t.Fatal(err)
	}
	// Slice the shard streams out.
	pos := 16 + int(mlen) + 4
	raws := make([][]byte, m.Shards)
	for i, l := range m.ShardLens {
		raws[i] = stream[pos : pos+int(l)]
		pos += int(l)
	}
	// Swap two non-empty shards, manifest entries included.
	a, b := -1, -1
	for i, r := range raws {
		if len(r) == 0 {
			continue
		}
		if a < 0 {
			a = i
		} else {
			b = i
			break
		}
	}
	if b < 0 {
		t.Fatal("test needs two non-empty shards")
	}
	raws[a], raws[b] = raws[b], raws[a]
	m.ShardLens[a], m.ShardLens[b] = m.ShardLens[b], m.ShardLens[a]
	m.ShardCRCs[a], m.ShardCRCs[b] = m.ShardCRCs[b], m.ShardCRCs[a]
	var forged bytes.Buffer
	var np bytes.Buffer
	if err := gob.NewEncoder(&np).Encode(&m); err != nil {
		t.Fatal(err)
	}
	var hdr [16]byte
	copy(hdr[:8], shardMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(np.Len()))
	forged.Write(hdr[:])
	forged.Write(np.Bytes())
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(np.Bytes()))
	forged.Write(trailer[:])
	for _, r := range raws {
		forged.Write(r)
	}
	mustCorrupt(t, forged.Bytes(), "wrong-shard")
}

// TestLoadFileSizeMismatch: a file with trailing garbage past what the
// manifest accounts for must be rejected, not silently ignored.
func TestLoadFileSizeMismatch(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 30), 3, 0, false)
	path := filepath.Join(t.TempDir(), "sharded.xseq")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("trailing garbage")
	f.Close()
	_, err = LoadFile(path)
	var ce *index.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *index.CorruptError", err)
	}
}

// TestLoadManifestAggregateMismatch: a manifest lying about the document
// count is rejected at assembly.
func TestLoadManifestAggregateMismatch(t *testing.T) {
	_, stream := savedSharded(t, 40, 3)
	mlen := binary.BigEndian.Uint64(stream[8:16])
	var m manifest
	if err := gob.NewDecoder(bytes.NewReader(stream[16 : 16+int(mlen)])).Decode(&m); err != nil {
		t.Fatal(err)
	}
	m.NumDocs += 7
	var np bytes.Buffer
	if err := gob.NewEncoder(&np).Encode(&m); err != nil {
		t.Fatal(err)
	}
	var forged bytes.Buffer
	var hdr [16]byte
	copy(hdr[:8], shardMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(np.Len()))
	forged.Write(hdr[:])
	forged.Write(np.Bytes())
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(np.Bytes()))
	forged.Write(trailer[:])
	forged.Write(stream[16+int(mlen)+4:])
	mustCorrupt(t, forged.Bytes(), "documents")
}
