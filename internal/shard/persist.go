package shard

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"xseq/internal/index"
)

// Sharded snapshot format: a manifest followed by one ordinary v2 index
// stream per shard, all in a single file so the existing snapshot plumbing
// (atomic rename, mtime watching, hot swap) keeps working unchanged.
//
//	offset          size  field
//	0               8     magic "XSEQSHRD"
//	8               8     manifest length m, big-endian uint64
//	16              m     manifest: gob(manifest)
//	16+m            4     CRC-32 (IEEE) of the manifest payload, big-endian
//	20+m            L0    shard 0: a v2 index.Save stream (absent when empty)
//	20+m+L0         L1    shard 1 ...
//
// The manifest records the shard count, the partition hash seed, and each
// shard's stream length and CRC-32, so corruption is attributed to the
// exact shard that carries it — a damaged shard fails the load with a
// *index.CorruptError naming the shard, and a manifest/stream mix-up is
// caught by re-checking the partitioning invariant on the decoded ids
// (every document must hash back to the shard that claims it). Shards load
// and decode in parallel on a GOMAXPROCS-bounded pool.

// shardMagic opens every sharded snapshot. It differs from the monolithic
// v2 magic ("XSEQIDX2") in the trailing bytes, so an 8-byte sniff
// distinguishes the two formats.
var shardMagic = [8]byte{'X', 'S', 'E', 'Q', 'S', 'H', 'R', 'D'}

// IsShardedHeader reports whether the first bytes of a stream name the
// sharded snapshot format. The caller passes at least 8 bytes.
func IsShardedHeader(b []byte) bool {
	return len(b) >= len(shardMagic) && bytes.Equal(b[:len(shardMagic)], shardMagic[:])
}

// manifestVersion is the manifest format version Save writes.
const manifestVersion = 1

// maxManifestPayload bounds the manifest gob a Load will buffer; real
// manifests are a few bytes per shard.
const maxManifestPayload = int64(1) << 28 // 256 MiB

// maxShardPayload bounds one shard's stream length field (matching the
// monolithic persistence sanity cap).
const maxShardPayload = int64(1) << 36 // 64 GiB

// maxShardCount bounds the shard count a manifest may declare — a sanity
// cap against corrupt count fields, far above any sensible deployment.
const maxShardCount = 1 << 16

type manifest struct {
	Version   int
	Shards    int
	Seed      uint64
	NumDocs   int
	MaxDocID  int32
	ShardLens []int64
	ShardCRCs []uint32
}

// corrupt builds the package's uniform corruption error; keeping the type
// identical to the monolithic loader's means errors.As(*index.CorruptError)
// detects damage in either snapshot format.
func corrupt(format string, args ...any) *index.CorruptError {
	return &index.CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// corruptWrap is corrupt with an underlying cause attached.
func corruptWrap(err error, format string, args ...any) *index.CorruptError {
	return &index.CorruptError{Reason: fmt.Sprintf(format, args...), Err: err}
}

// Save serializes the sharded index: shards are encoded to their v2
// streams in parallel, then written behind the manifest.
func (s *Index) Save(w io.Writer) error {
	n := len(s.shards)
	streams := make([][]byte, n)
	err := runPool(context.Background(), n, 0, func(_ context.Context, i int) error {
		if s.shards[i] == nil {
			return nil
		}
		var buf bytes.Buffer
		if err := s.shards[i].Save(&buf); err != nil {
			return fmt.Errorf("shard: save shard %d of %d: %w", i, n, err)
		}
		streams[i] = buf.Bytes()
		return nil
	})
	if err != nil {
		return err
	}
	m := manifest{
		Version:   manifestVersion,
		Shards:    n,
		Seed:      s.seed,
		NumDocs:   s.numDocs,
		MaxDocID:  s.maxDocID,
		ShardLens: make([]int64, n),
		ShardCRCs: make([]uint32, n),
	}
	for i, stream := range streams {
		m.ShardLens[i] = int64(len(stream))
		m.ShardCRCs[i] = crc32.ChecksumIEEE(stream)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&m); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:8], shardMagic[:])
	binary.BigEndian.PutUint64(hdr[8:], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	var trailer [4]byte
	binary.BigEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	for i, stream := range streams {
		if _, err := w.Write(stream); err != nil {
			return fmt.Errorf("shard: save shard %d: %w", i, err)
		}
	}
	return nil
}

// SaveFile writes the sharded snapshot to path crash-safely — temporary
// file in the same directory, fsync, atomic rename — exactly like the
// monolithic SaveFile, so a crash mid-save never leaves a torn snapshot.
func (s *Index) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("shard: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = s.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("shard: save %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("shard: save %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("shard: save %s: rename: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// readManifest consumes and validates the header and manifest (everything
// up to the first shard stream) from r.
func readManifest(r io.Reader) (*manifest, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, corruptWrap(err, "truncated sharded header")
	}
	if !bytes.Equal(hdr[:8], shardMagic[:]) {
		return nil, corrupt("not a sharded index stream")
	}
	size := binary.BigEndian.Uint64(hdr[8:])
	if int64(size) < 0 || int64(size) > maxManifestPayload {
		return nil, corrupt("implausible manifest length %d", size)
	}
	var payload bytes.Buffer
	got, err := io.Copy(&payload, io.LimitReader(r, int64(size)))
	if err != nil {
		return nil, corruptWrap(err, "unreadable manifest")
	}
	if uint64(got) != size {
		return nil, corrupt("truncated manifest: %d of %d bytes", got, size)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return nil, corruptWrap(err, "truncated manifest checksum")
	}
	want := binary.BigEndian.Uint32(trailer[:])
	if sum := crc32.ChecksumIEEE(payload.Bytes()); sum != want {
		return nil, corrupt("manifest checksum mismatch (stored %08x, computed %08x)", want, sum)
	}
	var m manifest
	if err := gob.NewDecoder(&payload).Decode(&m); err != nil {
		return nil, corruptWrap(err, "undecodable manifest")
	}
	if m.Version != manifestVersion {
		return nil, corrupt("unsupported sharded format version %d", m.Version)
	}
	if m.Shards < 1 || m.Shards > maxShardCount {
		return nil, corrupt("implausible shard count %d", m.Shards)
	}
	if len(m.ShardLens) != m.Shards || len(m.ShardCRCs) != m.Shards {
		return nil, corrupt("manifest declares %d shards but carries %d lengths and %d checksums",
			m.Shards, len(m.ShardLens), len(m.ShardCRCs))
	}
	if m.NumDocs < 0 || m.MaxDocID < 0 {
		return nil, corrupt("negative size fields (docs %d, max id %d)", m.NumDocs, m.MaxDocID)
	}
	for i, l := range m.ShardLens {
		if l < 0 || l > maxShardPayload {
			return nil, corrupt("shard %d: implausible stream length %d", i, l)
		}
	}
	return &m, nil
}

// decodeShard validates and decodes one shard's raw stream bytes,
// attributing any failure to the shard. It also re-checks the partitioning
// invariant: every document id the shard carries must hash back to this
// shard, so a manifest/stream mix-up can never silently misattribute
// documents.
func decodeShard(m *manifest, i int, raw []byte) (*index.Index, error) {
	if sum := crc32.ChecksumIEEE(raw); sum != m.ShardCRCs[i] {
		return nil, corrupt("shard %d of %d: checksum mismatch (stored %08x, computed %08x)",
			i, m.Shards, m.ShardCRCs[i], sum)
	}
	ix, err := index.Load(bytes.NewReader(raw))
	if err != nil {
		return nil, &index.CorruptError{Reason: fmt.Sprintf("shard %d of %d", i, m.Shards), Err: err}
	}
	for _, id := range ix.DocsInPreRange(0, ix.MaxSerial(), nil) {
		if id > m.MaxDocID {
			return nil, corrupt("shard %d of %d: document id %d exceeds manifest max %d",
				i, m.Shards, id, m.MaxDocID)
		}
		if ShardOf(id, m.Seed, m.Shards) != i {
			return nil, corrupt("shard %d of %d: document %d belongs to shard %d (wrong-shard stream)",
				i, m.Shards, id, ShardOf(id, m.Seed, m.Shards))
		}
	}
	return ix, nil
}

// assemble builds the Index from decoded shards and cross-checks the
// manifest's aggregate counts.
func assemble(m *manifest, shards []*index.Index) (*Index, error) {
	total := 0
	for _, sh := range shards {
		if sh != nil {
			total += sh.NumDocuments()
		}
	}
	if total != m.NumDocs {
		return nil, corrupt("manifest declares %d documents, shards carry %d", m.NumDocs, total)
	}
	return &Index{shards: shards, seed: m.Seed, numDocs: m.NumDocs, maxDocID: m.MaxDocID}, nil
}

// Load reconstructs a sharded index from a Save stream. The stream is read
// sequentially (it need not be seekable); shard decoding then runs in
// parallel. Any corruption — in the manifest or in any shard's stream — is
// reported as a *index.CorruptError naming the damaged piece; a sharded
// stream never loads with documents attributed to the wrong shard.
func Load(r io.Reader) (*Index, error) {
	m, err := readManifest(r)
	if err != nil {
		return nil, err
	}
	raws := make([][]byte, m.Shards)
	for i, l := range m.ShardLens {
		if l == 0 {
			continue
		}
		var buf bytes.Buffer
		got, err := io.Copy(&buf, io.LimitReader(r, l))
		if err != nil {
			return nil, corruptWrap(err, "shard %d of %d: unreadable stream", i, m.Shards)
		}
		if got != l {
			return nil, corrupt("shard %d of %d: truncated stream: %d of %d bytes", i, m.Shards, got, l)
		}
		raws[i] = buf.Bytes()
	}
	return loadShards(m, func(i int) ([]byte, error) { return raws[i], nil })
}

// LoadFile reconstructs a sharded index from a file written by SaveFile.
// Shards are read (io.ReaderAt sections) and decoded in parallel on a
// GOMAXPROCS-bounded pool.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", path, err)
	}
	m, err := readManifest(f)
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", path, err)
	}
	offs := make([]int64, m.Shards)
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", path, err)
	}
	for i, l := range m.ShardLens {
		offs[i] = pos
		pos += l
	}
	if pos != fi.Size() {
		return nil, fmt.Errorf("shard: load %s: %w", path,
			corrupt("file is %d bytes, manifest accounts for %d", fi.Size(), pos))
	}
	ix, err := loadShards(m, func(i int) ([]byte, error) {
		raw := make([]byte, m.ShardLens[i])
		if _, err := f.ReadAt(raw, offs[i]); err != nil {
			return nil, corruptWrap(err, "shard %d of %d: unreadable stream", i, m.Shards)
		}
		return raw, nil
	})
	if err != nil {
		return nil, fmt.Errorf("shard: load %s: %w", path, err)
	}
	return ix, nil
}

// loadShards fetches (via read, which may do parallel file I/O) and decodes
// every non-empty shard on a bounded worker pool, then assembles the index.
func loadShards(m *manifest, read func(i int) ([]byte, error)) (*Index, error) {
	shards := make([]*index.Index, m.Shards)
	err := runPool(context.Background(), m.Shards, 0, func(_ context.Context, i int) error {
		if m.ShardLens[i] == 0 {
			return nil
		}
		raw, err := read(i)
		if err != nil {
			return err
		}
		ix, err := decodeShard(m, i, raw)
		if err != nil {
			return err
		}
		shards[i] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	return assemble(m, shards)
}
