package shard

import (
	"context"
	"sync"
	"testing"

	"xseq/internal/engine"
	"xseq/internal/query"
	"xseq/internal/telemetry"
)

func mustPattern(t testing.TB, q string) *query.Pattern {
	t.Helper()
	pat, err := query.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return pat
}

// TestTraceSpansCarryRequestID checks the core trace invariant: every
// per-shard span recorded during a fan-out belongs to the request's own
// trace, and the fan-out/merge timing split is populated.
func TestTraceSpansCarryRequestID(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 80), 4, 0, false)
	pat := mustPattern(t, "//item/name")

	tr := telemetry.GetTrace()
	defer telemetry.PutTrace(tr)
	ctx := telemetry.WithTrace(context.Background(), tr)
	ids, err := s.QueryWithContext(ctx, pat, engine.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want one per shard (4)", len(spans))
	}
	seenShards := make(map[int32]bool)
	total := 0
	for _, sp := range spans {
		if sp.TraceID != tr.ID {
			t.Errorf("span for shard %d carries trace %x, want %x", sp.Shard, sp.TraceID, tr.ID)
		}
		if sp.DurNS < 0 {
			t.Errorf("span for shard %d has negative duration %d", sp.Shard, sp.DurNS)
		}
		if seenShards[sp.Shard] {
			t.Errorf("shard %d recorded two spans", sp.Shard)
		}
		seenShards[sp.Shard] = true
		total += int(sp.Results)
	}
	if total != len(ids) {
		t.Errorf("span results sum to %d, merged answer has %d", total, len(ids))
	}
	if tr.FanoutNS() <= 0 {
		t.Error("fan-out duration not recorded")
	}
	if tr.MergeNS() < 0 {
		t.Error("merge duration negative")
	}
}

// TestTraceSingleShardSpan checks the non-fan-out path: a one-shard index
// still records a span so per-shard latency series are never empty.
func TestTraceSingleShardSpan(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 30), 1, 0, false)
	tr := telemetry.GetTrace()
	defer telemetry.PutTrace(tr)
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := s.QueryWithContext(ctx, mustPattern(t, "//item"), engine.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].TraceID != tr.ID || spans[0].Shard != 0 {
		t.Fatalf("span = %+v, want shard 0 with trace %x", spans[0], tr.ID)
	}
}

// TestTraceFanoutHammer races many concurrent traced queries against the
// same sharded index. Under -race this flushes out any sharing of trace
// state between requests; functionally it asserts no span ever leaks into
// another request's trace.
func TestTraceFanoutHammer(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 60), 4, 0, false)
	pats := []*query.Pattern{
		mustPattern(t, "//item/name"),
		mustPattern(t, "/site//keyword"),
		mustPattern(t, "//listitem"),
		mustPattern(t, "/site/regions"),
	}
	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tr := telemetry.GetTrace()
				ctx := telemetry.WithTrace(context.Background(), tr)
				_, err := s.QueryWithContext(ctx, pats[(g+i)%len(pats)], engine.QueryOptions{})
				if err != nil {
					errs <- err
					telemetry.PutTrace(tr)
					return
				}
				for _, sp := range tr.Spans() {
					if sp.TraceID != tr.ID {
						t.Errorf("goroutine %d iter %d: span trace %x != request trace %x", g, i, sp.TraceID, tr.ID)
					}
				}
				if n := len(tr.Spans()); n != 4 {
					t.Errorf("goroutine %d iter %d: %d spans, want 4", g, i, n)
				}
				telemetry.PutTrace(tr)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestUntracedQueryRecordsNothing confirms the zero-cost-off contract:
// without a trace on the context, queries run and no spans exist anywhere
// to be recorded.
func TestUntracedQueryRecordsNothing(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 30), 2, 0, false)
	if _, err := s.QueryWithContext(context.Background(), mustPattern(t, "//item"), engine.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
}
