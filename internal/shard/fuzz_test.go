package shard

import (
	"bytes"
	"errors"
	"testing"

	"xseq/internal/index"
	"xseq/internal/query"
)

// FuzzLoad feeds arbitrary bytes to the sharded-snapshot loader. The
// contract under test: Load either reconstructs a queryable index or
// returns an error — never panics, and any corruption surfaces as a
// *index.CorruptError, never as a wrong-shard misattribution (the decoder
// re-hashes every document id against its claiming shard).
func FuzzLoad(f *testing.F) {
	_, valid := savedSharded(f, 6, 3)
	f.Add(valid)
	f.Add(valid[:16])
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("XSEQSHRD"))
	f.Add([]byte{})
	for _, i := range []int{0, 9, 17, 25, len(valid) / 2, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x80
		f.Add(mut)
	}
	pat := query.MustParse("//date")
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Load(bytes.NewReader(data))
		if err != nil {
			var ce *index.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Load error is not a *index.CorruptError: %v", err)
			}
			return
		}
		// A stream that loads must answer queries without panicking, and its
		// claimed geometry must be self-consistent.
		if s.NumShards() < 1 {
			t.Fatalf("loaded index claims %d shards", s.NumShards())
		}
		ids, err := s.Query(pat)
		if err != nil {
			t.Fatalf("query on loaded index: %v", err)
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("result ids out of order: %v", ids)
			}
		}
	})
}
