// Package shard scales the constraint-sequence index out across CPU cores:
// a shard.Index hash-partitions the corpus by document id into N independent
// index.Index shards, builds them in parallel on a bounded worker pool, and
// answers queries by fanning out to every shard concurrently and merging the
// per-shard document-id results back into the ascending order a monolithic
// index returns.
//
// The partitioning invariant is the whole design: the paper's matching is
// holistic per document (no cross-document joins), so a document's membership
// in a query result depends only on that document's own sequence and the
// shard that indexed it. Partitioning by document id therefore preserves
// query semantics exactly — the union of per-shard results over a disjoint
// partition equals the monolithic result — while each shard's schema,
// sequencing strategy, and trie stay private to the shard.
//
// Failure semantics mirror the rest of the codebase: a shard build that
// fails (error, panic, cancellation) cancels its siblings and the whole
// build reports the first failure; a query fan-out propagates the first
// shard error unless the error is the fan-out's own early-stop cancellation
// of sibling shards after a Limit query found enough hits.
package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"xseq/internal/engine"
	"xseq/internal/index"
	"xseq/internal/query"
	"xseq/internal/telemetry"
	"xseq/internal/xmltree"
)

// DefaultSeed is the partition hash seed used when Options.Seed is zero. It
// is recorded in snapshots so a reloaded index partitions identically.
const DefaultSeed uint64 = 0x9e3779b97f4a7c15

// Options configures BuildContext.
type Options struct {
	// Shards is the partition count (<= 0: 1). Shards may exceed the corpus
	// size; surplus shards stay empty and cost nothing at query time.
	Shards int
	// Workers bounds how many shards build concurrently
	// (<= 0: runtime.GOMAXPROCS(0)).
	Workers int
	// Seed perturbs the partition hash (0: DefaultSeed).
	Seed uint64
}

// Builder constructs one shard's index over its slice of the corpus. It is
// called concurrently from the build worker pool, once per non-empty shard,
// so it must be safe for concurrent use across distinct document slices.
type Builder func(ctx context.Context, docs []*xmltree.Document) (*index.Index, error)

// Index is a hash-partitioned, parallel-queried index over a corpus. It is
// immutable after BuildContext (or Load) and safe for concurrent use.
type Index struct {
	shards   []*index.Index // len = shard count; nil entries are empty shards
	seed     uint64
	numDocs  int
	maxDocID int32
}

// ShardOf maps a document id to its shard with a splitmix64-style finalizer:
// every bit of the id influences the shard, so dense sequential ids spread
// evenly instead of striping.
func ShardOf(id int32, seed uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	x := uint64(uint32(id)) ^ seed
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(shards))
}

// runPool runs fn(i) for every i in [0, n) on at most workers goroutines.
// The first error cancels the pool's context so sibling workers can abort;
// a worker panic is contained and reported as that worker's error. The
// parent context's error takes precedence in the return value, so callers
// see a clean ctx.Err() when the caller itself cancelled.
func runPool(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-pctx.Done():
				return
			}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("shard: worker %d panic: %v", i, r))
				}
			}()
			if pctx.Err() != nil {
				return
			}
			if err := fn(pctx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// BuildContext partitions docs by ShardOf(id) and builds every non-empty
// shard with build on a bounded worker pool. The first shard failure —
// builder error, panic, or cancellation — cancels the remaining builds and
// is returned; no partially built index escapes. Duplicate ids always hash
// to the same shard, so the per-shard duplicate check keeps ids globally
// unique.
func BuildContext(ctx context.Context, docs []*xmltree.Document, build Builder, opt Options) (*Index, error) {
	if build == nil {
		return nil, fmt.Errorf("shard: Builder is required")
	}
	n := opt.Shards
	if n <= 0 {
		n = 1
	}
	seed := opt.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	s := &Index{seed: seed, numDocs: len(docs), shards: make([]*index.Index, n)}
	parts := make([][]*xmltree.Document, n)
	for i, d := range docs {
		if d == nil || d.Root == nil {
			return nil, fmt.Errorf("shard: nil document at position %d", i)
		}
		if d.ID < 0 {
			return nil, fmt.Errorf("shard: negative document id %d", d.ID)
		}
		if d.ID > s.maxDocID {
			s.maxDocID = d.ID
		}
		k := ShardOf(d.ID, seed, n)
		parts[k] = append(parts[k], d)
	}
	err := runPool(ctx, n, opt.Workers, func(pctx context.Context, i int) error {
		if len(parts[i]) == 0 {
			return nil
		}
		ix, err := build(pctx, parts[i])
		if err != nil {
			return fmt.Errorf("shard: shard %d of %d: %w", i, n, err)
		}
		if ix == nil {
			return fmt.Errorf("shard: shard %d of %d: builder returned nil index", i, n)
		}
		s.shards[i] = ix
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// NumShards reports the partition count (including empty shards).
func (s *Index) NumShards() int { return len(s.shards) }

// Shard returns shard i's index, nil when the shard is empty.
func (s *Index) Shard(i int) *index.Index { return s.shards[i] }

// Seed returns the partition hash seed.
func (s *Index) Seed() uint64 { return s.seed }

// NumDocuments reports the corpus size across all shards.
func (s *Index) NumDocuments() int { return s.numDocs }

// MaxDocID reports the largest document id across all shards.
func (s *Index) MaxDocID() int32 { return s.maxDocID }

// NumNodes reports the total trie node count across shards.
func (s *Index) NumNodes() int {
	total := 0
	for _, sh := range s.shards {
		if sh != nil {
			total += sh.NumNodes()
		}
	}
	return total
}

// NumLinks reports the total path-link count across shards. Paths present
// in several shards count once per shard: each shard owns a private path
// table.
func (s *Index) NumLinks() int {
	total := 0
	for _, sh := range s.shards {
		if sh != nil {
			total += sh.NumLinks()
		}
	}
	return total
}

// EstimatedDiskBytes applies the paper's 4n + 8N sizing formula to the
// aggregate corpus and node counts.
func (s *Index) EstimatedDiskBytes() int64 {
	const c = 8
	return 4*int64(s.numDocs) + c*int64(s.NumNodes())
}

// Shards reports per-partition shape statistics in partition order; empty
// partitions report zeros.
func (s *Index) Shards() []engine.ShardStat {
	out := make([]engine.ShardStat, len(s.shards))
	for i, sh := range s.shards {
		if sh == nil {
			continue
		}
		out[i] = engine.ShardStat{
			Documents: sh.NumDocuments(),
			Nodes:     sh.NumNodes(),
			Links:     sh.NumLinks(),
		}
	}
	return out
}

// Generation identifies the index's corpus snapshot. A sharded index is
// frozen after build/load, so the generation is constant.
func (s *Index) Generation() uint64 { return 0 }

var _ engine.Engine = (*Index)(nil)

// Documents returns the retained corpus across shards (nil unless the
// shards were built with KeepDocuments), in no particular order.
func (s *Index) Documents() []*xmltree.Document {
	var out []*xmltree.Document
	for _, sh := range s.shards {
		if sh != nil {
			out = append(out, sh.Documents()...)
		}
	}
	return out
}

// Query answers a tree-pattern query across all shards; it is QueryContext
// with context.Background().
func (s *Index) Query(pat *query.Pattern) ([]int32, error) {
	return s.QueryContext(context.Background(), pat)
}

// QueryContext fans the pattern out to every shard concurrently and merges
// the results into ascending document-id order — identical to what a
// monolithic index over the same corpus returns.
func (s *Index) QueryContext(ctx context.Context, pat *query.Pattern) ([]int32, error) {
	return s.QueryWithContext(ctx, pat, index.QueryOptions{})
}

// shardResult is one shard's slice of a fan-out's outcome.
type shardResult struct {
	ids []int32
	err error
}

// fanoutScratch is the reusable working set of one query fan-out: the live
// shard list, per-shard result and stats slots, and the merge cursor array.
// Pooled across queries so the steady-state fan-out only allocates the
// per-shard goroutines and the merged output slice. Everything here is
// borrowed: the merged result is always a fresh slice, so nothing pooled
// escapes to the caller (or into a result cache above).
type fanoutScratch struct {
	live    []int
	results []shardResult
	stats   []index.QueryStats
	lists   [][]int32
}

var fanoutPool = sync.Pool{New: func() any { return new(fanoutScratch) }}

// getFanoutScratch fetches a scratch with zeroed slots for n shards.
func getFanoutScratch(n int) *fanoutScratch {
	f := fanoutPool.Get().(*fanoutScratch)
	f.live = f.live[:0]
	f.lists = f.lists[:0]
	if cap(f.results) < n {
		f.results = make([]shardResult, n)
		f.stats = make([]index.QueryStats, n)
	} else {
		f.results = f.results[:n]
		f.stats = f.stats[:n]
		for i := range f.results {
			f.results[i] = shardResult{}
			f.stats[i] = index.QueryStats{}
		}
	}
	return f
}

// putFanoutScratch drops the id-slice references (so the pool does not pin
// per-shard results until the next query) and returns f to the pool.
func putFanoutScratch(f *fanoutScratch) {
	for i := range f.results {
		f.results[i].ids = nil
	}
	for i := range f.lists {
		f.lists[i] = nil
	}
	fanoutPool.Put(f)
}

// QueryWithContext is QueryContext with per-query options. Shard results
// are disjoint (each document lives in exactly one shard) and each shard
// returns its ids in ascending order, so the merge is a k-way merge of
// sorted lists with no deduplication — identical output, in the same
// ascending order, as the monolithic index. With MaxResults set, a shard
// reporting results counts them against the global budget and the fan-out
// cancels the remaining shards as soon as the budget is met; the k-way
// merge then stops at the MaxResults smallest ids among the hits found.
// Stats are accumulated per shard and summed.
func (s *Index) QueryWithContext(ctx context.Context, pat *query.Pattern, qo index.QueryOptions) ([]int32, error) {
	fs := getFanoutScratch(len(s.shards))
	defer putFanoutScratch(fs)
	for i, sh := range s.shards {
		if sh != nil {
			fs.live = append(fs.live, i)
		}
	}
	if len(fs.live) == 0 {
		return nil, nil
	}
	// A context-borne trace gets one span per shard slice (stamped with the
	// request's trace id inside AddSpan) plus the fan-out/merge wall-time
	// split. Kernel counters are recorded by the leaf engines themselves
	// through the same context, so nothing is double counted here.
	tr := telemetry.TraceFrom(ctx)
	if len(fs.live) == 1 {
		i := fs.live[0]
		if tr == nil {
			return s.shards[i].QueryWithContext(ctx, pat, qo)
		}
		spanStart := time.Now()
		ids, err := s.shards[i].QueryWithContext(ctx, pat, qo)
		tr.AddSpan(int32(i), int32(len(ids)), time.Since(spanStart).Nanoseconds())
		return ids, err
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		results = fs.results
		stats   = fs.stats
		found   atomic.Int64
		wg      sync.WaitGroup
	)
	var fanStart time.Time
	if tr != nil {
		fanStart = time.Now()
	}
	for _, i := range fs.live {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[i].err = fmt.Errorf("shard: shard %d query panic: %v", i, r)
					cancel()
				}
			}()
			sqo := qo
			if qo.Stats != nil {
				sqo.Stats = &stats[i]
			}
			var spanStart time.Time
			if tr != nil {
				spanStart = time.Now()
			}
			ids, err := s.shards[i].QueryWithContext(fctx, pat, sqo)
			if tr != nil {
				tr.AddSpan(int32(i), int32(len(ids)), time.Since(spanStart).Nanoseconds())
			}
			results[i] = shardResult{ids: ids, err: err}
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					cancel() // fail fast: no point finishing sibling shards
				}
				return
			}
			if qo.MaxResults > 0 && found.Add(int64(len(ids))) >= int64(qo.MaxResults) {
				cancel() // enough hits across shards: stop the stragglers
			}
		}(i)
	}
	wg.Wait()
	if tr != nil {
		tr.SetFanoutNS(time.Since(fanStart).Nanoseconds())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enough := qo.MaxResults > 0 && found.Load() >= int64(qo.MaxResults)
	// A real shard failure outranks the context.Canceled its cancellation
	// induced in sibling shards; report it whichever shard finished first.
	var cancelErr error
	for _, i := range fs.live {
		if err := results[i].err; err != nil {
			if errors.Is(err, context.Canceled) {
				cancelErr = err
				continue
			}
			return nil, err
		}
	}
	if cancelErr != nil && !enough {
		return nil, cancelErr
	}
	total := 0
	for _, i := range fs.live {
		if r := results[i]; r.err == nil && len(r.ids) > 0 {
			fs.lists = append(fs.lists, r.ids)
			total += len(r.ids)
		}
	}
	if qo.MaxResults > 0 && total > qo.MaxResults {
		total = qo.MaxResults
	}
	var out []int32
	if total > 0 {
		var mergeStart time.Time
		if tr != nil {
			mergeStart = time.Now()
		}
		out = engine.MergeAscending(fs.lists, make([]int32, 0, total), qo.MaxResults)
		if tr != nil {
			tr.SetMergeNS(time.Since(mergeStart).Nanoseconds())
		}
	}
	if qo.Stats != nil {
		for i := range stats {
			qo.Stats.Add(stats[i])
		}
		qo.Stats.Results = len(out)
	}
	return out, nil
}
