package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xseq/internal/datagen"
	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// csBuilder is the standard test Builder: infer a schema over the
// partition, sequence with g_best, build the index.
func csBuilder(keep bool) Builder {
	return func(ctx context.Context, docs []*xmltree.Document) (*index.Index, error) {
		roots := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			roots[i] = d.Root
		}
		sch, err := schema.Infer(roots)
		if err != nil {
			return nil, err
		}
		enc := pathenc.NewEncoder(1 << 20)
		return index.BuildContext(ctx, docs, index.Options{
			Encoder:       enc,
			Strategy:      sequence.NewProbability(sch, enc),
			KeepDocuments: keep,
		})
	}
}

func xmarkDocs(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	_, docs, err := datagen.XMark(datagen.XMarkOptions{Seed: 7}, n)
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

func synthDocs(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	p, err := datagen.ParseSynthName("L3F5A25I0P40")
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 7
	_, docs, err := datagen.Synth(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

func buildSharded(t testing.TB, docs []*xmltree.Document, shards, workers int, keep bool) *Index {
	t.Helper()
	s, err := BuildContext(context.Background(), docs, csBuilder(keep), Options{Shards: shards, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildMono(t testing.TB, docs []*xmltree.Document, keep bool) *index.Index {
	t.Helper()
	ix, err := csBuilder(keep)(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var xmarkQueries = []string{
	datagen.XMarkQ1,
	datagen.XMarkQ2,
	datagen.XMarkQ3,
	"/site//person/name",
	"//item/location",
	"/site/*",
	"//date",
}

var synthQueries = []string{
	"/e1",
	"/e1/e2",
	"//e3",
	"/e1/*",
	"//e2//*",
}

// TestEquivalence asserts the partitioning invariant end to end: for every
// query, a sharded index returns exactly the ids (same set, same ascending
// order) the monolithic index over the same corpus returns, across shard
// counts that divide the corpus evenly, unevenly, and beyond its size.
func TestEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		docs    []*xmltree.Document
		queries []string
	}{
		{"xmark", xmarkDocs(t, 300), xmarkQueries},
		{"synth", synthDocs(t, 300), synthQueries},
	}
	for _, c := range cases {
		mono := buildMono(t, c.docs, false)
		for _, shards := range []int{2, 3, 8} {
			s := buildSharded(t, c.docs, shards, 0, false)
			if s.NumShards() != shards {
				t.Fatalf("%s: NumShards = %d, want %d", c.name, s.NumShards(), shards)
			}
			if s.NumDocuments() != len(c.docs) {
				t.Fatalf("%s: NumDocuments = %d, want %d", c.name, s.NumDocuments(), len(c.docs))
			}
			for _, q := range c.queries {
				pat := query.MustParse(q)
				want, err := mono.Query(pat)
				if err != nil {
					t.Fatalf("%s: mono %s: %v", c.name, q, err)
				}
				got, err := s.Query(pat)
				if err != nil {
					t.Fatalf("%s/%d shards: %s: %v", c.name, shards, q, err)
				}
				if !sameIDs(got, want) {
					t.Fatalf("%s/%d shards: %s: sharded %v, monolithic %v", c.name, shards, q, got, want)
				}
			}
		}
	}
}

// TestShardOfDistribution checks the partition hash spreads dense
// sequential ids across shards instead of striping or clumping.
func TestShardOfDistribution(t *testing.T) {
	const n, shards = 8192, 8
	counts := make([]int, shards)
	for id := int32(0); id < n; id++ {
		k := ShardOf(id, DefaultSeed, shards)
		if k < 0 || k >= shards {
			t.Fatalf("ShardOf(%d) = %d out of range", id, k)
		}
		counts[k]++
	}
	want := n / shards
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d holds %d of %d docs (want ~%d): %v", i, c, n, want, counts)
		}
	}
	if ShardOf(42, DefaultSeed, 1) != 0 {
		t.Fatal("single shard must always be 0")
	}
}

// TestEmptyShards: more shards than documents must build, persist the
// partition honestly (empty shards stay nil), and answer identically.
func TestEmptyShards(t *testing.T) {
	docs := xmarkDocs(t, 3)
	mono := buildMono(t, docs, false)
	s := buildSharded(t, docs, 16, 4, false)
	empty := 0
	for i := 0; i < s.NumShards(); i++ {
		if s.Shard(i) == nil {
			empty++
		}
	}
	if empty < 16-3 {
		t.Fatalf("expected at least %d empty shards, found %d", 16-3, empty)
	}
	for _, q := range xmarkQueries {
		pat := query.MustParse(q)
		want, _ := mono.Query(pat)
		got, err := s.Query(pat)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("%s: sharded %v, monolithic %v", q, got, want)
		}
	}
}

// TestBuildValidation covers the nil/negative document checks.
func TestBuildValidation(t *testing.T) {
	if _, err := BuildContext(context.Background(), nil, nil, Options{}); err == nil {
		t.Fatal("nil builder should fail")
	}
	bad := []*xmltree.Document{nil}
	if _, err := BuildContext(context.Background(), bad, csBuilder(false), Options{}); err == nil {
		t.Fatal("nil document should fail")
	}
	neg := []*xmltree.Document{{ID: -1, Root: xmltree.Figure1()}}
	if _, err := BuildContext(context.Background(), neg, csBuilder(false), Options{}); err == nil {
		t.Fatal("negative id should fail")
	}
}

// TestBuildCancellation: a cancelled context aborts the parallel build and
// surfaces the context's own error.
func TestBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildContext(ctx, xmarkDocs(t, 50), csBuilder(false), Options{Shards: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBuildFirstErrorCancelsSiblings: one failing shard build must cancel
// the others — a sibling blocked on its context unblocks, so BuildContext
// returns instead of hanging.
func TestBuildFirstErrorCancelsSiblings(t *testing.T) {
	docs := xmarkDocs(t, 64)
	boom := fmt.Errorf("flaky storage")
	builder := func(ctx context.Context, part []*xmltree.Document) (*index.Index, error) {
		for _, d := range part {
			if d.ID == docs[0].ID {
				return nil, boom
			}
		}
		// Sibling shards park until cancellation reaches them.
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, err := BuildContext(context.Background(), docs, builder, Options{Shards: 4, Workers: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the builder's own failure", err)
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Fatalf("error does not attribute the shard: %v", err)
	}
}

// TestBuildPanicContained: a panicking shard builder degrades into a build
// error, never a process crash.
func TestBuildPanicContained(t *testing.T) {
	builder := func(ctx context.Context, part []*xmltree.Document) (*index.Index, error) {
		panic("builder bug")
	}
	_, err := BuildContext(context.Background(), xmarkDocs(t, 16), builder, Options{Shards: 4})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want contained panic", err)
	}
}

// TestQueryLimit: a Limit query returns exactly max ids, each of them a
// member of the unlimited result, in ascending order.
func TestQueryLimit(t *testing.T) {
	docs := xmarkDocs(t, 200)
	s := buildSharded(t, docs, 4, 0, false)
	pat := query.MustParse("//date")
	full, err := s.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Fatalf("test needs a common query, got %d hits", len(full))
	}
	members := make(map[int32]bool, len(full))
	for _, id := range full {
		members[id] = true
	}
	for _, max := range []int{1, 5, len(full), len(full) + 100} {
		got, err := s.QueryWithContext(context.Background(), pat, index.QueryOptions{MaxResults: max})
		if err != nil {
			t.Fatalf("limit %d: %v", max, err)
		}
		want := max
		if want > len(full) {
			want = len(full)
		}
		if len(got) != want {
			t.Fatalf("limit %d: returned %d ids", max, len(got))
		}
		for i, id := range got {
			if !members[id] {
				t.Fatalf("limit %d: id %d is not in the full result", max, id)
			}
			if i > 0 && got[i-1] >= id {
				t.Fatalf("limit %d: ids out of order: %v", max, got)
			}
		}
		// A limit covering the whole result must reproduce it exactly.
		if max >= len(full) && !sameIDs(got, full) {
			t.Fatalf("limit %d: %v, want full %v", max, got, full)
		}
	}
}

// TestQueryStatsMerged: per-shard work profiles sum into the caller's
// QueryStats, with Results reflecting the merged id count.
func TestQueryStatsMerged(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 100), 4, 0, false)
	var st index.QueryStats
	ids, err := s.QueryWithContext(context.Background(), query.MustParse("//date"), index.QueryOptions{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != len(ids) {
		t.Fatalf("stats.Results = %d, ids = %d", st.Results, len(ids))
	}
	if st.Instances == 0 || st.LinkProbes == 0 || st.EntriesScanned == 0 {
		t.Fatalf("merged stats look empty: %+v", st)
	}
}

// TestQueryCancellation: a cancelled caller context aborts the fan-out with
// the context's error.
func TestQueryCancellation(t *testing.T) {
	s := buildSharded(t, xmarkDocs(t, 100), 4, 0, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.QueryContext(ctx, query.MustParse("//date")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFanOutDrainRace hammers one sharded index from many goroutines —
// plain queries, limit queries (whose early stop cancels sibling shards),
// and caller-cancelled queries — to prove the fan-out/merge path is
// race-free and always drains its goroutines. Run with -race.
func TestFanOutDrainRace(t *testing.T) {
	docs := xmarkDocs(t, 150)
	s := buildSharded(t, docs, 8, 0, false)
	mono := buildMono(t, docs, false)
	pat := query.MustParse("//date")
	want, err := mono.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 3 {
				case 0: // full query: must match the monolithic result exactly
					got, err := s.Query(pat)
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					if !sameIDs(got, want) {
						t.Errorf("race run diverged: %v vs %v", got, want)
						return
					}
				case 1: // limit query: early stop cancels sibling shards
					got, err := s.QueryWithContext(context.Background(), pat, index.QueryOptions{MaxResults: 3})
					if err != nil {
						t.Errorf("limit query: %v", err)
						return
					}
					if len(got) != 3 {
						t.Errorf("limit query returned %d ids", len(got))
						return
					}
				default: // cancelled mid-flight: must drain, never deadlock
					ctx, cancel := context.WithCancel(context.Background())
					done := make(chan struct{})
					go func() { cancel(); close(done) }()
					_, err := s.QueryContext(ctx, pat)
					<-done
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("cancelled query: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestAggregateAccessors: node/link/doc counts sum across shards and feed
// the paper's sizing formula.
func TestAggregateAccessors(t *testing.T) {
	docs := xmarkDocs(t, 60)
	s := buildSharded(t, docs, 4, 0, true)
	if s.NumDocuments() != 60 {
		t.Fatalf("NumDocuments = %d", s.NumDocuments())
	}
	sumNodes, sumLinks, sumDocs := 0, 0, 0
	for i := 0; i < s.NumShards(); i++ {
		if sh := s.Shard(i); sh != nil {
			sumNodes += sh.NumNodes()
			sumLinks += sh.NumLinks()
			sumDocs += sh.NumDocuments()
		}
	}
	if sumDocs != 60 || s.NumNodes() != sumNodes || s.NumLinks() != sumLinks {
		t.Fatalf("aggregates diverge: docs %d, nodes %d vs %d, links %d vs %d",
			sumDocs, s.NumNodes(), sumNodes, s.NumLinks(), sumLinks)
	}
	if s.EstimatedDiskBytes() != 4*60+8*int64(sumNodes) {
		t.Fatalf("EstimatedDiskBytes = %d", s.EstimatedDiskBytes())
	}
	if got := len(s.Documents()); got != 60 {
		t.Fatalf("Documents() returned %d", got)
	}
}
