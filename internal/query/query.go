// Package query models tree-pattern queries — the basic query unit of
// sequence-based XML indexing — plus an XPath-subset parser covering the
// query classes the paper evaluates (Tables 4 and 8): child steps ('/'),
// descendant steps ('//'), the single-step wildcard ('*'), branching
// predicates ('[...]') and value predicates ("[location='United States']",
// "[text='32']").
//
// A Pattern is matched against document trees in two ways: MatchesTree is
// the ground-truth structural evaluator (the semantics a structure match
// must have); Instantiate resolves wildcards against the interned path
// table, producing concrete path-tree instances ready for sequencing — the
// paper's "'*' is instantialized to symbol D" step.
package query

import (
	"fmt"
	"strings"

	"xseq/internal/pathenc"
	"xseq/internal/xmltree"
)

// Axis is how a pattern node relates to its parent (or, for the root, to
// the document root).
type Axis uint8

const (
	// AxisChild is '/': the node is a child of its parent match (the root
	// case: the node is the document root).
	AxisChild Axis = iota
	// AxisDescendant is '//': the node is a strict descendant of its
	// parent match (the root case: any node, including the root).
	AxisDescendant
)

func (a Axis) String() string {
	if a == AxisDescendant {
		return "//"
	}
	return "/"
}

// PNode is one node of a tree-pattern query.
type PNode struct {
	Axis     Axis
	Wildcard bool   // name test '*' (element nodes only)
	Name     string // element name when !Wildcard && !IsValue
	IsValue  bool   // value leaf: matches a value node with text Value
	Value    string
	// Prefix makes a value leaf match any value starting with Value
	// (written [text='bos*']). Answerable through the index only with the
	// text-sequence value representation; the ground-truth evaluator
	// supports it always.
	Prefix   bool
	Children []*PNode
}

// Pattern is a tree-pattern query.
type Pattern struct {
	Root *PNode
	// Text preserves the original query string when parsed.
	Text string
}

// HasBranching reports whether any pattern node has more than one child —
// i.e. whether the pattern is a twig rather than a simple path.
func (p *Pattern) HasBranching() bool {
	if p == nil || p.Root == nil {
		return false
	}
	branching := false
	var walk func(n *PNode)
	walk = func(n *PNode) {
		if len(n.Children) > 1 {
			branching = true
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return branching
}

// Size reports the number of pattern nodes — the paper's "query length".
func (p *Pattern) Size() int {
	var count func(n *PNode) int
	count = func(n *PNode) int {
		total := 1
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	if p == nil || p.Root == nil {
		return 0
	}
	return count(p.Root)
}

// String renders the pattern in XPath-like syntax.
func (p *Pattern) String() string {
	if p == nil || p.Root == nil {
		return ""
	}
	var b strings.Builder
	writePNode(&b, p.Root)
	return b.String()
}

func writePNode(b *strings.Builder, n *PNode) {
	b.WriteString(n.Axis.String())
	switch {
	case n.IsValue:
		fmt.Fprintf(b, "text()='%s%s'", n.Value, starIf(n.Prefix))
		return
	case n.Wildcard:
		b.WriteByte('*')
	default:
		b.WriteString(n.Name)
	}
	// Render all but the last non-value child as predicates; a single value
	// child renders as [text='v']; the last element child continues the
	// path only if it's the only child.
	if len(n.Children) == 0 {
		return
	}
	if len(n.Children) == 1 && !n.Children[0].IsValue {
		writePNode(b, n.Children[0])
		return
	}
	for _, c := range n.Children {
		b.WriteByte('[')
		if c.IsValue {
			fmt.Fprintf(b, "text='%s%s'", c.Value, starIf(c.Prefix))
		} else {
			var sub strings.Builder
			writePNode(&sub, c)
			s := sub.String()
			// A descendant-axis child keeps its "//" (the parser reads a
			// bare leading "/" inside a predicate as the child axis).
			if !strings.HasPrefix(s, "//") {
				s = strings.TrimPrefix(s, "/")
			}
			b.WriteString(s)
		}
		b.WriteByte(']')
	}
}

func starIf(prefix bool) string {
	if prefix {
		return "*"
	}
	return ""
}

// FromTree converts a concrete tree into a pattern of child axes — useful
// for generating queries by extracting substructures from documents.
func FromTree(n *xmltree.Node) *Pattern {
	return &Pattern{Root: pnodeFromTree(n, AxisChild)}
}

func pnodeFromTree(n *xmltree.Node, axis Axis) *PNode {
	p := &PNode{Axis: axis}
	if n.IsValue {
		p.IsValue = true
		p.Value = n.Value
	} else {
		p.Name = n.Name
	}
	for _, c := range n.Children {
		p.Children = append(p.Children, pnodeFromTree(c, AxisChild))
	}
	return p
}

// ToTree converts a fully concrete pattern (no wildcards, no descendant
// axes) to a plain tree; it errors otherwise.
func (p *Pattern) ToTree() (*xmltree.Node, error) {
	var conv func(n *PNode) (*xmltree.Node, error)
	conv = func(n *PNode) (*xmltree.Node, error) {
		if n.Wildcard {
			return nil, fmt.Errorf("query: pattern contains wildcard")
		}
		if n.Axis == AxisDescendant {
			return nil, fmt.Errorf("query: pattern contains descendant axis")
		}
		var out *xmltree.Node
		if n.IsValue {
			out = xmltree.NewValue(n.Value)
		} else {
			out = xmltree.NewElem(n.Name)
		}
		for _, c := range n.Children {
			cn, err := conv(c)
			if err != nil {
				return nil, err
			}
			out.Children = append(out.Children, cn)
		}
		return out, nil
	}
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("query: empty pattern")
	}
	return conv(p.Root)
}

// ---------------------------------------------------------------------------
// Ground-truth evaluation
// ---------------------------------------------------------------------------

// MatchesTree reports whether the pattern structurally matches the document:
// there is a mapping m of pattern nodes to document nodes preserving labels
// and axes, injective among the children of each pattern node. A child-axis
// root must map to the document root; a descendant-axis root may map
// anywhere.
func (p *Pattern) MatchesTree(doc *xmltree.Node) bool {
	if p == nil || p.Root == nil {
		return true
	}
	if doc == nil {
		return false
	}
	if p.Root.Axis == AxisChild {
		return matchAt(doc, p.Root)
	}
	found := false
	doc.Walk(func(d *xmltree.Node) bool {
		if found {
			return false
		}
		if matchAt(d, p.Root) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Eval brute-force evaluates the pattern over a corpus, returning matching
// document IDs in input order — the reference answer for every engine.
func Eval(docs []*xmltree.Document, p *Pattern) []int32 {
	var out []int32
	for _, d := range docs {
		if p.MatchesTree(d.Root) {
			out = append(out, d.ID)
		}
	}
	return out
}

func testMatches(d *xmltree.Node, p *PNode) bool {
	if p.IsValue {
		if !d.IsValue {
			return false
		}
		if p.Prefix {
			return strings.HasPrefix(d.Value, p.Value)
		}
		return d.Value == p.Value
	}
	if d.IsValue {
		return false
	}
	return p.Wildcard || p.Name == d.Name
}

// matchAt checks the pattern rooted at p with its root pinned to d.
func matchAt(d *xmltree.Node, p *PNode) bool {
	if !testMatches(d, p) {
		return false
	}
	if len(p.Children) == 0 {
		return true
	}
	// Candidate witnesses per pattern child.
	cand := make([][]*xmltree.Node, len(p.Children))
	for i, pc := range p.Children {
		switch pc.Axis {
		case AxisChild:
			for _, dc := range d.Children {
				if matchAt(dc, pc) {
					cand[i] = append(cand[i], dc)
				}
			}
		case AxisDescendant:
			for _, dc := range d.Children {
				dc.Walk(func(x *xmltree.Node) bool {
					if matchAt(x, pc) {
						cand[i] = append(cand[i], x)
					}
					return true
				})
			}
		}
		if len(cand[i]) == 0 {
			return false
		}
	}
	// Injective assignment among this pattern node's children.
	order := make([]int, len(p.Children))
	for i := range order {
		order[i] = i
	}
	// Fewest candidates first.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(cand[order[j]]) < len(cand[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	used := map[*xmltree.Node]bool{}
	var assign func(k int) bool
	assign = func(k int) bool {
		if k == len(order) {
			return true
		}
		for _, w := range cand[order[k]] {
			if used[w] {
				continue
			}
			used[w] = true
			if assign(k + 1) {
				return true
			}
			delete(used, w)
		}
		return false
	}
	return assign(0)
}

// ---------------------------------------------------------------------------
// Wildcard instantiation against the path table
// ---------------------------------------------------------------------------

// Instance is one concrete instantiation of a pattern: a tree of interned
// paths. Node i's concrete path is Paths[i]; Parent[i] is its pattern
// parent's index (-1 for the root). Paths may skip levels (descendant
// steps), which is fine for subsequence matching: a node's trie ancestors
// always include every ancestor path.
type Instance struct {
	Paths  []pathenc.PathID
	Parent []int
}

// DefaultInstantiationLimit caps the number of concrete instances per
// pattern; wildcard-heavy queries over rich schemas can otherwise explode.
const DefaultInstantiationLimit = 4096

// Instantiate resolves the pattern's wildcards and descendant steps against
// the interned path table, returning concrete instances. A value leaf
// resolves through the encoder's value hash. Instances whose required paths
// are absent from the table are pruned (they can match no document). A
// limit <= 0 uses DefaultInstantiationLimit. Steady-state callers use
// InstantiateScratch instead, which reuses the working buffers.
func (p *Pattern) Instantiate(enc *pathenc.Encoder, ci *pathenc.ChildIndex, limit int) []Instance {
	var scr Scratch
	return p.InstantiateScratch(enc, ci, limit, &scr)
}

// instTree is a concrete subtree: node path plus child subtrees.
type instTree struct {
	path     pathenc.PathID
	children []instTree
}

func appendInstance(inst *Instance, children []instTree, parentIdx int) {
	for _, c := range children {
		idx := len(inst.Paths)
		inst.Paths = append(inst.Paths, c.path)
		inst.Parent = append(inst.Parent, parentIdx)
		appendInstance(inst, c.children, idx)
	}
}

// instantiateChildren returns, for a pattern node matched at anchor path,
// the combinations of concrete child subtrees (cartesian product across the
// pattern's children, capped).
func instantiateChildren(enc *pathenc.Encoder, ci *pathenc.ChildIndex, pn *PNode, anchor pathenc.PathID, limit int) [][]instTree {
	if limit <= 0 {
		limit = 1
	}
	combos := [][]instTree{{}}
	for _, pc := range pn.Children {
		opts := instantiateNode(enc, ci, pc, anchor, limit)
		if len(opts) == 0 {
			return nil // this child can match nothing: prune
		}
		var next [][]instTree
		for _, combo := range combos {
			for _, opt := range opts {
				nc := append(append([]instTree{}, combo...), opt)
				next = append(next, nc)
				if len(next) >= limit {
					break
				}
			}
			if len(next) >= limit {
				break
			}
		}
		combos = next
	}
	return combos
}

// instantiateNode returns concrete subtrees for one pattern node anchored
// under the given parent path.
func instantiateNode(enc *pathenc.Encoder, ci *pathenc.ChildIndex, pn *PNode, parent pathenc.PathID, limit int) []instTree {
	var candidates []pathenc.PathID
	switch pn.Axis {
	case AxisChild:
		if pn.IsValue {
			if enc.TextValues() && len(pn.Value) > 0 {
				// Text-sequence representation: the value (or prefix)
				// resolves to a chain of character paths. The chain is
				// returned directly — value leaves have no children.
				return charChain(enc, pn, parent, limit)
			}
			if pn.Prefix {
				// Atomic values cannot answer prefix tests (the hash
				// destroys prefixes); prune — QueryVerified or the text
				// representation handle these.
				return nil
			}
			if sym, ok := enc.LookupValueSymbol(pn.Value); ok {
				if p := enc.Lookup(parent, sym); p != pathenc.InvalidPath {
					candidates = append(candidates, p)
				}
			}
		} else if pn.Wildcard {
			for _, c := range ci.Children(parent) {
				if enc.SymbolKind(enc.LastSymbol(c)) == pathenc.KindElement {
					candidates = append(candidates, c)
				}
			}
		} else if sym, ok := enc.LookupElementSymbol(pn.Name); ok {
			if p := enc.Lookup(parent, sym); p != pathenc.InvalidPath {
				candidates = append(candidates, p)
			}
		}
	case AxisDescendant:
		for _, c := range ci.Descendants(parent) {
			if stepMatchesPath(enc, pn, c) {
				candidates = append(candidates, c)
			}
		}
	}
	var out []instTree
	for _, c := range candidates {
		subs := instantiateChildren(enc, ci, pn, c, limit)
		for _, sub := range subs {
			out = append(out, instTree{path: c, children: sub})
			if len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// charChain resolves a value (or prefix) test into a chain of character
// paths under parent; an unresolvable character prunes the chain.
func charChain(enc *pathenc.Encoder, pn *PNode, parent pathenc.PathID, limit int) []instTree {
	syms, ok := enc.LookupCharSymbols(pn.Value)
	if !ok {
		return nil
	}
	p := parent
	var paths []pathenc.PathID
	for _, sym := range syms {
		p = enc.Lookup(p, sym)
		if p == pathenc.InvalidPath {
			return nil
		}
		paths = append(paths, p)
	}
	// Build the nested chain bottom-up.
	var node instTree
	for i := len(paths) - 1; i >= 0; i-- {
		if i == len(paths)-1 {
			node = instTree{path: paths[i]}
		} else {
			node = instTree{path: paths[i], children: []instTree{node}}
		}
	}
	_ = limit
	return []instTree{node}
}

// stepMatchesPath reports whether a pattern node's name test matches the
// last designator of a path. Value tests resolve through the atomic value
// hash; with the text-sequence representation, descendant-axis value tests
// are not supported (values have no single designator) and match nothing.
func stepMatchesPath(enc *pathenc.Encoder, pn *PNode, p pathenc.PathID) bool {
	sym := enc.LastSymbol(p)
	kind := enc.SymbolKind(sym)
	if pn.IsValue {
		if kind != pathenc.KindValue || enc.TextValues() || pn.Prefix {
			return false
		}
		vs, ok := enc.LookupValueSymbol(pn.Value)
		return ok && vs == sym
	}
	if kind != pathenc.KindElement {
		return false
	}
	return pn.Wildcard || enc.SymbolName(sym) == pn.Name
}
