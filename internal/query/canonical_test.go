package query

import (
	"testing"

	"xseq/internal/xmltree"
)

// TestPatternStringStableCacheKey pins the property the query result cache
// keys on: Pattern.String() is a canonical form — parse→String→parse is a
// fixpoint across descendant, predicate, wildcard, and prefix forms, and
// spelling variants of the same query collapse to one rendering (so one
// cache entry, never a stale split-brain pair).
func TestPatternStringStableCacheKey(t *testing.T) {
	forms := []string{
		"/a/b",
		"//a",
		"/a//b/c",
		"/a/*/c",
		"/*",
		"//*[b]",
		"/a[b]",
		"/a[b][c/d]",
		"/a[b/c='v']",
		"/a[text='v']",
		"/a[text='bos*']",
		"//site//item[location='United States']/mail/date[text='07/05/2000']",
		"/a[b='x']//c[d][e='y']",
	}
	for _, s := range forms {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		canonical := p.String()
		p2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical %q of %q does not reparse: %v", canonical, s, err)
		}
		if got := p2.String(); got != canonical {
			t.Fatalf("String not a fixpoint for %q: %q -> %q", s, canonical, got)
		}
		if p.Size() != p2.Size() {
			t.Fatalf("%q: size changed across round-trip: %d vs %d", s, p.Size(), p2.Size())
		}
	}

	// Spelling variants mean the same query; a cache keyed on String must
	// see one key for all of them.
	variants := [][]string{
		{"/a[text='v']", "/a[.='v']", "/a[text()='v']"},
		{"/a/b", "/a/b", "/a/b"},
	}
	for _, group := range variants {
		want := MustParse(group[0]).String()
		for _, s := range group[1:] {
			if got := MustParse(s).String(); got != want {
				t.Fatalf("variant %q canonicalizes to %q, %q to %q — cache key split",
					group[0], want, s, got)
			}
		}
	}
}

// FuzzPatternCanonical fuzzes the cache-key property directly: whenever a
// string parses, its canonical rendering must reparse to the same rendering
// AND answer identically on a probe corpus — canonical equality is only a
// safe cache key if it implies answer equality.
func FuzzPatternCanonical(f *testing.F) {
	seeds := []string{
		"/a/b",
		"//a",
		"/a//b",
		"/a/*/c",
		"/*",
		"/a[b]",
		"/a[b][c/d]",
		"/a[b/c='v']",
		"/a[text='v']",
		"/a[.='v']",
		"/a[text()='v']",
		"/a[text='bos*']",
		"//b[c='x']//d",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	var probes []*xmltree.Node
	for _, src := range []string{
		"<a><b>v</b><c><d/></c></a>",
		"<a><b><c>v</c></b></a>",
		"<a>boston<b/></a>",
	} {
		root, err := xmltree.ParseString(src)
		if err != nil {
			f.Fatal(err)
		}
		probes = append(probes, root)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		canonical := p.String()
		p2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical %q of %q does not reparse: %v", canonical, s, err)
		}
		if got := p2.String(); got != canonical {
			t.Fatalf("String not a fixpoint: %q -> %q", canonical, got)
		}
		for i, root := range probes {
			if p.MatchesTree(root) != p2.MatchesTree(root) {
				t.Fatalf("probe %d: %q and its canonical %q disagree", i, s, canonical)
			}
		}
	})
}
