package query

import (
	"testing"

	"xseq/internal/xmltree"
)

// FuzzParse checks the parser never panics, and that every successfully
// parsed pattern renders to a string that reparses to the same rendering
// (String is a fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"/a/b",
		"//a",
		"/a/*/c",
		"/a[b/c='v']",
		"/a[text='v']",
		"/a[.='v']",
		"/a[text()='v']",
		"/site//item[location='United States']/mail/date[text='07/05/2000']",
		"/book/[key='Maier]/author",
		"//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
		"/a[b][c/d]",
		"/a[text='bos*']",
		"a/b",
		"/", "//", "[", "]", "='x'", "/a[", "/a[b", "/a[b='",
		"/a[@k='v']", "/*",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering %q of %q does not reparse: %v", rendered, s, err)
		}
		if p2.String() != rendered {
			t.Fatalf("String not a fixpoint: %q -> %q", rendered, p2.String())
		}
		if p.Size() != p2.Size() {
			t.Fatalf("size changed across render: %d vs %d", p.Size(), p2.Size())
		}
	})
}

// FuzzMatchesTree checks the ground-truth evaluator never panics on
// arbitrary query/document combinations.
func FuzzMatchesTree(f *testing.F) {
	f.Add("/a[b='x']", "<a><b>x</b></a>")
	f.Add("//b", "<a><b/><b/></a>")
	f.Add("/*[c]", "<a><c/></a>")
	f.Fuzz(func(t *testing.T, q, xmlSrc string) {
		p, err := Parse(q)
		if err != nil {
			return
		}
		doc, err := xmltree.ParseString(xmlSrc)
		if err != nil {
			return
		}
		_ = p.MatchesTree(doc)
	})
}
