package query

import (
	"testing"

	"xseq/internal/xmltree"
)

func TestParseSimplePath(t *testing.T) {
	p := MustParse("/inproceedings/title")
	if p.Root.Name != "inproceedings" || p.Root.Axis != AxisChild {
		t.Fatalf("root = %+v", p.Root)
	}
	if len(p.Root.Children) != 1 || p.Root.Children[0].Name != "title" {
		t.Fatalf("children = %+v", p.Root.Children)
	}
	if p.Size() != 2 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestParseDescendantAnchor(t *testing.T) {
	p := MustParse("//author[text='David']")
	if p.Root.Axis != AxisDescendant || p.Root.Name != "author" {
		t.Fatalf("root = %+v", p.Root)
	}
	if len(p.Root.Children) != 1 {
		t.Fatalf("children = %+v", p.Root.Children)
	}
	v := p.Root.Children[0]
	if !v.IsValue || v.Value != "David" {
		t.Fatalf("value predicate = %+v", v)
	}
}

func TestParseWildcardStep(t *testing.T) {
	p := MustParse("/*/author[text='David']")
	if !p.Root.Wildcard || p.Root.Axis != AxisChild {
		t.Fatalf("root = %+v", p.Root)
	}
	a := p.Root.Children[0]
	if a.Name != "author" || len(a.Children) != 1 || !a.Children[0].IsValue {
		t.Fatalf("author step = %+v", a)
	}
}

func TestParsePaperTypoQuery(t *testing.T) {
	// Table 8 Q2 verbatim, including the stray slash and unclosed quote.
	p := MustParse("/book/[key='Maier]/author")
	if p.Root.Name != "book" {
		t.Fatalf("root = %+v", p.Root)
	}
	if len(p.Root.Children) != 2 {
		t.Fatalf("book children = %+v", p.Root.Children)
	}
	key := p.Root.Children[0]
	if key.Name != "key" || len(key.Children) != 1 || key.Children[0].Value != "Maier" {
		t.Fatalf("key predicate = %+v", key)
	}
	if p.Root.Children[1].Name != "author" {
		t.Fatalf("continuation = %+v", p.Root.Children[1])
	}
}

func TestParseXMarkQ1(t *testing.T) {
	p := MustParse("/site//item[location='United States']/mail/date[text='07/05/2000']")
	site := p.Root
	if site.Name != "site" || site.Axis != AxisChild {
		t.Fatalf("site = %+v", site)
	}
	item := site.Children[0]
	if item.Name != "item" || item.Axis != AxisDescendant {
		t.Fatalf("item = %+v", item)
	}
	if len(item.Children) != 2 {
		t.Fatalf("item children = %+v", item.Children)
	}
	loc := item.Children[0]
	if loc.Name != "location" || loc.Children[0].Value != "United States" {
		t.Fatalf("location = %+v", loc)
	}
	mail := item.Children[1]
	if mail.Name != "mail" || mail.Axis != AxisChild {
		t.Fatalf("mail = %+v", mail)
	}
	date := mail.Children[0]
	if date.Name != "date" || !date.Children[0].IsValue || date.Children[0].Value != "07/05/2000" {
		t.Fatalf("date = %+v", date)
	}
	// site, item, location, 'United States', mail, date, '07/05/2000'.
	if p.Size() != 7 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestParseXMarkQ3(t *testing.T) {
	p := MustParse("//closed_auction[seller/person='person11304']/date[text='12/15/1999']")
	ca := p.Root
	if ca.Name != "closed_auction" || ca.Axis != AxisDescendant {
		t.Fatalf("root = %+v", ca)
	}
	if len(ca.Children) != 2 {
		t.Fatalf("children = %+v", ca.Children)
	}
	seller := ca.Children[0]
	if seller.Name != "seller" || seller.Children[0].Name != "person" {
		t.Fatalf("seller = %+v", seller)
	}
	pv := seller.Children[0].Children[0]
	if !pv.IsValue || pv.Value != "person11304" {
		t.Fatalf("person value = %+v", pv)
	}
	date := ca.Children[1]
	if date.Name != "date" || date.Children[0].Value != "12/15/1999" {
		t.Fatalf("date = %+v", date)
	}
}

func TestParseAttributeAndDotTests(t *testing.T) {
	p := MustParse("/a[@k='v']")
	k := p.Root.Children[0]
	if k.Name != "k" || k.Children[0].Value != "v" {
		t.Fatalf("attribute predicate = %+v", k)
	}
	p2 := MustParse("/a[.='v']")
	if !p2.Root.Children[0].IsValue || p2.Root.Children[0].Value != "v" {
		t.Fatalf("dot test = %+v", p2.Root.Children[0])
	}
	p3 := MustParse("/a[text()='v']")
	if !p3.Root.Children[0].IsValue {
		t.Fatalf("text() test = %+v", p3.Root.Children[0])
	}
}

func TestParseExistentialPredicate(t *testing.T) {
	p := MustParse("/a[b][c/d]")
	if len(p.Root.Children) != 2 {
		t.Fatalf("children = %+v", p.Root.Children)
	}
	if p.Root.Children[0].Name != "b" {
		t.Fatalf("b = %+v", p.Root.Children[0])
	}
	c := p.Root.Children[1]
	if c.Name != "c" || c.Children[0].Name != "d" {
		t.Fatalf("c/d = %+v", c)
	}
}

func TestParseDescendantInsidePredicate(t *testing.T) {
	p := MustParse("/a[//b='v']/c")
	b := p.Root.Children[0]
	if b.Name != "b" || b.Axis != AxisDescendant {
		t.Fatalf("b = %+v", b)
	}
	if p.Root.Children[1].Name != "c" {
		t.Fatalf("c = %+v", p.Root.Children[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"/",
		"/a[",
		"/a[b",
		"/a]",
		"/a[=']",
		"/a[text=]",
		"/a[b='v",
		"a/b extra stuff$",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseRelativeNoLeadingSlash(t *testing.T) {
	// A bare name parses as a child-axis root (convenient for records).
	p, err := Parse("inproceedings/title")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root.Name != "inproceedings" || p.Root.Children[0].Name != "title" {
		t.Fatalf("pattern = %+v", p.Root)
	}
}

func TestStringRoundTripParses(t *testing.T) {
	for _, q := range []string{
		"/inproceedings/title",
		"//author[text='David']",
		"/*/author[text='David']",
		"/site//item[location='United States']/mail/date[text='07/05/2000']",
		"//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
		"/a[b][c/d]",
		"/a[b]//c", // descendant continuation after a predicate renders as [//c]
		"/a[//b][c]",
	} {
		p := MustParse(q)
		s := p.String()
		p2, err := Parse(s)
		if err != nil {
			t.Fatalf("String of %q = %q does not reparse: %v", q, s, err)
		}
		if p2.String() != s {
			t.Fatalf("String not stable: %q -> %q", s, p2.String())
		}
	}
}

func TestFromTreeToTree(t *testing.T) {
	tree := xmltree.Figure2c()
	p := FromTree(tree)
	if p.Size() != tree.Size() {
		t.Fatalf("Size = %d want %d", p.Size(), tree.Size())
	}
	back, err := p.ToTree()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(tree, back) {
		t.Fatalf("round trip changed tree: %v -> %v", tree, back)
	}
	if _, err := MustParse("//a").ToTree(); err == nil {
		t.Fatal("ToTree should reject descendant axes")
	}
	if _, err := MustParse("/*").ToTree(); err == nil {
		t.Fatal("ToTree should reject wildcards")
	}
}
