package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

func TestMatchesTreePaperQuery(t *testing.T) {
	doc := xmltree.Figure1()
	// The Section 3.1 query:
	// /Project[Research[Loc=newyork]]/Develop[Loc=boston] with Figure 1's
	// single-letter designators.
	p := MustParse("/P[R/L='newyork']/D[L='boston']")
	if !p.MatchesTree(doc) {
		t.Fatal("Section 3.1 query should match Figure 1")
	}
	wrong := MustParse("/P[R/L='boston']")
	if wrong.MatchesTree(doc) {
		t.Fatal("R/L=boston must not match (boston is under D)")
	}
}

func TestMatchesTreeAxes(t *testing.T) {
	doc := xmltree.Figure1()
	cases := []struct {
		q    string
		want bool
	}{
		{"/P//N[text='GUI']", true},
		{"/P/N[text='GUI']", false},      // N is not a direct child of P
		{"//N[text='GUI']", true},        // anchored anywhere
		{"//U/N[text='engine']", true},   //
		{"//U/M[text='engine']", false},  // engine is under N
		{"/P/*/M[text='johnson']", true}, // * = D
		{"/P/*/M[text='nobody']", false}, //
		{"//P", true},                    // descendant-or-self anchor hits the root
		{"/D", false},                    // root must be P on the child axis
		{"/P[R][D/U/N='GUI']", true},     // branching
		{"/P[R/M='tom'][D/M='johnson']", true},
		{"/P[R/M='johnson']", false}, // johnson is D's manager
	}
	for _, c := range cases {
		if got := MustParse(c.q).MatchesTree(doc); got != c.want {
			t.Errorf("MatchesTree(%q) = %v want %v", c.q, got, c.want)
		}
	}
}

func TestMatchesTreeInjectiveSiblings(t *testing.T) {
	// Figure 4: query with one L over S and B must not match data with
	// separate L(S) and L(B).
	d := xmltree.Figure4D()
	if MustParse("/P/L[S][B]").MatchesTree(d) {
		t.Fatal("false alarm in ground truth matcher")
	}
	if !MustParse("/P[L/S][L/B]").MatchesTree(d) {
		t.Fatal("two separate L branches should match")
	}
	// Two identical pattern branches need two witnesses.
	one := xmltree.NewElem("P", xmltree.NewElem("L"))
	if MustParse("/P[L][L]").MatchesTree(one) {
		t.Fatal("two identical branches must map to distinct children")
	}
}

func TestEvalCorpus(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 10, Root: xmltree.Figure1()},
		{ID: 20, Root: xmltree.Figure4D()},
		{ID: 30, Root: xmltree.Figure2a()},
	}
	got := Eval(docs, MustParse("/P/D"))
	if len(got) != 2 || got[0] != 10 || got[1] != 30 {
		t.Fatalf("Eval = %v", got)
	}
	if got := Eval(docs, MustParse("//S")); len(got) != 1 || got[0] != 20 {
		t.Fatalf("Eval //S = %v", got)
	}
	if got := Eval(docs, MustParse("/zzz")); got != nil {
		t.Fatalf("Eval /zzz = %v", got)
	}
}

// corpusEncoder interns the paths of a corpus so instantiation has a table
// to resolve against.
func corpusEncoder(docs ...*xmltree.Node) (*pathenc.Encoder, *pathenc.ChildIndex) {
	enc := pathenc.NewEncoder(0)
	for _, d := range docs {
		sequence.EncodeNodes(d, enc)
	}
	return enc, enc.BuildChildIndex()
}

func TestInstantiateConcreteQuery(t *testing.T) {
	enc, ci := corpusEncoder(xmltree.Figure1())
	p := MustParse("/P/D/L[text='boston']")
	insts := p.Instantiate(enc, ci, 0)
	if len(insts) != 1 {
		t.Fatalf("instances = %d want 1", len(insts))
	}
	in := insts[0]
	if len(in.Paths) != 4 {
		t.Fatalf("paths = %d want 4", len(in.Paths))
	}
	if got := enc.PathString(in.Paths[3]); got != "P.D.L."+enc.SymbolName(enc.ValueSymbol("boston")) {
		t.Fatalf("leaf path = %q", got)
	}
	if in.Parent[0] != -1 || in.Parent[1] != 0 || in.Parent[2] != 1 || in.Parent[3] != 2 {
		t.Fatalf("parents = %v", in.Parent)
	}
}

func TestInstantiateWildcard(t *testing.T) {
	enc, ci := corpusEncoder(xmltree.Figure1())
	// /P/*/M: * can be R or D (both have M children); U also has M but is
	// at depth 3.
	insts := MustParse("/P/*/M").Instantiate(enc, ci, 0)
	if len(insts) != 2 {
		t.Fatalf("instances = %d want 2 (R and D)", len(insts))
	}
	seen := map[string]bool{}
	for _, in := range insts {
		seen[enc.PathString(in.Paths[2])] = true
	}
	if !seen["P.R.M"] || !seen["P.D.M"] {
		t.Fatalf("instantiated paths = %v", seen)
	}
}

func TestInstantiateDescendant(t *testing.T) {
	enc, ci := corpusEncoder(xmltree.Figure1())
	// //M exists at P.R.M, P.D.M, P.D.U.M.
	insts := MustParse("//M").Instantiate(enc, ci, 0)
	if len(insts) != 3 {
		t.Fatalf("instances = %d want 3", len(insts))
	}
	// /P//N: P.D.U.N only (one path, two value extensions irrelevant).
	insts2 := MustParse("/P//N").Instantiate(enc, ci, 0)
	if len(insts2) != 1 {
		t.Fatalf("instances = %d want 1", len(insts2))
	}
	if got := enc.PathString(insts2[0].Paths[1]); got != "P.D.U.N" {
		t.Fatalf("N path = %q", got)
	}
	// Intermediate elements are NOT materialized in the instance.
	if len(insts2[0].Paths) != 2 {
		t.Fatalf("instance should have 2 nodes, got %d", len(insts2[0].Paths))
	}
}

func TestInstantiatePrunesImpossible(t *testing.T) {
	enc, ci := corpusEncoder(xmltree.Figure1())
	if insts := MustParse("/P/Z").Instantiate(enc, ci, 0); len(insts) != 0 {
		t.Fatalf("nonexistent path instantiated: %v", insts)
	}
	if insts := MustParse("/P/D/L[text='zurich']").Instantiate(enc, ci, 0); len(insts) != 0 {
		t.Fatalf("nonexistent value instantiated: %v", insts)
	}
	// A branch that cannot match prunes the whole instance even when the
	// other branch could.
	if insts := MustParse("/P[R][Z]").Instantiate(enc, ci, 0); len(insts) != 0 {
		t.Fatalf("partially impossible pattern instantiated: %v", insts)
	}
}

func TestInstantiateBranching(t *testing.T) {
	enc, ci := corpusEncoder(xmltree.Figure1())
	insts := MustParse("/P[R/L='newyork'][D/L='boston']").Instantiate(enc, ci, 0)
	if len(insts) != 1 {
		t.Fatalf("instances = %d want 1", len(insts))
	}
	if got := len(insts[0].Paths); got != 7 {
		t.Fatalf("instance nodes = %d want 7", got)
	}
}

func TestInstantiateLimit(t *testing.T) {
	// A corpus with many sibling names makes /a/* explode; the cap holds.
	root := xmltree.NewElem("a")
	for i := 0; i < 50; i++ {
		root.Children = append(root.Children, xmltree.NewElem(string(rune('A'+i%26))+string(rune('a'+i/26))))
	}
	enc, ci := corpusEncoder(root)
	insts := MustParse("/a/*").Instantiate(enc, ci, 10)
	if len(insts) > 10 {
		t.Fatalf("limit violated: %d", len(insts))
	}
}

func TestInstantiateValueKindMismatch(t *testing.T) {
	enc, ci := corpusEncoder(xmltree.Figure1())
	// //X where X only exists as a VALUE bucket name must not match element
	// tests; conversely value tests must not match element paths.
	insts := MustParse("//tom").Instantiate(enc, ci, 0)
	if len(insts) != 0 {
		t.Fatalf("value bucket matched an element test: %v", insts)
	}
}

// Property: for random documents and random extracted sub-patterns (all
// child axes, concrete), MatchesTree agrees with xmltree embedding, and
// instantiation against the document's own path table yields at least one
// instance.
func TestQuickGroundTruthAgreesWithEmbeds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		doc := randomTree(r, 4, 3)
		pat := randomSubPattern(r, doc)
		p := FromTree(pat)
		if !p.MatchesTree(doc) {
			t.Logf("extracted pattern did not match: doc=%v pat=%v", doc, pat)
			return false
		}
		if xmltree.EmbedsAtRoot(doc, pat) != p.MatchesTree(doc) {
			return false
		}
		enc, ci := corpusEncoder(doc)
		insts := p.Instantiate(enc, ci, 0)
		return len(insts) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(rng *rand.Rand, depth, fan int) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	n := xmltree.NewElem(labels[rng.Intn(len(labels))])
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1, fan))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}
