package query

import (
	"fmt"
	"strings"
)

// Parse parses an XPath-subset query string into a Pattern. Supported
// syntax, covering every query in the paper's evaluation (Tables 4 and 8):
//
//	/a/b          child steps
//	//a           descendant steps (leading // anchors anywhere)
//	/a/*/c        single-step wildcard
//	/a[b/c='v']   branching predicate with a value test
//	/a[b]         existential branching predicate
//	/a[text='v']  value test on the current element (also text()='v', .='v')
//	/a[@k='v']    attribute test (attributes are child elements in the model)
//
// A step may carry any number of predicates. Values are quoted with ' or ".
func Parse(s string) (*Pattern, error) {
	p := &parser{s: strings.TrimSpace(s)}
	root, err := p.parsePath()
	if err != nil {
		return nil, fmt.Errorf("query: parse %q: %w", s, err)
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("query: parse %q: trailing input at offset %d", s, p.pos)
	}
	return &Pattern{Root: root, Text: s}, nil
}

// MustParse is Parse that panics on error; for fixtures and tests whose
// query strings are compile-time literals. The panic marks a broken
// fixture — runtime query parsing must use Parse, which returns the error;
// the public xseq API also runs behind a panic-recovery guard.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.s) {
		return p.s[p.pos]
	}
	return 0
}

func (p *parser) eat(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

// parseAxis consumes '/' or '//' and returns the axis. At the very start of
// a relative path (inside predicates) no slash is present: child axis.
func (p *parser) parseAxis(first bool) (Axis, error) {
	p.skipSpace()
	if !p.eat('/') {
		if first {
			return AxisChild, nil
		}
		return 0, fmt.Errorf("expected '/' at offset %d", p.pos)
	}
	if p.eat('/') {
		return AxisDescendant, nil
	}
	return AxisChild, nil
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func (p *parser) parseName() (string, error) {
	p.skipSpace()
	start := p.pos
	if p.eat('@') {
		start = p.pos // attributes are ordinary child elements in the model
	}
	for p.pos < len(p.s) && isNameByte(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected a name at offset %d", p.pos)
	}
	return p.s[start:p.pos], nil
}

func (p *parser) parseLiteral() (string, error) {
	p.skipSpace()
	quote := p.peek()
	if quote != '\'' && quote != '"' {
		return "", fmt.Errorf("expected quoted value at offset %d", p.pos)
	}
	p.pos++
	start := p.pos
	// Tolerate an unterminated literal that runs into the predicate's
	// closing bracket, as in the paper's own typo "/book/[key='Maier]".
	for p.pos < len(p.s) && p.s[p.pos] != quote && p.s[p.pos] != ']' {
		p.pos++
	}
	if p.pos >= len(p.s) {
		return "", fmt.Errorf("unterminated literal at offset %d", start)
	}
	v := p.s[start:p.pos]
	if p.s[p.pos] == quote {
		p.pos++
	}
	return v, nil
}

// parsePath parses a chain of steps; abs means the path begins at the
// query's root (a leading slash is required and '//' anchors anywhere).
// Returns the FIRST step's node; each following step nests as a child.
func (p *parser) parsePath() (*PNode, error) {
	// The leading slash is optional: a bare "rec/title" parses as a
	// child-axis rooted path, convenient for record corpora.
	axis, err := p.parseAxis(true)
	if err != nil {
		return nil, err
	}
	// Tolerate the stray slash of "/book/[key=...]": a '/' immediately
	// followed by '[' applies the predicates to the previous step, which a
	// recursive parser can't express — instead we treat "/[" as "[".
	first, err := p.parseStep(axis)
	if err != nil {
		return nil, err
	}
	cur := first
	for {
		p.skipSpace()
		if p.peek() != '/' {
			break
		}
		// Lookahead for the "/[" tolerance.
		if p.pos+1 < len(p.s) && p.s[p.pos+1] == '[' {
			p.pos++ // skip the stray slash; predicates attach to cur
			if err := p.parsePredicates(cur); err != nil {
				return nil, err
			}
			continue
		}
		axis, err := p.parseAxis(false)
		if err != nil {
			return nil, err
		}
		next, err := p.parseStep(axis)
		if err != nil {
			return nil, err
		}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	return first, nil
}

// parseStep parses a name test plus its predicates.
func (p *parser) parseStep(axis Axis) (*PNode, error) {
	p.skipSpace()
	n := &PNode{Axis: axis}
	if p.eat('*') {
		n.Wildcard = true
	} else {
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		n.Name = name
	}
	if err := p.parsePredicates(n); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *parser) parsePredicates(n *PNode) error {
	for {
		p.skipSpace()
		if !p.eat('[') {
			return nil
		}
		if err := p.parsePredicateBody(n); err != nil {
			return err
		}
		p.skipSpace()
		if !p.eat(']') {
			return fmt.Errorf("expected ']' at offset %d", p.pos)
		}
	}
}

// parsePredicateBody parses one predicate and attaches its condition as a
// child (or value leaf) of n.
func (p *parser) parsePredicateBody(n *PNode) error {
	p.skipSpace()
	// Value test on the current element: text='v', text()='v', .='v'.
	if p.startsValueTest() {
		p.consumeValueTestHead()
		p.skipSpace()
		if !p.eat('=') {
			return fmt.Errorf("expected '=' in value test at offset %d", p.pos)
		}
		v, err := p.parseLiteral()
		if err != nil {
			return err
		}
		n.Children = append(n.Children, valueLeaf(v))
		return nil
	}
	// Relative path predicate, optionally ending in ='v'.
	first, err := p.parseRelPath()
	if err != nil {
		return err
	}
	p.skipSpace()
	if p.eat('=') {
		v, err := p.parseLiteral()
		if err != nil {
			return err
		}
		last := first
		for len(last.Children) > 0 {
			last = last.Children[len(last.Children)-1]
		}
		last.Children = append(last.Children, valueLeaf(v))
	}
	n.Children = append(n.Children, first)
	return nil
}

// valueLeaf builds a value test; a trailing '*' in the literal marks a
// prefix test ([text='bos*'] matches values starting with "bos").
func valueLeaf(v string) *PNode {
	leaf := &PNode{Axis: AxisChild, IsValue: true, Value: v}
	if strings.HasSuffix(v, "*") && len(v) > 1 {
		leaf.Value = strings.TrimSuffix(v, "*")
		leaf.Prefix = true
	}
	return leaf
}

func (p *parser) startsValueTest() bool {
	rest := p.s[p.pos:]
	if strings.HasPrefix(rest, "text()") {
		return true
	}
	if strings.HasPrefix(rest, "text") {
		after := rest[len("text"):]
		trimmed := strings.TrimLeft(after, " \t")
		return strings.HasPrefix(trimmed, "=")
	}
	if strings.HasPrefix(rest, ".") {
		after := strings.TrimLeft(rest[1:], " \t")
		return strings.HasPrefix(after, "=")
	}
	return false
}

func (p *parser) consumeValueTestHead() {
	if strings.HasPrefix(p.s[p.pos:], "text()") {
		p.pos += len("text()")
		return
	}
	if strings.HasPrefix(p.s[p.pos:], "text") {
		p.pos += len("text")
		return
	}
	if strings.HasPrefix(p.s[p.pos:], ".") {
		p.pos++
	}
}

// parseRelPath parses a relative path inside a predicate: step ('/'|'//'
// step)* with the first step on the child axis (or descendant with a
// leading .// — not used by the paper, plain // accepted too).
func (p *parser) parseRelPath() (*PNode, error) {
	axis := AxisChild
	p.skipSpace()
	if p.eat('/') {
		if p.eat('/') {
			axis = AxisDescendant
		}
	}
	first, err := p.parseStep(axis)
	if err != nil {
		return nil, err
	}
	cur := first
	for {
		p.skipSpace()
		if p.peek() != '/' {
			break
		}
		a, err := p.parseAxis(false)
		if err != nil {
			return nil, err
		}
		next, err := p.parseStep(a)
		if err != nil {
			return nil, err
		}
		cur.Children = append(cur.Children, next)
		cur = next
	}
	return first, nil
}
