package query

import (
	"strconv"

	"xseq/internal/pathenc"
)

// Scratch carries the reusable working set of Instantiate: the anchor
// candidate buffer, the instance dedup set, the key-rendering buffer, and
// the backing array of the returned instance slice. A query executor keeps
// one Scratch per in-flight query (pooled between queries) so the
// steady-state instantiation path stops reallocating these on every call.
// The zero value is ready to use.
//
// Ownership: the []Instance returned by InstantiateScratch is backed by the
// Scratch and is overwritten by the next InstantiateScratch call with the
// same Scratch — callers must finish with it (or copy it) before reuse.
type Scratch struct {
	anchors []pathenc.PathID
	seen    map[string]bool
	keyBuf  []byte
	insts   []Instance
}

// appendKey renders the instance's dedup key into b — the allocation-free
// counterpart of Key, used with the map-index-by-string(b) lookup form that
// the compiler keeps off the heap.
func (in Instance) appendKey(b []byte) []byte {
	for i := range in.Paths {
		b = strconv.AppendInt(b, int64(in.Paths[i]), 10)
		b = append(b, ':')
		b = strconv.AppendInt(b, int64(in.Parent[i]), 10)
		b = append(b, ',')
	}
	return b
}

// Key returns a dedup key.
func (in Instance) Key() string {
	return string(in.appendKey(nil))
}

// InstantiateScratch is Instantiate reusing scr's buffers. The returned
// slice is valid until the next call with the same Scratch; see Scratch.
func (p *Pattern) InstantiateScratch(enc *pathenc.Encoder, ci *pathenc.ChildIndex, limit int, scr *Scratch) []Instance {
	if limit <= 0 {
		limit = DefaultInstantiationLimit
	}
	if p == nil || p.Root == nil {
		return nil
	}
	// Anchor candidates for the root.
	anchors := scr.anchors[:0]
	switch p.Root.Axis {
	case AxisChild:
		for _, c := range ci.Children(pathenc.EmptyPath) {
			if stepMatchesPath(enc, p.Root, c) {
				anchors = append(anchors, c)
			}
		}
	case AxisDescendant:
		for _, c := range ci.Descendants(pathenc.EmptyPath) {
			if stepMatchesPath(enc, p.Root, c) {
				anchors = append(anchors, c)
			}
		}
	}
	scr.anchors = anchors
	out := scr.insts[:0]
	if scr.seen == nil {
		scr.seen = make(map[string]bool)
	}
	seen := scr.seen
	clear(seen)
	for _, a := range anchors {
		insts := instantiateChildren(enc, ci, p.Root, a, limit-len(out))
		for _, chTrees := range insts {
			inst := Instance{Paths: []pathenc.PathID{a}, Parent: []int{-1}}
			appendInstance(&inst, chTrees, 0)
			scr.keyBuf = inst.appendKey(scr.keyBuf[:0])
			if !seen[string(scr.keyBuf)] {
				seen[string(scr.keyBuf)] = true
				out = append(out, inst)
			}
			if len(out) >= limit {
				scr.insts = out
				return out
			}
		}
	}
	scr.insts = out
	return out
}
