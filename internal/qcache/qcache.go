// Package qcache memoizes query results above any engine. The motivation is
// the complexity asymmetry of tree-path subsequence matching: answering a
// pattern costs link probes and cover checks proportional to the corpus,
// while serving a memoized answer is one map lookup — and production query
// streams repeat hot patterns heavily.
//
// Cache is an engine.Engine wrapping another engine, so it composes
// identically over monolithic, sharded, and dynamic layouts, and callers
// (the xseq facade, the server) dispatch through it without knowing it is
// there. Results are keyed by (canonical pattern string, snapshot
// generation): query.Pattern.String() is a stable canonical form
// (parse→String→parse is a fixpoint, fuzz-verified), and the generation
// comes from the inner engine's Generation method. Frozen engines report a
// constant generation, so entries live until evicted; a Dynamic bumps its
// generation before any insert or compaction becomes visible, which
// invalidates every cached entry at the next lookup. Generation beats any
// time-based scheme: it is exact (no staleness window, no clock), and the
// read-generation-then-query ordering below makes the cache linearizable —
// an entry computed concurrently with a mutation is stored under the
// pre-mutation generation and never served after it.
package qcache

import (
	"container/list"
	"context"
	"io"
	"sync"
	"sync/atomic"

	"xseq/internal/engine"
	"xseq/internal/query"
	"xseq/internal/telemetry"
	"xseq/internal/xmltree"
)

// DefaultEntries is the cache capacity when New is given entries <= 0.
const DefaultEntries = 1024

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Capacity is the configured entry bound.
	Capacity int
	// Entries is the current number of cached results.
	Entries int
	// Hits counts lookups served from the cache.
	Hits int64
	// Misses counts lookups that fell through to the inner engine
	// (including uncacheable queries).
	Misses int64
	// Evictions counts entries dropped to make room (capacity) or dropped
	// as stale (superseded generation).
	Evictions int64
}

type entry struct {
	key string
	gen uint64
	ids []int32
}

// Cache is a bounded LRU of query → document-id results over an inner
// engine. Safe for concurrent use. The zero value is not usable; call New.
type Cache struct {
	inner    engine.Engine
	capacity int

	mu      sync.Mutex
	lru     *list.List               // front = most recent; values are *entry
	entries map[string]*list.Element // key → element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New wraps inner with a result cache holding at most entries results
// (entries <= 0: DefaultEntries).
func New(inner engine.Engine, entries int) *Cache {
	if entries <= 0 {
		entries = DefaultEntries
	}
	return &Cache{
		inner:    inner,
		capacity: entries,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Inner returns the wrapped engine.
func (c *Cache) Inner() engine.Engine { return c.inner }

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{
		Capacity:  c.capacity,
		Entries:   n,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}

// cacheable reports whether a query execution's result is safe to memoize:
// plain and verified lookups only. Explain queries (Stats) must do the
// work to measure it, limited queries (MaxResults) depend on the cap, and
// naive mode exists to demonstrate false alarms — none of these share
// results with the default execution.
func cacheable(qo engine.QueryOptions) bool {
	return qo.Stats == nil && qo.MaxResults == 0 && !qo.Naive
}

// cacheKey renders the query's identity: a variant prefix (plain vs
// verified results differ under value-hash collisions) plus the canonical
// pattern string. The NUL separator cannot appear in a pattern rendering.
func cacheKey(pat *query.Pattern, qo engine.QueryOptions) string {
	if qo.Verify {
		return "v\x00" + pat.String()
	}
	return "q\x00" + pat.String()
}

// QueryWithContext serves memoized results when possible, delegating to the
// inner engine otherwise.
//
// The staleness-safety argument: the generation is read BEFORE the inner
// query runs, and mutable engines bump their generation before a mutation's
// results become visible. So if a mutation lands while the inner query is
// in flight, the entry is stored under the already-superseded pre-mutation
// generation and the next lookup discards it; an entry can only ever be
// served while the generation it was stored under is still current.
func (c *Cache) QueryWithContext(ctx context.Context, pat *query.Pattern, qo engine.QueryOptions) ([]int32, error) {
	if pat == nil || !cacheable(qo) {
		c.misses.Add(1)
		return c.inner.QueryWithContext(ctx, pat, qo)
	}
	key := cacheKey(pat, qo)
	gen := c.inner.Generation()
	tr := telemetry.TraceFrom(ctx)
	if ids, ok := c.lookup(key, gen); ok {
		c.hits.Add(1)
		if tr != nil {
			tr.SetCache(true)
		}
		return ids, nil
	}
	c.misses.Add(1)
	if tr != nil {
		tr.SetCache(false)
	}
	ids, err := c.inner.QueryWithContext(ctx, pat, qo)
	if err != nil {
		return nil, err
	}
	c.store(key, gen, ids)
	return ids, nil
}

// lookup returns a copy of the entry under key if it exists and its
// generation is current; a stale entry is evicted on sight.
func (c *Cache) lookup(key string, gen uint64) ([]int32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.gen != gen {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.evictions.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	// Copy out so callers can't mutate the cached slice (and vice versa).
	return append([]int32(nil), e.ids...), true
}

// store inserts (or replaces) the entry under key, evicting the
// least-recently-used entry when over capacity. The entry keeps a private
// copy: the inner engine's result is caller-owned (per the Engine
// ownership contract it is never pooled memory, so copying here is about
// isolating the cache from caller mutation, not about escaping pools) and
// QueryWithContext returns the original slice to the caller, who is free
// to mutate it without disturbing the cached entry.
func (c *Cache) store(key string, gen uint64, ids []int32) {
	cp := append([]int32(nil), ids...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = &entry{key: key, gen: gen, ids: cp}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, gen: gen, ids: cp})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// The remaining Engine methods delegate to the inner engine unchanged.

func (c *Cache) NumDocuments() int              { return c.inner.NumDocuments() }
func (c *Cache) NumNodes() int                  { return c.inner.NumNodes() }
func (c *Cache) NumLinks() int                  { return c.inner.NumLinks() }
func (c *Cache) EstimatedDiskBytes() int64      { return c.inner.EstimatedDiskBytes() }
func (c *Cache) Shards() []engine.ShardStat     { return c.inner.Shards() }
func (c *Cache) Documents() []*xmltree.Document { return c.inner.Documents() }
func (c *Cache) Save(w io.Writer) error         { return c.inner.Save(w) }
func (c *Cache) SaveFile(path string) error     { return c.inner.SaveFile(path) }
func (c *Cache) Generation() uint64             { return c.inner.Generation() }

var _ engine.Engine = (*Cache)(nil)
