package qcache_test

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"xseq/internal/engine"
	"xseq/internal/qcache"
	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// fakeEngine is a minimal engine.Engine whose answers and generation the
// test controls, with a call counter to observe what reaches the inner
// layer through the cache.
type fakeEngine struct {
	gen    atomic.Uint64
	calls  atomic.Int64
	answer func(pat *query.Pattern) []int32
}

func (f *fakeEngine) QueryWithContext(ctx context.Context, pat *query.Pattern, qo engine.QueryOptions) ([]int32, error) {
	f.calls.Add(1)
	if f.answer == nil {
		return nil, nil
	}
	return f.answer(pat), nil
}
func (f *fakeEngine) NumDocuments() int              { return 0 }
func (f *fakeEngine) NumNodes() int                  { return 0 }
func (f *fakeEngine) NumLinks() int                  { return 0 }
func (f *fakeEngine) EstimatedDiskBytes() int64      { return 0 }
func (f *fakeEngine) Shards() []engine.ShardStat     { return nil }
func (f *fakeEngine) Documents() []*xmltree.Document { return nil }
func (f *fakeEngine) Save(io.Writer) error           { return engine.ErrUnsupported }
func (f *fakeEngine) SaveFile(string) error          { return engine.ErrUnsupported }
func (f *fakeEngine) Generation() uint64             { return f.gen.Load() }

var _ engine.Engine = (*fakeEngine)(nil)

func fixedAnswer(ids ...int32) func(*query.Pattern) []int32 {
	return func(*query.Pattern) []int32 { return ids }
}

func mustQuery(t *testing.T, c *qcache.Cache, pat *query.Pattern, qo engine.QueryOptions) []int32 {
	t.Helper()
	ids, err := c.QueryWithContext(context.Background(), pat, qo)
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestCacheHitMiss(t *testing.T) {
	inner := &fakeEngine{answer: fixedAnswer(1, 2, 3)}
	c := qcache.New(inner, 8)
	pat := query.MustParse("/a/b")

	first := mustQuery(t, c, pat, engine.QueryOptions{})
	second := mustQuery(t, c, pat, engine.QueryOptions{})
	if inner.calls.Load() != 1 {
		t.Fatalf("inner called %d times, want 1 (second query should hit)", inner.calls.Load())
	}
	for _, got := range [][]int32{first, second} {
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("answer corrupted: %v", got)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// A reparse of the same pattern text is the same cache key.
	if mustQuery(t, c, query.MustParse("/a/b"), engine.QueryOptions{}); inner.calls.Load() != 1 {
		t.Fatalf("reparsed pattern missed the cache: %d inner calls", inner.calls.Load())
	}
}

func TestCacheGenerationInvalidation(t *testing.T) {
	inner := &fakeEngine{answer: fixedAnswer(7)}
	c := qcache.New(inner, 8)
	pat := query.MustParse("//x")

	mustQuery(t, c, pat, engine.QueryOptions{})
	inner.gen.Add(1) // a mutation became visible
	mustQuery(t, c, pat, engine.QueryOptions{})
	if inner.calls.Load() != 2 {
		t.Fatalf("stale entry served: inner called %d times, want 2", inner.calls.Load())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("stale eviction not counted: %+v", st)
	}
	// The re-stored entry is current again.
	mustQuery(t, c, pat, engine.QueryOptions{})
	if inner.calls.Load() != 2 {
		t.Fatalf("fresh entry not served: inner called %d times", inner.calls.Load())
	}
}

// TestCacheStaleStoreNeverServed is the linearizability corner: a mutation
// lands while the inner query is in flight. The generation was read before
// the query, so the entry is stored under the superseded generation and the
// next lookup must discard it.
func TestCacheStaleStoreNeverServed(t *testing.T) {
	inner := &fakeEngine{}
	inner.answer = func(*query.Pattern) []int32 {
		inner.gen.Add(1) // mutation races the in-flight query
		return []int32{1}
	}
	c := qcache.New(inner, 8)
	pat := query.MustParse("/a")
	mustQuery(t, c, pat, engine.QueryOptions{})
	mustQuery(t, c, pat, engine.QueryOptions{})
	if inner.calls.Load() != 2 {
		t.Fatalf("entry stored across a mutation was served: %d inner calls", inner.calls.Load())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	inner := &fakeEngine{answer: fixedAnswer(1)}
	c := qcache.New(inner, 2)
	a, b, d := query.MustParse("/a"), query.MustParse("/b"), query.MustParse("/d")

	mustQuery(t, c, a, engine.QueryOptions{})
	mustQuery(t, c, b, engine.QueryOptions{})
	mustQuery(t, c, a, engine.QueryOptions{}) // refresh a: b is now LRU
	mustQuery(t, c, d, engine.QueryOptions{}) // evicts b
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v, want 2 entries / 1 eviction", st)
	}
	calls := inner.calls.Load()
	mustQuery(t, c, a, engine.QueryOptions{}) // survived (recently used)
	if inner.calls.Load() != calls {
		t.Fatal("recently-used entry was evicted")
	}
	mustQuery(t, c, b, engine.QueryOptions{}) // was evicted: recomputed
	if inner.calls.Load() != calls+1 {
		t.Fatal("LRU entry was not the one evicted")
	}
}

func TestCacheUncacheableBypass(t *testing.T) {
	inner := &fakeEngine{answer: fixedAnswer(1)}
	c := qcache.New(inner, 8)
	pat := query.MustParse("/a")
	opts := []engine.QueryOptions{
		{Stats: &engine.QueryStats{}},
		{MaxResults: 5},
		{Naive: true},
	}
	for _, qo := range opts {
		mustQuery(t, c, pat, qo)
		mustQuery(t, c, pat, qo)
	}
	if inner.calls.Load() != int64(2*len(opts)) {
		t.Fatalf("uncacheable query memoized: %d inner calls, want %d", inner.calls.Load(), 2*len(opts))
	}
	st := c.Stats()
	if st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("uncacheable queries polluted the cache: %+v", st)
	}
}

func TestCacheVerifyKeyedSeparately(t *testing.T) {
	inner := &fakeEngine{answer: fixedAnswer(1)}
	c := qcache.New(inner, 8)
	pat := query.MustParse("/a[b='x']")
	mustQuery(t, c, pat, engine.QueryOptions{})
	mustQuery(t, c, pat, engine.QueryOptions{Verify: true})
	if inner.calls.Load() != 2 {
		t.Fatalf("plain and verified shared an entry: %d inner calls", inner.calls.Load())
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
	mustQuery(t, c, pat, engine.QueryOptions{Verify: true})
	if inner.calls.Load() != 2 {
		t.Fatal("verified entry did not hit")
	}
}

func TestCacheCopyIsolation(t *testing.T) {
	backing := []int32{1, 2, 3}
	inner := &fakeEngine{answer: func(*query.Pattern) []int32 { return backing }}
	c := qcache.New(inner, 8)
	pat := query.MustParse("/a")

	got := mustQuery(t, c, pat, engine.QueryOptions{})
	got[0] = 99     // caller scribbles on its copy
	backing[1] = 88 // inner engine's slice changes after the store
	again := mustQuery(t, c, pat, engine.QueryOptions{})
	if again[0] != 1 || again[1] != 2 || again[2] != 3 {
		t.Fatalf("cached entry not isolated: %v", again)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := qcache.New(&fakeEngine{}, 0)
	if got := c.Stats().Capacity; got != qcache.DefaultEntries {
		t.Fatalf("default capacity = %d, want %d", got, qcache.DefaultEntries)
	}
}

func TestCacheNilPatternBypass(t *testing.T) {
	inner := &fakeEngine{}
	c := qcache.New(inner, 8)
	if _, err := c.QueryWithContext(context.Background(), nil, engine.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("nil pattern cached: %+v", st)
	}
}

func TestCacheConcurrentMixedLoad(t *testing.T) {
	inner := &fakeEngine{answer: fixedAnswer(1, 2)}
	c := qcache.New(inner, 4)
	pats := make([]*query.Pattern, 8)
	for i := range pats {
		pats[i] = query.MustParse(fmt.Sprintf("/a/b%d", i))
	}
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for k := 0; k < 200; k++ {
				if k%37 == 0 {
					inner.gen.Add(1)
				}
				ids, err := c.QueryWithContext(context.Background(), pats[(g+k)%len(pats)], engine.QueryOptions{})
				if err != nil || len(ids) != 2 {
					t.Errorf("goroutine %d: ids=%v err=%v", g, ids, err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if st := c.Stats(); st.Entries > 4 {
		t.Fatalf("capacity exceeded: %+v", st)
	}
}
