// Package datagen generates the three corpora of the paper's evaluation
// (Section 6.1):
//
//   - synthetic tree structures from a random DTD parameterized by
//     L (max height), F (max fanout), A (% value child nodes),
//     I (% identical sibling nodes) and P (minimum occurrence probability),
//     named like the paper's "L3F5A25I0P40";
//   - an XMark-like auction corpus of item / person / open_auction /
//     closed_auction substructure records, with and without identical
//     siblings (Tables 5-7);
//   - a DBLP-like bibliography corpus of publication records (Table 8).
//
// Real DBLP and xmlgen output are unavailable offline; the generators
// reproduce the record shapes, depths, sibling structure, vocabulary skew
// and average sequence lengths the paper reports, which are the properties
// the experiments depend on (see DESIGN.md's substitution table).
package datagen

import (
	"fmt"
	"math/rand"
	"regexp"
	"strconv"

	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

// SynthParams are the synthetic-DTD parameters of Section 6.1.
type SynthParams struct {
	L int // maximum tree height
	F int // maximum fanout of a node
	A int // percentage of value child nodes
	I int // percentage of identical sibling nodes
	P int // minimum occurrence probability (percent)
	// Seed makes schema generation deterministic (0 is a valid seed).
	Seed int64
}

// Name renders the paper's dataset naming, e.g. "L3F5A25I0P40".
func (p SynthParams) Name() string {
	return fmt.Sprintf("L%dF%dA%dI%dP%d", p.L, p.F, p.A, p.I, p.P)
}

var synthNameRE = regexp.MustCompile(`^L(\d+)F(\d+)A(\d+)I(\d+)P(\d+)$`)

// ParseSynthName parses a dataset name like "L3F5A25I0P40".
func ParseSynthName(name string) (SynthParams, error) {
	m := synthNameRE.FindStringSubmatch(name)
	if m == nil {
		return SynthParams{}, fmt.Errorf("datagen: invalid dataset name %q", name)
	}
	atoi := func(s string) int { v, _ := strconv.Atoi(s); return v }
	p := SynthParams{L: atoi(m[1]), F: atoi(m[2]), A: atoi(m[3]), I: atoi(m[4]), P: atoi(m[5])}
	return p, p.Validate()
}

// Validate checks parameter sanity.
func (p SynthParams) Validate() error {
	switch {
	case p.L < 1:
		return fmt.Errorf("datagen: L must be >= 1, got %d", p.L)
	case p.F < 1:
		return fmt.Errorf("datagen: F must be >= 1, got %d", p.F)
	case p.A < 0 || p.A > 100:
		return fmt.Errorf("datagen: A must be in [0,100], got %d", p.A)
	case p.I < 0 || p.I > 100:
		return fmt.Errorf("datagen: I must be in [0,100], got %d", p.I)
	case p.P < 0 || p.P > 100:
		return fmt.Errorf("datagen: P must be in [0,100], got %d", p.P)
	}
	return nil
}

// SynthSchema generates the random DTD: a schema tree of height L where
// every element node has up to F children, a child is a value slot with
// probability A%, an element child is repeat-capable (identical siblings)
// with probability I%, and occurrence probabilities are uniform in
// [P%, 1.0] (Section 6.1's three-step generation).
func SynthSchema(p SynthParams) (*schema.Schema, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5eed))
	counter := 0
	nextName := func() string {
		counter++
		return fmt.Sprintf("e%d", counter)
	}
	// Each value slot draws from its own vocabulary (the slot Name
	// prefixes the value text), so two slots under one parent can never
	// produce identical sibling values — identical siblings are controlled
	// exclusively by I.
	vcounter := 0
	valueSlot := func(p float64) *schema.Node {
		vcounter++
		return &schema.Node{
			Name: fmt.Sprintf("v%d", vcounter), IsValue: true,
			PCond: p, ValueRange: 100, ZipfS: 1.4,
		}
	}
	prob := func() float64 {
		lo := float64(p.P) / 100
		return lo + rng.Float64()*(1-lo)
	}
	var build func(level int) *schema.Node
	build = func(level int) *schema.Node {
		n := &schema.Node{Name: nextName(), PCond: prob()}
		if level >= p.L {
			// Leaf elements always carry values so documents bottom out in
			// data rather than empty tags; higher value density A means
			// more slots per leaf. Values are Zipf-skewed, as real
			// attribute values are.
			for i := 0; i < 1+p.A/40; i++ {
				n.Children = append(n.Children, valueSlot(1))
			}
			return n
		}
		// Fanout concentrates near F (the paper reports average sequence
		// lengths of ~25 for L3F5 and ~32 for L5F3, which requires schemas
		// close to their fanout bound).
		fan := p.F
		if p.F > 3 && rng.Intn(3) == 0 {
			fan = p.F - 1
		}
		for i := 0; i < fan; i++ {
			c := build(level + 1)
			if rng.Intn(100) < p.I {
				c.MinRepeat = 2
				c.MaxRepeat = 3
			}
			n.Children = append(n.Children, c)
		}
		// A% of child nodes are value nodes: value slots come in addition
		// to the element fanout, keeping deep low-P schemas (the paper's
		// L5F3A40I0P5, average sequence length ≈ 32) from collapsing.
		nvals := fan
		if p.A < 100 {
			nvals = fan * p.A / (100 - p.A)
		}
		for i := 0; i < nvals; i++ {
			n.Children = append(n.Children, valueSlot(prob()))
		}
		return n
	}
	root := build(1)
	root.PCond = 1
	return schema.New(root)
}

// GenerateDocs instantiates n documents from a schema with ids
// startID..startID+n-1.
func GenerateDocs(s *schema.Schema, n int, seed int64, startID int32) []*xmltree.Document {
	rng := rand.New(rand.NewSource(seed ^ 0xd0c5))
	out := make([]*xmltree.Document, n)
	for i := range out {
		out[i] = &xmltree.Document{ID: startID + int32(i), Root: s.Generate(rng)}
	}
	return out
}

// Synth generates n documents of the named synthetic dataset along with its
// schema.
func Synth(p SynthParams, n int) (*schema.Schema, []*xmltree.Document, error) {
	s, err := SynthSchema(p)
	if err != nil {
		return nil, nil, err
	}
	return s, GenerateDocs(s, n, p.Seed, 0), nil
}

// AvgSequenceLength reports the mean node count per document (each node is
// one sequence element).
func AvgSequenceLength(docs []*xmltree.Document) float64 {
	if len(docs) == 0 {
		return 0
	}
	total := 0
	for _, d := range docs {
		total += d.Root.Size()
	}
	return float64(total) / float64(len(docs))
}
