package datagen

import (
	"fmt"

	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

// XMark-like corpus. The paper decomposes an XMark document into its
// homogeneous substructures — item, person, open_auction, closed_auction —
// and indexes each instance as one record (Section 6.1/6.2). Records keep
// the enclosing element skeleton (site/regions/..., site/people/..., etc.)
// so the paper's Table 4 queries anchor exactly as written
// ("/site//item[...]", "//closed_auction[...]").

// XMarkOptions configures the generator.
type XMarkOptions struct {
	// IdenticalSiblings enables repeat-capable elements (incategory, mail,
	// bidder, interest, watch), the Table 5 configuration; disabled they
	// are capped at one copy (Table 6).
	IdenticalSiblings bool
	// Seed drives document generation.
	Seed int64
	// Persons sizes the person-id vocabulary ("person0"..); the specific
	// id of the paper's Q3, person11304, is always present.
	Persons int
	// Dates sizes the date vocabulary; Q1's 07/05/2000 and Q3's 12/15/1999
	// are always present.
	Dates int
	// Categories sizes the category vocabulary.
	Categories int
}

func (o *XMarkOptions) defaults() {
	if o.Persons <= 0 {
		o.Persons = 2000
	}
	if o.Dates <= 0 {
		o.Dates = 400
	}
	if o.Categories <= 0 {
		o.Categories = 100
	}
}

// Q1, Q2 and Q3 are the Table 4 sample queries, verbatim.
const (
	XMarkQ1 = "/site//item[location='United States']/mail/date[text='07/05/2000']"
	XMarkQ2 = "/site//person/*/age[text='32']"
	XMarkQ3 = "//closed_auction[seller/person='person11304']/date[text='12/15/1999']"
)

// XMarkSchema builds the substructure schema. Every record is rooted at
// site; exactly one of the four substructure chains is instantiated per
// record (the chain probabilities act as the record-type mix: 40% item,
// 30% person, 15% open_auction, 15% closed_auction).
func XMarkSchema(o XMarkOptions) (*schema.Schema, error) {
	o.defaults()
	rep := func(min, max int) (int, int) {
		if !o.IdenticalSiblings {
			return 1, 1
		}
		return min, max
	}

	dates := makeDates(o.Dates)
	persons := makePersons(o.Persons)
	countries := []string{
		"United States", "Germany", "China", "Japan", "France",
		"United Kingdom", "Brazil", "India", "Canada", "Australia",
	}
	categories := make([]string, o.Categories)
	for i := range categories {
		categories[i] = fmt.Sprintf("category%d", i)
	}
	words := []string{
		"great", "vintage", "rare", "mint", "boxed", "signed", "restored",
		"antique", "custom", "limited",
	}
	ages := make([]string, 48)
	for i := range ages {
		ages[i] = fmt.Sprintf("%d", 18+i)
	}

	val := func(p float64, values []string, zipf float64) *schema.Node {
		return &schema.Node{IsValue: true, PCond: p, Values: values, ZipfS: zipf}
	}
	elem := func(name string, p float64, children ...*schema.Node) *schema.Node {
		return &schema.Node{Name: name, PCond: p, Children: children}
	}

	// item: the location vocabulary is skewed so "United States" dominates
	// (xmlgen gives it ~3/4 of items).
	mailMin, mailMax := rep(1, 4)
	incatMin, incatMax := rep(1, 5)
	// Mail and auction dates are Zipf-skewed with the Table 4 constants at
	// the head, so Q1 and Q3 stay answerable at reduced corpus scales.
	mail := elem("mail", 0.8,
		elem("from", 1, val(1, persons, 1.7)),
		elem("to", 1, val(1, persons, 1.7)),
		elem("date", 1, val(1, dates, 1.2)),
		elem("text", 0.9, val(1, words, 0)),
	)
	mail.MinRepeat, mail.MaxRepeat = mailMin, mailMax
	incategory := elem("incategory", 0.9, val(1, categories, 1.5))
	incategory.MinRepeat, incategory.MaxRepeat = incatMin, incatMax
	item := elem("item", 1,
		elem("location", 1, val(1, countries, 2.2)),
		elem("quantity", 0.9, val(1, []string{"1", "2", "3", "4", "5"}, 1.8)),
		elem("name", 1, val(1, words, 0)),
		elem("payment", 0.7, val(1, []string{"Cash", "Creditcard", "Check"}, 0)),
		elem("description", 0.8, val(1, words, 0)),
		elem("shipping", 0.6, val(1, []string{"international", "domestic"}, 0)),
		incategory,
		mail,
	)

	// person
	interest := elem("interest", 0.6, val(1, categories, 1.5))
	watch := elem("watch", 0.5, val(1, persons, 1.7))
	imin, imax := rep(1, 3)
	interest.MinRepeat, interest.MaxRepeat = imin, imax
	wmin, wmax := rep(1, 3)
	watch.MinRepeat, watch.MaxRepeat = wmin, wmax
	person := elem("person", 1,
		elem("name", 1, val(1, persons, 1.7)),
		elem("emailaddress", 0.9, val(1, persons, 1.7)),
		elem("phone", 0.5, val(1, makeNumbers("555-", 500), 0)),
		elem("address", 0.6,
			elem("street", 1, val(1, makeNumbers("st", 200), 0)),
			elem("city", 1, val(1, countries, 1.5)),
			elem("country", 1, val(1, countries, 2.2)),
			elem("zipcode", 0.8, val(1, makeNumbers("", 300), 0)),
		),
		elem("homepage", 0.4, val(1, makeNumbers("http://site", 300), 0)),
		elem("creditcard", 0.5, val(1, makeNumbers("cc", 400), 0)),
		elem("profile", 0.8,
			interest,
			elem("education", 0.5, val(1, []string{"High School", "College", "Graduate School", "Other"}, 0)),
			elem("gender", 0.6, val(1, []string{"male", "female"}, 0)),
			elem("business", 0.9, val(1, []string{"Yes", "No"}, 0)),
			elem("age", 0.6, val(1, ages, 0)),
		),
		elem("watches", 0.4, watch),
	)

	// open_auction
	bidder := elem("bidder", 0.8,
		elem("date", 1, val(1, dates, 0)),
		elem("time", 0.9, val(1, makeNumbers("", 240), 0)),
		elem("increase", 1, val(1, []string{"1.50", "3.00", "4.50", "6.00"}, 1.3)),
	)
	bmin, bmax := rep(1, 4)
	bidder.MinRepeat, bidder.MaxRepeat = bmin, bmax
	openAuction := elem("open_auction", 1,
		elem("initial", 1, val(1, makeNumbers("", 500), 0)),
		elem("reserve", 0.4, val(1, makeNumbers("", 500), 0)),
		bidder,
		elem("current", 1, val(1, makeNumbers("", 500), 0)),
		elem("itemref", 1, elem("item", 1, val(1, makeNumbers("item", 1000), 0))),
		elem("seller", 1, elem("person", 1, val(1, persons, 1.7))),
		elem("annotation", 0.5, elem("description", 1, val(1, words, 0))),
		elem("quantity", 0.9, val(1, []string{"1", "2", "3"}, 1.8)),
		elem("type", 1, val(1, []string{"Regular", "Featured"}, 0)),
		elem("interval", 0.7,
			elem("start", 1, val(1, dates, 0)),
			elem("end", 1, val(1, dates, 0)),
		),
	)

	// closed_auction
	closedAuction := elem("closed_auction", 1,
		elem("seller", 1, elem("person", 1, val(1, persons, 1.7))),
		elem("buyer", 1, elem("person", 1, val(1, persons, 1.7))),
		elem("itemref", 1, elem("item", 1, val(1, makeNumbers("item", 1000), 0))),
		elem("price", 1, val(1, makeNumbers("", 500), 0)),
		elem("date", 1, val(1, dates, 1.2)),
		elem("quantity", 0.9, val(1, []string{"1", "2", "3"}, 1.8)),
		elem("type", 1, val(1, []string{"Regular", "Featured"}, 0)),
		elem("annotation", 0.5, elem("description", 1, val(1, words, 0))),
	)

	// Enclosing skeleton; the four chains are mutually exclusive per
	// record, approximated by their mix probabilities.
	site := elem("site", 1,
		elem("regions", 0.40, elem("namerica", 1, item)),
		elem("people", 0.30, person),
		elem("open_auctions", 0.15, openAuction),
		elem("closed_auctions", 0.15, closedAuction),
	)
	return schema.New(site)
}

// XMark generates n XMark-like records plus their schema. Each record is a
// site-rooted tree holding exactly one substructure instance; the record
// type follows the 40/30/15/15 mix deterministically by id so corpus
// composition is reproducible at any scale.
func XMark(o XMarkOptions, n int) (*schema.Schema, []*xmltree.Document, error) {
	o.defaults()
	s, err := XMarkSchema(o)
	if err != nil {
		return nil, nil, err
	}
	docs := GenerateDocs(s, n, o.Seed, 0)
	// Schema generation can instantiate zero or several chains under site
	// (children are independent); normalize every record to exactly one
	// chain, chosen by the id-deterministic mix.
	chains := []string{"regions", "people", "open_auctions", "closed_auctions"}
	weights := []int{40, 30, 15, 15}
	for i, d := range docs {
		want := chains[pickWeighted(weights, i)]
		var kept []*xmltree.Node
		for _, c := range d.Root.Children {
			if c.Name == want {
				kept = append(kept, c)
				break
			}
		}
		if len(kept) == 0 {
			// Regenerate the chain directly from the schema when the
			// random walk skipped it.
			kept = append(kept, regenerateChain(s, want, o.Seed+int64(i)))
		}
		d.Root.Children = kept
	}
	return s, docs, nil
}

func pickWeighted(weights []int, i int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := (i * 7919) % total // deterministic spread over record ids
	for k, w := range weights {
		if x < w {
			return k
		}
		x -= w
	}
	return len(weights) - 1
}

func regenerateChain(s *schema.Schema, chain string, seed int64) *xmltree.Node {
	sub := s.FindByNamePath([]string{"site", chain})
	sc := schema.MustNew(cloneSchemaNode(sub))
	docs := GenerateDocs(sc, 1, seed, 0)
	return docs[0].Root
}

func cloneSchemaNode(n *schema.Node) *schema.Node {
	cp := *n
	cp.PCond = 1
	cp.Children = make([]*schema.Node, len(n.Children))
	for i, c := range n.Children {
		cc := *c
		cp.Children[i] = &cc
		cp.Children[i].Children = cloneSchemaChildren(c.Children)
	}
	return &cp
}

func cloneSchemaChildren(children []*schema.Node) []*schema.Node {
	out := make([]*schema.Node, len(children))
	for i, c := range children {
		cc := *c
		cc.Children = cloneSchemaChildren(c.Children)
		out[i] = &cc
	}
	return out
}

func makeDates(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		out = append(out, fmt.Sprintf("%02d/%02d/%d", 1+i%12, 1+(i/12)%28, 1998+(i/336)%4))
	}
	// Table 4's constants: Q3's date near the head of the Zipf so the
	// query stays answerable at reduced scales, Q1's date in the tail so
	// Q1 keeps the paper's extreme selectivity (result size 1).
	if n > 0 {
		out[0] = "12/15/1999"
	}
	if n > 25 {
		out[25] = "07/05/2000"
	} else if n > 1 {
		out[1] = "07/05/2000"
	}
	return out
}

func makePersons(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		out = append(out, fmt.Sprintf("person%d", i))
	}
	// Table 4's Q3 constant sits at an early-but-not-head Zipf rank: the
	// query is selective yet still answerable at reduced corpus scales.
	pos := 3
	if pos >= n {
		pos = n - 1
	}
	out[pos] = "person11304"
	return out
}

func makeNumbers(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}
