package datagen

import (
	"testing"

	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

func TestSynthNameRoundTrip(t *testing.T) {
	p := SynthParams{L: 3, F: 5, A: 25, I: 0, P: 40}
	if p.Name() != "L3F5A25I0P40" {
		t.Fatalf("Name = %q", p.Name())
	}
	back, err := ParseSynthName("L3F5A25I0P40")
	if err != nil {
		t.Fatal(err)
	}
	if back != (SynthParams{L: 3, F: 5, A: 25, I: 0, P: 40}) {
		t.Fatalf("parsed = %+v", back)
	}
	for _, bad := range []string{"", "L3F5", "L3F5A25I0P400", "X3F5A25I0P40"} {
		if _, err := ParseSynthName(bad); err == nil {
			t.Errorf("ParseSynthName(%q) should fail", bad)
		}
	}
}

func TestSynthValidate(t *testing.T) {
	bad := []SynthParams{
		{L: 0, F: 5, A: 25, I: 0, P: 40},
		{L: 3, F: 0, A: 25, I: 0, P: 40},
		{L: 3, F: 5, A: 101, I: 0, P: 40},
		{L: 3, F: 5, A: 25, I: -1, P: 40},
		{L: 3, F: 5, A: 25, I: 0, P: 101},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestSynthDeterministic(t *testing.T) {
	p := SynthParams{L: 3, F: 5, A: 25, I: 0, P: 40, Seed: 7}
	_, docsA, err := Synth(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	_, docsB, err := Synth(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docsA {
		if !xmltree.Equal(docsA[i].Root, docsB[i].Root) {
			t.Fatalf("doc %d differs across runs", i)
		}
	}
}

func TestSynthShape(t *testing.T) {
	p := SynthParams{L: 3, F: 5, A: 25, I: 0, P: 40}
	s, docs, err := Synth(p, 500)
	if err != nil {
		t.Fatal(err)
	}
	if s.HasIdenticalSiblings() {
		t.Fatal("I=0 schema should have no repeats")
	}
	// Documents respect the height bound: schema height L plus value
	// leaves. The huge value space avoids hash collisions that would make
	// two distinct values look like identical siblings.
	enc := pathenc.NewEncoder(1 << 20)
	for _, d := range docs {
		if h := d.Root.Height(); h > p.L+1 {
			t.Fatalf("doc height %d exceeds L+1=%d", h, p.L+1)
		}
		if sequence.HasIdenticalSiblings(d.Root, enc) {
			t.Fatalf("I=0 doc has identical siblings: %v", d.Root)
		}
	}
	// Average sequence length in the ballpark the paper reports (~25 for
	// this family); the exact value depends on the random DTD.
	avg := AvgSequenceLength(docs)
	if avg < 5 || avg > 60 {
		t.Fatalf("average sequence length %v implausible", avg)
	}
}

func TestSynthIdenticalSiblings(t *testing.T) {
	p := SynthParams{L: 3, F: 5, A: 25, I: 100, P: 40, Seed: 3}
	s, docs, err := Synth(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasIdenticalSiblings() {
		t.Fatal("I=100 schema should have repeats")
	}
	enc := pathenc.NewEncoder(0)
	found := false
	for _, d := range docs {
		if sequence.HasIdenticalSiblings(d.Root, enc) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("I=100 corpus has no identical siblings at all")
	}
}

func TestXMarkRecordMix(t *testing.T) {
	_, docs, err := XMark(XMarkOptions{IdenticalSiblings: true, Seed: 1}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range docs {
		if d.Root.Name != "site" {
			t.Fatalf("record root = %q", d.Root.Name)
		}
		if len(d.Root.Children) != 1 {
			t.Fatalf("record has %d chains", len(d.Root.Children))
		}
		counts[d.Root.Children[0].Name]++
	}
	if counts["regions"] < 300 || counts["people"] < 200 ||
		counts["open_auctions"] < 100 || counts["closed_auctions"] < 100 {
		t.Fatalf("record mix off: %v", counts)
	}
}

func TestXMarkIdenticalSiblingControl(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	_, with, err := XMark(XMarkOptions{IdenticalSiblings: true, Seed: 2}, 300)
	if err != nil {
		t.Fatal(err)
	}
	foundRepeat := false
	for _, d := range with {
		if sequence.HasIdenticalSiblings(d.Root, enc) {
			foundRepeat = true
			break
		}
	}
	if !foundRepeat {
		t.Fatal("identical-sibling corpus has none")
	}
	_, without, err := XMark(XMarkOptions{IdenticalSiblings: false, Seed: 2}, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range without {
		if sequence.HasIdenticalSiblings(d.Root, enc) {
			t.Fatalf("no-identical-sibling corpus violates the cap: %v", d.Root)
		}
	}
}

func TestXMarkQueriesAnswerable(t *testing.T) {
	_, docs, err := XMark(XMarkOptions{IdenticalSiblings: true, Seed: 4, Persons: 200, Dates: 60}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	// The three Table 4 queries parse and at least Q2 (broad age test)
	// finds matches at this scale; Q1/Q3 carry highly selective constants
	// and may legitimately be empty on a small corpus, but their paths
	// must exist.
	for _, q := range []string{XMarkQ1, XMarkQ2, XMarkQ3} {
		if _, err := query.Parse(q); err != nil {
			t.Fatalf("query %q does not parse: %v", q, err)
		}
	}
	q2 := query.MustParse(XMarkQ2)
	if got := query.Eval(docs, q2); len(got) == 0 {
		t.Fatal("Q2 found nothing; age distribution is broken")
	}
	// Structural prerequisites of Q1/Q3.
	if got := query.Eval(docs, query.MustParse("/site//item[location='United States']/mail/date")); len(got) == 0 {
		t.Fatal("item/mail/date path missing from corpus")
	}
	if got := query.Eval(docs, query.MustParse("//closed_auction[seller/person]/date")); len(got) == 0 {
		t.Fatal("closed_auction/seller/person path missing from corpus")
	}
}

func TestDBLPRecordShape(t *testing.T) {
	_, docs, err := DBLP(DBLPOptions{Seed: 5}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range docs {
		counts[d.Root.Name]++
		if h := d.Root.Height(); h > 6 {
			t.Fatalf("record height %d exceeds DBLP's max depth 6", h)
		}
	}
	if counts["inproceedings"] < 800 || counts["article"] < 500 ||
		counts["book"] < 50 || counts["phdthesis"] < 40 {
		t.Fatalf("record mix off: %v", counts)
	}
	// The paper reports average constraint-sequence length ≈ 21; stay in
	// that ballpark.
	avg := AvgSequenceLength(docs)
	if avg < 12 || avg > 30 {
		t.Fatalf("average sequence length %v out of DBLP ballpark", avg)
	}
}

func TestDBLPQueriesAnswerable(t *testing.T) {
	_, docs, err := DBLP(DBLPOptions{Seed: 6, Authors: 100}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{DBLPQ1, DBLPQ2, DBLPQ3, DBLPQ4} {
		pat, err := query.Parse(q)
		if err != nil {
			t.Fatalf("query %q does not parse: %v", q, err)
		}
		if got := query.Eval(docs, pat); len(got) == 0 {
			t.Fatalf("query %q found nothing", q)
		}
	}
	// Multi-author records exist (identical siblings).
	enc := pathenc.NewEncoder(0)
	found := false
	for _, d := range docs {
		if sequence.HasIdenticalSiblings(d.Root, enc) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no multi-author records generated")
	}
}
