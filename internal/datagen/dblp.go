package datagen

import (
	"fmt"

	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

// DBLP-like corpus: bibliographic publication records matching the shape
// the paper reports for its DBLP snapshot — ~21 nodes per record on
// average, maximum depth 6 (root / field / value with a key attribute),
// multi-author records giving identical sibling nodes, and Zipf-skewed
// author and venue vocabularies. Table 8's queries run against it
// verbatim, so the vocabularies always contain 'Maier' (a book key) and
// 'David' (an author).

// DBLPOptions configures the generator.
type DBLPOptions struct {
	// Seed drives document generation.
	Seed int64
	// Authors sizes the author vocabulary.
	Authors int
	// Venues sizes the journal/booktitle vocabulary.
	Venues int
	// Titles sizes the title vocabulary.
	Titles int
}

func (o *DBLPOptions) defaults() {
	if o.Authors <= 0 {
		o.Authors = 3000
	}
	if o.Venues <= 0 {
		o.Venues = 300
	}
	if o.Titles <= 0 {
		o.Titles = 20000
	}
}

// The Table 8 queries, verbatim (Q2 includes the paper's own typos).
const (
	DBLPQ1 = "/inproceedings/title"
	DBLPQ2 = "/book/[key='Maier]/author"
	DBLPQ3 = "/*/author[text='David']"
	DBLPQ4 = "//author[text='David']"
)

// DBLPSchema builds the record-type forest: inproceedings 50%, article
// 38%, book 7%, phdthesis 5%.
func DBLPSchema(o DBLPOptions) (*schema.Schema, error) {
	o.defaults()
	authors := append([]string{"David"}, makeNumbers("author", o.Authors-1)...)
	venues := makeNumbers("venue", o.Venues)
	titles := makeNumbers("title", o.Titles)
	years := make([]string, 36)
	for i := range years {
		years[i] = fmt.Sprintf("%d", 1970+i)
	}
	pages := makeNumbers("p", 500)
	keys := makeNumbers("key", 5000)
	bookKeys := append([]string{"Maier"}, makeNumbers("bkey", 499)...)

	val := func(p float64, values []string, zipf float64) *schema.Node {
		return &schema.Node{IsValue: true, PCond: p, Values: values, ZipfS: zipf}
	}
	elem := func(name string, p float64, children ...*schema.Node) *schema.Node {
		return &schema.Node{Name: name, PCond: p, Children: children}
	}
	author := func() *schema.Node {
		a := elem("author", 0.95, val(1, authors, 1.6))
		a.MinRepeat, a.MaxRepeat = 1, 3
		return a
	}

	inproceedings := elem("inproceedings", 1,
		elem("key", 1, val(1, keys, 0)),
		author(),
		elem("title", 1, val(1, titles, 0)),
		elem("pages", 0.9, val(1, pages, 0)),
		elem("year", 1, val(1, years, 1.4)),
		elem("booktitle", 1, val(1, venues, 1.6)),
		elem("ee", 0.5, val(1, makeNumbers("http://doi", 3000), 0)),
	)
	article := elem("article", 1,
		elem("key", 1, val(1, keys, 0)),
		author(),
		elem("title", 1, val(1, titles, 0)),
		elem("pages", 0.9, val(1, pages, 0)),
		elem("year", 1, val(1, years, 1.4)),
		elem("volume", 0.8, val(1, makeNumbers("", 60), 0)),
		elem("journal", 1, val(1, venues, 1.6)),
	)
	book := elem("book", 1,
		elem("key", 1, val(1, bookKeys, 1.4)),
		author(),
		elem("title", 1, val(1, titles, 0)),
		elem("publisher", 1, val(1, makeNumbers("publisher", 50), 1.5)),
		elem("year", 1, val(1, years, 1.4)),
		elem("isbn", 0.8, val(1, makeNumbers("isbn", 2000), 0)),
	)
	phdthesis := elem("phdthesis", 1,
		elem("key", 1, val(1, keys, 0)),
		elem("author", 1, val(1, authors, 1.6)),
		elem("title", 1, val(1, titles, 0)),
		elem("year", 1, val(1, years, 1.4)),
		elem("school", 1, val(1, makeNumbers("school", 120), 1.5)),
	)
	return schema.NewForest(
		[]*schema.Node{inproceedings, article, book, phdthesis},
		[]float64{0.50, 0.38, 0.07, 0.05},
	)
}

// DBLP generates n DBLP-like records plus their schema.
func DBLP(o DBLPOptions, n int) (*schema.Schema, []*xmltree.Document, error) {
	o.defaults()
	s, err := DBLPSchema(o)
	if err != nil {
		return nil, nil, err
	}
	return s, GenerateDocs(s, n, o.Seed, 0), nil
}
