package bench

import (
	"fmt"

	"xseq/internal/datagen"
	"xseq/internal/pathenc"
	"xseq/internal/sequence"
	"xseq/internal/trie"
)

// Figure14a reproduces Figure 14(a): index node counts for random,
// breadth-first, depth-first and probability-based constraint sequencing
// over dataset L3F5A25I0P40 as the document count grows.
func Figure14a(cfg Config) ([]*Table, error) {
	// The seed offsets select random DTDs whose average sequence lengths
	// match the paper's (~25 here, ~32 for 14b); DTD generation has high
	// variance in document size.
	return figure14(cfg, "fig14a", datagen.SynthParams{L: 3, F: 5, A: 25, I: 0, P: 40, Seed: cfg.Seed + 1000})
}

// Figure14b reproduces Figure 14(b) on L5F3A40I0P5, the longer-sequence
// family.
func Figure14b(cfg Config) ([]*Table, error) {
	return figure14(cfg, "fig14b", datagen.SynthParams{L: 5, F: 3, A: 40, I: 0, P: 5, Seed: cfg.Seed + 2000})
}

func figure14(cfg Config, id string, params datagen.SynthParams) ([]*Table, error) {
	// Paper x-axis: 0.5M .. 2.5M documents.
	paperSizes := []int{500_000, 1_000_000, 1_500_000, 2_000_000, 2_500_000}
	sizes := make([]int, len(paperSizes))
	for i, s := range paperSizes {
		sizes[i] = cfg.scaled(s, 200*(i+1))
	}
	sch, docs, err := datagen.Synth(params, sizes[len(sizes)-1])
	if err != nil {
		return nil, err
	}
	enc := pathenc.NewEncoder(0)
	strategies := strategySet(sch, enc, docs, cfg.Seed+1)

	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("Index size (trie nodes) on %s", params.Name()),
		Note: fmt.Sprintf("avg sequence length %.1f; paper shape: random >> breadth-first ≈ depth-first >> constraint",
			datagen.AvgSequenceLength(docs)),
		Header: []string{"docs", "random", "breadth-first", "depth-first", "constraint"},
	}
	// Pre-sequence the full corpus once per strategy, then count nodes for
	// each prefix with fresh tries.
	seqs := make([][]sequence.Sequence, len(strategies))
	for si, st := range strategies {
		seqs[si] = make([]sequence.Sequence, len(docs))
		for di, d := range docs {
			if di%256 == 0 {
				if err := cfg.poll(); err != nil {
					return nil, err
				}
			}
			seqs[si][di] = st.Sequence(d.Root)
		}
	}
	for _, n := range sizes {
		if err := cfg.poll(); err != nil {
			return nil, err
		}
		row := []interface{}{n}
		for si := range strategies {
			tr := trie.New()
			for di := 0; di < n; di++ {
				tr.Insert(seqs[si][di], docs[di].ID)
			}
			row = append(row, tr.NumNodes())
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Figure15 reproduces Figure 15: index size for depth-first vs constraint
// sequencing as the identical-sibling percentage I sweeps 0% → 100% on
// L3F5A25I?P40. As I grows the ordering freedom shrinks and CS degrades
// toward DF, remaining below it because values still order by probability.
func Figure15(cfg Config) ([]*Table, error) {
	nDocs := cfg.scaled(500_000, 1_000)
	t := &Table{
		ID:     "fig15",
		Title:  "Impact of identical sibling nodes on index size (L3F5A25I?P40)",
		Note:   fmt.Sprintf("%d documents per point; paper shape: CS ≤ DF, converging as I→100%%", nDocs),
		Header: []string{"I%", "depth-first", "constraint", "CS/DF"},
	}
	for i := 0; i <= 100; i += 20 {
		if err := cfg.poll(); err != nil {
			return nil, err
		}
		params := datagen.SynthParams{L: 3, F: 5, A: 25, I: i, P: 40, Seed: cfg.Seed}
		sch, docs, err := datagen.Synth(params, nDocs)
		if err != nil {
			return nil, err
		}
		enc := pathenc.NewEncoder(0)
		strategies := strategySet(sch, enc, docs, cfg.Seed+1)
		df := trieNodeCount(docs, strategies[2])
		cs := trieNodeCount(docs, strategies[3])
		t.AddRow(i, df, cs, float64(cs)/float64(df))
	}
	return []*Table{t}, nil
}

// Table5 reproduces Table 5: XMark index sizes (records, XML nodes, DF trie
// nodes, CS trie nodes) with identical sibling nodes.
func Table5(cfg Config) ([]*Table, error) {
	return xmarkSizeTable(cfg, "table5", true,
		[]int{41_666, 50_000, 58_333, 75_000, 83_333})
}

// Table6 reproduces Table 6: the same without identical sibling nodes.
func Table6(cfg Config) ([]*Table, error) {
	return xmarkSizeTable(cfg, "table6", false,
		[]int{20_000, 30_000, 40_000, 50_000, 65_250})
}

func xmarkSizeTable(cfg Config, id string, identical bool, paperRecords []int) ([]*Table, error) {
	sizes := make([]int, len(paperRecords))
	for i, s := range paperRecords {
		sizes[i] = cfg.scaled(s, 100*(i+1))
	}
	maxN := sizes[len(sizes)-1]
	sch, docs, err := datagen.XMark(datagen.XMarkOptions{IdenticalSiblings: identical, Seed: cfg.Seed}, maxN)
	if err != nil {
		return nil, err
	}
	kind := "with"
	if !identical {
		kind = "without"
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("XMark index size %s identical sibling nodes", kind),
		Note:   "paper shape: CS roughly half the DF node count at every size",
		Header: []string{"records", "nodes", "DF", "CS", "CS/DF"},
	}
	enc := pathenc.NewEncoder(0)
	strategies := strategySet(sch, enc, docs, cfg.Seed+1)
	dfSeqs := make([]sequence.Sequence, len(docs))
	csSeqs := make([]sequence.Sequence, len(docs))
	for i, d := range docs {
		if i%256 == 0 {
			if err := cfg.poll(); err != nil {
				return nil, err
			}
		}
		dfSeqs[i] = strategies[2].Sequence(d.Root)
		csSeqs[i] = strategies[3].Sequence(d.Root)
	}
	for _, n := range sizes {
		if err := cfg.poll(); err != nil {
			return nil, err
		}
		dfTrie, csTrie := trie.New(), trie.New()
		nodes := 0
		for i := 0; i < n; i++ {
			dfTrie.Insert(dfSeqs[i], docs[i].ID)
			csTrie.Insert(csSeqs[i], docs[i].ID)
			nodes += docs[i].Root.Size()
		}
		df, cs := dfTrie.NumNodes(), csTrie.NumNodes()
		t.AddRow(n, nodes, df, cs, float64(cs)/float64(df))
	}
	return []*Table{t}, nil
}

// CompressionRatios reproduces the Section 6.2 observation: the index-size
// to compressed-data-size ratio is about 1:1 for probability-based
// constraint sequencing and 3-6:1 for random sequencing.
func CompressionRatios(cfg Config) ([]*Table, error) {
	params := datagen.SynthParams{L: 3, F: 5, A: 25, I: 0, P: 40, Seed: cfg.Seed}
	nDocs := cfg.scaled(1_000_000, 2_000)
	sch, docs, err := datagen.Synth(params, nDocs)
	if err != nil {
		return nil, err
	}
	enc := pathenc.NewEncoder(0)
	strategies := strategySet(sch, enc, docs, cfg.Seed+1)
	// A compressed document stores roughly one two-byte designator per
	// node (Section 6.2 calls each sequence "a compressed XML document");
	// the index costs 4n + 8N bytes against that.
	const bytesPerElement = 2
	dataBytes := int64(0)
	for _, d := range docs {
		dataBytes += int64(d.Root.Size()) * bytesPerElement
	}
	t := &Table{
		ID:     "compression",
		Title:  "Index size to compressed data size ratio",
		Note:   fmt.Sprintf("%d documents, data bytes %d; paper: ≈1:1 for CS, 3-6:1 for random", nDocs, dataBytes),
		Header: []string{"strategy", "trie nodes", "index bytes (4n+8N)", "ratio"},
	}
	for _, st := range strategies {
		if err := cfg.poll(); err != nil {
			return nil, err
		}
		nodes := trieNodeCount(docs, st)
		indexBytes := 4*int64(nDocs) + 8*int64(nodes)
		t.AddRow(st.Name(), nodes, indexBytes, float64(indexBytes)/float64(dataBytes))
	}
	return []*Table{t}, nil
}
