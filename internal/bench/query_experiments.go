package bench

import (
	"fmt"
	"math/rand"
	"time"

	"xseq/internal/datagen"
	"xseq/internal/nodeindex"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/pathindex"
	"xseq/internal/query"
	"xseq/internal/vist"
)

// Table7 reproduces Table 7: the three Table 4 queries against an
// XMark-like corpus, reporting query length, result size, disk accesses
// (cold buffer pool) and elapsed time.
func Table7(cfg Config) ([]*Table, error) {
	n := cfg.scaled(100_000, 2_000)
	sch, docs, err := datagen.XMark(datagen.XMarkOptions{IdenticalSiblings: true, Seed: cfg.Seed}, n)
	if err != nil {
		return nil, err
	}
	ix, _, err := buildCSIndex(docs, sch)
	if err != nil {
		return nil, err
	}
	pool := pager.NewPool(cfg.PoolPages)
	if _, err := ix.AttachPager(pool); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table7",
		Title: fmt.Sprintf("Query performance on XMark (%d records)", n),
		Note:  "paper shape: every query in well under a second with tens of disk accesses",
		Header: []string{
			"query", "query length", "result size", "# disk accesses", "time",
		},
	}
	queries := []struct {
		name string
		text string
	}{
		{"Q1", datagen.XMarkQ1},
		{"Q2", datagen.XMarkQ2},
		{"Q3", datagen.XMarkQ3},
	}
	for _, q := range queries {
		pat, err := query.Parse(q.text)
		if err != nil {
			return nil, err
		}
		ix.DropPagerCache()
		start := time.Now()
		ids, err := ix.QueryContext(cfg.ctx(), pat)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.AddRow(q.name, pat.Size(), len(ids), ix.PagerStats().DiskAccesses(), elapsed)
	}
	ix.DetachPager()
	return []*Table{t}, nil
}

// Table8 reproduces Table 8: the four DBLP queries against query-by-path
// (DataGuide-like), query-by-node (XISS-like) and constraint sequencing.
func Table8(cfg Config) ([]*Table, error) {
	n := cfg.scaled(407_417, 5_000)
	sch, docs, err := datagen.DBLP(datagen.DBLPOptions{Seed: cfg.Seed}, n)
	if err != nil {
		return nil, err
	}
	paths, err := pathindex.Build(docs)
	if err != nil {
		return nil, err
	}
	nodes, err := nodeindex.Build(docs)
	if err != nil {
		return nil, err
	}
	cs, _, err := buildCSIndex(docs, sch)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table8",
		Title: fmt.Sprintf("Query performance on DBLP (%d records)", n),
		Note:  "paper shape: paths wins only on the simple path Q1; CS wins Q2-Q4; nodes slowest throughout",
		Header: []string{
			"query", "paths", "nodes", "CS", "results",
		},
	}
	queries := []struct {
		name string
		text string
	}{
		{"Q1", datagen.DBLPQ1},
		{"Q2", datagen.DBLPQ2},
		{"Q3", datagen.DBLPQ3},
		{"Q4", datagen.DBLPQ4},
	}
	for _, q := range queries {
		pat, err := query.Parse(q.text)
		if err != nil {
			return nil, err
		}
		tPaths, nPaths := timeOne(func() (int, error) {
			ids, err := paths.Query(pat)
			return len(ids), err
		})
		tNodes, _ := timeOne(func() (int, error) {
			ids, err := nodes.Query(pat)
			return len(ids), err
		})
		tCS, _ := timeOne(func() (int, error) {
			ids, err := cs.QueryContext(cfg.ctx(), pat)
			return len(ids), err
		})
		t.AddRow(q.name, tPaths, tNodes, tCS, nPaths)
	}
	return []*Table{t}, nil
}

func timeOne(fn func() (int, error)) (time.Duration, int) {
	start := time.Now()
	n, err := fn()
	if err != nil {
		return 0, -1
	}
	return time.Since(start), n
}

// Figure16a reproduces Figure 16(a): constraint-sequencing query time as
// the dataset grows (L3F5A25I10P40, query length 5).
func Figure16a(cfg Config) ([]*Table, error) {
	paperSizes := []int{50_000, 100_000, 200_000, 300_000, 400_000}
	params := datagen.SynthParams{L: 3, F: 5, A: 25, I: 10, P: 40, Seed: cfg.Seed}
	sizes := make([]int, len(paperSizes))
	for i, s := range paperSizes {
		sizes[i] = cfg.scaled(s, 200*(i+1))
	}
	sch, docs, err := datagen.Synth(params, sizes[len(sizes)-1])
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 16))
	t := &Table{
		ID:     "fig16a",
		Title:  "CS query time vs dataset size (L3F5A25I10P40, query length 5)",
		Note:   fmt.Sprintf("%d random queries per point; paper shape: sub-linear growth", cfg.queries()),
		Header: []string{"records", "avg query time", "avg results"},
	}
	for _, n := range sizes {
		sub := docs[:n]
		ix, _, err := buildCSIndex(sub, sch)
		if err != nil {
			return nil, err
		}
		pats := randomQueries(rng, sub, 5, cfg.queries())
		total, results, err := timeQueries(cfg.ctx(), pats, func(p *query.Pattern) ([]int32, error) { return ix.QueryContext(cfg.ctx(), p) })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, perQuery(total, len(pats)), float64(results)/float64(len(pats)))
	}
	return []*Table{t}, nil
}

// Figure16b reproduces Figure 16(b): constraint sequencing vs ViST
// (depth-first sequencing + joins + per-candidate verification) as the
// query length grows, on one fixed corpus.
func Figure16b(cfg Config) ([]*Table, error) {
	n := cfg.scaled(1_000_000, 2_000)
	params := datagen.SynthParams{L: 3, F: 5, A: 25, I: 10, P: 40, Seed: cfg.Seed}
	sch, docs, err := datagen.Synth(params, n)
	if err != nil {
		return nil, err
	}
	ix, _, err := buildCSIndex(docs, sch)
	if err != nil {
		return nil, err
	}
	vist, err := vist.Build(docs, vistOptions())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	t := &Table{
		ID:     "fig16b",
		Title:  fmt.Sprintf("CS vs ViST query time vs query length (%d records)", n),
		Note:   "paper shape: ViST above CS at every length, gap widening with length",
		Header: []string{"query length", "ViST", "CS", "ViST/CS"},
	}
	for size := 2; size <= 12; size += 2 {
		pats := randomQueries(rng, docs, size, cfg.queries())
		if len(pats) == 0 {
			continue
		}
		vTotal, _, err := timeQueries(cfg.ctx(), pats, vist.Query)
		if err != nil {
			return nil, err
		}
		cTotal, _, err := timeQueries(cfg.ctx(), pats, func(p *query.Pattern) ([]int32, error) { return ix.QueryContext(cfg.ctx(), p) })
		if err != nil {
			return nil, err
		}
		ratio := float64(vTotal) / float64(cTotal)
		t.AddRow(size, perQuery(vTotal, len(pats)), perQuery(cTotal, len(pats)), ratio)
	}
	return []*Table{t}, nil
}

func vistOptions() vist.Options {
	return vist.Options{Encoder: pathenc.NewEncoder(0)}
}

// Figure16c reproduces Figure 16(c): I/O cost (pages) and query time vs
// query length on a fixed corpus without identical sibling nodes.
func Figure16c(cfg Config) ([]*Table, error) {
	return figure16IO(cfg, "fig16c", 0)
}

// Figure16d reproduces Figure 16(d): the same with identical sibling nodes
// — the paper shows an order-of-magnitude I/O and time penalty.
func Figure16d(cfg Config) ([]*Table, error) {
	return figure16IO(cfg, "fig16d", 10)
}

func figure16IO(cfg Config, id string, identicalPct int) ([]*Table, error) {
	n := cfg.scaled(100_000, 2_000)
	params := datagen.SynthParams{L: 3, F: 5, A: 25, I: identicalPct, P: 40, Seed: cfg.Seed}
	sch, docs, err := datagen.Synth(params, n)
	if err != nil {
		return nil, err
	}
	ix, _, err := buildCSIndex(docs, sch)
	if err != nil {
		return nil, err
	}
	pool := pager.NewPool(cfg.PoolPages)
	if _, err := ix.AttachPager(pool); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 18))
	kind := "no identical siblings"
	if identicalPct > 0 {
		kind = fmt.Sprintf("identical siblings I=%d%%", identicalPct)
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("I/O cost and query time vs query length (%d records, %s)", n, kind),
		Note:   "paper shape: both curves grow with length; identical siblings cost roughly an order of magnitude more",
		Header: []string{"query length", "avg pages", "avg query time"},
	}
	for size := 2; size <= 12; size += 2 {
		pats := randomQueries(rng, docs, size, cfg.queries())
		if len(pats) == 0 {
			continue
		}
		var pages int64
		start := time.Now()
		for _, p := range pats {
			ix.DropPagerCache()
			if _, err := ix.QueryContext(cfg.ctx(), p); err != nil {
				return nil, err
			}
			pages += ix.PagerStats().DiskAccesses()
		}
		elapsed := time.Since(start)
		t.AddRow(size, float64(pages)/float64(len(pats)), perQuery(elapsed, len(pats)))
	}
	ix.DetachPager()
	return []*Table{t}, nil
}
