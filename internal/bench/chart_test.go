package bench

import (
	"strings"
	"testing"
)

func chartFixture() *Table {
	t := &Table{ID: "figX", Title: "demo", Header: []string{"x", "alpha", "beta", "label"}}
	t.AddRow(0, 10, 1, "a")
	t.AddRow(50, 20, 2, "b")
	t.AddRow(100, 40, 4, "c")
	return t
}

func TestChartRendersSeries(t *testing.T) {
	tb := chartFixture()
	out := tb.Chart(nil)
	if out == "" {
		t.Fatal("empty chart")
	}
	for _, want := range []string{"*=alpha", "o=beta", "x: 0 .. 100", "y max 40"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The non-numeric column is skipped automatically.
	if strings.Contains(out, "label") {
		t.Fatalf("non-numeric column plotted:\n%s", out)
	}
	// Explicit column selection plots only that series.
	only := tb.Chart([]int{2})
	if strings.Contains(only, "alpha") || !strings.Contains(only, "*=beta") {
		t.Fatalf("column selection broken:\n%s", only)
	}
}

func TestChartFirstSeriesVisible(t *testing.T) {
	// Two identical series: the FIRST one's marker must win overlaps.
	tb := &Table{Header: []string{"x", "a", "b"}}
	tb.AddRow(0, 5, 5)
	tb.AddRow(10, 9, 9)
	out := tb.Chart(nil)
	if !strings.Contains(out, "*") {
		t.Fatalf("first series hidden:\n%s", out)
	}
	if strings.Contains(strings.Split(out, "x:")[0], "o") {
		t.Fatalf("overlapping second series should be covered:\n%s", out)
	}
}

func TestChartDurationCells(t *testing.T) {
	tb := &Table{Header: []string{"x", "time"}}
	tb.AddRow(1, "500µs")
	tb.AddRow(2, "1.50ms")
	tb.AddRow(3, "2.00s")
	out := tb.Chart(nil)
	if !strings.Contains(out, "y max 2000") { // milliseconds
		t.Fatalf("duration scaling wrong:\n%s", out)
	}
}

func TestChartDegenerate(t *testing.T) {
	empty := &Table{Header: []string{"x", "y"}}
	if empty.Chart(nil) != "" {
		t.Fatal("empty table should not chart")
	}
	text := &Table{Header: []string{"x", "y"}}
	text.AddRow("a", "b")
	if text.Chart(nil) != "" {
		t.Fatal("non-numeric table should not chart")
	}
	zero := &Table{Header: []string{"x", "y"}}
	zero.AddRow(1, 0)
	if zero.Chart(nil) != "" {
		t.Fatal("all-zero y should not chart")
	}
	single := &Table{Header: []string{"x", "y"}}
	single.AddRow(5, 7)
	if single.Chart(nil) == "" {
		t.Fatal("single point should chart")
	}
}

func TestCellValueParsing(t *testing.T) {
	tb := &Table{Header: []string{"a"}}
	tb.AddRow("42")
	tb.Rows = append(tb.Rows, []string{"1.5ms"}, []string{"2s"}, []string{"7µs"}, []string{"zzz"})
	cases := []struct {
		row  int
		want float64
		ok   bool
	}{
		{0, 42, true}, {1, 1.5, true}, {2, 2000, true}, {3, 0.007, true}, {4, 0, false},
	}
	for _, c := range cases {
		got, ok := cellValue(tb, c.row, 0)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("row %d: got %v,%v want %v,%v", c.row, got, ok, c.want, c.ok)
		}
	}
	if _, ok := cellValue(tb, 99, 0); ok {
		t.Fatal("out of range cell parsed")
	}
}
