package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestReadQueryLog(t *testing.T) {
	in := strings.Join([]string{
		"# a comment",
		"",
		"/site/regions",
		`{"trace":"00deadbeef00","q":"//item/name","elapsed_ms":0.2}`,
		"  //keyword  ",
	}, "\n")
	qs, err := ReadQueryLog(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"/site/regions", "//item/name", "//keyword"}
	if len(qs) != len(want) {
		t.Fatalf("got %d queries %v, want %v", len(qs), qs, want)
	}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("query %d: got %q, want %q", i, qs[i], want[i])
		}
	}
}

func TestReadQueryLogBad(t *testing.T) {
	cases := map[string]string{
		"empty":          "# only comments\n\n",
		"bad json":       "{not json}\n",
		"json missing q": `{"trace":"ab"}` + "\n",
		"bad pattern":    "not a pattern at all >>>\n",
	}
	for name, in := range cases {
		if _, err := ReadQueryLog(strings.NewReader(in)); !errors.Is(err, ErrBadLog) {
			t.Errorf("%s: err = %v, want ErrBadLog", name, err)
		}
	}
}

func TestLoadQueryLogMissing(t *testing.T) {
	if _, err := LoadQueryLog(t.TempDir() + "/absent.log"); !errors.Is(err, ErrBadLog) {
		t.Fatalf("err = %v, want ErrBadLog", err)
	}
}

// fakeXseqd mimics just enough of the server surface for replay: /healthz
// and /query with a JSON count, plus optional 429 shedding.
func fakeXseqd(t *testing.T, shedEvery int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var queries atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		n := queries.Add(1)
		if shedEvery > 0 && n%int64(shedEvery) == 0 {
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"count":%d,"ids":[1,2]}`, 2)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &queries
}

func TestReplayDeterministicCounts(t *testing.T) {
	srv, _ := fakeXseqd(t, 0)
	cfg := ReplayConfig{
		URL:         srv.URL,
		Queries:     []string{"/a/b", "//c", "/a/*"},
		Loops:       3,
		Concurrency: 4,
	}
	first, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Queries != 9 || second.Queries != 9 {
		t.Fatalf("query counts: first %d, second %d, want 9 (3 queries x 3 loops)", first.Queries, second.Queries)
	}
	if first.Distinct != 3 || second.Distinct != 3 {
		t.Fatalf("distinct: first %d, second %d, want 3", first.Distinct, second.Distinct)
	}
	if first.Succeeded != second.Succeeded || first.TotalResults != second.TotalResults {
		t.Fatalf("replays diverged: first %+v, second %+v", first, second)
	}
	if first.Succeeded != 9 || first.TotalResults != 18 {
		t.Fatalf("succeeded %d / results %d, want 9 / 18", first.Succeeded, first.TotalResults)
	}
	if first.AchievedQPS <= 0 || first.P50NS <= 0 || first.P99NS < first.P50NS {
		t.Fatalf("implausible latency summary: %+v", first)
	}
}

func TestReplayCountsSheds(t *testing.T) {
	srv, _ := fakeXseqd(t, 2) // every 2nd request is shed
	res, err := Replay(ReplayConfig{
		URL:         srv.URL,
		Queries:     []string{"/a/b"},
		Loops:       10,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 5 || res.Succeeded != 5 || res.Failed != 0 {
		t.Fatalf("succeeded/shed/failed = %d/%d/%d, want 5/5/0", res.Succeeded, res.Shed, res.Failed)
	}
}

func TestReplayPacing(t *testing.T) {
	srv, _ := fakeXseqd(t, 0)
	// 20 queries at 100 qps: at least ~190ms of schedule to get through.
	start := time.Now()
	res, err := Replay(ReplayConfig{
		URL:         srv.URL,
		Queries:     []string{"/a"},
		Loops:       20,
		Rate:        100,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("paced replay finished in %v; pacing not applied", elapsed)
	}
	if res.AchievedQPS > 150 {
		t.Fatalf("achieved %.1f qps at a 100 qps target", res.AchievedQPS)
	}
}

func TestReplayDeadline(t *testing.T) {
	srv, _ := fakeXseqd(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := Replay(ReplayConfig{
		URL:     srv.URL,
		Queries: []string{"/a"},
		Loops:   100000,
		Rate:    10, // schedule stretches far past the deadline
		Context: ctx,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestGenerateQueryLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := LogGenConfig{Dataset: "xmark", Records: 60, Queries: 40, Skew: 1.3, Seed: 7}
	n, err := GenerateQueryLog(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("wrote %d queries, want 40", n)
	}
	if !strings.HasPrefix(buf.String(), "#") {
		t.Fatalf("log should start with a comment header:\n%s", buf.String())
	}
	qs, err := ReadQueryLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("generated log failed to parse: %v", err)
	}
	if len(qs) != 40 {
		t.Fatalf("parsed %d queries, want 40", len(qs))
	}

	// Same config, same bytes: the generator is deterministic.
	var again bytes.Buffer
	if _, err := GenerateQueryLog(&again, cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("generator is not deterministic for a fixed config")
	}

	// Skewed sampling should repeat hot patterns.
	counts := make(map[string]int)
	for _, q := range qs {
		counts[q]++
	}
	if len(counts) >= 40 {
		t.Fatalf("skew 1.3 produced %d distinct patterns out of 40 draws; expected repeats", len(counts))
	}
}
