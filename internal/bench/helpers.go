package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/trie"
	"xseq/internal/xmltree"
)

// trieNodeCount sequences the corpus with a strategy and returns the trie
// node count — the y-axis of Figures 14/15 and the DF/CS columns of
// Tables 5/6.
func trieNodeCount(docs []*xmltree.Document, st sequence.Strategy) int {
	tr := trie.New()
	for _, d := range docs {
		tr.Insert(st.Sequence(d.Root), d.ID)
	}
	return tr.NumNodes()
}

// strategySet builds the four strategies of Figure 14 over one encoder.
func strategySet(sch *schema.Schema, enc *pathenc.Encoder, docs []*xmltree.Document, seed int64) []sequence.Strategy {
	cs := sequence.NewProbability(sch, enc)
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	cs.SetRepeatPaths(sequence.RepeatPaths(roots, enc))
	return []sequence.Strategy{
		sequence.NewRandom(enc, seed),
		sequence.BreadthFirst{Enc: enc},
		sequence.DepthFirst{Enc: enc},
		cs,
	}
}

// buildCSIndex builds the constraint-sequencing index used by the query
// experiments.
func buildCSIndex(docs []*xmltree.Document, sch *schema.Schema) (*index.Index, *pathenc.Encoder, error) {
	enc := pathenc.NewEncoder(0)
	cs := sequence.NewProbability(sch, enc)
	ix, err := index.Build(docs, index.Options{Encoder: enc, Strategy: cs})
	if err != nil {
		return nil, nil, err
	}
	return ix, enc, nil
}

// corpusNodes counts XML nodes across the corpus (the "Nodes" column of
// Tables 5/6).
func corpusNodes(docs []*xmltree.Document) int {
	total := 0
	for _, d := range docs {
		total += d.Root.Size()
	}
	return total
}

// extractPattern samples a connected sub-pattern of exactly k nodes from a
// document (root included), biased toward including value leaves so the
// resulting queries are selective like the paper's. Returns nil when the
// document has fewer than k nodes.
func extractPattern(rng *rand.Rand, root *xmltree.Node, k int) *query.Pattern {
	if root.Size() < k {
		return nil
	}
	type cand struct {
		node   *xmltree.Node
		parent *xmltree.Node
	}
	chosen := map[*xmltree.Node]bool{root: true}
	var frontier []cand
	for _, c := range root.Children {
		frontier = append(frontier, cand{c, root})
	}
	for len(chosen) < k && len(frontier) > 0 {
		// Prefer value leaves half the time to keep queries selective.
		pick := -1
		if rng.Intn(2) == 0 {
			for i, f := range frontier {
				if f.node.IsValue {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			pick = rng.Intn(len(frontier))
		}
		f := frontier[pick]
		frontier = append(frontier[:pick], frontier[pick+1:]...)
		chosen[f.node] = true
		for _, c := range f.node.Children {
			frontier = append(frontier, cand{c, f.node})
		}
	}
	if len(chosen) < k {
		return nil
	}
	var build func(n *xmltree.Node) *xmltree.Node
	build = func(n *xmltree.Node) *xmltree.Node {
		cp := &xmltree.Node{Name: n.Name, Value: n.Value, IsValue: n.IsValue}
		for _, c := range n.Children {
			if chosen[c] {
				cp.Children = append(cp.Children, build(c))
			}
		}
		return cp
	}
	return query.FromTree(build(root))
}

// randomQueries extracts n patterns of the given size from random corpus
// documents; documents too small are skipped (retries bounded).
func randomQueries(rng *rand.Rand, docs []*xmltree.Document, size, n int) []*query.Pattern {
	var out []*query.Pattern
	for tries := 0; len(out) < n && tries < n*50; tries++ {
		d := docs[rng.Intn(len(docs))]
		if p := extractPattern(rng, d.Root, size); p != nil {
			out = append(out, p)
		}
	}
	return out
}

// timeQueries runs fn once per query and returns the total elapsed time
// and the total result count. ctx is polled between queries so a deadline
// (xseqbench -timeout) aborts the measurement loop.
func timeQueries(ctx context.Context, pats []*query.Pattern, fn func(*query.Pattern) ([]int32, error)) (time.Duration, int, error) {
	start := time.Now()
	results := 0
	for _, p := range pats {
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		ids, err := fn(p)
		if err != nil {
			return 0, 0, fmt.Errorf("query %s: %w", p, err)
		}
		results += len(ids)
	}
	return time.Since(start), results, nil
}

// perQuery divides a total duration by the query count.
func perQuery(total time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	return total / time.Duration(n)
}
