// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a function from a Config to
// one or more Tables whose rows mirror what the paper reports; absolute
// numbers differ (different hardware, simulated disk, scaled datasets) but
// the shapes — who wins, by what factor, where the crossovers are — are
// the reproduction targets recorded in EXPERIMENTS.md.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies the paper's dataset sizes. 1.0 reproduces paper
	// scale (hours of CPU); the default 0.02 keeps every experiment in
	// seconds while preserving the curves' shapes.
	Scale float64
	// Seed drives all data generation.
	Seed int64
	// PoolPages is the buffer-pool capacity for I/O-cost experiments
	// (<= 0: pager.DefaultPoolPages).
	PoolPages int
	// Queries is the number of random queries per measurement point in the
	// query-performance experiments (<= 0: 50).
	Queries int
	// Context, when non-nil, bounds the run: index builds and query loops
	// abort with its error once it is cancelled or its deadline passes
	// (xseqbench -timeout wires it).
	Context context.Context
}

func (c Config) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// poll reports the Context's error; experiments call it at measurement
// boundaries (and strided inside sequencing loops) so a -timeout deadline
// aborts long runs promptly instead of only between experiments.
func (c Config) poll() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.02
	}
	return c.Scale
}

func (c Config) queries() int {
	if c.Queries <= 0 {
		return 50
	}
	return c.Queries
}

// scaled applies the scale to a paper-sized count, keeping at least min.
func (c Config) scaled(paperCount, min int) int {
	n := int(float64(paperCount) * c.scale())
	if n < min {
		n = min
	}
	return n
}

// Table is one experiment's output in paper-like tabular form.
type Table struct {
	ID     string // "fig14a", "table7", ...
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Experiment names one reproducible table/figure.
type Experiment struct {
	ID    string
	Short string
	Run   func(Config) ([]*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig14a", "Index size vs dataset size, L3F5A25I0P40, 4 strategies", Figure14a},
		{"fig14b", "Index size vs dataset size, L5F3A40I0P5, 4 strategies", Figure14b},
		{"fig15", "Impact of identical sibling nodes on index size", Figure15},
		{"table5", "XMark index size with identical sibling nodes", Table5},
		{"table6", "XMark index size without identical sibling nodes", Table6},
		{"table7", "Query performance on XMark (Q1-Q3)", Table7},
		{"table8", "Query performance on DBLP: paths vs nodes vs CS", Table8},
		{"fig16a", "CS query time vs dataset size", Figure16a},
		{"fig16b", "CS vs ViST query time vs query length", Figure16b},
		{"fig16c", "I/O cost and time vs query length, no identical siblings", Figure16c},
		{"fig16d", "I/O cost and time vs query length, with identical siblings", Figure16d},
		{"compression", "Index size to compressed data size ratios (Section 6.2)", CompressionRatios},
		{"ablation-pool", "ABLATION: disk accesses vs buffer-pool size", AblationPool},
		{"ablation-valuespace", "ABLATION: value hash space vs collision false positives", AblationValueSpace},
		{"ablation-enum", "ABLATION: sibling-order enumeration limit vs recall", AblationEnumeration},
		{"ablation-build", "ABLATION: incremental vs bulk load vs dynamic build", AblationBuild},
		{"ablation-blocking", "ABLATION: repeat-path vs per-instance blocking (size vs recall)", AblationBlocking},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
