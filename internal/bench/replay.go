// Workload replay: drive a recorded query log against a live xseqd at a
// target rate and report achieved throughput plus latency percentiles.
// The log format is one query per line — either plain pattern strings or
// the JSON lines xseqd's -trace-log emits (the "q" field is extracted) —
// with '#' comments ignored, so a production trace can be replayed
// verbatim and a synthetic skewed log (GenerateQueryLog) uses the same
// shape.
package bench

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"xseq/internal/query"
)

// ErrBadLog reports an unreadable, malformed, or empty query log. The CLI
// maps it to the usage exit code (2): the input is wrong, not the server.
var ErrBadLog = errors.New("bench: bad query log")

// ReadQueryLog parses a query log: one query per line, '#' comments and
// blank lines skipped. Lines starting with '{' are treated as trace-log
// JSON records and must carry a "q" field. Every query must parse as a
// pattern — a log of garbage fails here, before any request is sent.
func ReadQueryLog(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q := line
		if strings.HasPrefix(line, "{") {
			var rec struct {
				Q string `json:"q"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
			}
			if rec.Q == "" {
				return nil, fmt.Errorf("%w: line %d: trace record has no q field", ErrBadLog, lineNo)
			}
			q = rec.Q
		}
		if _, err := query.Parse(q); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadLog, lineNo, err)
		}
		out = append(out, q)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLog, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no queries", ErrBadLog)
	}
	return out, nil
}

// LoadQueryLog reads a query log file; any failure wraps ErrBadLog.
func LoadQueryLog(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadLog, err)
	}
	defer f.Close()
	qs, err := ReadQueryLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return qs, nil
}

// ReplayConfig drives Replay.
type ReplayConfig struct {
	// URL is the xseqd base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// LogPath names the query log; Queries, when non-nil, bypasses it.
	LogPath string
	Queries []string
	// Rate is the target dispatch rate in queries/sec (0: unpaced — as
	// fast as Concurrency workers complete requests).
	Rate float64
	// Concurrency is the worker count (<= 0: 8).
	Concurrency int
	// Loops replays the whole log this many times (<= 0: 1).
	Loops int
	// Timeout caps each request (<= 0: 10s).
	Timeout time.Duration
	// Context bounds the whole run; its deadline error is returned so the
	// CLI can map it to the timeout exit code.
	Context context.Context
}

// ReplayResult is the -json replay summary.
type ReplayResult struct {
	URL          string  `json:"url"`
	Log          string  `json:"log,omitempty"`
	Distinct     int     `json:"distinct_queries"`
	Loops        int     `json:"loops"`
	Queries      int     `json:"queries"`
	Succeeded    int     `json:"succeeded"`
	Failed       int     `json:"failed"`
	Shed         int     `json:"shed"`
	TotalResults int64   `json:"total_results"`
	TargetQPS    float64 `json:"target_qps,omitempty"`
	AchievedQPS  float64 `json:"achieved_qps"`
	DurationNS   int64   `json:"duration_ns"`
	P50NS        int64   `json:"p50_ns"`
	P95NS        int64   `json:"p95_ns"`
	P99NS        int64   `json:"p99_ns"`
}

// Replay loads the log, probes the server, and drives the queries at the
// target rate through a bounded worker pool. Queries counts every request
// attempted — with an intact run it is exactly len(log)·Loops, so two
// replays of the same log report identical query counts. A 429 counts as
// shed (the admission gate doing its job), not failed.
func Replay(cfg ReplayConfig) (*ReplayResult, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	queries := cfg.Queries
	if queries == nil {
		var err error
		queries, err = LoadQueryLog(cfg.LogPath)
		if err != nil {
			return nil, err
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("%w: no queries", ErrBadLog)
	}
	loops := cfg.Loops
	if loops <= 0 {
		loops = 1
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	reqTimeout := cfg.Timeout
	if reqTimeout <= 0 {
		reqTimeout = 10 * time.Second
	}
	base := strings.TrimSuffix(cfg.URL, "/")
	client := &http.Client{Timeout: reqTimeout}

	// Probe first so an unreachable server is one clean error (the CLI's
	// exit 1), not a thousand failed requests.
	probeCtx, cancelProbe := context.WithTimeout(ctx, reqTimeout)
	defer cancelProbe()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return nil, fmt.Errorf("bench: bad replay URL %q: %w", cfg.URL, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("bench: server %s unreachable: %w", cfg.URL, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()

	type workerStat struct {
		lats    []int64
		ok      int
		failed  int
		shed    int
		results int64
	}
	total := loops * len(queries)
	jobs := make(chan string)
	stats := make([]workerStat, conc)
	var wg sync.WaitGroup
	for wi := 0; wi < conc; wi++ {
		wg.Add(1)
		go func(ws *workerStat) {
			defer wg.Done()
			for q := range jobs {
				t0 := time.Now()
				code, n, err := replayQuery(ctx, client, base, q)
				ws.lats = append(ws.lats, time.Since(t0).Nanoseconds())
				switch {
				case err != nil:
					ws.failed++
				case code == http.StatusOK:
					ws.ok++
					ws.results += int64(n)
				case code == http.StatusTooManyRequests:
					ws.shed++
				default:
					ws.failed++
				}
			}
		}(&stats[wi])
	}

	// The dispatcher paces by absolute schedule (start + n·interval), so a
	// slow burst is caught up instead of compounding drift.
	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}
	start := time.Now()
	var ctxErr error
dispatch:
	for n := 0; n < total; n++ {
		if interval > 0 {
			if d := time.Until(start.Add(time.Duration(n) * interval)); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					ctxErr = ctx.Err()
					break dispatch
				}
			}
		}
		select {
		case jobs <- queries[n%len(queries)]:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	dur := time.Since(start)
	if ctxErr != nil {
		return nil, fmt.Errorf("bench: replay aborted: %w", ctxErr)
	}

	res := &ReplayResult{
		URL:        cfg.URL,
		Log:        cfg.LogPath,
		Distinct:   distinctQueries(queries),
		Loops:      loops,
		Queries:    total,
		TargetQPS:  cfg.Rate,
		DurationNS: dur.Nanoseconds(),
	}
	var lats []int64
	for i := range stats {
		ws := &stats[i]
		res.Succeeded += ws.ok
		res.Failed += ws.failed
		res.Shed += ws.shed
		res.TotalResults += ws.results
		lats = append(lats, ws.lats...)
	}
	if secs := dur.Seconds(); secs > 0 {
		res.AchievedQPS = float64(total) / secs
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.P50NS = percentileNS(lats, 50)
	res.P95NS = percentileNS(lats, 95)
	res.P99NS = percentileNS(lats, 99)
	return res, nil
}

// replayQuery issues one /query request; a non-200 drains and discards
// the body so the connection can be reused.
func replayQuery(ctx context.Context, client *http.Client, base, q string) (code, count int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/query?q="+url.QueryEscape(q), nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return resp.StatusCode, 0, nil
	}
	var body struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return resp.StatusCode, 0, err
	}
	return resp.StatusCode, body.Count, nil
}

func distinctQueries(qs []string) int {
	seen := make(map[string]bool, len(qs))
	for _, q := range qs {
		seen[q] = true
	}
	return len(seen)
}

// LogGenConfig drives GenerateQueryLog.
type LogGenConfig struct {
	// Dataset and Records shape the corpus the patterns are extracted
	// from — use the same values the served snapshot was built with so the
	// replayed queries hit real paths.
	Dataset string
	Records int
	// Queries is the number of log lines to write (<= 0: 100).
	Queries int
	// QuerySize is the pattern node count (<= 0: 3).
	QuerySize int
	// Skew > 1 draws patterns from a Zipf distribution with that exponent
	// (hot patterns repeat, like production traffic); <= 1 draws uniformly.
	Skew float64
	// Seed fixes corpus generation and sampling (0: 42).
	Seed int64
}

// GenerateQueryLog writes a synthetic query log: a pool of distinct
// patterns extracted from a deterministic corpus, sampled with the
// configured skew. Returns the number of query lines written. The whole
// log is a pure function of the config, so a replay of a generated log is
// reproducible end to end.
func GenerateQueryLog(w io.Writer, cfg LogGenConfig) (int, error) {
	records := cfg.Records
	if records <= 0 {
		records = 1000
	}
	nq := cfg.Queries
	if nq <= 0 {
		nq = 100
	}
	size := cfg.QuerySize
	if size <= 0 {
		size = 3
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	docs, err := scaleCorpus(cfg.Dataset, records, seed)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	pool := randomQueries(rng, docs, size, 64)
	seen := make(map[string]bool, len(pool))
	var canon []string
	for _, p := range pool {
		s := p.String()
		if !seen[s] {
			seen[s] = true
			canon = append(canon, s)
		}
	}
	if len(canon) == 0 {
		return 0, fmt.Errorf("bench: could not extract any patterns from dataset %q", cfg.Dataset)
	}
	if _, err := fmt.Fprintf(w, "# xseq query log: dataset=%s records=%d patterns=%d skew=%g seed=%d\n",
		cfg.Dataset, records, len(canon), cfg.Skew, seed); err != nil {
		return 0, err
	}
	var pick func() string
	if cfg.Skew > 1 {
		z := rand.NewZipf(rng, cfg.Skew, 1, uint64(len(canon)-1))
		pick = func() string { return canon[z.Uint64()] }
	} else {
		pick = func() string { return canon[rng.Intn(len(canon))] }
	}
	for i := 0; i < nq; i++ {
		if _, err := fmt.Fprintln(w, pick()); err != nil {
			return i, err
		}
	}
	return nq, nil
}
