package bench

import (
	"fmt"
	"strconv"
	"strings"
)

// ASCII chart rendering, so the figure experiments can be eyeballed the way
// the paper presents them. A Table with a numeric first column (x) and one
// or more numeric series columns renders as a fixed-size scatter of series
// markers.

// chartWidth and chartHeight size the plot area in character cells.
const (
	chartWidth  = 64
	chartHeight = 16
)

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the table's columns as an ASCII plot: column 0 is the
// x-axis; cols selects the series to draw (nil: every numeric column after
// the first). Non-numeric cells are skipped. Returns "" when nothing is
// plottable.
func (t *Table) Chart(cols []int) string {
	if len(t.Rows) == 0 {
		return ""
	}
	if cols == nil {
		for c := 1; c < len(t.Header); c++ {
			if _, ok := cellValue(t, 0, c); ok {
				cols = append(cols, c)
			}
		}
	}
	type point struct {
		x, y float64
	}
	series := make([][]point, len(cols))
	var xMin, xMax, yMax float64
	first := true
	for r := range t.Rows {
		x, ok := cellValue(t, r, 0)
		if !ok {
			continue
		}
		for si, c := range cols {
			y, ok := cellValue(t, r, c)
			if !ok {
				continue
			}
			series[si] = append(series[si], point{x, y})
			if first {
				xMin, xMax, yMax = x, x, y
				first = false
			}
			if x < xMin {
				xMin = x
			}
			if x > xMax {
				xMax = x
			}
			if y > yMax {
				yMax = y
			}
		}
	}
	if first || yMax <= 0 {
		return ""
	}
	grid := make([][]byte, chartHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartWidth))
	}
	span := xMax - xMin
	// Later series draw first so earlier (usually primary) columns stay
	// visible where points overlap.
	for si := len(series) - 1; si >= 0; si-- {
		pts := series[si]
		mark := seriesMarks[si%len(seriesMarks)]
		for _, p := range pts {
			var cx int
			if span > 0 {
				cx = int((p.x - xMin) / span * float64(chartWidth-1))
			}
			cy := chartHeight - 1 - int(p.y/yMax*float64(chartHeight-1))
			if cx >= 0 && cx < chartWidth && cy >= 0 && cy < chartHeight {
				grid[cy][cx] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y max %s)\n", t.Title, formatFloat(yMax))
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +")
	b.WriteString(strings.Repeat("-", chartWidth))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "   x: %s .. %s", formatFloat(xMin), formatFloat(xMax))
	b.WriteString("   series:")
	for si, c := range cols {
		if c < len(t.Header) {
			fmt.Fprintf(&b, " %c=%s", seriesMarks[si%len(seriesMarks)], t.Header[c])
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// cellValue parses a numeric cell; durations ("1.49ms", "46µs", "2.52s")
// convert to milliseconds.
func cellValue(t *Table, row, col int) (float64, bool) {
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return 0, false
	}
	s := strings.TrimSpace(t.Rows[row][col])
	// Longest suffix first: "µs" and "ms" before plain "s".
	suffixes := []struct {
		suffix string
		scale  float64
	}{{"µs", 1e-3}, {"ms", 1}, {"s", 1e3}}
	for _, sf := range suffixes {
		if strings.HasSuffix(s, sf.suffix) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(s, sf.suffix), 64)
			if err != nil {
				return 0, false
			}
			return v * sf.scale, true
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
