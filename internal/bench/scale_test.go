package bench

import "testing"

// TestShardScaleFlatPass runs a small ShardScale and checks the flat-layout
// fields: the flat snapshot must answer equivalently, report real open and
// size figures, and touch no more pages than the file holds.
func TestShardScaleFlatPass(t *testing.T) {
	res, err := ShardScale(ScaleConfig{
		Dataset: "L3F5A25I0P40",
		Records: 120,
		Shards:  2,
		Queries: 10,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || !res.CacheEquivalent || !res.FlatEquivalent {
		t.Fatalf("equivalence flags: %+v", res)
	}
	if res.MonoLoadNS <= 0 || res.FlatLoadNS <= 0 {
		t.Fatalf("load timings missing: mono %d, flat %d", res.MonoLoadNS, res.FlatLoadNS)
	}
	if res.MonoSnapshotBytes <= 0 || res.FlatBytesMapped <= 0 {
		t.Fatalf("snapshot sizes missing: mono %d, flat %d", res.MonoSnapshotBytes, res.FlatBytesMapped)
	}
	if res.FlatBytesResident <= 0 || res.FlatBytesResident > res.FlatBytesMapped+4095 {
		t.Fatalf("resident %d bytes outside (0, mapped %d]", res.FlatBytesResident, res.FlatBytesMapped)
	}
	if res.FlatQueryP50NS <= 0 || res.FlatQueryP95NS < res.FlatQueryP50NS {
		t.Fatalf("flat latency distribution: p50 %d, p95 %d", res.FlatQueryP50NS, res.FlatQueryP95NS)
	}
	if res.FlatAllocsPerOp <= 0 {
		t.Fatalf("flat alloc profile missing: %f", res.FlatAllocsPerOp)
	}
}
