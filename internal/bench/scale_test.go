package bench

import "testing"

// TestShardScaleFlatPass runs a small ShardScale and checks the flat-layout
// fields: the flat snapshot must answer equivalently, report real open and
// size figures, and touch no more pages than the file holds.
func TestShardScaleFlatPass(t *testing.T) {
	res, err := ShardScale(ScaleConfig{
		Dataset: "L3F5A25I0P40",
		Records: 120,
		Shards:  2,
		Queries: 10,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || !res.CacheEquivalent || !res.FlatEquivalent {
		t.Fatalf("equivalence flags: %+v", res)
	}
	if res.MonoLoadNS <= 0 || res.FlatLoadNS <= 0 {
		t.Fatalf("load timings missing: mono %d, flat %d", res.MonoLoadNS, res.FlatLoadNS)
	}
	if res.MonoSnapshotBytes <= 0 || res.FlatBytesMapped <= 0 {
		t.Fatalf("snapshot sizes missing: mono %d, flat %d", res.MonoSnapshotBytes, res.FlatBytesMapped)
	}
	if res.FlatBytesResident <= 0 || res.FlatBytesResident > res.FlatBytesMapped+4095 {
		t.Fatalf("resident %d bytes outside (0, mapped %d]", res.FlatBytesResident, res.FlatBytesMapped)
	}
	if res.FlatQueryP50NS <= 0 || res.FlatQueryP95NS < res.FlatQueryP50NS {
		t.Fatalf("flat latency distribution: p50 %d, p95 %d", res.FlatQueryP50NS, res.FlatQueryP95NS)
	}
	if res.FlatAllocsPerOp <= 0 {
		t.Fatalf("flat alloc profile missing: %f", res.FlatAllocsPerOp)
	}
}

// TestShardScaleTunedPass checks the adaptive-resequencing section of the
// benchmark: a Zipf mix is sampled, a weight vector derived, a weighted
// index rebuilt, and the tuned index must answer the whole skewed mix
// exactly like the untuned one while reporting real timings.
func TestShardScaleTunedPass(t *testing.T) {
	res, err := ShardScale(ScaleConfig{
		Dataset: "L3F5A25I0P40",
		Records: 120,
		Shards:  2,
		Queries: 12,
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TunedEquivalent {
		t.Fatal("tuned index diverged from untuned")
	}
	if res.SkewExponent <= 1 {
		t.Fatalf("skew exponent %f not recorded", res.SkewExponent)
	}
	if len(res.TunedWeights) == 0 {
		t.Fatal("no weights derived from the skewed mix")
	}
	for path, w := range res.TunedWeights {
		if w <= 1 {
			t.Fatalf("weight %q = %f not a boost", path, w)
		}
	}
	if res.TunedBuildNS <= 0 {
		t.Fatalf("tuned build timing missing: %d", res.TunedBuildNS)
	}
	if res.UntunedSkewP50NS <= 0 || res.UntunedSkewP95NS < res.UntunedSkewP50NS {
		t.Fatalf("untuned skew distribution: p50 %d, p95 %d", res.UntunedSkewP50NS, res.UntunedSkewP95NS)
	}
	if res.TunedSkewP50NS <= 0 || res.TunedSkewP95NS < res.TunedSkewP50NS {
		t.Fatalf("tuned skew distribution: p50 %d, p95 %d", res.TunedSkewP50NS, res.TunedSkewP95NS)
	}
	if res.TunedSpeedupP50 <= 0 {
		t.Fatalf("speedup ratio missing: %f", res.TunedSpeedupP50)
	}
}
