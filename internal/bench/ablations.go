package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"xseq/internal/datagen"
	"xseq/internal/engine"
	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

func schemaInfer(roots []*xmltree.Node) (*schema.Schema, error) {
	return schema.Infer(roots)
}

// Ablations: not paper figures, but measurements of the design choices the
// implementation makes (DESIGN.md section 5) — buffer-pool sizing, value
// hash-space sizing, identical-sibling order-enumeration limits, and the
// build paths (incremental vs bulk load vs dynamic insert+compact).

// AblationPool sweeps the buffer-pool capacity for a fixed query workload,
// showing where the working set fits (disk accesses flatten).
func AblationPool(cfg Config) ([]*Table, error) {
	n := cfg.scaled(100_000, 2_000)
	params := datagen.SynthParams{L: 3, F: 5, A: 25, I: 10, P: 40, Seed: cfg.Seed}
	sch, docs, err := datagen.Synth(params, n)
	if err != nil {
		return nil, err
	}
	ix, _, err := buildCSIndex(docs, sch)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	pats := randomQueries(rng, docs, 6, cfg.queries())
	t := &Table{
		ID:     "ablation-pool",
		Title:  fmt.Sprintf("Disk accesses vs buffer-pool pages (%d records, %d queries, warm pool)", n, len(pats)),
		Note:   "expected: misses fall as the pool grows, then flatten once the working set is resident",
		Header: []string{"pool pages", "disk accesses", "hit ratio"},
	}
	for _, pages := range []int{16, 32, 64, 128, 256, 512, 1024} {
		pool := pager.NewPool(pages)
		if _, err := ix.AttachPager(pool); err != nil {
			return nil, err
		}
		// Warm-pool measurement: one pass to warm, one measured pass.
		for _, p := range pats {
			if _, err := ix.QueryContext(cfg.ctx(), p); err != nil {
				return nil, err
			}
		}
		ix.ResetPagerStats()
		for _, p := range pats {
			if _, err := ix.QueryContext(cfg.ctx(), p); err != nil {
				return nil, err
			}
		}
		s := ix.PagerStats()
		t.AddRow(pages, s.DiskAccesses(), s.HitRatio())
		ix.DetachPager()
	}
	return []*Table{t}, nil
}

// AblationValueSpace sweeps the atomic value hash space, measuring the
// false positives hash-bucket collisions introduce (answers vs verified
// answers) — the cost of the paper's h(value) representation.
func AblationValueSpace(cfg Config) ([]*Table, error) {
	n := cfg.scaled(200_000, 4_000)
	sch, docs, err := datagen.DBLP(datagen.DBLPOptions{Seed: cfg.Seed}, n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 32))
	t := &Table{
		ID:     "ablation-valuespace",
		Title:  fmt.Sprintf("Value hash-space size vs collision false positives (%d records)", n),
		Note:   "designator-level answers minus verified answers = hash-collision false positives",
		Header: []string{"value space", "answers", "verified", "false positives"},
	}
	// A workload of selective value queries.
	var queries []string
	for i := 0; i < 15; i++ {
		queries = append(queries, fmt.Sprintf("//author[text='author%d']", 10+rng.Intn(500)))
	}
	for _, space := range []int{16, 64, 256, 1000, 1 << 14, 1 << 20} {
		enc := pathenc.NewEncoder(space)
		st := sequence.NewProbability(sch, enc)
		ix, err := index.Build(docs, index.Options{Encoder: enc, Strategy: st, KeepDocuments: true})
		if err != nil {
			return nil, err
		}
		answers, verified := 0, 0
		for _, q := range queries {
			pat, err := query.Parse(q)
			if err != nil {
				return nil, err
			}
			ids, err := ix.QueryContext(cfg.ctx(), pat)
			if err != nil {
				return nil, err
			}
			answers += len(ids)
			vids, err := ix.QueryWith(pat, index.QueryOptions{Verify: true})
			if err != nil {
				return nil, err
			}
			verified += len(vids)
		}
		t.AddRow(space, answers, verified, answers-verified)
	}
	return []*Table{t}, nil
}

// AblationEnumeration sweeps the identical-sibling order-enumeration limit,
// measuring recall on queries with identical branches — the false-dismissal
// remedy's budget/recall trade-off.
func AblationEnumeration(cfg Config) ([]*Table, error) {
	n := cfg.scaled(100_000, 2_000)
	params := datagen.SynthParams{L: 3, F: 4, A: 20, I: 60, P: 60, Seed: cfg.Seed}
	sch, docs, err := datagen.Synth(params, n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 33))
	// Queries with identical sibling branches, extracted from documents.
	probeEnc := pathenc.NewEncoder(1 << 20)
	var pats []*query.Pattern
	for tries := 0; len(pats) < cfg.queries() && tries < cfg.queries()*200; tries++ {
		d := docs[rng.Intn(len(docs))]
		p := extractPattern(rng, d.Root, 6)
		if p == nil {
			continue
		}
		tree, err := p.ToTree()
		if err != nil {
			continue
		}
		if !sequence.HasIdenticalSiblings(tree, probeEnc) {
			continue
		}
		pats = append(pats, p)
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("bench: no identical-sibling queries found; raise I or the corpus size")
	}
	t := &Table{
		ID:     "ablation-enum",
		Title:  fmt.Sprintf("Order-enumeration limit vs recall (%d records, %d identical-sibling queries)", n, len(pats)),
		Note:   "recall = answers at the limit / answers with an effectively unbounded limit",
		Header: []string{"enum limit", "answers", "recall", "total time"},
	}
	limits := []int{1, 2, 4, 16, 64, 1024}
	baseline := -1
	for _, limit := range limits {
		enc := pathenc.NewEncoder(1 << 20)
		st := sequence.NewProbability(sch, enc)
		ix, err := index.Build(docs, index.Options{
			Encoder: enc, Strategy: st, OrderEnumerationLimit: limit,
		})
		if err != nil {
			return nil, err
		}
		answers := 0
		start := time.Now()
		for _, p := range pats {
			ids, err := ix.QueryContext(cfg.ctx(), p)
			if err != nil {
				return nil, err
			}
			answers += len(ids)
		}
		elapsed := time.Since(start)
		if limit == limits[len(limits)-1] {
			baseline = answers
		}
		t.AddRow(limit, answers, -1.0, elapsed)
	}
	// Fill recall now that the unbounded baseline is known.
	for i := range t.Rows {
		answers := 0
		fmt.Sscan(t.Rows[i][1], &answers)
		if baseline > 0 {
			t.Rows[i][2] = formatFloat(float64(answers) / float64(baseline))
		} else {
			t.Rows[i][2] = "n/a"
		}
	}
	return []*Table{t}, nil
}

// AblationBlocking quantifies the library's one deliberate deviation from
// the paper (EXPERIMENTS.md "documented deviations"): corpus repeat-path
// blocking versus the paper's literal per-instance blocking. Per-instance
// blocking gives sequences more ordering freedom (smaller index — the
// paper's Table 5 ratio), but on corpora mixing multiplicities it makes
// query order incompatible with some documents' data order, and recall
// drops below 1.
func AblationBlocking(cfg Config) ([]*Table, error) {
	n := cfg.scaled(50_000, 2_000)
	// A family dense in repeatable paths whose multiplicity varies across
	// documents — the configuration where per-instance blocking breaks
	// query-order compatibility.
	params := datagen.SynthParams{L: 3, F: 4, A: 30, I: 50, P: 40, Seed: cfg.Seed}
	_, docs, err := datagen.Synth(params, n)
	if err != nil {
		return nil, err
	}
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	infSchema, err := schemaInfer(roots)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 34))
	pats := randomQueries(rng, docs, 6, cfg.queries()*4)
	t := &Table{
		ID:    "ablation-blocking",
		Title: fmt.Sprintf("Repeat-path vs per-instance blocking (%d %s records, %d queries)", n, params.Name(), len(pats)),
		Note: "recall = answers / ground-truth answers; per-instance blocking is the paper's literal " +
			"Algorithm 2 and is smaller but incomplete on mixed-multiplicity corpora",
		Header: []string{"blocking", "trie nodes", "answers", "truth", "recall"},
	}
	for _, perInstance := range []bool{false, true} {
		enc := pathenc.NewEncoder(1 << 20)
		st := sequence.NewProbability(infSchema, enc)
		st.PerInstanceBlocking = perInstance
		ix, err := index.Build(docs, index.Options{Encoder: enc, Strategy: st})
		if err != nil {
			return nil, err
		}
		answers, truth := 0, 0
		for _, p := range pats {
			ids, err := ix.QueryContext(cfg.ctx(), p)
			if err != nil {
				return nil, err
			}
			answers += len(ids)
			truth += len(groundTruthIDs(docs, p, enc))
		}
		name := "repeat-path (ours)"
		if perInstance {
			name = "per-instance (paper)"
		}
		recall := "n/a"
		if truth > 0 {
			recall = formatFloat(float64(answers) / float64(truth))
		}
		t.AddRow(name, ix.NumNodes(), answers, truth, recall)
	}
	return []*Table{t}, nil
}

// groundTruthIDs evaluates a pattern at designator level (canonicalized
// values on both sides), matching the engines' semantics.
func groundTruthIDs(docs []*xmltree.Document, p *query.Pattern, enc *pathenc.Encoder) []int32 {
	canon := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		canon[i] = &xmltree.Document{ID: d.ID, Root: sequence.CanonicalizeValues(d.Root, enc)}
	}
	cp := canonicalizePatternValues(p, enc)
	return query.Eval(canon, cp)
}

func canonicalizePatternValues(p *query.Pattern, enc *pathenc.Encoder) *query.Pattern {
	var clone func(n *query.PNode) *query.PNode
	clone = func(n *query.PNode) *query.PNode {
		cp := &query.PNode{Axis: n.Axis, Wildcard: n.Wildcard, Name: n.Name, IsValue: n.IsValue, Value: n.Value, Prefix: n.Prefix}
		if n.IsValue && !n.Prefix {
			cp.Value = enc.SymbolName(enc.ValueSymbol(n.Value))
		}
		for _, c := range n.Children {
			cp.Children = append(cp.Children, clone(c))
		}
		return cp
	}
	return &query.Pattern{Root: clone(p.Root), Text: p.Text}
}

// AblationBuild compares the three build paths: incremental insertion, bulk
// load (sorted), and dynamic insert + compaction.
func AblationBuild(cfg Config) ([]*Table, error) {
	n := cfg.scaled(200_000, 4_000)
	params := datagen.SynthParams{L: 3, F: 5, A: 25, I: 10, P: 40, Seed: cfg.Seed}
	sch, docs, err := datagen.Synth(params, n)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-build",
		Title:  fmt.Sprintf("Build paths over %d records", n),
		Note:   "node counts must agree; bulk load sorts sequences first (the paper's static-data path)",
		Header: []string{"path", "build time", "trie nodes"},
	}
	run := func(name string, bulk bool) error {
		enc := pathenc.NewEncoder(0)
		st := sequence.NewProbability(sch, enc)
		start := time.Now()
		ix, err := index.Build(docs, index.Options{Encoder: enc, Strategy: st, BulkLoad: bulk})
		if err != nil {
			return err
		}
		t.AddRow(name, time.Since(start), ix.NumNodes())
		return nil
	}
	if err := run("incremental insert", false); err != nil {
		return nil, err
	}
	if err := run("bulk load (sorted)", true); err != nil {
		return nil, err
	}
	// Dynamic: insert everything through the updatable wrapper, compacting
	// at the default threshold, then force a final compaction.
	builder := func(ctx context.Context, ds []*xmltree.Document) (engine.Engine, error) {
		enc := pathenc.NewEncoder(0)
		st := sequence.NewProbability(sch, enc)
		return index.BuildContext(ctx, ds, index.Options{Encoder: enc, Strategy: st})
	}
	start := time.Now()
	dyn, err := engine.NewDynamic(builder, nil, n/4)
	if err != nil {
		return nil, err
	}
	for _, d := range docs {
		if err := dyn.InsertContext(cfg.ctx(), d); err != nil {
			return nil, err
		}
	}
	if err := dyn.Compact(); err != nil {
		return nil, err
	}
	t.AddRow("dynamic insert+compact", time.Since(start), dyn.NumNodes())
	return []*Table{t}, nil
}
