package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	"xseq/internal/adapt"
	"xseq/internal/datagen"
	"xseq/internal/engine"
	"xseq/internal/flat"
	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/qcache"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/shard"
	"xseq/internal/telemetry"
	"xseq/internal/xmltree"
)

// ScaleConfig configures the sharded-scaling benchmark (xseqbench -json):
// one corpus built monolithically and sharded, timed, equivalence-checked,
// and a query latency distribution over the sharded index.
type ScaleConfig struct {
	// Dataset names the corpus: "xmark", "dblp", or a synthetic name like
	// "L3F5A25I0P40" (default "xmark").
	Dataset string
	// Records is the corpus size (<= 0: 1000).
	Records int
	// Shards is the partition count (<= 0: runtime.GOMAXPROCS(0)).
	Shards int
	// Workers bounds concurrent shard builds (<= 0: runtime.GOMAXPROCS(0)).
	Workers int
	// Queries is the number of random queries timed (<= 0: 50).
	Queries int
	// CacheEntries bounds the query-result cache used by the
	// repeated-pattern cached-vs-uncached pass (<= 0: qcache.DefaultEntries).
	CacheEntries int
	// Seed drives data generation and query sampling.
	Seed int64
	// Context, when non-nil, bounds the run.
	Context context.Context
}

// ScaleResult is the machine-readable benchmark record -json emits: enough
// to plot build scaling and query latency against shard/worker counts, and
// an Equivalent flag asserting the sharded index answered every sampled
// query exactly like the monolithic one.
type ScaleResult struct {
	Dataset           string  `json:"dataset"`
	Records           int     `json:"records"`
	Shards            int     `json:"shards"`
	Workers           int     `json:"workers"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Queries           int     `json:"queries"`
	MonolithicBuildNS int64   `json:"monolithic_build_ns"`
	ShardedBuildNS    int64   `json:"sharded_build_ns"`
	BuildSpeedup      float64 `json:"build_speedup"`
	QueryP50NS        int64   `json:"query_p50_ns"`
	QueryP95NS        int64   `json:"query_p95_ns"`
	Matches           int     `json:"matches"`
	IndexNodes        int     `json:"index_nodes"`
	Equivalent        bool    `json:"equivalent"`

	// Steady-state allocation profile of the query path (warm index, the
	// same sampled patterns as the latency pass): heap allocations and bytes
	// per query, monolithic and sharded. The perf trajectory across PRs is
	// recorded in BENCH_*.json snapshots.
	MonoAllocsPerOp float64 `json:"mono_allocs_per_op"`
	MonoBytesPerOp  float64 `json:"mono_bytes_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`

	// Repeated-pattern workload through the qcache layer vs straight at the
	// sharded index: same patterns, same order, so the latency gap is the
	// cache's doing. CacheEquivalent asserts byte-identical id lists.
	CacheEntries       int   `json:"cache_entries"`
	UncachedQueryP50NS int64 `json:"uncached_query_p50_ns"`
	UncachedQueryP95NS int64 `json:"uncached_query_p95_ns"`
	CachedQueryP50NS   int64 `json:"cached_query_p50_ns"`
	CachedQueryP95NS   int64 `json:"cached_query_p95_ns"`
	CacheHits          int64 `json:"cache_hits"`
	CacheMisses        int64 `json:"cache_misses"`
	CacheEquivalent    bool  `json:"cache_equivalent"`

	// Flat-layout pass: the monolithic image persisted in both formats,
	// each timed through a cold open. The heap load decodes the whole index
	// into memory; the flat open only reads its dictionary head and maps
	// the rest, so FlatLoadNS stays O(dictionary) as Records grows — the
	// open-time gap is the flat format's point. FlatBytesResident counts
	// the distinct 4 KiB pages the sampled queries touched (page-accounting
	// attached), against FlatBytesMapped, the whole file. FlatEquivalent
	// asserts the flat kernel answered every sampled query exactly like the
	// monolithic index.
	MonoSnapshotBytes int64   `json:"mono_snapshot_bytes"`
	MonoLoadNS        int64   `json:"mono_load_ns"`
	FlatLoadNS        int64   `json:"flat_load_ns"`
	FlatBytesMapped   int64   `json:"flat_bytes_mapped"`
	FlatBytesResident int64   `json:"flat_bytes_resident"`
	FlatQueryP50NS    int64   `json:"flat_query_p50_ns"`
	FlatQueryP95NS    int64   `json:"flat_query_p95_ns"`
	FlatAllocsPerOp   float64 `json:"flat_allocs_per_op"`
	FlatBytesPerOp    float64 `json:"flat_bytes_per_op"`
	FlatEquivalent    bool    `json:"flat_equivalent"`

	// Tuned pass — the adaptive-resequencing loop run offline: a
	// Zipf-skewed query mix is sampled from the pattern pool, its
	// frequency table derives the Eq 6 weight vector (exactly what the
	// server's resequencer does online), and a weighted index is rebuilt
	// around it. The same skewed mix is then timed against the untuned and
	// tuned indexes; TunedEquivalent asserts byte-identical id lists —
	// re-sequencing reorders storage, never answers.
	SkewExponent      float64            `json:"skew_exponent"`
	TunedWeights      map[string]float64 `json:"tuned_weights,omitempty"`
	TunedBuildNS      int64              `json:"tuned_build_ns"`
	UntunedSkewP50NS  int64              `json:"untuned_skew_p50_ns"`
	UntunedSkewP95NS  int64              `json:"untuned_skew_p95_ns"`
	TunedSkewP50NS    int64              `json:"tuned_skew_p50_ns"`
	TunedSkewP95NS    int64              `json:"tuned_skew_p95_ns"`
	TunedSpeedupP50   float64            `json:"tuned_speedup_p50"`
	TunedEquivalent   bool               `json:"tuned_equivalent"`
}

// scaleCorpus generates the named corpus.
func scaleCorpus(name string, n int, seed int64) ([]*xmltree.Document, error) {
	switch name {
	case "", "xmark":
		_, docs, err := datagen.XMark(datagen.XMarkOptions{Seed: seed}, n)
		return docs, err
	case "dblp":
		_, docs, err := datagen.DBLP(datagen.DBLPOptions{Seed: seed}, n)
		return docs, err
	default:
		p, err := datagen.ParseSynthName(name)
		if err != nil {
			return nil, err
		}
		p.Seed = seed
		_, docs, err := datagen.Synth(p, n)
		return docs, err
	}
}

// shardScaleBuilder is the per-shard builder ShardScale times: the same
// schema-infer + g_best pipeline the monolithic build runs, applied to the
// shard's partition.
func shardScaleBuilder(ctx context.Context, docs []*xmltree.Document) (*index.Index, error) {
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		return nil, err
	}
	enc := pathenc.NewEncoder(0)
	return index.BuildContext(ctx, docs, index.Options{
		Encoder:  enc,
		Strategy: sequence.NewProbability(sch, enc),
	})
}

// ShardScale runs the sharded-scaling benchmark: build the corpus
// monolithically and sharded (timing both), sample random queries, check
// every answer for monolithic/sharded equivalence, and report the sharded
// query latency distribution.
func ShardScale(cfg ScaleConfig) (*ScaleResult, error) {
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	dataset := cfg.Dataset
	if dataset == "" {
		dataset = "xmark"
	}
	records := cfg.Records
	if records <= 0 {
		records = 1000
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	nq := cfg.Queries
	if nq <= 0 {
		nq = 50
	}

	docs, err := scaleCorpus(dataset, records, cfg.Seed)
	if err != nil {
		return nil, err
	}

	monoStart := time.Now()
	mono, err := shardScaleBuilder(ctx, docs)
	if err != nil {
		return nil, fmt.Errorf("monolithic build: %w", err)
	}
	monoNS := time.Since(monoStart).Nanoseconds()

	shardStart := time.Now()
	sh, err := shard.BuildContext(ctx, docs, shardScaleBuilder,
		shard.Options{Shards: shards, Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("sharded build: %w", err)
	}
	shardNS := time.Since(shardStart).Nanoseconds()

	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xbe7c))
	pats := randomQueries(rng, docs, 3, nq)
	if len(pats) == 0 {
		return nil, fmt.Errorf("no queries extractable from %s corpus", dataset)
	}
	res := &ScaleResult{
		Dataset:           dataset,
		Records:           len(docs),
		Shards:            shards,
		Workers:           cfg.Workers,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Queries:           len(pats),
		MonolithicBuildNS: monoNS,
		ShardedBuildNS:    shardNS,
		IndexNodes:        sh.NumNodes(),
		Equivalent:        true,
	}
	if shardNS > 0 {
		res.BuildSpeedup = float64(monoNS) / float64(shardNS)
	}
	lats := make([]int64, 0, len(pats))
	for _, p := range pats {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		want, err := mono.QueryContext(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("monolithic query %s: %w", p, err)
		}
		qStart := time.Now()
		got, err := sh.QueryContext(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("sharded query %s: %w", p, err)
		}
		lats = append(lats, time.Since(qStart).Nanoseconds())
		res.Matches += len(got)
		if !equalIDs(want, got) {
			res.Equivalent = false
		}
	}
	slices.Sort(lats)
	res.QueryP50NS = percentileNS(lats, 50)
	res.QueryP95NS = percentileNS(lats, 95)

	res.MonoAllocsPerOp, res.MonoBytesPerOp, err = measureQueryAllocs(ctx, mono, pats)
	if err != nil {
		return nil, fmt.Errorf("monolithic alloc profile: %w", err)
	}
	res.AllocsPerOp, res.BytesPerOp, err = measureQueryAllocs(ctx, sh, pats)
	if err != nil {
		return nil, fmt.Errorf("sharded alloc profile: %w", err)
	}

	// Cached-vs-uncached pass: a small set of patterns repeated over
	// several rounds, the workload shape a result cache exists for. Every
	// cached answer is checked byte-for-byte against the uncached one.
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = qcache.DefaultEntries
	}
	cached := qcache.New(sh, entries)
	res.CacheEntries = entries
	res.CacheEquivalent = true
	hot := pats
	if len(hot) > 8 {
		hot = hot[:8]
	}
	const rounds = 5
	uLats := make([]int64, 0, rounds*len(hot))
	cLats := make([]int64, 0, rounds*len(hot))
	for r := 0; r < rounds; r++ {
		for _, p := range hot {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			uStart := time.Now()
			want, err := sh.QueryContext(ctx, p)
			if err != nil {
				return nil, fmt.Errorf("uncached query %s: %w", p, err)
			}
			uLats = append(uLats, time.Since(uStart).Nanoseconds())
			cStart := time.Now()
			got, err := cached.QueryWithContext(ctx, p, engine.QueryOptions{})
			if err != nil {
				return nil, fmt.Errorf("cached query %s: %w", p, err)
			}
			cLats = append(cLats, time.Since(cStart).Nanoseconds())
			if !equalIDs(want, got) {
				res.CacheEquivalent = false
			}
		}
	}
	slices.Sort(uLats)
	slices.Sort(cLats)
	res.UncachedQueryP50NS = percentileNS(uLats, 50)
	res.UncachedQueryP95NS = percentileNS(uLats, 95)
	res.CachedQueryP50NS = percentileNS(cLats, 50)
	res.CachedQueryP95NS = percentileNS(cLats, 95)
	cs := cached.Stats()
	res.CacheHits = cs.Hits
	res.CacheMisses = cs.Misses

	if err := flatScale(ctx, mono, pats, res); err != nil {
		return nil, fmt.Errorf("flat pass: %w", err)
	}
	if err := tunedScale(ctx, docs, mono, pats, rng, res); err != nil {
		return nil, fmt.Errorf("tuned pass: %w", err)
	}
	return res, nil
}

// tunedSkewExponent shapes the Zipf mix the tuned pass samples: ~1.3 gives
// a hot head (a few patterns dominate) without starving the tail, the
// workload shape adaptive resequencing exists for.
const tunedSkewExponent = 1.3

// tunedScale runs the adaptive-resequencing loop offline: sample a
// Zipf-skewed mix over the pattern pool, derive the weight vector from its
// frequency table, rebuild the index weighted, and time the same mix
// untuned vs tuned with per-query equivalence checks.
func tunedScale(ctx context.Context, docs []*xmltree.Document, mono *index.Index, pats []*query.Pattern, rng *rand.Rand, res *ScaleResult) error {
	res.SkewExponent = tunedSkewExponent
	res.TunedEquivalent = true

	// Sample the skewed mix and tally its frequency table — the offline
	// stand-in for the server's live top-K pattern counts.
	zipf := rand.NewZipf(rng, tunedSkewExponent, 1, uint64(len(pats)-1))
	mixLen := 4 * len(pats)
	mix := make([]*query.Pattern, mixLen)
	tally := make(map[string]int64, len(pats))
	for i := range mix {
		p := pats[zipf.Uint64()]
		mix[i] = p
		tally[p.String()]++
	}
	counts := make([]telemetry.PatternCount, 0, len(tally))
	for pat, n := range tally {
		counts = append(counts, telemetry.PatternCount{Pattern: pat, Count: n})
	}
	weights := adapt.DeriveWeights(counts, 0)
	res.TunedWeights = weights

	// Re-sequence the corpus around the derived vector (the weighted-gbest
	// build the server's rebuild performs in the background).
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		return err
	}
	enc := pathenc.NewEncoder(0)
	strategy, err := sequence.NewByName(sequence.NameWeighted, sch, enc, weights, true)
	if err != nil {
		return err
	}
	buildStart := time.Now()
	tuned, err := index.BuildContext(ctx, docs, index.Options{Encoder: enc, Strategy: strategy})
	if err != nil {
		return fmt.Errorf("weighted build: %w", err)
	}
	res.TunedBuildNS = time.Since(buildStart).Nanoseconds()

	// One warm pass each, then time the identical skewed mix on both.
	for _, eng := range []engine.Engine{mono, tuned} {
		for _, p := range pats {
			if _, err := eng.QueryWithContext(ctx, p, engine.QueryOptions{}); err != nil {
				return err
			}
		}
	}
	uLats := make([]int64, 0, len(mix))
	tLats := make([]int64, 0, len(mix))
	for _, p := range mix {
		if err := ctx.Err(); err != nil {
			return err
		}
		uStart := time.Now()
		want, err := mono.QueryWithContext(ctx, p, engine.QueryOptions{})
		if err != nil {
			return fmt.Errorf("untuned query %s: %w", p, err)
		}
		uLats = append(uLats, time.Since(uStart).Nanoseconds())
		tStart := time.Now()
		got, err := tuned.QueryWithContext(ctx, p, engine.QueryOptions{})
		if err != nil {
			return fmt.Errorf("tuned query %s: %w", p, err)
		}
		tLats = append(tLats, time.Since(tStart).Nanoseconds())
		if !equalIDs(want, got) {
			res.TunedEquivalent = false
		}
	}
	slices.Sort(uLats)
	slices.Sort(tLats)
	res.UntunedSkewP50NS = percentileNS(uLats, 50)
	res.UntunedSkewP95NS = percentileNS(uLats, 95)
	res.TunedSkewP50NS = percentileNS(tLats, 50)
	res.TunedSkewP95NS = percentileNS(tLats, 95)
	if res.TunedSkewP50NS > 0 {
		res.TunedSpeedupP50 = float64(res.UntunedSkewP50NS) / float64(res.TunedSkewP50NS)
	}
	return nil
}

// flatScale runs the flat-layout pass of the benchmark: persist mono in the
// heap and flat formats, time a cold open of each, then query the flat
// snapshot through its mmap with page accounting attached.
func flatScale(ctx context.Context, mono *index.Index, pats []*query.Pattern, res *ScaleResult) error {
	dir, err := os.MkdirTemp("", "xseqbench-flat-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	monoPath := filepath.Join(dir, "mono.idx")
	if err := mono.SaveFile(monoPath); err != nil {
		return err
	}
	if fi, err := os.Stat(monoPath); err == nil {
		res.MonoSnapshotBytes = fi.Size()
	}
	loadStart := time.Now()
	if _, err := index.LoadFile(monoPath); err != nil {
		return err
	}
	res.MonoLoadNS = time.Since(loadStart).Nanoseconds()

	ex, err := mono.Export()
	if err != nil {
		return err
	}
	flatPath := filepath.Join(dir, "mono.flat")
	if err := flat.WriteFile(flatPath, ex); err != nil {
		return err
	}
	openStart := time.Now()
	fl, err := flat.OpenFile(flatPath, flat.Options{})
	if err != nil {
		return err
	}
	defer fl.Close()
	res.FlatLoadNS = time.Since(openStart).Nanoseconds()
	res.FlatBytesMapped = fl.MappedBytes()

	if _, err := fl.AttachPager(pager.NewPool(int(fl.TotalPages()))); err != nil {
		return err
	}
	res.FlatEquivalent = true
	lats := make([]int64, 0, len(pats))
	for _, p := range pats {
		if err := ctx.Err(); err != nil {
			return err
		}
		want, err := mono.QueryContext(ctx, p)
		if err != nil {
			return err
		}
		qStart := time.Now()
		got, err := fl.QueryWithContext(ctx, p, engine.QueryOptions{})
		if err != nil {
			return fmt.Errorf("flat query %s: %w", p, err)
		}
		lats = append(lats, time.Since(qStart).Nanoseconds())
		if !equalIDs(want, got) {
			res.FlatEquivalent = false
		}
	}
	slices.Sort(lats)
	res.FlatQueryP50NS = percentileNS(lats, 50)
	res.FlatQueryP95NS = percentileNS(lats, 95)
	res.FlatBytesResident = fl.ResidentPages() * pager.PageSize

	// Alloc profile with the pager detached: page accounting is an
	// observability instrument, not part of the steady-state query path.
	fl.DetachPager()
	res.FlatAllocsPerOp, res.FlatBytesPerOp, err = measureQueryAllocs(ctx, fl, pats)
	if err != nil {
		return err
	}
	return nil
}

// measureQueryAllocs reports the steady-state allocation cost (heap
// allocations per query, bytes per query) of answering pats against a warm
// engine. One untimed pass warms every pooled scratch and internal cache,
// then several measured passes read the global allocation counters around
// the queries — counting fan-out goroutines too, which is the point: the
// number is the whole query path's footprint, not one goroutine's.
func measureQueryAllocs(ctx context.Context, eng engine.Engine, pats []*query.Pattern) (allocsPerOp, bytesPerOp float64, err error) {
	run := func() error {
		for _, p := range pats {
			if _, err := eng.QueryWithContext(ctx, p, engine.QueryOptions{}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(); err != nil {
		return 0, 0, err
	}
	const rounds = 5
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for r := 0; r < rounds; r++ {
		if err := run(); err != nil {
			return 0, 0, err
		}
	}
	runtime.ReadMemStats(&after)
	ops := float64(rounds * len(pats))
	return float64(after.Mallocs-before.Mallocs) / ops, float64(after.TotalAlloc-before.TotalAlloc) / ops, nil
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// percentileNS reads the p-th percentile from a sorted latency slice
// (nearest-rank).
func percentileNS(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}
