package bench

import (
	"fmt"
	"strings"
	"testing"
)

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// tiny returns a config small enough for unit testing while still
// exercising every code path.
func tiny() Config {
	return Config{Scale: 0.002, Seed: 42, Queries: 8}
}

func TestTableFormat(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Note: "note", Header: []string{"a", "bb"}}
	tb.AddRow(1, "y")
	tb.AddRow(2.5, "zzz")
	out := tb.Format()
	for _, want := range []string{"== x: demo ==", "note", "a", "bb", "zzz", "2.50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestAllAndFind(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("All() = %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Short == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := Find("table7"); !ok {
		t.Fatal("Find(table7) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find(nope) should fail")
	}
}

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %s missing cell (%d,%d):\n%s", tb.ID, row, col, tb.Format())
	}
	return tb.Rows[row][col]
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("cell %q is not an integer", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestFigure14Shapes(t *testing.T) {
	for _, run := range []func(Config) ([]*Table, error){Figure14a, Figure14b} {
		tabs, err := run(tiny())
		if err != nil {
			t.Fatal(err)
		}
		tb := tabs[0]
		if len(tb.Rows) != 5 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		for r := range tb.Rows {
			random := atoi(t, cell(t, tb, r, 1))
			bf := atoi(t, cell(t, tb, r, 2))
			df := atoi(t, cell(t, tb, r, 3))
			cs := atoi(t, cell(t, tb, r, 4))
			// Paper shape: random biggest; DF/BF in between; CS smallest.
			if !(random > df && random > bf) {
				t.Fatalf("row %d: random %d should dominate df %d bf %d\n%s", r, random, df, bf, tb.Format())
			}
			if !(cs < df && cs < bf) {
				t.Fatalf("row %d: cs %d should be smallest (df %d bf %d)\n%s", r, cs, df, bf, tb.Format())
			}
			// Monotone growth in dataset size.
			if r > 0 && atoi(t, cell(t, tb, r, 4)) < atoi(t, cell(t, tb, r-1, 4)) {
				t.Fatalf("cs counts not monotone\n%s", tb.Format())
			}
		}
	}
}

func TestFigure15Shape(t *testing.T) {
	tabs, err := Figure15(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	firstRatio := 0.0
	lastRatio := 0.0
	for r := range tb.Rows {
		df := atoi(t, cell(t, tb, r, 1))
		cs := atoi(t, cell(t, tb, r, 2))
		if cs > df {
			t.Fatalf("row %d: CS %d exceeds DF %d\n%s", r, cs, df, tb.Format())
		}
		ratio := float64(cs) / float64(df)
		if r == 0 {
			firstRatio = ratio
		}
		lastRatio = ratio
	}
	// CS degrades toward DF as I grows.
	if !(lastRatio > firstRatio) {
		t.Fatalf("CS/DF should grow with I: first %.3f last %.3f\n%s", firstRatio, lastRatio, tb.Format())
	}
}

func TestTables5And6Shapes(t *testing.T) {
	for _, run := range []func(Config) ([]*Table, error){Table5, Table6} {
		tabs, err := run(tiny())
		if err != nil {
			t.Fatal(err)
		}
		tb := tabs[0]
		if len(tb.Rows) != 5 {
			t.Fatalf("rows = %d", len(tb.Rows))
		}
		for r := range tb.Rows {
			df := atoi(t, cell(t, tb, r, 2))
			cs := atoi(t, cell(t, tb, r, 3))
			if cs >= df {
				t.Fatalf("row %d: CS %d should beat DF %d\n%s", r, cs, df, tb.Format())
			}
		}
	}
}

func TestTable7Runs(t *testing.T) {
	tabs, err := Table7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d\n%s", len(tb.Rows), tb.Format())
	}
	// Q2 (broad age query) must return results even at tiny scale.
	if atoi(t, cell(t, tb, 1, 2)) == 0 {
		t.Fatalf("Q2 returned nothing\n%s", tb.Format())
	}
	// Disk accesses are recorded.
	if atoi(t, cell(t, tb, 1, 3)) == 0 {
		t.Fatalf("Q2 reported no disk accesses\n%s", tb.Format())
	}
}

func TestTable8Runs(t *testing.T) {
	tabs, err := Table8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d\n%s", len(tb.Rows), tb.Format())
	}
	// Every query returns results at this scale.
	for r := 0; r < 4; r++ {
		if atoi(t, cell(t, tb, r, 4)) == 0 {
			t.Fatalf("row %d returned nothing\n%s", r, tb.Format())
		}
	}
}

func TestFigure16aRuns(t *testing.T) {
	tabs, err := Figure16a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 5 {
		t.Fatalf("rows = %d\n%s", len(tabs[0].Rows), tabs[0].Format())
	}
}

func TestFigure16bShape(t *testing.T) {
	tabs, err := Figure16b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFigure16cdRun(t *testing.T) {
	for _, run := range []func(Config) ([]*Table, error){Figure16c, Figure16d} {
		tabs, err := run(tiny())
		if err != nil {
			t.Fatal(err)
		}
		if len(tabs[0].Rows) == 0 {
			t.Fatalf("no rows\n%s", tabs[0].Format())
		}
	}
}

func TestAblationPool(t *testing.T) {
	tabs, err := AblationPool(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Misses never increase as the pool grows.
	prev := int64(1 << 62)
	for r := range tb.Rows {
		var v int64
		if _, err := fmt.Sscan(cell(t, tb, r, 1), &v); err != nil {
			t.Fatal(err)
		}
		if v > prev {
			t.Fatalf("misses grew with pool size\n%s", tb.Format())
		}
		prev = v
	}
}

func TestAblationValueSpace(t *testing.T) {
	tabs, err := AblationValueSpace(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Tiny spaces produce false positives; huge spaces none.
	fp := func(r int) int {
		v := 0
		if _, err := fmt.Sscan(cell(t, tb, r, 3), &v); err != nil {
			t.Fatal(err)
		}
		return v
	}
	if fp(0) == 0 {
		t.Fatalf("16-bucket space produced no collisions\n%s", tb.Format())
	}
	if fp(len(tb.Rows)-1) != 0 {
		t.Fatalf("2^20 space produced collisions\n%s", tb.Format())
	}
}

func TestAblationEnumeration(t *testing.T) {
	tabs, err := AblationEnumeration(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Recall is monotone non-decreasing in the limit and reaches 1.
	var last float64
	if _, err := fmt.Sscan(cell(t, tb, len(tb.Rows)-1, 2), &last); err != nil {
		t.Fatal(err)
	}
	if last != 1 {
		t.Fatalf("unbounded recall = %v\n%s", last, tb.Format())
	}
}

func TestAblationBlocking(t *testing.T) {
	tabs, err := AblationBlocking(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	oursNodes := atoi(t, cell(t, tb, 0, 1))
	paperNodes := atoi(t, cell(t, tb, 1, 1))
	if paperNodes > oursNodes {
		t.Fatalf("per-instance blocking should be smaller or equal\n%s", tb.Format())
	}
	var oursRecall float64
	if _, err := fmt.Sscan(cell(t, tb, 0, 4), &oursRecall); err != nil {
		t.Fatal(err)
	}
	if oursRecall != 1 {
		t.Fatalf("our blocking must be complete (recall 1), got %v\n%s", oursRecall, tb.Format())
	}
}

func TestAblationBuild(t *testing.T) {
	tabs, err := AblationBuild(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// All three paths agree on the node count.
	n0 := atoi(t, cell(t, tb, 0, 2))
	for r := 1; r < 3; r++ {
		if atoi(t, cell(t, tb, r, 2)) != n0 {
			t.Fatalf("node counts disagree\n%s", tb.Format())
		}
	}
}

func TestCompressionRatios(t *testing.T) {
	tabs, err := CompressionRatios(tiny())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// random (row 0) ratio should be at least 2x the CS (row 3) ratio.
	var ratios []float64
	for r := range tb.Rows {
		var v float64
		if _, err := fmtSscan(cell(t, tb, r, 3), &v); err != nil {
			t.Fatalf("ratio cell %q", cell(t, tb, r, 3))
		}
		ratios = append(ratios, v)
	}
	// Paper shape: random lands in the 3-6:1 band, CS well below it. The
	// gap widens with corpus size (prefix sharing compounds), so at unit-
	// test scale only the ordering and the random band are asserted.
	if ratios[0] < 1.3*ratios[3] {
		t.Fatalf("random ratio %.3f should dwarf CS ratio %.3f\n%s", ratios[0], ratios[3], tb.Format())
	}
	if ratios[0] < 2.5 || ratios[0] > 8 {
		t.Fatalf("random ratio %.3f outside the paper's 3-6:1 band\n%s", ratios[0], tb.Format())
	}
}
