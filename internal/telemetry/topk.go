package telemetry

import "sync"

// PatternCount is one entry of the top-K pattern-frequency table.
type PatternCount struct {
	Pattern string `json:"pattern"`
	Count   int64  `json:"count"`
}

// TopK tracks approximate per-key frequencies in bounded memory using the
// space-saving sketch (Metwally, Agrawal, El Abbadi 2005): at most k keys
// are resident; when a new key arrives at capacity it evicts the
// current minimum and inherits its count, so a key's reported count
// overestimates its true frequency by at most the evicted minimum. Heavy
// hitters — the input the paper's §5 w(C) re-weighting consumes — are
// retained exactly; long-tail keys churn through the bottom slots.
//
// Record is called once per served query with the canonical
// Pattern.String() key, far off the kernel hot path, so a plain mutex
// over a small map is the right tool.
type TopK struct {
	mu sync.Mutex
	k  int
	m  map[string]int64
}

// NewTopK returns a table bounded to k keys (minimum 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, m: make(map[string]int64, k)}
}

// Record counts one occurrence of key.
func (t *TopK) Record(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.m[key]; ok {
		t.m[key] = c + 1
		return
	}
	if len(t.m) < t.k {
		t.m[key] = 1
		return
	}
	minKey, minCount := "", int64(-1)
	for k2, c := range t.m {
		if minCount < 0 || c < minCount {
			minKey, minCount = k2, c
		}
	}
	delete(t.m, minKey)
	t.m[key] = minCount + 1
}

// Decay multiplies every resident count by factor (clamped to [0, 1)) and
// evicts keys whose count falls below 1. Without aging, space-saving counts
// grow forever and the table converges on the all-time heavy hitters; a
// periodic geometric decay makes it track the *recent* workload instead —
// an old hot pattern that stops arriving halves away until a currently-hot
// key displaces it. Callers pick the half-life via how often they call this
// and with what factor (count halves every ln(2)/ln(1/factor) calls).
func (t *TopK) Decay(factor float64) {
	if factor >= 1 || factor != factor { // no-op factors (incl. NaN)
		return
	}
	if factor < 0 {
		factor = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, c := range t.m {
		nc := int64(float64(c) * factor)
		if nc < 1 {
			delete(t.m, k)
		} else {
			t.m[k] = nc
		}
	}
}

// Total returns the sum of all resident counts — a cheap "how much signal
// is in the table" gauge used to gate decisions that need a minimum sample
// size (e.g. deriving sequencing weights from the observed mix).
func (t *TopK) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum int64
	for _, c := range t.m {
		sum += c
	}
	return sum
}

// Len returns the number of resident keys.
func (t *TopK) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Snapshot returns the table ordered by descending count, ties broken by
// ascending key so the output is deterministic.
func (t *TopK) Snapshot() []PatternCount {
	t.mu.Lock()
	out := make([]PatternCount, 0, len(t.m))
	for k, c := range t.m {
		out = append(out, PatternCount{Pattern: k, Count: c})
	}
	t.mu.Unlock()
	sortPatternCounts(out)
	return out
}

func sortPatternCounts(pcs []PatternCount) {
	// Insertion sort: the table is bounded small (default 64 entries).
	for i := 1; i < len(pcs); i++ {
		for j := i; j > 0 && lessPattern(pcs[j], pcs[j-1]); j-- {
			pcs[j], pcs[j-1] = pcs[j-1], pcs[j]
		}
	}
}

func lessPattern(a, b PatternCount) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Pattern < b.Pattern
}
