package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("xseq_test_total", "", "A test counter.")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP xseq_test_total A test counter.\n",
		"# TYPE xseq_test_total counter\n",
		"xseq_test_total 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorEmitsGauges(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(e *Emit) {
		e.Gauge("xseq_gauge", Label("kind", "a"), "A gauge.", 1.5)
		e.Gauge("xseq_gauge", Label("kind", "b"), "A gauge.", 2)
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE xseq_gauge gauge") != 1 {
		t.Errorf("TYPE header not deduplicated:\n%s", out)
	}
	if !strings.Contains(out, `xseq_gauge{kind="a"} 1.5`) || !strings.Contains(out, `xseq_gauge{kind="b"} 2`) {
		t.Errorf("label variants missing:\n%s", out)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("xseq_lat_seconds", "", "Latency.")
	// 100 samples at ~2µs, 10 at ~1ms, 1 at ~1s.
	for i := 0; i < 100; i++ {
		h.ObserveNS(1500)
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond)
	}
	h.Observe(800 * time.Millisecond)
	if got := h.Count(); got != 111 {
		t.Fatalf("Count = %d, want 111", got)
	}
	// p50 lands in the 2µs bucket, p95 there too (100/111 > 0.90), p99
	// in the ~1ms region, and the max sample caps below 2s.
	if got := h.QuantileNS(0.50); got != 2000 {
		t.Errorf("p50 = %d, want 2000", got)
	}
	if got := h.QuantileNS(0.99); got < 512_000 || got > 2_048_000 {
		t.Errorf("p99 = %d, want ~1ms bucket", got)
	}
	if got := h.QuantileNS(1.0); got < 512_000_000 || got > 2_000_000_000 {
		t.Errorf("p100 = %d, want ~1s bucket", got)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE xseq_lat_seconds histogram\n") {
		t.Errorf("missing histogram TYPE:\n%s", out)
	}
	if !strings.Contains(out, `xseq_lat_seconds_bucket{le="+Inf"} 111`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, "xseq_lat_seconds_count 111") {
		t.Errorf("missing _count:\n%s", out)
	}
	// Buckets must be cumulative: the 2µs bucket holds all 100 fast
	// samples, and every later bucket at least as many.
	if !strings.Contains(out, `xseq_lat_seconds_bucket{le="2e-06"} 100`) {
		t.Errorf("missing cumulative 2µs bucket:\n%s", out)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	var h Histogram
	if got := h.QuantileNS(0.99); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {1000, 0}, {1001, 1}, {2000, 1}, {2001, 2},
		{4000, 2}, {1 << 62, histBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.ObserveNS(int64(i) * 100)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

func TestTopKSpaceSaving(t *testing.T) {
	tk := NewTopK(3)
	for i := 0; i < 10; i++ {
		tk.Record("hot")
	}
	for i := 0; i < 5; i++ {
		tk.Record("warm")
	}
	tk.Record("cold1")
	tk.Record("cold2") // evicts cold1 (min=1), inherits its count
	snap := tk.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	if snap[0].Pattern != "hot" || snap[0].Count != 10 {
		t.Errorf("heavy hitter lost: %+v", snap)
	}
	if snap[1].Pattern != "warm" || snap[1].Count != 5 {
		t.Errorf("second hitter lost: %+v", snap)
	}
	if tk.Len() != 3 {
		t.Errorf("Len = %d, want bounded 3", tk.Len())
	}
}

// TestTopKDecayDisplacesOldHotPattern is the workload-shift scenario decay
// exists for: a pattern that dominated the early mix must lose its slot to
// the patterns that dominate the current mix once it stops arriving.
// Without Decay the old leader's space-saving count is an unbeatable
// high-water mark and the table can never reflect the shifted workload.
func TestTopKDecayDisplacesOldHotPattern(t *testing.T) {
	tk := NewTopK(3)
	for i := 0; i < 1000; i++ {
		tk.Record("old-hot")
	}
	// The mix shifts: three new patterns arrive steadily, old-hot never
	// again. Each round decays (half-life one round) then records the new
	// mix, as the server's adaptive poll loop does.
	for round := 0; round < 12; round++ {
		tk.Decay(0.5)
		for i := 0; i < 8; i++ {
			tk.Record("new-a")
			tk.Record("new-b")
			tk.Record("new-c")
		}
	}
	snap := tk.Snapshot()
	for _, pc := range snap {
		if pc.Pattern == "old-hot" {
			t.Fatalf("old hot pattern still resident after the mix shifted: %+v", snap)
		}
	}
	seen := map[string]bool{}
	for _, pc := range snap {
		seen[pc.Pattern] = true
	}
	for _, want := range []string{"new-a", "new-b", "new-c"} {
		if !seen[want] {
			t.Errorf("current-mix pattern %q missing: %+v", want, snap)
		}
	}
}

func TestTopKDecayEvictsAndTotals(t *testing.T) {
	tk := NewTopK(8)
	tk.Record("a")
	tk.Record("a")
	tk.Record("b")
	if got := tk.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}
	tk.Decay(0.5) // a: 2 -> 1 stays; b: 1 -> 0 evicted
	if tk.Len() != 1 {
		t.Fatalf("Len after decay = %d, want 1", tk.Len())
	}
	if got := tk.Total(); got != 1 {
		t.Fatalf("Total after decay = %d, want 1", got)
	}
	tk.Decay(1.5) // factor >= 1 is a no-op, not an amplifier
	if got := tk.Total(); got != 1 {
		t.Fatalf("Total after no-op decay = %d, want 1", got)
	}
	tk.Decay(-1) // negative clamps to 0: full reset
	if tk.Len() != 0 {
		t.Fatalf("Len after clamp-to-zero decay = %d, want 0", tk.Len())
	}
}

func TestTopKDeterministicOrder(t *testing.T) {
	tk := NewTopK(8)
	for _, k := range []string{"b", "a", "c"} {
		tk.Record(k)
	}
	snap := tk.Snapshot()
	if snap[0].Pattern != "a" || snap[1].Pattern != "b" || snap[2].Pattern != "c" {
		t.Fatalf("tie order not deterministic: %+v", snap)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("q", `/a["x\y]`+"\n")
	want := `q="/a[\"x\\y]\n"`
	if got != want {
		t.Fatalf("Label = %s, want %s", got, want)
	}
}
