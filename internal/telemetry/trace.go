package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync"
	"sync/atomic"
)

// Span is one shard's slice of a fanned-out query: which shard ran, how
// many sequence ids it returned, how long its slice took, and the id of
// the request trace it was recorded into. TraceID is stamped by AddSpan
// from the owning trace so a span can never be attributed to the wrong
// request, even when fan-out goroutines from different queries interleave
// on the shared scratch pools.
type Span struct {
	TraceID uint64
	Shard   int32
	Results int32
	DurNS   int64
}

// Trace is the per-request observability carrier. The server creates one
// at the request boundary (pooled — see GetTrace), attaches it to the
// query context with WithTrace, and every layer it passes through records
// into it: leaf kernels (monolithic, flat) add instance/order/probe
// counts, the shard fan-out appends per-shard spans and the fan-out/merge
// timing split, and the query cache marks hit or miss.
//
// Concurrency: the kernel counters are atomics because a sharded query's
// fan-out goroutines all record into the same trace; spans append under a
// short mutex for the same reason. The fan-out/merge split and the cache
// mark are written by the coordinating goroutine only. Reading (the
// server's observe step) happens after the query has fully joined, so it
// sees a quiescent trace.
type Trace struct {
	// ID is the request's trace id, assigned at the server boundary.
	ID uint64

	instances       atomic.Int64
	orders          atomic.Int64
	linkProbes      atomic.Int64
	entriesScanned  atomic.Int64
	coverChecks     atomic.Int64
	coverRejections atomic.Int64

	cache    atomic.Int32 // 0 untouched, 1 miss, 2 hit
	fanoutNS int64        // coordinating goroutine only
	mergeNS  int64        // coordinating goroutine only

	mu    sync.Mutex
	spans []Span
}

// AddKernel merges one kernel pass's match-loop counters. Safe for
// concurrent use by fan-out goroutines.
func (t *Trace) AddKernel(instances, orders int, linkProbes, entriesScanned, coverChecks, coverRejections int64) {
	t.instances.Add(int64(instances))
	t.orders.Add(int64(orders))
	t.linkProbes.Add(linkProbes)
	t.entriesScanned.Add(entriesScanned)
	t.coverChecks.Add(coverChecks)
	t.coverRejections.Add(coverRejections)
}

// Instances returns the total candidate instances scanned.
func (t *Trace) Instances() int64 { return t.instances.Load() }

// Orders returns the total order-check passes.
func (t *Trace) Orders() int64 { return t.orders.Load() }

// LinkProbes returns the total link-table probes.
func (t *Trace) LinkProbes() int64 { return t.linkProbes.Load() }

// EntriesScanned returns the total index entries scanned.
func (t *Trace) EntriesScanned() int64 { return t.entriesScanned.Load() }

// CoverChecks returns the total cover checks performed.
func (t *Trace) CoverChecks() int64 { return t.coverChecks.Load() }

// CoverRejections returns the cover checks that rejected a candidate.
func (t *Trace) CoverRejections() int64 { return t.coverRejections.Load() }

// AddSpan records one shard's slice. Safe for concurrent use.
func (t *Trace) AddSpan(shard, results int32, durNS int64) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{TraceID: t.ID, Shard: shard, Results: results, DurNS: durNS})
	t.mu.Unlock()
}

// Spans returns the recorded per-shard spans. The slice aliases the
// trace's internal storage: read it before PutTrace and do not retain it.
func (t *Trace) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// SetCache marks the query-cache outcome for this request.
func (t *Trace) SetCache(hit bool) {
	if hit {
		t.cache.Store(2)
	} else {
		t.cache.Store(1)
	}
}

// CacheState reports "hit", "miss", or "" when no cache was consulted.
func (t *Trace) CacheState() string {
	switch t.cache.Load() {
	case 1:
		return "miss"
	case 2:
		return "hit"
	default:
		return ""
	}
}

// SetFanoutNS records the wall time from fan-out launch to the last
// shard joining. Coordinating goroutine only.
func (t *Trace) SetFanoutNS(ns int64) { t.fanoutNS = ns }

// SetMergeNS records the wall time of the k-way result merge.
// Coordinating goroutine only.
func (t *Trace) SetMergeNS(ns int64) { t.mergeNS = ns }

// FanoutNS returns the recorded fan-out wall time (0 if not sharded).
func (t *Trace) FanoutNS() int64 { return t.fanoutNS }

// MergeNS returns the recorded merge wall time (0 if not sharded).
func (t *Trace) MergeNS() int64 { return t.mergeNS }

// reset clears the trace for reuse, keeping span capacity.
func (t *Trace) reset() {
	t.ID = 0
	t.instances.Store(0)
	t.orders.Store(0)
	t.linkProbes.Store(0)
	t.entriesScanned.Store(0)
	t.coverChecks.Store(0)
	t.coverRejections.Store(0)
	t.cache.Store(0)
	t.fanoutNS = 0
	t.mergeNS = 0
	t.spans = t.spans[:0]
}

var tracePool = sync.Pool{New: func() any { return &Trace{} }}

// GetTrace returns a cleared trace from the pool with a fresh id.
func GetTrace() *Trace {
	t := tracePool.Get().(*Trace)
	t.ID = NextID()
	return t
}

// PutTrace resets t and returns it to the pool. The caller must not use
// t — or any slice obtained from Spans — afterwards.
func PutTrace(t *Trace) {
	t.reset()
	tracePool.Put(t)
}

// idCounter is seeded randomly once so trace ids from different process
// runs don't collide in aggregated logs, then incremented atomically.
var idCounter = func() *atomic.Uint64 {
	var c atomic.Uint64
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		c.Store(binary.LittleEndian.Uint64(seed[:]))
	}
	return &c
}()

// NextID returns a process-unique trace id.
func NextID() uint64 {
	return idCounter.Add(1)
}

// IDString renders a trace id as 16 lowercase hex digits.
func IDString(id uint64) string {
	const hexDigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(buf[:])
}

// ParseID parses the IDString form back to a trace id.
func ParseID(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}

// ctxKey is the context key type for the request trace.
type ctxKey struct{}

// WithTrace attaches t to ctx; every engine layer below retrieves it with
// TraceFrom.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the trace attached to ctx, or nil. Engine layers
// treat nil as "telemetry off" and skip all recording.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
