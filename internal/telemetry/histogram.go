package telemetry

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// histBuckets is the number of finite buckets. Bucket i covers latencies
// up to 1µs·2^i, so the finite range spans 1µs to ~134s; anything slower
// lands in the overflow bucket. The whole histogram is a fixed array of
// (histBuckets+1) int64 counters plus a sum — 240 bytes per instance,
// regardless of how many observations it absorbs. With one histogram per
// layout plus the per-shard one, total histogram memory stays under a
// few kilobytes for the life of the process.
const histBuckets = 27

// Histogram is a lock-free latency histogram with power-of-two bucket
// widths. Observe is a bucket lookup plus two atomic adds — safe from any
// goroutine, never allocating — which is what lets it sit on the query
// path without disturbing the zero-alloc bounds. Quantiles are computed
// at read time by nearest-rank over the bucket counts and are accurate
// to one bucket width (a factor of two), which is the right resolution
// for p50/p95/p99 dashboards and far cheaper than tracking exact samples.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // last slot is the overflow bucket
	sumNS  atomic.Int64
	name   string
	labels string
	help   string
}

// bucketBoundNS returns bucket i's inclusive upper bound in nanoseconds.
func bucketBoundNS(i int) int64 {
	return 1000 << uint(i)
}

// bucketIndex maps a duration to its bucket: the smallest i with
// ns <= 1µs·2^i, or the overflow slot.
func bucketIndex(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	i := bits.Len64(uint64((ns - 1) / 1000))
	if i > histBuckets {
		return histBuckets
	}
	return i
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one latency sample given in nanoseconds. Negative
// samples (clock weirdness) clamp to zero rather than corrupting a bucket.
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.sumNS.Add(ns)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// SumNS returns the sum of all observed latencies in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sumNS.Load() }

// QuantileNS estimates the p-quantile (0 < p <= 1) in nanoseconds by
// nearest rank: the upper bound of the bucket containing the ranked
// sample. Returns 0 on an empty histogram. The overflow bucket reports
// twice the last finite bound — an explicit "slower than the scale"
// marker rather than a fabricated precision.
func (h *Histogram) QuantileNS(p float64) int64 {
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(p * float64(total))
	if float64(rank) < p*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if cum >= rank {
			return bucketBoundNS(i)
		}
	}
	return 2 * bucketBoundNS(histBuckets-1)
}

func (h *Histogram) metricName() string { return h.name }

// emit renders the histogram in Prometheus exposition format: cumulative
// le buckets in seconds, then _sum and _count.
func (h *Histogram) emit(e *Emit) {
	e.header(h.name, h.help, "histogram")
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		le := Label("le", formatFloat(float64(bucketBoundNS(i))/1e9))
		e.sample(h.name+"_bucket", joinLabels(h.labels, le), formatInt(cum))
	}
	cum += h.counts[histBuckets].Load()
	e.sample(h.name+"_bucket", joinLabels(h.labels, `le="+Inf"`), formatInt(cum))
	e.sample(h.name+"_sum", h.labels, formatFloat(float64(h.sumNS.Load())/1e9))
	e.sample(h.name+"_count", h.labels, formatInt(cum))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatInt(v int64) string {
	return strconv.FormatInt(v, 10)
}
