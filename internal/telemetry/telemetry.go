// Package telemetry is the unified measurement substrate shared by every
// engine layer: a registry of atomic counters and lock-free latency
// histograms, pooled per-request trace carriers threaded through query
// contexts, a bounded top-K table of query-pattern frequencies, and a
// hand-rolled Prometheus text-format exporter.
//
// The package is a leaf: it imports only the standard library, so the
// kernel packages (index, flat, shard, qcache) and the server can all
// depend on it without cycles. Everything on the hot path — counter
// increments, histogram observations, kernel-stat recording on a trace —
// is a handful of atomic operations and never allocates; the only locks
// are a short mutex around span append (shard fan-out goroutines record
// concurrently) and around the top-K table (off the kernel path, touched
// once per served query).
package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is anything the registry can render in Prometheus text format.
type metric interface {
	metricName() string
	emit(e *Emit)
}

// Registry holds the process's metrics and renders them as Prometheus
// text format (version 0.0.4). Counters and histograms register at
// construction; subsystems whose counters live elsewhere (the admission
// gate, the WAL, the pager) register collector callbacks that read their
// existing stat structs at scrape time — the /stats JSON sections keep
// their shape, and /metrics is derived from the same numbers.
type Registry struct {
	mu         sync.Mutex
	metrics    []metric
	collectors []func(e *Emit)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{}
}

// NewCounter creates and registers a monotonically increasing counter.
// labels is a pre-rendered Prometheus label list without braces (e.g.
// `layout="flat"`), empty for none.
func (r *Registry) NewCounter(name, labels, help string) *Counter {
	c := &Counter{name: name, labels: labels, help: help}
	r.register(c)
	return c
}

// NewHistogram creates and registers a latency histogram (see
// Histogram for the bucket layout and memory bound).
func (r *Registry) NewHistogram(name, labels, help string) *Histogram {
	h := &Histogram{name: name, labels: labels, help: help}
	r.register(h)
	return h
}

// RegisterCollector adds a scrape-time callback: it receives an Emit and
// writes gauge/counter samples for state owned elsewhere.
func (r *Registry) RegisterCollector(fn func(e *Emit)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// WritePrometheus renders every registered metric and collector in
// Prometheus text format. Native metrics are grouped by family name so
// label variants of the same family (per-layout histograms registered
// lazily) stay consecutive, as the exposition format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := make([]metric, len(r.metrics))
	copy(metrics, r.metrics)
	collectors := make([]func(e *Emit), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	var order []string
	families := make(map[string][]metric)
	for _, m := range metrics {
		name := m.metricName()
		if _, ok := families[name]; !ok {
			order = append(order, name)
		}
		families[name] = append(families[name], m)
	}
	e := &Emit{w: w, seen: make(map[string]bool)}
	for _, name := range order {
		for _, m := range families[name] {
			m.emit(e)
		}
	}
	for _, fn := range collectors {
		fn(e)
	}
	return e.err
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v      atomic.Int64
	name   string
	labels string
	help   string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) emit(e *Emit) {
	e.Counter(c.name, c.labels, c.help, c.v.Load())
}

// Emit renders individual samples in Prometheus text format. HELP/TYPE
// headers are written once per family name; errors are sticky and
// surfaced by WritePrometheus.
type Emit struct {
	w    io.Writer
	seen map[string]bool
	err  error
}

// Counter writes one counter sample.
func (e *Emit) Counter(name, labels, help string, v int64) {
	e.header(name, help, "counter")
	e.sample(name, labels, fmt.Sprintf("%d", v))
}

// Gauge writes one gauge sample.
func (e *Emit) Gauge(name, labels, help string, v float64) {
	e.header(name, help, "gauge")
	e.sample(name, labels, formatFloat(v))
}

func (e *Emit) header(name, help, typ string) {
	if e.seen[name] {
		return
	}
	e.seen[name] = true
	if help != "" {
		e.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	e.printf("# TYPE %s %s\n", name, typ)
}

func (e *Emit) sample(name, labels, value string) {
	if labels == "" {
		e.printf("%s %s\n", name, value)
		return
	}
	e.printf("%s{%s} %s\n", name, labels, value)
}

func (e *Emit) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Label renders one key="value" pair with value escaping, for composing
// the labels argument of NewCounter/NewHistogram/Emit calls.
func Label(key, value string) string {
	var b strings.Builder
	b.WriteString(key)
	b.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteString(`"`)
	return b.String()
}

