package telemetry

import (
	"context"
	"sync"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatalf("TraceFrom(empty) = %v, want nil", got)
	}
	tr := GetTrace()
	defer PutTrace(tr)
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatalf("TraceFrom = %p, want %p", got, tr)
	}
}

func TestTraceKernelAndSpanAccumulation(t *testing.T) {
	tr := GetTrace()
	defer PutTrace(tr)
	tr.AddKernel(3, 2, 10, 20, 5, 1)
	tr.AddKernel(1, 1, 5, 10, 2, 0)
	if tr.Instances() != 4 || tr.Orders() != 3 || tr.LinkProbes() != 15 ||
		tr.EntriesScanned() != 30 || tr.CoverChecks() != 7 || tr.CoverRejections() != 1 {
		t.Fatalf("kernel counters wrong: %d %d %d %d %d %d",
			tr.Instances(), tr.Orders(), tr.LinkProbes(), tr.EntriesScanned(), tr.CoverChecks(), tr.CoverRejections())
	}
	tr.AddSpan(2, 40, 1234)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Shard != 2 || spans[0].Results != 40 || spans[0].DurNS != 1234 {
		t.Fatalf("span wrong: %+v", spans)
	}
	if spans[0].TraceID != tr.ID {
		t.Fatalf("span trace id %d, want %d", spans[0].TraceID, tr.ID)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := GetTrace()
	defer PutTrace(tr)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddSpan(int32(g), int32(i), int64(i))
				tr.AddKernel(1, 0, 0, 0, 0, 0)
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
	if got := tr.Instances(); got != 800 {
		t.Fatalf("instances = %d, want 800", got)
	}
	for _, sp := range tr.Spans() {
		if sp.TraceID != tr.ID {
			t.Fatalf("span carries trace id %d, want %d", sp.TraceID, tr.ID)
		}
	}
}

func TestTracePoolReset(t *testing.T) {
	tr := GetTrace()
	id := tr.ID
	tr.AddKernel(1, 1, 1, 1, 1, 1)
	tr.AddSpan(0, 1, 1)
	tr.SetCache(true)
	tr.SetFanoutNS(10)
	tr.SetMergeNS(20)
	PutTrace(tr)

	tr2 := GetTrace()
	defer PutTrace(tr2)
	if tr2.Instances() != 0 || len(tr2.Spans()) != 0 || tr2.CacheState() != "" ||
		tr2.FanoutNS() != 0 || tr2.MergeNS() != 0 {
		t.Fatalf("pooled trace not reset: %+v", tr2)
	}
	if tr2.ID == 0 || (tr2 == tr && tr2.ID == id) {
		t.Fatalf("pooled trace id not refreshed: %d", tr2.ID)
	}
}

func TestTraceCacheStates(t *testing.T) {
	var tr Trace
	if tr.CacheState() != "" {
		t.Fatalf("zero trace cache state = %q", tr.CacheState())
	}
	tr.SetCache(false)
	if tr.CacheState() != "miss" {
		t.Fatalf("after miss: %q", tr.CacheState())
	}
	tr.SetCache(true)
	if tr.CacheState() != "hit" {
		t.Fatalf("after hit: %q", tr.CacheState())
	}
}

func TestIDStringRoundTrip(t *testing.T) {
	id := NextID()
	s := IDString(id)
	if len(s) != 16 {
		t.Fatalf("IDString length %d, want 16", len(s))
	}
	back, err := ParseID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %d -> %s -> %d", id, s, back)
	}
	if NextID() == id {
		t.Fatal("NextID not unique")
	}
}
