// Package pager simulates the disk layer behind the index so experiments
// can report I/O costs the way the paper does ("# disk accesses" in Table 7,
// "# of pages" in Figure 16(c,d)). Index structures lay their arrays out in
// fixed-size pages via an Allocator; every access goes through an LRU
// buffer Pool which counts hits and misses — a miss is one disk access.
//
// No bytes are actually moved: the simulation only tracks which page each
// array slot falls on, which is exactly what a page-level I/O count needs.
package pager

import (
	"container/list"
	"fmt"
)

// PageSize is the default page size in bytes (4 KiB).
const PageSize = 4096

// PageID identifies one page of the simulated file.
type PageID int64

// Stats aggregates buffer-pool counters. Misses are disk accesses.
type Stats struct {
	Reads  int64 // total page touches
	Hits   int64 // touches satisfied by the pool
	Misses int64 // touches that had to "go to disk"
}

// DiskAccesses returns the miss count (the paper's metric).
func (s Stats) DiskAccesses() int64 { return s.Misses }

// HitRatio reports hits/reads (0 when nothing was read).
func (s Stats) HitRatio() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Reads)
}

// Pool is an LRU buffer pool over simulated pages. The zero value is not
// usable; call NewPool. Not safe for concurrent use.
type Pool struct {
	capacity int
	lru      *list.List               // front = most recent
	index    map[PageID]*list.Element // page -> lru entry
	stats    Stats
}

// DefaultPoolPages is the default pool capacity: 256 pages = 1 MiB of 4 KiB
// pages, small relative to the indexes built in the experiments so that
// long link scans actually pay I/O, mirroring the paper's 256 MB machine
// against multi-hundred-MB datasets.
const DefaultPoolPages = 256

// NewPool builds a pool holding up to capacity pages; capacity <= 0 uses
// DefaultPoolPages.
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultPoolPages
	}
	return &Pool{capacity: capacity, lru: list.New(), index: make(map[PageID]*list.Element)}
}

// Capacity reports the pool's page capacity.
func (p *Pool) Capacity() int { return p.capacity }

// Len reports the number of resident pages.
func (p *Pool) Len() int { return p.lru.Len() }

// Touch records an access to page id: a hit refreshes recency; a miss
// counts one disk access and may evict the least-recently-used page.
func (p *Pool) Touch(id PageID) {
	p.stats.Reads++
	if e, ok := p.index[id]; ok {
		p.stats.Hits++
		p.lru.MoveToFront(e)
		return
	}
	p.stats.Misses++
	if p.lru.Len() >= p.capacity {
		back := p.lru.Back()
		if back != nil {
			delete(p.index, back.Value.(PageID))
			p.lru.Remove(back)
		}
	}
	p.index[id] = p.lru.PushFront(id)
}

// Contains reports residency without affecting recency or counters.
func (p *Pool) Contains(id PageID) bool {
	_, ok := p.index[id]
	return ok
}

// Stats returns the counters so far.
func (p *Pool) Stats() Stats { return p.stats }

// ResetStats zeroes the counters, keeping resident pages (a warm pool).
func (p *Pool) ResetStats() { p.stats = Stats{} }

// Drop empties the pool and zeroes the counters (a cold pool).
func (p *Pool) Drop() {
	p.stats = Stats{}
	p.lru.Init()
	p.index = make(map[PageID]*list.Element)
}

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

// Region is a contiguous run of pages holding an array of fixed-size items.
type Region struct {
	Start        PageID
	Pages        int
	ItemsPerPage int
}

// PageOf maps an item slot to its page.
func (r Region) PageOf(slot int) PageID {
	if r.ItemsPerPage <= 0 {
		return r.Start
	}
	return r.Start + PageID(slot/r.ItemsPerPage)
}

// Allocator hands out page ranges for regions of a simulated file.
type Allocator struct {
	pageSize int
	next     PageID
}

// NewAllocator creates an allocator with the given page size (<= 0 uses
// PageSize).
func NewAllocator(pageSize int) *Allocator {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	return &Allocator{pageSize: pageSize}
}

// PageSize reports the allocator's page size in bytes.
func (a *Allocator) PageSize() int { return a.pageSize }

// Alloc reserves pages for nItems items of itemBytes each and returns the
// region. Zero-item regions still occupy one page (a header).
func (a *Allocator) Alloc(nItems, itemBytes int) (Region, error) {
	if itemBytes <= 0 {
		return Region{}, fmt.Errorf("pager: item size %d invalid", itemBytes)
	}
	if itemBytes > a.pageSize {
		return Region{}, fmt.Errorf("pager: item size %d exceeds page size %d", itemBytes, a.pageSize)
	}
	per := a.pageSize / itemBytes
	pages := (nItems + per - 1) / per
	if pages == 0 {
		pages = 1
	}
	r := Region{Start: a.next, Pages: pages, ItemsPerPage: per}
	a.next += PageID(pages)
	return r, nil
}

// TotalPages reports how many pages have been allocated so far.
func (a *Allocator) TotalPages() int64 { return int64(a.next) }

// TotalBytes reports the simulated file size.
func (a *Allocator) TotalBytes() int64 { return int64(a.next) * int64(a.pageSize) }
