package pager

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoolHitsAndMisses(t *testing.T) {
	p := NewPool(2)
	p.Touch(1) // miss
	p.Touch(1) // hit
	p.Touch(2) // miss
	p.Touch(1) // hit
	s := p.Stats()
	if s.Reads != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.DiskAccesses() != 2 {
		t.Fatalf("disk accesses = %d", s.DiskAccesses())
	}
	if s.HitRatio() != 0.5 {
		t.Fatalf("hit ratio = %v", s.HitRatio())
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := NewPool(2)
	p.Touch(1)
	p.Touch(2)
	p.Touch(1) // 1 is now most recent
	p.Touch(3) // evicts 2
	if !p.Contains(1) || p.Contains(2) || !p.Contains(3) {
		t.Fatalf("residency after eviction: 1=%v 2=%v 3=%v",
			p.Contains(1), p.Contains(2), p.Contains(3))
	}
	p.Touch(2) // miss again
	if p.Stats().Misses != 4 {
		t.Fatalf("misses = %d want 4", p.Stats().Misses)
	}
	if p.Len() != 2 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestPoolResetAndDrop(t *testing.T) {
	p := NewPool(4)
	p.Touch(1)
	p.Touch(2)
	p.ResetStats()
	if p.Stats().Reads != 0 {
		t.Fatal("ResetStats kept counters")
	}
	p.Touch(1) // still resident: hit
	if p.Stats().Hits != 1 {
		t.Fatalf("warm pool should hit; stats=%+v", p.Stats())
	}
	p.Drop()
	p.Touch(1)
	if p.Stats().Misses != 1 {
		t.Fatal("cold pool should miss")
	}
}

func TestPoolDefaults(t *testing.T) {
	if NewPool(0).Capacity() != DefaultPoolPages {
		t.Fatal("default capacity")
	}
	if NewPool(-1).Capacity() != DefaultPoolPages {
		t.Fatal("negative capacity")
	}
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty hit ratio")
	}
}

func TestAllocatorRegions(t *testing.T) {
	a := NewAllocator(4096)
	r1, err := a.Alloc(1000, 16) // 256 items/page -> 4 pages
	if err != nil {
		t.Fatal(err)
	}
	if r1.Pages != 4 || r1.ItemsPerPage != 256 || r1.Start != 0 {
		t.Fatalf("r1 = %+v", r1)
	}
	r2, err := a.Alloc(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start != 4 || r2.Pages != 1 {
		t.Fatalf("r2 = %+v", r2)
	}
	r3, err := a.Alloc(0, 8) // empty region still gets a header page
	if err != nil {
		t.Fatal(err)
	}
	if r3.Pages != 1 {
		t.Fatalf("r3 = %+v", r3)
	}
	if a.TotalPages() != 6 {
		t.Fatalf("total pages = %d", a.TotalPages())
	}
	if a.TotalBytes() != 6*4096 {
		t.Fatalf("total bytes = %d", a.TotalBytes())
	}
}

func TestAllocatorErrors(t *testing.T) {
	a := NewAllocator(0)
	if a.PageSize() != PageSize {
		t.Fatalf("default page size = %d", a.PageSize())
	}
	if _, err := a.Alloc(10, 0); err == nil {
		t.Fatal("zero item size should fail")
	}
	if _, err := a.Alloc(10, PageSize+1); err == nil {
		t.Fatal("oversized item should fail")
	}
}

func TestRegionPageOf(t *testing.T) {
	a := NewAllocator(64)
	r, err := a.Alloc(10, 16) // 4 items/page -> 3 pages
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		slot int
		page PageID
	}{{0, 0}, {3, 0}, {4, 1}, {7, 1}, {8, 2}, {9, 2}}
	for _, c := range cases {
		if got := r.PageOf(c.slot); got != c.page {
			t.Errorf("PageOf(%d) = %d want %d", c.slot, got, c.page)
		}
	}
}

// Property: the pool never exceeds capacity, hits+misses == reads, and a
// page touched twice in a row is always a hit.
func TestQuickPoolInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, capRaw uint8) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		capacity := int(capRaw%16) + 1
		p := NewPool(capacity)
		for i := 0; i < 500; i++ {
			id := PageID(r.Intn(64))
			p.Touch(id)
			if p.Len() > capacity {
				return false
			}
			before := p.Stats()
			p.Touch(id)
			after := p.Stats()
			if after.Hits != before.Hits+1 {
				return false
			}
		}
		s := p.Stats()
		return s.Hits+s.Misses == s.Reads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scanning a region sequentially costs exactly Pages misses on a
// cold pool with sufficient capacity.
func TestQuickSequentialScanCost(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw%5000) + 1
		a := NewAllocator(4096)
		r, err := a.Alloc(n, 16)
		if err != nil {
			return false
		}
		p := NewPool(r.Pages + 1)
		for slot := 0; slot < n; slot++ {
			p.Touch(r.PageOf(slot))
		}
		return int(p.Stats().Misses) == r.Pages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
