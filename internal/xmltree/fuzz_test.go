package xmltree

import (
	"bytes"
	"io"
	"testing"
)

// FuzzParse drives Parse with arbitrary byte streams under tight resource
// limits: it must reject or accept every input without panicking or
// unbounded allocation, and anything it accepts must serialize back out.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<a></a>",
		"<a><b>x</b></a>",
		`<Project id="7"><Research><Location>newyork</Location></Research>` +
			`<Development><Location>boston</Location></Development></Project>`,
		`<?xml version="1.0"?><!DOCTYPE a><!-- c --><a><?pi data?><b>x</b></a>`,
		`<a><b>x &amp; y</b><c><![CDATA[<raw>]]></c></a>`,
		"<a><b></a></b>",
		"<a></a><b></b>",
		"just text",
		nestedXML(40),
		wideXML(40),
		`<r a="1" b="2">mixed<c/>tail</r>`,
		"<a>\xff\xfe</a>",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	opts := ParseOptions{MaxDepth: 64, MaxNodes: 1 << 14, MaxInputBytes: 1 << 18}
	f.Fuzz(func(t *testing.T, data []byte) {
		root, err := Parse(bytes.NewReader(data), opts)
		if err != nil {
			return
		}
		if root == nil {
			t.Fatal("nil root with nil error")
		}
		if size := root.Size(); size > 1<<14 {
			t.Fatalf("accepted tree of %d nodes beyond the configured limit", size)
		}
		if err := WriteXML(io.Discard, root); err != nil {
			t.Fatalf("accepted tree does not serialize: %v", err)
		}
	})
}
