package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// CorpusStats summarizes a record corpus the way Section 6.1 describes its
// datasets: record and node counts, depth, fanout, value density, distinct
// paths, and the identical-sibling rate that decides whether constraint f2
// is needed.
type CorpusStats struct {
	Records       int
	Nodes         int
	ValueNodes    int
	MaxDepth      int
	AvgNodes      float64
	AvgDepth      float64
	MaxFanout     int
	DistinctPaths int
	// IdenticalSiblingRecords counts records containing at least one
	// identical-sibling group (same label under one parent).
	IdenticalSiblingRecords int
	// RootNames tallies record types.
	RootNames map[string]int
}

// CollectStats scans a corpus.
func CollectStats(docs []*Document) CorpusStats {
	s := CorpusStats{RootNames: map[string]int{}}
	paths := map[string]bool{}
	totalDepth := 0
	for _, d := range docs {
		if d == nil || d.Root == nil {
			continue
		}
		s.Records++
		s.RootNames[d.Root.Name]++
		hasIdentical := false
		var walk func(n *Node, path string, depth int)
		walk = func(n *Node, path string, depth int) {
			s.Nodes++
			if n.IsValue {
				s.ValueNodes++
				path += "/=" + n.Value
			} else {
				path += "/" + n.Name
			}
			paths[path] = true
			if depth > s.MaxDepth {
				s.MaxDepth = depth
			}
			if len(n.Children) > s.MaxFanout {
				s.MaxFanout = len(n.Children)
			}
			labels := map[string]int{}
			for _, c := range n.Children {
				labels[c.Label()]++
			}
			for _, cnt := range labels {
				if cnt > 1 {
					hasIdentical = true
				}
			}
			for _, c := range n.Children {
				walk(c, path, depth+1)
			}
		}
		walk(d.Root, "", 1)
		totalDepth += d.Root.Height()
		if hasIdentical {
			s.IdenticalSiblingRecords++
		}
	}
	s.DistinctPaths = len(paths)
	if s.Records > 0 {
		s.AvgNodes = float64(s.Nodes) / float64(s.Records)
		s.AvgDepth = float64(totalDepth) / float64(s.Records)
	}
	return s
}

// String renders the stats as a small report.
func (s CorpusStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "records             %d\n", s.Records)
	fmt.Fprintf(&b, "nodes               %d (avg %.1f per record, %.0f%% values)\n",
		s.Nodes, s.AvgNodes, 100*safeDiv(float64(s.ValueNodes), float64(s.Nodes)))
	fmt.Fprintf(&b, "depth               max %d, avg %.1f\n", s.MaxDepth, s.AvgDepth)
	fmt.Fprintf(&b, "max fanout          %d\n", s.MaxFanout)
	fmt.Fprintf(&b, "distinct paths      %d\n", s.DistinctPaths)
	fmt.Fprintf(&b, "identical siblings  %.1f%% of records\n",
		100*safeDiv(float64(s.IdenticalSiblingRecords), float64(s.Records)))
	names := make([]string, 0, len(s.RootNames))
	for n := range s.RootNames {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "root %-15s %d\n", n, s.RootNames[n])
	}
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
