// Package xmltree provides the tree model of XML documents and records used
// throughout the library: parsing real XML (via encoding/xml) into label
// trees, serializing them back, structural utilities, and a ground-truth
// unordered tree-pattern embedding checker against which all sequence-based
// query answers are validated.
//
// Following the paper's data model (Figure 1), an XML document is a tree of
// labeled nodes. Element and attribute names are interior labels; attribute
// values and text content become value leaf nodes hanging off their element.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one node of a document tree. Interior nodes carry an element or
// attribute Name; value leaves have IsValue set and carry the text in Value.
type Node struct {
	Name     string
	Value    string
	IsValue  bool
	Children []*Node
}

// Document is an indexable record: a tree plus its identifier.
type Document struct {
	ID   int32
	Root *Node
}

// NewElem builds an interior node with the given children.
func NewElem(name string, children ...*Node) *Node {
	return &Node{Name: name, Children: children}
}

// NewValue builds a value leaf.
func NewValue(v string) *Node {
	return &Node{Value: v, IsValue: true}
}

// Label renders the node's label for debugging: the name for elements, the
// quoted text for value leaves.
func (n *Node) Label() string {
	if n.IsValue {
		return fmt.Sprintf("%q", n.Value)
	}
	return n.Name
}

// Size reports the number of nodes in the subtree rooted at n (elements,
// attributes and values all count, matching the paper's node counts).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Height reports the maximum root-to-leaf depth of the subtree (a single
// node has height 1).
func (n *Node) Height() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if h := c.Height(); h > max {
			max = h
		}
	}
	return max + 1
}

// Clone deep-copies the subtree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Name: n.Name, Value: n.Value, IsValue: n.IsValue}
	if len(n.Children) > 0 {
		cp.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Walk visits every node of the subtree in depth-first pre-order. If fn
// returns false the node's children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Equal reports ordered structural equality.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Value != b.Value || a.IsValue != b.IsValue ||
		len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// canonKey returns a canonical serialization of the subtree that is invariant
// under sibling reordering, so Isomorphic can compare unordered trees.
func canonKey(n *Node) string {
	if n == nil {
		return ""
	}
	var label string
	if n.IsValue {
		label = "v\x00" + n.Value
	} else {
		label = "e\x00" + n.Name
	}
	if len(n.Children) == 0 {
		return label
	}
	keys := make([]string, len(n.Children))
	for i, c := range n.Children {
		keys[i] = canonKey(c)
	}
	sort.Strings(keys)
	return label + "(" + strings.Join(keys, ",") + ")"
}

// Isomorphic reports whether a and b are the same tree up to reordering of
// siblings — the tree isomorphism of Section 3.2 (Figure 5).
func Isomorphic(a, b *Node) bool {
	return canonKey(a) == canonKey(b)
}

// CanonicalKey exposes the sibling-order-invariant serialization, used by
// tests and by generators to deduplicate isomorphic structures.
func CanonicalKey(n *Node) string { return canonKey(n) }

// SortCanonical reorders every sibling list of the subtree into canonical
// (CanonicalKey) order, in place. Two isomorphic trees become Equal after
// SortCanonical.
func SortCanonical(n *Node) {
	if n == nil {
		return
	}
	for _, c := range n.Children {
		SortCanonical(c)
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		return canonKey(n.Children[i]) < canonKey(n.Children[j])
	})
}

// Embeds reports whether pattern is a sub-structure of data in the paper's
// sense (Figure 2): an injective mapping m of pattern nodes to data nodes
// with equal labels such that m(parent(x)) = parent(m(x)), and distinct
// sibling pattern nodes map to distinct data children. Sibling order is
// irrelevant. A nil pattern embeds trivially.
//
// This is the ground truth a structure match must agree with; the
// sequence-based engines are tested against it.
func Embeds(data, pattern *Node) bool {
	if pattern == nil {
		return true
	}
	if data == nil {
		return false
	}
	// The pattern root may match any node of the data tree.
	found := false
	data.Walk(func(d *Node) bool {
		if found {
			return false
		}
		if embedsAt(d, pattern) {
			found = true
			return false
		}
		return true
	})
	return found
}

// EmbedsAtRoot is Embeds restricted to mapping the pattern root onto the
// data root (document-rooted patterns).
func EmbedsAtRoot(data, pattern *Node) bool {
	if pattern == nil {
		return true
	}
	if data == nil {
		return false
	}
	return embedsAt(data, pattern)
}

func labelsMatch(d, p *Node) bool {
	if p.IsValue != d.IsValue {
		return false
	}
	if p.IsValue {
		return p.Value == d.Value
	}
	return p.Name == d.Name
}

// embedsAt checks pattern embedding with the pattern root pinned to d.
func embedsAt(d, p *Node) bool {
	if !labelsMatch(d, p) {
		return false
	}
	if len(p.Children) == 0 {
		return true
	}
	if len(p.Children) > len(d.Children) {
		return false
	}
	// Injective assignment of pattern children to data children:
	// backtracking bipartite matching. Fanouts are small in XML records,
	// so the O(k!) worst case is irrelevant in practice; candidates are
	// pre-filtered by recursive embedding.
	cand := make([][]int, len(p.Children))
	for i, pc := range p.Children {
		for j, dc := range d.Children {
			if embedsAt(dc, pc) {
				cand[i] = append(cand[i], j)
			}
		}
		if len(cand[i]) == 0 {
			return false
		}
	}
	// Order pattern children by fewest candidates first (fail fast).
	order := make([]int, len(p.Children))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(cand[order[a]]) < len(cand[order[b]]) })

	used := make([]bool, len(d.Children))
	var assign func(k int) bool
	assign = func(k int) bool {
		if k == len(order) {
			return true
		}
		for _, j := range cand[order[k]] {
			if used[j] {
				continue
			}
			used[j] = true
			if assign(k + 1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	return assign(0)
}

// ---------------------------------------------------------------------------
// XML parsing and serialization
// ---------------------------------------------------------------------------

// Default resource limits applied by Parse when the corresponding
// ParseOptions field is zero. They are generous for benchmark corpora while
// stopping hostile inputs (deep-nesting bombs, unbounded streams) at the
// ingestion boundary.
const (
	// DefaultMaxDepth bounds element nesting depth.
	DefaultMaxDepth = 1024
	// DefaultMaxNodes bounds the number of tree nodes one document may
	// produce (elements, attributes and values all count).
	DefaultMaxNodes = 16 << 20 // ~16.7M nodes
	// DefaultMaxInputBytes bounds how many input bytes Parse will consume.
	DefaultMaxInputBytes = 256 << 20 // 256 MiB
)

// LimitError reports that an input exceeded a parse resource limit. It is
// returned (wrapped) by Parse; use errors.As to detect it.
type LimitError struct {
	// Kind names the exceeded limit: "depth", "nodes", or "bytes".
	Kind string
	// Limit is the configured bound that was exceeded.
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("xmltree: input exceeds %s limit (%d)", e.Kind, e.Limit)
}

// ParseOptions controls XML-to-tree conversion.
type ParseOptions struct {
	// KeepWhitespaceText keeps whitespace-only character data as value
	// leaves. Default (false) drops them, which is what every XML index
	// benchmark does.
	KeepWhitespaceText bool

	// MaxDepth bounds element nesting depth (0: DefaultMaxDepth,
	// -1: unlimited). Exceeding it yields a *LimitError.
	MaxDepth int
	// MaxNodes bounds the total number of nodes the document may produce
	// (0: DefaultMaxNodes, -1: unlimited). Exceeding it yields a
	// *LimitError.
	MaxNodes int
	// MaxInputBytes bounds the bytes read from the input
	// (0: DefaultMaxInputBytes, -1: unlimited). Exceeding it yields a
	// *LimitError.
	MaxInputBytes int64
}

// effective resolves the 0-default / -1-unlimited convention. Unlimited is
// represented as the maximum value of the type.
func (o ParseOptions) effective() (maxDepth, maxNodes int, maxBytes int64) {
	maxDepth, maxNodes, maxBytes = o.MaxDepth, o.MaxNodes, o.MaxInputBytes
	if maxDepth == 0 {
		maxDepth = DefaultMaxDepth
	} else if maxDepth < 0 {
		maxDepth = int(^uint(0) >> 1)
	}
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	} else if maxNodes < 0 {
		maxNodes = int(^uint(0) >> 1)
	}
	if maxBytes == 0 {
		maxBytes = DefaultMaxInputBytes
	} else if maxBytes < 0 {
		maxBytes = int64(^uint64(0) >> 1)
	}
	return maxDepth, maxNodes, maxBytes
}

// limitedReader returns *LimitError once more than max bytes have been read.
// An input of exactly max bytes still parses: at the cap, EOF passes through
// and only an actual extra byte trips the limit.
type limitedReader struct {
	r   io.Reader
	n   int64 // bytes remaining before the cap
	max int64
	err error
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.err != nil {
		return 0, l.err
	}
	if l.n <= 0 {
		var probe [1]byte
		n, err := l.r.Read(probe[:])
		if n > 0 {
			l.err = &LimitError{Kind: "bytes", Limit: l.max}
			return 0, l.err
		}
		return 0, err
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// Parse reads one XML document from r and converts it to a tree:
//   - elements become interior nodes named by their local tag name;
//   - attributes become child nodes named by the attribute name, each with a
//     single value leaf carrying the attribute value;
//   - character data becomes value leaves under the enclosing element.
func Parse(r io.Reader, opts ParseOptions) (*Node, error) {
	maxDepth, maxNodes, maxBytes := opts.effective()
	lr := &limitedReader{r: r, n: maxBytes, max: maxBytes}
	dec := xml.NewDecoder(lr)
	var stack []*Node
	var root *Node
	nodes := 0
	addNodes := func(k int) error {
		nodes += k
		if nodes > maxNodes {
			return &LimitError{Kind: "nodes", Limit: int64(maxNodes)}
		}
		return nil
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if len(stack) >= maxDepth {
				return nil, fmt.Errorf("xmltree: parse: %w", &LimitError{Kind: "depth", Limit: int64(maxDepth)})
			}
			n := NewElem(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Children = append(n.Children, NewElem(a.Name.Local, NewValue(a.Value)))
			}
			// The element plus, per attribute, an attribute node and its
			// value leaf.
			if err := addNodes(1 + 2*len(n.Children)); err != nil {
				return nil, fmt.Errorf("xmltree: parse: %w", err)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			text := string(t)
			if !opts.KeepWhitespaceText && strings.TrimSpace(text) == "" {
				continue
			}
			if len(stack) == 0 {
				continue
			}
			if err := addNodes(1); err != nil {
				return nil, fmt.Errorf("xmltree: parse: %w", err)
			}
			parent := stack[len(stack)-1]
			parent.Children = append(parent.Children, NewValue(strings.TrimSpace(text)))
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse: unclosed elements")
	}
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s), ParseOptions{})
}

// MustParse is ParseString that panics on error; for tests and fixtures
// whose inputs are compile-time string literals. The panic is intentional
// (it signals a broken fixture, not a runtime condition): library and
// application code must use Parse/ParseString, which return the error. The
// public xseq API additionally wraps calls in a panic-recovery guard, so an
// escaped panic surfaces to API callers as an error rather than a crash.
func MustParse(s string) *Node {
	n, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return n
}

// WriteXML serializes the tree as XML. Value leaves are emitted as character
// data; element children named like attributes are emitted as elements (the
// attribute/element distinction is not preserved, which is fine for an index
// benchmark corpus).
func WriteXML(w io.Writer, n *Node) error {
	return writeXML(w, n, 0)
}

func writeXML(w io.Writer, n *Node, depth int) error {
	indent := strings.Repeat("  ", depth)
	if n.IsValue {
		_, err := fmt.Fprintf(w, "%s%s\n", indent, escapeText(n.Value))
		return err
	}
	if len(n.Children) == 0 {
		_, err := fmt.Fprintf(w, "%s<%s/>\n", indent, n.Name)
		return err
	}
	// Single value child collapses onto one line.
	if len(n.Children) == 1 && n.Children[0].IsValue {
		_, err := fmt.Fprintf(w, "%s<%s>%s</%s>\n", indent, n.Name, escapeText(n.Children[0].Value), n.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s>\n", indent, n.Name); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeXML(w, c, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
	return err
}

func escapeText(s string) string {
	var b strings.Builder
	_ = xml.EscapeText(&b, []byte(s))
	return b.String()
}

// String renders the subtree in a compact single-line form for debugging:
// P(R(L("boston")),D).
func (n *Node) String() string {
	var b strings.Builder
	writeCompact(&b, n)
	return b.String()
}

func writeCompact(b *strings.Builder, n *Node) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(n.Label())
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCompact(b, c)
		}
		b.WriteByte(')')
	}
}

// ---------------------------------------------------------------------------
// Paper fixtures
// ---------------------------------------------------------------------------

// Figure1 returns the sample project-hierarchy document of Figure 1.
func Figure1() *Node {
	return NewElem("P",
		NewValue("xml"),
		NewElem("R",
			NewElem("M", NewValue("tom")),
			NewElem("L", NewValue("newyork")),
		),
		NewElem("D",
			NewElem("M", NewValue("johnson")),
			NewElem("U",
				NewElem("M", NewValue("mary")),
				NewElem("N", NewValue("GUI")),
			),
			NewElem("U",
				NewElem("N", NewValue("engine")),
			),
			NewElem("L", NewValue("boston")),
		),
	)
}

// Figure2a returns the tree of Figure 2(a): P with children R, D(L), D(M).
func Figure2a() *Node {
	return NewElem("P",
		NewElem("R"),
		NewElem("D", NewElem("L")),
		NewElem("D", NewElem("M")),
	)
}

// Figure2b returns Figure 2(b): P with children D(L), D(M) — a
// sub-structure of Figure 2(a).
func Figure2b() *Node {
	return NewElem("P",
		NewElem("D", NewElem("L")),
		NewElem("D", NewElem("M")),
	)
}

// Figure2c returns Figure 2(c): P with a single D over both L and M — NOT a
// sub-structure of Figure 2(a); the paper's false-alarm example.
func Figure2c() *Node {
	return NewElem("P",
		NewElem("D", NewElem("L"), NewElem("M")),
	)
}

// Figure3a returns Figure 3(a): P with value xml, R(L(boston)), D(L(newyork)).
func Figure3a() *Node {
	return NewElem("P",
		NewValue("xml"),
		NewElem("R", NewElem("L", NewValue("boston"))),
		NewElem("D", NewElem("L", NewValue("newyork"))),
	)
}

// Figure3b returns Figure 3(b): P with value xml and two identical D
// siblings, the first with L(boston), the second with M(johnson).
func Figure3b() *Node {
	return NewElem("P",
		NewValue("xml"),
		NewElem("D", NewElem("L", NewValue("boston"))),
		NewElem("D", NewElem("M", NewValue("johnson"))),
	)
}

// Figure3c returns Figure 3(c): P with value xml, an empty D, and a D with
// both L(boston) and M(johnson). Figures 3(b) and 3(c) have the same
// multi-set of path-encoded nodes, which is why sequencing must supplement
// set representation.
func Figure3c() *Node {
	return NewElem("P",
		NewValue("xml"),
		NewElem("D"),
		NewElem("D", NewElem("L", NewValue("boston")), NewElem("M", NewValue("johnson"))),
	)
}

// Figure4D returns the data tree of Figure 4(a): P with two L children,
// L(S) and L(B).
func Figure4D() *Node {
	return NewElem("P",
		NewElem("L", NewElem("S")),
		NewElem("L", NewElem("B")),
	)
}

// Figure4Q returns the query tree of Figure 4(b): P with one L over both S
// and B. Its sequence is a subsequence of Figure4D's, yet it is not embedded
// in Figure4D — the canonical false alarm.
func Figure4Q() *Node {
	return NewElem("P",
		NewElem("L", NewElem("S"), NewElem("B")),
	)
}

// Figure5a and Figure5b are the isomorphic pair of Figure 5: the same
// structure with identical L siblings swapped, the false-dismissal example.
func Figure5a() *Node {
	return NewElem("P",
		NewElem("L", NewElem("S")),
		NewElem("L", NewElem("B")),
	)
}

// Figure5b returns the sibling-swapped form of Figure5a.
func Figure5b() *Node {
	return NewElem("P",
		NewElem("L", NewElem("B")),
		NewElem("L", NewElem("S")),
	)
}

// Figure11a returns the document of Figure 11(a): P(v1, R(U(M(v2)), L(v3))).
func Figure11a() *Node {
	return NewElem("P",
		NewValue("x1"),
		NewElem("R",
			NewElem("U", NewElem("M", NewValue("x2"))),
			NewElem("L", NewValue("x3")),
		),
	)
}

// Figure11b returns the document of Figure 11(b): same schema, different
// values: P(v5, R(U(M(v6)), L(v3))).
func Figure11b() *Node {
	return NewElem("P",
		NewValue("x5"),
		NewElem("R",
			NewElem("U", NewElem("M", NewValue("x6"))),
			NewElem("L", NewValue("x3")),
		),
	)
}
