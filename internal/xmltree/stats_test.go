package xmltree

import (
	"strings"
	"testing"
)

func TestCollectStatsBasics(t *testing.T) {
	docs := []*Document{
		{ID: 0, Root: Figure1()},
		{ID: 1, Root: Figure4D()}, // identical L siblings
		{ID: 2, Root: Figure2a()}, // identical D siblings
	}
	s := CollectStats(docs)
	if s.Records != 3 {
		t.Fatalf("records = %d", s.Records)
	}
	wantNodes := Figure1().Size() + Figure4D().Size() + Figure2a().Size()
	if s.Nodes != wantNodes {
		t.Fatalf("nodes = %d want %d", s.Nodes, wantNodes)
	}
	if s.MaxDepth != 5 { // Figure 1: P/D/U/M/mary
		t.Fatalf("max depth = %d", s.MaxDepth)
	}
	if s.MaxFanout != 4 { // Figure 1's D has M, U, U, L
		t.Fatalf("max fanout = %d", s.MaxFanout)
	}
	if s.IdenticalSiblingRecords != 3 {
		// Figure 1 has two U siblings too.
		t.Fatalf("identical-sibling records = %d", s.IdenticalSiblingRecords)
	}
	if s.RootNames["P"] != 3 {
		t.Fatalf("root names = %v", s.RootNames)
	}
	if s.ValueNodes == 0 || s.DistinctPaths == 0 {
		t.Fatalf("values=%d paths=%d", s.ValueNodes, s.DistinctPaths)
	}
}

func TestCollectStatsEmptyAndNil(t *testing.T) {
	s := CollectStats(nil)
	if s.Records != 0 || s.AvgNodes != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
	s2 := CollectStats([]*Document{nil, {ID: 1, Root: nil}})
	if s2.Records != 0 {
		t.Fatalf("nil docs counted: %+v", s2)
	}
}

func TestStatsString(t *testing.T) {
	s := CollectStats([]*Document{{ID: 0, Root: Figure1()}})
	out := s.String()
	for _, want := range []string{"records", "nodes", "depth", "max fanout", "distinct paths", "identical siblings", "root P"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
