package xmltree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSizeHeight(t *testing.T) {
	f1 := Figure1()
	// Figure 1: P, xml, R(M(tom), L(newyork)), D(M(johnson), U(M(mary),
	// N(GUI)), U(N(engine)), L(boston)) = 20 nodes.
	if got := f1.Size(); got != 20 {
		t.Fatalf("Figure1 size = %d want 20", got)
	}
	// P → D → U → M → mary is the longest chain: height 5.
	if got := f1.Height(); got != 5 {
		t.Fatalf("Figure1 height = %d want 5", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Height() != 0 {
		t.Fatal("nil node size/height should be 0")
	}
}

func TestCloneEqual(t *testing.T) {
	orig := Figure1()
	cp := orig.Clone()
	if !Equal(orig, cp) {
		t.Fatal("clone not Equal to original")
	}
	cp.Children[1].Name = "CHANGED"
	if Equal(orig, cp) {
		t.Fatal("mutating clone affected Equal")
	}
	if orig.Children[1].Name != "R" {
		t.Fatal("mutating clone mutated original")
	}
}

func TestEqualOrderSensitive(t *testing.T) {
	if Equal(Figure5a(), Figure5b()) {
		t.Fatal("Equal should be order sensitive")
	}
	if !Isomorphic(Figure5a(), Figure5b()) {
		t.Fatal("Figure 5 trees are isomorphic")
	}
}

func TestIsomorphicDistinguishes(t *testing.T) {
	// Figures 3(b) and 3(c) share the same path multiset but are NOT
	// isomorphic.
	if Isomorphic(Figure3b(), Figure3c()) {
		t.Fatal("Figure 3(b) and 3(c) should not be isomorphic")
	}
	if !Isomorphic(Figure1(), Figure1()) {
		t.Fatal("tree not isomorphic to itself")
	}
}

func TestSortCanonical(t *testing.T) {
	a, b := Figure5a(), Figure5b()
	SortCanonical(a)
	SortCanonical(b)
	if !Equal(a, b) {
		t.Fatal("canonical forms of isomorphic trees differ")
	}
}

func TestWalkPreOrder(t *testing.T) {
	var labels []string
	Figure2a().Walk(func(n *Node) bool {
		labels = append(labels, n.Label())
		return true
	})
	want := []string{"P", "R", "D", "L", "D", "M"}
	if len(labels) != len(want) {
		t.Fatalf("walk visited %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("walk order %v want %v", labels, want)
		}
	}
	// Pruning: skip children of D.
	var pruned []string
	Figure2a().Walk(func(n *Node) bool {
		pruned = append(pruned, n.Label())
		return n.Name != "D"
	})
	if len(pruned) != 4 { // P R D D
		t.Fatalf("pruned walk visited %v", pruned)
	}
}

func TestEmbedsPaperExamples(t *testing.T) {
	a, b, c := Figure2a(), Figure2b(), Figure2c()
	if !Embeds(a, b) {
		t.Fatal("Figure 2(b) should embed in 2(a)")
	}
	if Embeds(a, c) {
		t.Fatal("Figure 2(c) must NOT embed in 2(a) — the paper's false alarm")
	}
	// Figure 4: Q not a substructure of D.
	if Embeds(Figure4D(), Figure4Q()) {
		t.Fatal("Figure 4 query must not embed in Figure 4 data")
	}
	// But each branch separately does.
	if !Embeds(Figure4D(), NewElem("P", NewElem("L", NewElem("S")))) {
		t.Fatal("P/L/S should embed in Figure 4 data")
	}
	if !Embeds(Figure4D(), NewElem("P", NewElem("L", NewElem("B")))) {
		t.Fatal("P/L/B should embed in Figure 4 data")
	}
}

func TestEmbedsValues(t *testing.T) {
	doc := Figure1()
	q := NewElem("P",
		NewElem("R", NewElem("L", NewValue("newyork"))),
		NewElem("D", NewElem("L", NewValue("boston"))),
	)
	if !Embeds(doc, q) {
		t.Fatal("query of Section 3.1 should embed in Figure 1")
	}
	qWrong := NewElem("P",
		NewElem("R", NewElem("L", NewValue("boston"))),
	)
	if Embeds(doc, qWrong) {
		t.Fatal("R/L=boston should not embed (boston is under D)")
	}
}

func TestEmbedsInjectiveSiblings(t *testing.T) {
	// Data: P with ONE child D. Pattern: P with TWO D children.
	data := NewElem("P", NewElem("D"))
	pat := NewElem("P", NewElem("D"), NewElem("D"))
	if Embeds(data, pat) {
		t.Fatal("two pattern siblings must map to distinct data children")
	}
	data2 := NewElem("P", NewElem("D"), NewElem("D"))
	if !Embeds(data2, pat) {
		t.Fatal("two identical data children should satisfy two pattern siblings")
	}
}

func TestEmbedsAnywhere(t *testing.T) {
	// Pattern rooted below the document root.
	doc := Figure1()
	pat := NewElem("U", NewElem("N", NewValue("GUI")))
	if !Embeds(doc, pat) {
		t.Fatal("pattern should embed at an interior node")
	}
	if EmbedsAtRoot(doc, pat) {
		t.Fatal("EmbedsAtRoot must pin the pattern root to the document root")
	}
	if !EmbedsAtRoot(doc, NewElem("P", NewElem("D"))) {
		t.Fatal("rooted pattern should embed")
	}
}

func TestEmbedsNil(t *testing.T) {
	if !Embeds(Figure1(), nil) {
		t.Fatal("nil pattern embeds trivially")
	}
	if Embeds(nil, Figure1()) {
		t.Fatal("nothing embeds in a nil tree")
	}
}

func TestEmbedsHardAssignment(t *testing.T) {
	// A case where greedy candidate assignment fails but backtracking
	// succeeds: pattern children {A(X), A} and data children {A, A(X)}.
	data := NewElem("P", NewElem("A"), NewElem("A", NewElem("X")))
	pat := NewElem("P", NewElem("A", NewElem("X")), NewElem("A"))
	if !Embeds(data, pat) {
		t.Fatal("backtracking assignment should find the embedding")
	}
}

func TestParseBasic(t *testing.T) {
	src := `<Project id="7">
	  <Research>
	    <Location>newyork</Location>
	  </Research>
	  <Development><Location>boston</Location></Development>
	</Project>`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "Project" {
		t.Fatalf("root = %q", n.Name)
	}
	// id attribute becomes a child with a value leaf.
	var idNode *Node
	for _, c := range n.Children {
		if c.Name == "id" {
			idNode = c
		}
	}
	if idNode == nil || len(idNode.Children) != 1 || idNode.Children[0].Value != "7" {
		t.Fatalf("attribute conversion wrong: %v", n)
	}
	want := NewElem("Project",
		NewElem("id", NewValue("7")),
		NewElem("Research", NewElem("Location", NewValue("newyork"))),
		NewElem("Development", NewElem("Location", NewValue("boston"))),
	)
	if !Equal(n, want) {
		t.Fatalf("parsed tree = %v want %v", n, want)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"<a><b></a></b>",
		"<a></a><b></b>",
		"just text",
	} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) should fail", bad)
		}
	}
}

func TestParseIgnoresNonElementTokens(t *testing.T) {
	src := `<?xml version="1.0"?>
	<!DOCTYPE a>
	<!-- leading comment -->
	<a>
	  <!-- inner comment -->
	  <?pi data?>
	  <b>x</b>
	</a>`
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	want := NewElem("a", NewElem("b", NewValue("x")))
	if !Equal(n, want) {
		t.Fatalf("parsed = %v want %v", n, want)
	}
}

func TestParseEntitiesAndCDATA(t *testing.T) {
	n, err := ParseString(`<a><b>x &amp; y</b><c><![CDATA[<raw>]]></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Children[0].Children[0].Value != "x & y" {
		t.Fatalf("entity = %q", n.Children[0].Children[0].Value)
	}
	if n.Children[1].Children[0].Value != "<raw>" {
		t.Fatalf("cdata = %q", n.Children[1].Children[0].Value)
	}
}

func TestParseWhitespaceHandling(t *testing.T) {
	src := "<a>\n  <b>x</b>\n</a>"
	n, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 1 {
		t.Fatalf("whitespace text kept: %v", n)
	}
	n2, err := Parse(strings.NewReader(src), ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(n2.Children) <= 1 {
		t.Fatalf("KeepWhitespaceText dropped text: %v", n2)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	for _, tree := range []*Node{Figure1(), Figure2a(), Figure3c(), Figure4D()} {
		var buf bytes.Buffer
		if err := WriteXML(&buf, tree); err != nil {
			t.Fatal(err)
		}
		back, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("reparse failed: %v\n%s", err, buf.String())
		}
		if !Equal(tree, back) {
			t.Fatalf("round trip changed tree:\nwas  %v\ngot  %v\nxml:\n%s", tree, back, buf.String())
		}
	}
}

func TestWriteEscaping(t *testing.T) {
	tree := NewElem("a", NewValue(`x < y & "z"`))
	var buf bytes.Buffer
	if err := WriteXML(&buf, tree); err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tree, back) {
		t.Fatalf("escaping round trip failed: %q -> %v", buf.String(), back)
	}
}

func TestStringCompact(t *testing.T) {
	got := Figure2c().String()
	if got != "P(D(L,M))" {
		t.Fatalf("String = %q", got)
	}
	var nilNode *Node
	if nilNode.String() != "<nil>" {
		t.Fatalf("nil String = %q", nilNode.String())
	}
}

// randomTree builds a random small tree over a tiny label alphabet so that
// identical siblings and repeated labels are common.
func randomTree(rng *rand.Rand, maxDepth, maxFan int) *Node {
	labels := []string{"A", "B", "C"}
	n := NewElem(labels[rng.Intn(len(labels))])
	if maxDepth <= 1 {
		return n
	}
	fan := rng.Intn(maxFan + 1)
	for i := 0; i < fan; i++ {
		// Never place two value leaves adjacently: XML has no notion of
		// adjacent text nodes, so such trees cannot round-trip.
		prevIsValue := len(n.Children) > 0 && n.Children[len(n.Children)-1].IsValue
		if !prevIsValue && rng.Intn(5) == 0 {
			n.Children = append(n.Children, NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, maxDepth-1, maxFan))
		}
	}
	return n
}

// randomSubPattern extracts a random connected sub-pattern of t (a
// substructure by construction).
func randomSubPattern(rng *rand.Rand, t *Node) *Node {
	p := &Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

func TestQuickEmbedsExtractedPatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		data := randomTree(r, 4, 3)
		pat := randomSubPattern(r, data)
		return Embeds(data, pat) && EmbedsAtRoot(data, pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIsomorphicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shuffle := func(n *Node, r *rand.Rand) *Node {
		cp := n.Clone()
		var walk func(*Node)
		walk = func(x *Node) {
			r.Shuffle(len(x.Children), func(i, j int) {
				x.Children[i], x.Children[j] = x.Children[j], x.Children[i]
			})
			for _, c := range x.Children {
				walk(c)
			}
		}
		walk(cp)
		return cp
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		data := randomTree(r, 4, 3)
		shuf := shuffle(data, r)
		if !Isomorphic(data, shuf) {
			return false
		}
		// Embedding is invariant under sibling reorder of data.
		pat := randomSubPattern(r, data)
		return Embeds(shuf, pat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripXML(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		tree := randomTree(r, 4, 3)
		var buf bytes.Buffer
		if err := WriteXML(&buf, tree); err != nil {
			return false
		}
		back, err := ParseString(buf.String())
		if err != nil {
			return false
		}
		return Equal(tree, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
