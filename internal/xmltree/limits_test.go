package xmltree

import (
	"errors"
	"strings"
	"testing"
)

// nestedXML builds <a><a>...</a></a> with the given nesting depth.
func nestedXML(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	return b.String()
}

// wideXML builds <r><b/>...<b/></r> with n leaf children.
func wideXML(n int) string {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n; i++ {
		b.WriteString("<b></b>")
	}
	b.WriteString("</r>")
	return b.String()
}

func limitKind(t *testing.T, err error) string {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a *LimitError", err)
	}
	return le.Kind
}

func TestParseDepthLimit(t *testing.T) {
	opts := ParseOptions{MaxDepth: 8}
	if _, err := Parse(strings.NewReader(nestedXML(8)), opts); err != nil {
		t.Fatalf("depth exactly at limit should parse: %v", err)
	}
	_, err := Parse(strings.NewReader(nestedXML(9)), opts)
	if err == nil {
		t.Fatal("depth beyond limit should fail")
	}
	if kind := limitKind(t, err); kind != "depth" {
		t.Fatalf("kind = %q want depth", kind)
	}
	// -1 lifts the limit entirely, even past the default.
	if _, err := Parse(strings.NewReader(nestedXML(DefaultMaxDepth+10)),
		ParseOptions{MaxDepth: -1}); err != nil {
		t.Fatalf("unlimited depth rejected deep input: %v", err)
	}
}

func TestParseDepthDefault(t *testing.T) {
	if _, err := Parse(strings.NewReader(nestedXML(DefaultMaxDepth)), ParseOptions{}); err != nil {
		t.Fatalf("default-depth input should parse: %v", err)
	}
	_, err := Parse(strings.NewReader(nestedXML(DefaultMaxDepth+1)), ParseOptions{})
	if err == nil {
		t.Fatal("deeper-than-default input should fail")
	}
	if kind := limitKind(t, err); kind != "depth" {
		t.Fatalf("kind = %q want depth", kind)
	}
}

func TestParseNodeLimit(t *testing.T) {
	// <r> plus 10 children = 11 nodes.
	if _, err := Parse(strings.NewReader(wideXML(10)), ParseOptions{MaxNodes: 11}); err != nil {
		t.Fatalf("node count exactly at limit should parse: %v", err)
	}
	_, err := Parse(strings.NewReader(wideXML(11)), ParseOptions{MaxNodes: 11})
	if err == nil {
		t.Fatal("node count beyond limit should fail")
	}
	if kind := limitKind(t, err); kind != "nodes" {
		t.Fatalf("kind = %q want nodes", kind)
	}
	if _, err := Parse(strings.NewReader(wideXML(100)), ParseOptions{MaxNodes: -1}); err != nil {
		t.Fatalf("unlimited nodes rejected input: %v", err)
	}
}

func TestParseNodeLimitCountsAttributesAndText(t *testing.T) {
	// <r a="1">x</r> = element + attribute node + attribute value + text = 4.
	src := `<r a="1">x</r>`
	if _, err := Parse(strings.NewReader(src), ParseOptions{MaxNodes: 4}); err != nil {
		t.Fatalf("4-node doc at limit 4 should parse: %v", err)
	}
	_, err := Parse(strings.NewReader(src), ParseOptions{MaxNodes: 3})
	if err == nil {
		t.Fatal("4-node doc at limit 3 should fail")
	}
	if kind := limitKind(t, err); kind != "nodes" {
		t.Fatalf("kind = %q want nodes", kind)
	}
}

func TestParseByteLimit(t *testing.T) {
	src := "<a><b>x</b></a>"
	if _, err := Parse(strings.NewReader(src),
		ParseOptions{MaxInputBytes: int64(len(src))}); err != nil {
		t.Fatalf("input exactly at byte limit should parse: %v", err)
	}
	_, err := Parse(strings.NewReader(src), ParseOptions{MaxInputBytes: int64(len(src)) - 1})
	if err == nil {
		t.Fatal("input beyond byte limit should fail")
	}
	if kind := limitKind(t, err); kind != "bytes" {
		t.Fatalf("kind = %q want bytes", kind)
	}
	if _, err := Parse(strings.NewReader(src), ParseOptions{MaxInputBytes: -1}); err != nil {
		t.Fatalf("unlimited bytes rejected input: %v", err)
	}
}

func TestLimitErrorMessage(t *testing.T) {
	e := &LimitError{Kind: "depth", Limit: 8}
	if msg := e.Error(); !strings.Contains(msg, "depth") || !strings.Contains(msg, "8") {
		t.Fatalf("unhelpful message %q", msg)
	}
}
