package adapt

import (
	"math"
	"testing"

	"xseq/internal/telemetry"
)

func TestDeriveWeightsCreditsPrefixes(t *testing.T) {
	w := DeriveWeights([]telemetry.PatternCount{
		{Pattern: "/site/people/person", Count: 90},
		{Pattern: "/site/regions", Count: 10},
	}, 4)
	// "site" is credited by both patterns (100), the hottest path; the
	// spine of the hot pattern follows at 90; the cold branch at 10.
	if w["site"] != 5 {
		t.Errorf("w[site] = %v, want 5 (1 + boost)", w["site"])
	}
	if got := w["site/people"]; math.Abs(got-4.6) > 0.01 {
		t.Errorf("w[site/people] = %v, want 4.6", got)
	}
	if got := w["site/people/person"]; math.Abs(got-4.6) > 0.01 {
		t.Errorf("w[site/people/person] = %v, want 4.6", got)
	}
	if got := w["site/regions"]; math.Abs(got-1.4) > 0.01 {
		t.Errorf("w[site/regions] = %v, want 1.4", got)
	}
}

func TestDeriveWeightsStopsAtNonConcreteSteps(t *testing.T) {
	w := DeriveWeights([]telemetry.PatternCount{
		{Pattern: "/a/b//c", Count: 5},  // descendant step ends the walk after a/b
		{Pattern: "/a/*/d", Count: 5},   // wildcard ends the walk after a
		{Pattern: "//orphan", Count: 5}, // descendant-rooted: nothing anchors
	}, 4)
	for _, forbidden := range []string{"a/b/c", "c", "a/d", "d", "orphan"} {
		if _, ok := w[forbidden]; ok {
			t.Errorf("non-concrete step leaked a weight for %q: %v", forbidden, w)
		}
	}
	if _, ok := w["a/b"]; !ok {
		t.Errorf("concrete prefix a/b missing: %v", w)
	}
}

func TestDeriveWeightsBranchingPattern(t *testing.T) {
	// A twig credits both branches.
	w := DeriveWeights([]telemetry.PatternCount{
		{Pattern: "/r[/a]/b", Count: 8},
	}, 4)
	for _, want := range []string{"r", "r/a", "r/b"} {
		if _, ok := w[want]; !ok {
			t.Errorf("branch path %q missing: %v", want, w)
		}
	}
}

func TestDeriveWeightsEmptyAndGarbage(t *testing.T) {
	if w := DeriveWeights(nil, 4); w != nil {
		t.Errorf("nil input: want nil, got %v", w)
	}
	if w := DeriveWeights([]telemetry.PatternCount{{Pattern: "%%%not a query", Count: 5}}, 4); w != nil {
		t.Errorf("garbage input: want nil, got %v", w)
	}
	if w := DeriveWeights([]telemetry.PatternCount{{Pattern: "/a", Count: 0}}, 4); w != nil {
		t.Errorf("zero counts: want nil, got %v", w)
	}
}

func TestDriftProperties(t *testing.T) {
	a := map[string]float64{"x": 5, "y": 2}
	b := map[string]float64{"x": 5, "y": 2}
	if d := Drift(a, b); d != 0 {
		t.Errorf("identical vectors: drift = %v, want 0", d)
	}
	if d := Drift(nil, nil); d != 0 {
		t.Errorf("empty vectors: drift = %v, want 0", d)
	}
	// Symmetry.
	c := map[string]float64{"x": 2, "z": 4}
	if d1, d2 := Drift(a, c), Drift(c, a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric drift: %v vs %v", d1, d2)
	}
	// A missing path counts as the default weight 1, so dropping a
	// near-default path barely moves the needle while dropping a heavy
	// path moves it a lot.
	small := Drift(map[string]float64{"x": 5, "y": 1.1}, map[string]float64{"x": 5})
	large := Drift(map[string]float64{"x": 5, "y": 5}, map[string]float64{"x": 5})
	if small >= large {
		t.Errorf("drift should scale with dropped weight mass: %v vs %v", small, large)
	}
	// Bounded to [0, 1].
	if d := Drift(map[string]float64{"x": 100}, map[string]float64{"y": 100}); d < 0 || d > 1 {
		t.Errorf("drift out of range: %v", d)
	}
}

// TestDriftShiftScenario wires the two halves together: the drift between
// weights derived before and after a workload shift must dwarf the drift
// between two derivations of the same mix (which should be ~0 thanks to
// rounding), so a threshold can separate them.
func TestDriftShiftScenario(t *testing.T) {
	mixA := []telemetry.PatternCount{
		{Pattern: "/site/people/person", Count: 900},
		{Pattern: "/site/regions", Count: 100},
	}
	mixAAgain := []telemetry.PatternCount{
		{Pattern: "/site/people/person", Count: 850}, // same shape, new sample
		{Pattern: "/site/regions", Count: 95},
	}
	mixB := []telemetry.PatternCount{
		{Pattern: "/site/regions/africa/item", Count: 900},
		{Pattern: "/site/people/person", Count: 50},
	}
	wa, wa2, wb := DeriveWeights(mixA, 4), DeriveWeights(mixAAgain, 4), DeriveWeights(mixB, 4)
	stable, shifted := Drift(wa, wa2), Drift(wa, wb)
	t.Logf("stable drift %.4f, shifted drift %.4f", stable, shifted)
	if stable > 0.05 {
		t.Errorf("re-deriving the same mix drifted %.4f, want ~0", stable)
	}
	if shifted < 0.2 {
		t.Errorf("workload shift drifted only %.4f, want substantial", shifted)
	}
	if shifted < stable*4 {
		t.Errorf("no threshold separates stable (%.4f) from shifted (%.4f)", stable, shifted)
	}
}
