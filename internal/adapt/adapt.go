// Package adapt turns a live pattern-frequency table into the paper's §5
// weight vector w(C) and measures how far the serving index's sequencing
// has drifted from the current query mix — the two pure functions at the
// heart of online adaptive resequencing. The server's background loop
// (internal/server) owns the policy (when to decay, when to rebuild); this
// package owns the math, so it is independently testable and reusable by
// the bench harness.
package adapt

import (
	"math"

	"xseq/internal/query"
	"xseq/internal/telemetry"
)

// DefaultBoost scales how strongly the hottest path is promoted: the most
// frequently queried path gets w = 1 + boost, everything else
// proportionally less. The paper's Eq 6 leaves w(C)'s magnitude open; a
// boost of 4 makes the hottest path's priority 5x its base probability —
// enough to reorder against typical p(C|root) spreads without drowning the
// probability signal entirely.
const DefaultBoost = 4.0

// minWeight drops near-noise weights from the derived vector: a path whose
// weight would barely differ from the default 1 does not meaningfully
// change sequencing order, and keeping it only inflates the drift signal.
const minWeight = 1.05

// DeriveWeights maps an observed pattern-frequency table to a weight
// vector: slash-separated root-anchored element name paths -> w(C) >= 1.
//
// Each pattern contributes its count to every concrete element prefix it
// names: the pattern /site/people/person credits site, site/people, and
// site/people/person. Only child-axis, named, non-value steps anchor a
// schema path — a descendant step ("//x"), wildcard, or value test stops
// that branch's walk, because the paths it matches cannot be named without
// consulting a schema. Credits normalize against the hottest path:
// w = 1 + boost·credit/max. Paths whose weight lands within noise of the
// default 1 are dropped (boost <= 0 uses DefaultBoost).
func DeriveWeights(counts []telemetry.PatternCount, boost float64) map[string]float64 {
	if boost <= 0 {
		boost = DefaultBoost
	}
	credit := make(map[string]int64)
	for _, pc := range counts {
		if pc.Count <= 0 {
			continue
		}
		pat, err := query.Parse(pc.Pattern)
		if err != nil || pat.Root == nil {
			continue // unparseable table entry: no weight signal
		}
		creditSteps(credit, pat.Root, "", pc.Count)
	}
	var max int64
	for _, c := range credit {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return nil
	}
	out := make(map[string]float64, len(credit))
	for path, c := range credit {
		w := 1 + boost*float64(c)/float64(max)
		w = math.Round(w*1000) / 1000 // stable against float jitter across derivations
		if w >= minWeight {
			out[path] = w
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// creditSteps walks the concrete child-axis element spine of a pattern,
// crediting every prefix path.
func creditSteps(credit map[string]int64, n *query.PNode, prefix string, count int64) {
	if n.Axis != query.AxisChild || n.Wildcard || n.IsValue || n.Name == "" {
		return
	}
	path := prefix + n.Name
	credit[path] += count
	for _, c := range n.Children {
		creditSteps(credit, c, path+"/", count)
	}
}

// Drift measures how far weight vector a is from b on a [0, 1] scale:
// the L1 distance over the union of their paths (a path missing from a
// vector has the default weight 1), normalized by the sum of pointwise
// maxima. 0 means identical vectors (the serving index is perfectly tuned
// to the mix); values near 1 mean the hot set moved wholesale. Symmetric,
// and insensitive to paths both vectors leave at the default.
func Drift(a, b map[string]float64) float64 {
	var num, den float64
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			bv = 1
		}
		num += math.Abs(av - bv)
		den += math.Max(av, bv)
	}
	for k, bv := range b {
		if _, ok := a[k]; ok {
			continue
		}
		num += math.Abs(1 - bv)
		den += math.Max(1, bv)
	}
	if den == 0 {
		return 0
	}
	return num / den
}
