package engine

// MergeAscending merges ascending, mutually disjoint document-id lists into
// out (appending), preserving ascending order — the merge rule for engines
// that span several sub-engines: shard fan-out results and base+delta pairs
// are disjoint by construction (a document lives in exactly one partition),
// so the merge needs no deduplication and replaces the concat+sort the
// fan-out paths used to do. limit > 0 stops after limit ids (the smallest
// limit ids of the union, since the merge emits in ascending order);
// limit <= 0 merges everything.
//
// The head scan is linear in the list count: shard counts are small (one
// per core, typically), so a heap's bookkeeping costs more than it saves.
//
// MergeAscending consumes lists as cursor state: the elements of the slice
// are reordered and resliced. Pass a scratch copy if the caller still needs
// them.
func MergeAscending(lists [][]int32, out []int32, limit int) []int32 {
	// Compact away exhausted lists once up front so the per-element scan
	// only visits live ones.
	live := 0
	for _, l := range lists {
		if len(l) > 0 {
			lists[live] = l
			live++
		}
	}
	lists = lists[:live]
	for len(lists) > 1 {
		if limit > 0 && len(out) >= limit {
			return out
		}
		min := 0
		for k := 1; k < len(lists); k++ {
			if lists[k][0] < lists[min][0] {
				min = k
			}
		}
		out = append(out, lists[min][0])
		if lists[min] = lists[min][1:]; len(lists[min]) == 0 {
			lists[min] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
	}
	if len(lists) == 1 {
		rest := lists[0]
		if limit > 0 {
			if room := limit - len(out); room <= 0 {
				return out
			} else if room < len(rest) {
				rest = rest[:room]
			}
		}
		out = append(out, rest...)
	}
	return out
}
