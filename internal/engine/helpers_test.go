// Test helpers shared by the dynamic-engine suites. The tests live in the
// external package so they can exercise Dynamic over real index.Index
// sub-engines (engine cannot import index itself).
package engine_test

import (
	"context"
	"math/rand"
	"testing"

	"xseq/internal/engine"
	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// csBuilder infers a schema per build and returns a probability-strategy
// monolithic index, the way the xseq facade's dynamic builder does.
func csBuilder() engine.Builder {
	return func(ctx context.Context, docs []*xmltree.Document) (engine.Engine, error) {
		roots := make([]*xmltree.Node, len(docs))
		for i, d := range docs {
			roots[i] = d.Root
		}
		sch, err := schema.Infer(roots)
		if err != nil {
			return nil, err
		}
		enc := pathenc.NewEncoder(1 << 20)
		return index.BuildContext(ctx, docs, index.Options{Encoder: enc, Strategy: sequence.NewProbability(sch, enc)})
	}
}

func mustBuild(t testing.TB, docs []*xmltree.Document) engine.Engine {
	t.Helper()
	e, err := csBuilder()(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomTree(rng *rand.Rand, depth, fan int) *xmltree.Node {
	return randomSubtree(rng, depth, fan, true)
}

func randomSubtree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	var n *xmltree.Node
	if isRoot {
		// A fixed root label keeps corpora schema-inferable.
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomSubtree(rng, depth-1, fan, false))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

// canonicalPattern clones the pattern with values replaced by their hash
// bucket names, matching sequence.CanonicalizeValues on documents, so
// ground-truth comparisons share the engine's designator-level semantics.
func canonicalPattern(p *query.Pattern, enc *pathenc.Encoder) *query.Pattern {
	var clone func(n *query.PNode) *query.PNode
	clone = func(n *query.PNode) *query.PNode {
		cp := &query.PNode{Axis: n.Axis, Wildcard: n.Wildcard, Name: n.Name, IsValue: n.IsValue, Value: n.Value}
		if n.IsValue {
			cp.Value = enc.SymbolName(enc.ValueSymbol(n.Value))
		}
		for _, c := range n.Children {
			cp.Children = append(cp.Children, clone(c))
		}
		return cp
	}
	return &query.Pattern{Root: clone(p.Root), Text: p.Text}
}

// groundTruth evaluates the pattern at designator level: both documents and
// pattern canonicalized to value-bucket names.
func groundTruth(docs []*xmltree.Document, p *query.Pattern, enc *pathenc.Encoder) []int32 {
	canon := make([]*xmltree.Document, len(docs))
	for i, d := range docs {
		canon[i] = &xmltree.Document{ID: d.ID, Root: sequence.CanonicalizeValues(d.Root, enc)}
	}
	return query.Eval(canon, canonicalPattern(p, enc))
}

// testCorpus generates n small random documents (the same shape the index
// resilience suite uses).
func testCorpus(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	labels := []string{"A", "B", "C"}
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		root := xmltree.NewElem("R")
		for k := 0; k <= rng.Intn(3); k++ {
			child := xmltree.NewElem(labels[rng.Intn(len(labels))])
			if rng.Intn(2) == 0 {
				child.Children = append(child.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
			}
			root.Children = append(root.Children, child)
		}
		docs[i] = &xmltree.Document{ID: int32(i), Root: root}
	}
	return docs
}

// largeCorpus builds a corpus big enough that a full scan takes measurable
// time, so cancellation has something to interrupt.
func largeCorpus(t testing.TB, n int) []*xmltree.Document {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	docs := make([]*xmltree.Document, n)
	for i := range docs {
		docs[i] = &xmltree.Document{ID: int32(i), Root: randomTree(rng, 5, 3)}
	}
	return docs
}
