package engine_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"xseq/internal/engine"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func TestDynamicBasics(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDocuments() != 1 || d.NumNodes() == 0 {
		t.Fatalf("initial state: docs=%d nodes=%d", d.NumDocuments(), d.NumNodes())
	}
	// Insert and query before compaction.
	if err := d.Insert(&xmltree.Document{ID: 1, Root: xmltree.Figure3a()}); err != nil {
		t.Fatal(err)
	}
	if d.PendingDocuments() != 1 {
		t.Fatalf("pending = %d", d.PendingDocuments())
	}
	got, err := d.Query(query.MustParse("//L[text='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1}) {
		t.Fatalf("query across main+delta = %v", got)
	}
	// Compact and requery.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.PendingDocuments() != 0 {
		t.Fatalf("pending after compact = %d", d.PendingDocuments())
	}
	got2, err := d.Query(query.MustParse("//L[text='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got2, []int32{0, 1}) {
		t.Fatalf("query after compact = %v", got2)
	}
}

func TestDynamicErrors(t *testing.T) {
	if _, err := engine.NewDynamic(nil, nil, 0); err == nil {
		t.Fatal("nil builder should fail")
	}
	d, err := engine.NewDynamic(csBuilder(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Main() != nil {
		t.Fatal("empty dynamic should have no main")
	}
	if err := d.Insert(nil); err == nil {
		t.Fatal("nil insert should fail")
	}
	if err := d.Insert(&xmltree.Document{ID: 5, Root: xmltree.Figure1()}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(&xmltree.Document{ID: 5, Root: xmltree.Figure2a()}); err == nil {
		t.Fatal("duplicate id should fail")
	}
	if _, err := engine.NewDynamic(csBuilder(), []*xmltree.Document{
		{ID: 1, Root: xmltree.Figure1()}, {ID: 1, Root: xmltree.Figure1()},
	}, 0); err == nil {
		t.Fatal("duplicate initial ids should fail")
	}
}

func TestDynamicAutoCompact(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 7; i++ {
		if err := d.Insert(&xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)}); err != nil {
			t.Fatal(err)
		}
	}
	// Threshold 3: compactions at inserts 3 and 6; one document pending.
	if d.PendingDocuments() != 1 {
		t.Fatalf("pending = %d want 1", d.PendingDocuments())
	}
	if d.Main() == nil || d.NumDocuments() != 7 {
		t.Fatalf("main missing or wrong count %d", d.NumDocuments())
	}
}

// TestDynamicSaveUnsupported: a dynamic engine cannot snapshot its
// transient delta state; the capability gap is the ErrUnsupported sentinel.
func TestDynamicSaveUnsupported(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(nil); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("Save = %v, want ErrUnsupported", err)
	}
	if err := d.SaveFile("/nonexistent/x"); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("SaveFile = %v, want ErrUnsupported", err)
	}
}

// TestDynamicGeneration: the generation bumps before every insert and every
// non-empty compaction, and never otherwise — the contract generation-keyed
// caches invalidate by.
func TestDynamicGeneration(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
	}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	g0 := d.Generation()
	if _, err := d.Query(query.MustParse("//L")); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != g0 {
		t.Fatal("query must not bump the generation")
	}
	if err := d.Insert(&xmltree.Document{ID: 1, Root: xmltree.Figure3a()}); err != nil {
		t.Fatal(err)
	}
	g1 := d.Generation()
	if g1 <= g0 {
		t.Fatalf("insert did not bump: %d -> %d", g0, g1)
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	g2 := d.Generation()
	if g2 <= g1 {
		t.Fatalf("compaction did not bump: %d -> %d", g1, g2)
	}
	// An empty-buffer compaction changes nothing and must not bump.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != g2 {
		t.Fatal("no-op compaction bumped the generation")
	}
}

// TestDynamicQueryOptions: the option variants work across the main+delta
// split — stats merge, limits count across both sides.
func TestDynamicQueryOptions(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
	}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(&xmltree.Document{ID: 1, Root: xmltree.Figure3a()}); err != nil {
		t.Fatal(err)
	}
	pat := query.MustParse("//L[text='boston']")
	var st engine.QueryStats
	ids, err := d.QueryWithContext(context.Background(), pat, engine.QueryOptions{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(ids, []int32{0, 1}) {
		t.Fatalf("explain query = %v", ids)
	}
	if st.Results != 2 || st.Instances < 2 || st.LinkProbes == 0 {
		t.Fatalf("stats did not merge across main+delta: %+v", st)
	}
	limited, err := d.QueryWithContext(context.Background(), pat, engine.QueryOptions{MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Fatalf("limited query = %v, want 1 id", limited)
	}
}

// Property: dynamic answers equal ground truth at every insertion point.
func TestQuickDynamicEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		d, err := engine.NewDynamic(csBuilder(), nil, 5)
		if err != nil {
			return false
		}
		var docs []*xmltree.Document
		enc := pathenc.NewEncoder(1 << 20)
		for i := 0; i < 12; i++ {
			doc := &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3)}
			docs = append(docs, doc)
			if err := d.Insert(doc); err != nil {
				return false
			}
			if i%4 != 3 {
				continue
			}
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			want := groundTruth(docs, pat, enc)
			got, err := d.Query(pat)
			if err != nil {
				t.Logf("query error: %v", err)
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch at %d for %s: got %v want %v", i, pat, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicConcurrentInsertQuery(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var seedDocs []*xmltree.Document
	for i := 0; i < 20; i++ {
		seedDocs = append(seedDocs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	for _, doc := range seedDocs[:10] {
		if err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, doc := range seedDocs[10:] {
			if err := d.Insert(doc); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		pat := query.MustParse("//A")
		for k := 0; k < 30; k++ {
			if _, err := d.Query(pat); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if d.NumDocuments() != 20 {
		t.Fatalf("docs = %d", d.NumDocuments())
	}
}

func TestDynamicContextCancelled(t *testing.T) {
	d, err := engine.NewDynamic(csBuilder(), nil, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range largeCorpus(t, 32) {
		if err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The lazy delta build runs under the query's context.
	if _, err := d.QueryContext(ctx, query.MustParse("//A")); !errors.Is(err, context.Canceled) {
		t.Fatalf("dynamic query on cancelled ctx = %v", err)
	}
	if err := d.CompactContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("compact on cancelled ctx = %v", err)
	}
	// The failed compaction must not have disturbed serving: a live query
	// still answers over everything.
	got, err := d.Query(query.MustParse("//A"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results after cancelled compaction")
	}
}
