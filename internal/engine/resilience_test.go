// Resilience tests drive the dynamic engine through injected failures —
// builders that error or panic mid-compaction — and check that every path
// degrades into a typed error while serving state stays intact.
package engine_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"xseq/internal/engine"
	"xseq/internal/faultio"
	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func TestDynamicCompactionFailureKeepsServing(t *testing.T) {
	docs := testCorpus(t, 6)
	// Call 1: initial build. Call 2: lazy delta. Call 3: the explicit
	// Compact — the one that fails. Call 4: the retry, which succeeds.
	b := faultio.FlakyBuilderN(csBuilder(), 3, 3, nil)
	d, err := engine.NewDynamic(b, docs[:4], 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs[4:] {
		if err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	pat := query.MustParse("//A")
	before, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}

	cerr := d.Compact()
	if cerr == nil {
		t.Fatal("compaction should have failed")
	}
	var ce *engine.CompactionError
	if !errors.As(cerr, &ce) {
		t.Fatalf("%v is not a *CompactionError", cerr)
	}
	if !errors.Is(cerr, faultio.ErrInjected) {
		t.Fatalf("%v does not wrap the injected error", cerr)
	}
	if ce.Docs != 6 {
		t.Fatalf("CompactionError.Docs = %d want 6", ce.Docs)
	}
	if d.LastCompactionError() == nil {
		t.Fatal("LastCompactionError should report the failure")
	}
	if d.PendingDocuments() != 2 {
		t.Fatalf("pending after failed compact = %d want 2", d.PendingDocuments())
	}

	after, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(before, after) {
		t.Fatalf("failed compaction changed answers: %v -> %v", before, after)
	}

	// The builder has recovered; the retry folds everything in.
	if err := d.Compact(); err != nil {
		t.Fatalf("retry compaction failed: %v", err)
	}
	if d.PendingDocuments() != 0 || d.LastCompactionError() != nil {
		t.Fatalf("retry left pending=%d lastErr=%v", d.PendingDocuments(), d.LastCompactionError())
	}
	final, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(before, final) {
		t.Fatalf("successful compaction changed answers: %v -> %v", before, final)
	}
}

func TestDynamicBuilderPanicContained(t *testing.T) {
	inner := csBuilder()
	calls := faultio.After(2)
	b := func(ctx context.Context, docs []*xmltree.Document) (engine.Engine, error) {
		// Panic on exactly the second call (the compaction below).
		if calls.Hit() && calls.Hits() == 2 {
			panic("injected builder panic")
		}
		return inner(ctx, docs)
	}
	docs := testCorpus(t, 5)
	d, err := engine.NewDynamic(b, docs[:4], 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Insert(docs[4]); err != nil {
		t.Fatal(err)
	}
	cerr := d.CompactContext(context.Background())
	if cerr == nil {
		t.Fatal("panicking compaction should surface an error")
	}
	var ce *engine.CompactionError
	if !errors.As(cerr, &ce) {
		t.Fatalf("%v is not a *CompactionError", cerr)
	}
	if !strings.Contains(cerr.Error(), "panic") {
		t.Fatalf("error %v does not mention the panic", cerr)
	}
	// Serving state is untouched: the main index still answers, the
	// buffered document is still pending, and the recovered builder (call 3)
	// lets queries and compaction proceed.
	if d.Main() == nil || d.PendingDocuments() != 1 {
		t.Fatalf("serving state disturbed: main=%v pending=%d", d.Main(), d.PendingDocuments())
	}
	if _, err := d.Query(query.MustParse("//A")); err != nil {
		t.Fatalf("query after contained panic: %v", err)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("compaction after contained panic: %v", err)
	}
}

func TestDynamicAutoCompactRetryAtWatermark(t *testing.T) {
	// The first auto-compaction (buffer hits threshold 2) fails; the next
	// attempt happens only once the buffer has grown by another threshold.
	b := faultio.FlakyBuilderN(csBuilder(), 1, 1, nil)
	d, err := engine.NewDynamic(b, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	docs := testCorpus(t, 4)
	if err := d.Insert(docs[0]); err != nil {
		t.Fatal(err)
	}
	err = d.Insert(docs[1]) // buffer reaches 2: auto-compaction fires and fails
	var ce *engine.CompactionError
	if !errors.As(err, &ce) {
		t.Fatalf("failed auto-compaction returned %v, want *CompactionError", err)
	}
	if d.PendingDocuments() != 2 || d.NumDocuments() != 2 {
		t.Fatalf("after failure: pending=%d docs=%d", d.PendingDocuments(), d.NumDocuments())
	}
	if err := d.Insert(docs[2]); err != nil { // 3 < watermark 4: no attempt
		t.Fatalf("insert below watermark should not retry: %v", err)
	}
	if err := d.Insert(docs[3]); err != nil { // 4 >= watermark: retry succeeds
		t.Fatalf("watermark retry failed: %v", err)
	}
	if d.PendingDocuments() != 0 || d.LastCompactionError() != nil {
		t.Fatalf("after retry: pending=%d lastErr=%v", d.PendingDocuments(), d.LastCompactionError())
	}
}

// TestDynamicConcurrentFlakyCompaction is the regression test for serving
// consistency: with inserts and queries racing while the builder fails a
// window of calls, no query may ever observe a half-compacted state —
// results are always sorted, duplicate-free document ids from the inserted
// universe, and errors are only the injected fault. Run under -race.
func TestDynamicConcurrentFlakyCompaction(t *testing.T) {
	const total = 24
	docs := testCorpus(t, total)
	b := faultio.FlakyBuilderN(csBuilder(), 3, 4, nil)
	d, err := engine.NewDynamic(b, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	pat := query.MustParse("//A")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, doc := range docs {
			if err := d.InsertContext(context.Background(), doc); err != nil {
				if !errors.Is(err, faultio.ErrInjected) {
					t.Errorf("unexpected insert error: %v", err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 60; k++ {
			ids, err := d.QueryContext(context.Background(), pat)
			if err != nil {
				if !errors.Is(err, faultio.ErrInjected) {
					t.Errorf("unexpected query error: %v", err)
					return
				}
				continue
			}
			for i := range ids {
				if ids[i] < 0 || ids[i] >= total {
					t.Errorf("query returned id %d outside the corpus", ids[i])
					return
				}
				if i > 0 && ids[i] <= ids[i-1] {
					t.Errorf("query results unsorted or duplicated: %v", ids)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	if d.NumDocuments() != total {
		t.Fatalf("docs = %d want %d", d.NumDocuments(), total)
	}
	// The fault window is long past: compaction succeeds and the final
	// answer matches a fresh from-scratch index over the same corpus.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	got, err := d.Query(pat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mustBuild(t, docs).QueryWithContext(context.Background(), pat, engine.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, want) {
		t.Fatalf("post-storm answers diverge: got %v want %v", got, want)
	}
}

// TestDynamicCompactionCounters checks the success/failure tallies that
// back DynamicIndex.Health: failed attempts and successful compactions
// count independently, and a success clears the sticky error but not the
// history.
func TestDynamicCompactionCounters(t *testing.T) {
	docs := testCorpus(t, 6)
	// Call 1: initial build. Call 2: lazy delta. Call 3: failed Compact.
	// Call 4: retried Compact, succeeds.
	b := faultio.FlakyBuilderN(csBuilder(), 3, 3, nil)
	d, err := engine.NewDynamic(b, docs[:4], 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 0 || d.FailedCompactions() != 0 {
		t.Fatalf("fresh counters = %d/%d", d.Compactions(), d.FailedCompactions())
	}
	for _, doc := range docs[4:] {
		if err := d.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Query(query.MustParse("//A")); err != nil {
		t.Fatal(err)
	}
	if d.Compact() == nil {
		t.Fatal("compaction should have failed")
	}
	if d.Compactions() != 0 || d.FailedCompactions() != 1 {
		t.Fatalf("post-failure counters = %d/%d", d.Compactions(), d.FailedCompactions())
	}
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 1 || d.FailedCompactions() != 1 {
		t.Fatalf("post-success counters = %d/%d", d.Compactions(), d.FailedCompactions())
	}
	if d.LastCompactionError() != nil {
		t.Fatal("success must clear the sticky error")
	}
	// An empty-buffer Compact is a no-op, not a counted compaction.
	if err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.Compactions() != 1 {
		t.Fatalf("no-op compact counted: %d", d.Compactions())
	}
}
