package engine

import (
	"math/rand"
	"slices"
	"testing"
)

// mergeReference is the concat+sort the k-way merge replaced.
func mergeReference(lists [][]int32, limit int) []int32 {
	var all []int32
	for _, l := range lists {
		all = append(all, l...)
	}
	slices.Sort(all)
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// cloneLists deep-copies lists (MergeAscending consumes its argument).
func cloneLists(lists [][]int32) [][]int32 {
	cp := make([][]int32, len(lists))
	for i, l := range lists {
		cp[i] = slices.Clone(l)
	}
	return cp
}

func TestMergeAscendingEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]int32
		limit int
		want  []int32
	}{
		{"no lists", nil, 0, nil},
		{"all empty", [][]int32{{}, nil, {}}, 0, nil},
		{"single list", [][]int32{{1, 5, 9}}, 0, []int32{1, 5, 9}},
		{"single list limited", [][]int32{{1, 5, 9}}, 2, []int32{1, 5}},
		{"two interleaved", [][]int32{{1, 4, 7}, {2, 3, 9}}, 0, []int32{1, 2, 3, 4, 7, 9}},
		{"uneven lengths", [][]int32{{10}, {1, 2, 3, 4, 5}, {6, 7}}, 0, []int32{1, 2, 3, 4, 5, 6, 7, 10}},
		{"with empties mixed in", [][]int32{{}, {3}, nil, {1, 2}}, 0, []int32{1, 2, 3}},
		{"limit mid-merge", [][]int32{{1, 4}, {2, 5}, {3, 6}}, 4, []int32{1, 2, 3, 4}},
		{"limit zero means all", [][]int32{{2}, {1}}, 0, []int32{1, 2}},
		{"limit exceeds total", [][]int32{{1}, {2}}, 99, []int32{1, 2}},
	}
	for _, c := range cases {
		got := MergeAscending(cloneLists(c.lists), nil, c.limit)
		if !slices.Equal(got, c.want) {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

// TestMergeAscendingRandom checks the merge against concat+sort over random
// disjoint ascending lists — the exact shape shard fan-out produces (each
// document id lives in exactly one partition).
func TestMergeAscendingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		nLists := rng.Intn(6) // 0..5 partitions
		lists := make([][]int32, nLists)
		// Partition a random id universe, hash-style, so lists are
		// disjoint; each stays ascending by construction.
		if nLists > 0 {
			for id := int32(0); id < int32(rng.Intn(200)); id++ {
				if rng.Intn(3) == 0 {
					continue // id matches nowhere
				}
				k := int(id) % nLists
				lists[k] = append(lists[k], id)
			}
		}
		limit := 0
		if rng.Intn(2) == 0 {
			limit = rng.Intn(40)
		}
		want := mergeReference(lists, limit)
		got := MergeAscending(cloneLists(lists), nil, limit)
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d (limit %d): got %v want %v", trial, limit, got, want)
		}
	}
}

// TestMergeAscendingAppendsToOut verifies the out parameter is appended to,
// not clobbered — callers pass pre-sized scratch.
func TestMergeAscendingAppendsToOut(t *testing.T) {
	out := make([]int32, 0, 8)
	got := MergeAscending([][]int32{{2, 4}, {1, 3}}, out, 0)
	if !slices.Equal(got, []int32{1, 2, 3, 4}) {
		t.Fatalf("got %v", got)
	}
	if &got[0] != &out[:1][0] {
		t.Fatalf("merge reallocated despite sufficient capacity")
	}
}
