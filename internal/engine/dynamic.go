package engine

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// Dynamic makes an (immutable, frozen) engine updatable, the way the paper
// frames ViST as "a dynamic index method": new documents accumulate in a
// delta buffer; queries run against the frozen main engine plus a small
// engine built lazily over the delta; Compact folds everything into a fresh
// main engine. The Builder decides the layout of every sub-engine — a
// sharded Builder gives updatable indexes parallel compaction rebuilds —
// and each sub-engine carries its own sequencing state (schema statistics
// and repeat set are per-build), so query equivalence holds on both sides
// independently.
//
// Dynamic is safe for concurrent use; Insert and Query may interleave.
//
// Dynamic is failure-safe: a Builder that returns an error or panics during
// compaction (or delta construction) never disturbs the serving state — the
// old main engine and buffer stay exactly as they were, the failure is
// surfaced as a *CompactionError, and compaction is retried once the buffer
// grows by another threshold.
type Dynamic struct {
	build Builder

	// gen is bumped before any mutation of served results becomes visible
	// (insert, compaction), so a result-cache layer keyed by Generation can
	// never serve a pre-mutation answer as current. It is atomic so readers
	// never contend with the serving lock.
	gen atomic.Uint64

	mu        sync.RWMutex
	main      Engine
	mainDocs  []*xmltree.Document
	buffer    []*xmltree.Document
	delta     Engine // nil when dirty or buffer empty
	seen      map[int32]bool
	threshold int
	compactAt int // buffer size that triggers the next auto-compaction
	lastErr   error
	compacts  int // successful compactions
	failures  int // failed compaction attempts

	// Durability hook (nil without one): every insert is framed and written
	// to the sink — under mu, after validation, before the in-memory apply —
	// so the log and the served state never diverge; the durability wait
	// happens after mu is released so a slow fsync never blocks readers.
	wal        WALSink
	encode     func(*xmltree.Document) ([]byte, error)
	appliedSeq uint64 // seq of the last applied insert
}

// WALSink is the durability hook Dynamic writes through when one is
// attached: WriteRecord persists an entry (no durability wait), WaitDurable
// blocks until it is fsynced. *wal.WAL satisfies it.
type WALSink interface {
	WriteRecord(seq uint64, payload []byte) error
	WaitDurable(ctx context.Context, seq uint64) error
}

// Builder constructs an engine over a corpus; Dynamic calls it for the
// initial corpus, for delta rebuilds, and for compactions, passing through
// the caller's context. The builder chooses the layout: returning a sharded
// engine makes compaction rebuilds parallel.
type Builder func(ctx context.Context, docs []*xmltree.Document) (Engine, error)

// CompactionError reports that folding the delta into the main engine
// failed (Builder error or panic). The index is still fully serviceable:
// the previous main engine and the buffered documents are untouched,
// queries keep answering exactly as before the attempt, and compaction is
// retried automatically at the next threshold crossing.
type CompactionError struct {
	// Docs is the corpus size of the failed rebuild.
	Docs int
	// Err is the Builder failure (a recovered panic is wrapped in an error).
	Err error
}

func (e *CompactionError) Error() string {
	return fmt.Sprintf("engine: compaction of %d documents failed (still serving pre-compaction state): %v", e.Docs, e.Err)
}

func (e *CompactionError) Unwrap() error { return e.Err }

// DefaultCompactThreshold is the delta size that triggers automatic
// compaction (relative to nothing — an absolute document count; deltas stay
// small so their rebuild cost stays negligible).
const DefaultCompactThreshold = 1024

// NewDynamic builds a dynamic engine over an initial corpus (which may be
// empty). threshold <= 0 uses DefaultCompactThreshold.
func NewDynamic(build Builder, initial []*xmltree.Document, threshold int) (*Dynamic, error) {
	if build == nil {
		return nil, fmt.Errorf("engine: NewDynamic requires a Builder")
	}
	if threshold <= 0 {
		threshold = DefaultCompactThreshold
	}
	d := &Dynamic{build: build, seen: map[int32]bool{}, threshold: threshold, compactAt: threshold}
	for _, doc := range initial {
		if doc == nil {
			return nil, fmt.Errorf("engine: nil initial document")
		}
		if d.seen[doc.ID] {
			return nil, fmt.Errorf("engine: duplicate document id %d", doc.ID)
		}
		d.seen[doc.ID] = true
	}
	if len(initial) > 0 {
		main, err := d.safeBuild(context.Background(), initial)
		if err != nil {
			return nil, err
		}
		d.main = main
		d.mainDocs = append(d.mainDocs, initial...)
	}
	return d, nil
}

// safeBuild runs the Builder, converting a panic into an error so a faulty
// Builder can never tear down a serving Dynamic.
func (d *Dynamic) safeBuild(ctx context.Context, docs []*xmltree.Document) (e Engine, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, fmt.Errorf("engine: builder panic: %v", r)
		}
	}()
	e, err = d.build(ctx, docs)
	if err != nil {
		return nil, err
	}
	if e == nil {
		return nil, fmt.Errorf("engine: builder returned nil engine")
	}
	return e, nil
}

// Insert adds one document; it is InsertContext with context.Background().
func (d *Dynamic) Insert(doc *xmltree.Document) error {
	return d.InsertContext(context.Background(), doc)
}

// InsertContext adds one document. The delta engine is invalidated and
// rebuilt on the next query; when the delta reaches the compaction
// watermark the whole index is rebuilt inline under ctx.
//
// If that automatic compaction fails, the document is still inserted (it
// remains buffered and queryable) and the failure is returned as a
// *CompactionError; the rebuild is retried after threshold further inserts.
//
// With a WAL attached, the entry is written to the log before the document
// becomes visible and the call blocks until it is durable: a returned nil
// means the insert survives kill -9. A durability failure after the apply is
// returned as an error — the caller must treat the insert as unacknowledged
// even though this process already serves it (at-least-once on replay).
func (d *Dynamic) InsertContext(ctx context.Context, doc *xmltree.Document) error {
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("engine: nil document")
	}
	d.mu.Lock()
	if d.seen[doc.ID] {
		d.mu.Unlock()
		return fmt.Errorf("engine: duplicate document id %d", doc.ID)
	}
	// Log before apply: a failed write leaves both the log and the served
	// state untouched; a successful write that this process then loses
	// (crash before the apply below completes) is replayed on restart.
	// Validation (the duplicate check above) runs first so the log never
	// records an entry the in-memory apply would reject — replay must
	// re-apply every logged entry verbatim.
	seq := d.appliedSeq + 1
	if d.wal != nil {
		payload, err := d.encode(doc)
		if err != nil {
			d.mu.Unlock()
			return fmt.Errorf("engine: encode document %d for wal: %w", doc.ID, err)
		}
		if err := d.wal.WriteRecord(seq, payload); err != nil {
			d.mu.Unlock()
			return fmt.Errorf("engine: wal append for document %d: %w", doc.ID, err)
		}
	}
	// Invalidate cached results before the new document becomes visible: a
	// reader that still observes the old generation can only be served
	// pre-insert answers, which were correct when that generation was
	// current.
	d.gen.Add(1)
	d.seen[doc.ID] = true
	d.buffer = append(d.buffer, doc)
	d.delta = nil
	d.appliedSeq = seq
	var cerr error
	if len(d.buffer) >= d.compactAt {
		if cerr = d.compactLocked(ctx); cerr != nil {
			// Keep serving the old state; back off one threshold before
			// the next automatic attempt.
			d.compactAt = len(d.buffer) + d.threshold
		}
	}
	sink := d.wal
	d.mu.Unlock()
	if sink != nil {
		if err := sink.WaitDurable(ctx, seq); err != nil {
			return fmt.Errorf("engine: document %d applied but not yet durable: %w", doc.ID, err)
		}
	}
	return cerr
}

// AttachWAL arms the durability hook: every subsequent insert is encoded
// and written to sink before it is applied. lastSeq seeds the sequence
// numbering — pass the replayed log's last sequence number so new inserts
// continue where the log left off. Call before serving begins; AttachWAL
// itself is not synchronized against in-flight inserts.
func (d *Dynamic) AttachWAL(sink WALSink, encode func(*xmltree.Document) ([]byte, error), lastSeq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wal = sink
	d.encode = encode
	d.appliedSeq = lastSeq
}

// AppliedSeq reports the sequence number of the last applied insert —
// seeded by AttachWAL from the replayed log, advanced by every insert
// (with or without a WAL attached, so a follower replica without a local
// log still tracks the primary's numbering).
func (d *Dynamic) AppliedSeq() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.appliedSeq
}

// Contains reports whether a document with the given id is in the corpus.
// WAL replay uses it to skip entries a checkpoint snapshot already covers
// (a crash between snapshotting and log rotation leaves an overlap).
func (d *Dynamic) Contains(id int32) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seen[id]
}

// ResetTo replaces the entire serving state with a frozen engine and its
// corpus — the re-seed primitive for a follower installing a primary
// checkpoint it can no longer reach through the log. The swap is atomic
// with respect to queries and inserts: a reader sees either the complete
// old state or the complete new one, and the generation bump invalidates
// any result cache layered above. seq is the WAL sequence number the
// snapshot covers; replication resumes at seq+1. main may be nil only
// with an empty corpus.
func (d *Dynamic) ResetTo(main Engine, docs []*xmltree.Document, seq uint64) error {
	seen := make(map[int32]bool, len(docs))
	for _, doc := range docs {
		if doc == nil || doc.Root == nil {
			return fmt.Errorf("engine: nil document in reset corpus")
		}
		if seen[doc.ID] {
			return fmt.Errorf("engine: duplicate document id %d in reset corpus", doc.ID)
		}
		seen[doc.ID] = true
	}
	if main == nil && len(docs) > 0 {
		return fmt.Errorf("engine: reset with %d documents but no engine", len(docs))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	// Invalidate before the swap becomes visible, same rule as inserts.
	d.gen.Add(1)
	d.main = main
	d.mainDocs = append([]*xmltree.Document(nil), docs...)
	d.buffer = nil
	d.delta = nil
	d.seen = seen
	d.appliedSeq = seq
	d.compactAt = d.threshold
	return nil
}

// SkipReplicated advances the replication position past an entry whose
// document the corpus already holds — the overlap a snapshot seed leaves
// when the primary's checkpoint covers more than its advertised sequence
// number (a crash between snapshot save and log rotation). The entry must
// be the next in order, exactly like an applied one.
func (d *Dynamic) SkipReplicated(seq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if want := d.appliedSeq + 1; seq != want {
		return fmt.Errorf("engine: skip replicated seq %d, want %d", seq, want)
	}
	d.appliedSeq = seq
	return nil
}

// CompactForCheckpoint compacts and returns, atomically with respect to
// inserts, the sequence number the compacted state covers and the frozen
// main engine (nil for an empty corpus). Snapshotting that engine and then
// rotating the WAL at that sequence number is the checkpoint recipe: every
// logged entry not in the snapshot stays in the log.
func (d *Dynamic) CompactForCheckpoint(ctx context.Context) (uint64, Engine, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.compactLocked(ctx); err != nil {
		return 0, nil, err
	}
	return d.appliedSeq, d.main, nil
}

// Query answers a pattern over main + delta, ids ascending; it is
// QueryContext with context.Background().
func (d *Dynamic) Query(pat *query.Pattern) ([]int32, error) {
	return d.QueryContext(context.Background(), pat)
}

// QueryContext answers a pattern over main + delta, ids ascending,
// honouring ctx both in the lazy delta rebuild and in the match loops.
func (d *Dynamic) QueryContext(ctx context.Context, pat *query.Pattern) ([]int32, error) {
	return d.QueryWithContext(ctx, pat, QueryOptions{})
}

// QueryWithContext is QueryContext with per-query options: verification and
// work-profile accumulation apply to both sides and merge; MaxResults
// counts across main + delta, skipping the delta when the main engine
// already filled the budget.
func (d *Dynamic) QueryWithContext(ctx context.Context, pat *query.Pattern, qo QueryOptions) ([]int32, error) {
	d.mu.Lock()
	if d.delta == nil && len(d.buffer) > 0 {
		delta, err := d.safeBuild(ctx, d.buffer)
		if err != nil {
			d.mu.Unlock()
			return nil, err
		}
		d.delta = delta
	}
	main, delta := d.main, d.delta
	d.mu.Unlock()

	var (
		lists    [2][]int32
		n, found int
	)
	for _, sub := range []Engine{main, delta} {
		if sub == nil {
			continue
		}
		sqo := qo
		var st QueryStats
		if qo.Stats != nil {
			sqo.Stats = &st
		}
		if qo.MaxResults > 0 {
			remaining := qo.MaxResults - found
			if remaining <= 0 {
				break
			}
			sqo.MaxResults = remaining
		}
		ids, err := sub.QueryWithContext(ctx, pat, sqo)
		if err != nil {
			return nil, err
		}
		lists[n] = ids
		n++
		found += len(ids)
		if qo.Stats != nil {
			qo.Stats.Add(st)
		}
	}
	// Main and delta ids are disjoint (duplicate ids are rejected at
	// insert) and each side is already ascending, so the merge is a two-way
	// merge with no deduplication. Sub-engine results are caller-owned
	// fresh slices, so a single-list merge may return it directly.
	var out []int32
	switch {
	case n == 1:
		out = lists[0]
	case n == 2:
		out = MergeAscending(lists[:], make([]int32, 0, found), 0)
	}
	if qo.Stats != nil {
		qo.Stats.Results = len(out)
	}
	return out, nil
}

// Compact folds the delta into a fresh main engine; it is CompactContext
// with context.Background().
func (d *Dynamic) Compact() error {
	return d.CompactContext(context.Background())
}

// CompactContext folds the delta into a fresh main engine under ctx. On
// failure it returns a *CompactionError and leaves the serving state (main
// engine and buffer) untouched.
func (d *Dynamic) CompactContext(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked(ctx)
}

// RebuildContext rebuilds the main engine over the full corpus even when no
// documents are buffered — the adaptive-resequencing entry point: after the
// builder's sequencing weights change, a forced rebuild re-sequences every
// document, where CompactContext would no-op on an empty buffer. It shares
// compaction's failure containment exactly: a failed rebuild (error, panic,
// cancellation) is a counted *CompactionError that leaves the serving state
// untouched.
func (d *Dynamic) RebuildContext(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rebuildLocked(ctx, true)
}

// compactLocked rebuilds main over mainDocs + buffer. All serving state is
// replaced atomically only after a successful build; any failure (error,
// panic, cancellation) leaves it untouched.
func (d *Dynamic) compactLocked(ctx context.Context) error {
	return d.rebuildLocked(ctx, false)
}

func (d *Dynamic) rebuildLocked(ctx context.Context, force bool) error {
	if len(d.buffer) == 0 && (!force || len(d.mainDocs) == 0) {
		return nil
	}
	// Conservative invalidation: compaction preserves query answers, but a
	// generation bump here is cheap and keeps the rule simple — any
	// structural change invalidates.
	d.gen.Add(1)
	all := append(append([]*xmltree.Document{}, d.mainDocs...), d.buffer...)
	main, err := d.safeBuild(ctx, all)
	if err != nil {
		cerr := &CompactionError{Docs: len(all), Err: err}
		d.lastErr = cerr
		d.failures++
		return cerr
	}
	d.main = main
	d.mainDocs = all
	d.buffer = nil
	d.delta = nil
	d.compactAt = d.threshold
	d.lastErr = nil
	d.compacts++
	return nil
}

// Compactions reports how many compactions have succeeded.
func (d *Dynamic) Compactions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.compacts
}

// FailedCompactions reports how many compaction attempts have failed.
func (d *Dynamic) FailedCompactions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.failures
}

// LastCompactionError returns the most recent compaction failure, or nil
// after a successful compaction (or if none ever failed).
func (d *Dynamic) LastCompactionError() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastErr
}

// NumDocuments reports the total corpus size (main + buffered).
func (d *Dynamic) NumDocuments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.mainDocs) + len(d.buffer)
}

// PendingDocuments reports how many documents await compaction.
func (d *Dynamic) PendingDocuments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.buffer)
}

// NumNodes reports the main engine's trie node count (0 before the first
// build); the delta's nodes are transient.
func (d *Dynamic) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.main == nil {
		return 0
	}
	return d.main.NumNodes()
}

// NumLinks reports the main engine's distinct path count (0 before the
// first build); the delta's links are transient.
func (d *Dynamic) NumLinks() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.main == nil {
		return 0
	}
	return d.main.NumLinks()
}

// EstimatedDiskBytes reports the main engine's estimated size (0 before the
// first build).
func (d *Dynamic) EstimatedDiskBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.main == nil {
		return 0
	}
	return d.main.EstimatedDiskBytes()
}

// Shards reports the main engine's partition statistics — non-nil exactly
// when the Builder produces sharded engines.
func (d *Dynamic) Shards() []ShardStat {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.main == nil {
		return nil
	}
	return d.main.Shards()
}

// Documents returns the current corpus (main + buffered). Unlike frozen
// engines, a Dynamic always retains its documents — they are the compaction
// input — so this never depends on a KeepDocuments option.
func (d *Dynamic) Documents() []*xmltree.Document {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*xmltree.Document, 0, len(d.mainDocs)+len(d.buffer))
	out = append(out, d.mainDocs...)
	out = append(out, d.buffer...)
	return out
}

// Save is unsupported: a dynamic engine's delta state is transient by
// design. Compact first and snapshot the frozen main engine instead.
func (d *Dynamic) Save(w io.Writer) error {
	return fmt.Errorf("engine: dynamic index snapshot: %w", ErrUnsupported)
}

// SaveFile is unsupported; see Save.
func (d *Dynamic) SaveFile(path string) error {
	return fmt.Errorf("engine: dynamic index snapshot: %w", ErrUnsupported)
}

// Generation identifies the currently served corpus state; it bumps before
// every insert and compaction so generation-keyed caches invalidate.
func (d *Dynamic) Generation() uint64 { return d.gen.Load() }

// Main exposes the current frozen main engine (nil before the first build).
func (d *Dynamic) Main() Engine {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.main
}

var _ Engine = (*Dynamic)(nil)
