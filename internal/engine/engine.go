// Package engine defines the contract every storage organization of the
// constraint-sequence index implements: one Engine interface answering
// tree-pattern queries (with the verified/explain/limit variants expressed
// as QueryOptions), reporting shape statistics, persisting snapshots, and
// exposing the retained corpus. The paper's query model is engine-agnostic
// — constraint subsequence matching returns the same document ids whether
// the sequences live in one monolithic index, N hash-partitioned shards, or
// a dynamic base+delta pair — so the matching contract lives here, separate
// from any storage organization, and callers dispatch through exactly one
// Engine value instead of branching on engine kind.
//
// Implementations: index.Index (monolithic), shard.Index (hash-partitioned
// fan-out), engine.Dynamic (updatable base+delta over any Builder), and
// qcache.Cache (a memoizing wrapper composable over all of the above).
//
// Not every engine supports every operation: capability gaps (a dynamic
// engine cannot snapshot itself, a sharded engine has no single paged
// layout) are reported uniformly as errors wrapping ErrUnsupported, so
// callers probe capabilities with errors.Is instead of switching on
// concrete types.
package engine

import (
	"context"
	"errors"
	"io"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// ErrUnsupported reports an operation the engine's layout cannot perform —
// paged I/O simulation on a sharded index, Save on a dynamic engine, a
// schema outline where no schema was retained. It is a sentinel: detect it
// with errors.Is; the wrapping error names the operation and the layout.
var ErrUnsupported = errors.New("operation not supported by this index layout")

// QueryOptions tweaks one query execution.
//
// Observability rides on the query context, not on this struct: a server
// attaches a pooled telemetry.Trace with telemetry.WithTrace, leaf kernels
// (monolithic, flat) record their QueryStats counters into it, the shard
// fan-out appends per-shard spans and its fan-out/merge timing split, and
// the query cache marks hit or miss. Engines treat an absent trace as
// "telemetry off" and skip all recording, so embedded library use pays
// nothing.
type QueryOptions struct {
	// Naive disables the sibling-cover constraint test, performing the
	// naive subsequence matching of Section 4.2 — may return false alarms.
	Naive bool
	// Verify post-checks every candidate against the stored documents with
	// the ground-truth matcher (requires KeepDocuments). With Verify the
	// result is exact even under value-hash collisions.
	Verify bool
	// MaxResults stops the search once this many distinct documents have
	// been found (0: unlimited). With Verify, candidates are capped before
	// verification, so fewer than MaxResults may survive.
	MaxResults int
	// Stats, when non-nil, accumulates the work the query performed.
	Stats *QueryStats
}

// QueryStats reports the work one query performed — the observable
// counterpart of Algorithm 1's steps.
type QueryStats struct {
	// Instances is the number of concrete instantiations of the pattern
	// (wildcard/descendant expansion).
	Instances int
	// Orders is the number of query sequences tried (identical-sibling
	// order enumeration across all instances).
	Orders int
	// LinkProbes counts binary-search probes into path links.
	LinkProbes int64
	// EntriesScanned counts link entries visited as match candidates.
	EntriesScanned int64
	// CoverChecks counts sibling-cover constraint evaluations.
	CoverChecks int64
	// CoverRejections counts candidates rejected by the constraint — each
	// one a false alarm naive matching would have pursued.
	CoverRejections int64
	// Results is the number of distinct documents returned (before
	// verification).
	Results int
}

// Add accumulates other into s — the merge rule engines that span several
// sub-engines (shard fan-out, base+delta) apply to per-part work profiles.
// Results is NOT summed: it reports distinct documents of the merged
// answer, which the caller sets after merging.
func (s *QueryStats) Add(other QueryStats) {
	s.Instances += other.Instances
	s.Orders += other.Orders
	s.LinkProbes += other.LinkProbes
	s.EntriesScanned += other.EntriesScanned
	s.CoverChecks += other.CoverChecks
	s.CoverRejections += other.CoverRejections
}

// ShardStat is one partition's slice of an engine's shape statistics.
// Monolithic engines report none.
type ShardStat struct {
	// Documents is the partition's corpus size.
	Documents int
	// Nodes is the partition's trie node count.
	Nodes int
	// Links is the partition's distinct path count.
	Links int
}

// Engine is the uniform query contract over a corpus of sequenced XML
// records. Every storage organization — monolithic, sharded, dynamic —
// implements it, and every layer above (result cache, public facade,
// serving) dispatches through it without knowing the layout underneath.
//
// Engines must be safe for concurrent queries. Query results are matching
// document ids in ascending order, identical across layouts over the same
// corpus (the query-equivalence invariant the whole design rests on).
//
// Result ownership: the slice QueryWithContext returns is freshly
// allocated and owned by the caller — it never aliases an engine's pooled
// query scratch or any other internal buffer, and the engine never touches
// it again. This is what lets the match kernels recycle their working
// memory through sync.Pools while a cache layer above (qcache) retains
// results across queries: a cached entry can only ever hold caller-owned
// memory, so a later query reusing the pool cannot corrupt it.
type Engine interface {
	// QueryWithContext answers a tree-pattern query under ctx with
	// per-query options; cancellation aborts the match loops promptly. The
	// returned slice is caller-owned; see the ownership rule above.
	QueryWithContext(ctx context.Context, pat *query.Pattern, qo QueryOptions) ([]int32, error)

	// NumDocuments reports the corpus size.
	NumDocuments() int
	// NumNodes reports the trie node count (the paper's index-size metric),
	// summed across partitions when partitioned.
	NumNodes() int
	// NumLinks reports the number of distinct paths (horizontal links),
	// summed across partitions when partitioned.
	NumLinks() int
	// EstimatedDiskBytes applies the paper's 4n + 8N sizing formula.
	EstimatedDiskBytes() int64
	// Shards reports per-partition shape statistics, nil for engines with a
	// single partition.
	Shards() []ShardStat

	// Documents returns the retained corpus (nil unless the engine was
	// built keeping documents), in no particular order.
	Documents() []*xmltree.Document

	// Save serializes the engine so Load can reconstruct it; engines whose
	// layout cannot snapshot return an error wrapping ErrUnsupported.
	Save(w io.Writer) error
	// SaveFile is Save to a file, crash-safely (temp + fsync + rename).
	SaveFile(path string) error

	// Generation identifies the engine's current snapshot of the corpus:
	// immutable engines report a constant, mutable engines bump it before
	// any change to served results becomes visible. Cache layers key
	// memoized results by it, so a stale generation can never be served as
	// current.
	Generation() uint64
}
