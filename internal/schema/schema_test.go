package schema

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/xmltree"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFigure13RootProbabilities(t *testing.T) {
	s := Figure12()
	// p(R|root) = 0.9
	r := s.FindByNamePath([]string{"P", "R"})
	if r == nil || !almost(r.PRoot, 0.9) {
		t.Fatalf("p(R|root) = %v", r.PRoot)
	}
	// p(L|root) = p(L|R) × p(R|root) = 0.4 × 0.9 = 0.36 (Figure 13).
	l := s.FindByNamePath([]string{"P", "R", "L"})
	if l == nil || !almost(l.PRoot, 0.36) {
		t.Fatalf("p(L|root) = %v want 0.36", l.PRoot)
	}
	u := s.FindByNamePath([]string{"P", "R", "U"})
	if !almost(u.PRoot, 0.72) {
		t.Fatalf("p(U|root) = %v want 0.72", u.PRoot)
	}
	m := s.FindByNamePath([]string{"P", "R", "U", "M"})
	if !almost(m.PRoot, 0.576) {
		t.Fatalf("p(M|root) = %v want 0.576", m.PRoot)
	}
	// Value slot of L: p = 0.1 × 0.36 = 0.036 (Figure 13's v3).
	slot := l.ValueSlot()
	if slot == nil || !almost(slot.PRoot, 0.036) {
		t.Fatalf("p(v3|root) = %v want 0.036", slot.PRoot)
	}
}

func TestValidateRejectsBadSchemas(t *testing.T) {
	cases := []*Node{
		nil,
		{Name: "P", PCond: 1.5},
		{Name: "", PCond: 1},
		{Name: "P", PCond: 1, Children: []*Node{{IsValue: true, PCond: 0.5, Children: []*Node{{Name: "x", PCond: 1}}}}},
		{Name: "P", PCond: 1, MinRepeat: 3, MaxRepeat: 2},
	}
	for i, root := range cases {
		s := &Schema{Root: root}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad schema", i)
		}
	}
}

func TestDefaults(t *testing.T) {
	n := &Node{Name: "x", PCond: 1}
	if n.EffectiveWeight() != 1 {
		t.Fatalf("default weight = %v", n.EffectiveWeight())
	}
	if n.minRepeat() != 1 || n.maxRepeat() != 1 {
		t.Fatal("default repeats should be 1")
	}
	v := &Node{IsValue: true, Values: []string{"a", "b", "c"}}
	if v.EffectiveValueRange() != 3 {
		t.Fatalf("value range from vocabulary = %d", v.EffectiveValueRange())
	}
	v2 := &Node{IsValue: true}
	if v2.EffectiveValueRange() != 1 {
		t.Fatalf("empty slot range = %d", v2.EffectiveValueRange())
	}
}

func TestHasIdenticalSiblings(t *testing.T) {
	if Figure12().HasIdenticalSiblings() {
		t.Fatal("Figure 12 schema has no repeats")
	}
	s := MustNew(&Node{Name: "P", PCond: 1, Children: []*Node{
		{Name: "D", PCond: 1, MinRepeat: 2, MaxRepeat: 3},
	}})
	if !s.HasIdenticalSiblings() {
		t.Fatal("repeat 2..3 should count as identical siblings")
	}
}

func TestNumNodesAndFind(t *testing.T) {
	s := Figure12()
	// P, v1, R, U, M, v2, L, v3 = 8 nodes.
	if got := s.NumNodes(); got != 8 {
		t.Fatalf("NumNodes = %d want 8", got)
	}
	if s.FindByNamePath([]string{"P", "X"}) != nil {
		t.Fatal("found nonexistent path")
	}
	if s.FindByNamePath([]string{"Q"}) != nil {
		t.Fatal("found wrong root")
	}
	if s.FindByNamePath(nil) != nil {
		t.Fatal("found empty path")
	}
}

func TestSchemaString(t *testing.T) {
	s := Figure12()
	if err := s.SetWeightByNamePath([]string{"P", "R", "L"}, 10); err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{
		"P", "R", "U", "M", "L",
		"p(C|parent)=0.900", "p(C|root)=0.360",
		"#value range=1000", "#value range=55",
		"w=10",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("schema rendering missing %q:\n%s", want, out)
		}
	}
	// Forest and repeat annotations.
	f := MustNew(&Node{Name: ForestRootName, PCond: 1, Children: []*Node{
		{Name: "a", PCond: 0.5, MinRepeat: 2, MaxRepeat: 3},
	}})
	fo := f.String()
	if !strings.Contains(fo, "#forest") || !strings.Contains(fo, "repeat=2..3") {
		t.Fatalf("forest rendering:\n%s", fo)
	}
	if (&Schema{}).String() != "" {
		t.Fatal("nil root should render empty")
	}
}

func TestModelPriorities(t *testing.T) {
	s := Figure12()
	enc := pathenc.NewEncoder(0)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	PR := enc.Extend(P, enc.ElementSymbol("R"))
	PRU := enc.Extend(PR, enc.ElementSymbol("U"))
	PRUM := enc.Extend(PRU, enc.ElementSymbol("M"))
	PRL := enc.Extend(PR, enc.ElementSymbol("L"))
	PRLv := enc.Extend(PRL, enc.ValueSymbol("boston"))
	Pv := enc.Extend(P, enc.ValueSymbol("xml"))

	m := NewModel(s, enc)
	// The g_best order of Section 5.2's example:
	// P > PR > PRU > PRUM > PRL > PRLv3 > Pv1 > PRUMv2.
	PRUMv := enc.Extend(PRUM, enc.ValueSymbol("mary"))
	order := []pathenc.PathID{P, PR, PRU, PRUM, PRL, PRLv, Pv, PRUMv}
	for i := 0; i+1 < len(order); i++ {
		if m.Priority(order[i]) <= m.Priority(order[i+1]) {
			t.Fatalf("priority order broken at %d: %v vs %v",
				i, m.Priority(order[i]), m.Priority(order[i+1]))
		}
	}
	if !almost(m.Priority(PRL), 0.36) {
		t.Fatalf("Priority(PRL) = %v want 0.36", m.Priority(PRL))
	}
	// Value of L: 0.036 / 55 per specific value.
	if !almost(m.Priority(PRLv), 0.036/55) {
		t.Fatalf("Priority(PRLv) = %v want %v", m.Priority(PRLv), 0.036/55)
	}
}

func TestModelUnknownPathsDecay(t *testing.T) {
	s := Figure12()
	enc := pathenc.NewEncoder(0)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	PZ := enc.Extend(P, enc.ElementSymbol("Zed"))
	PZW := enc.Extend(PZ, enc.ElementSymbol("Wye"))
	m := NewModel(s, enc)
	pP, pZ, pZW := m.Priority(P), m.Priority(PZ), m.Priority(PZW)
	if !(pP > pZ && pZ > pZW) {
		t.Fatalf("unknown paths should decay: %v %v %v", pP, pZ, pZW)
	}
	if pZW <= 0 {
		t.Fatal("priorities must stay positive")
	}
}

func TestWeightsPromoteNodes(t *testing.T) {
	s := Figure12()
	if err := s.SetWeightByNamePath([]string{"P", "R", "L"}, 10); err != nil {
		t.Fatal(err)
	}
	enc := pathenc.NewEncoder(0)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	PR := enc.Extend(P, enc.ElementSymbol("R"))
	PRU := enc.Extend(PR, enc.ElementSymbol("U"))
	PRL := enc.Extend(PR, enc.ElementSymbol("L"))
	m := NewModel(s, enc)
	// w(L)=10 lifts PRL (0.36*10=3.6) above PRU (0.72).
	if m.Priority(PRL) <= m.Priority(PRU) {
		t.Fatalf("weight should promote L: %v vs %v", m.Priority(PRL), m.Priority(PRU))
	}
	if err := s.SetWeightByNamePath([]string{"P", "Nope"}, 2); err == nil {
		t.Fatal("SetWeightByNamePath should fail for unknown paths")
	}
}

func TestGenerateRespectsSchema(t *testing.T) {
	s := MustNew(&Node{Name: "P", PCond: 1, Children: []*Node{
		{Name: "A", PCond: 1},
		{Name: "B", PCond: 0},
		{Name: "C", PCond: 1, MinRepeat: 2, MaxRepeat: 2},
		{IsValue: true, PCond: 1, Values: []string{"only"}},
	}})
	rng := rand.New(rand.NewSource(1))
	doc := s.Generate(rng)
	if doc.Name != "P" {
		t.Fatalf("root = %q", doc.Name)
	}
	counts := map[string]int{}
	vals := 0
	for _, c := range doc.Children {
		if c.IsValue {
			vals++
			if c.Value != "only" {
				t.Fatalf("value = %q", c.Value)
			}
			continue
		}
		counts[c.Name]++
	}
	if counts["A"] != 1 || counts["B"] != 0 || counts["C"] != 2 || vals != 1 {
		t.Fatalf("generated children %v, %d values", counts, vals)
	}
}

func TestGenerateProbabilityConvergence(t *testing.T) {
	s := Figure12()
	rng := rand.New(rand.NewSource(99))
	const n = 20000
	withR, withL := 0, 0
	for i := 0; i < n; i++ {
		doc := s.Generate(rng)
		hasR, hasL := false, false
		doc.Walk(func(x *xmltree.Node) bool {
			if x.Name == "R" {
				hasR = true
			}
			if x.Name == "L" {
				hasL = true
			}
			return true
		})
		if hasR {
			withR++
		}
		if hasL {
			withL++
		}
	}
	gotR := float64(withR) / n
	gotL := float64(withL) / n
	if math.Abs(gotR-0.9) > 0.02 {
		t.Fatalf("empirical p(R) = %v want ≈0.9", gotR)
	}
	if math.Abs(gotL-0.36) > 0.02 {
		t.Fatalf("empirical p(L) = %v want ≈0.36", gotL)
	}
}

func TestDrawValueZipfSkew(t *testing.T) {
	n := &Node{IsValue: true, ValueRange: 100, ZipfS: 2}
	rng := rand.New(rand.NewSource(5))
	first := 0
	for i := 0; i < 2000; i++ {
		if n.DrawValue(rng) == "_0" {
			first++
		}
	}
	if first < 1000 {
		t.Fatalf("zipf s=2 should concentrate on rank 0; got %d/2000", first)
	}
	uni := &Node{IsValue: true, ValueRange: 100}
	firstU := 0
	for i := 0; i < 2000; i++ {
		if uni.DrawValue(rng) == "_0" {
			firstU++
		}
	}
	if firstU > 100 {
		t.Fatalf("uniform draw too skewed: %d/2000", firstU)
	}
}

func TestInferRecoversStructure(t *testing.T) {
	src := MustNew(&Node{Name: "rec", PCond: 1, Children: []*Node{
		{Name: "title", PCond: 1, Children: []*Node{{IsValue: true, PCond: 1, ValueRange: 50}}},
		{Name: "author", PCond: 0.9, MinRepeat: 1, MaxRepeat: 3, Children: []*Node{{IsValue: true, PCond: 1, ValueRange: 20}}},
		{Name: "year", PCond: 0.5, Children: []*Node{{IsValue: true, PCond: 1, ValueRange: 30}}},
	}})
	rng := rand.New(rand.NewSource(3))
	docs := make([]*xmltree.Node, 3000)
	for i := range docs {
		docs[i] = src.Generate(rng)
	}
	inf, err := Infer(docs)
	if err != nil {
		t.Fatal(err)
	}
	title := inf.FindByNamePath([]string{"rec", "title"})
	if title == nil || math.Abs(title.PCond-1) > 0.01 {
		t.Fatalf("inferred p(title|rec) = %v", title)
	}
	year := inf.FindByNamePath([]string{"rec", "year"})
	if year == nil || math.Abs(year.PCond-0.5) > 0.05 {
		t.Fatalf("inferred p(year|rec) = %+v", year)
	}
	author := inf.FindByNamePath([]string{"rec", "author"})
	if author == nil || author.MaxRepeat < 2 {
		t.Fatalf("inferred author repeat = %+v", author)
	}
	// Root probabilities are computed on the inferred schema.
	if !almost(inf.Root.PRoot, 1) {
		t.Fatalf("inferred root PRoot = %v", inf.Root.PRoot)
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := Infer(nil); err == nil {
		t.Fatal("Infer(nil) should fail")
	}
}

func TestInferForest(t *testing.T) {
	var docs []*xmltree.Node
	for i := 0; i < 3; i++ {
		docs = append(docs, xmltree.NewElem("article", xmltree.NewElem("title")))
	}
	docs = append(docs, xmltree.NewElem("book", xmltree.NewElem("isbn")))
	s, err := Infer(docs)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsForest() {
		t.Fatal("mixed roots should infer a forest")
	}
	art := s.FindByNamePath([]string{"article"})
	if art == nil || !almost(art.PCond, 0.75) {
		t.Fatalf("article weight = %+v", art)
	}
	if s.FindByNamePath([]string{"book", "isbn"}) == nil {
		t.Fatal("book/isbn not inferred")
	}
	// Generation draws record types by weight.
	rng := rand.New(rand.NewSource(8))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[s.Generate(rng).Name]++
	}
	frac := float64(counts["article"]) / 4000
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("generated article fraction = %v", frac)
	}
	// A forest model resolves record-root paths.
	enc := pathenc.NewEncoder(0)
	m := NewModel(s, enc)
	bookPath := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("book"))
	artPath := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("article"))
	if m.Priority(artPath) <= m.Priority(bookPath) {
		t.Fatalf("article priority %v should exceed book %v",
			m.Priority(artPath), m.Priority(bookPath))
	}
}

func TestNewForestErrors(t *testing.T) {
	if _, err := NewForest(nil, nil); err == nil {
		t.Fatal("empty forest should fail")
	}
	roots := []*Node{{Name: "a", PCond: 1}}
	if _, err := NewForest(roots, []float64{0.5, 0.5}); err == nil {
		t.Fatal("weight/root mismatch should fail")
	}
	s, err := NewForest([]*Node{{Name: "a"}, {Name: "b"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(s.Root.Children[0].PRoot, 0.5) {
		t.Fatalf("uniform weights = %v", s.Root.Children[0].PRoot)
	}
}

func TestQuickPriorityMonotoneOnSchemaPaths(t *testing.T) {
	// For paths entirely within the schema with default weights, a child's
	// priority never exceeds its parent's (PCond ≤ 1) — the property that
	// makes Algorithm 2's simple candidate procedure sufficient (§2.4).
	s := Figure12()
	enc := pathenc.NewEncoder(0)
	m := NewModel(s, enc)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	paths := []pathenc.PathID{P}
	var grow func(p pathenc.PathID, sn *Node)
	grow = func(p pathenc.PathID, sn *Node) {
		for _, c := range sn.Children {
			if c.IsValue {
				continue
			}
			cp := enc.Extend(p, enc.ElementSymbol(c.Name))
			paths = append(paths, cp)
			grow(cp, c)
		}
	}
	grow(P, s.Root)
	f := func(i uint8) bool {
		p := paths[int(i)%len(paths)]
		parent := enc.Parent(p)
		if parent == pathenc.InvalidPath {
			return true
		}
		return m.Priority(p) <= m.Priority(parent)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
