// Package schema implements the probability framework of Section 5 of the
// paper: a schema tree (DTD-like) annotated with node occurrence
// probabilities p(C|parent), from which p(C|root) is derived, optionally
// re-weighted by a query-frequency/selectivity weight w(C) into
// p'(C|root) = p(C|root) · w(C) (Eq 6). The probability-based strategy
// g_best sequences document nodes in descending p'(·|root), which maximizes
// prefix sharing in the index and lets selective nodes be promoted.
//
// Schemas are either constructed programmatically (the synthetic, XMark-like
// and DBLP-like generators build them), or inferred from a sample of
// documents ("approximate it by data sampling", Section 5.2).
package schema

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"xseq/internal/pathenc"
	"xseq/internal/xmltree"
)

// Node is one node of the schema tree. A value-slot node (IsValue) stands
// for "this element can carry a value"; ValueRange is the number of distinct
// values the slot draws from, so the probability of one particular value is
// PCond/ValueRange given the parent (the paper's two-factor decomposition of
// p(C=v1|P) in Section 5.2).
type Node struct {
	Name       string
	IsValue    bool
	ValueRange int
	// Values optionally enumerates the slot's vocabulary; when empty, the
	// generator synthesizes ValueRange values "name_i".
	Values []string
	// ZipfS skews value selection (s parameter of a Zipf distribution);
	// 0 means uniform.
	ZipfS float64

	// PCond is p(C|parent): the probability the node exists given its
	// parent exists. The root's PCond is p(root|ε), normally 1.
	PCond float64
	// PRoot is p(C|root), filled in by ComputeRootProbabilities.
	PRoot float64
	// Weight is w(C) of Eq 6; 0 is treated as the default weight 1.
	Weight float64

	// MinRepeat/MaxRepeat instantiate identical sibling nodes: given that
	// the node occurs, a document contains between MinRepeat and MaxRepeat
	// copies (uniformly). Both default to 1 when 0.
	MinRepeat, MaxRepeat int

	Children []*Node
}

// Schema is a schema tree with derived probabilities.
type Schema struct {
	Root *Node
}

// ForestRootName marks a synthetic root node grouping several record types
// (e.g. DBLP's article/inproceedings/book records). The synthetic root
// never appears in documents; each document is rooted at one of its
// children.
const ForestRootName = "\x00forest"

// NewForest builds a schema over several record types. weights[i] is the
// fraction of records of type roots[i] (used as its PCond, and by Generate
// to pick a type); pass nil for uniform.
func NewForest(roots []*Node, weights []float64) (*Schema, error) {
	if len(roots) == 0 {
		return nil, fmt.Errorf("schema: empty forest")
	}
	if weights != nil && len(weights) != len(roots) {
		return nil, fmt.Errorf("schema: %d weights for %d roots", len(weights), len(roots))
	}
	for i, r := range roots {
		if weights == nil {
			r.PCond = 1 / float64(len(roots))
		} else {
			r.PCond = weights[i]
		}
	}
	return New(&Node{Name: ForestRootName, PCond: 1, Children: roots})
}

// IsForest reports whether the schema groups several record types.
func (s *Schema) IsForest() bool {
	return s.Root != nil && s.Root.Name == ForestRootName
}

// New builds a schema around root and computes root probabilities.
func New(root *Node) (*Schema, error) {
	s := &Schema{Root: root}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	s.ComputeRootProbabilities()
	return s, nil
}

// MustNew is New that panics on error; for fixtures built from literal
// trees known valid at compile time. The panic marks a broken fixture —
// runtime schema construction must use New, which returns the error; the
// public xseq API also runs behind a panic-recovery guard.
func MustNew(root *Node) *Schema {
	s, err := New(root)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural sanity: probabilities within [0,1], names on
// element nodes, positive value ranges, repeat bounds ordered.
func (s *Schema) Validate() error {
	if s.Root == nil {
		return fmt.Errorf("schema: nil root")
	}
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		if n.PCond < 0 || n.PCond > 1 {
			return fmt.Errorf("schema: node %q has p(C|parent)=%v outside [0,1]", n.Name, n.PCond)
		}
		if !n.IsValue && n.Name == "" {
			return fmt.Errorf("schema: unnamed element node at depth %d", depth)
		}
		if n.IsValue {
			if len(n.Children) > 0 {
				return fmt.Errorf("schema: value slot %q has children", n.Name)
			}
			if n.ValueRange < 0 {
				return fmt.Errorf("schema: value slot under %q has negative range", n.Name)
			}
		}
		if n.MinRepeat < 0 || n.MaxRepeat < 0 ||
			(n.MaxRepeat > 0 && n.minRepeat() > n.maxRepeat()) {
			return fmt.Errorf("schema: node %q repeat bounds [%d,%d] invalid", n.Name, n.MinRepeat, n.MaxRepeat)
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(s.Root, 0)
}

func (n *Node) minRepeat() int {
	if n.MinRepeat <= 0 {
		return 1
	}
	return n.MinRepeat
}

func (n *Node) maxRepeat() int {
	if n.MaxRepeat <= 0 {
		return 1
	}
	return n.MaxRepeat
}

// EffectiveWeight returns w(C), defaulting to 1.
func (n *Node) EffectiveWeight() float64 {
	if n.Weight <= 0 {
		return 1
	}
	return n.Weight
}

// EffectiveValueRange returns the number of distinct values of a value slot,
// defaulting to the explicit vocabulary size, then to 1.
func (n *Node) EffectiveValueRange() int {
	if n.ValueRange > 0 {
		return n.ValueRange
	}
	if len(n.Values) > 0 {
		return len(n.Values)
	}
	return 1
}

// ComputeRootProbabilities derives p(C|root) for every node:
// p(C|root) = p(C|parent) × p(parent|root), with the root at its own PCond
// (normally 1). This is the computation illustrated by Figures 12 and 13.
func (s *Schema) ComputeRootProbabilities() {
	if s.Root == nil {
		return
	}
	if s.Root.PCond == 0 {
		s.Root.PCond = 1
	}
	var walk func(n *Node, parentPRoot float64)
	walk = func(n *Node, parentPRoot float64) {
		n.PRoot = n.PCond * parentPRoot
		for _, c := range n.Children {
			walk(c, n.PRoot)
		}
	}
	walk(s.Root, 1)
}

// HasIdenticalSiblings reports whether any schema node can instantiate more
// than one identical sibling copy.
func (s *Schema) HasIdenticalSiblings() bool {
	found := false
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.maxRepeat() > 1 {
			found = true
			return
		}
		for _, c := range n.Children {
			walk(c)
			if found {
				return
			}
		}
	}
	walk(s.Root)
	return found
}

// NumNodes reports the number of schema nodes.
func (s *Schema) NumNodes() int {
	count := 0
	var walk func(n *Node)
	walk = func(n *Node) {
		count++
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s.Root)
	return count
}

// FindByNamePath locates the schema node for a sequence of element names
// starting at a record root ([]string{"P","R","L"}); nil if absent. For
// forest schemas names[0] selects the record type.
func (s *Schema) FindByNamePath(names []string) *Node {
	if s.Root == nil || len(names) == 0 {
		return nil
	}
	var cur *Node
	if s.IsForest() {
		for _, c := range s.Root.Children {
			if !c.IsValue && c.Name == names[0] {
				cur = c
				break
			}
		}
	} else if s.Root.Name == names[0] {
		cur = s.Root
	}
	if cur == nil {
		return nil
	}
	for _, name := range names[1:] {
		var next *Node
		for _, c := range cur.Children {
			if !c.IsValue && c.Name == name {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// ValueSlot returns n's value-slot child, or nil.
func (n *Node) ValueSlot() *Node {
	for _, c := range n.Children {
		if c.IsValue {
			return c
		}
	}
	return nil
}

// String renders the schema as an annotated DTD-like outline, one node per
// line with its probabilities, repeats and weights — the artifact Section 5
// reasons about (Figures 12/13):
//
//	P                          p(C|parent)=1.000 p(C|root)=1.000
//	  #value range=1000        p(C|parent)=0.001 p(C|root)=0.001
//	  R                        p(C|parent)=0.900 p(C|root)=0.900
//	  ...
func (s *Schema) String() string {
	var b strings.Builder
	var walk func(n *Node, indent string)
	walk = func(n *Node, indent string) {
		name := n.Name
		if n.IsValue {
			name = fmt.Sprintf("#value range=%d", n.EffectiveValueRange())
			if n.ZipfS > 1 {
				name += fmt.Sprintf(" zipf=%.2f", n.ZipfS)
			}
		} else if name == ForestRootName {
			name = "#forest"
		}
		fmt.Fprintf(&b, "%s%-*s p(C|parent)=%.3f p(C|root)=%.3f",
			indent, 28-len(indent), name, n.PCond, n.PRoot)
		if n.maxRepeat() > 1 {
			fmt.Fprintf(&b, " repeat=%d..%d", n.minRepeat(), n.maxRepeat())
		}
		if w := n.EffectiveWeight(); w != 1 {
			fmt.Fprintf(&b, " w=%g", w)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, indent+"  ")
		}
	}
	if s.Root != nil {
		walk(s.Root, "")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Priority model: p'(C|root) over interned paths
// ---------------------------------------------------------------------------

// UnknownDecay is the factor applied per step for paths that leave the
// schema (e.g. unseen elements): each unknown step multiplies the parent's
// priority by this, keeping priorities positive and roughly depth-ordered.
const UnknownDecay = 1e-4

// Model maps interned PathIDs to p'(C|root) priorities for the g_best
// strategy. It memoizes per PathID and resolves paths against the schema by
// element names; value designators resolve to the parent element's value
// slot, with the per-value probability PRoot·w/ValueRange.
//
// Model is safe for concurrent use: the memoization caches are guarded, so
// concurrent queries can prioritize paths freely. Mutating the underlying
// Schema (weights) after Models exist is not synchronized — rebuild the
// Model instead.
type Model struct {
	schema *Schema
	enc    *pathenc.Encoder
	mu     sync.Mutex
	cache  map[pathenc.PathID]float64
	nodes  map[pathenc.PathID]*Node // element paths -> schema node
}

// NewModel builds a priority model binding schema probabilities to enc's
// path table. Paths interned after the call are still resolvable (resolution
// is lazy).
func NewModel(s *Schema, enc *pathenc.Encoder) *Model {
	return &Model{
		schema: s,
		enc:    enc,
		cache:  map[pathenc.PathID]float64{pathenc.EmptyPath: 1},
		nodes:  map[pathenc.PathID]*Node{},
	}
}

// Schema returns the model's underlying schema.
func (m *Model) Schema() *Schema { return m.schema }

// Priority returns p'(p|root) for an interned path. Unknown paths decay by
// UnknownDecay per unknown step.
func (m *Model) Priority(p pathenc.PathID) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.priorityLocked(p)
}

func (m *Model) priorityLocked(p pathenc.PathID) float64 {
	if pr, ok := m.cache[p]; ok {
		return pr
	}
	parent := m.enc.Parent(p)
	if parent == pathenc.InvalidPath {
		return 0
	}
	parentPr := m.priorityLocked(parent)
	sym := m.enc.LastSymbol(p)
	var pr float64
	switch m.enc.SymbolKind(sym) {
	case pathenc.KindElement:
		sn := m.resolveElement(parent, p, m.enc.SymbolName(sym))
		if sn != nil {
			pr = sn.PRoot * sn.EffectiveWeight()
		} else {
			pr = parentPr * UnknownDecay
		}
	case pathenc.KindValue, pathenc.KindChar:
		// The parent path is the owning element; its value slot carries the
		// slot probability, divided by the value range for one value.
		if en := m.nodeFor(parent); en != nil {
			if slot := en.ValueSlot(); slot != nil {
				pr = slot.PRoot * slot.EffectiveWeight() / float64(slot.EffectiveValueRange())
			} else {
				pr = parentPr * UnknownDecay
			}
		} else {
			pr = parentPr * UnknownDecay
		}
	default: // wildcard or unknown kinds never occur in data sequences
		pr = parentPr * UnknownDecay
	}
	if pr <= 0 {
		pr = math.SmallestNonzeroFloat64
	}
	m.cache[p] = pr
	return pr
}

func (m *Model) nodeFor(p pathenc.PathID) *Node {
	if p == pathenc.EmptyPath {
		return nil
	}
	if n, ok := m.nodes[p]; ok {
		return n
	}
	parent := m.enc.Parent(p)
	sym := m.enc.LastSymbol(p)
	if m.enc.SymbolKind(sym) != pathenc.KindElement {
		return nil
	}
	return m.resolveElement(parent, p, m.enc.SymbolName(sym))
}

func (m *Model) resolveElement(parent, p pathenc.PathID, name string) *Node {
	if n, ok := m.nodes[p]; ok {
		return n
	}
	var sn *Node
	if parent == pathenc.EmptyPath {
		if m.schema.IsForest() {
			for _, c := range m.schema.Root.Children {
				if !c.IsValue && c.Name == name {
					sn = c
					break
				}
			}
		} else if m.schema.Root != nil && m.schema.Root.Name == name {
			sn = m.schema.Root
		}
	} else if pn := m.nodeFor(parent); pn != nil {
		for _, c := range pn.Children {
			if !c.IsValue && c.Name == name {
				sn = c
				break
			}
		}
	}
	m.nodes[p] = sn // cache misses too
	return sn
}

// SetWeightByNamePath sets w(C) for the schema node at the given name path
// and invalidates the model-independent caches of any Model built later.
// Existing Models must be rebuilt to observe the change.
func (s *Schema) SetWeightByNamePath(names []string, w float64) error {
	n := s.FindByNamePath(names)
	if n == nil {
		return fmt.Errorf("schema: no node at path %v", names)
	}
	n.Weight = w
	return nil
}

// ---------------------------------------------------------------------------
// Document generation
// ---------------------------------------------------------------------------

// Generate instantiates one document tree from the schema using rng:
// each child exists with probability p(C|parent); existing repeatable
// children instantiate uniform [MinRepeat,MaxRepeat] identical sibling
// copies; value slots draw a value (Zipf-skewed when ZipfS > 1). For a
// forest schema the record type is drawn by the roots' weights.
func (s *Schema) Generate(rng *rand.Rand) *xmltree.Node {
	root := s.Root
	if s.IsForest() {
		r := rng.Float64()
		cum := 0.0
		for _, c := range root.Children {
			cum += c.PCond
			if r < cum {
				return s.generateNode(c, rng)
			}
		}
		return s.generateNode(root.Children[len(root.Children)-1], rng)
	}
	return s.generateNode(root, rng)
}

func (s *Schema) generateNode(n *Node, rng *rand.Rand) *xmltree.Node {
	out := xmltree.NewElem(n.Name)
	for _, c := range n.Children {
		if rng.Float64() >= c.PCond {
			continue
		}
		if c.IsValue {
			out.Children = append(out.Children, xmltree.NewValue(c.DrawValue(rng)))
			continue
		}
		copies := 1
		if c.maxRepeat() > c.minRepeat() {
			copies = c.minRepeat() + rng.Intn(c.maxRepeat()-c.minRepeat()+1)
		} else {
			copies = c.minRepeat()
		}
		for k := 0; k < copies; k++ {
			out.Children = append(out.Children, s.generateNode(c, rng))
		}
	}
	return out
}

// DrawValue draws one value from the slot's vocabulary.
func (n *Node) DrawValue(rng *rand.Rand) string {
	r := n.EffectiveValueRange()
	var idx int
	if n.ZipfS > 1 && r > 1 {
		z := rand.NewZipf(rng, n.ZipfS, 1, uint64(r-1))
		idx = int(z.Uint64())
	} else {
		idx = rng.Intn(r)
	}
	if idx < len(n.Values) {
		return n.Values[idx]
	}
	return fmt.Sprintf("%s_%d", n.Name, idx)
}

// ---------------------------------------------------------------------------
// Schema inference by sampling (Section 5.2: "approximate it by data
// sampling")
// ---------------------------------------------------------------------------

// Infer builds a schema from a document sample. For every distinct element
// name path it estimates
//
//	p(C|parent) = (#parent instances with ≥1 C child) / (#parent instances)
//
// and records the observed maximum sibling multiplicity as MaxRepeat. Value
// slots get the observed distinct-value count as ValueRange. A sample mixing
// several record root names infers one schema per type, grouped under a
// forest root weighted by the types' sample frequencies.
func Infer(docs []*xmltree.Node) (*Schema, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("schema: cannot infer from empty sample")
	}
	groups := map[string][]*xmltree.Node{}
	var order []string
	for _, d := range docs {
		if _, ok := groups[d.Name]; !ok {
			order = append(order, d.Name)
		}
		groups[d.Name] = append(groups[d.Name], d)
	}
	if len(groups) > 1 {
		roots := make([]*Node, 0, len(order))
		weights := make([]float64, 0, len(order))
		for _, name := range order {
			sub, err := inferSingle(groups[name])
			if err != nil {
				return nil, err
			}
			roots = append(roots, sub.Root)
			weights = append(weights, float64(len(groups[name]))/float64(len(docs)))
		}
		return NewForest(roots, weights)
	}
	return inferSingle(docs)
}

func inferSingle(docs []*xmltree.Node) (*Schema, error) {
	rootName := docs[0].Name
	type stat struct {
		instances   int            // occurrences of this schema node
		parentsWith map[string]int // child name -> #instances having >=1 such child
		valueWith   int            // #instances having a value child
		values      map[string]int // distinct values observed
		maxRepeat   map[string]int // child name -> max multiplicity under one parent
	}
	stats := map[string]*stat{} // keyed by name path "a/b/c"
	getStat := func(key string) *stat {
		st, ok := stats[key]
		if !ok {
			st = &stat{parentsWith: map[string]int{}, values: map[string]int{}, maxRepeat: map[string]int{}}
			stats[key] = st
		}
		return st
	}

	var walk func(n *xmltree.Node, key string)
	walk = func(n *xmltree.Node, key string) {
		st := getStat(key)
		st.instances++
		childCount := map[string]int{}
		hasValue := false
		for _, c := range n.Children {
			if c.IsValue {
				hasValue = true
				st.values[c.Value]++
				continue
			}
			childCount[c.Name]++
			walk(c, key+"/"+c.Name)
		}
		if hasValue {
			st.valueWith++
		}
		for name, cnt := range childCount {
			st.parentsWith[name]++
			if cnt > st.maxRepeat[name] {
				st.maxRepeat[name] = cnt
			}
		}
	}
	for _, d := range docs {
		if d.Name != rootName {
			return nil, fmt.Errorf("schema: sample mixes root elements %q and %q", rootName, d.Name)
		}
		walk(d, d.Name)
	}

	var build func(name, key string, pcond float64, minRep, maxRep int) *Node
	build = func(name, key string, pcond float64, minRep, maxRep int) *Node {
		st := stats[key]
		n := &Node{Name: name, PCond: pcond, MinRepeat: minRep, MaxRepeat: maxRep}
		if st == nil {
			return n
		}
		if st.valueWith > 0 {
			n.Children = append(n.Children, &Node{
				IsValue:    true,
				PCond:      float64(st.valueWith) / float64(st.instances),
				ValueRange: len(st.values),
				Values:     sortedKeys(st.values),
			})
		}
		names := sortedKeys(st.parentsWith)
		for _, cn := range names {
			cp := float64(st.parentsWith[cn]) / float64(st.instances)
			mr := st.maxRepeat[cn]
			if mr < 1 {
				mr = 1
			}
			n.Children = append(n.Children, build(cn, key+"/"+cn, cp, 1, mr))
		}
		return n
	}
	root := build(rootName, rootName, 1, 1, 1)
	return New(root)
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Paper fixture
// ---------------------------------------------------------------------------

// Figure12 returns the schema of Figures 12/13: P with a value slot v1
// (p=0.001) and child R (p=0.9); R with U (p=0.8) and L (p=0.4); U with M
// (p=0.8) carrying value slot v2 (p=0.001); L carrying value slot v3
// (p=0.1). Root probabilities follow Figure 13, e.g.
// p(L|root) = 0.4 × 0.9 = 0.36.
func Figure12() *Schema {
	return MustNew(&Node{
		Name:  "P",
		PCond: 1,
		Children: []*Node{
			{IsValue: true, PCond: 0.001, ValueRange: 1000},
			{Name: "R", PCond: 0.9, Children: []*Node{
				{Name: "U", PCond: 0.8, Children: []*Node{
					{Name: "M", PCond: 0.8, Children: []*Node{
						{IsValue: true, PCond: 0.001, ValueRange: 1000},
					}},
				}},
				{Name: "L", PCond: 0.4, Children: []*Node{
					{IsValue: true, PCond: 0.1, ValueRange: 55},
				}},
			}},
		},
	})
}
