// Package pathenc implements the node-encoding layer of constraint-sequence
// XML indexing (Section 2 of Wang & Meng, ICDE 2005).
//
// Every tree node is encoded by the path leading from the root to the node.
// Element and attribute names are mapped to compact designators (Symbol) and
// attribute values are mapped to value designators, either atomically through
// a hash function (the ViST representation) or as a sequence of character
// designators (the Index Fabric representation); both options from Section
// 2.1 are provided.
//
// Paths are interned: a PathID identifies one distinct root-to-node path, and
// the prefix relation (written ⊂ in the paper) as well as parent/last-symbol
// decomposition are O(1) lookups. Interning makes sequences compact ([]PathID)
// and lets the index keep one horizontal path link per PathID.
package pathenc

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// Symbol is a designator for one element name, attribute name, or value.
// Symbols are dense, starting at 0, in order of first registration.
type Symbol uint32

// Kind distinguishes what a Symbol designates.
type Kind uint8

const (
	// KindElement designates an element or attribute name.
	KindElement Kind = iota
	// KindValue designates an atomic (hashed or literal) attribute value.
	KindValue
	// KindChar designates a single character of a text-sequence value.
	KindChar
	// KindWildcard designates the reserved single-step wildcard '*'.
	KindWildcard
)

// PathID identifies an interned root-to-node path. The zero value EmptyPath
// is the empty path ε (the "path" of the document root's parent).
type PathID int32

// EmptyPath is the empty path ε.
const EmptyPath PathID = 0

// InvalidPath is returned by lookups that find no interned path.
const InvalidPath PathID = -1

type pathKey struct {
	parent PathID
	sym    Symbol
}

// Encoder interns designators and paths for one corpus. An Encoder must be
// shared by everything that exchanges Symbols or PathIDs (documents, queries,
// index). The zero value is not usable; call NewEncoder.
//
// Encoder is not safe for concurrent mutation; build single-threaded or guard
// externally. Read-only use after building is safe from multiple goroutines.
type Encoder struct {
	syms       map[string]Symbol
	symName    []string
	symKind    []Kind
	paths      map[pathKey]PathID
	parent     []PathID
	last       []Symbol
	depth      []int32
	valSpace   int
	textValues bool
}

// DefaultValueSpace is the default range of the value hash function h(·)
// used for atomic values, mirroring the paper's example of a hash function
// "with a range of 1000" for high-cardinality values.
const DefaultValueSpace = 1000

// NewTextEncoder returns an Encoder using the paper's second value
// representation (Section 2.1): a value is a sequence of character
// designators ("boston" -> b,o,s,t,o,n), enabling subsequence/prefix
// matching inside attribute values (Index Fabric style). Empty values fall
// back to one atomic designator so they remain representable.
func NewTextEncoder() *Encoder {
	e := NewEncoder(0)
	e.textValues = true
	return e
}

// TextValues reports whether values encode as character sequences.
func (e *Encoder) TextValues() bool { return e.textValues }

// NewEncoder returns an empty Encoder. valueSpace is the range of the value
// hash function; if valueSpace <= 0, DefaultValueSpace is used. A value space
// of 0 distinct buckets is meaningless, so it is rejected rather than stored.
func NewEncoder(valueSpace int) *Encoder {
	if valueSpace <= 0 {
		valueSpace = DefaultValueSpace
	}
	e := &Encoder{
		syms:     make(map[string]Symbol),
		paths:    make(map[pathKey]PathID),
		parent:   []PathID{InvalidPath},
		last:     []Symbol{0},
		depth:    []int32{0},
		valSpace: valueSpace,
	}
	// Reserve the wildcard symbol so query code can always refer to it.
	e.intern(wildcardKey, "*", KindWildcard)
	return e
}

// internal key prefixes keep the three designator namespaces disjoint: the
// element "L" and the value "L" are different designators.
const (
	elemPrefix  = "e\x00"
	valPrefix   = "v\x00"
	charPrefix  = "c\x00"
	wildcardKey = "w\x00*"
)

func (e *Encoder) intern(key, name string, kind Kind) Symbol {
	if s, ok := e.syms[key]; ok {
		return s
	}
	s := Symbol(len(e.symName))
	e.syms[key] = s
	e.symName = append(e.symName, name)
	e.symKind = append(e.symKind, kind)
	return s
}

// ValueSpace reports the range of the atomic value hash function.
func (e *Encoder) ValueSpace() int { return e.valSpace }

// ElementSymbol interns (or returns) the designator for an element or
// attribute name.
func (e *Encoder) ElementSymbol(name string) Symbol {
	return e.intern(elemPrefix+name, name, KindElement)
}

// LookupElementSymbol returns the designator for name without interning.
// The second result reports whether the name was known.
func (e *Encoder) LookupElementSymbol(name string) (Symbol, bool) {
	s, ok := e.syms[elemPrefix+name]
	return s, ok
}

// ValueSymbol interns the atomic designator for an attribute value. This is
// the paper's first value representation: each value maps to a single
// designator v_i = h(value). Values whose hash buckets collide share a
// designator, exactly as in ViST; exact-match semantics are restored by the
// post-verification helpers in the query layer when required.
func (e *Encoder) ValueSymbol(value string) Symbol {
	bucket := e.HashValue(value)
	key := fmt.Sprintf("%s%d", valPrefix, bucket)
	return e.intern(key, fmt.Sprintf("v%d", bucket), KindValue)
}

// LookupValueSymbol returns the designator a value would hash to, without
// interning. The second result reports whether that bucket has been seen.
func (e *Encoder) LookupValueSymbol(value string) (Symbol, bool) {
	s, ok := e.syms[fmt.Sprintf("%s%d", valPrefix, e.HashValue(value))]
	return s, ok
}

// HashValue reports the hash bucket h(value) in [0, ValueSpace).
func (e *Encoder) HashValue(value string) int {
	h := fnv.New32a()
	h.Write([]byte(value))
	return int(h.Sum32() % uint32(e.valSpace))
}

// CharSymbols interns the paper's second value representation: the value as
// a sequence of character designators ("boston" -> b,o,s,t,o,n), which
// permits subsequence matching inside attribute values (Index Fabric style).
func (e *Encoder) CharSymbols(value string) []Symbol {
	out := make([]Symbol, 0, len(value))
	for _, r := range value {
		out = append(out, e.intern(charPrefix+string(r), string(r), KindChar))
	}
	return out
}

// LookupCharSymbols is CharSymbols without interning, for read-only query
// paths (keeping the encoder immutable during concurrent queries). The
// second result is false when any character has never been seen — such a
// value cannot occur in the corpus.
func (e *Encoder) LookupCharSymbols(value string) ([]Symbol, bool) {
	out := make([]Symbol, 0, len(value))
	for _, r := range value {
		s, ok := e.syms[charPrefix+string(r)]
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

// WildcardSymbol returns the reserved designator for the single-step
// wildcard '*'.
func (e *Encoder) WildcardSymbol() Symbol { return e.syms[wildcardKey] }

// SymbolName reports the human-readable name of a designator.
func (e *Encoder) SymbolName(s Symbol) string {
	if int(s) >= len(e.symName) {
		return fmt.Sprintf("?sym%d", s)
	}
	return e.symName[s]
}

// SymbolKind reports what a designator designates.
func (e *Encoder) SymbolKind(s Symbol) Kind {
	if int(s) >= len(e.symKind) {
		return KindElement
	}
	return e.symKind[s]
}

// NumSymbols reports how many designators have been interned.
func (e *Encoder) NumSymbols() int { return len(e.symName) }

// Extend interns (or returns) the path parent/sym.
func (e *Encoder) Extend(parent PathID, sym Symbol) PathID {
	k := pathKey{parent, sym}
	if id, ok := e.paths[k]; ok {
		return id
	}
	id := PathID(len(e.parent))
	e.paths[k] = id
	e.parent = append(e.parent, parent)
	e.last = append(e.last, sym)
	e.depth = append(e.depth, e.depth[parent]+1)
	return id
}

// Lookup returns the PathID of parent/sym without interning, or InvalidPath.
func (e *Encoder) Lookup(parent PathID, sym Symbol) PathID {
	if id, ok := e.paths[pathKey{parent, sym}]; ok {
		return id
	}
	return InvalidPath
}

// Parent returns the longest proper prefix of p (EmptyPath's parent is
// InvalidPath).
func (e *Encoder) Parent(p PathID) PathID {
	if p <= EmptyPath || int(p) >= len(e.parent) {
		return InvalidPath
	}
	return e.parent[p]
}

// LastSymbol returns the final designator of p. It must not be called with
// EmptyPath or InvalidPath.
func (e *Encoder) LastSymbol(p PathID) Symbol { return e.last[p] }

// Depth reports the number of designators in p (0 for EmptyPath).
func (e *Encoder) Depth(p PathID) int { return int(e.depth[p]) }

// NumPaths reports how many paths are interned, including EmptyPath.
func (e *Encoder) NumPaths() int { return len(e.parent) }

// IsPrefix reports whether a ⊂ b or a == b, i.e. whether a is a (non-strict)
// prefix of b, by walking b's parent chain. O(depth(b) - depth(a)).
func (e *Encoder) IsPrefix(a, b PathID) bool {
	if a == InvalidPath || b == InvalidPath {
		return false
	}
	for e.depth[b] > e.depth[a] {
		b = e.parent[b]
	}
	return a == b
}

// IsStrictPrefix reports whether a ⊂ b (a is a proper prefix of b).
func (e *Encoder) IsStrictPrefix(a, b PathID) bool {
	return a != b && e.IsPrefix(a, b)
}

// Symbols returns the designators of p from root to leaf.
func (e *Encoder) Symbols(p PathID) []Symbol {
	if p <= EmptyPath || int(p) >= len(e.parent) {
		return nil
	}
	out := make([]Symbol, e.depth[p])
	for i := int(e.depth[p]) - 1; i >= 0; i-- {
		out[i] = e.last[p]
		p = e.parent[p]
	}
	return out
}

// PathString renders p in the paper's notation, e.g. "PDL" becomes
// "P.D.L" (dot-separated to keep multi-character names readable).
func (e *Encoder) PathString(p PathID) string {
	switch p {
	case EmptyPath:
		return "ε"
	case InvalidPath:
		return "<invalid>"
	}
	syms := e.Symbols(p)
	parts := make([]string, len(syms))
	for i, s := range syms {
		parts[i] = e.SymbolName(s)
	}
	return strings.Join(parts, ".")
}

// AllPaths returns every interned PathID except EmptyPath, sorted ascending.
// Wildcard expansion iterates this.
func (e *Encoder) AllPaths() []PathID {
	out := make([]PathID, 0, len(e.parent)-1)
	for i := 1; i < len(e.parent); i++ {
		out = append(out, PathID(i))
	}
	return out
}

// ChildPaths returns the interned extensions of parent, sorted by symbol.
// O(NumPaths) the first call builds no cache; callers that need repeated
// traversal should use ChildIndex.
func (e *Encoder) ChildPaths(parent PathID) []PathID {
	var out []PathID
	for k, id := range e.paths {
		if k.parent == parent {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return e.last[out[i]] < e.last[out[j]] })
	return out
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

// Snapshot is the serializable state of an Encoder (gob-friendly: exported
// fields only). Symbol interning keys are reconstructed from (kind, name).
type Snapshot struct {
	SymNames   []string
	SymKinds   []Kind
	Parents    []PathID
	Lasts      []Symbol
	ValSpace   int
	TextValues bool
}

// Snapshot captures the encoder's state for serialization.
func (e *Encoder) Snapshot() Snapshot {
	return Snapshot{
		SymNames:   append([]string(nil), e.symName...),
		SymKinds:   append([]Kind(nil), e.symKind...),
		Parents:    append([]PathID(nil), e.parent...),
		Lasts:      append([]Symbol(nil), e.last...),
		ValSpace:   e.valSpace,
		TextValues: e.textValues,
	}
}

func keyFor(kind Kind, name string) (string, error) {
	switch kind {
	case KindElement:
		return elemPrefix + name, nil
	case KindValue:
		if len(name) < 2 || name[0] != 'v' {
			return "", fmt.Errorf("pathenc: malformed value designator name %q", name)
		}
		return valPrefix + name[1:], nil
	case KindChar:
		return charPrefix + name, nil
	case KindWildcard:
		return wildcardKey, nil
	default:
		return "", fmt.Errorf("pathenc: unknown symbol kind %d", kind)
	}
}

// FromSnapshot reconstructs an Encoder.
func FromSnapshot(s Snapshot) (*Encoder, error) {
	if len(s.SymNames) != len(s.SymKinds) {
		return nil, fmt.Errorf("pathenc: snapshot symbol tables of lengths %d and %d", len(s.SymNames), len(s.SymKinds))
	}
	if len(s.Parents) != len(s.Lasts) || len(s.Parents) == 0 {
		return nil, fmt.Errorf("pathenc: snapshot path tables of lengths %d and %d", len(s.Parents), len(s.Lasts))
	}
	if s.ValSpace <= 0 {
		return nil, fmt.Errorf("pathenc: snapshot value space %d", s.ValSpace)
	}
	e := &Encoder{
		syms:       make(map[string]Symbol, len(s.SymNames)),
		symName:    append([]string(nil), s.SymNames...),
		symKind:    append([]Kind(nil), s.SymKinds...),
		paths:      make(map[pathKey]PathID, len(s.Parents)),
		parent:     append([]PathID(nil), s.Parents...),
		last:       append([]Symbol(nil), s.Lasts...),
		depth:      make([]int32, len(s.Parents)),
		valSpace:   s.ValSpace,
		textValues: s.TextValues,
	}
	for i, name := range e.symName {
		key, err := keyFor(e.symKind[i], name)
		if err != nil {
			return nil, err
		}
		e.syms[key] = Symbol(i)
	}
	// Entry 0 is EmptyPath; parents must point backwards so depths can be
	// filled in one pass.
	if e.parent[0] != InvalidPath {
		return nil, fmt.Errorf("pathenc: snapshot entry 0 is not the empty path")
	}
	for i := 1; i < len(e.parent); i++ {
		p := e.parent[i]
		if p < 0 || PathID(i) <= p {
			return nil, fmt.Errorf("pathenc: snapshot path %d has forward or invalid parent %d", i, p)
		}
		if int(e.last[i]) >= len(e.symName) {
			return nil, fmt.Errorf("pathenc: snapshot path %d references unknown symbol %d", i, e.last[i])
		}
		e.depth[i] = e.depth[p] + 1
		e.paths[pathKey{p, e.last[i]}] = PathID(i)
	}
	return e, nil
}

// ChildIndex is a frozen adjacency view of the path table, used by wildcard
// expansion to enumerate extensions of a path quickly.
type ChildIndex struct {
	enc      *Encoder
	children [][]PathID
}

// BuildChildIndex snapshots the current path table. Paths interned afterwards
// are not visible.
func (e *Encoder) BuildChildIndex() *ChildIndex {
	ci := &ChildIndex{enc: e, children: make([][]PathID, len(e.parent))}
	for i := 1; i < len(e.parent); i++ {
		p := e.parent[i]
		ci.children[p] = append(ci.children[p], PathID(i))
	}
	for _, c := range ci.children {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	return ci
}

// Children returns the interned extensions of p at snapshot time.
func (ci *ChildIndex) Children(p PathID) []PathID {
	if p < 0 || int(p) >= len(ci.children) {
		return nil
	}
	return ci.children[p]
}

// Descendants returns every interned path that has p as a strict prefix,
// in no particular order.
func (ci *ChildIndex) Descendants(p PathID) []PathID {
	var out []PathID
	stack := append([]PathID(nil), ci.Children(p)...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		stack = append(stack, ci.Children(n)...)
	}
	return out
}
