package pathenc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestElementSymbolInterning(t *testing.T) {
	e := NewEncoder(0)
	p := e.ElementSymbol("Project")
	r := e.ElementSymbol("Research")
	if p == r {
		t.Fatalf("distinct names share a symbol: %d", p)
	}
	if got := e.ElementSymbol("Project"); got != p {
		t.Fatalf("re-interning Project: got %d want %d", got, p)
	}
	if e.SymbolName(p) != "Project" {
		t.Fatalf("SymbolName = %q", e.SymbolName(p))
	}
	if e.SymbolKind(p) != KindElement {
		t.Fatalf("SymbolKind = %v", e.SymbolKind(p))
	}
}

func TestNamespacesDisjoint(t *testing.T) {
	e := NewEncoder(0)
	el := e.ElementSymbol("boston")
	val := e.ValueSymbol("boston")
	chars := e.CharSymbols("b")
	if el == val {
		t.Fatalf("element and value designators for %q collide", "boston")
	}
	if len(chars) != 1 || chars[0] == el {
		t.Fatalf("char designator collides with element designator")
	}
	wc := e.WildcardSymbol()
	if e.SymbolKind(wc) != KindWildcard || e.SymbolName(wc) != "*" {
		t.Fatalf("wildcard symbol broken: kind=%v name=%q", e.SymbolKind(wc), e.SymbolName(wc))
	}
}

func TestValueHashingRange(t *testing.T) {
	e := NewEncoder(55) // e.g. one bucket per US state+territory, as in §5.2
	if e.ValueSpace() != 55 {
		t.Fatalf("ValueSpace = %d", e.ValueSpace())
	}
	for _, v := range []string{"boston", "newyork", "johnson", "", "GUI", "engine"} {
		if b := e.HashValue(v); b < 0 || b >= 55 {
			t.Fatalf("HashValue(%q) = %d out of range", v, b)
		}
	}
	// Deterministic.
	if e.HashValue("boston") != e.HashValue("boston") {
		t.Fatal("HashValue not deterministic")
	}
	// Same bucket -> same symbol (ViST collision semantics).
	s1 := e.ValueSymbol("boston")
	s2 := e.ValueSymbol("boston")
	if s1 != s2 {
		t.Fatalf("same value produced different symbols %d %d", s1, s2)
	}
}

func TestDefaultValueSpace(t *testing.T) {
	if got := NewEncoder(0).ValueSpace(); got != DefaultValueSpace {
		t.Fatalf("default value space = %d want %d", got, DefaultValueSpace)
	}
	if got := NewEncoder(-5).ValueSpace(); got != DefaultValueSpace {
		t.Fatalf("negative value space = %d want %d", got, DefaultValueSpace)
	}
}

func TestCharSymbolsRoundTrip(t *testing.T) {
	e := NewEncoder(0)
	syms := e.CharSymbols("boston")
	if len(syms) != 6 {
		t.Fatalf("len = %d", len(syms))
	}
	got := ""
	for _, s := range syms {
		if e.SymbolKind(s) != KindChar {
			t.Fatalf("kind of %q = %v", e.SymbolName(s), e.SymbolKind(s))
		}
		got += e.SymbolName(s)
	}
	if got != "boston" {
		t.Fatalf("round trip = %q", got)
	}
	// Repeated characters share designators: o appears twice.
	if syms[1] != syms[4] {
		t.Fatalf("repeated char designators differ: %d %d", syms[1], syms[4])
	}
}

// buildFig3a interns the paths of Figure 3(a):
// {P, Pv0, PR, PD, PRL, PDL, PRLv1, PDLv2}.
func buildFig3a(e *Encoder) map[string]PathID {
	P := e.ElementSymbol("P")
	R := e.ElementSymbol("R")
	D := e.ElementSymbol("D")
	L := e.ElementSymbol("L")
	v0 := e.ValueSymbol("xml")
	v1 := e.ValueSymbol("boston")
	v2 := e.ValueSymbol("newyork")

	m := map[string]PathID{}
	m["P"] = e.Extend(EmptyPath, P)
	m["Pv0"] = e.Extend(m["P"], v0)
	m["PR"] = e.Extend(m["P"], R)
	m["PD"] = e.Extend(m["P"], D)
	m["PRL"] = e.Extend(m["PR"], L)
	m["PDL"] = e.Extend(m["PD"], L)
	m["PRLv1"] = e.Extend(m["PRL"], v1)
	m["PDLv2"] = e.Extend(m["PDL"], v2)
	return m
}

func TestPathInterning(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)

	// Same extension -> same id.
	P := e.ElementSymbol("P")
	if got := e.Extend(EmptyPath, P); got != m["P"] {
		t.Fatalf("re-extend P = %d want %d", got, m["P"])
	}
	// PRL and PDL are distinct even though both end in L.
	if m["PRL"] == m["PDL"] {
		t.Fatal("PRL and PDL interned to the same id")
	}
	if e.Parent(m["PRL"]) != m["PR"] {
		t.Fatalf("Parent(PRL) = %v", e.Parent(m["PRL"]))
	}
	if e.LastSymbol(m["PRL"]) != e.ElementSymbol("L") {
		t.Fatal("LastSymbol(PRL) != L")
	}
	if e.Depth(m["PRLv1"]) != 4 || e.Depth(m["P"]) != 1 || e.Depth(EmptyPath) != 0 {
		t.Fatalf("depths wrong: %d %d %d", e.Depth(m["PRLv1"]), e.Depth(m["P"]), e.Depth(EmptyPath))
	}
}

func TestLookupWithoutInterning(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)
	L := e.ElementSymbol("L")
	if got := e.Lookup(m["PR"], L); got != m["PRL"] {
		t.Fatalf("Lookup(PR, L) = %d want %d", got, m["PRL"])
	}
	M := e.ElementSymbol("M")
	if got := e.Lookup(m["PR"], M); got != InvalidPath {
		t.Fatalf("Lookup(PR, M) = %d want InvalidPath", got)
	}
	if _, ok := e.LookupElementSymbol("Zed"); ok {
		t.Fatal("LookupElementSymbol invented a symbol")
	}
	if _, ok := e.LookupValueSymbol("neverseen-distinct-bucket-?"); ok {
		// May legitimately collide into a seen bucket; only assert when the
		// bucket is genuinely fresh.
		e2 := NewEncoder(1 << 20)
		if _, ok2 := e2.LookupValueSymbol("x"); ok2 {
			t.Fatal("fresh encoder claims to know a value bucket")
		}
	}
}

func TestPrefixRelation(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)
	cases := []struct {
		a, b   string
		strict bool
		prefix bool
	}{
		{"P", "PRLv1", true, true},
		{"PR", "PRL", true, true},
		{"PD", "PRL", false, false},
		{"PRL", "PRL", false, true},
		{"PRL", "PR", false, false},
		{"PDL", "PRLv1", false, false},
	}
	for _, c := range cases {
		if got := e.IsStrictPrefix(m[c.a], m[c.b]); got != c.strict {
			t.Errorf("IsStrictPrefix(%s,%s) = %v want %v", c.a, c.b, got, c.strict)
		}
		if got := e.IsPrefix(m[c.a], m[c.b]); got != c.prefix {
			t.Errorf("IsPrefix(%s,%s) = %v want %v", c.a, c.b, got, c.prefix)
		}
	}
	if e.IsPrefix(EmptyPath, m["PRLv1"]) != true {
		t.Error("ε should be a prefix of every path")
	}
	if e.IsPrefix(InvalidPath, m["P"]) || e.IsPrefix(m["P"], InvalidPath) {
		t.Error("InvalidPath participates in prefix relation")
	}
}

func TestPathString(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)
	if got := e.PathString(m["PRL"]); got != "P.R.L" {
		t.Fatalf("PathString = %q", got)
	}
	if got := e.PathString(EmptyPath); got != "ε" {
		t.Fatalf("PathString(ε) = %q", got)
	}
	if got := e.PathString(InvalidPath); got != "<invalid>" {
		t.Fatalf("PathString(invalid) = %q", got)
	}
}

func TestSymbolsDecomposition(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)
	syms := e.Symbols(m["PRLv1"])
	if len(syms) != 4 {
		t.Fatalf("len(Symbols) = %d", len(syms))
	}
	want := []Symbol{e.ElementSymbol("P"), e.ElementSymbol("R"), e.ElementSymbol("L"), e.ValueSymbol("boston")}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("Symbols[%d] = %d want %d", i, syms[i], want[i])
		}
	}
	if e.Symbols(EmptyPath) != nil {
		t.Fatal("Symbols(ε) should be nil")
	}
}

func TestChildIndex(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)
	ci := e.BuildChildIndex()

	kids := ci.Children(m["P"])
	if len(kids) != 3 { // Pv0, PR, PD
		t.Fatalf("children of P = %d want 3", len(kids))
	}
	desc := ci.Descendants(m["PR"])
	if len(desc) != 2 { // PRL, PRLv1
		t.Fatalf("descendants of PR = %d want 2", len(desc))
	}
	all := ci.Descendants(EmptyPath)
	if len(all) != e.NumPaths()-1 {
		t.Fatalf("descendants of ε = %d want %d", len(all), e.NumPaths()-1)
	}
	if ci.Children(InvalidPath) != nil {
		t.Fatal("Children(InvalidPath) should be nil")
	}
}

func TestChildPathsMatchesChildIndex(t *testing.T) {
	e := NewEncoder(0)
	m := buildFig3a(e)
	ci := e.BuildChildIndex()
	direct := e.ChildPaths(m["P"])
	snap := ci.Children(m["P"])
	if len(direct) != len(snap) {
		t.Fatalf("ChildPaths %d vs ChildIndex %d", len(direct), len(snap))
	}
	seen := map[PathID]bool{}
	for _, p := range direct {
		seen[p] = true
	}
	for _, p := range snap {
		if !seen[p] {
			t.Fatalf("path %d missing from ChildPaths", p)
		}
	}
}

// Property: for random paths built by random extensions, parent/depth/prefix
// invariants hold.
func TestQuickPathInvariants(t *testing.T) {
	e := NewEncoder(0)
	rng := rand.New(rand.NewSource(42))
	syms := make([]Symbol, 12)
	for i := range syms {
		syms[i] = e.ElementSymbol(string(rune('A' + i)))
	}
	// Generate a pool of random paths.
	pool := []PathID{EmptyPath}
	for i := 0; i < 500; i++ {
		parent := pool[rng.Intn(len(pool))]
		if e.Depth(parent) > 8 {
			parent = EmptyPath
		}
		pool = append(pool, e.Extend(parent, syms[rng.Intn(len(syms))]))
	}

	f := func(i, j uint16) bool {
		a := pool[int(i)%len(pool)]
		b := pool[int(j)%len(pool)]
		// depth(parent) == depth(p) - 1
		if a != EmptyPath && e.Depth(e.Parent(a)) != e.Depth(a)-1 {
			return false
		}
		// IsPrefix consistent with symbol decomposition.
		as, bs := e.Symbols(a), e.Symbols(b)
		want := len(as) <= len(bs)
		for k := 0; want && k < len(as); k++ {
			if as[k] != bs[k] {
				want = false
			}
		}
		if e.IsPrefix(a, b) != want {
			return false
		}
		// Strict prefix implies prefix and a != b.
		if e.IsStrictPrefix(a, b) && (!e.IsPrefix(a, b) || a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend is injective per (parent, symbol) and re-entrant.
func TestQuickExtendDeterministic(t *testing.T) {
	e := NewEncoder(0)
	f := func(names []uint8) bool {
		p := EmptyPath
		q := EmptyPath
		for _, n := range names {
			s := e.ElementSymbol(string(rune('a' + n%20)))
			p = e.Extend(p, s)
			q = e.Extend(q, s)
			if p != q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
