package pathenc

import (
	"testing"
)

func populatedEncoder() *Encoder {
	e := NewEncoder(123)
	P := e.Extend(EmptyPath, e.ElementSymbol("P"))
	R := e.Extend(P, e.ElementSymbol("R"))
	e.Extend(R, e.ValueSymbol("boston"))
	e.Extend(P, e.ElementSymbol("D"))
	return e
}

func TestSnapshotRoundTrip(t *testing.T) {
	e := populatedEncoder()
	back, err := FromSnapshot(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSymbols() != e.NumSymbols() || back.NumPaths() != e.NumPaths() {
		t.Fatalf("sizes changed: %d/%d %d/%d",
			back.NumSymbols(), e.NumSymbols(), back.NumPaths(), e.NumPaths())
	}
	if back.ValueSpace() != 123 {
		t.Fatalf("value space = %d", back.ValueSpace())
	}
	// Symbol lookups reproduce the same ids.
	sp, ok := back.LookupElementSymbol("P")
	if !ok || sp != e.ElementSymbol("P") {
		t.Fatalf("element symbol changed: %v %v", sp, ok)
	}
	vb, ok := back.LookupValueSymbol("boston")
	if !ok || vb != e.ValueSymbol("boston") {
		t.Fatalf("value symbol changed")
	}
	if back.WildcardSymbol() != e.WildcardSymbol() {
		t.Fatal("wildcard symbol changed")
	}
	// Path lookups, prefix relations and renderings are identical.
	for _, p := range e.AllPaths() {
		if back.PathString(p) != e.PathString(p) {
			t.Fatalf("path %d renders %q vs %q", p, back.PathString(p), e.PathString(p))
		}
		if back.Depth(p) != e.Depth(p) || back.Parent(p) != e.Parent(p) {
			t.Fatalf("path %d structure changed", p)
		}
	}
	// Interning continues seamlessly on the restored encoder.
	P := back.Extend(EmptyPath, back.ElementSymbol("P"))
	if np := back.Extend(P, back.ElementSymbol("New")); np == InvalidPath {
		t.Fatal("cannot extend restored encoder")
	}
}

func TestSnapshotTextValuesFlag(t *testing.T) {
	e := NewTextEncoder()
	e.CharSymbols("ab")
	back, err := FromSnapshot(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !back.TextValues() {
		t.Fatal("text-values flag lost")
	}
	syms, ok := back.LookupCharSymbols("ab")
	if !ok || len(syms) != 2 {
		t.Fatalf("char symbols lost: %v %v", syms, ok)
	}
	if _, ok := back.LookupCharSymbols("az"); ok {
		t.Fatal("unknown char should not resolve")
	}
}

func TestFromSnapshotRejectsCorruption(t *testing.T) {
	good := populatedEncoder().Snapshot()

	cases := []func(s *Snapshot){
		func(s *Snapshot) { s.SymKinds = s.SymKinds[:1] },
		func(s *Snapshot) { s.Lasts = s.Lasts[:1] },
		func(s *Snapshot) { s.ValSpace = 0 },
		func(s *Snapshot) { s.Parents[0] = 3 },
		func(s *Snapshot) { s.Parents[2] = 5 },         // forward parent
		func(s *Snapshot) { s.Lasts[1] = Symbol(999) }, // unknown symbol
		func(s *Snapshot) { s.Parents = nil; s.Lasts = nil },
		func(s *Snapshot) { s.SymKinds[1] = Kind(77) },
	}
	for i, corrupt := range cases {
		s := good
		s.SymNames = append([]string(nil), good.SymNames...)
		s.SymKinds = append([]Kind(nil), good.SymKinds...)
		s.Parents = append([]PathID(nil), good.Parents...)
		s.Lasts = append([]Symbol(nil), good.Lasts...)
		corrupt(&s)
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("case %d: corruption accepted", i)
		}
	}
}
