package nodeindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildErrors(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 1, Root: xmltree.Figure2a()},
		{ID: 1, Root: xmltree.Figure2b()},
	}
	if _, err := Build(docs); err == nil {
		t.Fatal("duplicate ids should fail")
	}
}

func TestRegionLabels(t *testing.T) {
	ix, err := Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure2a()}})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRegions() != xmltree.Figure2a().Size() {
		t.Fatalf("regions = %d want %d", ix.NumRegions(), xmltree.Figure2a().Size())
	}
	ps := ix.elems["P"]
	if len(ps) != 1 || ps[0].Level != 0 || ps[0].Start != 1 {
		t.Fatalf("P region = %+v", ps)
	}
	// P contains every other region.
	for _, r := range ix.all {
		if r != ps[0] && !ps[0].Contains(r) {
			t.Fatalf("P does not contain %+v", r)
		}
	}
}

func TestStructuralJoinQueries(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure2a()},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		want []int32
	}{
		{"/P/D/L", []int32{0, 1}},
		{"/P/D/L[text='boston']", []int32{0}},
		{"/P//N", []int32{0}},
		{"/P/N", nil}, // child axis excludes the deep N
		{"/P/*/M", []int32{0, 1}},
		{"//U/N[text='engine']", []int32{0}},
	}
	for _, c := range cases {
		got, err := ix.Query(query.MustParse(c.q))
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, c.want) {
			t.Fatalf("%s: got %v want %v", c.q, got, c.want)
		}
		if ix.LastStats().ScannedRegions == 0 {
			t.Fatalf("%s: no join work recorded", c.q)
		}
	}
}

func TestInjectiveWitnesses(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure2a()}, // two D's
		{ID: 1, Root: xmltree.Figure2c()}, // one D over L and M
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(query.MustParse("/P[D/L][D/M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("two D branches: got %v want [0]", got)
	}
	got2, err := ix.Query(query.MustParse("/P/D[L][M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got2, []int32{1}) {
		t.Fatalf("one D over both: got %v want [1]", got2)
	}
}

func randomTree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	var n *xmltree.Node
	if isRoot {
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1, fan, false))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

func TestQuickNodeIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1111))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 10; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3, true)})
		}
		ix, err := Build(docs)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			want := query.Eval(docs, pat)
			got, err := ix.Query(pat)
			if err != nil {
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch for %s: got %v want %v", pat, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
