// Package nodeindex implements the query-by-node baseline of Table 8: an
// XISS-like structure (Li & Moon, VLDB 2001). Every document node gets a
// region label (docID, start, end, level); per element name (and per value)
// the index keeps the list of labeled nodes sorted by (doc, start). A tree
// pattern is evaluated by structural joins along its edges: for each edge,
// the candidate lists of parent and child steps are merge-joined on region
// containment (with a level check for child-axis edges). Long element lists
// make these joins the dominant cost — which is exactly why Table 8 shows
// query-by-node losing on every query, even the simple path.
package nodeindex

import (
	"fmt"
	"slices"
	"sort"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// Region is the (docID, start, end, level) label of one document node.
type Region struct {
	Doc   int32
	Start int32
	End   int32
	Level int32
}

// Contains reports whether r strictly contains s in the same document.
func (r Region) Contains(s Region) bool {
	return r.Doc == s.Doc && r.Start < s.Start && s.End <= r.End
}

// Index is a node (element/value) index over a corpus.
type Index struct {
	elems  map[string][]Region // element name -> regions
	values map[string][]Region // value text  -> regions
	all    []Region            // every element region (wildcard steps)
	// lastStats of the most recent query.
	lastStats QueryStats
}

// QueryStats reports one query's structural-join work.
type QueryStats struct {
	// Joins counts structural joins performed (one per pattern edge and
	// instance combination).
	Joins int
	// ScannedRegions counts region-list entries flowing through joins.
	ScannedRegions int
}

// Build labels every document and constructs the node index.
func Build(docs []*xmltree.Document) (*Index, error) {
	ix := &Index{elems: map[string][]Region{}, values: map[string][]Region{}}
	seen := map[int32]bool{}
	for _, d := range docs {
		if seen[d.ID] {
			return nil, fmt.Errorf("nodeindex: duplicate document id %d", d.ID)
		}
		seen[d.ID] = true
		counter := int32(0)
		var walk func(n *xmltree.Node, level int32) Region
		walk = func(n *xmltree.Node, level int32) Region {
			counter++
			r := Region{Doc: d.ID, Start: counter, Level: level}
			for _, c := range n.Children {
				walk(c, level+1)
			}
			r.End = counter
			if n.IsValue {
				ix.values[n.Value] = append(ix.values[n.Value], r)
			} else {
				ix.elems[n.Name] = append(ix.elems[n.Name], r)
				ix.all = append(ix.all, r)
			}
			return r
		}
		walk(d.Root, 0)
	}
	sortRegions := func(rs []Region) {
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].Doc != rs[j].Doc {
				return rs[i].Doc < rs[j].Doc
			}
			return rs[i].Start < rs[j].Start
		})
	}
	for k := range ix.elems {
		sortRegions(ix.elems[k])
	}
	for k := range ix.values {
		sortRegions(ix.values[k])
	}
	sortRegions(ix.all)
	return ix, nil
}

// NumRegions reports the total number of indexed regions.
func (ix *Index) NumRegions() int {
	total := 0
	for _, rs := range ix.elems {
		total += len(rs)
	}
	for _, rs := range ix.values {
		total += len(rs)
	}
	return total
}

// LastStats returns the work counters of the most recent Query.
func (ix *Index) LastStats() QueryStats { return ix.lastStats }

// Query evaluates the pattern bottom-up with structural joins and returns
// the ids of documents in which the pattern root has at least one witness
// satisfying every edge. Like XISS (and unlike the ground truth), the joins
// alone do not enforce injective sibling witnesses, so twigs with identical
// sibling branches go through a final per-witness refinement using the
// region algebra (no document re-parsing needed).
func (ix *Index) Query(pat *query.Pattern) ([]int32, error) {
	ix.lastStats = QueryStats{}
	if pat == nil || pat.Root == nil {
		return nil, fmt.Errorf("nodeindex: empty pattern")
	}
	witnesses := ix.eval(pat.Root, pat.Root.Axis == query.AxisChild)
	var out []int32
	seen := map[int32]bool{}
	for _, w := range witnesses {
		if !seen[w.Doc] {
			seen[w.Doc] = true
			out = append(out, w.Doc)
		}
	}
	slices.Sort(out)
	return out, nil
}

// candidates returns the region list for one pattern step.
func (ix *Index) candidates(n *query.PNode) []Region {
	switch {
	case n.IsValue:
		return ix.values[n.Value]
	case n.Wildcard:
		return ix.all
	default:
		return ix.elems[n.Name]
	}
}

// eval returns the regions that root a full embedding of the pattern
// subtree at n. rootAnchored restricts matches to document roots (level 0).
func (ix *Index) eval(n *query.PNode, rootAnchored bool) []Region {
	cands := ix.candidates(n)
	ix.lastStats.ScannedRegions += len(cands)
	if rootAnchored {
		var filtered []Region
		for _, r := range cands {
			if r.Level == 0 {
				filtered = append(filtered, r)
			}
		}
		cands = filtered
	}
	if len(n.Children) == 0 {
		return cands
	}
	// Evaluate children, then keep parents with an injective assignment of
	// child witnesses (the refinement step).
	childWitnesses := make([][]Region, len(n.Children))
	for i, c := range n.Children {
		childWitnesses[i] = ix.eval(c, false)
		if len(childWitnesses[i]) == 0 {
			return nil
		}
	}
	var out []Region
	for _, parent := range cands {
		// Structural join: witnesses of each child contained in parent,
		// with the level constraint for child-axis edges.
		ix.lastStats.Joins += len(n.Children)
		options := make([][]Region, len(n.Children))
		ok := true
		for i, c := range n.Children {
			ix.lastStats.ScannedRegions += len(childWitnesses[i])
			for _, w := range childWitnesses[i] {
				if !parent.Contains(w) {
					continue
				}
				if c.Axis == query.AxisChild && w.Level != parent.Level+1 {
					continue
				}
				options[i] = append(options[i], w)
			}
			if len(options[i]) == 0 {
				ok = false
				break
			}
		}
		if ok && injectiveAssignment(options) {
			out = append(out, parent)
		}
	}
	return out
}

// injectiveAssignment checks whether each child slot can take a distinct
// witness (distinct by (Doc, Start)).
func injectiveAssignment(options [][]Region) bool {
	order := make([]int, len(options))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(options[order[a]]) < len(options[order[b]]) })
	used := map[int64]bool{}
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			return true
		}
		for _, w := range options[order[k]] {
			key := int64(w.Doc)<<32 | int64(w.Start)
			if used[key] {
				continue
			}
			used[key] = true
			if rec(k + 1) {
				return true
			}
			delete(used, key)
		}
		return false
	}
	return rec(0)
}
