package flat

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// Options tunes Open/OpenFile.
type Options struct {
	// VerifyChecksums CRC-checks the bulk sections (LINKS, ENDS, DOCS) at
	// open, trading the O(1) open for up-front corruption detection — what
	// a serving layer does before publishing a snapshot. Without it the
	// small sections are still verified and every query-time read of the
	// bulk sections is bounds-checked.
	VerifyChecksums bool
	// NoMmap makes OpenFile read the file into memory instead of mapping
	// it (platforms without mmap always do).
	NoMmap bool
}

// Index is an opened flat snapshot: an engine.Engine whose query kernel
// runs directly over the mapped file bytes. Only the dictionary head
// (encoder, schema, strategy, link directory) lives on the Go heap; the
// label arrays and doc-id lists are read in place.
//
// Ownership and pinning: the mapped bytes stay valid until Close. Query
// results are freshly allocated copies (the engine ownership contract), so
// nothing a query returns pins the mapping; an Index dropped without Close
// is unmapped by a finalizer. Close is idempotent and must not race
// in-flight queries.
type Index struct {
	data  []byte
	unmap func() error
	// closed flips once; queries do not check it (the caller contract is
	// "no queries after Close", same as any engine teardown).
	closed atomic.Bool

	meta flatMeta
	enc  *pathenc.Encoder
	ci   *pathenc.ChildIndex
	prio *sequence.Probability

	sections map[uint32]section

	linkViews []linkView
	numLinks  int

	ends endsView

	docsOnce sync.Once
	docs     []*xmltree.Document
	docsErr  error

	// Page-level observability: when a pager.Pool is attached, every
	// kernel read charges the 4 KiB page(s) it falls on, so the pool's
	// counters report the paper's disk-access metric and resident-page
	// count for real queries over the real layout. The pool is not
	// concurrency-safe, hence the mutex; pagerOn keeps the detached fast
	// path to one atomic load.
	pagerOn atomic.Bool
	pagerMu sync.Mutex
	pool    *pager.Pool
}

// section is one parsed section-table row.
type section struct {
	crc      uint32
	off, len uint64
}

// linkView locates one path's link inside the mapped bytes. pres and maxs
// are 4*n bytes each; anc and embeds are nil for links without cover
// metadata (every entry then has anc = -1, embeds = false). fileOff is the
// pres array's offset in the file, for page accounting.
type linkView struct {
	n       int32
	pres    []byte
	maxs    []byte
	anc     []byte
	embeds  []byte
	fileOff uint64
}

// endsView locates the end-node table. dir is the block directory
// (numBlocks rows); payload is the whole ENDS section, in which the
// directory's entryOff/idsOff offsets live; fileOff is the section's file
// offset.
type endsView struct {
	numEnds   int
	numBlocks int
	dir       []byte
	payload   []byte
	fileOff   uint64
}

func corrupt(reason string, args ...any) error {
	return &index.CorruptError{Reason: "flat: " + fmt.Sprintf(reason, args...)}
}

// OpenBytes opens a flat snapshot held in memory. data is retained and must
// not be modified while the index is in use.
func OpenBytes(data []byte, opts Options) (*Index, error) {
	ix := &Index{data: data, unmap: nil}
	if err := ix.init(opts); err != nil {
		return nil, err
	}
	return ix, nil
}

// Open reads a complete flat snapshot stream into memory and opens it —
// the io.Reader entry point behind the facade's layout-sniffing Load. For
// the O(1) mapped open, use OpenFile.
func Open(r io.Reader, opts Options) (*Index, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, &index.CorruptError{Reason: "flat: unreadable stream", Err: err}
	}
	return OpenBytes(data, opts)
}

// OpenFile maps path and opens it in place (Options.NoMmap, or a platform
// without mmap, reads it instead). Open cost is O(dictionary): the label
// arrays and doc-id lists are not decoded, only addressed.
func OpenFile(path string, opts Options) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("flat: open %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("flat: open %s: %w", path, err)
	}
	var data []byte
	var unmap func() error
	if opts.NoMmap || !mmapAvailable {
		data = make([]byte, fi.Size())
		if _, err := io.ReadFull(f, data); err != nil {
			return nil, &index.CorruptError{Reason: fmt.Sprintf("flat: %s: short read", path), Err: err}
		}
	} else {
		data, unmap, err = mapFile(f, fi.Size())
		if err != nil {
			return nil, err
		}
	}
	ix := &Index{data: data, unmap: unmap}
	if err := ix.init(opts); err != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, err
	}
	// A snapshot dropped without Close (a Swapper swapping it out, say)
	// must not leak its mapping.
	runtime.SetFinalizer(ix, func(ix *Index) { _ = ix.Close() })
	return ix, nil
}

// Close releases the mapping (a no-op for in-memory snapshots). Idempotent.
// No queries may be in flight or issued afterwards.
func (ix *Index) Close() error {
	if ix.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(ix, nil)
	if ix.unmap != nil {
		return ix.unmap()
	}
	return nil
}

// Mmapped reports whether the snapshot is memory-mapped (as opposed to
// read into the Go heap).
func (ix *Index) Mmapped() bool { return ix.unmap != nil }

// MappedBytes is the snapshot's total size — the denominator of the
// resident-vs-mapped ratio.
func (ix *Index) MappedBytes() int64 { return int64(len(ix.data)) }

// init parses and validates the header, decodes the dictionary head, and
// addresses the bulk sections. Everything here is O(dictionary).
func (ix *Index) init(opts Options) error {
	data := ix.data
	if len(data) < headerFixedLen+4 {
		return corrupt("truncated header (%d bytes)", len(data))
	}
	if !IsFlatHeader(data) {
		return corrupt("bad magic")
	}
	if v := le.Uint32(data[8:]); v != formatVersion {
		return corrupt("unsupported format version %d (want %d)", v, formatVersion)
	}
	count := le.Uint32(data[12:])
	if count == 0 || count > maxSections {
		return corrupt("implausible section count %d", count)
	}
	headerLen := headerFixedLen + sectionEntryLen*int(count)
	if len(data) < headerLen+4 {
		return corrupt("truncated section table")
	}
	if size := le.Uint64(data[16:]); size != uint64(len(data)) {
		return corrupt("file size %d, header says %d", len(data), size)
	}
	if want, got := le.Uint32(data[headerLen:]), crc32.ChecksumIEEE(data[:headerLen]); want != got {
		return corrupt("header checksum mismatch (stored %08x, computed %08x)", want, got)
	}
	ix.sections = make(map[uint32]section, count)
	prevEnd := uint64(align8(headerLen + 4))
	prevID := uint32(0)
	for i := 0; i < int(count); i++ {
		row := data[headerFixedLen+i*sectionEntryLen:]
		id := le.Uint32(row)
		s := section{crc: le.Uint32(row[4:]), off: le.Uint64(row[8:]), len: le.Uint64(row[16:])}
		if id <= prevID {
			return corrupt("section table not ascending at id %d", id)
		}
		prevID = id
		if s.off%8 != 0 || s.off < prevEnd || s.len > uint64(len(data)) || s.off+s.len > uint64(len(data)) {
			return corrupt("section %d extent [%d, %d) outside file or overlapping", id, s.off, s.off+s.len)
		}
		prevEnd = s.off + s.len
		ix.sections[id] = s
	}
	for _, id := range []uint32{secMeta, secDict, secLinkDir, secLinks, secEnds, secDocs} {
		if _, ok := ix.sections[id]; !ok {
			return corrupt("missing section %d", id)
		}
	}
	// Small sections are always checksum-verified: they are O(dictionary),
	// and the heap decode below trusts their bytes.
	for _, id := range []uint32{secMeta, secDict, secLinkDir} {
		if err := ix.checkSection(id); err != nil {
			return err
		}
	}

	if err := gob.NewDecoder(bytes.NewReader(ix.sectionBytes(secMeta))).Decode(&ix.meta); err != nil {
		return &index.CorruptError{Reason: "flat: undecodable meta", Err: err}
	}
	if ix.meta.NumDocs < 0 || ix.meta.MaxDocID < 0 || ix.meta.MaxSerial < 0 {
		return corrupt("negative size fields (docs %d, max id %d, max serial %d)",
			ix.meta.NumDocs, ix.meta.MaxDocID, ix.meta.MaxSerial)
	}
	var snap pathenc.Snapshot
	if err := gob.NewDecoder(bytes.NewReader(ix.sectionBytes(secDict))).Decode(&snap); err != nil {
		return &index.CorruptError{Reason: "flat: undecodable dictionary", Err: err}
	}
	enc, err := pathenc.FromSnapshot(snap)
	if err != nil {
		return &index.CorruptError{Reason: "flat: invalid encoder snapshot", Err: err}
	}
	sch, err := schema.New(ix.meta.Schema)
	if err != nil {
		return &index.CorruptError{Reason: "flat: invalid schema", Err: err}
	}
	ix.enc = enc
	ix.ci = enc.BuildChildIndex()
	ix.prio = sequence.NewProbability(sch, enc)
	repeat := make(map[pathenc.PathID]bool, len(ix.meta.Repeat))
	for _, p := range ix.meta.Repeat {
		repeat[p] = true
	}
	ix.prio.SetRepeatPaths(repeat)

	if err := ix.initLinks(); err != nil {
		return err
	}
	if err := ix.initEnds(); err != nil {
		return err
	}
	if ix.meta.KeptDocs && ix.sections[secDocs].len == 0 {
		return corrupt("meta says documents were kept but DOCS is empty")
	}
	if opts.VerifyChecksums {
		if err := ix.VerifyChecksums(); err != nil {
			return err
		}
	}
	return nil
}

// initLinks validates the link directory against the LINKS arena and
// precomputes one view per path — O(path table).
func (ix *Index) initLinks() error {
	dir := ix.sectionBytes(secLinkDir)
	numPaths := ix.enc.NumPaths()
	if len(dir) != numPaths*linkDirEntryLen {
		return corrupt("link directory holds %d bytes for %d paths (want %d)",
			len(dir), numPaths, numPaths*linkDirEntryLen)
	}
	arena := ix.sectionBytes(secLinks)
	arenaFileOff := ix.sections[secLinks].off
	ix.linkViews = make([]linkView, numPaths)
	for p := 0; p < numPaths; p++ {
		row := dir[p*linkDirEntryLen:]
		n := le.Uint32(row)
		flags := le.Uint32(row[4:])
		off := le.Uint64(row[8:])
		if n == 0 {
			continue
		}
		if n > uint32(1)<<30 {
			return corrupt("link %d has implausible length %d", p, n)
		}
		need := uint64(8 * n) // pres + maxs
		hasCover := flags&linkHasCover != 0
		if hasCover {
			need += uint64(4*n) + uint64(bitsetLen(int(n)))
		}
		if off > uint64(len(arena)) || off+need > uint64(len(arena)) {
			return corrupt("link %d extent [%d, %d) outside links section", p, off, off+need)
		}
		v := linkView{n: int32(n), fileOff: arenaFileOff + off}
		b := arena[off:]
		v.pres, b = b[:4*n], b[4*n:]
		v.maxs, b = b[:4*n], b[4*n:]
		if hasCover {
			v.anc, b = b[:4*n], b[4*n:]
			v.embeds = b[:bitsetLen(int(n))]
		}
		ix.linkViews[p] = v
		ix.numLinks++
	}
	return nil
}

// initEnds addresses the end-node table. Only the section header and the
// directory's extent are validated here; the kernel bounds-checks every
// offset and varint it follows, so a corrupt directory surfaces as a
// *CorruptError at query time instead of an O(corpus) open-time scan.
func (ix *Index) initEnds() error {
	s := ix.sectionBytes(secEnds)
	if len(s) < 8 {
		return corrupt("ends section truncated (%d bytes)", len(s))
	}
	numEnds := le.Uint32(s)
	numBlocks := le.Uint32(s[4:])
	if numEnds > uint32(1)<<30 || numBlocks != (numEnds+endsBlockSize-1)/endsBlockSize {
		return corrupt("ends header inconsistent (%d ends, %d blocks)", numEnds, numBlocks)
	}
	dirEnd := 8 + int(numBlocks)*endsBlockDirLen
	if dirEnd > len(s) {
		return corrupt("ends directory extends past section (%d > %d)", dirEnd, len(s))
	}
	ix.ends = endsView{
		numEnds:   int(numEnds),
		numBlocks: int(numBlocks),
		dir:       s[8:dirEnd],
		payload:   s,
		fileOff:   ix.sections[secEnds].off,
	}
	return nil
}

// sectionBytes returns section id's payload (validated extents).
func (ix *Index) sectionBytes(id uint32) []byte {
	s := ix.sections[id]
	return ix.data[s.off : s.off+s.len]
}

// checkSection CRC-verifies one section.
func (ix *Index) checkSection(id uint32) error {
	s := ix.sections[id]
	if got := crc32.ChecksumIEEE(ix.sectionBytes(id)); got != s.crc {
		return corrupt("section %d checksum mismatch (stored %08x, computed %08x)", id, s.crc, got)
	}
	return nil
}

// VerifyChecksums CRC-verifies every section, bulk ones included — the
// full-integrity pass a serving layer runs before publishing a reloaded
// snapshot. Cost is O(file); on a mapped snapshot it also faults every
// page in. Alignment padding between sections is outside every CRC, so the
// sweep checks it is zero too — every byte of the file is then accounted
// for.
func (ix *Index) VerifyChecksums() error {
	exts := make([]section, 0, len(ix.sections))
	for id := range ix.sections {
		if err := ix.checkSection(id); err != nil {
			return err
		}
		exts = append(exts, ix.sections[id])
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i].off < exts[j].off })
	pos := uint64(headerFixedLen + len(ix.sections)*sectionEntryLen + 4)
	exts = append(exts, section{off: uint64(len(ix.data))})
	for _, s := range exts {
		for ; pos < s.off; pos++ {
			if ix.data[pos] != 0 {
				return corrupt("nonzero padding byte at offset %d", pos)
			}
		}
		pos = s.off + s.len
	}
	return nil
}

// loadDocs decodes the retained corpus on first use.
func (ix *Index) loadDocs() ([]*xmltree.Document, error) {
	ix.docsOnce.Do(func() {
		if !ix.meta.KeptDocs {
			return
		}
		var docs []*xmltree.Document
		if err := gob.NewDecoder(bytes.NewReader(ix.sectionBytes(secDocs))).Decode(&docs); err != nil {
			ix.docsErr = &index.CorruptError{Reason: "flat: undecodable documents", Err: err}
			return
		}
		ix.docs = docs
	})
	return ix.docs, ix.docsErr
}
