package flat

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/schema"
)

// flatMeta is the small heap-decoded head of a snapshot: everything Open
// needs to rebuild the query machinery (schema → g_best strategy, repeat
// set, options) plus the corpus bounds. It is O(dictionary), never
// O(corpus).
type flatMeta struct {
	Schema                *schema.Node
	Repeat                []pathenc.PathID
	NumDocs               int
	MaxDocID              int32
	MaxSerial             int32
	InstantiationLimit    int
	OrderEnumerationLimit int
	KeptDocs              bool // DOCS section is non-empty
}

// Write lays ex out in the flat format and writes it to w as one stream.
func Write(w io.Writer, ex *index.Export) error {
	if ex == nil {
		return fmt.Errorf("flat: nil export")
	}
	sections, err := buildSections(ex)
	if err != nil {
		return err
	}
	// Header + table.
	headerLen := headerFixedLen + sectionEntryLen*len(sections) + 4
	off := align8(headerLen)
	total := off
	for i := range sections {
		sections[i].off = uint64(total)
		total += align8(len(sections[i].payload))
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, Magic[:]...)
	hdr = le.AppendUint32(hdr, formatVersion)
	hdr = le.AppendUint32(hdr, uint32(len(sections)))
	hdr = le.AppendUint64(hdr, uint64(total))
	for i := range sections {
		s := &sections[i]
		hdr = le.AppendUint32(hdr, s.id)
		hdr = le.AppendUint32(hdr, crc32.ChecksumIEEE(s.payload))
		hdr = le.AppendUint64(hdr, s.off)
		hdr = le.AppendUint64(hdr, uint64(len(s.payload)))
	}
	hdr = le.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("flat: write header: %w", err)
	}
	pos := len(hdr)
	var pad [8]byte
	for i := range sections {
		s := &sections[i]
		if n := int(s.off) - pos; n > 0 {
			if _, err := w.Write(pad[:n]); err != nil {
				return fmt.Errorf("flat: write padding: %w", err)
			}
			pos += n
		}
		if _, err := w.Write(s.payload); err != nil {
			return fmt.Errorf("flat: write section %d: %w", s.id, err)
		}
		pos += len(s.payload)
	}
	if n := total - pos; n > 0 {
		if _, err := w.Write(pad[:n]); err != nil {
			return fmt.Errorf("flat: write padding: %w", err)
		}
	}
	return nil
}

// WriteFile is Write to a file, crash-safely: temp file in the same
// directory, fsync, atomic rename (a previous file at path survives a
// failure intact).
func WriteFile(path string, ex *index.Export) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("flat: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = Write(tmp, ex); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("flat: save %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("flat: save %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("flat: save %s: rename: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

type rawSection struct {
	id      uint32
	payload []byte
	off     uint64
}

// buildSections encodes every section payload.
func buildSections(ex *index.Export) ([]rawSection, error) {
	meta := flatMeta{
		Schema:                ex.Schema,
		Repeat:                ex.Repeat,
		NumDocs:               ex.NumDocs,
		MaxDocID:              ex.MaxDocID,
		MaxSerial:             ex.MaxSerial,
		InstantiationLimit:    ex.InstantiationLimit,
		OrderEnumerationLimit: ex.OrderEnumerationLimit,
		KeptDocs:              len(ex.Docs) > 0,
	}
	var metaBuf bytes.Buffer
	if err := gob.NewEncoder(&metaBuf).Encode(&meta); err != nil {
		return nil, fmt.Errorf("flat: encode meta: %w", err)
	}
	var dictBuf bytes.Buffer
	if err := gob.NewEncoder(&dictBuf).Encode(&ex.Encoder); err != nil {
		return nil, fmt.Errorf("flat: encode dictionary: %w", err)
	}
	linkDir, links, err := buildLinks(ex)
	if err != nil {
		return nil, err
	}
	ends, err := buildEnds(ex)
	if err != nil {
		return nil, err
	}
	var docsBuf bytes.Buffer
	if len(ex.Docs) > 0 {
		if err := gob.NewEncoder(&docsBuf).Encode(ex.Docs); err != nil {
			return nil, fmt.Errorf("flat: encode documents: %w", err)
		}
	}
	return []rawSection{
		{id: secMeta, payload: metaBuf.Bytes()},
		{id: secDict, payload: dictBuf.Bytes()},
		{id: secLinkDir, payload: linkDir},
		{id: secLinks, payload: links},
		{id: secEnds, payload: ends},
		{id: secDocs, payload: docsBuf.Bytes()},
	}, nil
}

// buildLinks lays the horizontal links out: a fixed-width directory indexed
// by PathID and one arena of label arrays. Links without cover metadata
// (every anc -1, no embeds bit — the normal case on repetitive markup)
// store only pres+maxs and set no flag; the kernel synthesizes the default
// row.
func buildLinks(ex *index.Export) (dir, arena []byte, err error) {
	dir = make([]byte, ex.NumPaths*linkDirEntryLen)
	for _, l := range ex.Links {
		if l.Path < 0 || int(l.Path) >= ex.NumPaths {
			return nil, nil, fmt.Errorf("flat: link path %d outside path table [0, %d)", l.Path, ex.NumPaths)
		}
		n := len(l.Pre)
		if len(l.Max) != n || (l.HasCover && (len(l.Anc) != n || len(l.Embeds) != n)) {
			return nil, nil, fmt.Errorf("flat: link %d has ragged arrays", l.Path)
		}
		flags := uint32(0)
		if l.HasCover {
			flags |= linkHasCover
		}
		row := dir[int(l.Path)*linkDirEntryLen:]
		le.PutUint32(row, uint32(n))
		le.PutUint32(row[4:], flags)
		le.PutUint64(row[8:], uint64(len(arena)))
		for _, v := range l.Pre {
			arena = le.AppendUint32(arena, uint32(v))
		}
		for _, v := range l.Max {
			arena = le.AppendUint32(arena, uint32(v))
		}
		if l.HasCover {
			for _, v := range l.Anc {
				arena = le.AppendUint32(arena, uint32(v))
			}
			bs := make([]byte, bitsetLen(n))
			for i, e := range l.Embeds {
				if e {
					bitsetSet(bs, i)
				}
			}
			arena = append(arena, bs...)
		}
		for len(arena)%8 != 0 {
			arena = append(arena, 0)
		}
	}
	return dir, arena, nil
}

// buildEnds encodes the end-node table: fixed-width block directory over
// varint-delta entry and doc-id streams.
func buildEnds(ex *index.Export) ([]byte, error) {
	numEnds := len(ex.EndPres)
	if len(ex.EndOffs) != numEnds || len(ex.EndLens) != numEnds {
		return nil, fmt.Errorf("flat: ragged end-node arrays")
	}
	numBlocks := (numEnds + endsBlockSize - 1) / endsBlockSize
	var entries, ids []byte
	type blockRow struct {
		firstPre int32
		count    uint32
		entryOff uint64
		idsOff   uint64
	}
	blocks := make([]blockRow, 0, numBlocks)
	for b := 0; b < numBlocks; b++ {
		lo := b * endsBlockSize
		hi := min(lo+endsBlockSize, numEnds)
		blocks = append(blocks, blockRow{
			firstPre: ex.EndPres[lo],
			count:    uint32(hi - lo),
			entryOff: uint64(len(entries)),
			idsOff:   uint64(len(ids)),
		})
		prevPre := ex.EndPres[lo]
		for i := lo; i < hi; i++ {
			pre := ex.EndPres[i]
			if pre < prevPre {
				return nil, fmt.Errorf("flat: end-node pres not ascending at %d", i)
			}
			off, n := ex.EndOffs[i], ex.EndLens[i]
			if n < 0 || off < 0 || int(off)+int(n) > len(ex.EndIDs) {
				return nil, fmt.Errorf("flat: end-node %d id range [%d, %d) outside ids array", i, off, off+n)
			}
			list := ex.EndIDs[off : off+n]
			var enc []byte
			prev := int32(0)
			for k, id := range list {
				if k == 0 {
					enc = putUvarint(enc, zigzag(id))
				} else {
					enc = putUvarint(enc, zigzag(id-prev))
				}
				prev = id
			}
			entries = putUvarint(entries, uint64(pre-prevPre))
			entries = putUvarint(entries, uint64(n))
			entries = putUvarint(entries, uint64(len(enc)))
			ids = append(ids, enc...)
			prevPre = pre
		}
	}
	// Assemble: header, directory, entries, ids — entries 8-aligned so the
	// directory's offsets are section-relative to fixed bases.
	dirLen := numBlocks * endsBlockDirLen
	entriesBase := align8(8 + dirLen)
	idsBase := align8(entriesBase + len(entries))
	out := make([]byte, 0, idsBase+len(ids))
	out = le.AppendUint32(out, uint32(numEnds))
	out = le.AppendUint32(out, uint32(numBlocks))
	for _, b := range blocks {
		out = le.AppendUint32(out, uint32(b.firstPre))
		out = le.AppendUint32(out, b.count)
		out = le.AppendUint64(out, b.entryOff+uint64(entriesBase))
		out = le.AppendUint64(out, b.idsOff+uint64(idsBase))
	}
	for len(out) < entriesBase {
		out = append(out, 0)
	}
	out = append(out, entries...)
	for len(out) < idsBase {
		out = append(out, 0)
	}
	out = append(out, ids...)
	return out, nil
}
