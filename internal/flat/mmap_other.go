//go:build !unix

package flat

import (
	"fmt"
	"io"
	"os"
)

// mmapAvailable reports whether this platform maps snapshots instead of
// reading them.
const mmapAvailable = false

// mapFile is the portable fallback: read the whole file into memory. The
// query path is identical (byte-offset addressed); only the
// bigger-than-RAM property is lost.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	data = make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, fmt.Errorf("flat: read: %w", err)
	}
	return data, func() error { return nil }, nil
}
