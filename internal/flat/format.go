// Package flat is the fourth storage organization of the constraint-sequence
// index: a single-file snapshot laid out as offset-addressed arrays that are
// queried in place, with no decode step between the bytes on disk and the
// match kernel. A snapshot is opened with mmap (ReadAt fallback on platforms
// without it), so open cost is O(dictionary) — independent of corpus size —
// and a corpus larger than RAM is serveable: the kernel only ever touches
// the pages a query's binary searches and range scans actually visit.
//
// File format (version 1, all fixed-width integers little-endian):
//
//	offset  size  field
//	0       8     magic "XSEQFLAT"
//	8       4     version (uint32)
//	12      4     section count s (uint32)
//	16      8     total file size (uint64) — catches truncation up front
//	24      24*s  section table: {id uint32, crc uint32 (IEEE), offset
//	              uint64, length uint64} per section, ascending id
//	24+24s  4     CRC-32 (IEEE) of bytes [0, 24+24s) — the header checksum
//	...           section payloads, each 8-byte aligned
//
// Sections:
//
//	META (1)     gob(flatMeta): schema, repeat set, corpus bounds, options.
//	DICT (2)     gob(pathenc.Snapshot): the designator/path table.
//	LINKDIR (3)  one {count uint32, flags uint32, offset uint64} per PathID
//	             (NumPaths entries): where the path's link lives in LINKS.
//	             Flag bit 0 (linkHasCover) marks links that carry
//	             sibling-cover metadata; links without it store only the
//	             label arrays — the structure-sharing trick for repetitive
//	             markup, where almost every link's cover metadata is the
//	             all-default {anc: -1, embeds: false} row.
//	LINKS (4)    per link: pres []int32, maxs []int32, then (only with
//	             linkHasCover) anc []int32 and an embeds bitset, each run
//	             4-byte aligned. Fixed-width on purpose: the kernel binary
//	             searches pres and hops anc chains, which needs random
//	             access.
//	ENDS (5)     the end-node table, varint-delta encoded in blocks of
//	             endsBlockSize entries (access is sequential range scans, so
//	             compression costs nothing): header {numEnds uint32,
//	             numBlocks uint32}, a fixed-width block directory {firstPre
//	             int32, count uint32, entryOff uint64, idsOff uint64}, then
//	             per entry uvarint(preDelta), uvarint(idCount),
//	             uvarint(idsByteLen), and per doc-id list zigzag varints
//	             (first id absolute, then deltas).
//	DOCS (6)     gob([]*xmltree.Document), empty unless the source index
//	             kept its corpus. Decoded lazily (only Verify/Documents
//	             need it), preserving O(dictionary) open.
//
// Opening verifies the header checksum, the structural sanity of the
// section table, and the CRCs of the small sections (META, DICT, LINKDIR —
// all O(dictionary)). The bulk sections (LINKS, ENDS, DOCS) are checked by
// VerifyChecksums (Options.VerifyChecksums runs it at open); without it,
// every query-time read of those sections is bounds-checked, so corruption
// surfaces as a *index.CorruptError, never a panic or a silent wrong
// answer.
package flat

import (
	"encoding/binary"
)

// Magic opens every flat snapshot.
var Magic = [8]byte{'X', 'S', 'E', 'Q', 'F', 'L', 'A', 'T'}

// formatVersion is the version this package writes and accepts.
const formatVersion = 1

// Section ids. The table is written ascending; ids are unique.
const (
	secMeta    = 1
	secDict    = 2
	secLinkDir = 3
	secLinks   = 4
	secEnds    = 5
	secDocs    = 6
)

const (
	headerFixedLen  = 24 // magic + version + count + file size
	sectionEntryLen = 24 // id + crc + offset + length
	maxSections     = 64 // sanity bound against hostile counts

	// linkDirEntryLen is one LINKDIR row: count, flags, offset.
	linkDirEntryLen = 16
	// linkHasCover marks a link that stores anc + embeds arrays.
	linkHasCover = 1

	// endsBlockSize is the entry count per ENDS block: big enough to
	// amortize the 24-byte directory row, small enough that a range scan
	// decodes little beyond what it returns.
	endsBlockSize = 64
	// endsBlockDirLen is one ENDS block-directory row.
	endsBlockDirLen = 24
)

// IsFlatHeader reports whether b starts with the flat snapshot magic.
func IsFlatHeader(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == string(Magic[:])
}

// le is the byte order of every fixed-width field.
var le = binary.LittleEndian

// zigzag encodes a signed int32 for varint storage (small magnitudes of
// either sign stay short).
func zigzag(v int32) uint64 {
	return uint64(uint32(v<<1) ^ uint32(v>>31))
}

// unzigzag inverts zigzag.
func unzigzag(u uint64) int32 {
	return int32(uint32(u>>1) ^ -uint32(u&1))
}

// uvarint decodes an unsigned varint from b starting at off, returning the
// value and the offset past it; ok is false on truncation or overflow —
// the caller turns that into a CorruptError. This is binary.Uvarint with an
// explicit offset and no slice reheadering in the hot path.
func uvarint(b []byte, off int) (v uint64, next int, ok bool) {
	var shift uint
	for ; off < len(b); off++ {
		c := b[off]
		if c < 0x80 {
			if shift >= 64 || (shift == 63 && c > 1) {
				return 0, 0, false
			}
			return v | uint64(c)<<shift, off + 1, true
		}
		if shift >= 64 {
			return 0, 0, false
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0, false
}

// putUvarint appends v to b as an unsigned varint.
func putUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// align8 rounds n up to the next multiple of 8.
func align8(n int) int { return (n + 7) &^ 7 }

// align4 rounds n up to the next multiple of 4.
func align4(n int) int { return (n + 3) &^ 3 }

// bitsetLen is the byte length of an n-entry bitset, 4-byte aligned.
func bitsetLen(n int) int { return align4((n + 7) / 8) }

// bitsetGet reads bit i of b.
func bitsetGet(b []byte, i int32) bool {
	return b[i>>3]&(1<<uint(i&7)) != 0
}

// bitsetSet sets bit i of b.
func bitsetSet(b []byte, i int) {
	b[i>>3] |= 1 << uint(i&7)
}
