package flat

import (
	"context"
	"slices"
	"sort"
	"sync"

	"xseq/internal/engine"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/sequence"
)

// This file is Algorithm 1 re-targeted at the mapped byte arrays: the same
// recursion, binary searches, and sibling-cover test as
// internal/index/search.go, with linkEntry field reads replaced by
// little-endian loads at computed offsets. The pooled-scratch discipline is
// identical — steady-state queries allocate nothing — with one addition:
// because the bulk sections are not checksummed at open, every offset the
// kernel follows into the ENDS streams and every anc hop is bounds-checked,
// and a violation aborts the query with a *index.CorruptError instead of
// panicking or silently mis-answering.

// Label accessors. Link extents were validated at open, so entry indexes in
// [0, n) are in-bounds by construction.

func (l *linkView) pre(k int32) int32 { return int32(le.Uint32(l.pres[4*k:])) }
func (l *linkView) max(k int32) int32 { return int32(le.Uint32(l.maxs[4*k:])) }

// ancAt reads the cover ancestor, -1 for cover-elided links.
func (l *linkView) ancAt(k int32) int32 {
	if l.anc == nil {
		return -1
	}
	return int32(le.Uint32(l.anc[4*k:]))
}

// embedsAt reads the embeds bit, false for cover-elided links.
func (l *linkView) embedsAt(k int32) bool {
	return l.embeds != nil && bitsetGet(l.embeds, k)
}

// touch charges the page(s) of the file range [off, off+n) when a pager is
// attached. The detached fast path is one atomic load.
func (ix *Index) touch(off uint64, n int) {
	if !ix.pagerOn.Load() {
		return
	}
	first := pager.PageID(off / pager.PageSize)
	last := pager.PageID((off + uint64(n) - 1) / pager.PageSize)
	ix.pagerMu.Lock()
	if ix.pool != nil {
		for p := first; p <= last; p++ {
			ix.pool.Touch(p)
		}
	}
	ix.pagerMu.Unlock()
}

// touchLinkSlot charges the page holding link slot k's pre label.
func (ix *Index) touchLinkSlot(l *linkView, k int32) {
	if ix.pagerOn.Load() {
		ix.touch(l.fileOff+uint64(4*k), 4)
	}
}

// insEntry records a matched entry that embeds identical siblings (or
// shadows an older recorded entry of the same path); see
// index/search.go.
type insEntry struct {
	path pathenc.PathID
	link int32
}

func insHasPath(ins []insEntry, p pathenc.PathID) bool {
	for k := len(ins) - 1; k >= 0; k-- {
		if ins[k].path == p {
			return true
		}
	}
	return false
}

// queryScratch is the reusable per-query working set, the flat twin of
// index's: the ins stack, the epoch-stamped doc-id dedup array, the
// terminal doc-id buffer, the result buffer, and the instantiation
// scratch. Everything is borrowed; resultSet.take copies the answer out
// before the scratch returns to the pool.
type queryScratch struct {
	ins    []insEntry
	stamp  []uint32
	epoch  uint32
	docBuf []int32
	ids    []int32
	inst   query.Scratch
	tstats engine.QueryStats // kernel counters for a context-borne trace
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func getScratch(maxID int32) *queryScratch {
	s := scratchPool.Get().(*queryScratch)
	if n := int(maxID) + 1; len(s.stamp) < n {
		s.stamp = make([]uint32, n)
		s.epoch = 0
	}
	s.epoch++
	if s.epoch == 0 {
		clear(s.stamp)
		s.epoch = 1
	}
	return s
}

func putScratch(s *queryScratch) { scratchPool.Put(s) }

// cancelCheckStride matches the heap kernel's context-poll cadence.
const cancelCheckStride = 256

// resultSet mirrors index's: epoch-stamped dedup, optional cap, context
// polling, and an error latch that also carries kernel corruption errors.
type resultSet struct {
	scr   *queryScratch
	ids   []int32
	limit int
	stats *engine.QueryStats

	ctx       context.Context
	err       error
	countdown int
}

func (r *resultSet) cancelled() bool {
	if r.err != nil {
		return true
	}
	if r.ctx == nil {
		return false
	}
	r.countdown--
	if r.countdown > 0 {
		return false
	}
	r.countdown = cancelCheckStride
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return true
	}
	return false
}

func (r *resultSet) full() bool {
	return r.err != nil || (r.limit > 0 && len(r.ids) >= r.limit)
}

func (r *resultSet) addAll(ids []int32) {
	stamp, epoch := r.scr.stamp, r.scr.epoch
	for _, id := range ids {
		if r.full() {
			return
		}
		if stamp[id] != epoch {
			stamp[id] = epoch
			r.ids = append(r.ids, id)
		}
	}
}

func (r *resultSet) take() []int32 {
	slices.Sort(r.ids)
	var out []int32
	if len(r.ids) > 0 {
		out = make([]int32, len(r.ids))
		copy(out, r.ids)
	}
	r.scr.ids = r.ids[:0]
	return out
}

// search runs one query sequence through the mapped links (Algorithm 1).
func (ix *Index) search(q sequence.Sequence, naive bool, res *resultSet) {
	if len(q) == 0 {
		return
	}
	stats := res.stats
	scr := res.scr
	ins := scr.ins[:0]
	var rec func(i int, lo, hi int32)
	rec = func(i int, lo, hi int32) {
		p := q[i]
		if int(p) < 0 || int(p) >= len(ix.linkViews) {
			return
		}
		l := &ix.linkViews[p]
		if l.n == 0 {
			return
		}
		start := ix.searchLink(l, lo, stats)
		for idx := start; idx < l.n && !res.full(); idx++ {
			pre := l.pre(idx)
			if pre > hi {
				break
			}
			if res.cancelled() {
				return
			}
			ix.touchLinkSlot(l, idx)
			if stats != nil {
				stats.EntriesScanned++
			}
			if !naive && ix.siblingCovered(p, pre, ins, stats, res) {
				if res.err != nil {
					return
				}
				continue
			}
			max := l.max(idx)
			if i == len(q)-1 {
				scr.docBuf = ix.collectDocs(pre, max, scr.docBuf[:0], res)
				if res.err != nil {
					return
				}
				res.addAll(scr.docBuf)
				continue
			}
			saved := len(ins)
			if !naive && (l.embedsAt(idx) || insHasPath(ins, p)) {
				ins = append(ins, insEntry{path: p, link: idx})
			}
			rec(i+1, pre+1, max)
			ins = ins[:saved]
		}
	}
	rec(0, 1, ix.meta.MaxSerial)
	scr.ins = ins[:0]
}

// searchLink binary searches l for the first entry with pre >= lo.
func (ix *Index) searchLink(l *linkView, lo int32, stats *engine.QueryStats) int32 {
	return int32(sort.Search(int(l.n), func(k int) bool {
		ix.touchLinkSlot(l, int32(k))
		if stats != nil {
			stats.LinkProbes++
		}
		return l.pre(int32(k)) >= lo
	}))
}

// siblingCovered is the flat port of the sibling-cover test (Theorem 3):
// for each recorded ins entry whose path strictly prefixes the candidate's,
// the innermost same-path strict ancestor of the candidate must be the
// recorded entry itself. A corrupt anc chain latches res.err.
func (ix *Index) siblingCovered(p pathenc.PathID, pre int32, ins []insEntry, stats *engine.QueryStats, res *resultSet) bool {
	for k := len(ins) - 1; k >= 0; k-- {
		x := ins[k]
		shadowed := false
		for j := k + 1; j < len(ins); j++ {
			if ins[j].path == x.path {
				shadowed = true
				break
			}
		}
		if shadowed {
			continue
		}
		if !ix.enc.IsStrictPrefix(x.path, p) {
			continue
		}
		if stats != nil {
			stats.CoverChecks++
		}
		anc, err := ix.innermostAncestor(x.path, pre, stats)
		if err != nil {
			res.err = err
			return true
		}
		if anc != x.link {
			if stats != nil {
				stats.CoverRejections++
			}
			return true
		}
	}
	return false
}

// innermostAncestor returns the index, within path px's link, of the
// innermost entry strictly containing serial pre, or -1. The anc chain is
// raw mapped data, so each hop must strictly decrease — a forged pointer
// (cycle or out-of-range) is corruption, not an infinite loop.
func (ix *Index) innermostAncestor(px pathenc.PathID, pre int32, stats *engine.QueryStats) (int32, error) {
	l := &ix.linkViews[px]
	idx := int32(sort.Search(int(l.n), func(k int) bool {
		ix.touchLinkSlot(l, int32(k))
		if stats != nil {
			stats.LinkProbes++
		}
		return l.pre(int32(k)) >= pre
	})) - 1
	for idx >= 0 {
		ix.touchLinkSlot(l, idx)
		if l.max(idx) >= pre {
			return idx, nil
		}
		next := l.ancAt(idx)
		if next >= idx {
			return 0, corrupt("link %d anc chain does not decrease (%d -> %d)", px, idx, next)
		}
		idx = next
	}
	return -1, nil
}

// collectDocs appends the doc ids of all end nodes with pre in [lo, hi],
// decoding the varint-delta blocks in place. Every offset and varint is
// bounds-checked; a violation latches a *CorruptError into res.err.
func (ix *Index) collectDocs(lo, hi int32, out []int32, res *resultSet) []int32 {
	ev := &ix.ends
	if ev.numBlocks == 0 {
		return out
	}
	// Find the first block that could hold pre >= lo: the one before the
	// first block with firstPre > lo (entries within a block ascend from
	// firstPre).
	b := sort.Search(ev.numBlocks, func(k int) bool {
		return int32(le.Uint32(ev.dir[k*endsBlockDirLen:])) > lo
	}) - 1
	if b < 0 {
		b = 0
	}
	payload := ev.payload
	for ; b < ev.numBlocks; b++ {
		row := ev.dir[b*endsBlockDirLen:]
		firstPre := int32(le.Uint32(row))
		if firstPre > hi {
			break
		}
		count := int(le.Uint32(row[4:]))
		entryPos := int(le.Uint64(row[8:]))
		idsPos := int(le.Uint64(row[16:]))
		if count < 0 || count > endsBlockSize || entryPos > len(payload) || idsPos > len(payload) {
			res.err = corrupt("ends block %d directory out of range", b)
			return out
		}
		ix.touch(ev.fileOff+uint64(b*endsBlockDirLen)+8, endsBlockDirLen)
		pre := firstPre
		for e := 0; e < count; e++ {
			delta, next, ok := uvarint(payload, entryPos)
			if !ok {
				res.err = corrupt("ends block %d entry %d: truncated pre delta", b, e)
				return out
			}
			idCount, next2, ok := uvarint(payload, next)
			if !ok {
				res.err = corrupt("ends block %d entry %d: truncated id count", b, e)
				return out
			}
			idsLen, next3, ok := uvarint(payload, next2)
			if !ok {
				res.err = corrupt("ends block %d entry %d: truncated ids length", b, e)
				return out
			}
			ix.touch(ev.fileOff+uint64(entryPos), next3-entryPos)
			entryPos = next3
			if delta > uint64(1)<<31 || idCount > uint64(1)<<31 || idsLen > uint64(len(payload)) {
				res.err = corrupt("ends block %d entry %d: implausible sizes", b, e)
				return out
			}
			pre += int32(delta)
			if idsPos+int(idsLen) > len(payload) {
				res.err = corrupt("ends block %d entry %d: ids run past section", b, e)
				return out
			}
			if pre > hi {
				return out
			}
			if pre < lo {
				idsPos += int(idsLen)
				continue
			}
			ix.touch(ev.fileOff+uint64(idsPos), int(idsLen))
			stop := idsPos + int(idsLen)
			id := int32(0)
			for k := uint64(0); k < idCount; k++ {
				u, next, ok := uvarint(payload, idsPos)
				if !ok || next > stop {
					res.err = corrupt("ends block %d entry %d: truncated doc id", b, e)
					return out
				}
				idsPos = next
				if k == 0 {
					id = unzigzag(u)
				} else {
					id += unzigzag(u)
				}
				if id < 0 || id > ix.meta.MaxDocID {
					res.err = corrupt("ends block %d entry %d: doc id %d outside [0, %d]", b, e, id, ix.meta.MaxDocID)
					return out
				}
				out = append(out, id)
			}
			if idsPos != stop {
				res.err = corrupt("ends block %d entry %d: ids length mismatch", b, e)
				return out
			}
		}
	}
	return out
}
