package flat

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"xseq/internal/datagen"
	"xseq/internal/engine"
	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// corpus generates the named test corpus.
func corpus(t testing.TB, name string, n int) []*xmltree.Document {
	t.Helper()
	var docs []*xmltree.Document
	var err error
	if name == "xmark" {
		_, docs, err = datagen.XMark(datagen.XMarkOptions{Seed: 11}, n)
	} else {
		var p datagen.SynthParams
		p, err = datagen.ParseSynthName(name)
		if err == nil {
			p.Seed = 11
			_, docs, err = datagen.Synth(p, n)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return docs
}

// buildMono builds the reference monolithic index.
func buildMono(t testing.TB, docs []*xmltree.Document, keep bool) *index.Index {
	t.Helper()
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		t.Fatal(err)
	}
	enc := pathenc.NewEncoder(0)
	ix, err := index.Build(docs, index.Options{
		Encoder:       enc,
		Strategy:      sequence.NewProbability(sch, enc),
		KeepDocuments: keep,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// flatten converts an index to an opened flat snapshot held in memory.
func flatten(t testing.TB, ix *index.Index, opts Options) (*Index, []byte) {
	t.Helper()
	ex, err := ix.Export()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ex); err != nil {
		t.Fatal(err)
	}
	f, err := OpenBytes(buf.Bytes(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return f, buf.Bytes()
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var testQueries = map[string][]string{
	"xmark": {
		datagen.XMarkQ1,
		datagen.XMarkQ2,
		datagen.XMarkQ3,
		"/site//person/name",
		"//item/location",
		"//date",
		"/site/*",
	},
	"L3F5A25I0P40": {
		"/e1",
		"/e1/e2",
		"//e3",
		"/e1/*",
		"//e2//*",
	},
}

// TestFlatEquivalence: the flat engine must answer every query mode
// exactly like the monolithic index it was converted from — plain,
// verified, stats-carrying, and limited.
func TestFlatEquivalence(t *testing.T) {
	for corpusName, queries := range testQueries {
		docs := corpus(t, corpusName, 250)
		mono := buildMono(t, docs, true)
		f, _ := flatten(t, mono, Options{VerifyChecksums: true})
		if f.NumDocuments() != mono.NumDocuments() {
			t.Fatalf("%s: NumDocuments %d, want %d", corpusName, f.NumDocuments(), mono.NumDocuments())
		}
		if f.NumNodes() != mono.NumNodes() {
			t.Fatalf("%s: NumNodes %d, want %d", corpusName, f.NumNodes(), mono.NumNodes())
		}
		if f.NumLinks() != mono.NumLinks() {
			t.Fatalf("%s: NumLinks %d, want %d", corpusName, f.NumLinks(), mono.NumLinks())
		}
		ctx := context.Background()
		for _, q := range queries {
			pat, err := query.Parse(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := mono.QueryWithContext(ctx, pat, engine.QueryOptions{})
			if err != nil {
				t.Fatalf("%s: mono %s: %v", corpusName, q, err)
			}
			got, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{})
			if err != nil {
				t.Fatalf("%s: flat %s: %v", corpusName, q, err)
			}
			if !equalIDs(got, want) {
				t.Fatalf("%s: %s: flat %v, mono %v", corpusName, q, got, want)
			}

			wantV, err := mono.QueryWithContext(ctx, pat, engine.QueryOptions{Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			gotV, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{Verify: true})
			if err != nil {
				t.Fatalf("%s: flat verified %s: %v", corpusName, q, err)
			}
			if !equalIDs(gotV, wantV) {
				t.Fatalf("%s: verified %s: flat %v, mono %v", corpusName, q, gotV, wantV)
			}

			var st engine.QueryStats
			gotE, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{Stats: &st})
			if err != nil {
				t.Fatalf("%s: flat explain %s: %v", corpusName, q, err)
			}
			if !equalIDs(gotE, want) || st.Results != len(want) {
				t.Fatalf("%s: explain %s: ids %v stats %+v, want %v", corpusName, q, gotE, st, want)
			}

			if len(want) > 1 {
				part, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{MaxResults: len(want) - 1})
				if err != nil {
					t.Fatal(err)
				}
				if len(part) != len(want)-1 {
					t.Fatalf("%s: limit %s: %d ids, want %d", corpusName, q, len(part), len(want)-1)
				}
				members := map[int32]bool{}
				for _, id := range want {
					members[id] = true
				}
				for _, id := range part {
					if !members[id] {
						t.Fatalf("%s: limit %s: id %d not in full result", corpusName, q, id)
					}
				}
			}
		}
	}
}

// TestFlatFileRoundtrip: WriteFile → OpenFile (mapped and unmapped) both
// answer like the source index, and Close is idempotent.
func TestFlatFileRoundtrip(t *testing.T) {
	docs := corpus(t, "xmark", 120)
	mono := buildMono(t, docs, false)
	ex, err := mono.Export()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.flat")
	if err := WriteFile(path, ex); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, noMmap := range []bool{false, true} {
		f, err := OpenFile(path, Options{NoMmap: noMmap})
		if err != nil {
			t.Fatalf("NoMmap=%v: %v", noMmap, err)
		}
		if !noMmap && mmapAvailable != f.Mmapped() {
			t.Fatalf("Mmapped() = %v, platform mmap %v", f.Mmapped(), mmapAvailable)
		}
		if noMmap && f.Mmapped() {
			t.Fatal("NoMmap snapshot claims to be mapped")
		}
		if f.MappedBytes() == 0 {
			t.Fatal("MappedBytes = 0")
		}
		for _, q := range []string{datagen.XMarkQ1, "//date", "/site/*"} {
			pat, _ := query.Parse(q)
			want, _ := mono.QueryWithContext(ctx, pat, engine.QueryOptions{})
			got, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(got, want) {
				t.Fatalf("NoMmap=%v %s: %v, want %v", noMmap, q, got, want)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestFlatSaveCopies: Save re-emits the identical byte stream, and the
// copy opens and answers.
func TestFlatSaveCopies(t *testing.T) {
	docs := corpus(t, "L3F5A25I0P40", 80)
	mono := buildMono(t, docs, false)
	f, blob := flatten(t, mono, Options{})
	var out bytes.Buffer
	if err := f.Save(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), blob) {
		t.Fatal("Save did not reproduce the snapshot bytes")
	}
	if _, err := OpenBytes(out.Bytes(), Options{VerifyChecksums: true}); err != nil {
		t.Fatal(err)
	}
}

// TestFlatPagerAccounting: with a pool attached, queries charge page
// touches; resident pages grow and stay within the snapshot's page count;
// detaching restores the untracked fast path.
func TestFlatPagerAccounting(t *testing.T) {
	docs := corpus(t, "xmark", 150)
	mono := buildMono(t, docs, false)
	f, _ := flatten(t, mono, Options{})
	total, err := f.AttachPager(pager.NewPool(int(f.TotalPages())))
	if err != nil {
		t.Fatal(err)
	}
	if total != f.TotalPages() || total == 0 {
		t.Fatalf("AttachPager pages = %d, TotalPages = %d", total, f.TotalPages())
	}
	ctx := context.Background()
	pat, _ := query.Parse("//item/location")
	if _, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	st := f.PagerStats()
	if st.Reads == 0 || st.Misses == 0 {
		t.Fatalf("no page touches recorded: %+v", st)
	}
	res := f.ResidentPages()
	if res == 0 || res > total {
		t.Fatalf("resident pages %d outside (0, %d]", res, total)
	}
	if !f.PagerAttached() {
		t.Fatal("PagerAttached = false while attached")
	}
	f.DetachPager()
	if f.PagerAttached() || f.ResidentPages() != 0 {
		t.Fatal("detach did not clear pager state")
	}
}

// TestFlatCorruptionDetected: every class of damage — truncation anywhere,
// bit flips in every region, forged section lengths — fails the
// full-verification open with *index.CorruptError and never panics.
func TestFlatCorruptionDetected(t *testing.T) {
	docs := corpus(t, "xmark", 60)
	mono := buildMono(t, docs, true)
	_, blob := flatten(t, mono, Options{})

	check := func(name string, data []byte) {
		t.Helper()
		_, err := OpenBytes(data, Options{VerifyChecksums: true})
		if err == nil {
			t.Fatalf("%s: full-verify open accepted damaged snapshot", name)
		}
		var ce *index.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %v, want *index.CorruptError", name, err)
		}
	}

	// Truncation at representative byte counts, including mid-header.
	for _, n := range []int{0, 7, 12, 40, len(blob) / 4, len(blob) / 2, len(blob) - 1} {
		check("truncate", blob[:n])
	}
	// One flipped bit in every region of the file.
	step := len(blob)/37 + 1
	for off := 0; off < len(blob); off += step {
		mut := bytes.Clone(blob)
		mut[off] ^= 0x10
		check("bitflip", mut)
	}
	// Forged section lengths: double every table entry's length in turn.
	count := int(le.Uint32(blob[12:]))
	for i := 0; i < count; i++ {
		mut := bytes.Clone(blob)
		row := headerFixedLen + i*sectionEntryLen
		le.PutUint64(mut[row+16:], le.Uint64(mut[row+16:])*2+8)
		check("forged-length", mut)
	}
}

// TestFlatLazyOpenQueriesNeverPanic: the O(1) open skips bulk checksums,
// so damage there may only surface at query time — as a *CorruptError or
// (for label-value damage the varint framing happens to absorb) a
// well-formed wrong-id set that full verification would have caught; what
// is never allowed is a panic.
func TestFlatLazyOpenQueriesNeverPanic(t *testing.T) {
	docs := corpus(t, "xmark", 60)
	mono := buildMono(t, docs, false)
	_, blob := flatten(t, mono, Options{})
	ctx := context.Background()
	pats := make([]*query.Pattern, 0, 3)
	for _, q := range []string{"//date", "/site/*", datagen.XMarkQ1} {
		p, err := query.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		pats = append(pats, p)
	}
	step := len(blob)/53 + 1
	for off := 0; off < len(blob); off += step {
		mut := bytes.Clone(blob)
		mut[off] ^= 0x40
		f, err := OpenBytes(mut, Options{})
		if err != nil {
			var ce *index.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("open at %d: error %v, want *index.CorruptError", off, err)
			}
			continue
		}
		for _, pat := range pats {
			if _, err := f.QueryWithContext(ctx, pat, engine.QueryOptions{}); err != nil {
				var ce *index.CorruptError
				if !errors.As(err, &ce) && ctx.Err() == nil {
					t.Fatalf("query after flip at %d: error %v, want *index.CorruptError", off, err)
				}
			}
		}
	}
}

// FuzzFlatLoad hammers OpenBytes + the query kernel with arbitrary bytes:
// whatever the damage, opening either fails with *index.CorruptError or
// yields an index whose queries run to completion without panicking.
func FuzzFlatLoad(f *testing.F) {
	docs := corpus(f, "L3F5A25I0P40", 30)
	mono := buildMono(f, docs, false)
	_, blob := flatten(f, mono, Options{})
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:headerFixedLen+4])
	f.Add([]byte("XSEQFLAT"))
	f.Add([]byte{})
	mut := bytes.Clone(blob)
	mut[len(mut)/3] ^= 0xff
	f.Add(mut)
	pat, err := query.Parse("//e2")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := OpenBytes(data, Options{})
		if err != nil {
			var ce *index.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("open error %v, want *index.CorruptError", err)
			}
			return
		}
		if _, err := ix.QueryWithContext(context.Background(), pat, engine.QueryOptions{}); err != nil {
			var ce *index.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("query error %v, want *index.CorruptError", err)
			}
		}
	})
}
