package flat

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"xseq/internal/engine"
	"xseq/internal/index"
	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/sequence"
	"xseq/internal/telemetry"
	"xseq/internal/xmltree"
)

var _ engine.Engine = (*Index)(nil)

// QueryWithContext answers a tree-pattern query over the mapped snapshot —
// the same instantiate → enumerate orders → Algorithm 1 pipeline as the
// heap engines, with identical results. The returned slice is freshly
// allocated (the engine ownership contract); all transient state lives in
// the pooled scratch.
func (ix *Index) QueryWithContext(ctx context.Context, pat *query.Pattern, qo engine.QueryOptions) ([]int32, error) {
	var docs []*xmltree.Document
	if qo.Verify {
		var err error
		docs, err = ix.loadDocs()
		if err != nil {
			return nil, err
		}
		if docs == nil {
			return nil, fmt.Errorf("flat: Verify requires a snapshot built with KeepDocuments")
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scr := getScratch(ix.meta.MaxDocID)
	defer putScratch(scr)
	// Context-borne traces observe the kernel counters through the pooled
	// scratch, exactly as the heap kernel does (see internal/index).
	if tr := telemetry.TraceFrom(ctx); tr != nil {
		if qo.Stats == nil {
			scr.tstats = engine.QueryStats{}
			qo.Stats = &scr.tstats
		}
		st := qo.Stats
		defer func() {
			tr.AddKernel(st.Instances, st.Orders, st.LinkProbes, st.EntriesScanned, st.CoverChecks, st.CoverRejections)
		}()
	}
	insts := pat.InstantiateScratch(ix.enc, ix.ci, ix.meta.InstantiationLimit, &scr.inst)
	res := resultSet{scr: scr, ids: scr.ids[:0], limit: qo.MaxResults, stats: qo.Stats, ctx: ctx}
	enumLimit := ix.meta.OrderEnumerationLimit
	if enumLimit <= 0 {
		enumLimit = index.DefaultOrderEnumerationLimit
	}
	if qo.Stats != nil {
		qo.Stats.Instances = len(insts)
	}
	for _, inst := range insts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.full() {
			break
		}
		orders := sequence.EnumerateInstanceOrders(inst.Paths, inst.Parent, ix.prio, enumLimit)
		if qo.Stats != nil {
			qo.Stats.Orders += len(orders)
		}
		for _, q := range orders {
			if res.full() {
				break
			}
			ix.search(q, qo.Naive, &res)
		}
	}
	if res.err != nil {
		return nil, res.err
	}
	out := res.take()
	if qo.Stats != nil {
		qo.Stats.Results = len(out)
	}
	if qo.Verify {
		byID := make(map[int32]*xmltree.Document, len(docs))
		for _, d := range docs {
			byID[d.ID] = d
		}
		var kept []int32
		for _, id := range out {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if d := byID[id]; d != nil && pat.MatchesTree(d.Root) {
				kept = append(kept, id)
			}
		}
		out = kept
	}
	return out, nil
}

// NumDocuments reports the corpus size.
func (ix *Index) NumDocuments() int { return ix.meta.NumDocs }

// NumNodes reports the trie node count of the source index.
func (ix *Index) NumNodes() int { return int(ix.meta.MaxSerial) }

// NumLinks reports the number of non-empty horizontal links.
func (ix *Index) NumLinks() int { return ix.numLinks }

// EstimatedDiskBytes applies the paper's 4n + 8N sizing formula. For a flat
// snapshot the real figure exists too — MappedBytes — but this method keeps
// the cross-engine metric comparable.
func (ix *Index) EstimatedDiskBytes() int64 {
	const c = 8
	return 4*int64(ix.meta.NumDocs) + c*int64(ix.meta.MaxSerial)
}

// Shards reports nil: a flat snapshot is a single partition.
func (ix *Index) Shards() []engine.ShardStat { return nil }

// Documents returns the retained corpus, decoded lazily on first call (nil
// when the snapshot was built without KeepDocuments, or if the DOCS
// section is undecodable — Verify queries surface that error instead).
func (ix *Index) Documents() []*xmltree.Document {
	docs, _ := ix.loadDocs()
	return docs
}

// Save writes the snapshot: the file is its own serialization, so this is
// a byte copy, not an encode.
func (ix *Index) Save(w io.Writer) error {
	if _, err := w.Write(ix.data); err != nil {
		return fmt.Errorf("flat: save: %w", err)
	}
	return nil
}

// SaveFile is Save to a file, crash-safely (temp + fsync + rename).
func (ix *Index) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("flat: save %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = ix.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("flat: save %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("flat: save %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("flat: save %s: rename: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Generation identifies the snapshot; flat snapshots are immutable.
func (ix *Index) Generation() uint64 { return 0 }

// Encoder exposes the designator/path table (conversion and tests).
func (ix *Index) Encoder() *pathenc.Encoder { return ix.enc }

// AttachPager starts page-level accounting: every kernel read charges the
// 4 KiB page(s) it touches, so pool.Stats reports the paper's disk-access
// metric over the real layout and pool.Len the resident page count. It
// returns the snapshot's total page count. Safe to call on a serving
// index; queries pay one mutex acquisition per touched range while
// attached.
func (ix *Index) AttachPager(pool *pager.Pool) (int64, error) {
	ix.pagerMu.Lock()
	ix.pool = pool
	ix.pagerMu.Unlock()
	ix.pagerOn.Store(pool != nil)
	return ix.TotalPages(), nil
}

// DetachPager stops page accounting.
func (ix *Index) DetachPager() {
	ix.pagerOn.Store(false)
	ix.pagerMu.Lock()
	ix.pool = nil
	ix.pagerMu.Unlock()
}

// PagerStats returns the attached pool's counters (zero when detached).
func (ix *Index) PagerStats() pager.Stats {
	ix.pagerMu.Lock()
	defer ix.pagerMu.Unlock()
	if ix.pool == nil {
		return pager.Stats{}
	}
	return ix.pool.Stats()
}

// ResetPagerStats zeroes the counters, keeping the pool warm.
func (ix *Index) ResetPagerStats() {
	ix.pagerMu.Lock()
	defer ix.pagerMu.Unlock()
	if ix.pool != nil {
		ix.pool.ResetStats()
	}
}

// DropPagerCache empties the pool (cold-cache measurements).
func (ix *Index) DropPagerCache() {
	ix.pagerMu.Lock()
	defer ix.pagerMu.Unlock()
	if ix.pool != nil {
		ix.pool.Drop()
	}
}

// PagerAttached reports whether page accounting is running.
func (ix *Index) PagerAttached() bool { return ix.pagerOn.Load() }

// ResidentPages reports how many distinct pages the attached pool holds
// (0 when detached).
func (ix *Index) ResidentPages() int64 {
	ix.pagerMu.Lock()
	defer ix.pagerMu.Unlock()
	if ix.pool == nil {
		return 0
	}
	return int64(ix.pool.Len())
}

// TotalPages is the snapshot's size in 4 KiB pages.
func (ix *Index) TotalPages() int64 {
	return (int64(len(ix.data)) + pager.PageSize - 1) / pager.PageSize
}
