//go:build unix

package flat

import (
	"fmt"
	"os"
	"syscall"
)

// mmapAvailable reports whether this platform maps snapshots instead of
// reading them.
const mmapAvailable = true

// mapFile maps f read-only, returning the mapped bytes and an unmap
// function. Queries then touch only the pages they visit; the OS pages the
// rest in and out on demand, which is what makes a corpus bigger than RAM
// serveable.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("flat: file size %d exceeds address space", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("flat: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
