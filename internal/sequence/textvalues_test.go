package sequence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

func TestTextEncodeChains(t *testing.T) {
	enc := pathenc.NewTextEncoder()
	tree := xmltree.NewElem("P", xmltree.NewElem("L", xmltree.NewValue("bos")))
	nodes := EncodeNodes(tree, enc)
	// P, L, then one node per character: b, o, s — 5 total.
	if len(nodes) != 5 {
		t.Fatalf("encoded %d nodes, want 5", len(nodes))
	}
	if got := enc.PathString(nodes[4].Path); got != "P.L.b.o.s" {
		t.Fatalf("leaf path = %q", got)
	}
	// The chain nests: each char is the child of the previous.
	if nodes[3].Parent != 2 || nodes[4].Parent != 3 {
		t.Fatalf("chain parents = %d %d", nodes[3].Parent, nodes[4].Parent)
	}
	// Empty values still fall back to one atomic designator.
	tree2 := xmltree.NewElem("P", xmltree.NewValue(""))
	nodes2 := EncodeNodes(tree2, enc)
	if len(nodes2) != 2 {
		t.Fatalf("empty value encoded %d nodes", len(nodes2))
	}
}

func TestTextIdenticalSiblingDetection(t *testing.T) {
	enc := pathenc.NewTextEncoder()
	// Two sibling values sharing a first character are identical siblings
	// at the chain head.
	tree := xmltree.NewElem("P", xmltree.NewValue("bat"), xmltree.NewValue("bus"))
	if !HasIdenticalSiblings(tree, enc) {
		t.Fatal("shared first characters should be identical siblings")
	}
	tree2 := xmltree.NewElem("P", xmltree.NewValue("bat"), xmltree.NewValue("cat"))
	if HasIdenticalSiblings(tree2, enc) {
		t.Fatal("distinct first characters are not identical siblings")
	}
}

func TestTextCanonicalize(t *testing.T) {
	enc := pathenc.NewTextEncoder()
	tree := xmltree.NewElem("P", xmltree.NewElem("L", xmltree.NewValue("bo")))
	canon := CanonicalizeValues(tree, enc)
	// L's child becomes a chain "b"("o").
	l := canon.Children[0]
	if len(l.Children) != 1 || l.Children[0].Value != "b" {
		t.Fatalf("canonical chain head = %v", canon)
	}
	if len(l.Children[0].Children) != 1 || l.Children[0].Children[0].Value != "o" {
		t.Fatalf("canonical chain tail = %v", canon)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	enc := pathenc.NewTextEncoder()
	strategies := []Strategy{
		DepthFirst{Enc: enc},
		NewRandom(enc, 5),
		NewProbability(schema.Figure12(), enc),
	}
	rng := rand.New(rand.NewSource(60))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		tree := randomTree(r, 4, 3)
		want := CanonicalizeValues(tree, enc)
		for _, g := range strategies {
			seq := g.Sequence(tree)
			back, err := Decode(enc, seq)
			if err != nil {
				t.Logf("%s: decode: %v for %v", g.Name(), err, tree)
				return false
			}
			if !xmltree.Isomorphic(back, want) {
				t.Logf("%s: round trip mismatch:\ntree %v\nback %v\nwant %v", g.Name(), tree, back, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
