package sequence

import (
	"container/heap"
	"fmt"

	"xseq/internal/xmltree"
)

// Prüfer codes (Section 2 and the PRIX baseline). A tree of n nodes labeled
// 0..n-1 is encoded by repeatedly deleting the leaf with the smallest label
// and appending its parent's label, until one node remains, giving a
// sequence of length n-1. PRIX numbers nodes in post-order and keeps, next
// to the numbered Prüfer sequence (NPS), the labels of the emitted parents
// (the labeled Prüfer sequence, LPS).

// intHeap is a min-heap of ints.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// PostorderNodes returns the nodes of the tree in post-order; PRIX numbers
// node i of this slice with label i.
func PostorderNodes(root *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		for _, c := range n.Children {
			walk(c)
		}
		out = append(out, n)
	}
	walk(root)
	return out
}

// PruferNumbered computes the Prüfer sequence of the tree under an explicit
// labeling: labels[i] is the label of the i-th pre-order node and must be a
// permutation of 0..n-1. It returns the sequence of parent labels of the
// deleted leaves (length n-1; empty for a single-node tree).
func PruferNumbered(root *xmltree.Node, labels map[*xmltree.Node]int) ([]int, error) {
	var nodes []*xmltree.Node
	parentOf := map[*xmltree.Node]*xmltree.Node{}
	root.Walk(func(n *xmltree.Node) bool {
		nodes = append(nodes, n)
		for _, c := range n.Children {
			parentOf[c] = n
		}
		return true
	})
	n := len(nodes)
	if len(labels) != n {
		return nil, fmt.Errorf("sequence: prufer: %d labels for %d nodes", len(labels), n)
	}
	byLabel := make([]*xmltree.Node, n)
	for nd, l := range labels {
		if l < 0 || l >= n || byLabel[l] != nil {
			return nil, fmt.Errorf("sequence: prufer: labels are not a permutation of 0..%d", n-1)
		}
		byLabel[l] = nd
	}
	degree := map[*xmltree.Node]int{}
	for _, nd := range nodes {
		degree[nd] = len(nd.Children)
	}
	h := &intHeap{}
	for _, nd := range nodes {
		if degree[nd] == 0 && nd != root {
			heap.Push(h, labels[nd])
		}
	}
	if n == 1 {
		return nil, nil
	}
	// Rooted variant, as in the paper: delete the smallest-labeled leaf and
	// append its parent's label until only the root remains (n-1 entries).
	var seq []int
	for h.Len() > 0 {
		l := heap.Pop(h).(int)
		leaf := byLabel[l]
		p := parentOf[leaf]
		seq = append(seq, labels[p])
		degree[p]--
		if degree[p] == 0 && p != root {
			heap.Push(h, labels[p])
		}
	}
	if len(seq) != n-1 {
		return nil, fmt.Errorf("sequence: prufer: emitted %d entries for %d nodes", len(seq), n)
	}
	return seq, nil
}

// PostorderLabels numbers nodes in post-order, the PRIX labeling.
func PostorderLabels(root *xmltree.Node) map[*xmltree.Node]int {
	labels := map[*xmltree.Node]int{}
	for i, n := range PostorderNodes(root) {
		labels[n] = i
	}
	return labels
}

// LabeledPrufer computes PRIX's LPS: the node labels (element names or value
// text) of the parents emitted by the Prüfer deletion under post-order
// numbering. The i-th LPS entry is the label of the i-th NPS entry's node.
func LabeledPrufer(root *xmltree.Node) ([]string, []int, error) {
	labels := PostorderLabels(root)
	nps, err := PruferNumbered(root, labels)
	if err != nil {
		return nil, nil, err
	}
	post := PostorderNodes(root)
	lps := make([]string, len(nps))
	for i, num := range nps {
		lps[i] = post[num].Label()
	}
	return lps, nps, nil
}

// PruferDecode reconstructs the parent array of a free tree from a Prüfer
// sequence over labels 0..n-1 (n = len(seq)+2 in the classic unrooted
// formulation). It returns parent[i] for each node, with the final node
// (label n-1) as the root. Used to sanity-check the encoding in tests.
func PruferDecode(seq []int, n int) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("sequence: prufer decode: n must be >= 2")
	}
	if len(seq) != n-2 {
		return nil, fmt.Errorf("sequence: prufer decode: sequence length %d, want n-2=%d", len(seq), n-2)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, x := range seq {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("sequence: prufer decode: label %d out of range", x)
		}
		degree[x]++
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	h := &intHeap{}
	for i := 0; i < n; i++ {
		if degree[i] == 1 {
			heap.Push(h, i)
		}
	}
	for _, x := range seq {
		leaf := heap.Pop(h).(int)
		parent[leaf] = x
		degree[x]--
		if degree[x] == 1 {
			heap.Push(h, x)
		}
	}
	// The two remaining nodes connect to each other; make the larger the
	// parent so label n-1 roots the tree.
	a := heap.Pop(h).(int)
	b := heap.Pop(h).(int)
	if a > b {
		a, b = b, a
	}
	parent[a] = b
	return parent, nil
}
