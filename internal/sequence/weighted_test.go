package sequence

import (
	"math"
	"testing"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

func TestCanonicalNameAliases(t *testing.T) {
	cases := map[string]string{
		"":               NameGBest,
		"gbest":          NameGBest,
		"g_best":         NameGBest,
		"constraint":     NameGBest,
		"GBest":          NameGBest,
		" weighted ":     NameWeighted,
		"weighted-gbest": NameWeighted,
		"depth-first":    NameDepthFirst,
		"dfs":            NameDepthFirst,
		"breadth-first":  NameBreadthFirst,
		"bfs":            NameBreadthFirst,
	}
	for in, want := range cases {
		got, err := CanonicalName(in)
		if err != nil {
			t.Errorf("CanonicalName(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"zorp", "best", "depth", "random!"} {
		if _, err := CanonicalName(bad); err == nil {
			t.Errorf("CanonicalName(%q): want error", bad)
		}
	}
}

func TestNewByName(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	s, err := NewByName("weighted", schema.Figure12(), enc, map[string]float64{"P/R": 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != NameWeighted {
		t.Fatalf("Name = %q, want %q", s.Name(), NameWeighted)
	}
	if _, ok := s.(Prioritizer); !ok {
		t.Fatal("weighted strategy must be a Prioritizer (query-side order compatibility)")
	}
	if s, err = NewByName("", schema.Figure12(), enc, nil, false); err != nil || s.Name() != "constraint" {
		t.Fatalf("default strategy = %v (%v), want constraint", s, err)
	}
	if _, err := NewByName("nope", schema.Figure12(), enc, nil, false); err == nil {
		t.Fatal("unknown strategy: want error")
	}
	// Positional baselines reject weights: silently dropping a tuning
	// vector would masquerade as a tuned build.
	if _, err := NewByName("depth-first", schema.Figure12(), enc, map[string]float64{"P": 2}, false); err == nil {
		t.Fatal("depth-first with weights: want error")
	}
	if s, err = NewByName("breadth-first", schema.Figure12(), enc, nil, false); err != nil || s.Name() != NameBreadthFirst {
		t.Fatalf("breadth-first = %v (%v)", s, err)
	}
}

// TestWeightedReordersSection52 reproduces the paper's Eq 6 effect on the
// Section 5.2 example: unweighted g_best emits U's subtree before L
// (p(U|root) > p(L|root) in Figure 12); boosting w(L) flips the order, so a
// frequently-queried L resolves earlier in every sequence.
func TestWeightedReordersSection52(t *testing.T) {
	pos := func(seq Sequence, enc *pathenc.Encoder, path string) int {
		for i, p := range names(enc, seq) {
			if p == path {
				return i
			}
		}
		t.Fatalf("path %s not in sequence %s", path, seq.String(enc))
		return -1
	}

	encA := pathenc.NewEncoder(0)
	base := NewProbability(schema.Figure12(), encA)
	seqA := base.Sequence(xmltree.Figure11a())
	if !(pos(seqA, encA, "P.R.U") < pos(seqA, encA, "P.R.L")) {
		t.Fatalf("unweighted: expected U before L: %s", seqA.String(encA))
	}

	encB := pathenc.NewEncoder(0)
	w, err := NewWeighted(schema.Figure12(), encB, map[string]float64{"P/R/L": 50}, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Applied() != 1 {
		t.Fatalf("Applied = %d, want 1", w.Applied())
	}
	seqB := w.Sequence(xmltree.Figure11a())
	if !(pos(seqB, encB, "P.R.L") < pos(seqB, encB, "P.R.U")) {
		t.Fatalf("weighted: expected L before U: %s", seqB.String(encB))
	}
	// Reordered, but still a valid constraint sequence for the same tree.
	if err := Validate(encB, seqB); err != nil {
		t.Fatalf("weighted sequence invalid: %v", err)
	}
	subtreeContiguous(t, encB, xmltree.Figure11a(), seqB)
}

func TestNewWeightedUnknownPath(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	if _, err := NewWeighted(schema.Figure12(), enc, map[string]float64{"P/nope": 2}, false); err == nil {
		t.Fatal("unknown weight path with skipUnknown=false: want error")
	}
	w, err := NewWeighted(schema.Figure12(), enc, map[string]float64{"P/nope": 2, "P/R": 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if w.Applied() != 1 {
		t.Fatalf("Applied = %d, want 1 (unknown skipped)", w.Applied())
	}
}

// FuzzWeights: an arbitrary weight vector — extreme magnitudes, zeros,
// negatives, NaN-adjacent exponents — may reorder the weighted sequence but
// must never break constraint-sequence validity: the output still validates
// under f2 and decodes back to the input tree. This is the structural half
// of the weights-change-order-never-answers guarantee (the query-level half
// lives in the root equivalence suite).
func FuzzWeights(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 255, 128, 7})
	f.Add([]byte{255, 255, 255, 255, 255})
	f.Add([]byte{1, 1, 1, 1, 1})
	f.Add([]byte{200, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		paths := []string{"P", "P/R", "P/R/U", "P/R/L", "P/R/U/M"}
		weights := make(map[string]float64, len(paths))
		for i, b := range raw {
			if i >= len(paths) {
				break
			}
			// Bytes span w in ~[1e-4, 1e4]; byte 0 maps to a negative
			// weight, exercising the EffectiveWeight default-1 clamp.
			if b == 0 {
				weights[paths[i]] = -1
			} else {
				weights[paths[i]] = math.Pow(10, (float64(b)-128)/32)
			}
		}
		enc := pathenc.NewEncoder(0)
		w, err := NewWeighted(schema.Figure12(), enc, weights, false)
		if err != nil {
			t.Fatalf("NewWeighted(%v): %v", weights, err)
		}
		for _, fixture := range []*xmltree.Node{
			xmltree.Figure11a(), xmltree.Figure11b(), xmltree.Figure1(),
		} {
			seq := w.Sequence(fixture)
			if len(seq) != fixture.Size() {
				t.Fatalf("weights %v: sequence length %d, tree size %d", weights, len(seq), fixture.Size())
			}
			if err := Validate(enc, seq); err != nil {
				t.Fatalf("weights %v: invalid constraint sequence: %v\nseq %s", weights, err, seq.String(enc))
			}
			back, err := Decode(enc, seq)
			if err != nil {
				t.Fatalf("weights %v: decode: %v", weights, err)
			}
			if !xmltree.Isomorphic(back, CanonicalizeValues(fixture, enc)) {
				t.Fatalf("weights %v: round trip broke tree\nseq %s", weights, seq.String(enc))
			}
		}
	})
}
