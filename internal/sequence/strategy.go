package sequence

import (
	"container/heap"
	"math/rand"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

// Strategy turns a tree into one constraint sequence. All strategies
// produced by this package generate sequences valid under constraint f2,
// emitting every ancestor before its descendants and emitting the whole
// subtree of a node with identical siblings contiguously before any of its
// identical siblings (the procedure of Section 2.4 / Algorithm 2).
type Strategy interface {
	// Name identifies the strategy ("depth-first", "constraint", ...).
	Name() string
	// Sequence produces a constraint sequence for the tree, interning any
	// new paths into the strategy's encoder.
	Sequence(root *xmltree.Node) Sequence
}

// priorityFn scores an encoded node; higher scores are emitted earlier,
// subject to the constraint. Ties break on (PathID, document order).
type priorityFn func(n *EncodedNode, idx int) float64

// candidate is a heap item.
type candidate struct {
	idx   int // index into the EncodedNode slice
	prio  float64
	path  pathenc.PathID
	order int // document pre-order position, the final tie-break
}

type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	if h[i].path != h[j].path {
		return h[i].path < h[j].path
	}
	return h[i].order < h[j].order
}
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// blockFn decides whether a node's subtree must be emitted contiguously.
// At minimum every node with identical siblings blocks (the f2 requirement
// of Section 2.4); strategies used for querying additionally block every
// node whose path is repeat-capable anywhere in the corpus, so that data
// and query sequences stay order-compatible (see RepeatAware).
type blockFn func(n *EncodedNode) bool

func instanceBlocks(n *EncodedNode) bool { return n.HasIdenticalSibling }

// sequenceWithPriority implements the generic constraint sequencer
// (Algorithm 2 generalized to an arbitrary priority). It repeatedly emits
// the highest-priority node whose parent has been emitted; when the emitted
// node blocks (it has identical siblings, or its path is repeat-capable),
// its entire subtree is emitted contiguously (recursively by the same
// priority) before the main loop resumes, which guarantees that none of its
// identical siblings starts before the subtree is complete — the f2
// sequencing procedure of Section 2.4.
func sequenceWithPriority(nodes []EncodedNode, prio priorityFn, blocks blockFn) Sequence {
	out := make(Sequence, 0, len(nodes))
	h := &candidateHeap{}

	push := func(idx int) {
		heap.Push(h, candidate{idx: idx, prio: prio(&nodes[idx], idx), path: nodes[idx].Path, order: idx})
	}

	// emitSubtree emits idx and its whole subtree contiguously, ordered by
	// priority within the subtree (its own nested identical siblings
	// handled by the same rule, which holds trivially since the entire
	// subtree is contiguous and inner subtrees are emitted by the same
	// recursive discipline through the local heap).
	var emitSubtree func(idx int)
	emitSubtree = func(idx int) {
		out = append(out, nodes[idx].Path)
		local := &candidateHeap{}
		for _, c := range nodes[idx].Children {
			heap.Push(local, candidate{idx: c, prio: prio(&nodes[c], c), path: nodes[c].Path, order: c})
		}
		for local.Len() > 0 {
			it := heap.Pop(local).(candidate)
			if blocks(&nodes[it.idx]) {
				emitSubtree(it.idx)
				continue
			}
			out = append(out, nodes[it.idx].Path)
			for _, c := range nodes[it.idx].Children {
				heap.Push(local, candidate{idx: c, prio: prio(&nodes[c], c), path: nodes[c].Path, order: c})
			}
		}
	}

	// Root is index 0 (EncodeNodes is pre-order).
	out = append(out, nodes[0].Path)
	for _, c := range nodes[0].Children {
		push(c)
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(candidate)
		if blocks(&nodes[it.idx]) {
			emitSubtree(it.idx)
			continue
		}
		out = append(out, nodes[it.idx].Path)
		for _, c := range nodes[it.idx].Children {
			push(c)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Depth-first
// ---------------------------------------------------------------------------

// DepthFirst is the ad hoc depth-first (pre-order) strategy used by ViST.
type DepthFirst struct {
	Enc *pathenc.Encoder
}

// Name implements Strategy.
func (DepthFirst) Name() string { return "depth-first" }

// Sequence implements Strategy.
func (s DepthFirst) Sequence(root *xmltree.Node) Sequence {
	return DepthFirstSequence(root, s.Enc)
}

// ---------------------------------------------------------------------------
// Breadth-first
// ---------------------------------------------------------------------------

// BreadthFirst emits shallower nodes first. Plain breadth-first order
// violates constraint f2 in the presence of identical siblings (a second
// identical sibling would start before the first one's subtree completes),
// so like every strategy here it falls back to contiguous subtree emission
// for identical-sibling nodes; with no identical siblings it is exact BFS.
type BreadthFirst struct {
	Enc *pathenc.Encoder
}

// Name implements Strategy.
func (BreadthFirst) Name() string { return "breadth-first" }

// Sequence implements Strategy.
func (s BreadthFirst) Sequence(root *xmltree.Node) Sequence {
	nodes := EncodeNodes(root, s.Enc)
	return sequenceWithPriority(nodes, func(n *EncodedNode, idx int) float64 {
		return -float64(s.Enc.Depth(n.Path))
	}, instanceBlocks)
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

// Random assigns each node an independent random priority, producing an
// arbitrary constraint sequence — the worst case for prefix sharing
// (Section 6.2's "random" curve). Deterministic per (Seed, call order).
type Random struct {
	Enc *pathenc.Encoder
	rng *rand.Rand
}

// NewRandom builds a Random strategy with its own deterministic stream.
func NewRandom(enc *pathenc.Encoder, seed int64) *Random {
	return &Random{Enc: enc, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (*Random) Name() string { return "random" }

// Sequence implements Strategy.
func (s *Random) Sequence(root *xmltree.Node) Sequence {
	nodes := EncodeNodes(root, s.Enc)
	prios := make([]float64, len(nodes))
	for i := range prios {
		prios[i] = s.rng.Float64()
	}
	return sequenceWithPriority(nodes, func(n *EncodedNode, idx int) float64 {
		return prios[idx]
	}, instanceBlocks)
}

// ---------------------------------------------------------------------------
// Probability-based constraint sequencing (g_best)
// ---------------------------------------------------------------------------

// RepeatAware is implemented by strategies that can be told which paths are
// repeat-capable across the corpus. Blocking those paths' subtrees on both
// the data and the query side keeps sequence orders compatible even when a
// query references a repeatable path through a single branch; without it, a
// low-priority node inside a data-side identical-sibling block would appear
// earlier in the data sequence than global priority predicts, dismissing
// valid matches. index.Build computes the set with RepeatPaths and installs
// it before sequencing.
type RepeatAware interface {
	SetRepeatPaths(repeat map[pathenc.PathID]bool)
}

// RepeatPaths scans a corpus and returns every path that occurs as
// identical siblings in at least one document.
func RepeatPaths(roots []*xmltree.Node, enc *pathenc.Encoder) map[pathenc.PathID]bool {
	out := map[pathenc.PathID]bool{}
	for _, r := range roots {
		for _, n := range EncodeNodes(r, enc) {
			if n.HasIdenticalSibling {
				out[n.Path] = true
			}
		}
	}
	return out
}

// Probability is g_best of Section 5: nodes are ordered by descending
// p'(C|root) = p(C|root) · w(C) from a schema model, maximizing prefix
// sharing across documents of the same schema and honoring tunable weights.
type Probability struct {
	Enc    *pathenc.Encoder
	Model  *schema.Model
	repeat map[pathenc.PathID]bool
	// PerInstanceBlocking reverts to the paper's literal Algorithm 2:
	// only nodes with identical siblings in the CURRENT document emit
	// contiguous blocks, ignoring the corpus repeat set. Sequences get
	// more ordering freedom (smaller indexes — the paper's Table 5
	// ratios), but on corpora where a path repeats in some documents and
	// not others, query order compatibility breaks and valid matches can
	// be dismissed. Kept for the ablation that quantifies the trade-off;
	// leave false for correct querying.
	PerInstanceBlocking bool
}

// NewProbability binds g_best to a schema and encoder.
func NewProbability(s *schema.Schema, enc *pathenc.Encoder) *Probability {
	return &Probability{Enc: enc, Model: schema.NewModel(s, enc)}
}

// Name implements Strategy.
func (*Probability) Name() string { return "constraint" }

// SetRepeatPaths implements RepeatAware.
func (s *Probability) SetRepeatPaths(repeat map[pathenc.PathID]bool) { s.repeat = repeat }

// RepeatPaths returns the installed repeat set (nil when none).
func (s *Probability) RepeatPaths() map[pathenc.PathID]bool { return s.repeat }

// Blocks reports whether a path's subtree is emitted contiguously.
func (s *Probability) Blocks(p pathenc.PathID) bool {
	return !s.PerInstanceBlocking && s.repeat[p]
}

// Sequence implements Strategy.
func (s *Probability) Sequence(root *xmltree.Node) Sequence {
	nodes := EncodeNodes(root, s.Enc)
	return sequenceWithPriority(nodes, func(n *EncodedNode, idx int) float64 {
		return s.Model.Priority(n.Path)
	}, func(n *EncodedNode) bool {
		return n.HasIdenticalSibling || s.Blocks(n.Path)
	})
}

// ---------------------------------------------------------------------------
// Enumeration for isomorphic queries (Section 3.2/3.3 false dismissals)
// ---------------------------------------------------------------------------

// EnumerateSequences generates the distinct sequences a strategy can assign
// to the tree under permutations of identical-path sibling groups,
// capped at limit. This realizes the paper's false-dismissal remedy:
// "regard each of its isomorphism structures as a different query, and
// union the results". Trees without identical siblings yield exactly one
// sequence. A limit <= 0 means no cap.
//
// Grouping is by sibling label, which coincides with grouping by path
// encoding: siblings share their parent path, so their paths are identical
// exactly when their labels are.
func EnumerateSequences(g Strategy, root *xmltree.Node, limit int) []Sequence {
	variants := enumerateSiblingOrders(root, limit)
	seen := map[string]bool{}
	var out []Sequence
	for _, v := range variants {
		s := g.Sequence(v)
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// enumerateSiblingOrders returns clones of root covering all orderings of
// identical-path sibling groups (other siblings keep their positions).
func enumerateSiblingOrders(root *xmltree.Node, limit int) []*xmltree.Node {
	hasGroup := false
	root.Walk(func(n *xmltree.Node) bool {
		count := map[string]int{}
		for _, c := range n.Children {
			count[childKey(c)]++
			if count[childKey(c)] > 1 {
				hasGroup = true
			}
		}
		return !hasGroup
	})
	if !hasGroup {
		return []*xmltree.Node{root.Clone()}
	}
	var permute func(orig *xmltree.Node) []*xmltree.Node
	permute = func(orig *xmltree.Node) []*xmltree.Node {
		// First enumerate variants of each child subtree.
		childVariants := make([][]*xmltree.Node, len(orig.Children))
		for i, c := range orig.Children {
			childVariants[i] = permute(c)
		}
		// Cartesian product of child variants (capped).
		combos := [][]*xmltree.Node{{}}
		for _, cvs := range childVariants {
			var next [][]*xmltree.Node
			for _, combo := range combos {
				for _, cv := range cvs {
					nc := append(append([]*xmltree.Node{}, combo...), cv)
					next = append(next, nc)
					if limit > 0 && len(next) >= limit {
						break
					}
				}
				if limit > 0 && len(next) >= limit {
					break
				}
			}
			combos = next
		}
		// For each combo, permute identical-key sibling groups.
		var results []*xmltree.Node
		for _, combo := range combos {
			for _, perm := range permuteIdenticalGroups(combo, limit) {
				n := &xmltree.Node{Name: orig.Name, Value: orig.Value, IsValue: orig.IsValue, Children: perm}
				results = append(results, n)
				if limit > 0 && len(results) >= limit {
					return results
				}
			}
		}
		return results
	}
	out := permute(root)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func childKey(c *xmltree.Node) string {
	if c.IsValue {
		return "v\x00" + c.Value
	}
	return "e\x00" + c.Name
}

// permuteIdenticalGroups returns orderings of children where members of each
// identical-key group take every permutation among that group's positions.
func permuteIdenticalGroups(children []*xmltree.Node, limit int) [][]*xmltree.Node {
	positions := map[string][]int{}
	for i, c := range children {
		k := childKey(c)
		positions[k] = append(positions[k], i)
	}
	results := [][]*xmltree.Node{append([]*xmltree.Node{}, children...)}
	for _, pos := range positions {
		if len(pos) < 2 {
			continue
		}
		var next [][]*xmltree.Node
		for _, base := range results {
			members := make([]*xmltree.Node, len(pos))
			for i, p := range pos {
				members[i] = base[p]
			}
			for _, perm := range permutations(members, limit) {
				v := append([]*xmltree.Node{}, base...)
				for i, p := range pos {
					v[p] = perm[i]
				}
				next = append(next, v)
				if limit > 0 && len(next) >= limit {
					break
				}
			}
			if limit > 0 && len(next) >= limit {
				break
			}
		}
		results = next
	}
	return results
}

func permutations(items []*xmltree.Node, limit int) [][]*xmltree.Node {
	var out [][]*xmltree.Node
	var rec func(cur, rest []*xmltree.Node)
	rec = func(cur, rest []*xmltree.Node) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if len(rest) == 0 {
			out = append(out, append([]*xmltree.Node{}, cur...))
			return
		}
		for i := range rest {
			nr := append(append([]*xmltree.Node{}, rest[:i]...), rest[i+1:]...)
			rec(append(cur, rest[i]), nr)
		}
	}
	rec(nil, items)
	return out
}
