package sequence

import (
	"fmt"

	"xseq/internal/pathenc"
	"xseq/internal/xmltree"
)

// ForwardPrefixPos returns the position of the forward prefix of element i
// in seq for the given prefix path t ⊂ seq[i] (Definition 2): among the
// positions k with seq[k] == t, prefer the closest one before i; when none
// appears before i, take the closest one after i. Returns -1 when t is not
// a strict prefix of seq[i] or is absent from the sequence (the sequence
// then violates Definition 1).
func ForwardPrefixPos(enc *pathenc.Encoder, seq Sequence, i int, t pathenc.PathID) int {
	if t == pathenc.InvalidPath || t == pathenc.EmptyPath || !enc.IsStrictPrefix(t, seq[i]) {
		return -1
	}
	for k := i - 1; k >= 0; k-- {
		if seq[k] == t {
			return k
		}
	}
	for k := i + 1; k < len(seq); k++ {
		if seq[k] == t {
			return k
		}
	}
	return -1
}

// ParentForwardPrefixPos is ForwardPrefixPos for the parent path of seq[i]
// — the resolution Decode uses to attach nodes.
func ParentForwardPrefixPos(enc *pathenc.Encoder, seq Sequence, i int) int {
	return ForwardPrefixPos(enc, seq, i, enc.Parent(seq[i]))
}

// IsForwardPrefix reports f2(seq[k], seq[i]) — whether position k holds a
// forward prefix of position i (Eq 3).
func IsForwardPrefix(enc *pathenc.Encoder, seq Sequence, k, i int) bool {
	return ForwardPrefixPos(enc, seq, i, seq[k]) == k
}

// Decode reconstructs the unique tree a constraint sequence represents
// (Theorem 1), resolving each element's parent occurrence by the
// forward-prefix rule. Value designators decode to value leaves named after
// the designator (hashing is lossy). Decode errors when the sequence is not
// a valid constraint sequence: no unique root, a missing ancestor, or a
// parent resolution cycle.
func Decode(enc *pathenc.Encoder, seq Sequence) (*xmltree.Node, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("sequence: decode: empty sequence")
	}
	nodes := make([]*xmltree.Node, len(seq))
	for i, p := range seq {
		if p <= pathenc.EmptyPath {
			return nil, fmt.Errorf("sequence: decode: invalid path at %d", i)
		}
		sym := enc.LastSymbol(p)
		if enc.SymbolKind(sym) == pathenc.KindElement {
			nodes[i] = xmltree.NewElem(enc.SymbolName(sym))
		} else {
			nodes[i] = xmltree.NewValue(enc.SymbolName(sym))
		}
	}
	rootIdx := -1
	parentOf := make([]int, len(seq))
	for i, p := range seq {
		if enc.Depth(p) == 1 {
			if rootIdx >= 0 {
				return nil, fmt.Errorf("sequence: decode: multiple root elements (positions %d and %d)", rootIdx, i)
			}
			rootIdx = i
			parentOf[i] = -1
			continue
		}
		k := ParentForwardPrefixPos(enc, seq, i)
		if k < 0 {
			return nil, fmt.Errorf("sequence: decode: element %d (%s) has no parent occurrence",
				i, enc.PathString(p))
		}
		parentOf[i] = k
	}
	if rootIdx < 0 {
		return nil, fmt.Errorf("sequence: decode: no root element")
	}
	// Attach children. Cycles are impossible only if parent resolution is
	// acyclic; verify by depth bookkeeping (parent's path depth is exactly
	// one less by construction, but parent resolution could chain through
	// positions arbitrarily — path depth strictly decreases along the
	// parent chain, so it is acyclic).
	for i, k := range parentOf {
		if k < 0 {
			continue
		}
		nodes[k].Children = append(nodes[k].Children, nodes[i])
	}
	return nodes[rootIdx], nil
}

// Validate checks that seq is a valid constraint sequence under f2 as used
// by this library: decodable to a unique tree whose re-encoding yields the
// same path multiset.
func Validate(enc *pathenc.Encoder, seq Sequence) error {
	tree, err := Decode(enc, seq)
	if err != nil {
		return err
	}
	// Multiset of paths must survive the round trip. Note decoded value
	// leaves are canonicalized designator names; re-encoding hashes those
	// names again, so compare against the canonical re-encoding of the
	// decoded tree instead of raw paths: structural check only.
	n := 0
	tree.Walk(func(*xmltree.Node) bool { n++; return true })
	if n != len(seq) {
		return fmt.Errorf("sequence: validate: decoded tree has %d nodes, sequence has %d", n, len(seq))
	}
	return nil
}

// DepthFirstSequence is a convenience: the depth-first (pre-order)
// constraint sequence of a tree, the ViST-style ordering used as the
// baseline strategy throughout the paper.
func DepthFirstSequence(root *xmltree.Node, enc *pathenc.Encoder) Sequence {
	nodes := EncodeNodes(root, enc)
	out := make(Sequence, len(nodes))
	for i := range nodes {
		out[i] = nodes[i].Path // EncodeNodes walks pre-order
	}
	return out
}
