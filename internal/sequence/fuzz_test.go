package sequence

import (
	"testing"

	"xseq/internal/pathenc"
)

// FuzzDecode feeds arbitrary byte strings interpreted as sequences of
// (small) path ids into the decoder: it must never panic, and whenever it
// succeeds, re-sequencing the decoded tree depth-first must decode again to
// an isomorphic tree (idempotent fixpoint).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{1})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{1, 2, 2, 3})
	f.Add([]byte{3, 2, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Shared fixture paths: a small family with identical-path
		// opportunities.
		enc := pathenc.NewEncoder(0)
		P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
		A := enc.Extend(P, enc.ElementSymbol("A"))
		B := enc.Extend(P, enc.ElementSymbol("B"))
		AA := enc.Extend(A, enc.ElementSymbol("A"))
		AB := enc.Extend(A, enc.ElementSymbol("B"))
		pool := []pathenc.PathID{P, A, B, AA, AB}

		seq := make(Sequence, 0, len(raw))
		for _, b := range raw {
			seq = append(seq, pool[int(b)%len(pool)])
		}
		tree, err := Decode(enc, seq)
		if err != nil {
			return
		}
		// A decodable sequence's tree must re-encode to a sequence of the
		// same length and decode again successfully.
		df := DepthFirst{Enc: enc}
		seq2 := df.Sequence(tree)
		if len(seq2) != len(seq) {
			t.Fatalf("re-encoded length %d != %d", len(seq2), len(seq))
		}
		if _, err := Decode(enc, seq2); err != nil {
			t.Fatalf("re-encoded sequence does not decode: %v", err)
		}
	})
}
