package sequence

import (
	"xseq/internal/pathenc"
)

// This file orders *query instances* — trees of path-encoded nodes that are
// not backed by an xmltree (wildcards already instantiated, descendant steps
// collapsed) — under the same f2 sequencing discipline used for documents:
// highest priority first among nodes whose parent is emitted, and the whole
// subtree of a node with identical-path siblings emitted contiguously before
// any of its identical siblings. Data and query sequenced by the same
// priority are order-compatible, which is what lets Algorithm 1 match them
// by one linear pass.

// Prioritizer scores interned paths; higher scores sequence earlier. The
// probability strategy's model implements it (p'(C|root)).
type Prioritizer interface {
	Priority(p pathenc.PathID) float64
}

// Blocker reports paths whose subtrees the data-side sequencer emits as
// contiguous blocks (repeat-capable paths). A Prioritizer that also
// implements Blocker gets the same blocking applied to query instances,
// keeping query order compatible with data order.
type Blocker interface {
	Blocks(p pathenc.PathID) bool
}

func blockerOf(prio Prioritizer) Blocker {
	if b, ok := prio.(Blocker); ok {
		return b
	}
	return nil
}

// Priority implements Prioritizer for the g_best strategy.
func (s *Probability) Priority(p pathenc.PathID) float64 {
	return s.Model.Priority(p)
}

// instNode mirrors EncodedNode for instance trees.
type instNode struct {
	path      pathenc.PathID
	children  []int
	identical bool
	rank      int // permutation rank within the node's identical group
}

func buildInstNodes(paths []pathenc.PathID, parents []int) []instNode {
	nodes := make([]instNode, len(paths))
	for i := range paths {
		nodes[i].path = paths[i]
	}
	for i, par := range parents {
		if par >= 0 {
			nodes[par].children = append(nodes[par].children, i)
		}
	}
	// Mark identical-path sibling groups with a pairwise scan — sibling
	// lists are query-sized, so the quadratic scan beats allocating a
	// counting map per node (this runs on every query sequence).
	for i := range nodes {
		ch := nodes[i].children
		for a := 0; a < len(ch); a++ {
			if nodes[ch[a]].identical {
				continue // already matched an earlier sibling
			}
			for b := a + 1; b < len(ch); b++ {
				if nodes[ch[a]].path == nodes[ch[b]].path {
					nodes[ch[a]].identical = true
					nodes[ch[b]].identical = true
				}
			}
		}
	}
	return nodes
}

// orderInst sequences the instance by priority under the f2 discipline.
// Ties break on (path, rank, index). Roots (parent -1) may be multiple in
// principle; instances have exactly one.
func orderInst(nodes []instNode, parents []int, prio Prioritizer) Sequence {
	out := make(Sequence, 0, len(nodes))
	blocker := blockerOf(prio)
	blocks := func(idx int) bool {
		return nodes[idx].identical || (blocker != nil && blocker.Blocks(nodes[idx].path))
	}
	better := func(a, b int) bool {
		pa, pb := prio.Priority(nodes[a].path), prio.Priority(nodes[b].path)
		if pa != pb {
			return pa > pb
		}
		if nodes[a].path != nodes[b].path {
			return nodes[a].path < nodes[b].path
		}
		if nodes[a].rank != nodes[b].rank {
			return nodes[a].rank < nodes[b].rank
		}
		return a < b
	}
	// Simple selection loop: instances are small (query-sized), so an
	// O(n^2) candidate scan is cheaper than a heap.
	var emitSubtree func(idx int)
	var candidates []int
	emitSubtree = func(idx int) {
		out = append(out, nodes[idx].path)
		local := append([]int(nil), nodes[idx].children...)
		for len(local) > 0 {
			best := 0
			for k := 1; k < len(local); k++ {
				if better(local[k], local[best]) {
					best = k
				}
			}
			c := local[best]
			local = append(local[:best], local[best+1:]...)
			if blocks(c) {
				emitSubtree(c)
			} else {
				out = append(out, nodes[c].path)
				local = append(local, nodes[c].children...)
			}
		}
	}
	for i, par := range parents {
		if par < 0 {
			candidates = append(candidates, i)
		}
	}
	for len(candidates) > 0 {
		best := 0
		for k := 1; k < len(candidates); k++ {
			if better(candidates[k], candidates[best]) {
				best = k
			}
		}
		c := candidates[best]
		candidates = append(candidates[:best], candidates[best+1:]...)
		if blocks(c) {
			emitSubtree(c)
		} else {
			out = append(out, nodes[c].path)
			candidates = append(candidates, nodes[c].children...)
		}
	}
	return out
}

// OrderInstance sequences a query instance (paths/parents arrays, parent -1
// for the root) by the given priority under constraint f2.
func OrderInstance(paths []pathenc.PathID, parents []int, prio Prioritizer) Sequence {
	nodes := buildInstNodes(paths, parents)
	return orderInst(nodes, parents, prio)
}

// EnumerateInstanceOrders returns the distinct sequences obtainable by
// permuting the members of every identical-path sibling group of the
// instance — the query-side false-dismissal remedy. Capped at limit
// sequences (<= 0: no cap). Instances without identical groups yield one
// sequence.
func EnumerateInstanceOrders(paths []pathenc.PathID, parents []int, prio Prioritizer, limit int) []Sequence {
	nodes := buildInstNodes(paths, parents)
	// Collect identical groups: (parent, path) -> member indices.
	type groupKey struct {
		parent int
		path   pathenc.PathID
	}
	groups := map[groupKey][]int{}
	for i, par := range parents {
		if nodes[i].identical {
			groups[groupKey{par, paths[i]}] = append(groups[groupKey{par, paths[i]}], i)
		}
	}
	if len(groups) == 0 {
		return []Sequence{orderInst(nodes, parents, prio)}
	}
	// Enumerate rank assignments per group (cartesian product of
	// permutations), capped.
	var groupMembers [][]int
	for _, m := range groups {
		groupMembers = append(groupMembers, m)
	}
	var out []Sequence
	seen := map[string]bool{}
	var assign func(g int)
	assign = func(g int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		if g == len(groupMembers) {
			s := orderInst(nodes, parents, prio)
			k := s.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, s)
			}
			return
		}
		members := groupMembers[g]
		perm := make([]int, len(members))
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int)
		rec = func(k int) {
			if limit > 0 && len(out) >= limit {
				return
			}
			if k == len(perm) {
				for i, m := range members {
					nodes[m].rank = perm[i]
				}
				assign(g + 1)
				return
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
	}
	assign(0)
	return out
}
