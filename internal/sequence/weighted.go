package sequence

// The weighted g_best variant (Section 5, Eq 6) and the strategy name
// registry the CLIs and the adaptive resequencer build from.
//
// Weighted IS Probability — the priority machinery already multiplies each
// node's root-conditional probability by the schema node's EffectiveWeight
// (p'(C|root) = p(C|root)·w(C)), so the weighted variant's whole job is to
// install the weight vector into the schema BEFORE the Model is built
// (Models memoize priorities) and to answer to a distinct name. Because the
// weights live in the schema, they survive snapshot persistence: a reloaded
// index reconstructs its prioritizer from the persisted schema and computes
// the same weighted priorities, keeping the data and query sequencing
// order-compatible across Save/Load.

import (
	"fmt"
	"strings"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
)

// Canonical strategy names. The empty string is accepted everywhere as an
// alias for NameGBest, the paper's default.
const (
	NameGBest        = "gbest"
	NameWeighted     = "weighted"
	NameDepthFirst   = "depth-first"
	NameBreadthFirst = "breadth-first"
)

// Names lists the canonical strategy names in presentation order.
func Names() []string {
	return []string{NameGBest, NameWeighted, NameDepthFirst, NameBreadthFirst}
}

// CanonicalName resolves a user-facing strategy name — accepting the
// aliases that have accumulated in docs and flags — to its canonical form,
// or errors for unknown names (CLIs turn that into usage exit code 2).
func CanonicalName(name string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", NameGBest, "g_best", "g-best", "constraint":
		return NameGBest, nil
	case NameWeighted, "weighted-gbest":
		return NameWeighted, nil
	case NameDepthFirst, "depthfirst", "dfs":
		return NameDepthFirst, nil
	case NameBreadthFirst, "breadthfirst", "bfs":
		return NameBreadthFirst, nil
	default:
		return "", fmt.Errorf("sequence: unknown strategy %q (want one of %s)", name, strings.Join(Names(), ", "))
	}
}

// Weighted is g_best with an explicit query-frequency weight vector applied:
// priorities are p(C|root)·w(C) with w(C) taken from the installed weights
// rather than the schema's defaults. It inherits all of Probability's
// behaviour (repeat-aware blocking, Prioritizer for the query side).
type Weighted struct {
	Probability
	applied int // weight paths that resolved to a schema node
}

// Name implements Strategy.
func (*Weighted) Name() string { return NameWeighted }

// Applied reports how many weight paths resolved to schema nodes.
func (s *Weighted) Applied() int { return s.applied }

// NewWeighted installs weights (slash-separated root-anchored element name
// paths -> w(C)) into sch and builds the weighted strategy over it. The
// install happens before the Model exists because Models memoize priorities.
// Unknown paths are skipped when skipUnknown is set — online-derived weight
// vectors legitimately mention paths a corpus partition lacks — and error
// otherwise.
func NewWeighted(sch *schema.Schema, enc *pathenc.Encoder, weights map[string]float64, skipUnknown bool) (*Weighted, error) {
	applied, err := ApplyWeights(sch, weights, skipUnknown)
	if err != nil {
		return nil, err
	}
	return &Weighted{
		Probability: Probability{Enc: enc, Model: schema.NewModel(sch, enc)},
		applied:     applied,
	}, nil
}

// AsProbability unwraps a strategy to its probability core when it has
// one: Probability itself, or Weighted — whose weights live in the schema,
// so persistence reconstructs identical priorities on load. Strategies
// without a probability core (the positional baselines) report false.
func AsProbability(s Strategy) (*Probability, bool) {
	switch v := s.(type) {
	case *Probability:
		return v, true
	case *Weighted:
		return &v.Probability, true
	}
	return nil, false
}

// ApplyWeights writes a weight vector into the schema, returning how many
// paths resolved. Must run before schema.NewModel for the weights to take
// effect in that model.
func ApplyWeights(sch *schema.Schema, weights map[string]float64, skipUnknown bool) (int, error) {
	applied := 0
	for path, w := range weights {
		names := strings.Split(strings.Trim(path, "/"), "/")
		if err := sch.SetWeightByNamePath(names, w); err != nil {
			if skipUnknown {
				continue
			}
			return applied, fmt.Errorf("weight %q: %w", path, err)
		}
		applied++
	}
	return applied, nil
}

// NewByName builds the named strategy over an inferred schema and encoder.
// The gbest and weighted strategies apply the weight vector (weighted always
// skips unknown paths — its vectors are derived from live traffic, not
// hand-written); the positional baselines (depth-first, breadth-first)
// ignore probabilities entirely and reject weights so a misconfiguration
// fails loudly instead of silently dropping the vector.
func NewByName(name string, sch *schema.Schema, enc *pathenc.Encoder, weights map[string]float64, skipUnknown bool) (Strategy, error) {
	canon, err := CanonicalName(name)
	if err != nil {
		return nil, err
	}
	switch canon {
	case NameGBest:
		if _, err := ApplyWeights(sch, weights, skipUnknown); err != nil {
			return nil, err
		}
		return NewProbability(sch, enc), nil
	case NameWeighted:
		return NewWeighted(sch, enc, weights, true)
	case NameDepthFirst:
		if len(weights) > 0 {
			return nil, fmt.Errorf("sequence: strategy %q is positional and does not use weights", canon)
		}
		return DepthFirst{Enc: enc}, nil
	default: // NameBreadthFirst
		if len(weights) > 0 {
			return nil, fmt.Errorf("sequence: strategy %q is positional and does not use weights", canon)
		}
		return BreadthFirst{Enc: enc}, nil
	}
}
