// Package sequence implements the heart of the paper: constraint sequences
// (Section 2), the sequencing strategies they admit (Sections 2.4 and 5),
// and Prüfer codes (the PRIX-style alternative encoding).
//
// A sequence is a list of path-encoded nodes ([]pathenc.PathID). Constraint
// f1 (Eq 2, plain prefix) suffices when a tree has no identical sibling
// nodes; constraint f2 (Eq 3, the forward-prefix rule of Definition 2)
// restores a unique tree for any sequence even with identical siblings
// (Theorem 1). Within a constraint, a user strategy g orders the nodes —
// depth-first, breadth-first, random, or the performance-oriented
// probability strategy g_best of Section 5.
package sequence

import (
	"fmt"
	"strings"

	"xseq/internal/pathenc"
	"xseq/internal/xmltree"
)

// Sequence is a constraint sequence of path-encoded nodes.
type Sequence []pathenc.PathID

// String renders the sequence in the paper's angle-bracket notation.
func (s Sequence) String(enc *pathenc.Encoder) string {
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = enc.PathString(p)
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Equal reports element-wise equality.
func Equal(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Key returns a comparable string key (for dedup in enumeration).
func (s Sequence) Key() string {
	var b strings.Builder
	for _, p := range s {
		fmt.Fprintf(&b, "%d,", p)
	}
	return b.String()
}

// IsSubsequence reports whether q is a (non-contiguous) subsequence of d —
// the naive subsequence match of Section 3.1, which admits false alarms.
func IsSubsequence(q, d Sequence) bool {
	i := 0
	for _, x := range d {
		if i < len(q) && q[i] == x {
			i++
		}
	}
	return i == len(q)
}

// ---------------------------------------------------------------------------
// Path encoding of whole trees
// ---------------------------------------------------------------------------

// EncodedNode is one tree node with its interned path and the structural
// facts sequencing needs.
type EncodedNode struct {
	Path pathenc.PathID
	Node *xmltree.Node
	// Parent is the index of the parent EncodedNode (-1 for the root).
	Parent int
	// Children are indices of the children, in document order.
	Children []int
	// HasIdenticalSibling reports whether another sibling shares this
	// node's path encoding — the condition that forces constraint f2.
	HasIdenticalSibling bool
}

// EncodeNodes path-encodes the tree in pre-order. Element and attribute
// nodes extend the parent path by their element designator; value leaves by
// their atomic value designator — or, for a text-values encoder (the second
// representation of Section 2.1), by a chain of character designators, one
// encoded node per character, enabling prefix matching inside values.
func EncodeNodes(root *xmltree.Node, enc *pathenc.Encoder) []EncodedNode {
	var out []EncodedNode
	var walk func(n *xmltree.Node, parentIdx int, parentPath pathenc.PathID)
	walk = func(n *xmltree.Node, parentIdx int, parentPath pathenc.PathID) {
		attach := func(idx int) {
			if out[idx].Parent >= 0 {
				par := out[idx].Parent
				out[par].Children = append(out[par].Children, idx)
			}
		}
		if n.IsValue && enc.TextValues() && len(n.Value) > 0 {
			p := parentPath
			parIdx := parentIdx
			for _, sym := range enc.CharSymbols(n.Value) {
				p = enc.Extend(p, sym)
				idx := len(out)
				out = append(out, EncodedNode{Path: p, Node: n, Parent: parIdx})
				attach(idx)
				parIdx = idx
			}
			return // value leaves have no children
		}
		var sym pathenc.Symbol
		if n.IsValue {
			sym = enc.ValueSymbol(n.Value)
		} else {
			sym = enc.ElementSymbol(n.Name)
		}
		p := enc.Extend(parentPath, sym)
		idx := len(out)
		out = append(out, EncodedNode{Path: p, Node: n, Parent: parentIdx})
		attach(idx)
		for _, c := range n.Children {
			walk(c, idx, p)
		}
	}
	walk(root, -1, pathenc.EmptyPath)

	// Mark identical siblings: children of one parent sharing a path.
	for i := range out {
		kids := out[i].Children
		seen := map[pathenc.PathID]int{}
		for _, k := range kids {
			seen[out[k].Path]++
		}
		for _, k := range kids {
			if seen[out[k].Path] > 1 {
				out[k].HasIdenticalSibling = true
			}
		}
	}
	return out
}

// HasIdenticalSiblings reports whether the tree contains any identical
// sibling nodes — i.e. whether constraint f1 (set representation) is
// insufficient and f2 must be used.
func HasIdenticalSiblings(root *xmltree.Node, enc *pathenc.Encoder) bool {
	nodes := EncodeNodes(root, enc)
	for i := range nodes {
		if nodes[i].HasIdenticalSibling {
			return true
		}
	}
	return false
}

// PathMultiset returns the multiset of path-encoded nodes (the "set
// representation" of Section 2.2 that is ambiguous exactly when identical
// siblings exist).
func PathMultiset(root *xmltree.Node, enc *pathenc.Encoder) map[pathenc.PathID]int {
	m := map[pathenc.PathID]int{}
	for _, n := range EncodeNodes(root, enc) {
		m[n.Path]++
	}
	return m
}

// CanonicalizeValues rebuilds the tree in the encoder's value
// representation: with atomic values, each value leaf's text becomes the
// name of its designator ("boston" -> "v417"; hashing is lossy, so round
// trips are compared on canonicalized trees); with text values, each
// non-empty value leaf becomes a chain of one-character value nodes, the
// shape Decode produces for character designators.
func CanonicalizeValues(root *xmltree.Node, enc *pathenc.Encoder) *xmltree.Node {
	var rebuild func(n *xmltree.Node) *xmltree.Node
	rebuild = func(n *xmltree.Node) *xmltree.Node {
		if n.IsValue {
			if enc.TextValues() && len(n.Value) > 0 {
				var head, tail *xmltree.Node
				for _, sym := range enc.CharSymbols(n.Value) {
					c := xmltree.NewValue(enc.SymbolName(sym))
					if head == nil {
						head = c
					} else {
						tail.Children = append(tail.Children, c)
					}
					tail = c
				}
				return head
			}
			return xmltree.NewValue(enc.SymbolName(enc.ValueSymbol(n.Value)))
		}
		cp := xmltree.NewElem(n.Name)
		for _, c := range n.Children {
			cp.Children = append(cp.Children, rebuild(c))
		}
		return cp
	}
	return rebuild(root)
}
