package sequence

import (
	"testing"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

// instFixture interns a small path family and returns the encoder, the
// strategy (as Prioritizer), and the paths.
func instFixture(t *testing.T) (*pathenc.Encoder, *Probability, map[string]pathenc.PathID) {
	t.Helper()
	enc := pathenc.NewEncoder(0)
	s := NewProbability(schema.Figure12(), enc)
	m := map[string]pathenc.PathID{}
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	m["P"] = P
	m["PR"] = enc.Extend(P, enc.ElementSymbol("R"))
	m["PRU"] = enc.Extend(m["PR"], enc.ElementSymbol("U"))
	m["PRL"] = enc.Extend(m["PR"], enc.ElementSymbol("L"))
	m["PRUM"] = enc.Extend(m["PRU"], enc.ElementSymbol("M"))
	return enc, s, m
}

func TestOrderInstancePriorityOrder(t *testing.T) {
	_, s, m := instFixture(t)
	// Instance: P with two branches, R.L and R.U.M (levels skipped, as
	// descendant instantiation produces).
	paths := []pathenc.PathID{m["P"], m["PRL"], m["PRUM"]}
	parents := []int{-1, 0, 0}
	got := OrderInstance(paths, parents, s)
	// Priorities: P(1) > PRUM(0.576) > PRL(0.36) — PRUM first despite
	// document order.
	want := Sequence{m["P"], m["PRUM"], m["PRL"]}
	if !Equal(got, want) {
		t.Fatalf("order = %v want %v", got, want)
	}
}

func TestOrderInstanceParentBeforeChild(t *testing.T) {
	_, s, m := instFixture(t)
	// Child listed before parent in the arrays; ordering must still emit
	// the parent first (candidacy requires the parent emitted).
	paths := []pathenc.PathID{m["PRU"], m["P"], m["PR"]}
	parents := []int{2, -1, 1}
	got := OrderInstance(paths, parents, s)
	want := Sequence{m["P"], m["PR"], m["PRU"]}
	if !Equal(got, want) {
		t.Fatalf("order = %v want %v", got, want)
	}
}

func TestEnumerateInstanceOrdersGroups(t *testing.T) {
	enc, s, m := instFixture(t)
	// Two identical-path siblings PRL under P with DIFFERENT subtrees
	// (one has a value child): 2 orders.
	v := enc.Extend(m["PRL"], enc.ValueSymbol("boston"))
	paths := []pathenc.PathID{m["P"], m["PRL"], m["PRL"], v}
	parents := []int{-1, 0, 0, 2}
	orders := EnumerateInstanceOrders(paths, parents, s, 0)
	if len(orders) != 2 {
		t.Fatalf("orders = %d want 2", len(orders))
	}
	for _, o := range orders {
		if len(o) != 4 || o[0] != m["P"] {
			t.Fatalf("bad order %v", o)
		}
		// Block discipline: each PRL block contiguous — the value chain
		// follows its own PRL immediately in the order where that member
		// goes first.
	}
	// Indistinguishable members (same subtree) dedupe to one order.
	paths2 := []pathenc.PathID{m["P"], m["PRL"], m["PRL"]}
	parents2 := []int{-1, 0, 0}
	orders2 := EnumerateInstanceOrders(paths2, parents2, s, 0)
	if len(orders2) != 1 {
		t.Fatalf("identical members enumerated %d orders", len(orders2))
	}
}

func TestEnumerateInstanceOrdersLimit(t *testing.T) {
	enc, s, m := instFixture(t)
	// Three distinguishable identical-path siblings: 3! = 6 orders, cap 2.
	v1 := enc.Extend(m["PRL"], enc.ValueSymbol("a-value"))
	v2 := enc.Extend(m["PRL"], enc.ValueSymbol("b-value"))
	v3 := enc.Extend(m["PRL"], enc.ValueSymbol("c-value"))
	paths := []pathenc.PathID{m["P"], m["PRL"], v1, m["PRL"], v2, m["PRL"], v3}
	parents := []int{-1, 0, 1, 0, 3, 0, 5}
	all := EnumerateInstanceOrders(paths, parents, s, 0)
	if len(all) != 6 {
		t.Fatalf("full enumeration = %d want 6", len(all))
	}
	capped := EnumerateInstanceOrders(paths, parents, s, 2)
	if len(capped) != 2 {
		t.Fatalf("capped enumeration = %d want 2", len(capped))
	}
}

func TestOrderInstanceRepeatBlocking(t *testing.T) {
	enc, s, m := instFixture(t)
	// Mark PRL repeat-capable: a single PRL node must still emit its
	// subtree as a contiguous block, pushing its low-priority value ahead
	// of the higher-priority PRUM sibling branch.
	s.SetRepeatPaths(map[pathenc.PathID]bool{m["PRL"]: true})
	if !s.Blocks(m["PRL"]) {
		t.Fatal("Blocks should report the repeat path")
	}
	v := enc.Extend(m["PRL"], enc.ValueSymbol("boston"))
	paths := []pathenc.PathID{m["P"], m["PRL"], v, m["PRUM"]}
	parents := []int{-1, 0, 1, 0}
	got := OrderInstance(paths, parents, s)
	want := Sequence{m["P"], m["PRUM"], m["PRL"], v}
	// PRUM (0.576) precedes the PRL block (0.36); within the block the
	// value chains immediately after PRL.
	if !Equal(got, want) {
		t.Fatalf("order = %v want %v", got, want)
	}
	// Per-instance mode disables repeat blocking.
	s.PerInstanceBlocking = true
	if s.Blocks(m["PRL"]) {
		t.Fatal("per-instance mode should not block repeat paths")
	}
	got2 := OrderInstance(paths, parents, s)
	want2 := Sequence{m["P"], m["PRUM"], m["PRL"], v}
	_ = want2
	// Without blocking, PRL's value (lowest priority) moves to the end —
	// which here is the same tail position; assert the block-freedom via
	// the relative position of v: it must come AFTER PRUM either way, but
	// with blocking v is adjacent to PRL. Rebuild a case that differs:
	s.PerInstanceBlocking = false
	pathsB := []pathenc.PathID{m["P"], m["PRL"], v, m["PRL"]}
	parentsB := []int{-1, 0, 1, 0}
	// Identical group present: both modes block per instance here.
	ordersB := EnumerateInstanceOrders(pathsB, parentsB, s, 0)
	if len(ordersB) != 2 {
		t.Fatalf("instance-identical group orders = %d", len(ordersB))
	}
	_ = got2
}

func TestRepeatPathsScan(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	docs := []*xmltree.Node{
		xmltree.NewElem("P", xmltree.NewElem("L"), xmltree.NewElem("L")),
		xmltree.NewElem("P", xmltree.NewElem("M")),
	}
	rep := RepeatPaths(docs, enc)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	PL := enc.Extend(P, enc.ElementSymbol("L"))
	PM := enc.Extend(P, enc.ElementSymbol("M"))
	if !rep[PL] {
		t.Fatal("PL should be repeat-capable")
	}
	if rep[PM] || rep[P] {
		t.Fatalf("unexpected repeat paths: %v", rep)
	}
}
