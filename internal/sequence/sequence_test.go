package sequence

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/xmltree"
)

// names renders a sequence as dot-joined path strings for readable asserts.
func names(enc *pathenc.Encoder, s Sequence) []string {
	out := make([]string, len(s))
	for i, p := range s {
		out[i] = enc.PathString(p)
	}
	return out
}

func assertSeq(t *testing.T, enc *pathenc.Encoder, got Sequence, want []string) {
	t.Helper()
	g := names(enc, got)
	if len(g) != len(want) {
		t.Fatalf("sequence length %d want %d\ngot  %v\nwant %v", len(g), len(want), g, want)
	}
	for i := range want {
		if g[i] != want[i] {
			t.Fatalf("sequence[%d] = %q want %q\ngot  %v\nwant %v", i, g[i], want[i], g, want)
		}
	}
}

// v returns the canonical designator name for a value, so expectations can
// be written independently of the hash function.
func v(enc *pathenc.Encoder, val string) string {
	return enc.SymbolName(enc.ValueSymbol(val))
}

func TestTable1DepthFirstSequences(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: enc}

	b := df.Sequence(xmltree.Figure3b())
	assertSeq(t, enc, b, []string{
		"P", "P." + v(enc, "xml"), "P.D", "P.D.L", "P.D.L." + v(enc, "boston"),
		"P.D", "P.D.M", "P.D.M." + v(enc, "johnson"),
	})
	c := df.Sequence(xmltree.Figure3c())
	assertSeq(t, enc, c, []string{
		"P", "P." + v(enc, "xml"), "P.D", "P.D",
		"P.D.L", "P.D.L." + v(enc, "boston"),
		"P.D.M", "P.D.M." + v(enc, "johnson"),
	})
	if Equal(b, c) {
		t.Fatal("Table 1: the two depth-first sequences must differ")
	}
}

func TestEq4Figure1Sequence(t *testing.T) {
	// Eq (4): the depth-first constraint sequence of Figure 1 —
	// ⟨P, Pv1, PR, PRM, PRMv2, PRL, PRLv3, PD, PDM, PDMv4, PDU, PDUM,
	//  PDUMv5, PDUN, PDUNv6, PDU, PDUN, PDUNv7, PDL, PDLv8⟩
	// (the paper's rendering omits the second PDUN before PDUNv7; the
	// element is of course present in the traversal).
	enc := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: enc}
	got := df.Sequence(xmltree.Figure1())
	assertSeq(t, enc, got, []string{
		"P", "P." + v(enc, "xml"),
		"P.R", "P.R.M", "P.R.M." + v(enc, "tom"), "P.R.L", "P.R.L." + v(enc, "newyork"),
		"P.D", "P.D.M", "P.D.M." + v(enc, "johnson"),
		"P.D.U", "P.D.U.M", "P.D.U.M." + v(enc, "mary"), "P.D.U.N", "P.D.U.N." + v(enc, "GUI"),
		"P.D.U", "P.D.U.N", "P.D.U.N." + v(enc, "engine"),
		"P.D.L", "P.D.L." + v(enc, "boston"),
	})
	if err := Validate(enc, got); err != nil {
		t.Fatalf("Eq 4 sequence invalid: %v", err)
	}
	// It satisfies constraint f2: the second PDU is the forward prefix of
	// the engine-side PDUN, not the first.
	var pduPositions []int
	PDU := got[10]
	for i, p := range got {
		if p == PDU {
			pduPositions = append(pduPositions, i)
		}
	}
	if len(pduPositions) != 2 {
		t.Fatalf("PDU occurrences = %v", pduPositions)
	}
	secondPDUN := 16
	if k := ForwardPrefixPos(enc, got, secondPDUN, PDU); k != pduPositions[1] {
		t.Fatalf("forward prefix of second PDUN = %d want %d", k, pduPositions[1])
	}
}

func TestEncodeNodesIdenticalSiblingDetection(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	nodes := EncodeNodes(xmltree.Figure3c(), enc)
	// The two D children are identical siblings; nothing else is.
	count := 0
	for _, n := range nodes {
		if n.HasIdenticalSibling {
			count++
			if n.Node.Name != "D" {
				t.Fatalf("non-D node flagged: %v", n.Node)
			}
		}
	}
	if count != 2 {
		t.Fatalf("flagged %d nodes, want 2", count)
	}
	if !HasIdenticalSiblings(xmltree.Figure3c(), enc) {
		t.Fatal("Figure 3(c) has identical siblings")
	}
	if HasIdenticalSiblings(xmltree.Figure3a(), enc) {
		t.Fatal("Figure 3(a) has none")
	}
}

func TestPathMultisetAmbiguity(t *testing.T) {
	// Figures 3(b) and 3(c) have the same multiset of path-encoded nodes —
	// the paper's motivation for constraints (Section 2.2).
	enc := pathenc.NewEncoder(0)
	mb := PathMultiset(xmltree.Figure3b(), enc)
	mc := PathMultiset(xmltree.Figure3c(), enc)
	if len(mb) != len(mc) {
		t.Fatalf("multiset sizes differ: %d %d", len(mb), len(mc))
	}
	for p, n := range mb {
		if mc[p] != n {
			t.Fatalf("multisets differ at %s: %d vs %d", enc.PathString(p), n, mc[p])
		}
	}
}

func TestForwardPrefixPaperExample(t *testing.T) {
	// "in sequence ⟨P, PD, PDL, PDLv1, PD, PDM, PDMv3⟩, the second PD is a
	// forward prefix of PDMv3 while the first PD is not."
	enc := pathenc.NewEncoder(0)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	PD := enc.Extend(P, enc.ElementSymbol("D"))
	PDL := enc.Extend(PD, enc.ElementSymbol("L"))
	PDLv1 := enc.Extend(PDL, enc.ValueSymbol("boston"))
	PDM := enc.Extend(PD, enc.ElementSymbol("M"))
	PDMv3 := enc.Extend(PDM, enc.ValueSymbol("johnson"))
	seq := Sequence{P, PD, PDL, PDLv1, PD, PDM, PDMv3}

	if got := ForwardPrefixPos(enc, seq, 6, PD); got != 4 {
		t.Fatalf("forward prefix of PDMv3 for PD = position %d want 4", got)
	}
	if !IsForwardPrefix(enc, seq, 4, 6) {
		t.Fatal("second PD should be a forward prefix of PDMv3")
	}
	if IsForwardPrefix(enc, seq, 1, 6) {
		t.Fatal("first PD must not be a forward prefix of PDMv3")
	}
	// Non-prefix paths are rejected.
	if got := ForwardPrefixPos(enc, seq, 6, PDL); got != -1 {
		t.Fatalf("PDL is not a prefix of PDMv3; got position %d", got)
	}
	// When no occurrence precedes, the closest after is chosen.
	seq2 := Sequence{P, PDM, PD}
	if got := ForwardPrefixPos(enc, seq2, 1, PD); got != 2 {
		t.Fatalf("forward prefix after the element = %d want 2", got)
	}
}

func TestDecodeTable2Sequences(t *testing.T) {
	// Every row of Table 2 decodes to the tree of Figure 3(c).
	enc := pathenc.NewEncoder(0)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	Pv0 := enc.Extend(P, enc.ValueSymbol("xml"))
	PD := enc.Extend(P, enc.ElementSymbol("D"))
	PDL := enc.Extend(PD, enc.ElementSymbol("L"))
	PDLv1 := enc.Extend(PDL, enc.ValueSymbol("boston"))
	PDM := enc.Extend(PD, enc.ElementSymbol("M"))
	PDMv3 := enc.Extend(PDM, enc.ValueSymbol("johnson"))

	rows := []Sequence{
		{P, Pv0, PD, PD, PDL, PDLv1, PDM, PDMv3},
		{P, PD, Pv0, PD, PDM, PDMv3, PDL, PDLv1},
		{P, PD, PDL, Pv0, PDLv1, PDM, PDMv3, PD},
		{P, PD, PDM, PDMv3, Pv0, PDL, PDLv1, PD},
		{P, PD, PDM, PDMv3, PDL, Pv0, PDLv1, PD},
	}
	want := CanonicalizeValues(xmltree.Figure3c(), enc)
	for i, row := range rows {
		tree, err := Decode(enc, row)
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if !xmltree.Isomorphic(tree, want) {
			t.Fatalf("row %d decoded to %v, want isomorphic to %v", i, tree, want)
		}
		if err := Validate(enc, row); err != nil {
			t.Fatalf("row %d: validate: %v", i, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	P := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("P"))
	PD := enc.Extend(P, enc.ElementSymbol("D"))
	PDL := enc.Extend(PD, enc.ElementSymbol("L"))
	Q := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("Q"))

	cases := []struct {
		name string
		seq  Sequence
	}{
		{"empty", nil},
		{"no root", Sequence{PD, PDL}},
		{"two roots", Sequence{P, Q}},
		{"missing ancestor", Sequence{P, PDL}},
	}
	for _, c := range cases {
		if _, err := Decode(enc, c.seq); err == nil {
			t.Errorf("%s: Decode should fail", c.name)
		}
	}
}

func TestFigure4FalseAlarmAtSequenceLevel(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: enc}
	d := df.Sequence(xmltree.Figure4D())
	q := df.Sequence(xmltree.Figure4Q())
	// ⟨P, PL, PLS, PLB⟩ is a subsequence of ⟨P, PL, PLS, PL, PLB⟩ even
	// though Q is not a substructure of D — the false alarm.
	if !IsSubsequence(q, d) {
		t.Fatal("naive subsequence match should (wrongly) accept the Figure 4 pair")
	}
	if xmltree.Embeds(xmltree.Figure4D(), xmltree.Figure4Q()) {
		t.Fatal("ground truth: Q does not embed in D")
	}
}

func TestFigure5FalseDismissalEnumeration(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: enc}
	a := df.Sequence(xmltree.Figure5a())
	b := df.Sequence(xmltree.Figure5b())
	if Equal(a, b) {
		t.Fatal("the isomorphic pair should have different DF sequences")
	}
	// Enumeration of the identical-sibling group produces both orders.
	seqs := EnumerateSequences(df, xmltree.Figure5a(), 0)
	if len(seqs) != 2 {
		t.Fatalf("enumeration produced %d sequences, want 2", len(seqs))
	}
	foundA, foundB := false, false
	for _, s := range seqs {
		if Equal(s, a) {
			foundA = true
		}
		if Equal(s, b) {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("enumeration missed a form: %v %v", foundA, foundB)
	}
}

func TestEnumerateNoIdenticalSiblings(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: enc}
	seqs := EnumerateSequences(df, xmltree.Figure3a(), 0)
	if len(seqs) != 1 {
		t.Fatalf("tree without identical siblings enumerated %d sequences", len(seqs))
	}
}

func TestEnumerateLimit(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	// P with 4 identical leaf children A: 4! orderings but all yield the
	// same sequence (identical subtrees), so enumeration dedupes to 1.
	tree := xmltree.NewElem("P",
		xmltree.NewElem("A"), xmltree.NewElem("A"),
		xmltree.NewElem("A"), xmltree.NewElem("A"))
	df := DepthFirst{Enc: enc}
	seqs := EnumerateSequences(df, tree, 0)
	if len(seqs) != 1 {
		t.Fatalf("identical subtrees should dedupe to one sequence, got %d", len(seqs))
	}
	// Distinguishable subtrees: A(X), A(Y), A(Z): 3! = 6, capped at 4.
	tree2 := xmltree.NewElem("P",
		xmltree.NewElem("A", xmltree.NewElem("X")),
		xmltree.NewElem("A", xmltree.NewElem("Y")),
		xmltree.NewElem("A", xmltree.NewElem("Z")))
	all := EnumerateSequences(df, tree2, 0)
	if len(all) != 6 {
		t.Fatalf("want 6 distinct sequences, got %d", len(all))
	}
	capped := EnumerateSequences(df, tree2, 4)
	if len(capped) > 4 {
		t.Fatalf("cap violated: %d", len(capped))
	}
}

func TestBreadthFirstOrder(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	bf := BreadthFirst{Enc: enc}
	got := bf.Sequence(xmltree.Figure11a())
	// BF of Figure 11(a): P, then depth-2 (v1, R), then depth-3 (U, L), ...
	assertSeq(t, enc, got, []string{
		"P", "P." + v(enc, "x1"), "P.R", "P.R.U", "P.R.L",
		"P.R.U.M", "P.R.L." + v(enc, "x3"), "P.R.U.M." + v(enc, "x2"),
	})
}

func TestGbestSection52Example(t *testing.T) {
	// The probability-based sequence of the Figure 13 document:
	// ⟨P, PR, PRU, PRUM, PRL, PRLv3, Pv1, PRUMv2⟩.
	enc := pathenc.NewEncoder(0)
	cs := NewProbability(schema.Figure12(), enc)
	got := cs.Sequence(xmltree.Figure11a())
	assertSeq(t, enc, got, []string{
		"P", "P.R", "P.R.U", "P.R.U.M", "P.R.L",
		"P.R.L." + v(enc, "x3"), "P." + v(enc, "x1"), "P.R.U.M." + v(enc, "x2"),
	})
}

func TestTable3PrefixSharing(t *testing.T) {
	// Probability-based sequences of Figures 11(a)/(b) share a prefix of
	// length 6 (of 8); depth-first and breadth-first share only length 1.
	encDF := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: encDF}
	share := func(a, b Sequence) int {
		n := 0
		for n < len(a) && n < len(b) && a[n] == b[n] {
			n++
		}
		return n
	}
	if got := share(df.Sequence(xmltree.Figure11a()), df.Sequence(xmltree.Figure11b())); got != 1 {
		t.Fatalf("DF shared prefix = %d want 1", got)
	}
	encBF := pathenc.NewEncoder(0)
	bf := BreadthFirst{Enc: encBF}
	if got := share(bf.Sequence(xmltree.Figure11a()), bf.Sequence(xmltree.Figure11b())); got != 1 {
		t.Fatalf("BF shared prefix = %d want 1", got)
	}
	encCS := pathenc.NewEncoder(0)
	cs := NewProbability(schema.Figure12(), encCS)
	if got := share(cs.Sequence(xmltree.Figure11a()), cs.Sequence(xmltree.Figure11b())); got != 6 {
		t.Fatalf("CS shared prefix = %d want 6", got)
	}
}

func TestRandomStrategyDeterministic(t *testing.T) {
	encA := pathenc.NewEncoder(0)
	encB := pathenc.NewEncoder(0)
	ra := NewRandom(encA, 7)
	rb := NewRandom(encB, 7)
	sa := ra.Sequence(xmltree.Figure1())
	sb := rb.Sequence(xmltree.Figure1())
	if !Equal(sa, sb) {
		t.Fatal("same seed should reproduce the same sequence")
	}
	if err := Validate(encA, sa); err != nil {
		t.Fatalf("random sequence invalid: %v", err)
	}
}

func TestStrategyNames(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	cases := map[string]Strategy{
		"depth-first":   DepthFirst{Enc: enc},
		"breadth-first": BreadthFirst{Enc: enc},
		"random":        NewRandom(enc, 1),
		"constraint":    NewProbability(schema.Figure12(), enc),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q want %q", s.Name(), want)
		}
	}
}

// subtreeContiguous verifies the Section 2.4 procedure: in the output, the
// subtree of every node that has identical siblings occupies a contiguous
// run starting at the node.
func subtreeContiguous(t *testing.T, enc *pathenc.Encoder, root *xmltree.Node, seq Sequence) {
	t.Helper()
	tree, err := Decode(enc, seq)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := CanonicalizeValues(root, enc)
	if !xmltree.Isomorphic(tree, want) {
		t.Fatalf("round trip broke tree:\nseq  %s\ngot  %v\nwant %v", seq.String(enc), tree, want)
	}
}

func allStrategies(enc *pathenc.Encoder, s *schema.Schema) []Strategy {
	return []Strategy{
		DepthFirst{Enc: enc},
		BreadthFirst{Enc: enc},
		NewRandom(enc, 99),
		NewProbability(s, enc),
	}
}

func TestAllStrategiesRoundTripFixtures(t *testing.T) {
	fixtures := []*xmltree.Node{
		xmltree.Figure1(), xmltree.Figure2a(), xmltree.Figure2b(), xmltree.Figure2c(),
		xmltree.Figure3a(), xmltree.Figure3b(), xmltree.Figure3c(),
		xmltree.Figure4D(), xmltree.Figure4Q(), xmltree.Figure5a(), xmltree.Figure11a(),
	}
	enc := pathenc.NewEncoder(0)
	for _, g := range allStrategies(enc, schema.Figure12()) {
		for fi, f := range fixtures {
			seq := g.Sequence(f)
			if len(seq) != f.Size() {
				t.Fatalf("%s fixture %d: sequence length %d, tree size %d", g.Name(), fi, len(seq), f.Size())
			}
			subtreeContiguous(t, enc, f, seq)
		}
	}
}

func randomTree(rng *rand.Rand, depth, fan int) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	n := xmltree.NewElem(labels[rng.Intn(len(labels))])
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1, fan))
		}
	}
	return n
}

// Property: every strategy's output is a valid constraint sequence that
// decodes back to the (value-canonicalized) input tree, even with many
// identical siblings.
func TestQuickStrategiesRoundTrip(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	strategies := allStrategies(enc, schema.Figure12())
	rng := rand.New(rand.NewSource(2024))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		tree := randomTree(r, 5, 3)
		want := CanonicalizeValues(tree, enc)
		for _, g := range strategies {
			seq := g.Sequence(tree)
			if len(seq) != tree.Size() {
				return false
			}
			back, err := Decode(enc, seq)
			if err != nil {
				t.Logf("%s: decode error: %v for %v", g.Name(), err, tree)
				return false
			}
			if !xmltree.Isomorphic(back, want) {
				t.Logf("%s: round trip mismatch:\ntree %v\nseq  %s\nback %v", g.Name(), tree, seq.String(enc), back)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Property: strategies emit ancestors before descendants.
func TestQuickAncestorsFirst(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	strategies := allStrategies(enc, schema.Figure12())
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		tree := randomTree(r, 4, 3)
		for _, g := range strategies {
			seq := g.Sequence(tree)
			seenDepth1 := false
			for i, p := range seq {
				if enc.Depth(p) == 1 {
					seenDepth1 = true
				}
				// The parent occurrence (forward prefix) must exist; for
				// ancestor-first strategies it must be BEFORE i.
				if enc.Depth(p) > 1 {
					k := ParentForwardPrefixPos(enc, seq, i)
					if k < 0 || k >= i {
						return false
					}
				}
			}
			if !seenDepth1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPruferPaperExample(t *testing.T) {
	// Figure 2(a) with the paper's arbitrary labels: M=1, D(M)=5, R=3,
	// L=4, D(L)=2, P=6 gives ⟨5,6,2,6,6⟩... the paper labels from 0 to
	// n-1, but its example uses 1..6; we shift to 0..5 and expect
	// ⟨4,5,1,5,5⟩ (each label one less).
	tree := xmltree.Figure2a()
	// tree children: R, D(L), D(M)
	R := tree.Children[0]
	DL := tree.Children[1]
	L := DL.Children[0]
	DM := tree.Children[2]
	M := DM.Children[0]
	labels := map[*xmltree.Node]int{
		M: 0, DL: 1, R: 2, L: 3, DM: 4, tree: 5,
	}
	seq, err := PruferNumbered(tree, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 1, 5, 5}
	if len(seq) != len(want) {
		t.Fatalf("sequence %v want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v want %v", seq, want)
		}
	}
}

func TestPruferErrors(t *testing.T) {
	tree := xmltree.Figure2a()
	if _, err := PruferNumbered(tree, map[*xmltree.Node]int{tree: 0}); err == nil {
		t.Fatal("wrong label count should fail")
	}
	bad := PostorderLabels(tree)
	for k := range bad {
		bad[k] = 0 // all zero: not a permutation
	}
	if _, err := PruferNumbered(tree, bad); err == nil {
		t.Fatal("non-permutation labels should fail")
	}
}

func TestLabeledPrufer(t *testing.T) {
	lps, nps, err := LabeledPrufer(xmltree.Figure2a())
	if err != nil {
		t.Fatal(err)
	}
	if len(lps) != 5 || len(nps) != 5 {
		t.Fatalf("LPS %v NPS %v", lps, nps)
	}
	// Every LPS entry is a parent label: P or D here.
	for _, l := range lps {
		if l != "P" && l != "D" {
			t.Fatalf("unexpected LPS label %q (lps=%v)", l, lps)
		}
	}
	// The root P is the last deleted parent.
	if lps[len(lps)-1] != "P" {
		t.Fatalf("last LPS entry %q want P", lps[len(lps)-1])
	}
	if _, _, err := LabeledPrufer(xmltree.NewElem("solo")); err != nil {
		t.Fatalf("single node tree: %v", err)
	}
}

func TestPruferDecode(t *testing.T) {
	// Classic unrooted round trip on a path graph 0-1-2-3: Prüfer of the
	// path rooted at 3 with edges (0,1),(1,2),(2,3) is ⟨1,2⟩.
	parent, err := PruferDecode([]int{1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parent[0] != 1 || parent[1] != 2 || parent[2] != 3 || parent[3] != -1 {
		t.Fatalf("decoded parents %v", parent)
	}
	if _, err := PruferDecode([]int{9}, 3); err == nil {
		t.Fatal("out of range label should fail")
	}
	if _, err := PruferDecode([]int{1}, 5); err == nil {
		t.Fatal("wrong length should fail")
	}
	if _, err := PruferDecode(nil, 1); err == nil {
		t.Fatal("n<2 should fail")
	}
}

func TestIsSubsequenceBasics(t *testing.T) {
	d := Sequence{1, 2, 3, 2, 4}
	cases := []struct {
		q    Sequence
		want bool
	}{
		{Sequence{}, true},
		{Sequence{1, 3, 4}, true},
		{Sequence{2, 2}, true},
		{Sequence{3, 1}, false},
		{Sequence{1, 2, 3, 2, 4}, true},
		{Sequence{5}, false},
	}
	for _, c := range cases {
		if got := IsSubsequence(c.q, d); got != c.want {
			t.Errorf("IsSubsequence(%v) = %v want %v", c.q, got, c.want)
		}
	}
}

func TestSequenceString(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	df := DepthFirst{Enc: enc}
	s := df.Sequence(xmltree.Figure2b())
	str := s.String(enc)
	if !strings.HasPrefix(str, "⟨P, P.D") || !strings.HasSuffix(str, "⟩") {
		t.Fatalf("String = %q", str)
	}
}
