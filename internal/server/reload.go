package server

import (
	"context"
	"fmt"
	"os"
	"time"

	"xseq"
)

// Reload loads Config.IndexPath into a fresh snapshot and atomically swaps
// it in; queries started before the swap finish on the old snapshot,
// queries started after see the new one, and nothing blocks. On any load
// failure — the file is corrupt, truncated, missing, or violates
// Config.ExpectShards — the old snapshot stays published and keeps
// answering; the error is recorded for /healthz and returned. cmd/xseqd
// wires this to SIGHUP; WatchFile calls it on mtime change.
func (s *Server) Reload() error {
	if s.swap == nil {
		return fmt.Errorf("server: reload applies to static snapshot mode only")
	}
	mtime, size := statFile(s.cfg.IndexPath)
	ix, err := xseq.LoadFile(s.cfg.IndexPath)
	if err == nil {
		// prepareSnapshot verifies integrity (flat snapshots fully, before
		// any query can hit the damage) and re-instruments the replacement:
		// a fresh, empty query cache — the swap itself is the invalidation;
		// readers on the old snapshot keep its cache, whose entries are
		// correct for that corpus — and, for flat, page accounting.
		if perr := prepareSnapshot(&s.cfg, ix); perr != nil {
			_ = ix.Close()
			err = perr
		}
	}
	if err == nil {
		s.swap.Swap(ix)
	}
	cur := s.swap.Current()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reloads++
	if err != nil {
		s.reloadFailures++
		s.lastReloadErr = err
		s.cfg.Logf("server: reload of %s failed (still serving previous snapshot): %v", s.cfg.IndexPath, err)
		return err
	}
	s.lastReloadErr = nil
	s.loadedAt = time.Now()
	s.snapMTime, s.snapSize = mtime, size
	s.cfg.Logf("server: reloaded %s: %d documents", s.cfg.IndexPath, cur.Stats().Documents)
	return nil
}

// WatchFile polls Config.IndexPath every interval and calls Reload when
// the file's mtime or size changes, until ctx is cancelled. A failed
// reload (recorded in /healthz) is retried on the next observed change —
// a rewritten-but-corrupt file does not wedge the watcher.
func (s *Server) WatchFile(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		mtime, size := statFile(s.cfg.IndexPath)
		if mtime.IsZero() {
			continue // transiently missing (mid-rename); keep serving
		}
		s.mu.Lock()
		changed := !mtime.Equal(s.snapMTime) || size != s.snapSize
		if changed {
			// Record what we observed even if the reload fails, so one
			// bad file version is attempted once, not every tick.
			s.snapMTime, s.snapSize = mtime, size
		}
		s.mu.Unlock()
		if changed {
			_ = s.Reload() // failure recorded in health; old snapshot serves
		}
	}
}

// statFile reports path's mtime and size, zero values when unreadable.
func statFile(path string) (time.Time, int64) {
	fi, err := os.Stat(path)
	if err != nil {
		return time.Time{}, 0
	}
	return fi.ModTime(), fi.Size()
}
