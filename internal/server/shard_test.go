package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"xseq"
)

// buildShardedSnapshot writes an n-document sharded snapshot to path.
// Documents match the same matchAll query buildSnapshot's do.
func buildShardedSnapshot(t *testing.T, path string, n, shards int) {
	t.Helper()
	docs := make([]*xseq.Document, n)
	for i := range docs {
		d, err := xseq.ParseDocumentString(int32(i),
			"<rec><title>t</title><city>boston</city></rec>")
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	ix, err := xseq.Build(docs, xseq.Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestServeShardedSnapshot: xseqd's serving layer is layout-agnostic — a
// sharded snapshot loads, answers /query, and /stats reports the shard
// count and per-shard shapes.
func TestServeShardedSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.idx")
	buildShardedSnapshot(t, path, 12, 4)
	srv, err := New(Config{IndexPath: path, Logf: silentLogf, ExpectShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	code, qr, body := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK {
		t.Fatalf("query on sharded snapshot: %d %s", code, body)
	}
	if qr.Count != 12 {
		t.Fatalf("count = %d, want 12", qr.Count)
	}
	for i := 1; i < len(qr.IDs); i++ {
		if qr.IDs[i-1] >= qr.IDs[i] {
			t.Fatalf("ids out of order: %v", qr.IDs)
		}
	}
	code, statsBody := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats: %d", code)
	}
	var st statsResponse
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatalf("bad /stats body %s: %v", statsBody, err)
	}
	if st.Index.Shards != 4 || len(st.Index.PerShard) != 4 {
		t.Fatalf("/stats shards = %d, per_shard = %d entries", st.Index.Shards, len(st.Index.PerShard))
	}
	docsTotal := 0
	for _, ps := range st.Index.PerShard {
		docsTotal += ps.Documents
	}
	if docsTotal != 12 || st.Index.Documents != 12 {
		t.Fatalf("per-shard docs sum %d, index documents %d, want 12", docsTotal, st.Index.Documents)
	}
}

// TestExpectShardsMismatch: -shards is a startup invariant — a monolithic
// or differently-sharded snapshot must fail New.
func TestExpectShardsMismatch(t *testing.T) {
	dir := t.TempDir()
	mono := filepath.Join(dir, "mono.idx")
	buildSnapshot(t, mono, 3, false)
	if _, err := New(Config{IndexPath: mono, Logf: silentLogf, ExpectShards: 4}); err == nil {
		t.Fatal("New accepted a monolithic snapshot with ExpectShards=4")
	}
	sharded := filepath.Join(dir, "sharded.idx")
	buildShardedSnapshot(t, sharded, 6, 2)
	if _, err := New(Config{IndexPath: sharded, Logf: silentLogf, ExpectShards: 4}); err == nil {
		t.Fatal("New accepted a 2-shard snapshot with ExpectShards=4")
	}
	if _, err := New(Config{IndexPath: sharded, Logf: silentLogf, ExpectShards: 2}); err != nil {
		t.Fatalf("New rejected a matching snapshot: %v", err)
	}
}

// TestShardedReloadKeepsOldOnCorruption: a hot reload that hits a corrupt
// sharded replacement keeps the previous snapshot serving, flips /healthz
// to degraded, and recovers on the next good file.
func TestShardedReloadKeepsOldOnCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.idx")
	buildShardedSnapshot(t, path, 8, 3)
	srv, err := New(Config{IndexPath: path, Logf: silentLogf, ExpectShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x10
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt sharded snapshot")
	}
	// Old snapshot still answers.
	code, qr, body := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK || qr.Count != 8 {
		t.Fatalf("old snapshot not serving after corrupt reload: %d %s", code, body)
	}
	code, hb := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	var hr healthResponse
	if err := json.Unmarshal(hb, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", hr.Status)
	}

	// A reload of a layout-violating (monolithic) replacement is also
	// rejected under ExpectShards.
	buildSnapshot(t, path, 8, false)
	if err := srv.Reload(); err == nil {
		t.Fatal("Reload accepted a monolithic snapshot with ExpectShards=3")
	}
	if _, qr, _ := getQuery(t, ts.URL, "q="+matchAll); qr.Count != 8 {
		t.Fatal("old snapshot displaced by layout-violating reload")
	}

	// Restoring a good sharded file recovers.
	buildShardedSnapshot(t, path, 10, 3)
	if err := srv.Reload(); err != nil {
		t.Fatalf("reload of restored snapshot: %v", err)
	}
	if _, qr, _ := getQuery(t, ts.URL, "q="+matchAll); qr.Count != 10 {
		t.Fatalf("restored snapshot not serving: count %d", qr.Count)
	}
	if _, hb := get(t, ts.URL+"/healthz"); true {
		var hr healthResponse
		if err := json.Unmarshal(hb, &hr); err != nil {
			t.Fatal(err)
		}
		if hr.Status != "ok" {
			t.Fatalf("healthz status after recovery = %q, want ok", hr.Status)
		}
	}
}
