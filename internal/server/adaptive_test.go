package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newAdaptiveServer starts a static server over a KeepDocuments snapshot
// with the adaptive loop tuned for test speed: fast polls, a hair-trigger
// drift threshold, aggressive decay, and no rebuild rate limit.
func newAdaptiveServer(t *testing.T, ndocs int, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	srv, ts := newTestServer(t, ndocs, func(cfg *Config) {
		cfg.Adaptive = true
		cfg.AdaptivePoll = 10 * time.Millisecond
		cfg.AdaptiveDrift = 0.05
		cfg.AdaptiveMinInterval = time.Millisecond
		cfg.AdaptiveMinSamples = 4
		cfg.AdaptiveDecay = 0.8
		if mutate != nil {
			mutate(cfg)
		}
	})
	t.Cleanup(func() { srv.Close() })
	return srv, ts
}

// adaptiveStats fetches /stats and returns the adaptive section.
func adaptiveStats(t *testing.T, base string) *adaptiveStat {
	t.Helper()
	code, body := get(t, base+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d: %s", code, body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.Adaptive
}

// TestAdaptiveHotSwapUnderConcurrentQueries is the tentpole's proof
// obligation: while goroutines hammer queries with known answers, the
// adaptive loop must complete at least one background re-sequenced rebuild
// and hot-swap it in — with zero wrong answers at any point. Run under
// -race this also proves the swap itself is sound against readers.
func TestAdaptiveHotSwapUnderConcurrentQueries(t *testing.T) {
	const ndocs = 20
	_, ts := newAdaptiveServer(t, ndocs, nil)

	var (
		stop    atomic.Bool
		shifted atomic.Bool
		wrong   atomic.Int64
		wg      sync.WaitGroup
	)
	client := ts.Client()
	queryOnce := func(q string, want int) {
		resp, err := client.Get(ts.URL + "/query?q=" + q)
		if err != nil {
			wrong.Add(1)
			return
		}
		var qr queryResponse
		err = json.NewDecoder(resp.Body).Decode(&qr)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || qr.Count != want {
			wrong.Add(1)
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if shifted.Load() {
					// Shifted mix: hammer the title spine, sample the old
					// hot pattern to keep checking its answers.
					queryOnce("/rec/title", ndocs)
					queryOnce("/rec/title", ndocs)
					queryOnce(matchAll, ndocs)
				} else {
					queryOnce(matchAll, ndocs)
				}
			}
		}()
	}

	// Phase 1: the initial index was built unweighted, so the first derived
	// vector drifts from empty and triggers a rebuild once enough samples
	// accumulate.
	waitFor(t, func() bool {
		st := adaptiveStats(t, ts.URL)
		return st != nil && st.Rebuilds >= 1
	})

	// Phase 2: shift the mix wholesale. The decaying table forgets the old
	// hot pattern, the derived vector drifts from the built one, and a
	// second rebuild proves the detector tracks the workload rather than
	// firing once and going quiet.
	shifted.Store(true)
	waitFor(t, func() bool {
		return adaptiveStats(t, ts.URL).Rebuilds >= 2
	})

	stop.Store(true)
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d queries returned wrong answers across adaptive hot-swaps", n)
	}

	st := adaptiveStats(t, ts.URL)
	if !st.Enabled || st.Failures != 0 {
		t.Fatalf("adaptive stat after rebuilds: %+v", st)
	}
	if len(st.BuiltWeights) == 0 {
		t.Fatalf("serving index should carry the built weight vector: %+v", st)
	}
	if st.LastRebuildMS <= 0 {
		t.Fatalf("last rebuild duration missing: %+v", st)
	}

	// The swapped-in index still answers correctly after the dust settles.
	code, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK || qr.Count != ndocs {
		t.Fatalf("post-swap query = %d, %+v", code, qr)
	}
}

// TestAdaptiveRebuildFailureContained injects a rebuild failure and
// asserts the containment contract: failures are counted, /healthz reports
// degraded with the error, the old index keeps serving correct answers —
// and once the fault clears, the backoff retry succeeds and health
// recovers.
func TestAdaptiveRebuildFailureContained(t *testing.T) {
	const ndocs = 5
	var failing atomic.Bool
	failing.Store(true)
	_, ts := newAdaptiveServer(t, ndocs, func(cfg *Config) {
		cfg.testRebuildFail = func() error {
			if failing.Load() {
				return errors.New("injected rebuild fault")
			}
			return nil
		}
	})

	// Feed the pattern table until the loop trips over the injected fault.
	drive := func() {
		for i := 0; i < 10; i++ {
			if code, _, body := getQuery(t, ts.URL, "q="+matchAll); code != http.StatusOK {
				t.Fatalf("query during fault = %d: %s", code, body)
			}
		}
	}
	drive()
	waitFor(t, func() bool {
		drive()
		st := adaptiveStats(t, ts.URL)
		return st != nil && st.Failures >= 1
	})

	st := adaptiveStats(t, ts.URL)
	if st.Rebuilds != 0 {
		t.Fatalf("no rebuild should complete while the fault is armed: %+v", st)
	}
	if !strings.Contains(st.LastError, "injected rebuild fault") {
		t.Fatalf("last_error = %q", st.LastError)
	}
	code, body := get(t, ts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(body, &h); err != nil || code != http.StatusOK {
		t.Fatalf("/healthz = %d, %v: %s", code, err, body)
	}
	if h.Status != "degraded" || !strings.Contains(h.AdaptiveError, "injected rebuild fault") {
		t.Fatalf("healthz during fault = %+v", h)
	}
	// Serving never stopped: the old index answers throughout.
	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != http.StatusOK || qr.Count != ndocs {
		t.Fatalf("query while degraded = %d, %+v", code, qr)
	}

	// Clear the fault; the capped-backoff retry completes a rebuild and
	// /healthz recovers.
	failing.Store(false)
	waitFor(t, func() bool {
		drive()
		return adaptiveStats(t, ts.URL).Rebuilds >= 1
	})
	_, body = get(t, ts.URL+"/healthz")
	h = healthResponse{}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.AdaptiveError != "" {
		t.Fatalf("healthz after recovery = %+v", h)
	}
}

// TestAdaptiveDynamicResequence runs the loop against a WAL-backed dynamic
// primary: the rebuild path is the engine's forced in-place rebuild, which
// must preserve every answer and keep accepting inserts afterwards.
func TestAdaptiveDynamicResequence(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "primary.wal")
	srv, err := New(Config{
		WALPath:             wal,
		Adaptive:            true,
		AdaptivePoll:        10 * time.Millisecond,
		AdaptiveDrift:       0.05,
		AdaptiveMinInterval: time.Millisecond,
		AdaptiveMinSamples:  4,
		AdaptiveDecay:       0.8,
		Logf:                silentLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	const ndocs = 8
	for i := 0; i < ndocs; i++ {
		if code, _, body := postInsert(t, ts.URL, i,
			fmt.Sprintf("<rec><title>t%d</title><city>boston</city></rec>", i)); code != http.StatusOK {
			t.Fatalf("insert %d = %d: %s", i, code, body)
		}
	}
	waitFor(t, func() bool {
		for i := 0; i < 5; i++ {
			if code, qr, body := getQuery(t, ts.URL, "q="+matchAll); code != http.StatusOK || qr.Count != ndocs {
				t.Fatalf("query = %d, %+v: %s", code, qr, body)
			}
		}
		st := adaptiveStats(t, ts.URL)
		return st != nil && st.Rebuilds >= 1
	})

	// The re-sequenced dynamic index keeps serving and ingesting.
	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != http.StatusOK || qr.Count != ndocs {
		t.Fatalf("post-resequence query = %d, %+v", code, qr)
	}
	if code, _, body := postInsert(t, ts.URL, ndocs,
		"<rec><title>late</title><city>boston</city></rec>"); code != http.StatusOK {
		t.Fatalf("post-resequence insert = %d: %s", code, body)
	}
	waitFor(t, func() bool {
		_, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
		return qr.Count == ndocs+1
	})
}

// TestAdaptiveConfigValidation covers the mode guards: a follower cannot
// re-sequence the primary's log, and a static snapshot without its corpus
// has nothing to rebuild from.
func TestAdaptiveConfigValidation(t *testing.T) {
	if _, err := New(Config{FollowURL: "http://primary", Adaptive: true, Logf: silentLogf}); err == nil ||
		!strings.Contains(err.Error(), "FollowURL") {
		t.Fatalf("follower + adaptive: err = %v", err)
	}
	path := filepath.Join(t.TempDir(), "snap.idx")
	buildSnapshot(t, path, 2, false) // no KeepDocuments
	if _, err := New(Config{IndexPath: path, Adaptive: true, Logf: silentLogf}); err == nil ||
		!strings.Contains(err.Error(), "KeepDocuments") {
		t.Fatalf("adaptive without documents: err = %v", err)
	}
}

// TestAdaptiveMetricsExposed checks the /metrics families the loop owns.
func TestAdaptiveMetricsExposed(t *testing.T) {
	srv, ts := newAdaptiveServer(t, 2, nil)
	for i := 0; i < 3; i++ {
		getQuery(t, ts.URL, "q="+matchAll)
	}
	ms := httptest.NewServer(srv.MetricsHandler())
	defer ms.Close()
	_, body := get(t, ms.URL)
	for _, want := range []string{
		"xseq_adaptive_rebuilds_total",
		"xseq_adaptive_rebuild_failures_total",
		"xseq_adaptive_drift",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
