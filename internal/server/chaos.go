package server

import (
	"net/http"
	"runtime/debug"
	"time"

	"xseq/internal/faultio"
)

// Chaos maps a request path ("/query") to the faults injected into it.
// Chaos is the serving-layer face of internal/faultio: the same
// call-count triggers that wrap builders and streams in tests here wrap
// routes, so resilience drills (and the test suite) can demand "the 3rd
// query hangs 200ms", "every 10th stats call 500s", or "the next request
// panics mid-handler" — and prove the server degrades instead of dying.
// An empty Chaos injects nothing and costs nothing.
type Chaos map[string]ChaosFaults

// ChaosFaults selects the faults for one route; nil triggers never fire.
type ChaosFaults struct {
	// Latency is slept before the handler runs, on requests where
	// LatencyOn fires; the sleep respects the client disconnecting.
	Latency   time.Duration
	LatencyOn *faultio.Trigger
	// ErrorOn short-circuits the request with a 500 before the handler.
	ErrorOn *faultio.Trigger
	// PanicOn panics mid-request — contained by recoverMiddleware into a
	// 500, which is exactly what it exists to prove.
	PanicOn *faultio.Trigger
}

// chaosMiddleware wires the configured faults in front of next. With an
// empty configuration it returns next untouched.
func chaosMiddleware(chaos Chaos, next http.Handler) http.Handler {
	if len(chaos) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f, ok := chaos[r.URL.Path]; ok {
			if f.Latency > 0 && f.LatencyOn.Hit() {
				t := time.NewTimer(f.Latency)
				select {
				case <-t.C:
				case <-r.Context().Done():
					t.Stop()
				}
			}
			if f.ErrorOn.Hit() {
				writeError(w, http.StatusInternalServerError, "chaos: injected error")
				return
			}
			if f.PanicOn.Hit() {
				panic("chaos: injected panic")
			}
		}
		next.ServeHTTP(w, r)
	})
}

// recoverMiddleware converts a handler panic into a 500 response. Without
// it net/http recovers too, but by killing the connection with no
// response; with it one poisoned request costs its caller an error body
// while the process and every other connection keep serving. Deferred
// cleanups below the panic point (gate release, drain exit) run during
// the unwind as usual, so no admission slot leaks.
func recoverMiddleware(logf func(string, ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler { // deliberate abort, not a bug
					panic(v)
				}
				logf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				// Best effort: if the handler already wrote headers this
				// is a no-op on the status line, but typically the panic
				// fired before any write.
				writeError(w, http.StatusInternalServerError, "internal panic (contained; see server log)")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
