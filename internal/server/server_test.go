package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"xseq"
)

// silentLogf discards server logs; tests that care assert on responses,
// and t.Logf is unsafe from handler goroutines that may outlive the test.
func silentLogf(string, ...any) {}

// buildSnapshot writes an n-document index snapshot to path. Every
// document matches the query "/rec/city[text='boston']".
func buildSnapshot(t *testing.T, path string, n int, keepDocs bool) {
	t.Helper()
	docs := make([]*xseq.Document, n)
	for i := range docs {
		d, err := xseq.ParseDocumentString(int32(i),
			fmt.Sprintf("<rec><title>t%d</title><city>boston</city></rec>", i))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	ix, err := xseq.Build(docs, xseq.Config{KeepDocuments: keepDocs})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

// matchAll is the query every buildSnapshot document satisfies.
const matchAll = "/rec/city[text='boston']"

// newTestServer builds a snapshot, starts a Server over it, and fronts it
// with httptest. mutate (optional) adjusts the Config before New.
func newTestServer(t *testing.T, ndocs int, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.idx")
	buildSnapshot(t, path, ndocs, true)
	cfg := Config{IndexPath: path, DefaultTimeout: 30 * time.Second, Logf: silentLogf}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// get fetches url and returns the status code and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// getQuery runs /query and decodes the success body.
func getQuery(t *testing.T, base, params string) (int, queryResponse, []byte) {
	t.Helper()
	code, body := get(t, base+"/query?"+params)
	var qr queryResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatalf("bad /query body %s: %v", body, err)
		}
	}
	return code, qr, body
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, 3, nil)

	code, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK || qr.Count != 3 || len(qr.IDs) != 3 {
		t.Fatalf("query = %d, %+v", code, qr)
	}
	if code, qr, _ = getQuery(t, ts.URL, "q="+matchAll+"&limit=2"); code != 200 || qr.Count != 2 {
		t.Fatalf("limited query = %d, %+v", code, qr)
	}
	if code, qr, _ = getQuery(t, ts.URL, "q="+matchAll+"&verify=1"); code != 200 || qr.Count != 3 {
		t.Fatalf("verified query = %d, %+v", code, qr)
	}
	if code, qr, _ = getQuery(t, ts.URL, "q=/rec/city[text='nowhere']"); code != 200 || qr.Count != 0 || qr.IDs == nil {
		t.Fatalf("no-hit query = %d, %+v (ids must encode as [], not null)", code, qr)
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, ts := newTestServer(t, 1, nil)
	for name, params := range map[string]string{
		"missing q":   "",
		"parse error": "q=%5B", // "["
		"bad limit":   "q=" + matchAll + "&limit=many",
		"neg limit":   "q=" + matchAll + "&limit=-1",
		"bad timeout": "q=" + matchAll + "&timeout=fast",
	} {
		if code, _, body := getQuery(t, ts.URL, params); code != http.StatusBadRequest {
			t.Errorf("%s: code = %d, body %s", name, code, body)
		}
	}
	resp, err := http.Post(ts.URL+"/query?q="+matchAll, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d", resp.StatusCode)
	}
}

func TestVerifyWithoutDocumentsIs400(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.idx")
	buildSnapshot(t, path, 2, false) // no KeepDocuments
	srv, err := New(Config{IndexPath: path, Logf: silentLogf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	code, _, body := getQuery(t, ts.URL, "q="+matchAll+"&verify=1")
	if code != http.StatusBadRequest {
		t.Fatalf("verify on doc-less snapshot = %d, body %s", code, body)
	}
}

func TestStatsHealthzReadyz(t *testing.T) {
	srv, ts := newTestServer(t, 4, nil)
	if code, _, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 {
		t.Fatal("warmup query failed")
	}

	code, body := get(t, ts.URL+"/stats")
	var st statsResponse
	if code != 200 || json.Unmarshal(body, &st) != nil {
		t.Fatalf("stats = %d %s", code, body)
	}
	if st.Index.Documents != 4 || st.Queries < 1 || st.Admission.MaxConcurrent != 32 || st.Draining {
		t.Fatalf("stats body = %+v", st)
	}

	code, body = get(t, ts.URL+"/healthz")
	var h healthResponse
	if code != 200 || json.Unmarshal(body, &h) != nil {
		t.Fatalf("healthz = %d %s", code, body)
	}
	if h.Status != "ok" || h.Documents != 4 {
		t.Fatalf("healthz body = %+v", h)
	}

	if code, _ = get(t, ts.URL+"/readyz"); code != 200 {
		t.Fatalf("readyz = %d", code)
	}
	srv.dr.begin()
	if code, _ = get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d", code)
	}
}

func TestNewRejectsMissingOrCorruptSnapshot(t *testing.T) {
	if _, err := New(Config{Logf: silentLogf}); err == nil {
		t.Fatal("empty IndexPath must fail")
	}
	if _, err := New(Config{IndexPath: filepath.Join(t.TempDir(), "absent.idx"), Logf: silentLogf}); err == nil {
		t.Fatal("missing snapshot must fail")
	}
}

func TestGateAdmissionAndOverflow(t *testing.T) {
	g := newGate(2, 1)
	ctx := context.Background()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Both slots busy: the next acquire queues; run it in a goroutine.
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	waitFor(t, func() bool { return g.waiting.Load() == 1 })
	// Queue full too: immediate rejection.
	if err := g.acquire(ctx); !errors.Is(err, errOverloaded) {
		t.Fatalf("overflow acquire = %v", err)
	}
	if got := g.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d", got)
	}
	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	if got := g.active.Load(); got != 2 {
		t.Fatalf("active = %d", got)
	}
	g.release()
	g.release()
}

func TestGateQueuedCancel(t *testing.T) {
	g := newGate(1, 1)
	if err := g.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	waitFor(t, func() bool { return g.waiting.Load() == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v", err)
	}
	// The queue token must be returned: the next overflow probe queues
	// rather than rejecting.
	done := make(chan error, 1)
	go func() { done <- g.acquire(context.Background()) }()
	waitFor(t, func() bool { return g.waiting.Load() == 1 })
	g.release()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDrainerLifecycle(t *testing.T) {
	d := &drainer{}
	if !d.enter() {
		t.Fatal("enter before drain must admit")
	}
	zero := d.begin()
	select {
	case <-zero:
		t.Fatal("zero closed with a request in flight")
	default:
	}
	if d.enter() {
		t.Fatal("enter while draining must reject")
	}
	d.exit()
	select {
	case <-zero:
	case <-time.After(time.Second):
		t.Fatal("zero not closed after last exit")
	}
	// begin after fully drained: immediately-closed channel, idempotent.
	select {
	case <-d.begin():
	case <-time.After(time.Second):
		t.Fatal("second begin must be closed already")
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
