package server

// Online adaptive resequencing — the paper's §5 loop closed under live
// traffic. A background loop turns the served query mix (the /stats
// pattern-frequency table) into the Eq 6 weight vector w(C), measures how
// far the serving index's sequencing has drifted from it, and re-sequences
// the index around the mix when the drift crosses the threshold:
//
//	poll:    decay the frequency table, derive weights, update drift
//	trigger: drift >= threshold, enough samples, past the rate limit
//	rebuild: static mode  — RebuildWithWeights in the background, then
//	         hot-swap via the Swapper; reads never pause
//	         dynamic mode — DynamicIndex.Resequence (compaction-grade
//	         containment: a failure is a counted CompactionError)
//
// Failure containment mirrors the checkpoint loop exactly: a failed
// rebuild is counted, surfaced in /stats and /healthz (degraded), retried
// with capped exponential backoff — and never disturbs serving, because
// the new index only replaces the old one after it is fully built and
// validated.

import (
	"context"
	"sync"
	"time"

	"xseq/internal/adapt"
)

// resequencer runs the adaptive-resequencing policy for one server.
type resequencer struct {
	s    *Server
	done chan struct{}

	mu           sync.Mutex
	weights      map[string]float64 // derived from the live mix at the last poll
	builtWeights map[string]float64 // vector the serving index was built with
	drift        float64            // adapt.Drift(weights, builtWeights)
	samples      int64              // frequency-table mass at the last poll
	rebuilds     int64
	failures     int64
	lastErr      error
	streak       int       // consecutive failures, drives the backoff
	nextTry      time.Time // earliest next attempt after a failure
	lastRebuild  time.Time
	lastDur      time.Duration
}

func newResequencer(s *Server) *resequencer {
	return &resequencer{s: s, done: make(chan struct{})}
}

func (a *resequencer) wait() { <-a.done }

// run polls the query mix every AdaptivePoll and rebuilds when the drift
// policy fires; it exits when ctx (the server's base context) is cancelled.
func (a *resequencer) run(ctx context.Context) {
	defer close(a.done)
	t := time.NewTicker(a.s.cfg.AdaptivePoll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if a.observe() {
			a.rebuild(ctx)
		}
	}
}

// observe ages the frequency table, re-derives the weight vector, updates
// the drift gauge, and reports whether a rebuild is due: drift at or past
// the threshold, a minimum of signal in the table, any failure backoff
// elapsed, and the rate limit between successful rebuilds respected.
func (a *resequencer) observe() bool {
	cfg := &a.s.cfg
	a.s.patterns.Decay(cfg.AdaptiveDecay)
	samples := a.s.patterns.Total()
	w := adapt.DeriveWeights(a.s.patterns.Snapshot(), cfg.AdaptiveBoost)

	a.mu.Lock()
	defer a.mu.Unlock()
	a.weights = w
	a.samples = samples
	a.drift = adapt.Drift(w, a.builtWeights)
	if a.drift < cfg.AdaptiveDrift || samples < int64(cfg.AdaptiveMinSamples) {
		return false
	}
	now := time.Now()
	if now.Before(a.nextTry) {
		return false
	}
	if !a.lastRebuild.IsZero() && now.Sub(a.lastRebuild) < cfg.AdaptiveMinInterval {
		return false
	}
	return true
}

// rebuild re-sequences the serving index around the current weight vector.
// Serving is never disturbed: the old index answers queries throughout, and
// on failure it simply keeps doing so while the policy backs off.
func (a *resequencer) rebuild(ctx context.Context) {
	a.mu.Lock()
	w, drift := a.weights, a.drift
	a.mu.Unlock()

	start := time.Now()
	err := a.doRebuild(ctx, w)

	a.mu.Lock()
	defer a.mu.Unlock()
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown interrupted the rebuild; not a failure
		}
		a.failures++
		a.lastErr = err
		a.streak++
		backoff := a.s.cfg.AdaptivePoll * (1 << min(a.streak, 5))
		if backoff > 30*time.Second {
			backoff = 30 * time.Second
		}
		a.nextTry = time.Now().Add(backoff)
		a.s.cfg.Logf("server: adaptive rebuild failed (retrying in %v): %v", backoff, err)
		return
	}
	a.builtWeights = w
	a.drift = adapt.Drift(a.weights, w)
	a.rebuilds++
	a.lastErr = nil
	a.streak = 0
	a.nextTry = time.Time{}
	a.lastRebuild = time.Now()
	a.lastDur = a.lastRebuild.Sub(start)
	a.s.cfg.Logf("server: adaptive rebuild #%d re-sequenced around %d weighted paths in %v (drift was %.3f)",
		a.rebuilds, len(w), a.lastDur.Round(time.Millisecond), drift)
}

// doRebuild performs the layout-appropriate re-sequenced rebuild.
func (a *resequencer) doRebuild(ctx context.Context, w map[string]float64) error {
	if fail := a.s.cfg.testRebuildFail; fail != nil {
		if err := fail(); err != nil {
			return err
		}
	}
	if a.s.dyn != nil {
		// Dynamic primary: the engine rebuilds in place with compaction's
		// failure containment; the weight vector sticks for later delta
		// builds and compactions.
		return a.s.dyn.Resequence(ctx, w)
	}
	// Static mode: build the re-sequenced index in the background off the
	// retained corpus, validate it like any other snapshot, and only then
	// publish it. Readers on the old index are unaffected at every step.
	ix, err := a.s.swap.Current().RebuildWithWeights(ctx, w)
	if err != nil {
		return err
	}
	if err := prepareSnapshot(&a.s.cfg, ix); err != nil {
		_ = ix.Close()
		return err
	}
	a.s.swap.Swap(ix)
	return nil
}

// adaptiveStat is the /stats adaptive section.
type adaptiveStat struct {
	Enabled        bool    `json:"enabled"`
	Drift          float64 `json:"drift"`
	DriftThreshold float64 `json:"drift_threshold"`
	// Samples is the decayed mass of the pattern-frequency table — how
	// much recent-workload signal the derived weights rest on.
	Samples  int64 `json:"samples"`
	Rebuilds int64 `json:"rebuilds"`
	Failures int64 `json:"failures"`
	// LastError is the most recent rebuild failure; empty after a success.
	LastError     string  `json:"last_error,omitempty"`
	LastRebuildMS float64 `json:"last_rebuild_ms,omitempty"`
	// Weights is the vector derived from the live mix; BuiltWeights is the
	// one the serving index was re-sequenced with (empty until the first
	// rebuild — the initial build is unweighted).
	Weights      map[string]float64 `json:"weights,omitempty"`
	BuiltWeights map[string]float64 `json:"built_weights,omitempty"`
}

func (a *resequencer) stat() *adaptiveStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &adaptiveStat{
		Enabled:        true,
		Drift:          a.drift,
		DriftThreshold: a.s.cfg.AdaptiveDrift,
		Samples:        a.samples,
		Rebuilds:       a.rebuilds,
		Failures:       a.failures,
		Weights:        a.weights,
		BuiltWeights:   a.builtWeights,
	}
	if a.lastErr != nil {
		st.LastError = a.lastErr.Error()
	}
	if a.lastDur > 0 {
		st.LastRebuildMS = float64(a.lastDur) / float64(time.Millisecond)
	}
	return st
}
