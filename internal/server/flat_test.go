package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xseq"
)

// buildFlatSnapshot writes an n-document flat snapshot to path (same corpus
// as buildSnapshot, so matchAll hits every document).
func buildFlatSnapshot(t *testing.T, path string, n int, keepDocs bool) {
	t.Helper()
	docs := make([]*xseq.Document, n)
	for i := range docs {
		d, err := xseq.ParseDocumentString(int32(i),
			fmt.Sprintf("<rec><title>t%d</title><city>boston</city></rec>", i))
		if err != nil {
			t.Fatal(err)
		}
		docs[i] = d
	}
	ix, err := xseq.Build(docs, xseq.Config{KeepDocuments: keepDocs})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFlatFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestServeFlatSnapshot: a static server over a flat snapshot answers
// queries, enforces ExpectLayout, and /stats carries the flat section with
// live resident/disk-access figures.
func TestServeFlatSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.flat")
	buildFlatSnapshot(t, path, 4, true)
	srv, err := New(Config{
		IndexPath:      path,
		ExpectLayout:   "flat",
		DefaultTimeout: 30 * time.Second,
		Logf:           silentLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	code, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK || qr.Count != 4 {
		t.Fatalf("query = %d, %+v", code, qr)
	}
	if code, qr, _ = getQuery(t, ts.URL, "q="+matchAll+"&verify=1"); code != 200 || qr.Count != 4 {
		t.Fatalf("verified query = %d, %+v", code, qr)
	}

	code, body := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats = %d: %s", code, body)
	}
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Flat == nil {
		t.Fatalf("/stats has no flat section: %s", body)
	}
	if st.Flat.MappedBytes == 0 || st.Flat.Pages == 0 {
		t.Fatalf("flat stats missing size figures: %+v", st.Flat)
	}
	if st.Flat.Reads == 0 || st.Flat.ResidentPages == 0 {
		t.Fatalf("queries did not register page touches: %+v", st.Flat)
	}
	if st.Flat.ResidentPages > st.Flat.Pages {
		t.Fatalf("resident %d pages exceeds mapped %d", st.Flat.ResidentPages, st.Flat.Pages)
	}
}

// TestExpectLayoutMismatch: a heap snapshot is refused at startup when the
// server expects flat, and vice versa.
func TestExpectLayoutMismatch(t *testing.T) {
	dir := t.TempDir()
	heap := filepath.Join(dir, "snap.idx")
	buildSnapshot(t, heap, 2, false)
	if _, err := New(Config{IndexPath: heap, ExpectLayout: "flat", Logf: silentLogf}); err == nil {
		t.Fatal("monolithic snapshot accepted with ExpectLayout=flat")
	}
	flat := filepath.Join(dir, "snap.flat")
	buildFlatSnapshot(t, flat, 2, false)
	if _, err := New(Config{IndexPath: flat, ExpectLayout: "monolithic", Logf: silentLogf}); err == nil {
		t.Fatal("flat snapshot accepted with ExpectLayout=monolithic")
	}
	if _, err := New(Config{IndexPath: flat, ExpectLayout: "zoned", Logf: silentLogf}); err == nil {
		t.Fatal("unknown ExpectLayout accepted")
	}
}

// TestFlatCorruptReloadKeepsServing: a corrupt replacement flat snapshot —
// including damage in the bulk sections the O(dictionary) open does not
// checksum — is rejected on reload and the old snapshot keeps answering.
func TestFlatCorruptReloadKeepsServing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.flat")
	buildFlatSnapshot(t, path, 3, false)
	srv, err := New(Config{
		IndexPath:      path,
		ExpectLayout:   "flat",
		DefaultTimeout: 30 * time.Second,
		Logf:           silentLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Replacement snapshots must arrive by atomic rename (SaveFlatFile's
	// contract): the serving snapshot mmaps the old inode, which an in-place
	// overwrite would mutate underneath it.
	replace := func(data []byte) {
		t.Helper()
		tmp := path + ".next"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(tmp, path); err != nil {
			t.Fatal(err)
		}
	}
	// Damage the tail — bulk payload far past the verified dictionary head.
	mut := bytes.Clone(blob)
	mut[len(mut)-8] ^= 0x01
	replace(mut)
	if err := srv.Reload(); err == nil {
		t.Fatal("Reload accepted a corrupt flat snapshot")
	}
	code, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK || qr.Count != 3 {
		t.Fatalf("after corrupt reload: query = %d, %+v", code, qr)
	}
	var hr healthResponse
	if _, body := get(t, ts.URL+"/healthz"); true {
		if err := json.Unmarshal(body, &hr); err != nil {
			t.Fatal(err)
		}
	}
	if hr.Status != "degraded" {
		t.Fatalf("healthz after failed reload = %q, want degraded", hr.Status)
	}

	// An intact rewrite reloads cleanly.
	replace(blob)
	if err := srv.Reload(); err != nil {
		t.Fatalf("intact reload failed: %v", err)
	}
	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 || qr.Count != 3 {
		t.Fatalf("after recovery: query = %d, %+v", code, qr)
	}
}
