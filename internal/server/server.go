// Package server implements xseqd's HTTP serving layer: an overload-safe
// query front end over a loaded index snapshot. The design goals, in
// order, are (1) bounded resource use under overload — admission control
// sheds excess load with 429 + Retry-After instead of queueing without
// bound; (2) bounded latency — every query runs under a deadline wired
// into the index's context-aware match loops; (3) zero-downtime operations
// — snapshots hot-reload with an atomic swap and a corrupt replacement
// file leaves the old snapshot serving; and (4) clean shutdown — drain
// stops admission, waits out in-flight queries, and cancels stragglers
// once the drain budget is spent.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xseq"
	"xseq/internal/query"
)

// Config tunes a Server. The zero value of every field means "use the
// default" noted on it; IndexPath is the only required field.
type Config struct {
	// IndexPath is the SaveFile snapshot to serve; Reload and WatchFile
	// re-read it.
	IndexPath string
	// MaxConcurrent bounds queries executing at once (default 32).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a slot (default 2*MaxConcurrent);
	// arrivals beyond slots+queue get 429.
	MaxQueue int
	// DefaultTimeout is the per-query deadline when the request names none
	// (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested ?timeout (default 60s).
	MaxTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// ExpectShards, when > 0, requires every snapshot — initial and
	// reloaded — to be sharded with exactly this many shards. A mismatched
	// initial snapshot fails startup; a mismatched replacement is rejected
	// on reload and the old snapshot keeps serving. 0 accepts any layout.
	ExpectShards int
	// QueryCacheEntries, when > 0, wraps every served snapshot — initial
	// and reloaded — in a result cache of this many entries. A reload swaps
	// in a fresh snapshot with a fresh empty cache, so stale results are
	// structurally impossible; hit/miss counters appear in /stats.
	QueryCacheEntries int
	// Chaos, when non-empty, injects per-route faults (latency, errors,
	// panics) for resilience drills; leave nil in production.
	Chaos Chaos
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)
}

func (c *Config) applyDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server serves /query, /stats, /healthz, and /readyz over an atomically
// swappable index snapshot. It implements http.Handler; the caller owns
// the http.Server (or httptest.Server) in front of it.
type Server struct {
	cfg     Config
	swap    *xseq.Swapper
	gate    *gate
	dr      *drainer
	handler http.Handler
	started time.Time

	// baseCtx is cancelled to abort every in-flight query once the drain
	// budget is exhausted.
	baseCtx context.Context
	cancel  context.CancelFunc

	queries     atomic.Int64
	queryErrors atomic.Int64

	mu             sync.Mutex
	loadedAt       time.Time
	snapMTime      time.Time // IndexPath mtime at last successful load
	snapSize       int64
	reloads        int
	reloadFailures int
	lastReloadErr  error

	// testHookAdmitted, when set, runs after admission with the query's
	// context — tests use it to hold slots deterministically.
	testHookAdmitted func(ctx context.Context)
}

// New loads the initial snapshot from cfg.IndexPath and returns a ready
// Server. A server never starts without a valid snapshot; later reload
// failures degrade instead.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if cfg.IndexPath == "" {
		return nil, fmt.Errorf("server: Config.IndexPath is required")
	}
	ix, err := xseq.LoadFile(cfg.IndexPath)
	if err != nil {
		return nil, fmt.Errorf("server: initial snapshot: %w", err)
	}
	if err := checkShards(cfg.ExpectShards, ix); err != nil {
		return nil, fmt.Errorf("server: initial snapshot: %w", err)
	}
	if cfg.QueryCacheEntries > 0 {
		ix.EnableQueryCache(cfg.QueryCacheEntries)
	}
	s := &Server{
		cfg:     cfg,
		swap:    xseq.NewSwapper(ix),
		gate:    newGate(cfg.MaxConcurrent, cfg.MaxQueue),
		dr:      &drainer{},
		started: time.Now(),
	}
	s.loadedAt = time.Now()
	s.snapMTime, s.snapSize = statFile(cfg.IndexPath)
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	s.handler = recoverMiddleware(cfg.Logf, chaosMiddleware(cfg.Chaos, mux))
	return s, nil
}

// ServeHTTP dispatches to the route handlers through the chaos (if armed)
// and panic-recovery middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Drain stops admitting queries (readyz flips to 503, /query answers 503)
// and waits for in-flight ones — executing and queued — to finish. If ctx
// expires first, every in-flight query's context is cancelled; the match
// loops poll their contexts, so stragglers unwind promptly and Drain still
// waits for them before returning ctx.Err(). A nil error means everything
// completed within the budget.
func (s *Server) Drain(ctx context.Context) error {
	zero := s.dr.begin()
	select {
	case <-zero:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-zero
		return ctx.Err()
	}
}

// queryResponse is the /query success body.
type queryResponse struct {
	Query     string  `json:"query"`
	Count     int     `json:"count"`
	IDs       []int32 `json:"ids"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	params := r.URL.Query()
	q := params.Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter q")
		return
	}
	// Pre-parse so malformed queries are the client's 400, not a 500 —
	// the facade re-parses, but parsing is microseconds against a match.
	if _, err := query.Parse(q); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := 0
	if v := params.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", v))
			return
		}
		limit = n
	}
	verify := params.Get("verify") == "1" || params.Get("verify") == "true"
	timeout := s.cfg.DefaultTimeout
	if v := params.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad timeout %q", v))
			return
		}
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		timeout = d
	}

	if !s.dr.enter() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.dr.exit()

	// The query context ends at the first of: client disconnect, the
	// per-request deadline, or the server's drain-budget cancellation.
	ctx, cancelReq := context.WithTimeout(r.Context(), timeout)
	defer cancelReq()
	stopAfter := context.AfterFunc(s.baseCtx, cancelReq)
	defer stopAfter()

	if err := s.gate.acquire(ctx); err != nil {
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		// Context ended while queued: deadline or disconnect/drain.
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission")
		} else {
			writeError(w, http.StatusServiceUnavailable, "cancelled while queued for admission")
		}
		return
	}
	defer s.gate.release()
	if hook := s.testHookAdmitted; hook != nil {
		hook(ctx)
	}

	ix := s.swap.Current()
	start := time.Now()
	var ids []int32
	var err error
	switch {
	case verify:
		ids, err = ix.QueryVerifiedContext(ctx, q)
	case limit > 0:
		ids, err = ix.QueryLimitContext(ctx, q, limit)
	default:
		ids, err = ix.QueryContext(ctx, q)
	}
	elapsed := time.Since(start)
	s.queries.Add(1)
	if err != nil {
		s.queryErrors.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout,
				fmt.Sprintf("query deadline exceeded after %v", elapsed.Round(time.Millisecond)))
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "query cancelled (drain or client disconnect)")
		case strings.Contains(err.Error(), "KeepDocuments"):
			writeError(w, http.StatusBadRequest, "verify=1 requires a snapshot built with KeepDocuments")
		default:
			s.cfg.Logf("server: query %q failed: %v", q, err)
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	if ids == nil {
		ids = []int32{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Query:     q,
		Count:     len(ids),
		IDs:       ids,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
}

// statsResponse is the /stats body: index shape, admission counters, and
// reload history.
type statsResponse struct {
	Index struct {
		Documents          int   `json:"documents"`
		IndexNodes         int   `json:"index_nodes"`
		Links              int   `json:"links"`
		EstimatedDiskBytes int64 `json:"estimated_disk_bytes"`
		// Shards is 0 when the snapshot is monolithic; PerShard then stays
		// empty.
		Shards   int         `json:"shards"`
		PerShard []shardStat `json:"per_shard,omitempty"`
	} `json:"index"`
	// QueryCache is present only when the server runs with
	// Config.QueryCacheEntries > 0.
	QueryCache *queryCacheStat `json:"query_cache,omitempty"`
	Admission  struct {
		MaxConcurrent int   `json:"max_concurrent"`
		MaxQueue      int   `json:"max_queue"`
		Active        int64 `json:"active"`
		Waiting       int64 `json:"waiting"`
		Admitted      int64 `json:"admitted"`
		Rejected      int64 `json:"rejected"`
	} `json:"admission"`
	Snapshot snapshotStatus `json:"snapshot"`
	Queries  int64          `json:"queries"`
	Errors   int64          `json:"query_errors"`
	UptimeMS float64        `json:"uptime_ms"`
	Draining bool           `json:"draining"`
}

// shardStat is one shard's slice of the /stats index section.
type shardStat struct {
	Documents  int `json:"documents"`
	IndexNodes int `json:"index_nodes"`
	Links      int `json:"links"`
}

// queryCacheStat is the /stats query-cache section.
type queryCacheStat struct {
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// checkShards enforces Config.ExpectShards against a loaded snapshot.
func checkShards(expect int, ix *xseq.Index) error {
	if expect <= 0 {
		return nil
	}
	if got := ix.Stats().Shards; got != expect {
		if got == 0 {
			return fmt.Errorf("snapshot is monolithic, want %d shards", expect)
		}
		return fmt.Errorf("snapshot has %d shards, want %d", got, expect)
	}
	return nil
}

type snapshotStatus struct {
	Path            string    `json:"path"`
	LoadedAt        time.Time `json:"loaded_at"`
	Reloads         int       `json:"reloads"`
	ReloadFailures  int       `json:"reload_failures"`
	LastReloadError string    `json:"last_reload_error,omitempty"`
}

func (s *Server) snapshotStatus() snapshotStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := snapshotStatus{
		Path:           s.cfg.IndexPath,
		LoadedAt:       s.loadedAt,
		Reloads:        s.reloads,
		ReloadFailures: s.reloadFailures,
	}
	if s.lastReloadErr != nil {
		st.LastReloadError = s.lastReloadErr.Error()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	st := s.swap.Current().Stats()
	resp.Index.Documents = st.Documents
	resp.Index.IndexNodes = st.IndexNodes
	resp.Index.Links = st.Links
	resp.Index.EstimatedDiskBytes = st.EstimatedDiskBytes
	resp.Index.Shards = st.Shards
	for _, ps := range st.PerShard {
		resp.Index.PerShard = append(resp.Index.PerShard, shardStat{
			Documents:  ps.Documents,
			IndexNodes: ps.IndexNodes,
			Links:      ps.Links,
		})
	}
	if qc := st.QueryCache; qc != nil {
		resp.QueryCache = &queryCacheStat{
			Capacity:  qc.Capacity,
			Entries:   qc.Entries,
			Hits:      qc.Hits,
			Misses:    qc.Misses,
			Evictions: qc.Evictions,
		}
	}
	resp.Admission.MaxConcurrent = s.cfg.MaxConcurrent
	resp.Admission.MaxQueue = s.cfg.MaxQueue
	resp.Admission.Active = s.gate.active.Load()
	resp.Admission.Waiting = s.gate.waiting.Load()
	resp.Admission.Admitted = s.gate.admitted.Load()
	resp.Admission.Rejected = s.gate.rejected.Load()
	resp.Snapshot = s.snapshotStatus()
	resp.Queries = s.queries.Load()
	resp.Errors = s.queryErrors.Load()
	resp.UptimeMS = float64(time.Since(s.started)) / float64(time.Millisecond)
	resp.Draining = s.dr.isDraining()
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the /healthz body. The endpoint is liveness plus
// degradation detail: it answers 200 as long as the process can serve at
// all, with status "degraded" (and the error) when the last snapshot
// reload failed — the old snapshot keeps serving, mirroring the
// keep-serving-on-failure discipline of Dynamic compaction.
type healthResponse struct {
	Status    string         `json:"status"` // "ok" | "degraded"
	Documents int            `json:"documents"`
	Snapshot  snapshotStatus `json:"snapshot"`
	Draining  bool           `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:    "ok",
		Documents: s.swap.Current().Stats().Documents,
		Snapshot:  s.snapshotStatus(),
		Draining:  s.dr.isDraining(),
	}
	if resp.Snapshot.LastReloadError != "" {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz reports readiness for traffic: 503 while draining (load
// balancers should stop routing here), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.dr.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// errorResponse is the JSON error body every non-2xx response carries.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
