// Package server implements xseqd's HTTP serving layer: an overload-safe
// query front end over a loaded index snapshot. The design goals, in
// order, are (1) bounded resource use under overload — admission control
// sheds excess load with 429 + Retry-After instead of queueing without
// bound; (2) bounded latency — every query runs under a deadline wired
// into the index's context-aware match loops; (3) zero-downtime operations
// — snapshots hot-reload with an atomic swap and a corrupt replacement
// file leaves the old snapshot serving; and (4) clean shutdown — drain
// stops admission, waits out in-flight queries, and cancels stragglers
// once the drain budget is spent.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"xseq"
	"xseq/internal/adapt"
	"xseq/internal/query"
	"xseq/internal/telemetry"
)

// Config tunes a Server. The zero value of every field means "use the
// default" noted on it. Exactly one serving mode must be selected:
// IndexPath (static snapshot), WALPath (durable dynamic primary), or
// FollowURL (replica tailing a primary; may combine with WALPath for a
// durable follower).
type Config struct {
	// IndexPath is the SaveFile snapshot to serve; Reload and WatchFile
	// re-read it. Mutually exclusive with WALPath and FollowURL.
	IndexPath string
	// WALPath makes the server a durable dynamic primary: it serves an
	// updatable index recovered from (and logging to) the write-ahead log
	// at this path, accepts POST /insert, and streams the log to followers
	// on GET /wal.
	WALPath string
	// WALStrict refuses to start on a torn or corrupt WAL tail instead of
	// truncating at the tear; the startup error matches *xseq.WALCorruptError.
	WALStrict bool
	// WALSyncWindow batches WAL fsyncs over this group-commit window
	// (0: fsync per insert, shared between concurrent inserters).
	WALSyncWindow time.Duration
	// CheckpointEveryEntries and CheckpointEveryBytes arm the automatic
	// checkpoint policy on a WALPath server: once the log holds at least
	// this many entries (or bytes), a background round compacts the index,
	// snapshots it to CheckpointPath, and rotates the log. Either bound
	// fires the policy; both zero leaves it off. Requires WALPath.
	CheckpointEveryEntries int
	CheckpointEveryBytes   int64
	// CheckpointPath is where checkpoints are written and served from
	// (GET /snapshot), and where a restart — primary or durable follower —
	// looks for a snapshot to seed the index before WAL replay. Defaults to
	// WALPath + ".ckpt" when the checkpoint policy is armed or the server
	// is a durable follower.
	CheckpointPath string
	// CheckpointPoll is how often the checkpoint policy samples the WAL
	// (default 1s).
	CheckpointPoll time.Duration
	// SnapshotMaxConcurrent bounds concurrent GET /snapshot downloads
	// (default 2); excess requests get 429 + Retry-After.
	SnapshotMaxConcurrent int
	// FollowURL makes the server a read-only follower of the primary at
	// this base URL (e.g. "http://primary:8080"): it tails GET /wal,
	// applies every entry, answers queries, and rejects POST /insert with
	// 403. With WALPath also set the follower persists what it applies and
	// resumes from its own log after a restart.
	FollowURL string
	// FollowMinBackoff and FollowMaxBackoff bound the exponential backoff
	// (with jitter) between failed attempts to reach the primary
	// (defaults 100ms and 5s). The follower keeps serving reads while the
	// primary is unreachable; /healthz reports degraded with the error.
	FollowMinBackoff time.Duration
	FollowMaxBackoff time.Duration
	// WALPollWait caps how long GET /wal may long-poll for entries beyond
	// the head before answering empty (default 25s), and how long this
	// server's own follower loop asks a primary to hold.
	WALPollWait time.Duration
	// MaxConcurrent bounds queries executing at once (default 32).
	MaxConcurrent int
	// MaxQueue bounds queries waiting for a slot (default 2*MaxConcurrent);
	// arrivals beyond slots+queue get 429.
	MaxQueue int
	// DefaultTimeout is the per-query deadline when the request names none
	// (default 5s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested ?timeout (default 60s).
	MaxTimeout time.Duration
	// RetryAfter is the hint sent with 429 responses (default 1s).
	RetryAfter time.Duration
	// ExpectShards, when > 0, requires every snapshot — initial and
	// reloaded — to be sharded with exactly this many shards. A mismatched
	// initial snapshot fails startup; a mismatched replacement is rejected
	// on reload and the old snapshot keeps serving. 0 accepts any layout.
	ExpectShards int
	// ExpectLayout, when non-empty, requires every snapshot — initial and
	// reloaded — to have this storage layout: "monolithic", "sharded", or
	// "flat". Like ExpectShards, a mismatched initial snapshot fails
	// startup and a mismatched replacement is rejected on reload. Flat
	// snapshots additionally get page-level accounting attached, so /stats
	// reports resident-vs-mapped bytes and disk accesses.
	ExpectLayout string
	// QueryCacheEntries, when > 0, wraps every served snapshot — initial
	// and reloaded — in a result cache of this many entries. A reload swaps
	// in a fresh snapshot with a fresh empty cache, so stale results are
	// structurally impossible; hit/miss counters appear in /stats.
	QueryCacheEntries int
	// Chaos, when non-empty, injects per-route faults (latency, errors,
	// panics) for resilience drills; leave nil in production.
	Chaos Chaos
	// TraceLog, when non-nil, receives one structured JSON line per
	// completed query: trace id, per-shard latency spans, fan-out/merge
	// split, kernel instance/order counts, and cache hit/miss. Writes are
	// serialized by the server; the writer itself need not be safe for
	// concurrent use. xseqd wires -trace-log here.
	TraceLog io.Writer
	// PatternTopK bounds the per-pattern query-frequency table surfaced in
	// /stats (default 64 patterns, space-saving eviction).
	PatternTopK int
	// Adaptive turns on online adaptive resequencing: a background loop
	// derives the paper's Eq 6 weight vector w(C) from the live pattern
	// table, and when the serving index's sequencing has drifted past
	// AdaptiveDrift it rebuilds the index re-sequenced around the mix and
	// hot-swaps it in — reads keep serving the old index throughout.
	// Static mode requires a snapshot built with KeepDocuments (the corpus
	// to rebuild from); incompatible with FollowURL (a follower's index is
	// the primary's log, not its own to re-sequence).
	Adaptive bool
	// AdaptivePoll is how often the loop samples the pattern table
	// (default 2s).
	AdaptivePoll time.Duration
	// AdaptiveDrift is the drift threshold in [0, 1] that triggers a
	// rebuild (default 0.25).
	AdaptiveDrift float64
	// AdaptiveMinInterval rate-limits successful rebuilds (default 30s).
	AdaptiveMinInterval time.Duration
	// AdaptiveMinSamples is the minimum decayed mass the pattern table must
	// hold before a rebuild may trigger (default 32) — protects against
	// tuning to a handful of stray queries.
	AdaptiveMinSamples int
	// AdaptiveBoost scales the hottest path's weight to 1+boost
	// (default adapt.DefaultBoost).
	AdaptiveBoost float64
	// AdaptiveDecay geometrically ages the pattern table each poll so the
	// weights track the recent mix (default 0.98; must be in (0, 1)).
	AdaptiveDecay float64
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	// testSnapshotBody, when set, wraps the snapshot download stream a
	// re-seeding follower reads — the chaos tests' corruption injection
	// point. Called once per download attempt.
	testSnapshotBody func(io.Reader) io.Reader
	// testRebuildFail, when set, runs before every adaptive rebuild; a
	// non-nil return fails the rebuild — the failure-containment tests'
	// injection point.
	testRebuildFail func() error
}

func (c *Config) applyDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.FollowMinBackoff <= 0 {
		c.FollowMinBackoff = 100 * time.Millisecond
	}
	if c.FollowMaxBackoff <= 0 {
		c.FollowMaxBackoff = 5 * time.Second
	}
	if c.FollowMaxBackoff < c.FollowMinBackoff {
		c.FollowMaxBackoff = c.FollowMinBackoff
	}
	if c.WALPollWait <= 0 {
		c.WALPollWait = 25 * time.Second
	}
	if c.CheckpointPoll <= 0 {
		c.CheckpointPoll = time.Second
	}
	if c.SnapshotMaxConcurrent <= 0 {
		c.SnapshotMaxConcurrent = 2
	}
	if c.AdaptivePoll <= 0 {
		c.AdaptivePoll = 2 * time.Second
	}
	if c.AdaptiveDrift <= 0 {
		c.AdaptiveDrift = 0.25
	}
	if c.AdaptiveMinInterval <= 0 {
		c.AdaptiveMinInterval = 30 * time.Second
	}
	if c.AdaptiveMinSamples <= 0 {
		c.AdaptiveMinSamples = 32
	}
	if c.AdaptiveBoost <= 0 {
		c.AdaptiveBoost = adapt.DefaultBoost
	}
	if c.AdaptiveDecay <= 0 || c.AdaptiveDecay >= 1 {
		c.AdaptiveDecay = 0.98
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server serves /query, /stats, /healthz, and /readyz over an atomically
// swappable index snapshot. It implements http.Handler; the caller owns
// the http.Server (or httptest.Server) in front of it.
type Server struct {
	cfg     Config
	swap    *xseq.Swapper      // static mode only
	dyn     *xseq.DynamicIndex // primary and follower modes only
	repl    *replicator        // follower mode only
	ckpt    *checkpointer      // checkpoint policy, when armed
	adapt   *resequencer       // adaptive resequencing, when enabled
	snapSem chan struct{}      // bounds concurrent /snapshot downloads
	gate    *gate
	dr      *drainer
	handler http.Handler
	started time.Time

	// baseCtx is cancelled to abort every in-flight query once the drain
	// budget is exhausted (and to stop the follower's replication loop).
	baseCtx context.Context
	cancel  context.CancelFunc

	// Telemetry: the registry every metric surfaces through (/metrics and
	// the computed /stats sections read the same state). The four counters
	// are registry-native; latency histograms register lazily per layout.
	reg         *telemetry.Registry
	queries     *telemetry.Counter
	queryErrors *telemetry.Counter
	inserts     *telemetry.Counter
	insertErrs  *telemetry.Counter
	shardLat    *telemetry.Histogram
	patterns    *telemetry.TopK
	latMu       sync.Mutex
	latency     map[string]*telemetry.Histogram
	traceMu     sync.Mutex // serializes Config.TraceLog writes

	mu             sync.Mutex
	loadedAt       time.Time
	snapMTime      time.Time // IndexPath mtime at last successful load
	snapSize       int64
	reloads        int
	reloadFailures int
	lastReloadErr  error

	// testHookAdmitted, when set, runs after admission with the query's
	// context — tests use it to hold slots deterministically.
	testHookAdmitted func(ctx context.Context)
}

// New builds a Server in the mode cfg selects: a static snapshot server
// (IndexPath), a durable dynamic primary (WALPath), or a follower replica
// (FollowURL). A static server never starts without a valid snapshot (later
// reload failures degrade instead); a primary never starts over a WAL it
// cannot replay.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if cfg.IndexPath != "" && (cfg.WALPath != "" || cfg.FollowURL != "") {
		return nil, fmt.Errorf("server: Config.IndexPath is mutually exclusive with WALPath/FollowURL")
	}
	switch cfg.ExpectLayout {
	case "", "monolithic", "sharded", "flat":
	default:
		return nil, fmt.Errorf("server: Config.ExpectLayout %q (want monolithic, sharded, or flat)", cfg.ExpectLayout)
	}
	if cfg.ExpectLayout != "" && (cfg.WALPath != "" || cfg.FollowURL != "") {
		return nil, fmt.Errorf("server: Config.ExpectLayout applies to static snapshot mode only")
	}
	if cfg.Adaptive && cfg.FollowURL != "" {
		return nil, fmt.Errorf("server: Config.Adaptive is incompatible with FollowURL (a follower serves the primary's sequencing)")
	}
	ckptArmed := cfg.CheckpointEveryEntries > 0 || cfg.CheckpointEveryBytes > 0
	if ckptArmed && cfg.WALPath == "" {
		return nil, fmt.Errorf("server: the checkpoint policy requires Config.WALPath (nothing to rotate without a log)")
	}
	if cfg.CheckpointPath != "" && cfg.WALPath == "" && cfg.FollowURL == "" {
		return nil, fmt.Errorf("server: Config.CheckpointPath requires WALPath or FollowURL")
	}
	if cfg.CheckpointPath == "" && cfg.WALPath != "" && (ckptArmed || cfg.FollowURL != "") {
		// Armed primaries need somewhere to write; durable followers need
		// somewhere to keep a downloaded seed across restarts.
		cfg.CheckpointPath = cfg.WALPath + ".ckpt"
	}
	s := &Server{
		cfg:     cfg,
		gate:    newGate(cfg.MaxConcurrent, cfg.MaxQueue),
		dr:      &drainer{},
		started: time.Now(),
	}
	s.initTelemetry()
	switch {
	case cfg.FollowURL != "" || cfg.WALPath != "":
		// A checkpoint on disk seeds the index before WAL replay: load it,
		// start from its corpus, and let replay supply everything newer.
		// Entries the snapshot already covers are skipped during replay.
		var seed []*xseq.Document
		var seedErr error
		if cfg.CheckpointPath != "" {
			if _, statErr := os.Stat(cfg.CheckpointPath); statErr == nil {
				ix, err := xseq.LoadFile(cfg.CheckpointPath)
				if err == nil {
					seed, err = ix.StoredDocuments()
				}
				if err != nil {
					seedErr = fmt.Errorf("checkpoint %s: %w", cfg.CheckpointPath, err)
				} else {
					cfg.Logf("server: seeded %d documents from checkpoint %s", len(seed), cfg.CheckpointPath)
				}
			}
		}
		dyn, err := xseq.BuildDynamic(seed, xseq.Config{
			Shards:            cfg.ExpectShards,
			QueryCacheEntries: cfg.QueryCacheEntries,
			KeepDocuments:     ckptArmed || cfg.CheckpointPath != "",
			WALPath:           cfg.WALPath,
			WALStrict:         cfg.WALStrict,
			WALSyncWindow:     cfg.WALSyncWindow,
		}, 0)
		if err != nil {
			return nil, fmt.Errorf("server: dynamic index: %w", err)
		}
		if seedErr != nil {
			if st := dyn.WALStats(); st != nil && st.BaseSeq > 0 {
				// The log was rotated against that checkpoint: replay alone
				// cannot reconstruct the entries the rotation dropped.
				// Starting anyway would silently serve a truncated corpus.
				dyn.Close()
				return nil, fmt.Errorf("server: wal %s was rotated against an unreadable checkpoint: %w", cfg.WALPath, seedErr)
			}
			// The log still holds history from seq 1; replay recovered
			// everything and the bad checkpoint will be overwritten.
			cfg.Logf("server: ignoring unreadable checkpoint (wal replay covers full history): %v", seedErr)
		}
		s.dyn = dyn
		if st := dyn.WALStats(); st != nil && st.ReplayedEntries > 0 {
			cfg.Logf("server: wal %s replayed %d entries to seq %d (truncated %d torn bytes)",
				st.Path, st.ReplayedEntries, st.LastSeq, st.ReplayTruncatedBytes)
		}
		if ckptArmed {
			s.ckpt = newCheckpointer(s)
			if seed != nil && seedErr == nil {
				if st := dyn.WALStats(); st != nil {
					s.ckpt.seed(cfg.CheckpointPath, st.BaseSeq)
				}
			}
		}
		s.snapSem = make(chan struct{}, cfg.SnapshotMaxConcurrent)
	default:
		if cfg.IndexPath == "" {
			return nil, fmt.Errorf("server: one of Config.IndexPath, WALPath, FollowURL is required")
		}
		ix, err := xseq.LoadFile(cfg.IndexPath)
		if err != nil {
			return nil, fmt.Errorf("server: initial snapshot: %w", err)
		}
		if err := prepareSnapshot(&cfg, ix); err != nil {
			_ = ix.Close()
			return nil, fmt.Errorf("server: initial snapshot: %w", err)
		}
		if cfg.Adaptive {
			// Re-sequenced rebuilds need the corpus: fail fast at startup
			// rather than on the first triggered rebuild.
			if _, err := ix.StoredDocuments(); err != nil {
				_ = ix.Close()
				return nil, fmt.Errorf("server: Config.Adaptive needs a snapshot built with KeepDocuments: %w", err)
			}
		}
		s.swap = xseq.NewSwapper(ix)
		s.loadedAt = time.Now()
		s.snapMTime, s.snapSize = statFile(cfg.IndexPath)
	}
	s.baseCtx, s.cancel = context.WithCancel(context.Background())
	if cfg.FollowURL != "" {
		s.repl = newReplicator(s)
		go s.repl.run(s.baseCtx)
	}
	if s.ckpt != nil {
		go s.ckpt.run(s.baseCtx)
	}
	if cfg.Adaptive {
		s.adapt = newResequencer(s)
		go s.adapt.run(s.baseCtx)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/wal", s.handleWAL)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	s.handler = recoverMiddleware(cfg.Logf, chaosMiddleware(cfg.Chaos, mux))
	return s, nil
}

// Close releases the server's background resources: the follower's
// replication loop and the dynamic index's write-ahead log. Queries already
// admitted finish; call Drain first for a graceful stop. Idempotent.
func (s *Server) Close() error {
	s.cancel()
	if s.repl != nil {
		s.repl.wait()
	}
	if s.ckpt != nil {
		s.ckpt.wait()
	}
	if s.adapt != nil {
		s.adapt.wait()
	}
	if s.dyn != nil {
		return s.dyn.Close()
	}
	return nil
}

// ServeHTTP dispatches to the route handlers through the chaos (if armed)
// and panic-recovery middleware.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// Drain stops admitting queries (readyz flips to 503, /query answers 503)
// and waits for in-flight ones — executing and queued — to finish. If ctx
// expires first, every in-flight query's context is cancelled; the match
// loops poll their contexts, so stragglers unwind promptly and Drain still
// waits for them before returning ctx.Err(). A nil error means everything
// completed within the budget.
func (s *Server) Drain(ctx context.Context) error {
	zero := s.dr.begin()
	select {
	case <-zero:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-zero
		return ctx.Err()
	}
}

// queryResponse is the /query success body.
type queryResponse struct {
	Query     string  `json:"query"`
	Count     int     `json:"count"`
	IDs       []int32 `json:"ids"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	params := r.URL.Query()
	q := params.Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter q")
		return
	}
	// Pre-parse so malformed queries are the client's 400, not a 500 —
	// the facade re-parses, but parsing is microseconds against a match.
	// The parsed pattern's canonical String() keys the frequency table.
	pat, err := query.Parse(q)
	if err != nil {
		s.queryErrors.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := 0
	if v := params.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", v))
			return
		}
		limit = n
	}
	verify := params.Get("verify") == "1" || params.Get("verify") == "true"
	timeout, terr := requestTimeout(params, s.cfg)
	if terr != nil {
		writeError(w, http.StatusBadRequest, terr.Error())
		return
	}

	if !s.dr.enter() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.dr.exit()

	// The query context ends at the first of: client disconnect, the
	// per-request deadline, or the server's drain-budget cancellation.
	ctx, cancelReq := context.WithTimeout(r.Context(), timeout)
	defer cancelReq()
	stopAfter := context.AfterFunc(s.baseCtx, cancelReq)
	defer stopAfter()

	if err := s.gate.acquire(ctx); err != nil {
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		// Context ended while queued: deadline or disconnect/drain.
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission")
		} else {
			writeError(w, http.StatusServiceUnavailable, "cancelled while queued for admission")
		}
		return
	}
	defer s.gate.release()
	if hook := s.testHookAdmitted; hook != nil {
		hook(ctx)
	}

	// Every query runs traced: the pooled trace feeds the latency
	// histograms, the per-shard span histogram, and the pattern table
	// whether or not a trace log is armed — a pool fetch plus a context
	// value is too cheap to gate behind a flag.
	ix := s.index()
	layout := s.layoutName()
	tr := telemetry.GetTrace()
	qctx := telemetry.WithTrace(ctx, tr)
	start := time.Now()
	var ids []int32
	switch {
	case verify:
		ids, err = ix.QueryVerifiedContext(qctx, q)
	case limit > 0:
		ids, err = ix.QueryLimitContext(qctx, q, limit)
	default:
		ids, err = ix.QueryContext(qctx, q)
	}
	elapsed := time.Since(start)
	s.queries.Add(1)
	status := http.StatusOK
	var errMsg string
	if err != nil {
		s.queryErrors.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			errMsg = fmt.Sprintf("query deadline exceeded after %v", elapsed.Round(time.Millisecond))
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
			errMsg = "query cancelled (drain or client disconnect)"
		case strings.Contains(err.Error(), "KeepDocuments"):
			status = http.StatusBadRequest
			errMsg = "verify=1 requires a snapshot built with KeepDocuments"
		default:
			s.cfg.Logf("server: query %q failed: %v", q, err)
			status = http.StatusInternalServerError
			errMsg = err.Error()
		}
	}
	s.observeQuery(pat, q, layout, elapsed, tr, status, len(ids))
	telemetry.PutTrace(tr)
	if err != nil {
		writeError(w, status, errMsg)
		return
	}
	if ids == nil {
		ids = []int32{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Query:     q,
		Count:     len(ids),
		IDs:       ids,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	})
}

// querier is the query surface every serving mode exposes: a static
// *xseq.Index snapshot or a dynamic *xseq.DynamicIndex.
type querier interface {
	QueryContext(ctx context.Context, q string) ([]int32, error)
	QueryVerifiedContext(ctx context.Context, q string) ([]int32, error)
	QueryLimitContext(ctx context.Context, q string, max int) ([]int32, error)
}

// index returns the serving index for this request: the dynamic index in
// primary/follower mode, the current snapshot otherwise.
func (s *Server) index() querier {
	if s.dyn != nil {
		return s.dyn
	}
	return s.swap.Current()
}

// indexStats snapshots the serving index's shape regardless of mode.
func (s *Server) indexStats() xseq.Stats {
	if s.dyn != nil {
		return s.dyn.Stats()
	}
	return s.swap.Current().Stats()
}

// mode names the serving mode for stats and health bodies.
func (s *Server) mode() string {
	switch {
	case s.repl != nil:
		return "follower"
	case s.dyn != nil:
		return "primary"
	default:
		return "static"
	}
}

// statsResponse is the /stats body: index shape, admission counters, and
// reload history.
type statsResponse struct {
	Mode  string `json:"mode"` // "static" | "primary" | "follower"
	Index struct {
		Documents          int   `json:"documents"`
		IndexNodes         int   `json:"index_nodes"`
		Links              int   `json:"links"`
		EstimatedDiskBytes int64 `json:"estimated_disk_bytes"`
		// Shards is 0 when the snapshot is monolithic; PerShard then stays
		// empty.
		Shards   int         `json:"shards"`
		PerShard []shardStat `json:"per_shard,omitempty"`
	} `json:"index"`
	// Flat is present when the serving snapshot uses the flat layout: the
	// real storage figures — how much of the mapped file queries have
	// actually touched, and the page-level disk-access count.
	Flat *flatStat `json:"flat,omitempty"`
	// QueryCache is present only when the server runs with
	// Config.QueryCacheEntries > 0.
	QueryCache *queryCacheStat `json:"query_cache,omitempty"`
	Admission  struct {
		MaxConcurrent int   `json:"max_concurrent"`
		MaxQueue      int   `json:"max_queue"`
		Active        int64 `json:"active"`
		Waiting       int64 `json:"waiting"`
		Admitted      int64 `json:"admitted"`
		Rejected      int64 `json:"rejected"`
	} `json:"admission"`
	// Snapshot is present in static mode only.
	Snapshot *snapshotStatus `json:"snapshot,omitempty"`
	// Ingest is present in primary and follower modes.
	Ingest *ingestStat `json:"ingest,omitempty"`
	// Durability is present whenever the index runs over a write-ahead log.
	Durability *durabilityStat `json:"durability,omitempty"`
	// Checkpoint is present when the automatic checkpoint policy is armed.
	Checkpoint *checkpointStat `json:"checkpoint,omitempty"`
	// Replication is present in follower mode.
	Replication *replicationStatus `json:"replication,omitempty"`
	// Adaptive is present when online adaptive resequencing is enabled:
	// the live weight vector, the drift against the serving index's
	// sequencing, and the rebuild counters.
	Adaptive *adaptiveStat `json:"adaptive,omitempty"`
	// Latency reports per-layout query latency percentiles computed from
	// the registry's histograms; present once a query has been served.
	Latency map[string]latencyStat `json:"latency,omitempty"`
	// QueryPatterns is the bounded top-K table of canonical pattern
	// frequencies — the observed-workload input the paper's §5 adaptive
	// re-weighting consumes.
	QueryPatterns []telemetry.PatternCount `json:"query_patterns,omitempty"`
	Queries       int64                    `json:"queries"`
	Errors        int64                    `json:"query_errors"`
	UptimeMS      float64                  `json:"uptime_ms"`
	Draining      bool                     `json:"draining"`
}

// ingestStat is the /stats section for dynamic modes: insert counters and
// the compaction pipeline's condition.
type ingestStat struct {
	Inserts             int64  `json:"inserts"`
	InsertErrors        int64  `json:"insert_errors"`
	AppliedSeq          uint64 `json:"applied_seq"`
	Pending             int    `json:"pending"`
	Compactions         int    `json:"compactions"`
	FailedCompactions   int    `json:"failed_compactions"`
	LastCompactionError string `json:"last_compaction_error,omitempty"`
}

// durabilityStat is the /stats write-ahead-log section.
type durabilityStat struct {
	Path                 string `json:"path"`
	SizeBytes            int64  `json:"size_bytes"`
	Entries              int    `json:"entries"`
	BaseSeq              uint64 `json:"base_seq"`
	LastSeq              uint64 `json:"last_seq"`
	SyncedSeq            uint64 `json:"synced_seq"`
	Appends              int64  `json:"appends"`
	Syncs                int64  `json:"syncs"`
	Rotations            int64  `json:"rotations"`
	ReplayedEntries      int    `json:"replayed_entries"`
	ReplayTruncatedBytes int64  `json:"replay_truncated_bytes"`
	LastError            string `json:"last_error,omitempty"`
}

// ingestStat collects the dynamic index's insert/compaction condition, nil
// in static mode.
func (s *Server) ingestStat() *ingestStat {
	if s.dyn == nil {
		return nil
	}
	h := s.dyn.Health()
	return &ingestStat{
		Inserts:             s.inserts.Load(),
		InsertErrors:        s.insertErrs.Load(),
		AppliedSeq:          s.dyn.AppliedSeq(),
		Pending:             h.Pending,
		Compactions:         h.Compactions,
		FailedCompactions:   h.FailedCompactions,
		LastCompactionError: h.LastCompactionError,
	}
}

// durabilityStat converts the WAL's counters, nil without a log.
func (s *Server) durabilityStat() *durabilityStat {
	if s.dyn == nil {
		return nil
	}
	st := s.dyn.WALStats()
	if st == nil {
		return nil
	}
	return &durabilityStat{
		Path:                 st.Path,
		SizeBytes:            st.SizeBytes,
		Entries:              st.Entries,
		BaseSeq:              st.BaseSeq,
		LastSeq:              st.LastSeq,
		SyncedSeq:            st.SyncedSeq,
		Appends:              st.Appends,
		Syncs:                st.Syncs,
		Rotations:            st.Rotations,
		ReplayedEntries:      st.ReplayedEntries,
		ReplayTruncatedBytes: st.ReplayTruncatedBytes,
		LastError:            st.LastError,
	}
}

// replicationStat snapshots the follower's state, nil otherwise.
func (s *Server) replicationStat() *replicationStatus {
	if s.repl == nil {
		return nil
	}
	return s.repl.status()
}

// shardStat is one shard's slice of the /stats index section.
type shardStat struct {
	Documents  int `json:"documents"`
	IndexNodes int `json:"index_nodes"`
	Links      int `json:"links"`
}

// flatStat is the /stats flat-layout section.
type flatStat struct {
	MappedBytes   int64 `json:"mapped_bytes"`
	Pages         int64 `json:"pages"`
	Mmapped       bool  `json:"mmapped"`
	ResidentPages int64 `json:"resident_pages"`
	ResidentBytes int64 `json:"resident_bytes"`
	Reads         int64 `json:"reads"`
	Hits          int64 `json:"hits"`
	DiskAccesses  int64 `json:"disk_accesses"`
}

// queryCacheStat is the /stats query-cache section.
type queryCacheStat struct {
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// checkShards enforces Config.ExpectShards against a loaded snapshot.
func checkShards(expect int, ix *xseq.Index) error {
	if expect <= 0 {
		return nil
	}
	if got := ix.Stats().Shards; got != expect {
		if got == 0 {
			return fmt.Errorf("snapshot is monolithic, want %d shards", expect)
		}
		return fmt.Errorf("snapshot has %d shards, want %d", got, expect)
	}
	return nil
}

// checkLayout enforces Config.ExpectLayout against a loaded snapshot.
func checkLayout(expect string, ix *xseq.Index) error {
	if expect == "" {
		return nil
	}
	if got := ix.Layout(); got != expect {
		return fmt.Errorf("snapshot layout is %s, want %s", got, expect)
	}
	return nil
}

// prepareSnapshot validates a freshly loaded static-mode snapshot against
// the configured expectations and instruments it for serving. It must run
// before the snapshot is published; on error the caller closes ix and keeps
// whatever was serving.
func prepareSnapshot(cfg *Config, ix *xseq.Index) error {
	if err := checkShards(cfg.ExpectShards, ix); err != nil {
		return err
	}
	if err := checkLayout(cfg.ExpectLayout, ix); err != nil {
		return err
	}
	// Opening a flat snapshot verifies only its dictionary head; the full
	// checksum sweep runs here so damage in the bulk sections rejects the
	// snapshot up front instead of surfacing mid-query. No-op for heap
	// layouts (their load already verified everything).
	if err := ix.VerifyIntegrity(); err != nil {
		return err
	}
	if cfg.QueryCacheEntries > 0 {
		ix.EnableQueryCache(cfg.QueryCacheEntries)
	}
	// A flat snapshot serves with page accounting attached, the pool sized
	// to hold every page: /stats then reports how much of the mapped file
	// queries actually touch (resident vs mapped) and the disk-access count.
	if st := ix.Stats(); st.Flat != nil {
		if _, err := ix.EnablePagedIO(int(st.Flat.Pages)); err != nil {
			return err
		}
	}
	return nil
}

type snapshotStatus struct {
	Path            string    `json:"path"`
	LoadedAt        time.Time `json:"loaded_at"`
	Reloads         int       `json:"reloads"`
	ReloadFailures  int       `json:"reload_failures"`
	LastReloadError string    `json:"last_reload_error,omitempty"`
}

func (s *Server) snapshotStatus() snapshotStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := snapshotStatus{
		Path:           s.cfg.IndexPath,
		LoadedAt:       s.loadedAt,
		Reloads:        s.reloads,
		ReloadFailures: s.reloadFailures,
	}
	if s.lastReloadErr != nil {
		st.LastReloadError = s.lastReloadErr.Error()
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Mode = s.mode()
	st := s.indexStats()
	resp.Index.Documents = st.Documents
	resp.Index.IndexNodes = st.IndexNodes
	resp.Index.Links = st.Links
	resp.Index.EstimatedDiskBytes = st.EstimatedDiskBytes
	resp.Index.Shards = st.Shards
	for _, ps := range st.PerShard {
		resp.Index.PerShard = append(resp.Index.PerShard, shardStat{
			Documents:  ps.Documents,
			IndexNodes: ps.IndexNodes,
			Links:      ps.Links,
		})
	}
	if fs := st.Flat; fs != nil {
		resp.Flat = &flatStat{
			MappedBytes:   fs.MappedBytes,
			Pages:         fs.Pages,
			Mmapped:       fs.Mmapped,
			ResidentPages: fs.ResidentPages,
			ResidentBytes: fs.ResidentBytes,
			Reads:         fs.Reads,
			Hits:          fs.Hits,
			DiskAccesses:  fs.DiskAccesses,
		}
	}
	if qc := st.QueryCache; qc != nil {
		resp.QueryCache = &queryCacheStat{
			Capacity:  qc.Capacity,
			Entries:   qc.Entries,
			Hits:      qc.Hits,
			Misses:    qc.Misses,
			Evictions: qc.Evictions,
		}
	}
	resp.Admission.MaxConcurrent = s.cfg.MaxConcurrent
	resp.Admission.MaxQueue = s.cfg.MaxQueue
	resp.Admission.Active = s.gate.active.Load()
	resp.Admission.Waiting = s.gate.waiting.Load()
	resp.Admission.Admitted = s.gate.admitted.Load()
	resp.Admission.Rejected = s.gate.rejected.Load()
	if s.swap != nil {
		snap := s.snapshotStatus()
		resp.Snapshot = &snap
	}
	resp.Ingest = s.ingestStat()
	resp.Durability = s.durabilityStat()
	if s.ckpt != nil {
		resp.Checkpoint = s.ckpt.stat()
	}
	resp.Replication = s.replicationStat()
	if s.adapt != nil {
		resp.Adaptive = s.adapt.stat()
	}
	resp.Latency = s.latencyStats()
	resp.QueryPatterns = s.patterns.Snapshot()
	resp.Queries = s.queries.Load()
	resp.Errors = s.queryErrors.Load()
	resp.UptimeMS = float64(time.Since(s.started)) / float64(time.Millisecond)
	resp.Draining = s.dr.isDraining()
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse is the /healthz body. The endpoint is liveness plus
// degradation detail: it answers 200 as long as the process can serve at
// all, with status "degraded" (and the reason) when something needs
// attention while reads keep working — a failed snapshot reload (static),
// a failed compaction or a sick WAL (dynamic), an unreachable or
// rotated-away primary (follower). In every degraded state the server
// keeps answering queries over the state it has; degraded is "needs
// attention", not an outage.
type healthResponse struct {
	Status    string `json:"status"` // "ok" | "degraded"
	Mode      string `json:"mode"`
	Documents int    `json:"documents"`
	// Snapshot is present in static mode only.
	Snapshot *snapshotStatus `json:"snapshot,omitempty"`
	// AppliedSeq is present in primary and follower modes: the WAL
	// position the served state reflects.
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	// WALError is the log's sticky fsync failure: the server still
	// answers queries but refuses inserts.
	WALError string `json:"wal_error,omitempty"`
	// CompactionError is the most recent compaction failure (the index
	// keeps serving and retries).
	CompactionError string `json:"compaction_error,omitempty"`
	// CheckpointError is the most recent automatic-checkpoint failure
	// (serving continues over the unrotated log; the policy retries with
	// backoff).
	CheckpointError string `json:"checkpoint_error,omitempty"`
	// AdaptiveError is the most recent adaptive-rebuild failure (the old
	// index keeps serving; the loop retries with backoff).
	AdaptiveError string `json:"adaptive_error,omitempty"`
	// Replication carries the follower's lag and connection condition.
	Replication *replicationStatus `json:"replication,omitempty"`
	Draining    bool               `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:    "ok",
		Mode:      s.mode(),
		Documents: s.indexStats().Documents,
		Draining:  s.dr.isDraining(),
	}
	if s.swap != nil {
		snap := s.snapshotStatus()
		resp.Snapshot = &snap
		if snap.LastReloadError != "" {
			resp.Status = "degraded"
		}
	}
	if s.dyn != nil {
		resp.AppliedSeq = s.dyn.AppliedSeq()
		if h := s.dyn.Health(); h.Degraded {
			resp.CompactionError = h.LastCompactionError
			resp.Status = "degraded"
		}
		if st := s.dyn.WALStats(); st != nil && st.LastError != "" {
			resp.WALError = st.LastError
			resp.Status = "degraded"
		}
	}
	if s.ckpt != nil {
		if st := s.ckpt.stat(); st.LastError != "" {
			resp.CheckpointError = st.LastError
			resp.Status = "degraded"
		}
	}
	if s.adapt != nil {
		if st := s.adapt.stat(); st.LastError != "" {
			resp.AdaptiveError = st.LastError
			resp.Status = "degraded"
		}
	}
	if s.repl != nil {
		rs := s.repl.status()
		resp.Replication = rs
		if rs.LastError != "" || rs.Gone {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReadyz reports readiness for traffic: 503 while draining (load
// balancers should stop routing here), 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.dr.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// errorResponse is the JSON error body every non-2xx response carries.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
