package server

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot transfer headers: the serving side advertises the WAL sequence
// number the checkpoint covers and its CRC-32 (IEEE) so a re-seeding
// follower can verify the download end-to-end before swapping it in.
const (
	headerSnapSeq = "X-Snapshot-Seq"
	headerSnapCRC = "X-Snapshot-Crc32"
)

// snapshotMeta identifies the checkpoint file /snapshot currently serves.
// Checkpoint writes only ever replace the path by atomic rename, so an
// opened fd's content is immutable: the FileInfo recorded here pins the
// exact file the size/CRC/seq describe, and os.SameFile detects a newer
// checkpoint landing between the metadata read and the open.
type snapshotMeta struct {
	seq  uint64
	size int64
	crc  uint32
	fi   os.FileInfo
	at   time.Time
}

// checkpointer runs the automatic checkpoint policy: a background loop
// samples the WAL and, once it grows past the configured entry or byte
// bound, compacts the index, snapshots it to CheckpointPath, and rotates
// the log. Failure containment: a failed checkpoint is logged, counted,
// backed off exponentially, and surfaced in /stats and /healthz — it
// never disturbs serving, which continues over the unrotated log.
type checkpointer struct {
	s    *Server
	done chan struct{}

	snapReqs atomic.Int64 // GET /snapshot requests over the server's life

	mu       sync.Mutex
	meta     *snapshotMeta
	count    int64
	failures int64
	lastErr  error
	streak   int       // consecutive failures, drives the backoff
	nextTry  time.Time // earliest next attempt after a failure
}

func newCheckpointer(s *Server) *checkpointer {
	return &checkpointer{s: s, done: make(chan struct{})}
}

func (c *checkpointer) wait() { <-c.done }

// describeSnapshot records the identity of the snapshot at path for
// /snapshot serving: size, content CRC, and file identity.
func describeSnapshot(path string, seq uint64) (*snapshotMeta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	h := crc32.NewIEEE()
	n, err := io.Copy(h, f)
	if err != nil {
		return nil, err
	}
	return &snapshotMeta{seq: seq, size: n, crc: h.Sum32(), fi: fi, at: time.Now()}, nil
}

// seed publishes a checkpoint file that already exists on disk (startup
// recovery) for /snapshot serving. seq is the WAL base the log was rotated
// to when it was written; a snapshot covering slightly more (rotation
// never landed) is fine — followers skip the overlap.
func (c *checkpointer) seed(path string, seq uint64) {
	meta, err := describeSnapshot(path, seq)
	if err != nil {
		c.s.cfg.Logf("server: existing checkpoint %s not servable yet: %v", path, err)
		return
	}
	c.mu.Lock()
	c.meta = meta
	c.mu.Unlock()
}

// run samples the WAL every CheckpointPoll and checkpoints when the
// policy says the log has grown too far; it exits when ctx (the server's
// base context) is cancelled.
func (c *checkpointer) run(ctx context.Context) {
	defer close(c.done)
	t := time.NewTicker(c.s.cfg.CheckpointPoll)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if c.due() {
			c.checkpoint(ctx)
		}
	}
}

// due reports whether the log has outgrown the policy bounds and any
// failure backoff has elapsed.
func (c *checkpointer) due() bool {
	c.mu.Lock()
	waiting := time.Now().Before(c.nextTry)
	c.mu.Unlock()
	if waiting {
		return false
	}
	st := c.s.dyn.WALStats()
	if st == nil || st.Entries == 0 {
		return false
	}
	if st.LastError != "" {
		// A log with a sticky fsync failure refuses rotation; don't burn
		// checkpoint attempts against it.
		return false
	}
	cfg := c.s.cfg
	return (cfg.CheckpointEveryEntries > 0 && st.Entries >= cfg.CheckpointEveryEntries) ||
		(cfg.CheckpointEveryBytes > 0 && st.SizeBytes >= cfg.CheckpointEveryBytes)
}

// checkpoint performs one compact+snapshot+rotate round and publishes the
// result for /snapshot. Serving is never disturbed: on failure the old
// snapshot (if any) keeps being served and the log keeps growing until
// the backed-off retry succeeds.
func (c *checkpointer) checkpoint(ctx context.Context) {
	path := c.s.cfg.CheckpointPath
	seq, err := c.s.dyn.CheckpointAt(ctx, path)
	var meta *snapshotMeta
	if err == nil {
		meta, err = describeSnapshot(path, seq)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown interrupted the compaction; not a failure
		}
		c.failures++
		c.lastErr = err
		c.streak++
		backoff := c.s.cfg.CheckpointPoll * (1 << min(c.streak, 5))
		if backoff > 30*time.Second {
			backoff = 30 * time.Second
		}
		c.nextTry = time.Now().Add(backoff)
		c.s.cfg.Logf("server: checkpoint to %s failed (retrying in %v): %v", path, backoff, err)
		return
	}
	c.meta = meta
	c.count++
	c.lastErr = nil
	c.streak = 0
	c.nextTry = time.Time{}
	c.s.cfg.Logf("server: checkpoint #%d at seq %d -> %s (%d bytes, crc %08x)",
		c.count, seq, path, meta.size, meta.crc)
}

// currentMeta returns the latest published snapshot's identity, nil
// before the first checkpoint (or seed).
func (c *checkpointer) currentMeta() *snapshotMeta {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta
}

// checkpointStat is the /stats checkpoint section.
type checkpointStat struct {
	Path          string `json:"path"`
	EveryEntries  int    `json:"every_entries,omitempty"`
	EveryBytes    int64  `json:"every_bytes,omitempty"`
	Checkpoints   int64  `json:"checkpoints"`
	Failures      int64  `json:"failures"`
	LastError     string `json:"last_error,omitempty"`
	SnapshotSeq   uint64 `json:"snapshot_seq"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	SnapshotCRC32 uint32 `json:"snapshot_crc32"`
	// SnapshotRequests counts GET /snapshot downloads served or shed.
	SnapshotRequests int64 `json:"snapshot_requests"`
}

func (c *checkpointer) stat() *checkpointStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &checkpointStat{
		Path:             c.s.cfg.CheckpointPath,
		EveryEntries:     c.s.cfg.CheckpointEveryEntries,
		EveryBytes:       c.s.cfg.CheckpointEveryBytes,
		Checkpoints:      c.count,
		Failures:         c.failures,
		SnapshotRequests: c.snapReqs.Load(),
	}
	if c.lastErr != nil {
		st.LastError = c.lastErr.Error()
	}
	if c.meta != nil {
		st.SnapshotSeq = c.meta.seq
		st.SnapshotBytes = c.meta.size
		st.SnapshotCRC32 = c.meta.crc
	}
	return st
}

// handleSnapshot streams the latest checkpoint to a re-seeding follower,
// with the sequence number and CRC it needs to verify the transfer and
// resume tailing. A bounded-concurrency gate sheds excess downloads with
// 429 + Retry-After so snapshot transfers cannot starve queries.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.ckpt == nil {
		writeError(w, http.StatusNotFound, "no checkpoint service on this server (arm -checkpoint-every on a -wal primary)")
		return
	}
	s.ckpt.snapReqs.Add(1)
	select {
	case s.snapSem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "too many concurrent snapshot downloads")
		return
	}
	defer func() { <-s.snapSem }()

	// Tie the opened fd to the metadata that describes that exact file: a
	// checkpoint landing between the metadata read and the open fails the
	// SameFile check and just means another round.
	for attempt := 0; attempt < 5; attempt++ {
		meta := s.ckpt.currentMeta()
		if meta == nil {
			writeError(w, http.StatusNotFound, "no checkpoint written yet; retry after the first rotation")
			return
		}
		f, err := os.Open(s.cfg.CheckpointPath)
		if err != nil {
			s.cfg.Logf("server: snapshot open %s: %v", s.cfg.CheckpointPath, err)
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("open checkpoint: %v", err))
			return
		}
		fi, err := f.Stat()
		if err != nil || !os.SameFile(fi, meta.fi) {
			f.Close()
			continue
		}
		w.Header().Set(headerSnapSeq, strconv.FormatUint(meta.seq, 10))
		w.Header().Set(headerSnapCRC, strconv.FormatUint(uint64(meta.crc), 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(meta.size, 10))
		w.WriteHeader(http.StatusOK)
		_, _ = io.Copy(w, f)
		f.Close()
		return
	}
	w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	writeError(w, http.StatusServiceUnavailable, "checkpoint is being replaced; retry")
}

// fsyncDir fsyncs path's parent directory so a just-renamed file survives
// a crash of the directory entry itself.
func fsyncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
