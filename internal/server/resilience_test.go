// Resilience suite: proves the serving guarantees ISSUE 2 names — overload
// sheds with 429 while admitted requests succeed, drain completes in-flight
// queries within its budget (and force-cancels past it), a corrupt hot
// reload leaves the old snapshot serving and surfaces through /healthz,
// and chaos-injected faults (latency, errors, panics) degrade single
// requests without hurting the process. Everything here runs under -race
// in CI.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xseq"
	"xseq/internal/faultio"
)

// TestOverloadSheds429 floods a 2-slot, 2-queue server with 10 concurrent
// requests while the admitted ones are pinned in flight: exactly 6 must be
// rejected with 429 + Retry-After, and all 4 admitted (executing or
// queued) must succeed once unpinned.
func TestOverloadSheds429(t *testing.T) {
	srv, ts := newTestServer(t, 3, func(c *Config) {
		c.MaxConcurrent = 2
		c.MaxQueue = 2
	})
	block := make(chan struct{})
	srv.testHookAdmitted = func(context.Context) { <-block }

	const total = 10
	type result struct {
		code       int
		retryAfter string
		count      int
	}
	results := make(chan result, total)
	var start sync.WaitGroup
	start.Add(1)
	for i := 0; i < total; i++ {
		go func() {
			start.Wait()
			resp, err := http.Get(ts.URL + "/query?q=" + matchAll)
			if err != nil {
				t.Errorf("GET: %v", err)
				results <- result{code: -1}
				return
			}
			defer resp.Body.Close()
			var qr queryResponse
			_ = json.NewDecoder(resp.Body).Decode(&qr)
			results <- result{resp.StatusCode, resp.Header.Get("Retry-After"), qr.Count}
		}()
	}
	start.Done()

	// The 6 overflow requests answer immediately; the 4 in-flight ones
	// hold until released.
	var rejected []result
	for len(rejected) < total-4 {
		select {
		case r := <-results:
			rejected = append(rejected, r)
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d rejections arrived", len(rejected))
		}
	}
	for _, r := range rejected {
		if r.code != http.StatusTooManyRequests {
			t.Fatalf("overflow request = %d, want 429", r.code)
		}
		if r.retryAfter == "" {
			t.Fatal("429 without Retry-After")
		}
	}
	close(block)
	for i := 0; i < 4; i++ {
		select {
		case r := <-results:
			if r.code != http.StatusOK || r.count != 3 {
				t.Fatalf("admitted request = %+v, want 200 with 3 ids", r)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted request never completed")
		}
	}
	if got := srv.gate.rejected.Load(); got != total-4 {
		t.Fatalf("gate rejected = %d, want %d", got, total-4)
	}
}

// TestDrainCompletesInFlight holds 3 queries in flight, starts a drain
// with a generous budget, verifies mid-drain arrivals get 503, then
// releases the queries: the drain must finish promptly and every held
// query must succeed.
func TestDrainCompletesInFlight(t *testing.T) {
	srv, ts := newTestServer(t, 3, func(c *Config) { c.MaxConcurrent = 8 })
	block := make(chan struct{})
	var admitted atomic.Int64
	srv.testHookAdmitted = func(context.Context) {
		admitted.Add(1)
		<-block
	}

	codes := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			code, _, _ := getQuery(t, ts.URL, "q="+matchAll)
			codes <- code
		}()
	}
	waitFor(t, func() bool { return admitted.Load() == 3 })

	drainErr := make(chan error, 1)
	drainStart := time.Now()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainErr <- srv.Drain(ctx)
	}()
	waitFor(t, srv.dr.isDraining)

	if code, _ := get(t, ts.URL+"/query?q="+matchAll); code != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain query = %d, want 503", code)
	}

	close(block)
	select {
	case err := <-drainErr:
		if err != nil {
			t.Fatalf("drain = %v, want clean nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain never returned")
	}
	if elapsed := time.Since(drainStart); elapsed > 20*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}
	for i := 0; i < 3; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight query during drain = %d, want 200", code)
		}
	}
}

// TestDrainCancelsStragglers pins 2 well-behaved queries (they wait on
// their own contexts) and drains with a tiny budget: Drain must cancel
// them, wait for the unwind, and return the budget error — all well within
// test time. The cancelled queries answer 503.
func TestDrainCancelsStragglers(t *testing.T) {
	srv, ts := newTestServer(t, 3, func(c *Config) { c.MaxConcurrent = 4 })
	var admitted atomic.Int64
	srv.testHookAdmitted = func(ctx context.Context) {
		admitted.Add(1)
		<-ctx.Done() // a slow query that honours cancellation
	}

	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := getQuery(t, ts.URL, "q="+matchAll)
			codes <- code
		}()
	}
	waitFor(t, func() bool { return admitted.Load() == 2 })

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := srv.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("forced drain took %v — stragglers did not unwind", elapsed)
	}
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusServiceUnavailable {
			t.Fatalf("cancelled query = %d, want 503", code)
		}
	}
}

// TestCorruptReloadKeepsServing overwrites the snapshot with garbage and
// reloads: the error is a *CorruptError, queries keep answering from the
// old snapshot, and /healthz reports degraded with the error text. A
// subsequent good snapshot heals everything.
func TestCorruptReloadKeepsServing(t *testing.T) {
	srv, ts := newTestServer(t, 2, nil)
	path := srv.cfg.IndexPath

	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 || qr.Count != 2 {
		t.Fatalf("pre-corruption query = %d, %+v", code, qr)
	}

	if err := os.WriteFile(path, []byte("this is not an index snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := srv.Reload()
	var ce *xseq.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("reload of garbage = %v, want *CorruptError", err)
	}

	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 || qr.Count != 2 {
		t.Fatalf("post-corruption query = %d, %+v — old snapshot must keep serving", code, qr)
	}
	code, body := get(t, ts.URL+"/healthz")
	var h healthResponse
	if code != 200 || json.Unmarshal(body, &h) != nil {
		t.Fatalf("healthz = %d %s", code, body)
	}
	if h.Status != "degraded" || h.Snapshot.LastReloadError == "" || h.Snapshot.ReloadFailures != 1 {
		t.Fatalf("degraded healthz = %+v", h)
	}

	buildSnapshot(t, path, 5, false)
	if err := srv.Reload(); err != nil {
		t.Fatalf("reload of good snapshot = %v", err)
	}
	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 || qr.Count != 5 {
		t.Fatalf("post-heal query = %d, %+v", code, qr)
	}
	code, body = get(t, ts.URL+"/healthz")
	var healed healthResponse
	if json.Unmarshal(body, &healed) != nil || code != 200 || healed.Status != "ok" || healed.Snapshot.LastReloadError != "" {
		t.Fatalf("healed healthz = %d %+v", code, healed)
	}
}

// TestWatchFileHotReload rewrites the snapshot on disk and waits for the
// mtime watcher to swap it in with no explicit Reload call.
func TestWatchFileHotReload(t *testing.T) {
	srv, ts := newTestServer(t, 2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.WatchFile(ctx, 20*time.Millisecond)

	buildSnapshot(t, srv.cfg.IndexPath, 4, false)
	waitFor(t, func() bool {
		_, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
		return qr.Count == 4
	})
}

// TestChaosLatency injects latency into every /query and measures it.
func TestChaosLatency(t *testing.T) {
	_, ts := newTestServer(t, 1, func(c *Config) {
		c.Chaos = Chaos{"/query": {Latency: 100 * time.Millisecond, LatencyOn: faultio.Every(1)}}
	})
	start := time.Now()
	if code, _, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 {
		t.Fatalf("query = %d", code)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("latency not injected: %v", elapsed)
	}
}

// TestChaosErrorAndPanicContained injects a 500 on the first /query and a
// mid-request panic on the second: both answer 500, and the third query —
// and the process — are untouched.
func TestChaosErrorAndPanicContained(t *testing.T) {
	_, ts := newTestServer(t, 2, func(c *Config) {
		c.Chaos = Chaos{"/query": {
			ErrorOn: faultio.Between(1, 1),
			PanicOn: faultio.Between(1, 1), // its first Hit is request 2
		}}
	})
	code, _, body := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusInternalServerError || !contains(body, "chaos: injected error") {
		t.Fatalf("chaos error request = %d %s", code, body)
	}
	code, _, body = getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusInternalServerError || !contains(body, "internal panic") {
		t.Fatalf("chaos panic request = %d %s", code, body)
	}
	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 || qr.Count != 2 {
		t.Fatalf("post-chaos query = %d, %+v — process must keep serving", code, qr)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != 200 {
		t.Fatalf("post-panic healthz = %d", code)
	}
}

// TestPanicInHandlerReleasesSlot panics inside the admitted section of a
// 1-slot server: the recover middleware must answer 500 and the deferred
// gate release must run during the unwind, or the second query would hang.
func TestPanicInHandlerReleasesSlot(t *testing.T) {
	srv, ts := newTestServer(t, 1, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = 1
	})
	var fired atomic.Bool
	srv.testHookAdmitted = func(context.Context) {
		if fired.CompareAndSwap(false, true) {
			panic("test: poisoned request")
		}
	}
	code, _, _ := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusInternalServerError {
		t.Fatalf("poisoned query = %d, want 500", code)
	}
	if code, qr, _ := getQuery(t, ts.URL, "q="+matchAll); code != 200 || qr.Count != 1 {
		t.Fatalf("follow-up query = %d, %+v — admission slot leaked", code, qr)
	}
	if active := srv.gate.active.Load(); active != 0 {
		t.Fatalf("gate active = %d after requests finished", active)
	}
}

// TestQueryDeadline504 sends a query whose deadline is already unmeetable.
func TestQueryDeadline504(t *testing.T) {
	srv, ts := newTestServer(t, 1, nil)
	srv.testHookAdmitted = func(ctx context.Context) { <-ctx.Done() }
	code, _, body := getQuery(t, ts.URL, "q="+matchAll+"&timeout=30ms")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired query = %d %s, want 504", code, body)
	}
}

func contains(b []byte, sub string) bool { return strings.Contains(string(b), sub) }
