package server

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"xseq"
	"xseq/internal/faultio"
)

// newCheckpointingPrimary starts a primary whose checkpoint policy fires
// once the WAL holds every entries, sampled fast enough for tests.
func newCheckpointingPrimary(t *testing.T, dir string, every int, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	return newPrimary(t, filepath.Join(dir, "p.wal"), func(c *Config) {
		c.CheckpointEveryEntries = every
		c.CheckpointPoll = 10 * time.Millisecond
		if mutate != nil {
			mutate(c)
		}
	})
}

func waitForCheckpoint(t *testing.T, srv *Server, atLeast uint64) {
	t.Helper()
	waitUntil(t, 10*time.Second, "automatic checkpoint", func() bool {
		st := srv.dyn.WALStats()
		return st != nil && st.BaseSeq >= atLeast
	})
}

func TestAutomaticCheckpointAndSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	psrv, pts := newCheckpointingPrimary(t, dir, 5, nil)
	for i := 0; i < 7; i++ {
		if code, _, body := postInsert(t, pts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("insert %d = %d: %s", i, code, body)
		}
	}
	// The policy fires on its own: the log rotates past the first five
	// entries without any manual checkpoint call.
	waitForCheckpoint(t, psrv, 5)

	// /stats surfaces the checkpoint section.
	_, sb := get(t, pts.URL+"/stats")
	var st statsResponse
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Checkpoint == nil || st.Checkpoint.Checkpoints < 1 || st.Checkpoint.SnapshotSeq < 5 {
		t.Fatalf("checkpoint stats = %s", sb)
	}

	// /snapshot streams the checkpoint with verifiable headers.
	resp, err := http.Get(pts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot = %d (%v)", resp.StatusCode, err)
	}
	seq, err := strconv.ParseUint(resp.Header.Get(headerSnapSeq), 10, 64)
	if err != nil || seq < 5 {
		t.Fatalf("snapshot seq header = %q (%v)", resp.Header.Get(headerSnapSeq), err)
	}
	crcWant, err := strconv.ParseUint(resp.Header.Get(headerSnapCRC), 10, 32)
	if err != nil {
		t.Fatalf("snapshot crc header = %q (%v)", resp.Header.Get(headerSnapCRC), err)
	}
	if got := crc32.ChecksumIEEE(body); got != uint32(crcWant) {
		t.Fatalf("snapshot body crc %08x, header %08x", got, uint32(crcWant))
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Fatalf("content-length %q for %d bytes", cl, len(body))
	}
	// The stream is a loadable index snapshot covering the advertised seq.
	snapPath := filepath.Join(dir, "downloaded.snap")
	if err := os.WriteFile(snapPath, body, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := xseq.LoadFile(snapPath)
	if err != nil {
		t.Fatalf("downloaded snapshot does not load: %v", err)
	}
	if docs, err := ix.StoredDocuments(); err != nil || len(docs) < 5 {
		t.Fatalf("downloaded snapshot docs = %d (%v)", len(docs), err)
	}

	if resp, err := http.Post(pts.URL+"/snapshot", "", nil); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /snapshot = %d", resp.StatusCode)
	}
}

func TestSnapshotEndpointWithoutCheckpoints(t *testing.T) {
	// Unarmed primary: /snapshot has nothing to serve.
	_, ts := newPrimary(t, filepath.Join(t.TempDir(), "p.wal"), nil)
	if code, _ := get(t, ts.URL+"/snapshot"); code != http.StatusNotFound {
		t.Fatalf("/snapshot on unarmed primary = %d", code)
	}
	// Armed but nothing checkpointed yet: also 404, with a hint to retry.
	psrv, pts := newCheckpointingPrimary(t, t.TempDir(), 1000, nil)
	_ = psrv
	if code, _ := get(t, pts.URL+"/snapshot"); code != http.StatusNotFound {
		t.Fatalf("/snapshot before first checkpoint = %d", code)
	}
}

func TestSnapshotGateShedsExcessDownloads(t *testing.T) {
	dir := t.TempDir()
	psrv, pts := newCheckpointingPrimary(t, dir, 2, func(c *Config) {
		c.SnapshotMaxConcurrent = 1
	})
	for i := 0; i < 3; i++ {
		postInsert(t, pts.URL, i, docXML(i))
	}
	waitForCheckpoint(t, psrv, 2)

	// Occupy the only download slot directly; the next request is shed
	// with 429 + Retry-After instead of queueing behind the transfer.
	psrv.snapSem <- struct{}{}
	defer func() { <-psrv.snapSem }()
	resp, err := http.Get(pts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gated /snapshot = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestFollowerReseedsAfterRotation is the headline self-healing path: a
// follower starting from zero against a primary whose log has already
// rotated past seq 1 cannot tail its way up — it must notice the 410,
// fetch the snapshot, swap it in, and resume tailing, all hands-off.
func TestFollowerReseedsAfterRotation(t *testing.T) {
	dir := t.TempDir()
	psrv, pts := newCheckpointingPrimary(t, dir, 5, nil)
	for i := 0; i < 12; i++ {
		if code, _, body := postInsert(t, pts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("insert %d = %d: %s", i, code, body)
		}
	}
	// A checkpoint can fire mid-insert: the earliest is at seq 5+, and a
	// first rotation at seq 8 or 9 leaves a tail shorter than the 5-entry
	// bound, so the base is only guaranteed to settle at >= 8.
	waitForCheckpoint(t, psrv, 8)

	fsrv, fts := newFollower(t, pts.URL, nil)
	// AppliedSeq hits 12 at the engine swap, a moment before the
	// replicator records the reseed and resumes tailing — wait for both.
	waitUntil(t, 10*time.Second, "reseed convergence", func() bool {
		st := fsrv.repl.status()
		return fsrv.dyn.AppliedSeq() == 12 && st.State == "tailing"
	})
	st := fsrv.repl.status()
	if st.Reseeds < 1 || st.SeedSeq < 8 || st.State != "tailing" || st.Gone {
		t.Fatalf("replication after reseed = %+v", st)
	}
	// The follower converged to the primary's exact document count.
	pcode, pqr, _ := getQuery(t, pts.URL, "q="+matchAll)
	fcode, fqr, _ := getQuery(t, fts.URL, "q="+matchAll)
	if pcode != 200 || fcode != 200 || pqr.Count != 12 || fqr.Count != 12 {
		t.Fatalf("convergence: primary %d/%d follower %d/%d", pcode, pqr.Count, fcode, fqr.Count)
	}
	_, hb := get(t, fts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(hb, &h); err != nil || h.Status != "ok" {
		t.Fatalf("post-reseed health = %s (%v)", hb, err)
	}
	// Tailing continues past the reseed.
	postInsert(t, pts.URL, 12, docXML(12))
	waitUntil(t, 5*time.Second, "post-reseed tailing", func() bool {
		return fsrv.dyn.AppliedSeq() == 13
	})
}

// TestDurableFollowerReseedPersistsSeed verifies a durable follower keeps
// the downloaded snapshot: after a reseed and a restart, it comes back at
// the reseeded position instead of re-fetching history.
func TestDurableFollowerReseedPersistsSeed(t *testing.T) {
	dir := t.TempDir()
	psrv, pts := newCheckpointingPrimary(t, dir, 5, nil)
	for i := 0; i < 11; i++ {
		postInsert(t, pts.URL, i, docXML(i))
	}
	// A mid-insert rotation can leave a tail under the 5-entry bound, so
	// the base is only guaranteed to settle at >= 7 (11 - 5 + 1).
	waitForCheckpoint(t, psrv, 7)

	fwal := filepath.Join(dir, "f.wal")
	fsrv, fts := newFollower(t, pts.URL, func(c *Config) { c.WALPath = fwal })
	waitUntil(t, 10*time.Second, "durable reseed", func() bool {
		return fsrv.dyn.AppliedSeq() == 11 && fsrv.repl.status().Reseeds >= 1
	})
	if st := fsrv.repl.status(); st.Reseeds < 1 {
		t.Fatalf("expected a reseed, got %+v", st)
	}
	fts.Close()
	fsrv.Close()

	// The downloaded seed landed at the follower's checkpoint path.
	if _, err := os.Stat(fwal + ".ckpt"); err != nil {
		t.Fatalf("persisted seed: %v", err)
	}
	fsrv2, _ := newFollower(t, pts.URL, func(c *Config) { c.WALPath = fwal })
	if got := fsrv2.dyn.NumDocuments(); got != 11 {
		t.Fatalf("restarted durable follower has %d documents, want 11", got)
	}
	waitUntil(t, 5*time.Second, "restart rejoin", func() bool {
		return fsrv2.repl.status().LastContactMS >= 0
	})
	if st := fsrv2.repl.status(); st.Reseeds != 0 {
		t.Fatalf("restart re-fetched a snapshot it already had: %+v", st)
	}
}

// TestReseedSurvivesCorruptDownloads is the chaos drill: the first
// snapshot download is cut short, the second has one bit flipped in
// flight. Both must be detected and discarded — the follower keeps
// serving its old corpus, reports degraded, and converges on the third,
// clean attempt with zero manual steps.
func TestReseedSurvivesCorruptDownloads(t *testing.T) {
	dir := t.TempDir()

	// Old primary: the follower's pre-disaster state, three documents.
	fp := &flakyPrimary{}
	p1, err := New(Config{
		WALPath:        filepath.Join(dir, "p1.wal"),
		DefaultTimeout: 30 * time.Second,
		WALPollWait:    100 * time.Millisecond,
		Logf:           silentLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp.cur.Store(p1)
	pts := httptest.NewServer(fp)
	t.Cleanup(pts.Close)
	for i := 0; i < 3; i++ {
		if code, _, body := postInsert(t, pts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("insert %d = %d: %s", i, code, body)
		}
	}

	var attempts atomic.Int64
	fsrv, fts := newFollower(t, pts.URL, func(c *Config) {
		c.testSnapshotBody = func(r io.Reader) io.Reader {
			switch attempts.Add(1) {
			case 1:
				return &faultio.TruncatingReader{R: r, Limit: 64}
			case 2:
				return &faultio.FlippingReader{R: r, Offset: 100, Bit: 3}
			default:
				return r
			}
		}
	})
	waitUntil(t, 5*time.Second, "pre-disaster catch-up", func() bool {
		return fsrv.dyn.AppliedSeq() == 3
	})

	// Disaster: the primary is replaced by one whose log starts at a
	// checkpoint far past the follower's position (operator restored a
	// bigger dataset; the follower's seqs 1-3 are gone from the log).
	p1.Close()
	p2src, p2ts := newCheckpointingPrimary(t, dir, 8, nil)
	for i := 100; i < 110; i++ {
		if code, _, body := postInsert(t, p2ts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("insert %d = %d: %s", i, code, body)
		}
	}
	waitForCheckpoint(t, p2src, 8)
	fp.cur.Store(p2src)

	// While the corrupted downloads fail, the follower never stops
	// answering from its old three-document state and reports the failure.
	waitUntil(t, 10*time.Second, "corrupt download detected", func() bool {
		st := fsrv.repl.status()
		return st.ReseedAttempts >= 1 && st.LastReseedError != ""
	})
	if code, qr, _ := getQuery(t, fts.URL, "q="+matchAll); code != 200 || qr.Count != 3 {
		t.Fatalf("follower reads during failed reseeds = %d, %+v", code, qr)
	}
	_, hb := get(t, fts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(hb, &h); err != nil || h.Status != "degraded" {
		t.Fatalf("health during failed reseeds = %s (%v)", hb, err)
	}

	// Third attempt is clean: the follower converges to the new primary.
	waitUntil(t, 15*time.Second, "post-chaos convergence", func() bool {
		return fsrv.dyn.AppliedSeq() == p2src.dyn.AppliedSeq()
	})
	st := fsrv.repl.status()
	if st.ReseedAttempts < 3 || st.Reseeds != 1 || st.LastReseedError != "" {
		t.Fatalf("reseed counters after chaos = %+v", st)
	}
	pcode, pqr, _ := getQuery(t, p2ts.URL, "q="+matchAll)
	fcode, fqr, _ := getQuery(t, fts.URL, "q="+matchAll)
	if pcode != 200 || fcode != 200 || pqr.Count != fqr.Count || fqr.Count != 10 {
		t.Fatalf("final counts: primary %d/%d follower %d/%d", pcode, pqr.Count, fcode, fqr.Count)
	}
}

// TestReseedSurvivesPrimaryDeathMidStream kills the primary (from the
// follower's point of view) in the middle of a snapshot transfer: the
// truncated download is discarded, the follower stays on its old state,
// and once the primary is back the reseed completes.
func TestReseedSurvivesPrimaryDeathMidStream(t *testing.T) {
	dir := t.TempDir()
	psrv, pts0 := newCheckpointingPrimary(t, dir, 5, nil)
	for i := 0; i < 9; i++ {
		postInsert(t, pts0.URL, i, docXML(i))
	}
	waitForCheckpoint(t, psrv, 5)

	fp := &flakyPrimary{}
	fp.cur.Store(psrv)
	pts := httptest.NewServer(fp)
	t.Cleanup(pts.Close)

	var attempts atomic.Int64
	fsrv, fts := newFollower(t, pts.URL, func(c *Config) {
		c.testSnapshotBody = func(r io.Reader) io.Reader {
			if attempts.Add(1) == 1 {
				// Deliver a prefix, then the connection dies with the primary.
				fp.cur.Store(nil)
				return io.MultiReader(io.LimitReader(r, 32), &faultio.FailingReader{R: r, Err: io.ErrUnexpectedEOF})
			}
			return r
		}
	})
	waitUntil(t, 10*time.Second, "mid-stream death detected", func() bool {
		st := fsrv.repl.status()
		return st.ReseedAttempts >= 1 && st.LastReseedError != ""
	})
	// Still serving (empty corpus, but answering) and degraded.
	if code, _, _ := getQuery(t, fts.URL, "q="+matchAll); code != 200 {
		t.Fatalf("follower stopped answering during outage: %d", code)
	}

	// Primary comes back; the retry completes the seed.
	fp.cur.Store(psrv)
	waitUntil(t, 15*time.Second, "post-death convergence", func() bool {
		return fsrv.dyn.AppliedSeq() == 9
	})
	if st := fsrv.repl.status(); st.Reseeds != 1 {
		t.Fatalf("reseeds after recovery = %+v", st)
	}
}

// TestReseedRacesRotation lets a new checkpoint replace the snapshot
// while a follower's download of the previous one is in flight. The
// served stream is pinned to the opened file, so the transfer still
// verifies; the follower lands on the older seq and tailing (or a second
// reseed) brings it the rest of the way.
func TestReseedRacesRotation(t *testing.T) {
	dir := t.TempDir()
	psrv, pts := newCheckpointingPrimary(t, dir, 4, nil)
	for i := 0; i < 5; i++ {
		postInsert(t, pts.URL, i, docXML(i))
	}
	waitForCheckpoint(t, psrv, 4)

	var raced atomic.Bool
	fsrv, fts := newFollower(t, pts.URL, func(c *Config) {
		c.testSnapshotBody = func(r io.Reader) io.Reader {
			if !raced.Swap(true) {
				// Buffer the whole transfer first (the fd is already pinned),
				// then force a new checkpoint to land before the follower
				// finishes "reading" it.
				b, err := io.ReadAll(r)
				if err != nil {
					return &faultio.FailingReader{R: bytes.NewReader(nil), Err: err}
				}
				base := psrv.dyn.WALStats().BaseSeq
				for i := 200; i < 205; i++ {
					postInsert(t, pts.URL, i, docXML(i))
				}
				deadline := time.Now().Add(5 * time.Second)
				for psrv.dyn.WALStats().BaseSeq == base && time.Now().Before(deadline) {
					time.Sleep(5 * time.Millisecond)
				}
				return bytes.NewReader(b)
			}
			return r
		}
	})
	waitUntil(t, 15*time.Second, "racing convergence", func() bool {
		return fsrv.dyn.AppliedSeq() == psrv.dyn.AppliedSeq()
	})
	if st := fsrv.repl.status(); st.Reseeds < 1 || st.LastReseedError != "" {
		t.Fatalf("racing reseed status = %+v", st)
	}
	pcode, pqr, _ := getQuery(t, pts.URL, "q="+matchAll)
	fcode, fqr, _ := getQuery(t, fts.URL, "q="+matchAll)
	if pcode != 200 || fcode != 200 || pqr.Count != fqr.Count || fqr.Count != 10 {
		t.Fatalf("racing final counts: primary %d/%d follower %d/%d", pcode, pqr.Count, fcode, fqr.Count)
	}
}

func TestFollowerHonorsRetryAfter(t *testing.T) {
	// A primary shedding load with 503 + Retry-After must not be hammered:
	// the follower sleeps the hinted duration instead of its own (much
	// shorter) backoff ladder.
	var polls atomic.Int64
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "busy")
	}))
	t.Cleanup(busy.Close)
	fsrv, _ := newFollower(t, busy.URL, func(c *Config) {
		c.FollowMinBackoff = 5 * time.Millisecond
		c.FollowMaxBackoff = 20 * time.Millisecond
	})
	waitUntil(t, 5*time.Second, "first shed poll", func() bool { return polls.Load() >= 1 })
	time.Sleep(500 * time.Millisecond)
	// Without the hint, 5-20ms backoff would have produced dozens of polls
	// in half a second; the 1s hint allows at most the initial one plus
	// rounding slack.
	if got := polls.Load(); got > 2 {
		t.Fatalf("follower polled %d times against a 1s Retry-After", got)
	}
	if st := fsrv.repl.status(); st.LastError == "" {
		t.Fatal("shed state not surfaced in replication status")
	}
}

func TestFollowerRejectsMalformedWALHeaders(t *testing.T) {
	cases := []struct {
		name string
		set  func(http.Header)
	}{
		{"missing-head", func(h http.Header) {
			h.Set(headerWALCount, "0")
			h.Set(headerWALLast, "0")
		}},
		{"garbage-count", func(h http.Header) {
			h.Set(headerWALHead, "7")
			h.Set(headerWALCount, "banana")
			h.Set(headerWALLast, "7")
		}},
		{"count-mismatch", func(h http.Header) {
			// Headers promise two entries; the body carries none.
			h.Set(headerWALHead, "7")
			h.Set(headerWALCount, "2")
			h.Set(headerWALLast, "7")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				tc.set(w.Header())
				w.WriteHeader(http.StatusOK)
			}))
			t.Cleanup(bad.Close)
			fsrv, _ := newFollower(t, bad.URL, nil)
			waitUntil(t, 5*time.Second, "protocol error surfaced", func() bool {
				st := fsrv.repl.status()
				return st.ProtocolErrors >= 1
			})
			st := fsrv.repl.status()
			if st.LastError == "" || st.Gone {
				t.Fatalf("malformed headers status = %+v", st)
			}
			// The follower is still alive and serving.
			if fsrv.dyn.AppliedSeq() != 0 {
				t.Fatalf("malformed response advanced the position to %d", fsrv.dyn.AppliedSeq())
			}
		})
	}
}

func TestConfigRejectsCheckpointWithoutWAL(t *testing.T) {
	if _, err := New(Config{FollowURL: "http://x", CheckpointEveryEntries: 5, Logf: silentLogf}); err == nil {
		t.Fatal("checkpoint policy without a WAL accepted")
	}
	if _, err := New(Config{IndexPath: "nope.idx", CheckpointPath: "x.ckpt", Logf: silentLogf}); err == nil {
		t.Fatal("CheckpointPath on a static server accepted")
	}
}

func TestPrimaryRestartSeedsFromOwnCheckpoint(t *testing.T) {
	dir := t.TempDir()
	psrv, pts := newCheckpointingPrimary(t, dir, 5, nil)
	for i := 0; i < 7; i++ {
		postInsert(t, pts.URL, i, docXML(i))
	}
	waitForCheckpoint(t, psrv, 5)
	pts.Close()
	psrv.Close()

	// The restart loads the checkpoint and replays only the short tail.
	psrv2, pts2 := newCheckpointingPrimary(t, dir, 5, nil)
	if got := psrv2.dyn.NumDocuments(); got != 7 {
		t.Fatalf("restarted primary has %d documents, want 7", got)
	}
	if replayed := psrv2.dyn.WALStats().ReplayedEntries; replayed >= 7 {
		t.Fatalf("restart replayed %d entries despite the checkpoint seed", replayed)
	}
	// The pre-restart checkpoint is served immediately, before any new
	// checkpoint fires.
	if code, _ := get(t, pts2.URL+"/snapshot"); code != http.StatusOK {
		t.Fatalf("/snapshot after restart = %d", code)
	}
	if code, qr, _ := getQuery(t, pts2.URL, "q="+matchAll); code != 200 || qr.Count != 7 {
		t.Fatalf("restarted query = %d, %+v", code, qr)
	}
}
