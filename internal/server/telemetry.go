// Server-side telemetry wiring: the process registry every subsystem's
// counters surface through, the per-layout latency histograms, the
// bounded top-K query-pattern table, the structured trace log, and the
// Prometheus /metrics handler.
//
// The registry unifies two kinds of state. Counters the server itself
// owns (queries, errors, inserts) are registry-native telemetry.Counter
// values — the /stats handler reads the same counters Prometheus scrapes.
// Counters owned by subsystems with their own snapshot accessors (the
// admission gate, the WAL, the checkpointer, the replicator, the pager,
// the query cache) are exported by a scrape-time collector that reads the
// existing stat structs, so the /stats JSON sections keep their exact
// shape and /metrics is derived from the same numbers with no second
// bookkeeping path.
package server

import (
	"encoding/json"
	"net/http"
	"time"

	"xseq/internal/query"
	"xseq/internal/telemetry"
)

// defaultPatternTopK bounds the query-pattern frequency table when
// Config.PatternTopK is zero.
const defaultPatternTopK = 64

// initTelemetry builds the registry and the server-owned metrics. Called
// once from New before any handler can run; collectors registered here
// read mode-dependent state (s.dyn, s.ckpt, s.repl) lazily at scrape
// time, so registration order against mode setup does not matter.
func (s *Server) initTelemetry() {
	r := telemetry.NewRegistry()
	s.reg = r
	s.queries = r.NewCounter("xseq_queries_total", "", "Queries served, including failures.")
	s.queryErrors = r.NewCounter("xseq_query_errors_total", "", "Queries that failed: timeout, cancellation, or engine error.")
	s.inserts = r.NewCounter("xseq_inserts_total", "", "Documents ingested via POST /insert.")
	s.insertErrs = r.NewCounter("xseq_insert_errors_total", "", "Rejected or failed inserts.")
	s.shardLat = r.NewHistogram("xseq_shard_query_duration_seconds", "",
		"Per-shard slices of sharded query fan-outs.")
	k := s.cfg.PatternTopK
	if k <= 0 {
		k = defaultPatternTopK
	}
	s.patterns = telemetry.NewTopK(k)
	s.latency = make(map[string]*telemetry.Histogram)
	r.RegisterCollector(s.collect)
}

// latencyHist returns the end-to-end latency histogram for one storage
// layout, creating and registering it on first use. Layouts appear as
// label variants of one xseq_query_duration_seconds family.
func (s *Server) latencyHist(layout string) *telemetry.Histogram {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	h, ok := s.latency[layout]
	if !ok {
		h = s.reg.NewHistogram("xseq_query_duration_seconds",
			telemetry.Label("layout", layout),
			"End-to-end query latency by storage layout.")
		s.latency[layout] = h
	}
	return h
}

// layoutName names the serving engine's storage layout for metric labels
// and trace lines: the snapshot's own layout in static mode, "dynamic"
// for primaries and followers (their base+delta pair is not a snapshot
// layout).
func (s *Server) layoutName() string {
	if s.dyn != nil {
		return "dynamic"
	}
	if ix := s.swap.Current(); ix != nil {
		return ix.Layout()
	}
	return "unknown"
}

// collect is the registry's scrape-time callback for subsystem state that
// lives outside the registry: it reads the same stat snapshots /stats
// serves and emits them as gauges and counters.
func (s *Server) collect(e *telemetry.Emit) {
	e.Gauge("xseq_admission_slots", "", "Configured concurrent-query slots.", float64(s.cfg.MaxConcurrent))
	e.Gauge("xseq_admission_queue", "", "Configured admission queue depth.", float64(s.cfg.MaxQueue))
	e.Gauge("xseq_admission_active", "", "Queries executing right now.", float64(s.gate.active.Load()))
	e.Gauge("xseq_admission_waiting", "", "Queries queued for a slot.", float64(s.gate.waiting.Load()))
	e.Counter("xseq_admission_admitted_total", "", "Queries granted an execution slot.", s.gate.admitted.Load())
	e.Counter("xseq_admission_rejected_total", "", "Queries shed with 429 by the admission gate.", s.gate.rejected.Load())

	st := s.indexStats()
	e.Gauge("xseq_index_documents", "", "Documents in the serving index.", float64(st.Documents))
	e.Gauge("xseq_index_nodes", "", "Trie nodes in the serving index.", float64(st.IndexNodes))
	e.Gauge("xseq_index_links", "", "Distinct paths (horizontal links) in the serving index.", float64(st.Links))
	e.Gauge("xseq_index_shards", "", "Shard count of the serving index (0: monolithic).", float64(st.Shards))

	if qc := st.QueryCache; qc != nil {
		e.Counter("xseq_query_cache_hits_total", "", "Queries served from the result cache.", qc.Hits)
		e.Counter("xseq_query_cache_misses_total", "", "Queries that executed against the engine.", qc.Misses)
		e.Counter("xseq_query_cache_evictions_total", "", "Cache entries dropped for capacity or staleness.", qc.Evictions)
		e.Gauge("xseq_query_cache_entries", "", "Resident result-cache entries.", float64(qc.Entries))
	}
	if fs := st.Flat; fs != nil {
		e.Gauge("xseq_flat_mapped_bytes", "", "Size of the mapped flat snapshot.", float64(fs.MappedBytes))
		e.Gauge("xseq_flat_resident_bytes", "", "Bytes of the mapped snapshot queries have touched.", float64(fs.ResidentBytes))
		e.Gauge("xseq_flat_resident_pages", "", "Distinct 4KiB pages queries have touched.", float64(fs.ResidentPages))
		e.Counter("xseq_flat_reads_total", "", "Buffer-pool page reads.", fs.Reads)
		e.Counter("xseq_flat_disk_accesses_total", "", "Buffer-pool misses (the paper's disk-access metric).", fs.DiskAccesses)
	}
	if d := s.durabilityStat(); d != nil {
		e.Counter("xseq_wal_appends_total", "", "Entries appended to the write-ahead log.", d.Appends)
		e.Counter("xseq_wal_syncs_total", "", "WAL fsync batches.", d.Syncs)
		e.Counter("xseq_wal_rotations_total", "", "WAL rotations against a checkpoint.", d.Rotations)
		e.Gauge("xseq_wal_size_bytes", "", "Current WAL file size.", float64(d.SizeBytes))
		e.Gauge("xseq_wal_last_seq", "", "Last sequence number appended to the WAL.", float64(d.LastSeq))
	}
	if s.ckpt != nil {
		cs := s.ckpt.stat()
		e.Counter("xseq_checkpoints_total", "", "Completed automatic checkpoints.", cs.Checkpoints)
		e.Counter("xseq_checkpoint_failures_total", "", "Failed checkpoint rounds.", cs.Failures)
		e.Gauge("xseq_checkpoint_snapshot_bytes", "", "Size of the last checkpoint snapshot.", float64(cs.SnapshotBytes))
		e.Counter("xseq_snapshot_requests_total", "", "GET /snapshot downloads served or shed.", cs.SnapshotRequests)
	}
	if rs := s.replicationStat(); rs != nil {
		e.Counter("xseq_replication_entries_applied_total", "", "WAL entries applied from the primary.", rs.EntriesApplied)
		e.Counter("xseq_reseeds_total", "", "Completed snapshot re-seeds after rotation outran this follower.", rs.Reseeds)
		e.Counter("xseq_reseed_attempts_total", "", "Snapshot re-seed attempts, including failures.", rs.ReseedAttempts)
		e.Gauge("xseq_replication_lag", "", "Entries between the primary's head and this follower.", float64(rs.Lag))
	}
	if s.adapt != nil {
		as := s.adapt.stat()
		e.Counter("xseq_adaptive_rebuilds_total", "", "Completed adaptive re-sequenced rebuilds.", as.Rebuilds)
		e.Counter("xseq_adaptive_rebuild_failures_total", "", "Failed adaptive rebuild attempts.", as.Failures)
		e.Gauge("xseq_adaptive_drift", "", "Weight-vector drift between the live mix and the serving index.", as.Drift)
	}
	e.Gauge("xseq_query_patterns_tracked", "", "Resident entries in the top-K pattern-frequency table.", float64(s.patterns.Len()))
}

// MetricsHandler serves the registry in Prometheus text exposition format
// (version 0.0.4). xseqd mounts it on the private -pprof listener, never
// the public one.
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			s.cfg.Logf("server: metrics write: %v", err)
		}
	})
}

// traceSpan is one shard's slice of a trace-log line. Each span repeats
// the request's trace id (stamped by Trace.AddSpan), so shard-level lines
// extracted from aggregated logs remain attributable on their own.
type traceSpan struct {
	Trace   string  `json:"trace"`
	Shard   int32   `json:"shard"`
	Results int32   `json:"results"`
	MS      float64 `json:"ms"`
}

// traceLine is the one-JSON-object-per-query record Config.TraceLog
// receives. The q field holds the original query string, which is what
// xseqbench -replay extracts to re-drive the workload.
type traceLine struct {
	Trace           string      `json:"trace"`
	Query           string      `json:"q"`
	Layout          string      `json:"layout"`
	Status          int         `json:"status"`
	Results         int         `json:"results"`
	ElapsedMS       float64     `json:"elapsed_ms"`
	Instances       int64       `json:"instances"`
	Orders          int64       `json:"orders"`
	LinkProbes      int64       `json:"link_probes"`
	EntriesScanned  int64       `json:"entries_scanned"`
	CoverChecks     int64       `json:"cover_checks"`
	CoverRejections int64       `json:"cover_rejections"`
	Cache           string      `json:"cache,omitempty"`
	FanoutMS        float64     `json:"fanout_ms,omitempty"`
	MergeMS         float64     `json:"merge_ms,omitempty"`
	Shards          []traceSpan `json:"shards,omitempty"`
}

// observeQuery folds one completed query into the telemetry layer: the
// per-layout latency histogram, the per-shard span histogram, the
// pattern-frequency table, and (when armed) one trace-log line. Called
// after the query has fully joined, so the trace is quiescent; the caller
// returns the trace to the pool afterwards.
func (s *Server) observeQuery(pat *query.Pattern, q, layout string, elapsed time.Duration, tr *telemetry.Trace, status, results int) {
	s.latencyHist(layout).Observe(elapsed)
	spans := tr.Spans()
	for _, sp := range spans {
		s.shardLat.ObserveNS(sp.DurNS)
	}
	s.patterns.Record(pat.String())
	if s.cfg.TraceLog == nil {
		return
	}
	line := traceLine{
		Trace:           telemetry.IDString(tr.ID),
		Query:           q,
		Layout:          layout,
		Status:          status,
		Results:         results,
		ElapsedMS:       float64(elapsed) / float64(time.Millisecond),
		Instances:       tr.Instances(),
		Orders:          tr.Orders(),
		LinkProbes:      tr.LinkProbes(),
		EntriesScanned:  tr.EntriesScanned(),
		CoverChecks:     tr.CoverChecks(),
		CoverRejections: tr.CoverRejections(),
		Cache:           tr.CacheState(),
		FanoutMS:        float64(tr.FanoutNS()) / float64(time.Millisecond),
		MergeMS:         float64(tr.MergeNS()) / float64(time.Millisecond),
	}
	if len(spans) > 0 {
		line.Shards = make([]traceSpan, len(spans))
		for i, sp := range spans {
			line.Shards[i] = traceSpan{
				Trace:   telemetry.IDString(sp.TraceID),
				Shard:   sp.Shard,
				Results: sp.Results,
				MS:      float64(sp.DurNS) / float64(time.Millisecond),
			}
		}
	}
	blob, err := json.Marshal(line)
	if err != nil {
		return
	}
	blob = append(blob, '\n')
	s.traceMu.Lock()
	_, _ = s.cfg.TraceLog.Write(blob)
	s.traceMu.Unlock()
}

// latencyStat is one layout's slice of the /stats latency section.
type latencyStat struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// latencyStats computes the /stats latency section from the registry's
// histograms, nil before the first query.
func (s *Server) latencyStats() map[string]latencyStat {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	if len(s.latency) == 0 {
		return nil
	}
	out := make(map[string]latencyStat, len(s.latency))
	for layout, h := range s.latency {
		out[layout] = latencyStat{
			Count: h.Count(),
			P50MS: float64(h.QuantileNS(0.50)) / float64(time.Millisecond),
			P95MS: float64(h.QuantileNS(0.95)) / float64(time.Millisecond),
			P99MS: float64(h.QuantileNS(0.99)) / float64(time.Millisecond),
		}
	}
	return out
}
