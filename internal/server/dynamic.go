package server

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"xseq"
	"xseq/internal/wal"
)

// insertResponse is the POST /insert success body.
type insertResponse struct {
	ID int32 `json:"id"`
	// Seq is the WAL sequence number state after this insert: the insert
	// is durable up to at least this position.
	Seq       uint64 `json:"seq"`
	Documents int    `json:"documents"`
	Pending   int    `json:"pending"`
	// Warning is set when the insert landed (and is durable) but the
	// automatic compaction it triggered failed; the index keeps serving
	// and retries compaction later.
	Warning string `json:"warning,omitempty"`
}

// handleInsert ingests one document on a dynamic primary: the id comes
// from ?id, the XML document is the request body. The insert is
// acknowledged only after the WAL entry is fsynced.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.dyn == nil {
		writeError(w, http.StatusNotFound, "this server serves a static snapshot; inserts need a -wal primary")
		return
	}
	if s.repl != nil {
		writeError(w, http.StatusForbidden, "this server is a read-only follower; insert on the primary")
		return
	}
	params := r.URL.Query()
	idStr := params.Get("id")
	if idStr == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter id")
		return
	}
	id64, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad id %q", idStr))
		return
	}
	timeout, terr := requestTimeout(params, s.cfg)
	if terr != nil {
		writeError(w, http.StatusBadRequest, terr.Error())
		return
	}

	if !s.dr.enter() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer s.dr.exit()

	ctx, cancelReq := context.WithTimeout(r.Context(), timeout)
	defer cancelReq()
	stopAfter := context.AfterFunc(s.baseCtx, cancelReq)
	defer stopAfter()

	if err := s.gate.acquire(ctx); err != nil {
		if errors.Is(err, errOverloaded) {
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded while queued for admission")
		} else {
			writeError(w, http.StatusServiceUnavailable, "cancelled while queued for admission")
		}
		return
	}
	defer s.gate.release()

	doc, err := xseq.ParseDocument(int32(id64), http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad document: %v", err))
		return
	}

	err = s.dyn.InsertContext(ctx, doc)
	var warning string
	if err != nil {
		var cerr *xseq.CompactionError
		switch {
		case errors.As(err, &cerr):
			// The insert itself landed and is durable; only the triggered
			// rebuild failed, and it retries automatically.
			warning = cerr.Error()
		case strings.Contains(err.Error(), "duplicate document id"):
			writeError(w, http.StatusConflict, err.Error())
			return
		case errors.Is(err, context.DeadlineExceeded):
			s.insertErrs.Add(1)
			writeError(w, http.StatusGatewayTimeout,
				"insert deadline exceeded (durability unconfirmed: the document may or may not survive a restart)")
			return
		case errors.Is(err, context.Canceled):
			s.insertErrs.Add(1)
			writeError(w, http.StatusServiceUnavailable, "insert cancelled (durability unconfirmed)")
			return
		default:
			s.insertErrs.Add(1)
			s.cfg.Logf("server: insert id %d failed: %v", id64, err)
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	s.inserts.Add(1)
	writeJSON(w, http.StatusOK, insertResponse{
		ID:        int32(id64),
		Seq:       s.dyn.AppliedSeq(),
		Documents: s.dyn.NumDocuments(),
		Pending:   s.dyn.PendingDocuments(),
		Warning:   warning,
	})
}

// WAL stream response headers. Bodies are raw framed WAL entries
// (application/octet-stream), decodable with the same frame reader the
// local replay uses.
const (
	headerWALCount = "X-Wal-Count"    // entries in this response
	headerWALLast  = "X-Wal-Last-Seq" // seq of the last included entry (0: none)
	headerWALHead  = "X-Wal-Head-Seq" // serving log's durable watermark
	headerWALBase  = "X-Wal-Base-Seq" // serving log's checkpoint base
)

// handleWAL streams framed log entries to followers: GET /wal?from=N
// returns durable entries with seq >= N (up to ?max bytes, default 1 MiB).
// When nothing qualifies yet it long-polls up to ?wait (capped by
// Config.WALPollWait) and may answer an empty 200 — the follower just asks
// again. Entries rotated into a checkpoint answer 410 Gone: the follower
// needs a snapshot, not the log.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.dyn == nil {
		writeError(w, http.StatusNotFound, "this server serves a static snapshot; no write-ahead log")
		return
	}
	params := r.URL.Query()
	from := uint64(1)
	if v := params.Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad from %q", v))
			return
		}
		from = n
	}
	maxBytes := 1 << 20
	if v := params.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad max %q", v))
			return
		}
		if n > 8<<20 {
			n = 8 << 20
		}
		maxBytes = n
	}
	wait := s.cfg.WALPollWait
	if v := params.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad wait %q", v))
			return
		}
		if d < wait {
			wait = d
		}
	}

	frames, count, last, err := s.dyn.ReadWALFrames(from, maxBytes)
	if err == nil && count == 0 && wait > 0 {
		// Long-poll: wait for the log head to reach the requested entry,
		// bounded by the wait cap, client disconnect, and server shutdown.
		wctx, cancel := context.WithTimeout(r.Context(), wait)
		stopAfter := context.AfterFunc(s.baseCtx, cancel)
		_ = s.dyn.WaitWALSynced(wctx, from)
		stopAfter()
		cancel()
		frames, count, last, err = s.dyn.ReadWALFrames(from, maxBytes)
	}
	st := s.dyn.WALStats()
	if st != nil {
		w.Header().Set(headerWALHead, strconv.FormatUint(st.SyncedSeq, 10))
		w.Header().Set(headerWALBase, strconv.FormatUint(st.BaseSeq, 10))
	}
	if err != nil {
		switch {
		case errors.Is(err, xseq.ErrUnsupported):
			writeError(w, http.StatusNotFound, "this index has no write-ahead log")
		case errors.Is(err, xseq.ErrWALRotated):
			writeError(w, http.StatusGone, err.Error())
		default:
			s.cfg.Logf("server: wal read from seq %d failed: %v", from, err)
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set(headerWALCount, strconv.Itoa(count))
	w.Header().Set(headerWALLast, strconv.FormatUint(last, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frames)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(frames)
}

// replProtocolError is a malformed or inconsistent primary response —
// a missing or unparsable X-Wal-* header, an entry count that does not
// match the advertised one. The follower treats it like any other
// transient failure (backs off and retries; a flaky proxy can mangle one
// response) but counts it separately in /stats so a systematically
// broken peer is visible.
type replProtocolError struct {
	what string
}

func (e *replProtocolError) Error() string { return "replication protocol: " + e.what }

// retryAfterError carries an explicit Retry-After hint from the primary
// (429/503): the follower sleeps the hinted duration instead of walking
// its own backoff ladder — the primary knows when it will have capacity.
type retryAfterError struct {
	status string
	after  time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("primary answered %s (retry after %v)", e.status, e.after)
}

// maxRetryAfter caps how long a primary's Retry-After hint can stall the
// follower — a corrupted or hostile header must not park replication.
const maxRetryAfter = 30 * time.Second

// headerUint parses a required uint64 response header; a missing or
// malformed value is a protocol error, never a silent zero (a zero head
// would masquerade as "primary is empty" and trip data-loss detection).
func headerUint(h http.Header, key string) (uint64, error) {
	v := h.Get(key)
	if v == "" {
		return 0, &replProtocolError{what: "missing " + key + " header"}
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, &replProtocolError{what: fmt.Sprintf("bad %s header %q", key, v)}
	}
	return n, nil
}

// retryAfterHint reads a Retry-After header as integer seconds, 0 when
// absent or malformed (the caller falls back to its own backoff).
func retryAfterHint(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// replicator tails a primary's /wal endpoint and applies every entry to
// the local dynamic index. It reconnects with exponential backoff plus
// jitter, resumes from the last applied sequence number (which a local WAL
// preserves across restarts), and degrades gracefully: while the primary
// is unreachable the follower keeps serving reads and reports the
// condition through /healthz. When the primary rotates its log past the
// follower's position (410 Gone), the loop switches to re-seeding: it
// downloads the primary's latest checkpoint from /snapshot, verifies
// length and CRC, swaps it in atomically, and resumes tailing from the
// snapshot's sequence number — reads keep being served from the old state
// the whole time, and any failure leaves that state untouched.
type replicator struct {
	s      *Server
	client *http.Client
	done   chan struct{}

	mu            sync.Mutex
	lastErr       error
	lastContact   time.Time
	primaryHead   uint64
	gone          bool // primary rotated past our position; log cannot catch us up
	attempts      int64
	applied       int64
	protocolErrs  int64
	reseeds       int64 // completed snapshot re-seeds
	reseedTries   int64 // re-seed attempts, including failed ones
	lastReseedErr error
	seedSeq       uint64 // seq of the last snapshot swapped in
	seedBytes     int64  // bytes fetched by the last successful re-seed
}

func newReplicator(s *Server) *replicator {
	return &replicator{
		s: s,
		// No overall request timeout: /wal long-polls by design. Dial and
		// header timeouts keep a dead primary from hanging a poll forever.
		client: &http.Client{Transport: &http.Transport{
			ResponseHeaderTimeout: s.cfg.WALPollWait + 10*time.Second,
		}},
		done: make(chan struct{}),
	}
}

func (r *replicator) wait() { <-r.done }

// run is the replication loop; it exits when ctx (the server's base
// context) is cancelled. Each round either tails the log (poll) or, after
// the primary has rotated past us, re-seeds from its snapshot — the same
// backoff ladder paces both, so a primary without a checkpoint yet is
// retried gently instead of hammered.
func (r *replicator) run(ctx context.Context) {
	defer close(r.done)
	backoff := r.s.cfg.FollowMinBackoff
	for ctx.Err() == nil {
		var err error
		if r.isGone() {
			err = r.reseed(ctx)
		} else {
			err = r.poll(ctx)
		}
		if err == nil {
			backoff = r.s.cfg.FollowMinBackoff
			continue // the primary's long-poll paces the loop
		}
		if ctx.Err() != nil {
			return
		}
		var perr *replProtocolError
		if errors.As(err, &perr) {
			r.mu.Lock()
			r.protocolErrs++
			r.mu.Unlock()
		}
		r.mu.Lock()
		r.lastErr = err
		r.mu.Unlock()
		var ra *retryAfterError
		if errors.As(err, &ra) {
			// The primary said when to come back; honour it (bounded) and
			// do not escalate the ladder — this is flow control, not failure.
			d := min(ra.after, maxRetryAfter)
			if d < r.s.cfg.FollowMinBackoff {
				d = r.s.cfg.FollowMinBackoff
			}
			r.s.cfg.Logf("server: follower: %v", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(d):
			}
			continue
		}
		r.s.cfg.Logf("server: follower: %v (retrying in ~%v)", err, backoff)
		// Full jitter around the current backoff step: between 50% and
		// 150% of it, so a fleet of followers does not reconnect in sync.
		d := backoff/2 + rand.N(backoff+1)
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > r.s.cfg.FollowMaxBackoff {
			backoff = r.s.cfg.FollowMaxBackoff
		}
	}
}

func (r *replicator) isGone() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gone
}

// poll performs one GET /wal round: request entries after the last applied
// sequence number, apply everything received. A nil return means the
// primary answered (possibly with no new entries).
func (r *replicator) poll(ctx context.Context) error {
	from := r.s.dyn.AppliedSeq() + 1
	u := strings.TrimSuffix(r.s.cfg.FollowURL, "/") + "/wal?" + url.Values{
		"from": {strconv.FormatUint(from, 10)},
		"wait": {r.s.cfg.WALPollWait.String()},
	}.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return fmt.Errorf("follow %s: %w", r.s.cfg.FollowURL, err)
	}
	r.mu.Lock()
	r.attempts++
	r.mu.Unlock()
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("follow %s: %w", r.s.cfg.FollowURL, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		r.mu.Lock()
		r.gone = true
		r.mu.Unlock()
		return fmt.Errorf("primary rotated its log past seq %d; re-seeding from its latest snapshot", from)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if after := retryAfterHint(resp.Header); after > 0 {
			return &retryAfterError{status: resp.Status, after: after}
		}
		return fmt.Errorf("primary answered %s to /wal", resp.Status)
	default:
		return fmt.Errorf("primary answered %s to /wal", resp.Status)
	}

	head, err := headerUint(resp.Header, headerWALHead)
	if err != nil {
		return err
	}
	wantCount, err := headerUint(resp.Header, headerWALCount)
	if err != nil {
		return err
	}
	wantLast, err := headerUint(resp.Header, headerWALLast)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.lastContact = time.Now()
	r.primaryHead = head
	r.mu.Unlock()
	if applied := from - 1; head < applied {
		return fmt.Errorf("primary log head %d is behind this follower's position %d (wrong primary, or primary data loss)", head, applied)
	}

	rd := wal.NewReader(resp.Body, from-1)
	var got uint64
	var lastSeq uint64
	for {
		seq, payload, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("wal stream from %s: %w", r.s.cfg.FollowURL, err)
		}
		if err := r.s.dyn.ApplyReplicated(ctx, seq, payload); err != nil {
			return fmt.Errorf("apply replicated seq %d: %w", seq, err)
		}
		got++
		lastSeq = seq
		r.mu.Lock()
		r.applied++
		r.mu.Unlock()
	}
	if got != wantCount || (got > 0 && lastSeq != wantLast) {
		// The entries already applied are intact (each frame is CRC-checked)
		// but the response was cut short or over-delivered against its own
		// headers: the next poll resumes from the real position.
		return &replProtocolError{what: fmt.Sprintf(
			"body carried %d entries to seq %d, headers promised %d to seq %d",
			got, lastSeq, wantCount, wantLast)}
	}
	r.mu.Lock()
	r.lastErr = nil
	r.mu.Unlock()
	return nil
}

// reseed performs one snapshot re-seed round: download the primary's
// latest checkpoint, verify it end to end, swap it in, resume tailing.
// Until fetchAndSwap commits the swap, the follower keeps answering
// queries from its old state; any failure is retried by run's backoff.
func (r *replicator) reseed(ctx context.Context) error {
	r.mu.Lock()
	r.reseedTries++
	r.mu.Unlock()
	seq, n, err := r.fetchAndSwap(ctx)
	if err != nil {
		r.mu.Lock()
		r.lastReseedErr = err
		r.mu.Unlock()
		return fmt.Errorf("re-seed: %w", err)
	}
	r.mu.Lock()
	r.gone = false
	r.lastErr = nil
	r.lastReseedErr = nil
	r.reseeds++
	r.seedSeq = seq
	r.seedBytes = n
	r.mu.Unlock()
	r.s.cfg.Logf("server: follower re-seeded from %s at seq %d (%d bytes); resuming log tail",
		r.s.cfg.FollowURL, seq, n)
	return nil
}

// fetchAndSwap downloads GET /snapshot to a temp file, verifies the
// advertised length and CRC against what actually arrived, loads it, and
// only then swaps the follower's serving state and WAL. Order matters:
// every validation happens against the temp file before the swap, so a
// truncated, bit-flipped, or mid-stream-aborted download changes nothing.
func (r *replicator) fetchAndSwap(ctx context.Context) (seq uint64, n int64, err error) {
	u := strings.TrimSuffix(r.s.cfg.FollowURL, "/") + "/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return 0, 0, fmt.Errorf("primary has no snapshot to seed from (arm -checkpoint-every on it): %s", resp.Status)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if after := retryAfterHint(resp.Header); after > 0 {
			return 0, 0, &retryAfterError{status: resp.Status, after: after}
		}
		return 0, 0, fmt.Errorf("primary answered %s to /snapshot", resp.Status)
	default:
		return 0, 0, fmt.Errorf("primary answered %s to /snapshot", resp.Status)
	}
	seq, err = headerUint(resp.Header, headerSnapSeq)
	if err != nil {
		return 0, 0, err
	}
	crcWant, err := headerUint(resp.Header, headerSnapCRC)
	if err != nil {
		return 0, 0, err
	}
	if crcWant > math.MaxUint32 {
		return 0, 0, &replProtocolError{what: fmt.Sprintf("%s %d out of CRC-32 range", headerSnapCRC, crcWant)}
	}
	if resp.ContentLength < 0 {
		return 0, 0, &replProtocolError{what: "snapshot response without Content-Length"}
	}

	// Stage the download next to its final home so the publishing rename
	// stays on one filesystem; memory-only followers stage in the system
	// temp dir and just discard the file after loading.
	dir := os.TempDir()
	if r.s.cfg.CheckpointPath != "" {
		dir = filepath.Dir(r.s.cfg.CheckpointPath)
	}
	f, err := os.CreateTemp(dir, "xseq-reseed-*.tmp")
	if err != nil {
		return 0, 0, err
	}
	tmpPath := f.Name()
	kept := false
	defer func() {
		if !kept {
			os.Remove(tmpPath)
		}
	}()

	body := io.Reader(resp.Body)
	if hook := r.s.cfg.testSnapshotBody; hook != nil {
		body = hook(body)
	}
	h := crc32.NewIEEE()
	n, copyErr := io.Copy(io.MultiWriter(f, h), body)
	if copyErr != nil {
		f.Close()
		return 0, 0, fmt.Errorf("snapshot download after %d bytes: %w", n, copyErr)
	}
	if n != resp.ContentLength {
		f.Close()
		return 0, 0, fmt.Errorf("snapshot download truncated: got %d bytes, want %d", n, resp.ContentLength)
	}
	if got := h.Sum32(); got != uint32(crcWant) {
		f.Close()
		return 0, 0, fmt.Errorf("snapshot download corrupt: crc %08x, want %08x", got, uint32(crcWant))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}

	// LoadFile re-verifies the snapshot's own section checksums: a corrupt
	// file that somehow passed the transfer CRC still cannot get past here.
	ix, err := xseq.LoadFile(tmpPath)
	if err != nil {
		return 0, 0, fmt.Errorf("downloaded snapshot: %w", err)
	}
	if r.s.cfg.CheckpointPath != "" {
		// Keep the verified seed for restarts, published atomically.
		if err := os.Rename(tmpPath, r.s.cfg.CheckpointPath); err != nil {
			return 0, 0, err
		}
		kept = true
		if err := fsyncDir(r.s.cfg.CheckpointPath); err != nil {
			return 0, 0, err
		}
	}
	if err := r.s.dyn.ReseedFromSnapshot(ix, seq); err != nil {
		return 0, 0, err
	}
	return seq, n, nil
}

// replicationStatus is the follower's state snapshot for /stats and
// /healthz.
type replicationStatus struct {
	// Primary is the followed base URL.
	Primary string `json:"primary"`
	// State is "tailing" while the log stream suffices, "reseeding" while
	// the primary has rotated past this follower and a snapshot transfer
	// is pending or in flight.
	State string `json:"state"`
	// AppliedSeq is the local replication position; PrimaryHeadSeq the
	// primary's durable watermark at last contact; Lag their difference.
	AppliedSeq     uint64 `json:"applied_seq"`
	PrimaryHeadSeq uint64 `json:"primary_head_seq"`
	Lag            uint64 `json:"lag"`
	// Attempts counts /wal polls; EntriesApplied replicated entries.
	Attempts       int64 `json:"attempts"`
	EntriesApplied int64 `json:"entries_applied"`
	// ProtocolErrors counts malformed primary responses (bad or missing
	// X-Wal-* headers, body/header entry-count mismatches).
	ProtocolErrors int64 `json:"protocol_errors,omitempty"`
	// Reseeds counts completed snapshot re-seeds; ReseedAttempts includes
	// the failed tries; SeedSeq and SnapshotBytesFetched describe the last
	// snapshot swapped in.
	Reseeds              int64  `json:"reseeds,omitempty"`
	ReseedAttempts       int64  `json:"reseed_attempts,omitempty"`
	SeedSeq              uint64 `json:"seed_seq,omitempty"`
	SnapshotBytesFetched int64  `json:"snapshot_bytes_fetched,omitempty"`
	// LastReseedError is the most recent re-seed failure, "" after success.
	LastReseedError string `json:"last_reseed_error,omitempty"`
	// LastContactMS is how long ago the primary last answered (-1: never).
	LastContactMS float64 `json:"last_contact_ms"`
	// LastError is the current replication failure, "" while healthy.
	LastError string `json:"last_error,omitempty"`
	// Gone reports that the primary rotated its log past this follower's
	// position: polling cannot catch up until a re-seed completes.
	Gone bool `json:"gone,omitempty"`
}

func (r *replicator) status() *replicationStatus {
	applied := r.s.dyn.AppliedSeq()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &replicationStatus{
		Primary:              r.s.cfg.FollowURL,
		State:                "tailing",
		AppliedSeq:           applied,
		PrimaryHeadSeq:       r.primaryHead,
		Attempts:             r.attempts,
		EntriesApplied:       r.applied,
		ProtocolErrors:       r.protocolErrs,
		Reseeds:              r.reseeds,
		ReseedAttempts:       r.reseedTries,
		SeedSeq:              r.seedSeq,
		SnapshotBytesFetched: r.seedBytes,
		LastContactMS:        -1,
		Gone:                 r.gone,
	}
	if r.gone {
		st.State = "reseeding"
	}
	if r.primaryHead > applied {
		st.Lag = r.primaryHead - applied
	}
	if !r.lastContact.IsZero() {
		st.LastContactMS = float64(time.Since(r.lastContact)) / float64(time.Millisecond)
	}
	if r.lastErr != nil {
		st.LastError = r.lastErr.Error()
	}
	if r.lastReseedErr != nil {
		st.LastReseedError = r.lastReseedErr.Error()
	}
	return st
}

// requestTimeout resolves the per-request deadline: the ?timeout parameter
// when present (capped at Config.MaxTimeout), Config.DefaultTimeout
// otherwise.
func requestTimeout(params url.Values, cfg Config) (time.Duration, error) {
	timeout := cfg.DefaultTimeout
	if v := params.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad timeout %q", v)
		}
		if d > cfg.MaxTimeout {
			d = cfg.MaxTimeout
		}
		timeout = d
	}
	return timeout, nil
}
