package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a trace-log sink safe for handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// metricsBody runs the server's /metrics handler and returns the text
// exposition.
func metricsBody(t *testing.T, srv *Server) string {
	t.Helper()
	mts := httptest.NewServer(srv.MetricsHandler())
	defer mts.Close()
	resp, err := http.Get(mts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// metricValue extracts the value of the first sample whose name+labels
// prefix matches.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			var v float64
			if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err != nil {
				t.Fatalf("bad sample %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no metric with prefix %q in:\n%s", prefix, body)
	return 0
}

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, 5, nil)
	for i := 0; i < 4; i++ {
		if code, _, body := getQuery(t, ts.URL, "q="+matchAll); code != 200 {
			t.Fatalf("query %d: %d %s", i, code, body)
		}
	}
	// One parse error to move the error counter.
	if code, _ := get(t, ts.URL+"/query?q=%3E%3E%3E"); code != http.StatusBadRequest {
		t.Fatalf("bad query returned %d, want 400", code)
	}

	body := metricsBody(t, srv)
	if got := metricValue(t, body, "xseq_queries_total"); got != 4 {
		t.Errorf("xseq_queries_total = %g, want 4", got)
	}
	if got := metricValue(t, body, "xseq_query_errors_total"); got != 1 {
		t.Errorf("xseq_query_errors_total = %g, want 1", got)
	}
	if got := metricValue(t, body, `xseq_query_duration_seconds_count{layout="monolithic"}`); got != 4 {
		t.Errorf("monolithic latency count = %g, want 4", got)
	}
	if got := metricValue(t, body, "xseq_index_documents"); got != 5 {
		t.Errorf("xseq_index_documents = %g, want 5", got)
	}
	for _, series := range []string{
		`xseq_query_duration_seconds_bucket{layout="monolithic",le="+Inf"}`,
		"xseq_query_duration_seconds_sum",
		"xseq_shard_query_duration_seconds_count",
		"xseq_admission_slots",
		"xseq_admission_admitted_total",
		"xseq_query_patterns_tracked",
		"# HELP xseq_queries_total",
		"# TYPE xseq_query_duration_seconds histogram",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}
}

func TestStatsLatencyAndPatterns(t *testing.T) {
	_, ts := newTestServer(t, 3, nil)
	for i := 0; i < 3; i++ {
		getQuery(t, ts.URL, "q="+matchAll)
	}
	getQuery(t, ts.URL, "q=/rec/title")

	code, body := get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatalf("/stats: %d %s", code, body)
	}
	var st struct {
		Latency map[string]struct {
			Count int64   `json:"count"`
			P50MS float64 `json:"p50_ms"`
			P99MS float64 `json:"p99_ms"`
		} `json:"latency"`
		QueryPatterns []struct {
			Pattern string `json:"pattern"`
			Count   int64  `json:"count"`
		} `json:"query_patterns"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad /stats body: %v\n%s", err, body)
	}
	lat, ok := st.Latency["monolithic"]
	if !ok || lat.Count != 4 {
		t.Fatalf("latency[monolithic] = %+v (ok=%v), want count 4", lat, ok)
	}
	if lat.P50MS < 0 || lat.P99MS < lat.P50MS {
		t.Fatalf("implausible percentiles: %+v", lat)
	}
	if len(st.QueryPatterns) != 2 {
		t.Fatalf("query_patterns = %+v, want 2 entries", st.QueryPatterns)
	}
	if st.QueryPatterns[0].Count != 3 {
		t.Fatalf("hottest pattern %+v, want count 3 first", st.QueryPatterns[0])
	}
}

func TestTraceLogLines(t *testing.T) {
	var sink syncBuffer
	_, ts := newTestServer(t, 4, func(c *Config) { c.TraceLog = &sink })
	getQuery(t, ts.URL, "q="+matchAll)
	getQuery(t, ts.URL, "q="+matchAll+"&limit=2")

	lines := strings.Split(strings.TrimSpace(sink.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), sink.String())
	}
	seen := make(map[string]bool)
	for _, line := range lines {
		var rec struct {
			Trace     string  `json:"trace"`
			Q         string  `json:"q"`
			Layout    string  `json:"layout"`
			Status    int     `json:"status"`
			Results   int     `json:"results"`
			ElapsedMS float64 `json:"elapsed_ms"`
			Instances int64   `json:"instances"`
			Orders    int64   `json:"orders"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if len(rec.Trace) != 16 || seen[rec.Trace] {
			t.Errorf("trace id %q: want 16 hex chars, unique per request", rec.Trace)
		}
		seen[rec.Trace] = true
		if rec.Q != matchAll || rec.Layout != "monolithic" || rec.Status != 200 {
			t.Errorf("trace line %+v: wrong q/layout/status", rec)
		}
		if rec.Instances < 1 || rec.Orders < 1 {
			t.Errorf("trace line %+v: kernel counters not recorded", rec)
		}
	}
}

// TestTraceLogShardedSpans replays against a sharded snapshot and checks
// the per-shard spans on each trace line carry the line's own trace id.
func TestTraceLogShardedSpans(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sharded.idx")
	buildShardedSnapshot(t, path, 12, 4)
	var sink syncBuffer
	srv, err := New(Config{IndexPath: path, Logf: silentLogf, TraceLog: &sink, DefaultTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code, _, body := getQuery(t, ts.URL, "q="+matchAll); code != 200 {
		t.Fatalf("query: %d %s", code, body)
	}
	var rec struct {
		Trace    string  `json:"trace"`
		Layout   string  `json:"layout"`
		FanoutMS float64 `json:"fanout_ms"`
		Shards   []struct {
			Trace   string  `json:"trace"`
			Shard   int32   `json:"shard"`
			Results int32   `json:"results"`
			MS      float64 `json:"ms"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(sink.String())), &rec); err != nil {
		t.Fatalf("bad trace line: %v\n%s", err, sink.String())
	}
	if rec.Layout != "sharded" {
		t.Errorf("layout = %q, want sharded", rec.Layout)
	}
	if len(rec.Shards) != 4 {
		t.Fatalf("trace line has %d spans, want 4:\n%s", len(rec.Shards), sink.String())
	}
	for _, sp := range rec.Shards {
		if sp.Trace != rec.Trace {
			t.Errorf("span shard %d trace %q != request trace %q", sp.Shard, sp.Trace, rec.Trace)
		}
	}
	if rec.FanoutMS <= 0 {
		t.Errorf("fanout_ms = %g, want > 0", rec.FanoutMS)
	}

	body := metricsBody(t, srv)
	if got := metricValue(t, body, "xseq_shard_query_duration_seconds_count"); got != 4 {
		t.Errorf("per-shard latency samples = %g, want 4", got)
	}
}

// TestTelemetryHammer races traced queries, /stats, and /metrics scrapes;
// meaningful mostly under -race.
func TestTelemetryHammer(t *testing.T) {
	var sink syncBuffer
	srv, ts := newTestServer(t, 4, func(c *Config) { c.TraceLog = &sink })
	mts := httptest.NewServer(srv.MetricsHandler())
	defer mts.Close()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 3 {
				case 0:
					http.Get(ts.URL + "/query?q=" + matchAll)
				case 1:
					http.Get(ts.URL + "/stats")
				default:
					http.Get(mts.URL + "/")
				}
			}
		}(g)
	}
	wg.Wait()
}
