package server

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errOverloaded reports that both the concurrency slots and the wait queue
// are full; the caller answers 429 with a Retry-After hint.
var errOverloaded = errors.New("server: overloaded: all slots and queue positions taken")

// gate is the admission controller: at most maxConcurrent queries execute
// at once, at most maxQueue more wait for a slot, and everything beyond
// that is rejected immediately — load sheds at the door instead of piling
// up goroutines until the process falls over.
type gate struct {
	slots chan struct{} // one token per executing query
	queue chan struct{} // one token per waiting query

	active  atomic.Int64 // currently executing
	waiting atomic.Int64 // currently queued for a slot
	// lifetime counters for /stats
	admitted atomic.Int64
	rejected atomic.Int64
}

func newGate(maxConcurrent, maxQueue int) *gate {
	return &gate{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueue),
	}
}

// acquire admits the caller, blocking in the bounded wait queue when all
// slots are busy. It returns errOverloaded when the queue is full too, or
// ctx.Err() when the caller's context ends while waiting. A nil return
// must be paired with release().
func (g *gate) acquire(ctx doneCtx) error {
	select {
	case g.slots <- struct{}{}:
		g.active.Add(1)
		g.admitted.Add(1)
		return nil
	default:
	}
	select {
	case g.queue <- struct{}{}:
	default:
		g.rejected.Add(1)
		return errOverloaded
	}
	g.waiting.Add(1)
	defer func() {
		g.waiting.Add(-1)
		<-g.queue
	}()
	select {
	case g.slots <- struct{}{}:
		g.active.Add(1)
		g.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the caller's slot.
func (g *gate) release() {
	g.active.Add(-1)
	<-g.slots
}

// doneCtx is the slice of context.Context the gate needs; taking the
// interface keeps gate testable without plumbing real requests.
type doneCtx interface {
	Done() <-chan struct{}
	Err() error
}

// drainer tracks in-flight requests and coordinates graceful shutdown:
// enter/exit bracket each request, begin flips the gate shut and returns a
// channel closed once the last in-flight request exits. Unlike a
// sync.WaitGroup, enter-vs-begin races are resolved under one lock, so a
// request is either counted (and drained) or rejected — never lost.
type drainer struct {
	mu       sync.Mutex
	draining bool
	n        int
	zero     chan struct{}
}

// enter registers one request; it reports false — and registers nothing —
// once draining has begun.
func (d *drainer) enter() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return false
	}
	d.n++
	return true
}

// exit unregisters one request previously entered.
func (d *drainer) exit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n--
	if d.draining && d.n == 0 && d.zero != nil {
		close(d.zero)
		d.zero = nil
	}
}

// begin starts (or re-observes) draining and returns a channel that is
// closed when no requests remain in flight.
func (d *drainer) begin() <-chan struct{} {
	d.mu.Lock()
	defer d.mu.Unlock()
	ch := make(chan struct{})
	if !d.draining {
		d.draining = true
		d.zero = ch
	} else if d.zero != nil {
		return d.zero
	}
	if d.n == 0 {
		if d.zero == ch {
			d.zero = nil
		}
		close(ch)
	}
	return ch
}

// isDraining reports whether begin has been called.
func (d *drainer) isDraining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}
