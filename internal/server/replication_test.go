package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newPrimary starts a durable dynamic primary over a fresh WAL.
func newPrimary(t *testing.T, walPath string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		WALPath:        walPath,
		DefaultTimeout: 30 * time.Second,
		WALPollWait:    200 * time.Millisecond,
		Logf:           silentLogf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// newFollower starts a follower of primaryURL.
func newFollower(t *testing.T, primaryURL string, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		FollowURL:        primaryURL,
		DefaultTimeout:   30 * time.Second,
		WALPollWait:      200 * time.Millisecond,
		FollowMinBackoff: 10 * time.Millisecond,
		FollowMaxBackoff: 100 * time.Millisecond,
		Logf:             silentLogf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// postInsert sends one document to /insert and decodes the response.
func postInsert(t *testing.T, base string, id int, xml string) (int, insertResponse, []byte) {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/insert?id=%d", base, id), "application/xml",
		strings.NewReader(xml))
	if err != nil {
		t.Fatalf("POST /insert: %v", err)
	}
	defer resp.Body.Close()
	var ir insertResponse
	body := make([]byte, 0)
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ir); err != nil {
			t.Fatalf("bad /insert body: %v", err)
		}
	} else {
		var e errorResponse
		_ = dec.Decode(&e)
		body = []byte(e.Error)
	}
	return resp.StatusCode, ir, body
}

// waitUntil polls cond every few milliseconds until it holds or the
// deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func docXML(i int) string {
	return fmt.Sprintf("<rec><title>t%d</title><city>boston</city></rec>", i)
}

func TestPrimaryInsertAndQuery(t *testing.T) {
	_, ts := newPrimary(t, filepath.Join(t.TempDir(), "p.wal"), nil)

	for i := 0; i < 3; i++ {
		code, ir, body := postInsert(t, ts.URL, i, docXML(i))
		if code != http.StatusOK {
			t.Fatalf("insert %d = %d: %s", i, code, body)
		}
		if ir.Seq != uint64(i+1) || ir.Documents != i+1 {
			t.Fatalf("insert %d response = %+v", i, ir)
		}
	}
	code, qr, _ := getQuery(t, ts.URL, "q="+matchAll)
	if code != http.StatusOK || qr.Count != 3 {
		t.Fatalf("query on primary = %d, %+v", code, qr)
	}
	// Duplicate id → 409; the log is untouched.
	if code, _, body := postInsert(t, ts.URL, 1, docXML(1)); code != http.StatusConflict {
		t.Fatalf("duplicate insert = %d: %s", code, body)
	}
	// Malformed document → 400.
	if code, _, _ := postInsert(t, ts.URL, 9, "<unclosed>"); code != http.StatusBadRequest {
		t.Fatalf("bad xml accepted")
	}
	// Missing id → 400.
	if resp, err := http.Post(ts.URL+"/insert", "application/xml", strings.NewReader(docXML(9))); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing id = %d", resp.StatusCode)
	}
	// /stats carries the durability and ingest sections.
	_, body := get(t, ts.URL+"/stats")
	var st statsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "primary" || st.Ingest == nil || st.Durability == nil {
		t.Fatalf("primary stats = %s", body)
	}
	if st.Ingest.Inserts != 3 || st.Ingest.AppliedSeq != 3 || st.Durability.SyncedSeq != 3 || st.Durability.LastSeq != 3 {
		t.Fatalf("stats seqs = %+v / %+v", st.Ingest, st.Durability)
	}
}

func TestPrimaryCrashRecoveryOverHTTP(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "p.wal")
	srv, ts := newPrimary(t, walPath, nil)
	for i := 0; i < 5; i++ {
		if code, _, body := postInsert(t, ts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("insert = %d: %s", code, body)
		}
	}
	// Simulated crash: the process goes away without Drain/Close; only the
	// fsynced log survives.
	ts.Close()
	srv.cancel()
	srv.dyn.Close()

	srv2, ts2 := newPrimary(t, walPath, nil)
	if srv2.dyn.AppliedSeq() != 5 {
		t.Fatalf("recovered seq = %d", srv2.dyn.AppliedSeq())
	}
	code, qr, _ := getQuery(t, ts2.URL, "q="+matchAll)
	if code != 200 || qr.Count != 5 {
		t.Fatalf("recovered query = %d, %+v", code, qr)
	}
	// Ingestion resumes with the next sequence number.
	if code, ir, _ := postInsert(t, ts2.URL, 5, docXML(5)); code != 200 || ir.Seq != 6 {
		t.Fatalf("resumed insert = %d seq %d", code, ir.Seq)
	}
}

func TestWALEndpoint(t *testing.T) {
	_, ts := newPrimary(t, filepath.Join(t.TempDir(), "p.wal"), nil)
	for i := 0; i < 3; i++ {
		postInsert(t, ts.URL, i, docXML(i))
	}

	resp, err := http.Get(ts.URL + "/wal?from=1&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/wal = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(headerWALCount); got != "3" {
		t.Fatalf("count header = %q", got)
	}
	if got := resp.Header.Get(headerWALLast); got != "3" {
		t.Fatalf("last header = %q", got)
	}
	if got := resp.Header.Get(headerWALHead); got != "3" {
		t.Fatalf("head header = %q", got)
	}

	// Beyond the head with no wait: empty 200, headers still advertise the
	// head so the follower can measure lag.
	resp2, err := http.Get(ts.URL + "/wal?from=4&wait=0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 || resp2.Header.Get(headerWALCount) != "0" {
		t.Fatalf("beyond-head /wal = %d count %q", resp2.StatusCode, resp2.Header.Get(headerWALCount))
	}

	// Long-poll: a request parked beyond the head completes once an insert
	// lands.
	type pollResult struct {
		count string
		err   error
	}
	done := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/wal?from=4&wait=5s")
		if err != nil {
			done <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		done <- pollResult{count: resp.Header.Get(headerWALCount)}
	}()
	time.Sleep(20 * time.Millisecond)
	postInsert(t, ts.URL, 3, docXML(3))
	select {
	case r := <-done:
		if r.err != nil || r.count != "1" {
			t.Fatalf("long-poll = %q, %v", r.count, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never completed")
	}

	if code, _ := get(t, ts.URL+"/wal?from=zzz"); code != http.StatusBadRequest {
		t.Fatalf("bad from = %d", code)
	}
}

func TestStaticModeRejectsDynamicEndpoints(t *testing.T) {
	_, ts := newTestServer(t, 2, nil)
	if code, _, _ := postInsert(t, ts.URL, 9, docXML(9)); code != http.StatusNotFound {
		t.Fatalf("insert on static = %d", code)
	}
	if code, _ := get(t, ts.URL+"/wal?wait=0"); code != http.StatusNotFound {
		t.Fatalf("/wal on static = %d", code)
	}
}

func TestFollowerCatchUpAndReadOnly(t *testing.T) {
	dir := t.TempDir()
	_, pts := newPrimary(t, filepath.Join(dir, "p.wal"), nil)
	for i := 0; i < 8; i++ {
		postInsert(t, pts.URL, i, docXML(i))
	}
	// A follower started from empty catches up over HTTP.
	fsrv, fts := newFollower(t, pts.URL, nil)
	waitUntil(t, 5*time.Second, "follower catch-up", func() bool {
		return fsrv.dyn.AppliedSeq() == 8
	})
	code, qr, _ := getQuery(t, fts.URL, "q="+matchAll)
	if code != 200 || qr.Count != 8 {
		t.Fatalf("follower query = %d, %+v", code, qr)
	}
	// New inserts stream continuously.
	postInsert(t, pts.URL, 8, docXML(8))
	waitUntil(t, 5*time.Second, "streamed insert", func() bool {
		return fsrv.dyn.AppliedSeq() == 9
	})
	// The follower refuses writes.
	if code, _, body := postInsert(t, fts.URL, 99, docXML(99)); code != http.StatusForbidden {
		t.Fatalf("insert on follower = %d: %s", code, body)
	}
	// Health and stats report healthy replication.
	_, hb := get(t, fts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(hb, &h); err != nil {
		t.Fatal(err)
	}
	if h.Mode != "follower" || h.Status != "ok" || h.Replication == nil {
		t.Fatalf("follower health = %s", hb)
	}
	if h.Replication.AppliedSeq != 9 || h.Replication.Lag != 0 {
		t.Fatalf("replication status = %+v", h.Replication)
	}
	_, sb := get(t, fts.URL+"/stats")
	var st statsResponse
	if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "follower" || st.Replication == nil || st.Replication.EntriesApplied != 9 {
		t.Fatalf("follower stats = %s", sb)
	}
}

func TestDurableFollowerResumesFromLocalWAL(t *testing.T) {
	dir := t.TempDir()
	_, pts := newPrimary(t, filepath.Join(dir, "p.wal"), nil)
	for i := 0; i < 6; i++ {
		postInsert(t, pts.URL, i, docXML(i))
	}
	fwal := filepath.Join(dir, "f.wal")
	fsrv, fts := newFollower(t, pts.URL, func(c *Config) { c.WALPath = fwal })
	waitUntil(t, 5*time.Second, "durable follower catch-up", func() bool {
		return fsrv.dyn.AppliedSeq() == 6
	})
	fts.Close()
	fsrv.Close()

	// Restarting the follower replays its own log — it rejoins at seq 6,
	// not from zero, and picks up only what is new.
	postInsert(t, pts.URL, 6, docXML(6))
	fsrv2, _ := newFollower(t, pts.URL, func(c *Config) { c.WALPath = fwal })
	if got := fsrv2.dyn.WALStats().ReplayedEntries; got != 6 {
		t.Fatalf("follower replayed %d entries", got)
	}
	waitUntil(t, 5*time.Second, "follower rejoin", func() bool {
		return fsrv2.dyn.AppliedSeq() == 7
	})
	if st := fsrv2.repl.status(); st.EntriesApplied != 1 {
		t.Fatalf("rejoin applied %d entries over HTTP, want 1", st.EntriesApplied)
	}
}

// flakyPrimary fronts a primary that can be taken down and brought back,
// holding one stable URL across "restarts" the way a crashed-and-restarted
// process keeps its address.
type flakyPrimary struct {
	cur atomic.Pointer[Server]
}

func (f *flakyPrimary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s := f.cur.Load(); s != nil {
		s.ServeHTTP(w, r)
		return
	}
	http.Error(w, "primary down", http.StatusBadGateway)
}

func TestFollowerBackoffAndResumeAcrossPrimaryRestart(t *testing.T) {
	dir := t.TempDir()
	pwal := filepath.Join(dir, "p.wal")
	mkPrimary := func() *Server {
		srv, err := New(Config{
			WALPath:        pwal,
			DefaultTimeout: 30 * time.Second,
			WALPollWait:    100 * time.Millisecond,
			Logf:           silentLogf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	fp := &flakyPrimary{}
	p1 := mkPrimary()
	fp.cur.Store(p1)
	pts := httptest.NewServer(fp)
	t.Cleanup(pts.Close)

	for i := 0; i < 4; i++ {
		if code, _, body := postInsert(t, pts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("insert = %d: %s", code, body)
		}
	}
	fsrv, fts := newFollower(t, pts.URL, nil)
	waitUntil(t, 5*time.Second, "initial catch-up", func() bool {
		return fsrv.dyn.AppliedSeq() == 4
	})

	// Primary crashes: followers keep serving reads and flag degradation.
	fp.cur.Store(nil)
	p1.Close()
	waitUntil(t, 5*time.Second, "degraded health while primary is down", func() bool {
		_, hb := get(t, fts.URL+"/healthz")
		var h healthResponse
		return json.Unmarshal(hb, &h) == nil && h.Status == "degraded" &&
			h.Replication != nil && h.Replication.LastError != ""
	})
	if code, qr, _ := getQuery(t, fts.URL, "q="+matchAll); code != 200 || qr.Count != 4 {
		t.Fatalf("follower reads during outage = %d, %+v", code, qr)
	}

	// Primary restarts over the same WAL at the same address; the follower
	// reconnects via backoff and resumes from its position — no re-send of
	// entries 1..4, and new entries flow again.
	p2 := mkPrimary()
	t.Cleanup(func() { p2.Close() })
	if p2.dyn.AppliedSeq() != 4 {
		t.Fatalf("restarted primary recovered seq %d", p2.dyn.AppliedSeq())
	}
	fp.cur.Store(p2)
	for i := 4; i < 7; i++ {
		if code, _, body := postInsert(t, pts.URL, i, docXML(i)); code != 200 {
			t.Fatalf("post-restart insert = %d: %s", code, body)
		}
	}
	waitUntil(t, 10*time.Second, "post-restart convergence", func() bool {
		return fsrv.dyn.AppliedSeq() == 7
	})
	waitUntil(t, 5*time.Second, "health recovery", func() bool {
		_, hb := get(t, fts.URL+"/healthz")
		var h healthResponse
		return json.Unmarshal(hb, &h) == nil && h.Status == "ok"
	})
	code, qr, _ := getQuery(t, fts.URL, "q="+matchAll)
	if code != 200 || qr.Count != 7 {
		t.Fatalf("post-restart follower query = %d, %+v", code, qr)
	}
}

func TestFollowerFlagsRotatedAwayPrimary(t *testing.T) {
	// A primary that rotated its log past the follower's position can
	// never catch it up by polling; the follower switches to re-seeding.
	// This one answers 410 to /snapshot too (rotation enabled but the
	// checkpoint file lost), so the re-seed keeps failing — the follower
	// must stay degraded, keep retrying, and keep serving.
	gone := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(headerWALBase, "100")
		w.Header().Set(headerWALHead, "120")
		writeError(w, http.StatusGone, "entries rotated into a checkpoint")
	}))
	t.Cleanup(gone.Close)
	fsrv, fts := newFollower(t, gone.URL, nil)
	waitUntil(t, 5*time.Second, "gone detection", func() bool {
		st := fsrv.repl.status()
		return st.Gone && st.LastError != ""
	})
	_, hb := get(t, fts.URL+"/healthz")
	var h healthResponse
	if err := json.Unmarshal(hb, &h); err != nil || h.Status != "degraded" || !h.Replication.Gone {
		t.Fatalf("gone health = %s (%v)", hb, err)
	}
	// The replicator is in the re-seed state and accounting its failures.
	waitUntil(t, 5*time.Second, "reseed attempts", func() bool {
		st := fsrv.repl.status()
		return st.State == "reseeding" && st.ReseedAttempts >= 1 && st.LastReseedError != ""
	})
	if st := fsrv.repl.status(); st.Reseeds != 0 {
		t.Fatalf("reseed against a snapshot-less primary succeeded: %+v", st)
	}
	// Still answering queries the whole time.
	if code, _, _ := getQuery(t, fts.URL, "q="+matchAll); code != 200 {
		t.Fatalf("follower stopped serving while stuck re-seeding: %d", code)
	}
}

func TestReplicationHammer(t *testing.T) {
	// Concurrent inserters on the primary, a follower tailing live, and
	// readers on both — everything must converge to identical answers.
	dir := t.TempDir()
	psrv, pts := newPrimary(t, filepath.Join(dir, "p.wal"), func(c *Config) {
		c.WALSyncWindow = 2 * time.Millisecond // group commit under load
	})
	fsrv, fts := newFollower(t, pts.URL, func(c *Config) {
		c.WALPath = filepath.Join(dir, "f.wal")
	})

	const writers, perWriter = 4, 20
	var wg sync.WaitGroup
	insertErrs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := g*perWriter + i
				code, _, body := postInsert(t, pts.URL, id, docXML(id))
				if code != http.StatusOK {
					insertErrs <- fmt.Errorf("insert %d = %d: %s", id, code, body)
					return
				}
			}
		}(g)
	}
	// Readers hammer both ends while the writes stream.
	stopReads := make(chan struct{})
	var readers sync.WaitGroup
	var readErrs atomic.Int64
	for _, base := range []string{pts.URL, fts.URL} {
		readers.Add(1)
		go func(base string) {
			defer readers.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				resp, err := http.Get(base + "/query?q=" + url.QueryEscape(matchAll))
				if err != nil {
					readErrs.Add(1)
					continue
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					readErrs.Add(1)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					readErrs.Add(1)
				}
			}
		}(base)
	}
	wg.Wait()
	close(insertErrs)
	for err := range insertErrs {
		t.Fatal(err)
	}
	const total = writers * perWriter
	if psrv.dyn.AppliedSeq() != total {
		t.Fatalf("primary applied %d", psrv.dyn.AppliedSeq())
	}
	waitUntil(t, 15*time.Second, "hammer convergence", func() bool {
		return fsrv.dyn.AppliedSeq() == total
	})
	close(stopReads)
	readers.Wait()
	if readErrs.Load() != 0 {
		t.Fatalf("%d reads failed during the hammer", readErrs.Load())
	}
	pcode, pqr, _ := getQuery(t, pts.URL, "q="+matchAll)
	fcode, fqr, _ := getQuery(t, fts.URL, "q="+matchAll)
	if pcode != 200 || fcode != 200 || pqr.Count != total || fqr.Count != total {
		t.Fatalf("final queries: primary %d/%d follower %d/%d", pcode, pqr.Count, fcode, fqr.Count)
	}
	for i := range pqr.IDs {
		if pqr.IDs[i] != fqr.IDs[i] {
			t.Fatalf("id mismatch at %d: %d vs %d", i, pqr.IDs[i], fqr.IDs[i])
		}
	}
}
