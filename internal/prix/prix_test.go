package prix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildErrors(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 1, Root: xmltree.Figure2a()},
		{ID: 1, Root: xmltree.Figure2b()},
	}
	if _, err := Build(docs); err == nil {
		t.Fatal("duplicate ids should fail")
	}
}

func TestLPSStored(t *testing.T) {
	ix, err := Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure2a()}})
	if err != nil {
		t.Fatal(err)
	}
	lps := ix.LPS(0)
	if len(lps) != xmltree.Figure2a().Size()-1 {
		t.Fatalf("LPS length = %d want %d", len(lps), xmltree.Figure2a().Size()-1)
	}
	if ix.NumPostings() == 0 {
		t.Fatal("no postings")
	}
}

func TestFilterThenRefine(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure2a()}, // P(R, D(L), D(M))
		{ID: 1, Root: xmltree.Figure2c()}, // P(D(L,M))
	})
	if err != nil {
		t.Fatal(err)
	}
	// Query 2(c): both docs pass the label filter (same label multisets
	// modulo counts), but only doc 1 truly matches.
	got, err := ix.Query(query.MustParse("/P/D[L][M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{1}) {
		t.Fatalf("got %v want [1]", got)
	}
	st := ix.LastStats()
	if st.Filtered < 1 || st.Refined != st.Filtered {
		t.Fatalf("stats = %+v", st)
	}
	// Multiplicity filtering: a query needing two D's excludes 2(c)?
	// 2(c) has one D; 2(a) has two.
	got2, err := ix.Query(query.MustParse("/P[D/L][D/M]"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got2, []int32{0}) {
		t.Fatalf("got %v want [0]", got2)
	}
}

func TestWildcardWeakensFilter(t *testing.T) {
	ix, err := Build([]*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure2a()},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(query.MustParse("/P/*/M"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1}) {
		t.Fatalf("got %v want [0 1]", got)
	}
}

func TestValueQueries(t *testing.T) {
	ix, err := Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.Query(query.MustParse("//N[text='GUI']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("got %v", got)
	}
	none, err := ix.Query(query.MustParse("//N[text='nope']"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("got %v", none)
	}
	// The value filter prunes before refinement.
	if ix.LastStats().Refined != 0 {
		t.Fatalf("filter should have pruned: %+v", ix.LastStats())
	}
}

func randomTree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	var n *xmltree.Node
	if isRoot {
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1, fan, false))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

func TestQuickPrixEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 10; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3, true)})
		}
		ix, err := Build(docs)
		if err != nil {
			return false
		}
		for k := 0; k < 4; k++ {
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			want := query.Eval(docs, pat)
			got, err := ix.Query(pat)
			if err != nil {
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch for %s: got %v want %v", pat, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
