// Package prix implements a PRIX-style baseline (Rao & Moon, ICDE 2004):
// documents are transformed into Prüfer sequences (labeled Prüfer sequences
// over post-order numbering), candidates are filtered through an inverted
// label index, and — as the paper under reproduction emphasizes — every
// surviving candidate is refined by document-by-document post-processing.
//
// Simplification (documented in DESIGN.md): full PRIX filters candidates by
// subsequence matching over the LPS in a virtual trie with multi-phase
// refinement (connectedness, twig structure). Here the filter is the sound
// superset "the document's label multiset covers the query's" computed from
// the LPS-derived label counts, and the refinement phase is the exact
// structural matcher, preserving PRIX's defining cost profile: cheap
// filtering followed by per-candidate post-processing whose cost scales
// with the candidate count.
package prix

import (
	"fmt"
	"slices"
	"sort"

	"xseq/internal/query"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// Index is a PRIX-style index over a corpus.
type Index struct {
	docs []*xmltree.Document
	// lps holds each document's labeled Prüfer sequence (kept for
	// inspection and size accounting).
	lps map[int32][]string
	// inverted maps a label to the sorted ids of documents whose label
	// count for it is >= k, stored as per-label posting lists with counts.
	postings map[string][]posting
	// stats of the most recent query.
	lastStats QueryStats
}

type posting struct {
	doc   int32
	count int32
}

// QueryStats reports the filtering and refinement work of one query.
type QueryStats struct {
	// Filtered counts documents that passed the label filter.
	Filtered int
	// Refined counts document-by-document post-processing runs.
	Refined int
}

// Build constructs the PRIX baseline index.
func Build(docs []*xmltree.Document) (*Index, error) {
	ix := &Index{
		docs:     docs,
		lps:      make(map[int32][]string, len(docs)),
		postings: map[string][]posting{},
	}
	seen := map[int32]bool{}
	for _, d := range docs {
		if seen[d.ID] {
			return nil, fmt.Errorf("prix: duplicate document id %d", d.ID)
		}
		seen[d.ID] = true
		lps, _, err := sequence.LabeledPrufer(d.Root)
		if err != nil {
			return nil, fmt.Errorf("prix: doc %d: %w", d.ID, err)
		}
		ix.lps[d.ID] = lps
		for label, count := range labelCounts(d.Root) {
			ix.postings[label] = append(ix.postings[label], posting{doc: d.ID, count: int32(count)})
		}
	}
	for label := range ix.postings {
		ps := ix.postings[label]
		sort.Slice(ps, func(i, j int) bool { return ps[i].doc < ps[j].doc })
	}
	return ix, nil
}

// labelCounts counts node labels of the whole tree (the LPS contains parent
// labels; leaf labels come from the deleted leaves, so the full node label
// multiset is what the combined NPS+LPS filtering keys on).
func labelCounts(root *xmltree.Node) map[string]int {
	counts := map[string]int{}
	root.Walk(func(n *xmltree.Node) bool {
		counts[n.Label()]++
		return true
	})
	return counts
}

// LPS returns a document's labeled Prüfer sequence.
func (ix *Index) LPS(id int32) []string { return ix.lps[id] }

// LastStats returns the work counters of the most recent Query.
func (ix *Index) LastStats() QueryStats { return ix.lastStats }

// NumPostings reports the total posting count (index size accounting).
func (ix *Index) NumPostings() int {
	total := 0
	for _, ps := range ix.postings {
		total += len(ps)
	}
	return total
}

// Query answers a tree-pattern query. Wildcard steps weaken the label
// filter (they constrain no label); the refinement phase keeps results
// exact either way.
func (ix *Index) Query(pat *query.Pattern) ([]int32, error) {
	ix.lastStats = QueryStats{}
	need := patternLabelCounts(pat)

	// Filter: documents whose label counts cover the query's requirements.
	var cand []int32
	if len(need) == 0 {
		for _, d := range ix.docs {
			cand = append(cand, d.ID)
		}
	} else {
		// Start from the rarest label's postings.
		var labels []string
		for l := range need {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(i, j int) bool {
			li, lj := len(ix.postings[labels[i]]), len(ix.postings[labels[j]])
			if li != lj {
				return li < lj
			}
			return labels[i] < labels[j]
		})
		cand = docsWithAtLeast(ix.postings[labels[0]], need[labels[0]])
		for _, l := range labels[1:] {
			if len(cand) == 0 {
				break
			}
			cand = intersectSorted(cand, docsWithAtLeast(ix.postings[l], need[l]))
		}
	}
	ix.lastStats.Filtered = len(cand)

	// Refinement: document-by-document post-processing.
	byID := map[int32]*xmltree.Document{}
	for _, d := range ix.docs {
		byID[d.ID] = d
	}
	var out []int32
	for _, id := range cand {
		ix.lastStats.Refined++
		if d := byID[id]; d != nil && pat.MatchesTree(d.Root) {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out, nil
}

// patternLabelCounts extracts the concrete label requirements of a pattern
// (wildcards contribute nothing).
func patternLabelCounts(pat *query.Pattern) map[string]int {
	need := map[string]int{}
	var walk func(n *query.PNode)
	walk = func(n *query.PNode) {
		switch {
		case n.IsValue:
			need[fmt.Sprintf("%q", n.Value)]++
		case !n.Wildcard:
			need[n.Name]++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if pat != nil && pat.Root != nil {
		walk(pat.Root)
	}
	return need
}

func docsWithAtLeast(ps []posting, k int) []int32 {
	var out []int32
	for _, p := range ps {
		if int(p.count) >= k {
			out = append(out, p.doc)
		}
	}
	return out
}

func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
