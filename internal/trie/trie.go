// Package trie implements the trie-like index tree of Section 4.1: document
// constraint sequences are inserted as root-to-leaf chains (Figure 7),
// document ids accumulate at each sequence's end node, and Freeze assigns
// every node the (n⊢, n⊣) interval label of the paper's Tree Labeling step
// (pre-order serial number and largest descendant serial), so that x is a
// descendant of y iff x⊢ ∈ (y⊢, y⊣].
//
// The node store is struct-of-arrays with a single global child map, keeping
// per-node overhead small enough for multi-million-node tries.
package trie

import (
	"fmt"
	"sort"

	"xseq/internal/pathenc"
	"xseq/internal/sequence"
)

// NodeID identifies a trie node; the root is always 0.
type NodeID int32

// Root is the id of the virtual root node (path ε).
const Root NodeID = 0

// None marks the absence of a node.
const None NodeID = -1

type childKey struct {
	parent NodeID
	path   pathenc.PathID
}

// Trie is the index tree. Build with Insert (or BulkLoad), then Freeze to
// assign labels; queries require a frozen trie. Not safe for concurrent
// mutation.
type Trie struct {
	parent     []NodeID
	path       []pathenc.PathID
	firstChild []NodeID
	lastChild  []NodeID
	nextSib    []NodeID
	child      map[childKey]NodeID
	docs       map[NodeID][]int32

	pre, max []int32
	frozen   bool
	numSeqs  int
}

// New returns an empty trie holding only the virtual root.
func New() *Trie {
	t := &Trie{child: map[childKey]NodeID{}, docs: map[NodeID][]int32{}}
	t.addNode(None, pathenc.EmptyPath)
	return t
}

func (t *Trie) addNode(parent NodeID, p pathenc.PathID) NodeID {
	id := NodeID(len(t.parent))
	t.parent = append(t.parent, parent)
	t.path = append(t.path, p)
	t.firstChild = append(t.firstChild, None)
	t.lastChild = append(t.lastChild, None)
	t.nextSib = append(t.nextSib, None)
	if parent != None {
		t.child[childKey{parent, p}] = id
		if t.firstChild[parent] == None {
			t.firstChild[parent] = id
		} else {
			t.nextSib[t.lastChild[parent]] = id
		}
		t.lastChild[parent] = id
	}
	return id
}

// NumNodes reports the node count excluding the virtual root — the metric
// of Figure 14/15 and Tables 5/6.
func (t *Trie) NumNodes() int { return len(t.parent) - 1 }

// NumSequences reports how many sequences have been inserted.
func (t *Trie) NumSequences() int { return t.numSeqs }

// Insert adds one document's constraint sequence, appending docID to the id
// list of the end node (Figure 7). Insert panics on a frozen trie.
func (t *Trie) Insert(seq sequence.Sequence, docID int32) {
	if t.frozen {
		panic("trie: Insert after Freeze")
	}
	cur := Root
	for _, p := range seq {
		next, ok := t.child[childKey{cur, p}]
		if !ok {
			next = t.addNode(cur, p)
		}
		cur = next
	}
	t.docs[cur] = append(t.docs[cur], docID)
	t.numSeqs++
}

// BulkLoad inserts many sequences after sorting them, which the paper notes
// improves build performance for static data (shared prefixes insert
// consecutively). ids[i] is the document id of seqs[i].
func (t *Trie) BulkLoad(seqs []sequence.Sequence, ids []int32) error {
	if len(seqs) != len(ids) {
		return fmt.Errorf("trie: bulk load: %d sequences, %d ids", len(seqs), len(ids))
	}
	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := seqs[order[a]], seqs[order[b]]
		for i := 0; i < len(sa) && i < len(sb); i++ {
			if sa[i] != sb[i] {
				return sa[i] < sb[i]
			}
		}
		return len(sa) < len(sb)
	})
	for _, i := range order {
		t.Insert(seqs[i], ids[i])
	}
	return nil
}

// Freeze assigns interval labels (pre, max) by an explicit-stack pre-order
// walk. After Freeze the trie is immutable.
func (t *Trie) Freeze() {
	if t.frozen {
		return
	}
	n := len(t.parent)
	t.pre = make([]int32, n)
	t.max = make([]int32, n)
	serial := int32(0)
	// Iterative DFS; post-processing pass sets max from children.
	type frame struct {
		node  NodeID
		child NodeID // next child to visit
	}
	stack := []frame{{Root, t.firstChild[Root]}}
	t.pre[Root] = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child == None {
			t.max[f.node] = serial
			stack = stack[:len(stack)-1]
			continue
		}
		c := f.child
		f.child = t.nextSib[c]
		serial++
		t.pre[c] = serial
		stack = append(stack, frame{c, t.firstChild[c]})
	}
	t.frozen = true
}

// Frozen reports whether labels have been assigned.
func (t *Trie) Frozen() bool { return t.frozen }

// Path returns the path encoding of a node.
func (t *Trie) Path(n NodeID) pathenc.PathID { return t.path[n] }

// Parent returns the parent node (None for the root).
func (t *Trie) Parent(n NodeID) NodeID { return t.parent[n] }

// Pre returns n⊢, the pre-order serial. Requires Freeze.
func (t *Trie) Pre(n NodeID) int32 { return t.pre[n] }

// Max returns n⊣, the largest descendant serial. Requires Freeze.
func (t *Trie) Max(n NodeID) int32 { return t.max[n] }

// Docs returns the document id list of a node (ids of sequences ending
// there).
func (t *Trie) Docs(n NodeID) []int32 { return t.docs[n] }

// Children iterates the children of n in insertion order.
func (t *Trie) Children(n NodeID, fn func(NodeID) bool) {
	for c := t.firstChild[n]; c != None; c = t.nextSib[c] {
		if !fn(c) {
			return
		}
	}
}

// ChildByPath returns the child of n with the given path, or None.
func (t *Trie) ChildByPath(n NodeID, p pathenc.PathID) NodeID {
	if id, ok := t.child[childKey{n, p}]; ok {
		return id
	}
	return None
}

// WalkPreOrder visits nodes (excluding the virtual root) in pre-order; the
// callback receives the node and its depth below the root. Returning false
// stops the walk entirely.
func (t *Trie) WalkPreOrder(fn func(n NodeID, depth int) bool) {
	type frame struct {
		node  NodeID
		depth int
	}
	var stack []frame
	pushChildren := func(parent NodeID, depth int) {
		start := len(stack)
		for c := t.firstChild[parent]; c != None; c = t.nextSib[c] {
			stack = append(stack, frame{c, depth})
		}
		// Reverse the appended run so the first child pops first.
		for i, j := start, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
	pushChildren(Root, 1)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.node, f.depth) {
			return
		}
		pushChildren(f.node, f.depth+1)
	}
}

// IsDescendant reports whether x is a descendant of y (or equal), using the
// labels: x⊢ ∈ [y⊢, y⊣]. Requires Freeze.
func (t *Trie) IsDescendant(x, y NodeID) bool {
	return t.pre[x] >= t.pre[y] && t.pre[x] <= t.max[y]
}

// DocsInRange appends to out the document ids of every end node whose pre
// label lies within [lo, hi]. Used by the final step of Algorithm 1
// ("output document id lists of node v and all nodes under v"). The ids of
// one node are appended in insertion order; nodes in arbitrary order.
func (t *Trie) DocsInRange(lo, hi int32, out []int32) []int32 {
	for n, ids := range t.docs {
		if t.pre[n] >= lo && t.pre[n] <= hi {
			out = append(out, ids...)
		}
	}
	return out
}
