package trie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// figure7Paths interns p1..p10 designators for the Figure 7 example.
func figure7Paths(enc *pathenc.Encoder) map[string]pathenc.PathID {
	// Build a small path family rooted at p1: the exact shapes are
	// irrelevant to the trie (it treats paths as opaque), so give each pi
	// its own chain under p1.
	m := map[string]pathenc.PathID{}
	p1 := enc.Extend(pathenc.EmptyPath, enc.ElementSymbol("p1"))
	m["p1"] = p1
	for _, name := range []string{"p2", "p7", "p8", "p9", "p10"} {
		m[name] = enc.Extend(p1, enc.ElementSymbol(name))
	}
	return m
}

func TestInsertSingleSequence(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	m := figure7Paths(enc)
	tr := New()
	// Figure 7's sequence ⟨p1, p10, p2, p7, p9, p8⟩ inserted for doc 3.
	seq := sequence.Sequence{m["p1"], m["p10"], m["p2"], m["p7"], m["p9"], m["p8"]}
	tr.Insert(seq, 3)
	if tr.NumNodes() != 6 {
		t.Fatalf("NumNodes = %d want 6", tr.NumNodes())
	}
	if tr.NumSequences() != 1 {
		t.Fatalf("NumSequences = %d", tr.NumSequences())
	}
	// Walk down the chain; the end node holds doc id 3.
	cur := Root
	for _, p := range seq {
		cur = tr.ChildByPath(cur, p)
		if cur == None {
			t.Fatalf("chain broken at %s", enc.PathString(p))
		}
	}
	ids := tr.Docs(cur)
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("end node docs = %v", ids)
	}
}

func TestSharedPrefixes(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	m := figure7Paths(enc)
	tr := New()
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p7"]}, 1)
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p8"]}, 2)
	tr.Insert(sequence.Sequence{m["p1"], m["p2"]}, 3)
	// Nodes: p1, p2, p7, p8 = 4 (prefix p1,p2 shared).
	if tr.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d want 4", tr.NumNodes())
	}
	// Doc 3 ends at the interior p2 node.
	p2node := tr.ChildByPath(tr.ChildByPath(Root, m["p1"]), m["p2"])
	ids := tr.Docs(p2node)
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("interior docs = %v", ids)
	}
}

func TestFreezeLabels(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	m := figure7Paths(enc)
	tr := New()
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p7"]}, 1)
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p8"]}, 2)
	tr.Insert(sequence.Sequence{m["p1"], m["p9"]}, 3)
	tr.Freeze()
	if !tr.Frozen() {
		t.Fatal("Frozen() = false")
	}
	p1 := tr.ChildByPath(Root, m["p1"])
	p2 := tr.ChildByPath(p1, m["p2"])
	p7 := tr.ChildByPath(p2, m["p7"])
	p8 := tr.ChildByPath(p2, m["p8"])
	p9 := tr.ChildByPath(p1, m["p9"])

	// Pre-order: root=0, p1=1, p2=2, p7=3, p8=4, p9=5.
	if tr.Pre(p1) != 1 || tr.Pre(p2) != 2 || tr.Pre(p7) != 3 || tr.Pre(p8) != 4 || tr.Pre(p9) != 5 {
		t.Fatalf("pre labels: p1=%d p2=%d p7=%d p8=%d p9=%d",
			tr.Pre(p1), tr.Pre(p2), tr.Pre(p7), tr.Pre(p8), tr.Pre(p9))
	}
	if tr.Max(p1) != 5 || tr.Max(p2) != 4 || tr.Max(p7) != 3 {
		t.Fatalf("max labels: p1=%d p2=%d p7=%d", tr.Max(p1), tr.Max(p2), tr.Max(p7))
	}
	if tr.Max(Root) != 5 || tr.Pre(Root) != 0 {
		t.Fatalf("root labels: %d %d", tr.Pre(Root), tr.Max(Root))
	}
	// Descendant tests: x⊢ ∈ (y⊢, y⊣].
	if !tr.IsDescendant(p7, p1) || !tr.IsDescendant(p7, p2) {
		t.Fatal("p7 should descend from p1 and p2")
	}
	if tr.IsDescendant(p9, p2) {
		t.Fatal("p9 does not descend from p2")
	}
}

func TestInsertAfterFreezePanics(t *testing.T) {
	tr := New()
	tr.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Insert after Freeze should panic")
		}
	}()
	tr.Insert(sequence.Sequence{1}, 1)
}

func TestBulkLoadMatchesInsert(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	m := figure7Paths(enc)
	seqs := []sequence.Sequence{
		{m["p1"], m["p9"]},
		{m["p1"], m["p2"], m["p7"]},
		{m["p1"], m["p2"]},
		{m["p1"], m["p2"], m["p7"]},
	}
	ids := []int32{4, 1, 3, 2}
	a := New()
	for i := range seqs {
		a.Insert(seqs[i], ids[i])
	}
	b := New()
	if err := b.BulkLoad(seqs, ids); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	if err := b.BulkLoad(seqs, ids[:1]); err == nil {
		t.Fatal("mismatched lengths should fail")
	}
	// Same docs reachable.
	b.Freeze()
	all := b.DocsInRange(0, int32(b.NumNodes()), nil)
	if len(all) != 4 {
		t.Fatalf("DocsInRange found %d docs", len(all))
	}
}

func TestWalkPreOrder(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	m := figure7Paths(enc)
	tr := New()
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p7"]}, 1)
	tr.Insert(sequence.Sequence{m["p1"], m["p9"]}, 2)
	tr.Freeze()
	var pres []int32
	var depths []int
	tr.WalkPreOrder(func(n NodeID, depth int) bool {
		pres = append(pres, tr.Pre(n))
		depths = append(depths, depth)
		return true
	})
	// Pre-order visits serials 1..N in order.
	for i, p := range pres {
		if p != int32(i+1) {
			t.Fatalf("walk out of order: %v", pres)
		}
	}
	wantDepths := []int{1, 2, 3, 2}
	for i := range wantDepths {
		if depths[i] != wantDepths[i] {
			t.Fatalf("depths = %v want %v", depths, wantDepths)
		}
	}
	// Early stop.
	count := 0
	tr.WalkPreOrder(func(NodeID, int) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDocsInRange(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	m := figure7Paths(enc)
	tr := New()
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p7"]}, 1)
	tr.Insert(sequence.Sequence{m["p1"], m["p2"], m["p8"]}, 2)
	tr.Insert(sequence.Sequence{m["p1"], m["p9"]}, 3)
	tr.Freeze()
	p1 := tr.ChildByPath(Root, m["p1"])
	p2 := tr.ChildByPath(p1, m["p2"])
	got := tr.DocsInRange(tr.Pre(p2), tr.Max(p2), nil)
	if len(got) != 2 {
		t.Fatalf("docs under p2 = %v", got)
	}
	all := tr.DocsInRange(0, tr.Max(Root), nil)
	if len(all) != 3 {
		t.Fatalf("all docs = %v", all)
	}
}

// Property: for random corpora of sequences, (1) node count equals the
// number of distinct prefixes, (2) labels satisfy pre ≤ max, child
// intervals nest strictly inside parents, and sibling intervals are
// disjoint.
func TestQuickLabelInvariants(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	df := sequence.DepthFirst{Enc: enc}
	rng := rand.New(rand.NewSource(55))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		tr := New()
		prefixes := map[string]bool{}
		for d := 0; d < 10; d++ {
			tree := randomTree(r, 4, 3)
			seq := df.Sequence(tree)
			tr.Insert(seq, int32(d))
			key := ""
			for _, p := range seq {
				key += "," + enc.PathString(p)
				prefixes[key] = true
			}
		}
		if tr.NumNodes() != len(prefixes) {
			return false
		}
		tr.Freeze()
		ok := true
		tr.WalkPreOrder(func(n NodeID, _ int) bool {
			if tr.Pre(n) > tr.Max(n) {
				ok = false
				return false
			}
			parent := tr.Parent(n)
			if parent != None {
				if !(tr.Pre(n) > tr.Pre(parent) && tr.Max(n) <= tr.Max(parent)) {
					ok = false
					return false
				}
			}
			// Sibling disjointness.
			var prev NodeID = None
			tr.Children(n, func(c NodeID) bool {
				if prev != None && tr.Pre(c) <= tr.Max(prev) {
					ok = false
					return false
				}
				prev = c
				return true
			})
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func randomTree(rng *rand.Rand, depth, fan int) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	n := xmltree.NewElem(labels[rng.Intn(len(labels))])
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		n.Children = append(n.Children, randomTree(rng, depth-1, fan))
	}
	return n
}
