package vist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func build(t testing.TB, docs []*xmltree.Document) *Index {
	t.Helper()
	ix, err := Build(docs, Options{Encoder: pathenc.NewEncoder(1 << 20)})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBuildRequiresEncoder(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Fatal("missing encoder should fail")
	}
}

func TestFalseAlarmEliminatedByVerification(t *testing.T) {
	ix := build(t, []*xmltree.Document{{ID: 0, Root: xmltree.Figure4D()}})
	got, err := ix.Query(query.MustParse("/P/L[S][B]"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("false alarm survived verification: %v", got)
	}
	// The join phase DID produce the candidate (that is ViST's cost).
	if ix.LastStats().Candidates == 0 || ix.LastStats().Verified == 0 {
		t.Fatalf("expected join candidates and verification work: %+v", ix.LastStats())
	}
}

func TestBranchingQueryJoins(t *testing.T) {
	ix := build(t, []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure3a()},
	})
	got, err := ix.Query(query.MustParse("/P[R/M='tom'][D/M='johnson']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("got %v", got)
	}
	if ix.LastStats().JoinedDocSets == 0 {
		t.Fatal("branching query should join per-branch doc sets")
	}
}

func TestSimplePathNoJoin(t *testing.T) {
	ix := build(t, []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}})
	got, err := ix.Query(query.MustParse("/P/D/U/N"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("got %v", got)
	}
}

func randomTree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	var n *xmltree.Node
	if isRoot {
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(6) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(labels[rng.Intn(len(labels))]))
		} else {
			n.Children = append(n.Children, randomTree(rng, depth-1, fan, false))
		}
	}
	return n
}

func randomSubPattern(rng *rand.Rand, t *xmltree.Node) *xmltree.Node {
	p := &xmltree.Node{Name: t.Name, Value: t.Value, IsValue: t.IsValue}
	for _, c := range t.Children {
		if rng.Intn(2) == 0 {
			p.Children = append(p.Children, randomSubPattern(rng, c))
		}
	}
	return p
}

// Property: ViST answers agree exactly with the ground truth (after its
// verification phase), because values are verified on the original
// documents.
func TestQuickVistEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 10; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(r, 4, 3, true)})
		}
		ix := build(t, docs)
		for k := 0; k < 4; k++ {
			src := docs[r.Intn(len(docs))].Root
			pat := query.FromTree(randomSubPattern(r, src))
			want := query.Eval(docs, pat)
			got, err := ix.Query(pat)
			if err != nil {
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch for %s: got %v want %v", pat, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
