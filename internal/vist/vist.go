// Package vist implements the ViST baseline (Wang, Park, Fan, Yu —
// SIGMOD 2003), the predecessor this paper improves on. ViST sequences
// documents by depth-first traversal of (symbol, prefix-path) pairs —
// informationally identical to our path encoding — indexes them in the same
// trie + path-link structure, and answers branching queries by matching
// each query branch independently within the parent match's range and
// joining the per-branch document sets. Because neither the joins nor the
// naive per-branch matching enforce the constraint criterion, false alarms
// from identical sibling nodes survive and must be eliminated by verifying
// every candidate document — the "expensive join operations" the paper
// charges ViST with (Section 6.3, Figure 16(b)).
package vist

import (
	"fmt"
	"slices"

	"xseq/internal/index"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// Index is a ViST-style index over a corpus.
type Index struct {
	ix  *index.Index
	enc *pathenc.Encoder
	// Stats of the most recent Query call.
	lastStats QueryStats
}

// QueryStats reports the work a query performed — the joins and the
// candidate verifications are what make ViST slow relative to constraint
// sequencing.
type QueryStats struct {
	// JoinedDocSets counts the per-branch document sets intersected.
	JoinedDocSets int
	// JoinedDocIDs counts document ids flowing through those joins.
	JoinedDocIDs int
	// Candidates counts documents surviving the joins.
	Candidates int
	// Verified counts ground-truth verifications performed.
	Verified int
}

// Options configures Build.
type Options struct {
	// Encoder interns designators and paths; required.
	Encoder *pathenc.Encoder
	// InstantiationLimit caps wildcard expansion (<= 0: default).
	InstantiationLimit int
}

// Build sequences the corpus depth-first and indexes it. Documents are
// retained: ViST must verify candidates to remove false alarms.
func Build(docs []*xmltree.Document, opts Options) (*Index, error) {
	if opts.Encoder == nil {
		return nil, fmt.Errorf("vist: Options.Encoder is required")
	}
	ix, err := index.Build(docs, index.Options{
		Encoder:            opts.Encoder,
		Strategy:           sequence.DepthFirst{Enc: opts.Encoder},
		InstantiationLimit: opts.InstantiationLimit,
		KeepDocuments:      true,
	})
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix, enc: opts.Encoder}, nil
}

// NumNodes reports the trie size (ViST's index is the DF trie).
func (v *Index) NumNodes() int { return v.ix.NumNodes() }

// Underlying exposes the shared index structure (for paged experiments).
func (v *Index) Underlying() *index.Index { return v.ix }

// LastStats returns the work counters of the most recent Query.
func (v *Index) LastStats() QueryStats { return v.lastStats }

// Query answers a tree-pattern query: per-branch naive matching, document
// joins, then per-candidate verification. Results are exact.
func (v *Index) Query(pat *query.Pattern) ([]int32, error) {
	v.lastStats = QueryStats{}
	insts := pat.Instantiate(v.enc, v.ix.ChildIdx(), 0)
	candSet := map[int32]bool{}
	for _, inst := range insts {
		children := make([][]int, len(inst.Paths))
		root := -1
		for i, par := range inst.Parent {
			if par < 0 {
				root = i
			} else {
				children[par] = append(children[par], i)
			}
		}
		if root < 0 {
			continue
		}
		for _, id := range v.docsFor(inst, children, root, 1, v.ix.MaxSerial()) {
			candSet[id] = true
		}
	}
	cand := make([]int32, 0, len(candSet))
	for id := range candSet {
		cand = append(cand, id)
	}
	slices.Sort(cand)
	v.lastStats.Candidates = len(cand)

	// False-alarm elimination: verify every candidate document.
	byID := map[int32]*xmltree.Document{}
	for _, d := range v.ix.Documents() {
		byID[d.ID] = d
	}
	var out []int32
	for _, id := range cand {
		v.lastStats.Verified++
		if d := byID[id]; d != nil && pat.MatchesTree(d.Root) {
			out = append(out, id)
		}
	}
	return out, nil
}

// docsFor returns the documents containing a match of the instance subtree
// rooted at node, anchored within [lo, hi] of the trie: the union over
// matching link entries of the intersection (JOIN) of the children's
// document sets.
func (v *Index) docsFor(inst query.Instance, children [][]int, node int, lo, hi int32) []int32 {
	entries := v.ix.LinkEntriesInRange(inst.Paths[node], lo, hi)
	var union map[int32]bool
	for _, e := range entries {
		var docs []int32
		if len(children[node]) == 0 {
			docs = v.ix.DocsInPreRange(e.Pre, e.Max, nil)
		} else {
			// Match each branch independently within e's range, then join.
			sets := make([][]int32, 0, len(children[node]))
			for _, c := range children[node] {
				sets = append(sets, v.docsFor(inst, children, c, e.Pre+1, e.Max))
			}
			docs = v.joinDocSets(sets)
		}
		if union == nil {
			union = map[int32]bool{}
		}
		for _, id := range docs {
			union[id] = true
		}
	}
	out := make([]int32, 0, len(union))
	for id := range union {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// joinDocSets intersects sorted document id sets, tracking join work.
func (v *Index) joinDocSets(sets [][]int32) []int32 {
	if len(sets) == 0 {
		return nil
	}
	v.lastStats.JoinedDocSets += len(sets)
	for _, s := range sets {
		v.lastStats.JoinedDocIDs += len(s)
	}
	acc := dedupSorted(sets[0])
	for _, s := range sets[1:] {
		s = dedupSorted(s)
		var next []int32
		i, j := 0, 0
		for i < len(acc) && j < len(s) {
			switch {
			case acc[i] == s[j]:
				next = append(next, acc[i])
				i++
				j++
			case acc[i] < s[j]:
				i++
			default:
				j++
			}
		}
		acc = next
		if len(acc) == 0 {
			break
		}
	}
	return acc
}

func dedupSorted(s []int32) []int32 {
	if len(s) == 0 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
