// Package faultio provides fault-injection primitives for resilience
// testing: readers and writers that fail, truncate, or short-write at a
// chosen point, call-count triggers, stream corrupters, and flaky/panicky
// wrappers for engine.Builder. Tests use it to prove that every failure
// path — torn persistence writes, truncated or bit-flipped load streams,
// builders that die mid-compaction — degrades gracefully instead of
// corrupting state or crashing. The only serving-path importer is the
// opt-in chaos middleware in internal/server, which stays inert unless
// explicitly armed.
package faultio

import (
	"context"
	"errors"
	"io"
	"sync/atomic"

	"xseq/internal/engine"
	"xseq/internal/xmltree"
)

// ErrInjected is the default error injected by the fault primitives.
var ErrInjected = errors.New("faultio: injected fault")

// Trigger decides, by call count, which hits a fault fires on. Three
// firing modes exist: After(n) fires on hit n (1-based) and every later
// hit, Between(from, to) fires on hits from..to inclusive and then goes
// quiet, and Every(n) fires on every nth hit (n, 2n, ...). A nil Trigger
// (or one constructed with n <= 0) never fires. Safe for concurrent use.
type Trigger struct {
	from, to int64 // window mode: fire on hits in [from, to] (to 0: open)
	every    int64 // modular mode: fire on multiples of every
	hits     atomic.Int64
}

// After returns a Trigger firing from the nth Hit on.
func After(n int) *Trigger { return &Trigger{from: int64(n)} }

// Between returns a Trigger firing on hits from..to (1-based, inclusive)
// and never again after — a fault window that heals, e.g. Between(1, 1)
// for a fault on exactly the first hit.
func Between(from, to int) *Trigger { return &Trigger{from: int64(from), to: int64(to)} }

// Every returns a Trigger firing on every nth Hit — a steady background
// fault rate for chaos runs.
func Every(n int) *Trigger { return &Trigger{every: int64(n)} }

// Hit records one event and reports whether the trigger has fired.
func (t *Trigger) Hit() bool {
	if t == nil {
		return false
	}
	h := t.hits.Add(1)
	if t.every > 0 {
		return h%t.every == 0
	}
	if t.from <= 0 {
		return false
	}
	return h >= t.from && (t.to == 0 || h <= t.to)
}

// Hits reports how many events have been recorded.
func (t *Trigger) Hits() int { return int(t.hits.Load()) }

// Reset rearms the trigger.
func (t *Trigger) Reset() { t.hits.Store(0) }

// FailingReader reads from R and returns Err (default ErrInjected) after
// Limit bytes have been delivered.
type FailingReader struct {
	R     io.Reader
	Limit int64
	Err   error
	read  int64
}

func (f *FailingReader) Read(p []byte) (int, error) {
	if f.read >= f.Limit {
		return 0, f.err()
	}
	if int64(len(p)) > f.Limit-f.read {
		p = p[:f.Limit-f.read]
	}
	n, err := f.R.Read(p)
	f.read += int64(n)
	return n, err
}

func (f *FailingReader) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// TruncatingReader reads from R and reports a clean EOF after Limit bytes —
// a stream cut short by a crash.
type TruncatingReader struct {
	R     io.Reader
	Limit int64
	read  int64
}

func (t *TruncatingReader) Read(p []byte) (int, error) {
	if t.read >= t.Limit {
		return 0, io.EOF
	}
	if int64(len(p)) > t.Limit-t.read {
		p = p[:t.Limit-t.read]
	}
	n, err := t.R.Read(p)
	t.read += int64(n)
	return n, err
}

// FlippingReader reads from R, inverting bit (Bit mod 8) of the byte at
// Offset — a single bit flipped in flight on an otherwise intact,
// correct-length stream, exactly the corruption end-to-end checksums
// exist to catch.
type FlippingReader struct {
	R      io.Reader
	Offset int64
	Bit    uint
	pos    int64
}

func (f *FlippingReader) Read(p []byte) (int, error) {
	n, err := f.R.Read(p)
	if n > 0 && f.Offset >= f.pos && f.Offset < f.pos+int64(n) {
		p[f.Offset-f.pos] ^= 1 << (f.Bit % 8)
	}
	f.pos += int64(n)
	return n, err
}

// FailingWriter forwards to W and returns Err (default ErrInjected) once
// Limit bytes have been accepted; the failing call writes the bytes that
// fit and reports the error — a disk that fills or dies mid-write.
type FailingWriter struct {
	W       io.Writer
	Limit   int64
	Err     error
	written int64
}

func (f *FailingWriter) Write(p []byte) (int, error) {
	room := f.Limit - f.written
	if room <= 0 {
		return 0, f.err()
	}
	if int64(len(p)) <= room {
		n, err := f.W.Write(p)
		f.written += int64(n)
		return n, err
	}
	n, err := f.W.Write(p[:room])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, f.err()
}

func (f *FailingWriter) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// TruncatingWriter silently discards everything beyond Limit bytes while
// reporting full success — a torn write that nobody noticed (the classic
// fsync-less crash artifact). Written reports how many bytes actually
// landed.
type TruncatingWriter struct {
	W       io.Writer
	Limit   int64
	written int64
}

func (t *TruncatingWriter) Write(p []byte) (int, error) {
	room := t.Limit - t.written
	if room > 0 {
		q := p
		if int64(len(q)) > room {
			q = q[:room]
		}
		n, err := t.W.Write(q)
		t.written += int64(n)
		if err != nil {
			return n, err
		}
	}
	return len(p), nil
}

// Written reports the bytes actually forwarded to W.
func (t *TruncatingWriter) Written() int64 { return t.written }

// ShortWriter forwards at most Chunk bytes per call and reports the short
// count without an error, exercising callers' io.ErrShortWrite handling.
type ShortWriter struct {
	W     io.Writer
	Chunk int
}

func (s *ShortWriter) Write(p []byte) (int, error) {
	if s.Chunk > 0 && len(p) > s.Chunk {
		p = p[:s.Chunk]
	}
	return s.W.Write(p)
}

// FlipBit returns a copy of b with bit (i mod 8) of byte (i/8 mod len)
// inverted — a deterministic single-bit corruption.
func FlipBit(b []byte, i int) []byte {
	if len(b) == 0 {
		return nil
	}
	out := append([]byte(nil), b...)
	out[(i/8)%len(out)] ^= 1 << (i % 8)
	return out
}

// FlakyBuilder wraps an engine.Builder so that every call counted by trig
// from its firing point on fails with err (default ErrInjected) instead of
// building. Calls before the trigger fires pass through.
func FlakyBuilder(b engine.Builder, trig *Trigger, err error) engine.Builder {
	if err == nil {
		err = ErrInjected
	}
	return func(ctx context.Context, docs []*xmltree.Document) (engine.Engine, error) {
		if trig.Hit() {
			return nil, err
		}
		return b(ctx, docs)
	}
}

// FlakyBuilderN is FlakyBuilder failing only while the trigger count is
// within [from, to] (1-based, inclusive): fail a window of calls, then
// recover — a transiently sick dependency.
func FlakyBuilderN(b engine.Builder, from, to int, err error) engine.Builder {
	if err == nil {
		err = ErrInjected
	}
	var calls atomic.Int64
	return func(ctx context.Context, docs []*xmltree.Document) (engine.Engine, error) {
		c := int(calls.Add(1))
		if c >= from && c <= to {
			return nil, err
		}
		return b(ctx, docs)
	}
}

// PanickyBuilder wraps an engine.Builder so calls counted by trig from its
// firing point on panic with value v — the worst-case builder failure a
// resilient caller must contain.
func PanickyBuilder(b engine.Builder, trig *Trigger, v any) engine.Builder {
	if v == nil {
		v = "faultio: injected panic"
	}
	return func(ctx context.Context, docs []*xmltree.Document) (engine.Engine, error) {
		if trig.Hit() {
			panic(v)
		}
		return b(ctx, docs)
	}
}
