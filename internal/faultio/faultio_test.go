package faultio

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"xseq/internal/engine"
	"xseq/internal/xmltree"
)

func TestTrigger(t *testing.T) {
	trig := After(3)
	if trig.Hit() || trig.Hit() {
		t.Fatal("trigger fired before N")
	}
	if !trig.Hit() {
		t.Fatal("trigger did not fire on hit N")
	}
	if !trig.Hit() {
		t.Fatal("trigger must stay fired")
	}
	if trig.Hits() != 4 {
		t.Fatalf("hits = %d, want 4", trig.Hits())
	}
	trig.Reset()
	if trig.Hit() {
		t.Fatal("reset trigger fired immediately")
	}

	var never *Trigger
	if never.Hit() {
		t.Fatal("nil trigger fired")
	}
	if After(0).Hit() {
		t.Fatal("zero trigger fired")
	}
}

func TestFailingReader(t *testing.T) {
	r := &FailingReader{R: strings.NewReader("hello world"), Limit: 5}
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q before failing", got)
	}
}

func TestTruncatingReader(t *testing.T) {
	r := &TruncatingReader{R: strings.NewReader("hello world"), Limit: 5}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncation must be a clean EOF, got %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q, want truncated prefix", got)
	}
}

func TestFailingWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &FailingWriter{W: &buf, Limit: 5}
	n, err := w.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 || buf.String() != "hello" {
		t.Fatalf("accepted %d bytes (%q), want the 5 that fit", n, buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal("writer must keep failing")
	}
}

func TestTruncatingWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &TruncatingWriter{W: &buf, Limit: 5}
	n, err := w.Write([]byte("hello world"))
	if err != nil || n != len("hello world") {
		t.Fatalf("torn write must report success, got n=%d err=%v", n, err)
	}
	if buf.String() != "hello" || w.Written() != 5 {
		t.Fatalf("landed %q (%d bytes), want 5-byte prefix", buf.String(), w.Written())
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &ShortWriter{W: &buf, Chunk: 3}
	n, err := w.Write([]byte("hello"))
	if err != nil || n != 3 {
		t.Fatalf("short write: n=%d err=%v, want 3,nil", n, err)
	}
	// io.Copy style loops recover from short writes via repeated calls.
	if _, err := io.Copy(struct{ io.Writer }{w}, strings.NewReader("hello world")); err != io.ErrShortWrite {
		t.Fatalf("io.Copy over a bare short writer should report ErrShortWrite, got %v", err)
	}
}

func TestFlipBit(t *testing.T) {
	orig := []byte{0x00, 0xFF}
	mut := FlipBit(orig, 9) // bit 1 of byte 1
	if bytes.Equal(orig, mut) {
		t.Fatal("no bit flipped")
	}
	if mut[1] != 0xFD {
		t.Fatalf("byte = %02x, want FD", mut[1])
	}
	if orig[1] != 0xFF {
		t.Fatal("FlipBit mutated its input")
	}
	if FlipBit(nil, 3) != nil {
		t.Fatal("empty input should stay nil")
	}
}

func okBuilder(t *testing.T) engine.Builder {
	t.Helper()
	return func(ctx context.Context, docs []*xmltree.Document) (engine.Engine, error) {
		return nil, nil
	}
}

func TestFlakyBuilder(t *testing.T) {
	b := FlakyBuilder(okBuilder(t), After(2), nil)
	if _, err := b(context.Background(), nil); err != nil {
		t.Fatalf("first call should pass: %v", err)
	}
	if _, err := b(context.Background(), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("second call should fail, got %v", err)
	}
}

func TestFlakyBuilderN(t *testing.T) {
	b := FlakyBuilderN(okBuilder(t), 2, 3, nil)
	for i, wantErr := range []bool{false, true, true, false} {
		_, err := b(context.Background(), nil)
		if (err != nil) != wantErr {
			t.Fatalf("call %d: err=%v, wantErr=%v", i+1, err, wantErr)
		}
	}
}

func TestPanickyBuilder(t *testing.T) {
	b := PanickyBuilder(okBuilder(t), After(1), "boom")
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	b(context.Background(), nil)
	t.Fatal("builder did not panic")
}

func TestTriggerBetween(t *testing.T) {
	trig := Between(2, 3)
	got := []bool{trig.Hit(), trig.Hit(), trig.Hit(), trig.Hit(), trig.Hit()}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Between(2,3) hits = %v, want %v", got, want)
		}
	}
	once := Between(1, 1)
	if !once.Hit() || once.Hit() || once.Hit() {
		t.Fatal("Between(1,1) must fire exactly once")
	}
	if Between(0, 3).Hit() {
		t.Fatal("Between with from <= 0 must never fire")
	}
}

func TestTriggerEvery(t *testing.T) {
	trig := Every(3)
	var fired int
	for i := 0; i < 9; i++ {
		if trig.Hit() {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Every(3) fired %d times in 9 hits, want 3", fired)
	}
	if Every(0).Hit() {
		t.Fatal("Every(0) must never fire")
	}
	all := Every(1)
	if !all.Hit() || !all.Hit() {
		t.Fatal("Every(1) must fire on every hit")
	}
	trig.Reset()
	if trig.Hit() || trig.Hit() || !trig.Hit() {
		t.Fatal("Reset must rearm the modular count")
	}
}
