package index

import (
	"sort"

	"xseq/internal/pager"
	"xseq/internal/pathenc"
)

// Paged mode: the index's on-disk footprint is simulated by laying the path
// links and the flattened doc-id lists out on fixed-size pages. Every link
// probe and doc-list read then charges the attached buffer pool, so queries
// report the paper's "# disk accesses" / "# of pages" metrics.

// linkEntryBytes is the serialized size of one link entry: pre, max, anc
// (3×int32) plus flags, padded to 16 bytes.
const linkEntryBytes = 16

// docIDBytes is the serialized size of one document id.
const docIDBytes = 4

type pagedLayout struct {
	pool  *pager.Pool
	links map[pathenc.PathID]pager.Region
	docs  pager.Region
	alloc *pager.Allocator
}

// AttachPager lays the index out on pages and routes subsequent query
// accesses through the pool. Links are allocated in descending length order
// (long links first), one region each; the flattened doc-id array gets its
// own region. Returns the total number of pages of the layout.
func (ix *Index) AttachPager(pool *pager.Pool) (int64, error) {
	alloc := pager.NewAllocator(pager.PageSize)
	pg := &pagedLayout{pool: pool, links: make(map[pathenc.PathID]pager.Region), alloc: alloc}

	paths := make([]pathenc.PathID, 0, len(ix.links))
	for p := range ix.links {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		li, lj := len(ix.links[paths[i]]), len(ix.links[paths[j]])
		if li != lj {
			return li > lj
		}
		return paths[i] < paths[j]
	})
	for _, p := range paths {
		r, err := alloc.Alloc(len(ix.links[p]), linkEntryBytes)
		if err != nil {
			return 0, err
		}
		pg.links[p] = r
	}
	r, err := alloc.Alloc(len(ix.ends.ids), docIDBytes)
	if err != nil {
		return 0, err
	}
	pg.docs = r
	ix.pg = pg
	return alloc.TotalPages(), nil
}

// DetachPager stops I/O accounting.
func (ix *Index) DetachPager() { ix.pg = nil }

// PagerStats returns the pool counters (zero Stats when detached).
func (ix *Index) PagerStats() pager.Stats {
	if ix.pg == nil {
		return pager.Stats{}
	}
	return ix.pg.pool.Stats()
}

// ResetPagerStats zeroes the pool counters, keeping the pool warm.
func (ix *Index) ResetPagerStats() {
	if ix.pg != nil {
		ix.pg.pool.ResetStats()
	}
}

// DropPagerCache empties the pool (cold-cache measurements).
func (ix *Index) DropPagerCache() {
	if ix.pg != nil {
		ix.pg.pool.Drop()
	}
}

// PagedBytes reports the simulated on-disk size in bytes (0 when detached).
func (ix *Index) PagedBytes() int64 {
	if ix.pg == nil {
		return 0
	}
	return ix.pg.alloc.TotalBytes()
}

func (ix *Index) touchLinkSlot(p pathenc.PathID, slot int) {
	if ix.pg == nil {
		return
	}
	if r, ok := ix.pg.links[p]; ok {
		ix.pg.pool.Touch(r.PageOf(slot))
	}
}

func (ix *Index) touchDocRange(off, n int32) {
	if ix.pg == nil || n <= 0 {
		return
	}
	first := ix.pg.docs.PageOf(int(off))
	last := ix.pg.docs.PageOf(int(off + n - 1))
	for pg := first; pg <= last; pg++ {
		ix.pg.pool.Touch(pg)
	}
}
