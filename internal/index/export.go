package index

import (
	"fmt"
	"slices"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// Export is the complete logical content of a built index in plain exported
// form — the same information Save persists, but as in-memory structures a
// different storage layout (the flat single-file format in internal/flat)
// can consume without going through a gob round trip. Slices reference the
// index's own arrays and must be treated as read-only.
type Export struct {
	// Encoder is the designator/path table snapshot.
	Encoder pathenc.Snapshot
	// Schema is the inferred schema the g_best strategy was derived from.
	Schema *schema.Node
	// Repeat is the corpus repeat-path set (sequence.RepeatAware).
	Repeat []pathenc.PathID
	// NumPaths is the encoder's path count; every ExportLink.Path is < it.
	NumPaths int
	// Links holds one entry per non-empty horizontal link, ascending Path.
	Links []ExportLink
	// EndPres/EndOffs/EndLens/EndIDs are the flattened end-node doc-id
	// lists: end node i has pre label EndPres[i] and document ids
	// EndIDs[EndOffs[i] : EndOffs[i]+EndLens[i]]. EndPres is ascending.
	EndPres, EndOffs, EndLens, EndIDs []int32
	// NumDocs, MaxDocID, MaxSerial are the corpus/labeling bounds.
	NumDocs   int
	MaxDocID  int32
	MaxSerial int32
	// InstantiationLimit and OrderEnumerationLimit are the query-shaping
	// options the index was built with (0 means package default).
	InstantiationLimit    int
	OrderEnumerationLimit int
	// Docs is the retained corpus, nil unless KeepDocuments.
	Docs []*xmltree.Document
}

// ExportLink is one horizontal path link: interval labels in ascending Pre
// order plus the sibling-cover metadata. HasCover reports whether any entry
// carries cover metadata (some Anc != -1 or some Embeds bit set); when
// false, Anc and Embeds are nil and every entry implicitly has anc = -1,
// embeds = false — the common case on repetitive markup, which flat layouts
// exploit by omitting the arrays entirely.
type ExportLink struct {
	Path     pathenc.PathID
	Pre, Max []int32
	Anc      []int32
	Embeds   []bool
	HasCover bool
}

// Export extracts the index's logical content. Like Save, it requires the
// probability (g_best) strategy, because a different layout reconstructs
// the strategy from the schema exactly as Load does.
func (ix *Index) Export() (*Export, error) {
	prob, ok := sequence.AsProbability(ix.strategy)
	if !ok {
		return nil, fmt.Errorf("index: only probability-strategy indexes can be exported (have %q)", ix.strategy.Name())
	}
	sch := prob.Model.Schema()
	if sch == nil || sch.Root == nil {
		return nil, fmt.Errorf("index: strategy carries no schema")
	}
	ex := &Export{
		Encoder:               ix.enc.Snapshot(),
		Schema:                sch.Root,
		NumPaths:              ix.enc.NumPaths(),
		EndPres:               ix.ends.pres,
		EndOffs:               ix.ends.offs,
		EndLens:               ix.ends.lens,
		EndIDs:                ix.ends.ids,
		NumDocs:               ix.numDocs,
		MaxDocID:              ix.maxDocID,
		MaxSerial:             ix.maxSerial,
		InstantiationLimit:    ix.opts.InstantiationLimit,
		OrderEnumerationLimit: ix.opts.OrderEnumerationLimit,
		Docs:                  ix.docs,
	}
	for path := range prob.RepeatPaths() {
		ex.Repeat = append(ex.Repeat, path)
	}
	for path, link := range ix.links {
		if len(link) == 0 {
			continue
		}
		el := ExportLink{
			Path: path,
			Pre:  make([]int32, len(link)),
			Max:  make([]int32, len(link)),
		}
		for i, e := range link {
			el.Pre[i], el.Max[i] = e.pre, e.max
			if e.anc != -1 || e.embeds {
				el.HasCover = true
			}
		}
		if el.HasCover {
			el.Anc = make([]int32, len(link))
			el.Embeds = make([]bool, len(link))
			for i, e := range link {
				el.Anc[i], el.Embeds[i] = e.anc, e.embeds
			}
		}
		ex.Links = append(ex.Links, el)
	}
	slices.SortFunc(ex.Links, func(a, b ExportLink) int { return int(a.Path) - int(b.Path) })
	slices.Sort(ex.Repeat)
	return ex, nil
}
