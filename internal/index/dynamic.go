package index

import (
	"fmt"
	"sort"
	"sync"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// Dynamic makes the (immutable, frozen) index updatable, the way the paper
// frames ViST as "a dynamic index method": new documents accumulate in a
// delta buffer; queries run against the frozen main index plus a small
// index built lazily over the delta; Compact folds everything into a fresh
// main index. Each sub-index carries its own sequencing state (schema
// statistics and repeat set are per-build), so query equivalence holds on
// both sides independently.
//
// Dynamic is safe for concurrent use; Insert and Query may interleave.
type Dynamic struct {
	build Builder

	mu        sync.RWMutex
	main      *Index
	mainDocs  []*xmltree.Document
	buffer    []*xmltree.Document
	delta     *Index // nil when dirty or buffer empty
	seen      map[int32]bool
	threshold int
}

// Builder constructs an index over a corpus; Dynamic calls it for the
// initial corpus, for delta rebuilds, and for compactions. The returned
// index must answer queries (prioritized strategy).
type Builder func(docs []*xmltree.Document) (*Index, error)

// DefaultCompactThreshold is the delta size that triggers automatic
// compaction (relative to nothing — an absolute document count; deltas stay
// small so their rebuild cost stays negligible).
const DefaultCompactThreshold = 1024

// NewDynamic builds a dynamic index over an initial corpus (which may be
// empty). threshold <= 0 uses DefaultCompactThreshold.
func NewDynamic(build Builder, initial []*xmltree.Document, threshold int) (*Dynamic, error) {
	if build == nil {
		return nil, fmt.Errorf("index: NewDynamic requires a Builder")
	}
	if threshold <= 0 {
		threshold = DefaultCompactThreshold
	}
	d := &Dynamic{build: build, seen: map[int32]bool{}, threshold: threshold}
	for _, doc := range initial {
		if doc == nil {
			return nil, fmt.Errorf("index: nil initial document")
		}
		if d.seen[doc.ID] {
			return nil, fmt.Errorf("index: duplicate document id %d", doc.ID)
		}
		d.seen[doc.ID] = true
	}
	if len(initial) > 0 {
		main, err := build(initial)
		if err != nil {
			return nil, err
		}
		d.main = main
		d.mainDocs = append(d.mainDocs, initial...)
	}
	return d, nil
}

// Insert adds one document. The delta index is invalidated and rebuilt on
// the next query; when the delta exceeds the compaction threshold the whole
// index is rebuilt inline.
func (d *Dynamic) Insert(doc *xmltree.Document) error {
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("index: nil document")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[doc.ID] {
		return fmt.Errorf("index: duplicate document id %d", doc.ID)
	}
	d.seen[doc.ID] = true
	d.buffer = append(d.buffer, doc)
	d.delta = nil
	if len(d.buffer) >= d.threshold {
		return d.compactLocked()
	}
	return nil
}

// Query answers a pattern over main + delta, ids ascending.
func (d *Dynamic) Query(pat *query.Pattern) ([]int32, error) {
	d.mu.Lock()
	if d.delta == nil && len(d.buffer) > 0 {
		delta, err := d.build(d.buffer)
		if err != nil {
			d.mu.Unlock()
			return nil, err
		}
		d.delta = delta
	}
	main, delta := d.main, d.delta
	d.mu.Unlock()

	var out []int32
	if main != nil {
		ids, err := main.Query(pat)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	if delta != nil {
		ids, err := delta.Query(pat)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Compact folds the delta into a fresh main index.
func (d *Dynamic) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked()
}

func (d *Dynamic) compactLocked() error {
	if len(d.buffer) == 0 {
		return nil
	}
	all := append(append([]*xmltree.Document{}, d.mainDocs...), d.buffer...)
	main, err := d.build(all)
	if err != nil {
		return err
	}
	d.main = main
	d.mainDocs = all
	d.buffer = nil
	d.delta = nil
	return nil
}

// NumDocuments reports the total corpus size (main + buffered).
func (d *Dynamic) NumDocuments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.mainDocs) + len(d.buffer)
}

// PendingDocuments reports how many documents await compaction.
func (d *Dynamic) PendingDocuments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.buffer)
}

// NumNodes reports the main index's trie node count (0 before the first
// build); the delta's nodes are transient.
func (d *Dynamic) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.main == nil {
		return 0
	}
	return d.main.NumNodes()
}

// Main exposes the current frozen main index (nil before the first build).
func (d *Dynamic) Main() *Index {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.main
}
