package index

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// Dynamic makes the (immutable, frozen) index updatable, the way the paper
// frames ViST as "a dynamic index method": new documents accumulate in a
// delta buffer; queries run against the frozen main index plus a small
// index built lazily over the delta; Compact folds everything into a fresh
// main index. Each sub-index carries its own sequencing state (schema
// statistics and repeat set are per-build), so query equivalence holds on
// both sides independently.
//
// Dynamic is safe for concurrent use; Insert and Query may interleave.
//
// Dynamic is failure-safe: a Builder that returns an error or panics during
// compaction (or delta construction) never disturbs the serving state — the
// old main index and buffer stay exactly as they were, the failure is
// surfaced as a *CompactionError, and compaction is retried once the buffer
// grows by another threshold.
type Dynamic struct {
	build Builder

	mu        sync.RWMutex
	main      *Index
	mainDocs  []*xmltree.Document
	buffer    []*xmltree.Document
	delta     *Index // nil when dirty or buffer empty
	seen      map[int32]bool
	threshold int
	compactAt int // buffer size that triggers the next auto-compaction
	lastErr   error
	compacts  int // successful compactions
	failures  int // failed compaction attempts
}

// Builder constructs an index over a corpus; Dynamic calls it for the
// initial corpus, for delta rebuilds, and for compactions, passing through
// the caller's context. The returned index must answer queries (prioritized
// strategy).
type Builder func(ctx context.Context, docs []*xmltree.Document) (*Index, error)

// CompactionError reports that folding the delta into the main index
// failed (Builder error or panic). The index is still fully serviceable:
// the previous main index and the buffered documents are untouched, queries
// keep answering exactly as before the attempt, and compaction is retried
// automatically at the next threshold crossing.
type CompactionError struct {
	// Docs is the corpus size of the failed rebuild.
	Docs int
	// Err is the Builder failure (a recovered panic is wrapped in an error).
	Err error
}

func (e *CompactionError) Error() string {
	return fmt.Sprintf("index: compaction of %d documents failed (still serving pre-compaction state): %v", e.Docs, e.Err)
}

func (e *CompactionError) Unwrap() error { return e.Err }

// DefaultCompactThreshold is the delta size that triggers automatic
// compaction (relative to nothing — an absolute document count; deltas stay
// small so their rebuild cost stays negligible).
const DefaultCompactThreshold = 1024

// NewDynamic builds a dynamic index over an initial corpus (which may be
// empty). threshold <= 0 uses DefaultCompactThreshold.
func NewDynamic(build Builder, initial []*xmltree.Document, threshold int) (*Dynamic, error) {
	if build == nil {
		return nil, fmt.Errorf("index: NewDynamic requires a Builder")
	}
	if threshold <= 0 {
		threshold = DefaultCompactThreshold
	}
	d := &Dynamic{build: build, seen: map[int32]bool{}, threshold: threshold, compactAt: threshold}
	for _, doc := range initial {
		if doc == nil {
			return nil, fmt.Errorf("index: nil initial document")
		}
		if d.seen[doc.ID] {
			return nil, fmt.Errorf("index: duplicate document id %d", doc.ID)
		}
		d.seen[doc.ID] = true
	}
	if len(initial) > 0 {
		main, err := d.safeBuild(context.Background(), initial)
		if err != nil {
			return nil, err
		}
		d.main = main
		d.mainDocs = append(d.mainDocs, initial...)
	}
	return d, nil
}

// safeBuild runs the Builder, converting a panic into an error so a faulty
// Builder can never tear down a serving Dynamic.
func (d *Dynamic) safeBuild(ctx context.Context, docs []*xmltree.Document) (ix *Index, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("index: builder panic: %v", r)
		}
	}()
	return d.build(ctx, docs)
}

// Insert adds one document; it is InsertContext with context.Background().
func (d *Dynamic) Insert(doc *xmltree.Document) error {
	return d.InsertContext(context.Background(), doc)
}

// InsertContext adds one document. The delta index is invalidated and
// rebuilt on the next query; when the delta reaches the compaction
// watermark the whole index is rebuilt inline under ctx.
//
// If that automatic compaction fails, the document is still inserted (it
// remains buffered and queryable) and the failure is returned as a
// *CompactionError; the rebuild is retried after threshold further inserts.
func (d *Dynamic) InsertContext(ctx context.Context, doc *xmltree.Document) error {
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("index: nil document")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.seen[doc.ID] {
		return fmt.Errorf("index: duplicate document id %d", doc.ID)
	}
	d.seen[doc.ID] = true
	d.buffer = append(d.buffer, doc)
	d.delta = nil
	if len(d.buffer) >= d.compactAt {
		if err := d.compactLocked(ctx); err != nil {
			// Keep serving the old state; back off one threshold before
			// the next automatic attempt.
			d.compactAt = len(d.buffer) + d.threshold
			return err
		}
	}
	return nil
}

// Query answers a pattern over main + delta, ids ascending; it is
// QueryContext with context.Background().
func (d *Dynamic) Query(pat *query.Pattern) ([]int32, error) {
	return d.QueryContext(context.Background(), pat)
}

// QueryContext answers a pattern over main + delta, ids ascending,
// honouring ctx both in the lazy delta rebuild and in the match loops.
func (d *Dynamic) QueryContext(ctx context.Context, pat *query.Pattern) ([]int32, error) {
	d.mu.Lock()
	if d.delta == nil && len(d.buffer) > 0 {
		delta, err := d.safeBuild(ctx, d.buffer)
		if err != nil {
			d.mu.Unlock()
			return nil, err
		}
		d.delta = delta
	}
	main, delta := d.main, d.delta
	d.mu.Unlock()

	var out []int32
	if main != nil {
		ids, err := main.QueryContext(ctx, pat)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	if delta != nil {
		ids, err := delta.QueryContext(ctx, pat)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Compact folds the delta into a fresh main index; it is CompactContext
// with context.Background().
func (d *Dynamic) Compact() error {
	return d.CompactContext(context.Background())
}

// CompactContext folds the delta into a fresh main index under ctx. On
// failure it returns a *CompactionError and leaves the serving state (main
// index and buffer) untouched.
func (d *Dynamic) CompactContext(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.compactLocked(ctx)
}

// compactLocked rebuilds main over mainDocs + buffer. All serving state is
// replaced atomically only after a successful build; any failure (error,
// panic, cancellation) leaves it untouched.
func (d *Dynamic) compactLocked(ctx context.Context) error {
	if len(d.buffer) == 0 {
		return nil
	}
	all := append(append([]*xmltree.Document{}, d.mainDocs...), d.buffer...)
	main, err := d.safeBuild(ctx, all)
	if err != nil {
		cerr := &CompactionError{Docs: len(all), Err: err}
		d.lastErr = cerr
		d.failures++
		return cerr
	}
	d.main = main
	d.mainDocs = all
	d.buffer = nil
	d.delta = nil
	d.compactAt = d.threshold
	d.lastErr = nil
	d.compacts++
	return nil
}

// Compactions reports how many compactions have succeeded.
func (d *Dynamic) Compactions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.compacts
}

// FailedCompactions reports how many compaction attempts have failed.
func (d *Dynamic) FailedCompactions() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.failures
}

// LastCompactionError returns the most recent compaction failure, or nil
// after a successful compaction (or if none ever failed).
func (d *Dynamic) LastCompactionError() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lastErr
}

// NumDocuments reports the total corpus size (main + buffered).
func (d *Dynamic) NumDocuments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.mainDocs) + len(d.buffer)
}

// PendingDocuments reports how many documents await compaction.
func (d *Dynamic) PendingDocuments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.buffer)
}

// NumNodes reports the main index's trie node count (0 before the first
// build); the delta's nodes are transient.
func (d *Dynamic) NumNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.main == nil {
		return 0
	}
	return d.main.NumNodes()
}

// Main exposes the current frozen main index (nil before the first build).
func (d *Dynamic) Main() *Index {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.main
}
