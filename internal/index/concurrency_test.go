package index

import (
	"math/rand"
	"sync"
	"testing"

	"xseq/internal/query"
	"xseq/internal/xmltree"
)

// Queries on a frozen index are read-only and safe to run concurrently
// (without an attached pager, whose buffer pool is deliberately a single
// shared LRU). This test hammers one index from many goroutines; run with
// -race to verify the synchronization of the shared memoization caches.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var docs []*xmltree.Document
	for i := 0; i < 100; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})

	// A mix of concrete, wildcard, and descendant queries; expected
	// answers computed sequentially first.
	queries := []*query.Pattern{
		query.MustParse("//A"),
		query.MustParse("//B[C]"),
		query.MustParse("/R/*"),
		query.MustParse("/R[A][B]"),
		query.MustParse("//C[text='A']"),
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		ids, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				qi := (g + k) % len(queries)
				got, err := ix.Query(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				if !sameIDs(got, want[qi]) {
					t.Errorf("goroutine %d: query %d diverged", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Text-mode queries walk character chains; the encoder must stay immutable
// during lookups for this to be safe.
func TestConcurrentTextQueries(t *testing.T) {
	ix := buildText(t, cityDocs())
	queries := []*query.Pattern{
		query.MustParse("/P/L[text='boston']"),
		query.MustParse("/P/L[text='bo*']"),
		query.MustParse("/P/L[text='newyork']"),
		query.MustParse("/P/L[text='zzz']"),
	}
	want := make([][]int32, len(queries))
	for i, q := range queries {
		ids, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ids
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				qi := (g + k) % len(queries)
				got, err := ix.Query(queries[qi])
				if err != nil || !sameIDs(got, want[qi]) {
					t.Errorf("goroutine %d: query %d diverged (%v)", g, qi, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
