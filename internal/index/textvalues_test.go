package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// buildText builds an index over docs with the text-sequence value
// representation.
func buildText(t testing.TB, docs []*xmltree.Document) *Index {
	t.Helper()
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		t.Fatal(err)
	}
	enc := pathenc.NewTextEncoder()
	ix, err := Build(docs, Options{Encoder: enc, Strategy: sequence.NewProbability(sch, enc)})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func cityDocs() []*xmltree.Document {
	return []*xmltree.Document{
		{ID: 0, Root: xmltree.NewElem("P", xmltree.NewElem("L", xmltree.NewValue("boston")))},
		{ID: 1, Root: xmltree.NewElem("P", xmltree.NewElem("L", xmltree.NewValue("bologna")))},
		{ID: 2, Root: xmltree.NewElem("P", xmltree.NewElem("L", xmltree.NewValue("newyork")))},
		{ID: 3, Root: xmltree.NewElem("P", xmltree.NewElem("L", xmltree.NewValue("bo")))},
	}
}

func TestTextExactValueQuery(t *testing.T) {
	ix := buildText(t, cityDocs())
	got, err := ix.Query(query.MustParse("/P/L[text='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("exact text query = %v", got)
	}
	// No hash collisions possible: nearby strings never match.
	got2, err := ix.Query(query.MustParse("/P/L[text='bostom']"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 0 {
		t.Fatalf("near-miss matched: %v", got2)
	}
}

func TestTextPrefixQuery(t *testing.T) {
	ix := buildText(t, cityDocs())
	got, err := ix.Query(query.MustParse("/P/L[text='bo*']"))
	if err != nil {
		t.Fatal(err)
	}
	// boston, bologna, and "bo" itself all start with "bo".
	if !sameIDs(got, []int32{0, 1, 3}) {
		t.Fatalf("prefix query = %v", got)
	}
	none, err := ix.Query(query.MustParse("/P/L[text='bz*']"))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("impossible prefix matched: %v", none)
	}
}

func TestTextExactIsNotPrefix(t *testing.T) {
	ix := buildText(t, cityDocs())
	// Exact "bo" must match only doc 3, not the longer values...
	got, err := ix.Query(query.MustParse("/P/L[text='bo']"))
	if err != nil {
		t.Fatal(err)
	}
	// ...but with character chains, "bo" IS a chain prefix of "boston":
	// the chain has no terminator, so exact semantics at designator level
	// are prefix semantics. This mirrors the paper's remark that the text
	// representation "will allow subsequence matching inside the attribute
	// values"; exactness comes from Verify.
	if len(got) != 3 {
		t.Fatalf("chain query = %v", got)
	}
	// Verified mode restores exact semantics.
	roots := cityDocs()
	ixv := buildTextVerified(t, roots)
	exact, err := ixv.QueryWith(query.MustParse("/P/L[text='bo']"), QueryOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(exact, []int32{3}) {
		t.Fatalf("verified exact = %v", exact)
	}
}

func buildTextVerified(t testing.TB, docs []*xmltree.Document) *Index {
	t.Helper()
	roots := make([]*xmltree.Node, len(docs))
	for i, d := range docs {
		roots[i] = d.Root
	}
	sch, err := schema.Infer(roots)
	if err != nil {
		t.Fatal(err)
	}
	enc := pathenc.NewTextEncoder()
	ix, err := Build(docs, Options{
		Encoder: enc, Strategy: sequence.NewProbability(sch, enc), KeepDocuments: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestAtomicPrefixPrunes(t *testing.T) {
	// With atomic values, prefix queries are unanswerable and return
	// nothing rather than garbage.
	docs := cityDocs()
	ix := buildCS(t, docs, Options{})
	got, err := ix.Query(query.MustParse("/P/L[text='bo*']"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("atomic prefix query returned %v", got)
	}
}

// Property: text-mode query equivalence against ground truth, comparing on
// canonicalized (char-chained) corpora so both sides share designator-level
// semantics. Patterns are extracted subtrees, so their values are full
// document values; chain-prefix effects (see TestTextExactIsNotPrefix) are
// visible to both sides through canonicalization.
func TestQuickTextQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(333))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		var docs []*xmltree.Document
		for i := 0; i < 10; i++ {
			docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTextTree(r, 4, 3, true)})
		}
		ix := buildText(t, docs)
		enc := ix.Encoder()
		for k := 0; k < 4; k++ {
			src := docs[r.Intn(len(docs))].Root
			patTree := randomSubPattern(r, src)
			pat := query.FromTree(patTree)
			// Ground truth on char-chained corpora with a char-chained
			// pattern.
			canonDocs := make([]*xmltree.Document, len(docs))
			for i, d := range docs {
				canonDocs[i] = &xmltree.Document{ID: d.ID, Root: sequence.CanonicalizeValues(d.Root, enc)}
			}
			canonPat := query.FromTree(sequence.CanonicalizeValues(patTree, enc))
			canonPat.Root.Axis = query.AxisChild
			want := query.Eval(canonDocs, canonPat)
			got, err := ix.Query(pat)
			if err != nil {
				t.Logf("query error: %v", err)
				return false
			}
			if !sameIDs(got, want) {
				t.Logf("mismatch for %s:\n got %v\nwant %v", pat, got, want)
				for _, d := range docs {
					t.Logf("doc %d: %v", d.ID, d.Root)
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomTextTree is randomTree with multi-character values sharing
// prefixes, exercising the chain representation.
func randomTextTree(rng *rand.Rand, depth, fan int, isRoot bool) *xmltree.Node {
	labels := []string{"A", "B", "C"}
	values := []string{"a", "ab", "abc", "b", "ba", "bab"}
	var n *xmltree.Node
	if isRoot {
		n = xmltree.NewElem("R")
	} else {
		n = xmltree.NewElem(labels[rng.Intn(len(labels))])
	}
	if depth <= 1 {
		return n
	}
	k := rng.Intn(fan + 1)
	for i := 0; i < k; i++ {
		if rng.Intn(5) == 0 {
			n.Children = append(n.Children, xmltree.NewValue(values[rng.Intn(len(values))]))
		} else {
			n.Children = append(n.Children, randomTextTree(rng, depth-1, fan, false))
		}
	}
	return n
}
