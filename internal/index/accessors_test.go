package index

import (
	"bytes"
	"testing"

	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/xmltree"
)

func TestAccessors(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure3a()},
	}
	ix := buildCS(t, docs, Options{KeepDocuments: true})
	if ix.Strategy() == nil || ix.Strategy().Name() != "constraint" {
		t.Fatalf("Strategy = %v", ix.Strategy())
	}
	if ix.Encoder() == nil || ix.ChildIdx() == nil {
		t.Fatal("Encoder/ChildIdx nil")
	}
	if got := len(ix.Documents()); got != 2 {
		t.Fatalf("Documents = %d", got)
	}
	// Root path link has exactly one entry covering everything.
	P, ok := ix.Encoder().LookupElementSymbol("P")
	if !ok {
		t.Fatal("P not interned")
	}
	rootPath := ix.Encoder().Lookup(pathenc.EmptyPath, P)
	if ix.LinkLength(rootPath) != 1 {
		t.Fatalf("root link length = %d", ix.LinkLength(rootPath))
	}
	entries := ix.LinkEntries(rootPath)
	if len(entries) != 1 || entries[0].Pre != 1 || entries[0].Max != ix.MaxSerial() {
		t.Fatalf("root entries = %+v (max serial %d)", entries, ix.MaxSerial())
	}
	ranged := ix.LinkEntriesInRange(rootPath, 1, ix.MaxSerial())
	if len(ranged) != 1 {
		t.Fatalf("ranged entries = %+v", ranged)
	}
	if empty := ix.LinkEntriesInRange(rootPath, ix.MaxSerial()+1, ix.MaxSerial()+2); len(empty) != 0 {
		t.Fatalf("out-of-range entries = %+v", empty)
	}
	all := ix.DocsInPreRange(0, ix.MaxSerial(), nil)
	if len(all) != 2 {
		t.Fatalf("DocsInPreRange = %v", all)
	}
}

func TestLoadTruncatedStream(t *testing.T) {
	ix := buildCS(t, []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}}, Options{})
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, len(full) / 2, len(full) - 3} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncated stream at %d bytes loaded", cut)
		}
	}
	// The intact stream still loads after all those failures.
	back, err := Load(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back.Query(query.MustParse("/P")); len(got) != 1 {
		t.Fatalf("reload query = %v", got)
	}
}

func TestQueryUnknownPaths(t *testing.T) {
	ix := buildCS(t, []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}}, Options{})
	// Queries for paths outside the corpus return empty, not errors.
	got, err := ix.Query(query.MustParse("/nothing/here"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
