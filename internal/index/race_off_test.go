//go:build !race

package index

// See race_on_test.go.
const raceEnabled = false
