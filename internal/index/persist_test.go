package index

import (
	"bytes"
	"math/rand"
	"testing"

	"xseq/internal/pager"
	"xseq/internal/pathenc"
	"xseq/internal/query"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

func newTestPool(t *testing.T) *pager.Pool {
	t.Helper()
	return pager.NewPool(16)
}

func saveLoad(t *testing.T, ix *Index) *Index {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var docs []*xmltree.Document
	for i := 0; i < 60; i++ {
		docs = append(docs, &xmltree.Document{ID: int32(i), Root: randomTree(rng, 4, 3)})
	}
	ix := buildCS(t, docs, Options{})
	back := saveLoad(t, ix)

	if back.NumDocuments() != ix.NumDocuments() ||
		back.NumNodes() != ix.NumNodes() ||
		back.NumLinks() != ix.NumLinks() ||
		back.MaxSerial() != ix.MaxSerial() {
		t.Fatalf("metadata mismatch: %d/%d %d/%d %d/%d",
			back.NumDocuments(), ix.NumDocuments(),
			back.NumNodes(), ix.NumNodes(),
			back.NumLinks(), ix.NumLinks())
	}
	if back.Trie() != nil {
		t.Fatal("loaded index should carry no trie")
	}
	queries := []*query.Pattern{
		query.MustParse("//A"),
		query.MustParse("/R[A][B]"),
		query.MustParse("//C[text='A']"),
		query.MustParse("/R/*/B"),
	}
	for _, q := range queries {
		want, err := ix.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("query %s: loaded %v want %v", q, got, want)
		}
	}
}

func TestSaveLoadWithDocuments(t *testing.T) {
	docs := []*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}}
	ix := buildCS(t, docs, Options{KeepDocuments: true})
	back := saveLoad(t, ix)
	got, err := back.QueryWith(query.MustParse("/P/D/L[text='boston']"), QueryOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0}) {
		t.Fatalf("verified query after load = %v", got)
	}
}

func TestSaveLoadTextValues(t *testing.T) {
	ix := buildText(t, cityDocs())
	back := saveLoad(t, ix)
	if !back.Encoder().TextValues() {
		t.Fatal("text-values flag lost")
	}
	got, err := back.Query(query.MustParse("/P/L[text='bo*']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1, 3}) {
		t.Fatalf("prefix query after load = %v", got)
	}
}

func TestSaveRejectsNonProbabilityStrategy(t *testing.T) {
	enc := pathenc.NewEncoder(0)
	ix, err := Build([]*xmltree.Document{{ID: 0, Root: xmltree.Figure1()}},
		Options{Encoder: enc, Strategy: sequence.DepthFirst{Enc: enc}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err == nil {
		t.Fatal("saving a DF index should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage stream should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream should fail")
	}
}

func TestLoadedIndexPaged(t *testing.T) {
	docs := []*xmltree.Document{
		{ID: 0, Root: xmltree.Figure1()},
		{ID: 1, Root: xmltree.Figure3a()},
	}
	ix := buildCS(t, docs, Options{})
	back := saveLoad(t, ix)
	pool := newTestPool(t)
	if _, err := back.AttachPager(pool); err != nil {
		t.Fatal(err)
	}
	got, err := back.Query(query.MustParse("//L[text='boston']"))
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(got, []int32{0, 1}) {
		t.Fatalf("paged loaded query = %v", got)
	}
	if back.PagerStats().Reads == 0 {
		t.Fatal("no I/O recorded on loaded index")
	}
}
