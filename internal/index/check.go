package index

import (
	"fmt"
	"sort"

	"xseq/internal/pathenc"
)

// CheckInvariants validates the index's structural invariants — the
// properties Algorithm 1's correctness rests on. It is cheap relative to a
// build (one pass over links and doc lists) and is intended for use after
// Load, after crash recovery of persisted files, and in tests:
//
//   - every link is strictly sorted by pre with pre <= max;
//   - every anc pointer references an earlier entry of the same link whose
//     interval strictly contains the entry, and is marked embeds;
//   - labels stay within [1, MaxSerial];
//   - the flattened doc-id list is sorted by pre with consistent offsets
//     and ids within [0, maxDocID].
func (ix *Index) CheckInvariants() error {
	for p, link := range ix.links {
		name := ix.enc.PathString(p)
		for i, e := range link {
			if e.pre < 1 || e.max > ix.maxSerial || e.pre > e.max {
				return fmt.Errorf("index: link %s entry %d has invalid interval [%d,%d] (max serial %d)",
					name, i, e.pre, e.max, ix.maxSerial)
			}
			if i > 0 && link[i-1].pre >= e.pre {
				return fmt.Errorf("index: link %s not strictly sorted at %d", name, i)
			}
			if e.anc >= 0 {
				if int(e.anc) >= i {
					return fmt.Errorf("index: link %s entry %d anc %d not earlier", name, i, e.anc)
				}
				a := link[e.anc]
				if !(a.pre < e.pre && a.max >= e.max) {
					return fmt.Errorf("index: link %s entry %d not contained by anc %d", name, i, e.anc)
				}
				if !a.embeds {
					return fmt.Errorf("index: link %s entry %d anc %d lacks embeds mark", name, i, e.anc)
				}
			}
		}
	}
	// Doc list consistency.
	e := ix.ends
	if len(e.pres) != len(e.offs) || len(e.pres) != len(e.lens) {
		return fmt.Errorf("index: ragged end lists (%d/%d/%d)", len(e.pres), len(e.offs), len(e.lens))
	}
	if !sort.SliceIsSorted(e.pres, func(i, j int) bool { return e.pres[i] < e.pres[j] }) {
		return fmt.Errorf("index: end list not sorted by pre")
	}
	total := 0
	for i := range e.pres {
		if e.pres[i] < 1 || e.pres[i] > ix.maxSerial {
			return fmt.Errorf("index: end %d has pre %d outside [1,%d]", i, e.pres[i], ix.maxSerial)
		}
		if int(e.offs[i]) != total {
			return fmt.Errorf("index: end %d offset %d, want %d", i, e.offs[i], total)
		}
		if e.lens[i] <= 0 {
			return fmt.Errorf("index: end %d has empty id list", i)
		}
		total += int(e.lens[i])
	}
	if total != len(e.ids) {
		return fmt.Errorf("index: end lists cover %d ids, have %d", total, len(e.ids))
	}
	for i, id := range e.ids {
		if id < 0 || id > ix.maxDocID {
			return fmt.Errorf("index: doc id %d at %d outside [0,%d]", id, i, ix.maxDocID)
		}
	}
	// Every interned link path must be resolvable in the encoder.
	for p := range ix.links {
		if p <= pathenc.EmptyPath || int(p) >= ix.enc.NumPaths() {
			return fmt.Errorf("index: link path %d outside the path table", p)
		}
	}
	return nil
}
