package index

import (
	"encoding/gob"
	"fmt"
	"io"

	"xseq/internal/pathenc"
	"xseq/internal/schema"
	"xseq/internal/sequence"
	"xseq/internal/xmltree"
)

// Persistence: a built index serializes to a single stream (gob with a
// version header) carrying the designator/path tables, the path links with
// their sibling-cover metadata, the flattened document-id lists, the schema
// the sequencing strategy was derived from, and the corpus repeat set. Load
// reconstructs a query-ready index — the trie itself is not stored (queries
// need only the links and labels), so loaded indexes are immutable and
// Trie() returns nil.

// persistVersion guards format compatibility.
const persistVersion = 1

type persistedLink struct {
	Path   pathenc.PathID
	Pre    []int32
	Max    []int32
	Anc    []int32
	Embeds []bool
}

type persistedIndex struct {
	Version   int
	Encoder   pathenc.Snapshot
	Schema    *schema.Node
	Repeat    []pathenc.PathID
	Links     []persistedLink
	EndPres   []int32
	EndOffs   []int32
	EndLens   []int32
	EndIDs    []int32
	NumDocs   int
	MaxDocID  int32
	MaxSerial int32
	Options   persistedOptions
	Docs      []*xmltree.Document // nil unless KeepDocuments
}

type persistedOptions struct {
	InstantiationLimit    int
	OrderEnumerationLimit int
	KeepDocuments         bool
}

// Save writes the index to w. Only probability-strategy (g_best) indexes
// are saveable: the strategy is reconstructed from the schema on Load.
func (ix *Index) Save(w io.Writer) error {
	prob, ok := ix.strategy.(*sequence.Probability)
	if !ok {
		return fmt.Errorf("index: only probability-strategy indexes can be saved (have %q)", ix.strategy.Name())
	}
	sch := prob.Model.Schema()
	if sch == nil || sch.Root == nil {
		return fmt.Errorf("index: strategy carries no schema")
	}
	p := persistedIndex{
		Version:   persistVersion,
		Encoder:   ix.enc.Snapshot(),
		Schema:    sch.Root,
		NumDocs:   ix.numDocs,
		MaxDocID:  ix.maxDocID,
		MaxSerial: ix.maxSerial,
		EndPres:   ix.ends.pres,
		EndOffs:   ix.ends.offs,
		EndLens:   ix.ends.lens,
		EndIDs:    ix.ends.ids,
		Options: persistedOptions{
			InstantiationLimit:    ix.opts.InstantiationLimit,
			OrderEnumerationLimit: ix.opts.OrderEnumerationLimit,
			KeepDocuments:         ix.opts.KeepDocuments,
		},
		Docs: ix.docs,
	}
	for path := range prob.RepeatPaths() {
		p.Repeat = append(p.Repeat, path)
	}
	for path, link := range ix.links {
		pl := persistedLink{
			Path:   path,
			Pre:    make([]int32, len(link)),
			Max:    make([]int32, len(link)),
			Anc:    make([]int32, len(link)),
			Embeds: make([]bool, len(link)),
		}
		for i, e := range link {
			pl.Pre[i], pl.Max[i], pl.Anc[i], pl.Embeds[i] = e.pre, e.max, e.anc, e.embeds
		}
		p.Links = append(p.Links, pl)
	}
	return gob.NewEncoder(w).Encode(&p)
}

// Load reconstructs a query-ready index from a Save stream.
func Load(r io.Reader) (*Index, error) {
	var p persistedIndex
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if p.Version != persistVersion {
		return nil, fmt.Errorf("index: load: format version %d, want %d", p.Version, persistVersion)
	}
	enc, err := pathenc.FromSnapshot(p.Encoder)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	sch, err := schema.New(p.Schema)
	if err != nil {
		return nil, fmt.Errorf("index: load: schema: %w", err)
	}
	strategy := sequence.NewProbability(sch, enc)
	repeat := make(map[pathenc.PathID]bool, len(p.Repeat))
	for _, path := range p.Repeat {
		repeat[path] = true
	}
	strategy.SetRepeatPaths(repeat)

	ix := &Index{
		enc:       enc,
		strategy:  strategy,
		prio:      strategy,
		links:     make(map[pathenc.PathID][]linkEntry, len(p.Links)),
		numDocs:   p.NumDocs,
		maxDocID:  p.MaxDocID,
		maxSerial: p.MaxSerial,
		docs:      p.Docs,
		opts: Options{
			Encoder:               enc,
			Strategy:              strategy,
			InstantiationLimit:    p.Options.InstantiationLimit,
			OrderEnumerationLimit: p.Options.OrderEnumerationLimit,
			KeepDocuments:         p.Options.KeepDocuments,
		},
	}
	ix.ends = endList{pres: p.EndPres, offs: p.EndOffs, lens: p.EndLens, ids: p.EndIDs}
	for _, pl := range p.Links {
		n := len(pl.Pre)
		if len(pl.Max) != n || len(pl.Anc) != n || len(pl.Embeds) != n {
			return nil, fmt.Errorf("index: load: link %d has ragged arrays", pl.Path)
		}
		link := make([]linkEntry, n)
		for i := range link {
			link[i] = linkEntry{pre: pl.Pre[i], max: pl.Max[i], anc: pl.Anc[i], embeds: pl.Embeds[i]}
		}
		ix.links[pl.Path] = link
	}
	ix.ci = enc.BuildChildIndex()
	if err := ix.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("index: load: corrupt stream: %w", err)
	}
	return ix, nil
}
